// Unit tests: driver, verification harness, sinks, match utilities,
// predicate schedules and the sorted stack.
#include <gtest/gtest.h>

#include <sstream>

#include "engine/core/schedule.hpp"
#include "engine/ooo/sorted_stack.hpp"
#include "engine_test_util.hpp"
#include "runtime/driver.hpp"
#include "stream/disorder.hpp"
#include "workload/synthetic.hpp"

namespace oosp {
namespace {

using testutil::make_abcd_registry;
using testutil::make_event;

TEST(VerifyCompareKeys, ExactMatch) {
  const std::vector<MatchKey> a{{1, 2}, {3, 4}};
  const VerifyResult v = compare_keys(a, a);
  EXPECT_TRUE(v.exact());
  EXPECT_EQ(v.true_positives, 2u);
  EXPECT_DOUBLE_EQ(v.recall(), 1.0);
  EXPECT_DOUBLE_EQ(v.precision(), 1.0);
}

TEST(VerifyCompareKeys, MissedAndFalse) {
  const std::vector<MatchKey> expected{{1}, {2}, {3}};
  const std::vector<MatchKey> produced{{2}, {4}};
  const VerifyResult v = compare_keys(expected, produced);
  EXPECT_EQ(v.true_positives, 1u);
  EXPECT_EQ(v.missed, 2u);
  EXPECT_EQ(v.false_positives, 1u);
  EXPECT_FALSE(v.exact());
  EXPECT_NEAR(v.recall(), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(v.precision(), 0.5, 1e-12);
}

TEST(VerifyCompareKeys, DuplicateProductionIsFalsePositive) {
  const std::vector<MatchKey> expected{{1}};
  const std::vector<MatchKey> produced{{1}, {1}};
  const VerifyResult v = compare_keys(expected, produced);
  EXPECT_EQ(v.true_positives, 1u);
  EXPECT_EQ(v.false_positives, 1u);
}

TEST(VerifyCompareKeys, EmptySides) {
  EXPECT_TRUE(compare_keys({}, {}).exact());
  const std::vector<MatchKey> one{{1}};
  EXPECT_EQ(compare_keys(one, {}).missed, 1u);
  EXPECT_EQ(compare_keys({}, one).false_positives, 1u);
  EXPECT_DOUBLE_EQ(compare_keys({}, one).recall(), 1.0);  // vacuous recall
}

TEST(Driver, ReportsThroughputAndDelays) {
  SyntheticWorkload wl({.num_events = 4'000, .num_types = 3, .seed = 20});
  const auto ordered = wl.generate();
  DisorderInjector inj(LatencyModel::uniform(60), 0.2, 7);
  const auto arrivals = inj.deliver(ordered);
  const CompiledQuery q = compile_query(wl.seq_query(2, true, 80), wl.registry());

  DriverConfig cfg;
  cfg.kind = EngineKind::kKSlackInOrder;
  cfg.options.slack = inj.slack_bound();
  const RunResult r = run_stream(q, arrivals, cfg);
  EXPECT_EQ(r.engine_name, "kslack+inorder-ssc");
  EXPECT_EQ(r.stats.events_seen, arrivals.size());
  EXPECT_GT(r.matches, 0u);
  EXPECT_EQ(r.delay.count(), r.matches);
  EXPECT_GT(r.events_per_second, 0.0);
  // The buffered engine pays ≈K on most results.
  EXPECT_GT(r.delay.mean(), 10.0);
  EXPECT_TRUE(r.collected.empty());

  cfg.kind = EngineKind::kOoo;
  cfg.collect_matches = true;
  const RunResult ro = run_stream(q, arrivals, cfg);
  EXPECT_EQ(ro.collected.size(), ro.matches);
  // Native engine detects most results with near-zero stream-time delay.
  EXPECT_LT(ro.delay.mean(), r.delay.mean());
}

TEST(Sinks, CountingSinkAggregates) {
  CountingSink s;
  Match m;
  m.events.push_back(Event{});
  m.events.back().ts = 10;
  m.detection_clock = 25;
  s.on_match(std::move(m));
  Match m2;
  m2.events.push_back(Event{});
  m2.events.back().ts = 10;
  m2.detection_clock = 10;
  s.on_match(std::move(m2));
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.mean_delay(), 7.5);
  EXPECT_EQ(s.max_delay(), 15);
}

TEST(Sinks, FunctionSinkForwards) {
  int called = 0;
  FunctionSink s([&](Match&&) { ++called; });
  Match m;
  m.events.push_back(Event{});
  s.on_match(std::move(m));
  EXPECT_EQ(called, 1);
}

TEST(Sinks, CollectingSinkSortedKeysKeepsDuplicates) {
  CollectingSink s;
  for (int i = 0; i < 2; ++i) {
    Match m;
    Event e;
    e.id = 5;
    m.events.push_back(e);
    s.on_match(std::move(m));
  }
  EXPECT_EQ(s.sorted_keys().size(), 2u);
  s.clear();
  EXPECT_EQ(s.size(), 0u);
}

TEST(MatchUtil, KeyAndOutput) {
  Match m;
  Event a, b;
  a.id = 3;
  a.ts = 1;
  b.id = 9;
  b.ts = 5;
  m.events = {a, b};
  m.detection_clock = 11;
  EXPECT_EQ(match_key(m), (MatchKey{3, 9}));
  EXPECT_EQ(m.first_ts(), 1);
  EXPECT_EQ(m.last_ts(), 5);
  EXPECT_EQ(m.detection_delay(), 6);
  std::ostringstream os;
  os << m;
  EXPECT_NE(os.str().find("#3@1"), std::string::npos);
}

TEST(Schedule, AssignsPredicatesAtLatestBoundStep) {
  TypeRegistry reg = make_abcd_registry();
  const CompiledQuery q = compile_query(
      "PATTERN SEQ(A a, B b, C c) WHERE a.k == b.k AND a.k == c.k AND b.v > 1 "
      "WITHIN 10",
      reg);
  // Ascending order: a.k==b.k ready at pos 1; a.k==c.k at pos 2;
  // b.v>1 is local (excluded).
  const std::vector<std::size_t> asc{0, 1, 2};
  const auto sched = build_predicate_schedule(q, asc);
  EXPECT_TRUE(sched[0].empty());
  EXPECT_EQ(sched[1].size(), 1u);
  EXPECT_EQ(sched[2].size(), 1u);
  // Descending order: both joins become ready only when `a` binds (pos 2).
  const std::vector<std::size_t> desc{2, 1, 0};
  const auto dsched = build_predicate_schedule(q, desc);
  EXPECT_TRUE(dsched[0].empty());
  EXPECT_TRUE(dsched[1].empty());
  EXPECT_EQ(dsched[2].size(), 2u);
}

TEST(Schedule, RejectsIncompleteOrder) {
  TypeRegistry reg = make_abcd_registry();
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 10", reg);
  const std::vector<std::size_t> partial{0};
  EXPECT_THROW(build_predicate_schedule(q, partial), std::invalid_argument);
}

namespace {
// Allocates a minimal arena event so inserts carry a live reference.
EventHandle mk_handle(EventArena& arena, EventId id, Timestamp ts) {
  Event e;
  e.id = id;
  e.ts = ts;
  return arena.alloc(e);
}
}  // namespace

TEST(SortedStack, InsertKeepsOrderAndReportsIndex) {
  SortedStack s;
  EventArena arena;
  auto ins = [&](EventId id, Timestamp ts) {
    return s.insert(ts, id, mk_handle(arena, id, ts));
  };
  EXPECT_EQ(ins(0, 10), 0u);
  EXPECT_EQ(ins(1, 30), 1u);  // append fast path
  EXPECT_EQ(ins(2, 20), 1u);  // splice in the middle
  EXPECT_EQ(ins(3, 20), 2u);  // tie breaks by id
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s[0].ts, 10);
  EXPECT_EQ(s[1].id, 2u);
  EXPECT_EQ(s[2].id, 3u);
  EXPECT_EQ(s[3].ts, 30);
  EXPECT_EQ(arena.get(s[1].handle).id, 2u);  // handle resolves to the event
}

TEST(SortedStack, RangeQueries) {
  SortedStack s;
  EventArena arena;
  for (EventId i = 0; i < 5; ++i) {
    const auto ts = static_cast<Timestamp>(i) * 10;
    s.insert(ts, i, mk_handle(arena, i, ts));
  }
  EXPECT_EQ(s.count_ts_below(0), 0u);
  EXPECT_EQ(s.count_ts_below(1), 1u);
  EXPECT_EQ(s.count_ts_below(20), 2u);   // strictly below
  EXPECT_EQ(s.first_ts_above(20), 3u);   // strictly above
  EXPECT_EQ(s.first_ts_above(100), 5u);
}

TEST(SortedStack, PurgeAndRipMaintenance) {
  SortedStack s;
  EventArena arena;
  for (EventId i = 0; i < 6; ++i) {
    const auto ts = static_cast<Timestamp>(i) * 10;
    s.insert(ts, i, mk_handle(arena, i, ts));
  }
  s.bump_rips_from(2, 3);
  EXPECT_EQ(s[1].rip, 0u);
  EXPECT_EQ(s[2].rip, 3u);
  EXPECT_EQ(s[5].rip, 3u);
  EXPECT_EQ(s.purge_before(25, arena), 3u);  // ts 0,10,20 gone
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(arena.live(), 3u);  // purge released the arena references
  s.drop_rips(2);
  EXPECT_EQ(s[0].rip, 1u);
}

TEST(SortedStack, BumpRipsBatchMatchesPerInsertBumps) {
  // bump_rips_batch(sorted_ts) must equal applying, for each inserted ts,
  // bump_rips_from(first_ts_above(ts), 1) — the per-event maintenance it
  // amortizes.
  const std::vector<Timestamp> stack_ts{5, 10, 10, 20, 30, 30, 40};
  const std::vector<Timestamp> inserted{0, 10, 10, 25, 30, 100};
  SortedStack batched;
  SortedStack serial;
  EventArena arena;
  for (EventId i = 0; i < stack_ts.size(); ++i) {
    batched.insert(stack_ts[i], i, mk_handle(arena, i, stack_ts[i]));
    serial.insert(stack_ts[i], i, mk_handle(arena, i, stack_ts[i]));
  }
  batched.bump_rips_batch(inserted);
  for (const Timestamp t : inserted)
    serial.bump_rips_from(serial.first_ts_above(t), 1);
  ASSERT_EQ(batched.size(), serial.size());
  for (std::size_t i = 0; i < batched.size(); ++i)
    EXPECT_EQ(batched[i].rip, serial[i].rip) << "index " << i;
}

}  // namespace
}  // namespace oosp
