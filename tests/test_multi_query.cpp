// Unit + integration tests: multi-query runner and hierarchical
// (composite-event) pipelines.
#include <gtest/gtest.h>

#include "engine_test_util.hpp"
#include "runtime/multi_query.hpp"
#include "runtime/pipeline.hpp"
#include "stream/disorder.hpp"
#include "workload/synthetic.hpp"

namespace oosp {
namespace {

using testutil::make_abcd_registry;
using testutil::make_event;

class MultiQueryTest : public ::testing::Test {
 protected:
  MultiQueryTest() : reg_(make_abcd_registry()) {}
  Event ev(const char* t, EventId id, Timestamp ts, std::int64_t k = 0) {
    return make_event(reg_, t, id, ts, k);
  }
  TypeRegistry reg_;
};

TEST_F(MultiQueryTest, RoutesEventsToRelevantEnginesOnly) {
  const auto sink = std::make_shared<CollectingTaggedSink>();
  MultiQueryRunner runner(reg_, sink);
  const QueryId q_ab =
      runner.add_query({"PATTERN SEQ(A a, B b) WITHIN 100", EngineKind::kOoo});
  const QueryId q_cd =
      runner.add_query({"PATTERN SEQ(C c, D d) WITHIN 100", EngineKind::kOoo});
  runner.on_event(ev("A", 0, 10));
  runner.on_event(ev("B", 1, 20));
  runner.on_event(ev("C", 2, 30));
  runner.on_event(ev("D", 3, 40));
  runner.finish();

  EXPECT_EQ(sink->keys_for(q_ab), (std::vector<MatchKey>{{0, 1}}));
  EXPECT_EQ(sink->keys_for(q_cd), (std::vector<MatchKey>{{2, 3}}));
  // Each engine saw only its own two events.
  EXPECT_EQ(runner.stats(q_ab).events_seen, 2u);
  EXPECT_EQ(runner.stats(q_cd).events_seen, 2u);
  EXPECT_EQ(runner.events_seen(), 4u);
  EXPECT_EQ(runner.events_routed(), 4u);
}

TEST_F(MultiQueryTest, IrrelevantEventsAreSkippedEntirely) {
  const auto sink = std::make_shared<CollectingTaggedSink>();
  MultiQueryRunner runner(reg_, sink);
  const QueryId q = runner.add_query(
      {"PATTERN SEQ(A a, B b) WITHIN 100", EngineKind::kInOrder});
  for (EventId i = 0; i < 50; ++i) runner.on_event(ev("D", i, 10 + (Timestamp)i));
  runner.finish();
  EXPECT_EQ(runner.events_routed(), 0u);
  EXPECT_EQ(runner.stats(q).events_seen, 0u);
}

TEST_F(MultiQueryTest, OverlappingQueriesShareTheScan) {
  const auto sink = std::make_shared<CollectingTaggedSink>();
  MultiQueryRunner runner(reg_, sink);
  const QueryId q1 =
      runner.add_query({"PATTERN SEQ(A a, B b) WITHIN 100", EngineKind::kOoo});
  const QueryId q2 =
      runner.add_query({"PATTERN SEQ(A x, A y) WITHIN 100", EngineKind::kOoo});
  runner.on_event(ev("A", 0, 10));
  runner.on_event(ev("A", 1, 20));
  runner.on_event(ev("B", 2, 30));
  runner.finish();
  EXPECT_EQ(sink->keys_for(q1).size(), 2u);  // (0,2), (1,2)
  EXPECT_EQ(sink->keys_for(q2).size(), 1u);  // (0,1)
}

TEST_F(MultiQueryTest, NegationQueriesGetClockTicksFromForeignTypes) {
  const auto sink = std::make_shared<CollectingTaggedSink>();
  MultiQueryRunner runner(reg_, sink);
  EngineOptions opt;
  opt.slack = 20;
  const QueryId q = runner.add_query(
      {"PATTERN SEQ(A a, !B b, C c) WITHIN 100", EngineKind::kOoo, opt});
  runner.on_event(ev("A", 0, 10));
  runner.on_event(ev("C", 1, 30));
  EXPECT_EQ(sink->keys_for(q).size(), 0u);  // unsealed: clock=30, K=20
  // A type-D event (irrelevant to the query) still advances the clock to
  // 60 > 30 + K, sealing and releasing the match.
  runner.on_event(ev("D", 2, 60));
  EXPECT_EQ(sink->keys_for(q).size(), 1u);
  // The clock tick was delivered, so the engine saw 3 events.
  EXPECT_EQ(runner.stats(q).events_seen, 3u);
}

TEST_F(MultiQueryTest, AddQueryAfterStartRejected) {
  const auto sink = std::make_shared<CollectingTaggedSink>();
  MultiQueryRunner runner(reg_, sink);
  runner.add_query({"PATTERN SEQ(A a, B b) WITHIN 10", EngineKind::kOoo});
  runner.on_event(ev("A", 0, 1));
  EXPECT_THROW(
      runner.add_query({"PATTERN SEQ(C c, D d) WITHIN 10", EngineKind::kOoo}),
      std::invalid_argument);
}

TEST_F(MultiQueryTest, ManyQueriesUnderDisorderAllExact) {
  SyntheticWorkload wl({.num_events = 3'000, .num_types = 4, .key_cardinality = 8,
                        .mean_gap = 4, .seed = 91});
  const auto ordered = wl.generate();
  DisorderInjector inj(LatencyModel::uniform(120), 0.25, 14);
  const auto arrivals = inj.deliver(ordered);

  const auto sink = std::make_shared<CollectingTaggedSink>();
  MultiQueryRunner runner(wl.registry(), sink);
  EngineOptions opt;
  opt.slack = inj.slack_bound();
  std::vector<std::string> queries{
      wl.seq_query(2, true, 100),
      wl.seq_query(3, true, 200),
      wl.seq_query(4, false, 150),
      wl.negation_query(150),
  };
  std::vector<QueryId> ids;
  for (const auto& q : queries)
    ids.push_back(runner.add_query({q, EngineKind::kOoo, opt}));
  for (const Event& e : arrivals) runner.on_event(e);
  runner.finish();

  for (std::size_t i = 0; i < queries.size(); ++i) {
    const CompiledQuery q = compile_query(queries[i], wl.registry());
    EXPECT_EQ(sink->keys_for(ids[i]), oracle_keys(q, arrivals)) << queries[i];
  }
}

class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest() : reg_(make_abcd_registry()) {
    composite_ = reg_.register_type("Pair", Schema({{"k", ValueType::kInt}}));
  }
  Event ev(const char* t, EventId id, Timestamp ts, std::int64_t k = 0) {
    return make_event(reg_, t, id, ts, k);
  }
  TypeRegistry reg_;
  TypeId composite_;
};

TEST_F(PipelineTest, TwoStageCompositionDetectsHigherLevelPattern) {
  // Stage 1: (A,B) pairs keyed on k → composite Pair events.
  // Stage 2: two Pairs with the same key within a larger window.
  const CompiledQuery q1 =
      compile_query("PATTERN SEQ(A a, B b) WHERE a.k == b.k WITHIN 50", reg_);
  const CompiledQuery q2 =
      compile_query("PATTERN SEQ(Pair p1, Pair p2) WHERE p1.k == p2.k WITHIN 500",
                    reg_);

  const auto final_sink = std::make_shared<CollectingSink>();
  EngineOptions opt2;
  opt2.slack = 100;  // covers upstream detection delay
  const auto downstream = testutil::make_test_engine(EngineKind::kOoo, q2, final_sink, opt2);

  const auto emitter = std::make_shared<CompositeEmitter>(
      composite_, [](const Match& m) { return std::vector<Value>{m.events[0].attr(0)}; },
      *downstream, /*first_id=*/1'000'000);

  EngineOptions opt1;
  opt1.slack = 60;
  const auto upstream = testutil::make_test_engine(EngineKind::kOoo, q1, emitter, opt1);

  // Two pairs for key 1 (the second pair's A arrives late), one for key 2.
  upstream->on_event(ev("A", 0, 10, 1));
  upstream->on_event(ev("B", 1, 20, 1));
  upstream->on_event(ev("B", 2, 120, 1));
  upstream->on_event(ev("A", 3, 110, 1));  // late
  upstream->on_event(ev("A", 4, 200, 2));
  upstream->on_event(ev("B", 5, 210, 2));
  upstream->finish();
  downstream->finish();

  EXPECT_EQ(emitter->emitted(), 3u);
  ASSERT_EQ(final_sink->size(), 1u);  // the two key-1 pairs compose
  EXPECT_EQ(final_sink->matches()[0].events[0].attr(0).as_int(), 1);
  EXPECT_LE(emitter->max_downstream_lateness(), opt2.slack);
}

TEST_F(PipelineTest, LateUpstreamMatchStillComposes) {
  const CompiledQuery q1 =
      compile_query("PATTERN SEQ(A a, B b) WHERE a.k == b.k WITHIN 50", reg_);
  const CompiledQuery q2 =
      compile_query("PATTERN SEQ(Pair p1, Pair p2) WHERE p1.k == p2.k WITHIN 500",
                    reg_);
  const auto final_sink = std::make_shared<CollectingSink>();
  EngineOptions opt2;
  opt2.slack = 100;
  const auto downstream = testutil::make_test_engine(EngineKind::kOoo, q2, final_sink, opt2);
  const auto emitter = std::make_shared<CompositeEmitter>(
      composite_, [](const Match& m) { return std::vector<Value>{m.events[0].attr(0)}; },
      *downstream, 1'000'000);
  EngineOptions opt1;
  opt1.slack = 100;
  const auto upstream = testutil::make_test_engine(EngineKind::kOoo, q1, emitter, opt1);

  // The EARLIER pair completes after the later pair (its B is late), so
  // the composite events reach stage 2 out of order.
  upstream->on_event(ev("A", 0, 10, 1));
  upstream->on_event(ev("A", 1, 100, 1));
  upstream->on_event(ev("B", 2, 110, 1));  // later pair completes first
  upstream->on_event(ev("B", 3, 20, 1));   // late: earlier pair completes second
  upstream->finish();
  downstream->finish();

  EXPECT_EQ(emitter->emitted(), 2u);
  EXPECT_GT(emitter->max_downstream_lateness(), 0);
  ASSERT_EQ(final_sink->size(), 1u);
}

TEST_F(PipelineTest, RefusesRetractions) {
  const CompiledQuery q2 =
      compile_query("PATTERN SEQ(Pair p1, Pair p2) WITHIN 500", reg_);
  const auto final_sink = std::make_shared<CollectingSink>();
  const auto downstream = testutil::make_test_engine(EngineKind::kOoo, q2, final_sink, {});
  const auto emitter = std::make_shared<CompositeEmitter>(
      composite_, [](const Match&) { return std::vector<Value>{Value(0)}; },
      *downstream, 1);
  Match m;
  m.events.push_back(Event{});
  EXPECT_THROW(emitter->on_retract(m), std::logic_error);
}

TEST_F(PipelineTest, ValidatesConstruction) {
  const CompiledQuery q2 = compile_query("PATTERN SEQ(Pair p1, Pair p2) WITHIN 500", reg_);
  const auto sink = std::make_shared<CollectingSink>();
  const auto engine = testutil::make_test_engine(EngineKind::kOoo, q2, sink, {});
  EXPECT_THROW(CompositeEmitter(kInvalidType, [](const Match&) {
                 return std::vector<Value>{};
               }, *engine, 1),
               std::invalid_argument);
  EXPECT_THROW(CompositeEmitter(composite_, nullptr, *engine, 1), std::invalid_argument);
}

}  // namespace
}  // namespace oosp
