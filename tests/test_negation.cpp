// Unit tests: negation semantics under out-of-order arrival — sealing,
// pending cancellation, and the negative buffer itself.
#include <gtest/gtest.h>

#include "engine_test_util.hpp"
#include "engine/core/negative_buffer.hpp"

namespace oosp {
namespace {

using testutil::expect_exact;
using testutil::make_abcd_registry;
using testutil::make_event;
using testutil::run_engine;
using testutil::run_engine_keys;

class NegationTest : public ::testing::Test {
 protected:
  NegationTest() : reg_(make_abcd_registry()) {}
  Event ev(const char* t, EventId id, Timestamp ts, std::int64_t k = 0,
           std::int64_t v = 0) {
    return make_event(reg_, t, id, ts, k, v);
  }
  EngineOptions slack(Timestamp k) {
    EngineOptions o;
    o.slack = k;
    return o;
  }
  TypeRegistry reg_;
};

TEST_F(NegationTest, LateNegativeCancelsPendingMatch) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, !B b, C c) WITHIN 100", reg_);
  const auto sink = std::make_shared<CollectingSink>();
  const auto engine = testutil::make_test_engine(EngineKind::kOoo, q, sink, slack(50));
  engine->on_event(ev("A", 0, 10));
  engine->on_event(ev("C", 1, 30));
  // Interval (10,30) unsealed (clock=30, K=50) → match pends.
  EXPECT_EQ(sink->size(), 0u);
  EXPECT_EQ(engine->stats_snapshot().pending_matches, 1u);
  // The violating B arrives late, inside the interval.
  engine->on_event(ev("B", 2, 20));
  engine->finish();
  EXPECT_EQ(sink->size(), 0u);
  EXPECT_EQ(engine->stats_snapshot().matches_cancelled, 1u);
}

TEST_F(NegationTest, PendingMatchEmittedOnceIntervalSeals) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, !B b, C c) WITHIN 100", reg_);
  const auto sink = std::make_shared<CollectingSink>();
  const auto engine = testutil::make_test_engine(EngineKind::kOoo, q, sink, slack(50));
  engine->on_event(ev("A", 0, 10));
  engine->on_event(ev("C", 1, 30));
  EXPECT_EQ(sink->size(), 0u);
  // Clock reaches 30 + K = 80: interval sealed, match released.
  engine->on_event(ev("D", 2, 81));
  EXPECT_EQ(sink->size(), 1u);
  EXPECT_EQ(engine->stats_snapshot().pending_matches, 0u);
  // Emission delay is the sealing wait, charged in stream time.
  EXPECT_EQ(sink->matches()[0].detection_delay(), 81 - 30);
}

TEST_F(NegationTest, AlreadySealedIntervalEmitsImmediately) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, !B b, C c) WITHIN 100", reg_);
  const auto sink = std::make_shared<CollectingSink>();
  const auto engine = testutil::make_test_engine(EngineKind::kOoo, q, sink, slack(10));
  engine->on_event(ev("A", 0, 10));
  engine->on_event(ev("D", 1, 100));  // clock far ahead
  engine->on_event(ev("C", 2, 30));   // late trigger; interval (10,30) sealed
  EXPECT_EQ(sink->size(), 1u);
  EXPECT_EQ(engine->stats_snapshot().pending_peak, 0u);
}

TEST_F(NegationTest, NegativePresentBeforeCandidateKillsImmediately) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, !B b, C c) WITHIN 100", reg_);
  const auto sink = std::make_shared<CollectingSink>();
  const auto engine = testutil::make_test_engine(EngineKind::kOoo, q, sink, slack(50));
  engine->on_event(ev("A", 0, 10));
  engine->on_event(ev("B", 1, 20));
  engine->on_event(ev("C", 2, 30));
  engine->finish();
  EXPECT_EQ(sink->size(), 0u);
  EXPECT_EQ(engine->stats_snapshot().pending_peak, 0u);  // never pended
}

TEST_F(NegationTest, NegationPredicatesRespectKeys) {
  const CompiledQuery q = compile_query(
      "PATTERN SEQ(A a, !B b, C c) WHERE a.k == b.k AND a.k == c.k WITHIN 100", reg_);
  const std::vector<Event> arrivals{
      ev("A", 0, 10, 1), ev("C", 1, 30, 1),
      ev("B", 2, 20, 2),  // late B but wrong key: no cancellation
  };
  const auto keys = run_engine_keys(EngineKind::kOoo, q, arrivals, slack(50));
  ASSERT_EQ(keys.size(), 1u);
  expect_exact(EngineKind::kOoo, q, arrivals, slack(50), "keyed negation");
}

TEST_F(NegationTest, TwoNegatedSteps) {
  const CompiledQuery q =
      compile_query("PATTERN SEQ(A a, !B b, C c, !D d, A e) WITHIN 200", reg_);
  // Clean case.
  std::vector<Event> clean{ev("A", 0, 10), ev("C", 1, 30), ev("A", 2, 50)};
  expect_exact(EngineKind::kOoo, q, clean, slack(20), "two negations clean");
  EXPECT_EQ(run_engine_keys(EngineKind::kOoo, q, clean, slack(20)).size(), 1u);
  // Violate the second interval only, with a late D.
  std::vector<Event> dirty{ev("A", 0, 10), ev("C", 1, 30), ev("A", 2, 50),
                           ev("D", 3, 40)};
  EXPECT_TRUE(run_engine_keys(EngineKind::kOoo, q, dirty, slack(20)).empty());
  expect_exact(EngineKind::kOoo, q, dirty, slack(20), "two negations dirty");
}

TEST_F(NegationTest, AdjacentNegatedStepsShareInterval) {
  const CompiledQuery q =
      compile_query("PATTERN SEQ(A a, !B b, !D d, C c) WITHIN 100", reg_);
  const std::vector<Event> blocked_by_d{ev("A", 0, 10), ev("D", 1, 20), ev("C", 2, 30)};
  EXPECT_TRUE(run_engine_keys(EngineKind::kOoo, q, blocked_by_d, slack(5)).empty());
  const std::vector<Event> clean{ev("A", 0, 10), ev("C", 2, 30)};
  EXPECT_EQ(run_engine_keys(EngineKind::kOoo, q, clean, slack(5)).size(), 1u);
}

TEST_F(NegationTest, ZeroSlackNegationEmitsPromptly) {
  // K = 0: stream contractually in order, intervals seal as the clock
  // passes them.
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, !B b, C c) WITHIN 100", reg_);
  const auto sink = std::make_shared<CollectingSink>();
  const auto engine = testutil::make_test_engine(EngineKind::kOoo, q, sink, slack(0));
  engine->on_event(ev("A", 0, 10));
  engine->on_event(ev("C", 1, 30));
  // seal needs clock >= 30 + 0; clock == 30 already → immediate.
  EXPECT_EQ(sink->size(), 1u);
}

TEST_F(NegationTest, RfidShopliftingScenarioEndToEnd) {
  const CompiledQuery q = compile_query(
      "PATTERN SEQ(A shelf, !B checkout, C exit) "
      "WHERE shelf.k == exit.k AND shelf.k == checkout.k WITHIN 300",
      reg_);
  // Item 1 pays (checkout late), item 2 steals.
  const std::vector<Event> arrivals{
      ev("A", 0, 10, 1), ev("A", 1, 15, 2),
      ev("C", 2, 100, 1),                    // exit of item 1 (checkout still in flight)
      ev("B", 3, 60, 1),                     // late checkout of item 1
      ev("C", 4, 120, 2),                    // exit of item 2 — true theft
      ev("D", 5, 500, 0),                    // clock advance to seal everything
  };
  const auto keys = run_engine_keys(EngineKind::kOoo, q, arrivals, slack(60));
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], (MatchKey{1, 4}));  // only item 2 is flagged
  expect_exact(EngineKind::kOoo, q, arrivals, slack(60), "rfid scenario");
}

TEST_F(NegationTest, NegativeBufferUnit) {
  const CompiledQuery q = compile_query(
      "PATTERN SEQ(A a, !B b, C c) WHERE a.k == b.k AND b.v > 5 WITHIN 100", reg_);
  NegativeBuffer buf(q, 1);
  EventArena arena;
  const Event b1 = ev("B", 0, 20, 1, 9);
  const Event b2 = ev("B", 1, 25, 2, 9);
  const Event b3 = ev("B", 2, 15, 1, 9);  // out-of-order insert
  buf.insert(b1.ts, b1.id, arena.alloc(b1));
  buf.insert(b2.ts, b2.id, arena.alloc(b2));
  buf.insert(b3.ts, b3.id, arena.alloc(b3));
  EXPECT_EQ(buf.size(), 3u);
  EXPECT_EQ(arena.live(), 3u);

  const Event a = ev("A", 10, 10, 1);
  const Event c = ev("C", 11, 30, 1);
  std::vector<const Event*> bind(q.num_steps(), nullptr);
  bind[0] = &a;
  bind[2] = &c;
  std::uint64_t evals = 0;
  EXPECT_TRUE(buf.violates(arena, 10, 30, bind, evals));   // b1 and b3 qualify
  EXPECT_GT(evals, 0u);
  EXPECT_FALSE(buf.violates(arena, 26, 30, bind, evals));  // nothing in (26,30)
  EXPECT_FALSE(buf.violates(arena, 30, 10, bind, evals));  // degenerate interval
  EXPECT_EQ(bind[1], nullptr);                             // scratch slot restored

  EXPECT_EQ(buf.purge_before(21, arena), 2u);  // b3(15), b1(20) out
  EXPECT_EQ(buf.size(), 1u);
  EXPECT_EQ(arena.live(), 1u);  // purge released the arena references
  EXPECT_FALSE(buf.violates(arena, 10, 25, bind, evals));
}

TEST_F(NegationTest, NegativeBufferLocalPredIsNotRechecked) {
  // Local preds (b.v > 5) are the scan-time gate; violates() only runs
  // multi-step predicates. Insert an event that fails the local pred to
  // confirm violates() alone would accept it — engines must prefilter.
  const CompiledQuery q = compile_query(
      "PATTERN SEQ(A a, !B b, C c) WHERE a.k == b.k AND b.v > 5 WITHIN 100", reg_);
  NegativeBuffer buf(q, 1);
  EventArena arena;
  const Event bad = ev("B", 0, 20, 1, 0);  // fails b.v > 5
  buf.insert(bad.ts, bad.id, arena.alloc(bad));
  const Event a = ev("A", 10, 10, 1);
  const Event c = ev("C", 11, 30, 1);
  std::vector<const Event*> bind(q.num_steps(), nullptr);
  bind[0] = &a;
  bind[2] = &c;
  std::uint64_t evals = 0;
  EXPECT_TRUE(buf.violates(arena, 10, 30, bind, evals));
}

TEST_F(NegationTest, BufferRequiresNegatedStep) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 10", reg_);
  EXPECT_THROW(NegativeBuffer(q, 0), std::invalid_argument);
}

}  // namespace
}  // namespace oosp
