// Unit tests: common substrate — rng, interner, stats, histogram, table.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/interner.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace oosp {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformIntInRange) {
  Rng r(5);
  for (int i = 0; i < 10'000; ++i) {
    const auto v = r.uniform_int(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
  }
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng r(5);
  EXPECT_EQ(r.uniform_int(4, 4), 4);
  EXPECT_EQ(r.uniform_int(9, 2), 9);  // inverted range collapses to lo
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng r(6);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 5'000; ++i) ++seen[static_cast<std::size_t>(r.uniform_int(0, 4))];
  for (int count : seen) EXPECT_GT(count, 800);  // ~1000 each
}

TEST(Rng, Uniform01Bounds) {
  Rng r(7);
  for (int i = 0; i < 10'000; ++i) {
    const double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BernoulliEdgesAndMean) {
  Rng r(8);
  EXPECT_FALSE(r.bernoulli(0.0));
  EXPECT_TRUE(r.bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 20'000; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(hits / 20'000.0, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng r(9);
  StatAccumulator acc;
  for (int i = 0; i < 50'000; ++i) acc.add(r.normal(10.0, 2.0));
  EXPECT_NEAR(acc.mean(), 10.0, 0.1);
  EXPECT_NEAR(acc.stddev(), 2.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng r(10);
  StatAccumulator acc;
  for (int i = 0; i < 50'000; ++i) acc.add(r.exponential(0.25));
  EXPECT_NEAR(acc.mean(), 4.0, 0.2);
}

TEST(Rng, ParetoLowerBoundAndTail) {
  Rng r(11);
  StatAccumulator acc;
  for (int i = 0; i < 20'000; ++i) {
    const double v = r.pareto(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    acc.add(v);
  }
  // E[pareto(xm=2, a=3)] = a*xm/(a-1) = 3.
  EXPECT_NEAR(acc.mean(), 3.0, 0.15);
}

TEST(Rng, ZipfRangeAndSkew) {
  Rng r(12);
  std::vector<int> counts(11, 0);
  for (int i = 0; i < 30'000; ++i) {
    const auto v = r.zipf(10, 1.0);
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, 10u);
    ++counts[v];
  }
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], counts[5]);
  EXPECT_GT(counts[1], 5 * counts[10]);
}

TEST(Rng, ZipfZeroSkewIsUniformish) {
  Rng r(13);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 20'000; ++i) ++counts[r.zipf(4, 0.0) - 1];
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(counts[i], 5'000, 600);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng r(14);
  std::vector<double> w{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 20'000; ++i) ++counts[r.weighted_index(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / 20'000.0, 0.75, 0.02);
}

TEST(Rng, ForkIsIndependent) {
  Rng a(15);
  Rng b = a.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 3);
}

TEST(Interner, RoundTrip) {
  Interner in;
  const auto a = in.intern("alpha");
  const auto b = in.intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(in.intern("alpha"), a);
  EXPECT_EQ(in.lookup("beta"), b);
  EXPECT_EQ(in.lookup("gamma"), Interner::kInvalid);
  EXPECT_EQ(in.name(a), "alpha");
  EXPECT_EQ(in.size(), 2u);
  EXPECT_THROW(in.name(99), std::invalid_argument);
}

TEST(Interner, ManyEntriesStayStable) {
  Interner in;
  std::vector<Interner::Id> ids;
  for (int i = 0; i < 1'000; ++i) ids.push_back(in.intern("name" + std::to_string(i)));
  for (int i = 0; i < 1'000; ++i) {
    EXPECT_EQ(in.name(ids[static_cast<std::size_t>(i)]), "name" + std::to_string(i));
    EXPECT_EQ(in.lookup("name" + std::to_string(i)), ids[static_cast<std::size_t>(i)]);
  }
}

TEST(StatAccumulator, BasicMoments) {
  StatAccumulator s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(StatAccumulator, EmptyIsZero) {
  const StatAccumulator s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(StatAccumulator, MergeMatchesSequential) {
  StatAccumulator all, a, b;
  Rng r(16);
  for (int i = 0; i < 1'000; ++i) {
    const double v = r.normal(3.0, 1.5);
    all.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StatAccumulator, MergeWithEmpty) {
  StatAccumulator a, empty;
  a.add(1.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(Histogram, QuantilesRoughlyCorrect) {
  QuantileHistogram h(1.0, 1.1, 256);
  Rng r(17);
  for (int i = 0; i < 100'000; ++i) h.add(r.uniform(0.0, 1000.0));
  EXPECT_NEAR(h.p50(), 500.0, 50.0);
  EXPECT_NEAR(h.p95(), 950.0, 60.0);
  EXPECT_NEAR(h.p99(), 990.0, 60.0);
  EXPECT_EQ(h.count(), 100'000u);
}

TEST(Histogram, UnderflowMass) {
  QuantileHistogram h(10.0, 1.5, 32);
  for (int i = 0; i < 90; ++i) h.add(1.0);  // below min_value
  for (int i = 0; i < 10; ++i) h.add(100.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);   // median inside the underflow mass
  EXPECT_GT(h.quantile(0.95), 50.0);
}

TEST(Histogram, EmptyQuantileIsZero) {
  const QuantileHistogram h;
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, MergeAddsCounts) {
  QuantileHistogram a(1.0, 1.25, 64), b(1.0, 1.25, 64);
  a.add(5.0);
  b.add(500.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_THROW(a.merge(QuantileHistogram(2.0, 1.25, 64)), std::invalid_argument);
}

TEST(Histogram, BadConstruction) {
  EXPECT_THROW(QuantileHistogram(0.0, 1.5, 8), std::invalid_argument);
  EXPECT_THROW(QuantileHistogram(1.0, 1.0, 8), std::invalid_argument);
  EXPECT_THROW(QuantileHistogram(1.0, 1.5, 1), std::invalid_argument);
}

TEST(Table, PrettyPrintAligns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("| longer"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 2u);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, CsvEscaping) {
  Table t({"a", "b"});
  t.add_row({"plain", "with,comma"});
  t.add_row({"with\"quote", "multi\nline"});
  std::ostringstream os;
  t.print_csv(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(s.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Table, NumericCells) {
  EXPECT_EQ(Table::cell(1.234, 2), "1.23");
  EXPECT_EQ(Table::cell(std::uint64_t{42}), "42");
  EXPECT_EQ(Table::cell(std::int64_t{-7}), "-7");
}

}  // namespace
}  // namespace oosp
