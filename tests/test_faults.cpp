// Fault-injection harness tests: determinism under fixed seeds, the
// per-injector contracts (what each fault does and does not change), and
// composition with the latency/outage disorder models — including the
// degraded-mode runtime that scores an engine against the clean oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>

#include "engine_test_util.hpp"
#include "runtime/degraded.hpp"
#include "runtime/driver.hpp"
#include "stream/faults.hpp"

namespace oosp {
namespace {

using testutil::make_abcd_registry;
using testutil::make_event;

// In-order stream of n (A,B) pairs, one match per pair under
// SEQ(A a, B b) WHERE a.k == b.k WITHIN 10.
std::vector<Event> make_pairs(const TypeRegistry& reg, std::size_t n) {
  std::vector<Event> out;
  out.reserve(n * 2);
  EventId id = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Timestamp t = 100 + static_cast<Timestamp>(i) * 10;
    const std::int64_t key = static_cast<std::int64_t>(i);
    out.push_back(make_event(reg, "A", id++, t, key));
    out.push_back(make_event(reg, "B", id++, t + 3, key));
  }
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i].arrival = static_cast<ArrivalSeq>(i);
  return out;
}

bool same_delivery(const std::vector<Event>& a, const std::vector<Event>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id || a[i].ts != b[i].ts || a[i].type != b[i].type ||
        a[i].arrival != b[i].arrival || a[i].attrs.size() != b[i].attrs.size())
      return false;
  }
  return true;
}

std::vector<Timestamp> sorted_ts(const std::vector<Event>& v) {
  std::vector<Timestamp> ts;
  ts.reserve(v.size());
  for (const Event& e : v) ts.push_back(e.ts);
  std::sort(ts.begin(), ts.end());
  return ts;
}

class FaultTest : public ::testing::Test {
 protected:
  FaultTest() : reg_(make_abcd_registry()), stream_(make_pairs(reg_, 50)) {}
  TypeRegistry reg_;
  std::vector<Event> stream_;
};

// --- determinism: same injector + same input => identical output -------

TEST_F(FaultTest, EveryInjectorIsDeterministicUnderFixedSeed) {
  std::vector<std::unique_ptr<FaultInjector>> injectors;
  injectors.push_back(std::make_unique<DuplicateFault>(0.3, 4, 7));
  injectors.push_back(std::make_unique<LossFault>(0.2, 7));
  injectors.push_back(std::make_unique<CorruptionFault>(0.2, 7));
  injectors.push_back(std::make_unique<ClockSkewFault>(4, 20, 7));
  injectors.push_back(std::make_unique<LatencyFault>(LatencyModel::uniform(30), 0.5, 7));
  OutageConfig oc;
  oc.seed = 7;
  injectors.push_back(std::make_unique<OutageFault>(oc));
  for (const auto& inj : injectors) {
    const auto first = inj->apply(stream_);
    const auto second = inj->apply(stream_);
    EXPECT_TRUE(same_delivery(first, second)) << inj->name();
  }
}

TEST_F(FaultTest, ChainIsDeterministicUnderFixedSeeds) {
  auto make_chain = [] {
    auto chain = std::make_unique<FaultChain>();
    OutageConfig oc;
    oc.seed = 11;
    chain->add(std::make_unique<OutageFault>(oc));
    chain->add(std::make_unique<DuplicateFault>(0.25, 3, 12));
    chain->add(std::make_unique<LossFault>(0.1, 13));
    return chain;
  };
  // Two independently constructed chains, not just two apply() calls:
  // determinism must come from the seeds alone, not shared hidden state.
  const auto a = make_chain()->apply(stream_);
  const auto b = make_chain()->apply(stream_);
  EXPECT_TRUE(same_delivery(a, b));
}

// --- per-injector contracts -------------------------------------------

TEST_F(FaultTest, DuplicateRedeliversEveryEventAtFractionOne) {
  DuplicateFault dup(1.0, 3, 42);
  const auto out = dup.apply(stream_);
  EXPECT_EQ(out.size(), stream_.size() * 2);
  EXPECT_EQ(dup.stats().duplicated, stream_.size());
  EXPECT_EQ(dup.stats().events_in, stream_.size());
  EXPECT_EQ(dup.stats().events_out, out.size());
  // Every id delivered exactly twice, payload intact, arrivals reassigned.
  std::map<EventId, int> count;
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].arrival, static_cast<ArrivalSeq>(i));
    ++count[out[i].id];
  }
  for (const auto& [id, c] : count) EXPECT_EQ(c, 2) << "id " << id;
  // Originals keep their relative order.
  std::vector<EventId> firsts;
  std::set<EventId> seen;
  for (const Event& e : out)
    if (seen.insert(e.id).second) firsts.push_back(e.id);
  EXPECT_TRUE(std::is_sorted(firsts.begin(), firsts.end()));
}

TEST_F(FaultTest, LossDropsEverythingAtFractionOneAndNothingAtZero) {
  LossFault all(1.0, 5);
  EXPECT_TRUE(all.apply(stream_).empty());
  EXPECT_EQ(all.stats().lost, stream_.size());

  LossFault none(0.0, 5);
  EXPECT_TRUE(same_delivery(none.apply(stream_), stream_));
  EXPECT_EQ(none.stats().lost, 0u);
}

TEST_F(FaultTest, CorruptedEventsAreRejectedBySchemaValidation) {
  CorruptionFault corrupt(1.0, 9);
  const auto mangled = corrupt.apply(stream_);
  EXPECT_EQ(corrupt.stats().corrupted, stream_.size());

  const CompiledQuery q =
      compile_query("PATTERN SEQ(A a, B b) WHERE a.k == b.k WITHIN 10", reg_);
  EngineOptions opt;
  opt.slack = 5;
  opt.registry = &reg_;
  const auto sink = std::make_shared<CollectingSink>();
  const auto engine = testutil::make_test_engine(EngineKind::kOoo, q, sink, opt);
  for (const Event& e : mangled) engine->on_event(e);  // must not fault
  engine->finish();
  // All three mutation kinds (bad TypeId, truncated attrs, wrong-typed
  // value) are caught at admission; nothing reaches matching.
  EXPECT_EQ(engine->stats_snapshot().events_rejected, mangled.size());
  EXPECT_EQ(sink->size(), 0u);
}

TEST_F(FaultTest, ClockSkewShiftsEachSourceByOneFixedOffset) {
  const Timestamp kMaxSkew = 25;
  ClockSkewFault skew(3, kMaxSkew, 17);
  const auto out = skew.apply(stream_);
  ASSERT_EQ(out.size(), stream_.size());
  std::map<EventId, Timestamp> shift;
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].id, stream_[i].id);  // delivery order unchanged
    shift[out[i].id] = out[i].ts - stream_[i].ts;
  }
  std::map<EventId, Timestamp> per_source;
  for (const auto& [id, s] : shift) {
    EXPECT_LE(std::abs(s), kMaxSkew);
    const auto [it, inserted] = per_source.emplace(id % 3, s);
    if (!inserted) {
      EXPECT_EQ(it->second, s) << "source " << id % 3;
    }
  }
  std::uint64_t nonzero = 0;
  for (const auto& [id, s] : shift)
    if (s != 0) ++nonzero;
  EXPECT_EQ(skew.stats().skewed, nonzero);
}

TEST_F(FaultTest, LatencyAndOutageAdaptersPreserveTheEventMultiset) {
  LatencyFault latency(LatencyModel::uniform(30), 0.5, 23);
  const auto delayed = latency.apply(stream_);
  EXPECT_EQ(sorted_ts(delayed), sorted_ts(stream_));
  EXPECT_EQ(latency.slack_bound(), 30);

  OutageConfig oc;
  oc.outages = 2;
  oc.min_duration = 40;
  oc.max_duration = 80;
  oc.affected_fraction = 0.5;
  oc.seed = 23;
  OutageFault outage(oc);
  const auto flushed = outage.apply(stream_);
  EXPECT_EQ(sorted_ts(flushed), sorted_ts(stream_));
  EXPECT_LE(outage.slack_bound(), oc.max_duration);
}

TEST_F(FaultTest, AdapterSlackBoundIsSufficientForExactResults) {
  const CompiledQuery q =
      compile_query("PATTERN SEQ(A a, B b) WHERE a.k == b.k WITHIN 10", reg_);
  LatencyFault latency(LatencyModel::uniform(30), 0.7, 31);
  const auto arrivals = latency.apply(stream_);
  EngineOptions opt;
  opt.slack = latency.slack_bound();
  testutil::expect_exact(EngineKind::kOoo, q, arrivals, opt, "latency adapter");
}

// --- composition -------------------------------------------------------

TEST_F(FaultTest, ChainComposesWithOutageModelAndAggregatesStats) {
  FaultChain chain;
  OutageConfig oc;
  oc.outages = 2;
  oc.seed = 3;
  chain.add(std::make_unique<OutageFault>(oc));
  chain.add(std::make_unique<DuplicateFault>(0.4, 3, 4));
  chain.add(std::make_unique<LossFault>(0.2, 5));
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain.name(), "chain(outage+duplicate+loss)");

  const auto out = chain.apply(stream_);
  const FaultStats& s = chain.stats();
  EXPECT_EQ(s.events_in, stream_.size());
  EXPECT_EQ(s.events_out, out.size());
  EXPECT_EQ(s.duplicated, chain.stage(1).stats().duplicated);
  EXPECT_EQ(s.lost, chain.stage(2).stats().lost);
  EXPECT_EQ(out.size(), stream_.size() + s.duplicated - s.lost);
}

TEST_F(FaultTest, ChainComposesWithLatencyModel) {
  FaultChain chain;
  chain.add(std::make_unique<LatencyFault>(LatencyModel::uniform(20), 0.5, 6));
  chain.add(std::make_unique<ClockSkewFault>(2, 5, 7));
  chain.add(std::make_unique<DuplicateFault>(0.3, 2, 8));
  const auto a = chain.apply(stream_);
  const auto b = chain.apply(stream_);
  EXPECT_TRUE(same_delivery(a, b));
  EXPECT_EQ(a.size(), stream_.size() + chain.stats().duplicated);
}

// --- degraded-mode runtime --------------------------------------------

TEST_F(FaultTest, DegradedRunWithNoFaultsIsExact) {
  const CompiledQuery q =
      compile_query("PATTERN SEQ(A a, B b) WHERE a.k == b.k WITHIN 10", reg_);
  FaultChain no_faults;
  DriverConfig cfg;
  cfg.kind = EngineKind::kOoo;
  const DegradedResult r = run_degraded(q, stream_, no_faults, cfg);
  EXPECT_TRUE(r.verify.exact());
  EXPECT_EQ(r.verify.expected, 50u);
}

TEST_F(FaultTest, LossShowsUpAsMissedMatches) {
  const CompiledQuery q =
      compile_query("PATTERN SEQ(A a, B b) WHERE a.k == b.k WITHIN 10", reg_);
  LossFault loss(0.3, 19);
  DriverConfig cfg;
  cfg.kind = EngineKind::kOoo;
  const DegradedResult r = run_degraded(q, stream_, loss, cfg);
  EXPECT_GT(r.faults.lost, 0u);
  EXPECT_GT(r.verify.missed, 0u);
  EXPECT_LT(r.verify.recall(), 1.0);
  EXPECT_EQ(r.verify.false_positives, 0u);  // loss never fabricates
}

TEST_F(FaultTest, DuplicatesCostPrecisionUnlessDeduped) {
  const CompiledQuery q =
      compile_query("PATTERN SEQ(A a, B b) WHERE a.k == b.k WITHIN 10", reg_);
  DuplicateFault dup(1.0, 2, 29);
  DriverConfig cfg;
  cfg.kind = EngineKind::kOoo;
  cfg.options.slack = 5;
  const DegradedResult naive = run_degraded(q, stream_, dup, cfg);
  EXPECT_GT(naive.verify.false_positives, 0u);
  EXPECT_LT(naive.verify.precision(), 1.0);

  cfg.options.dedup_by_id = true;
  const DegradedResult guarded = run_degraded(q, stream_, dup, cfg);
  EXPECT_TRUE(guarded.verify.exact());
  EXPECT_EQ(guarded.run.stats.events_deduped, dup.stats().duplicated);
}

}  // namespace
}  // namespace oosp
