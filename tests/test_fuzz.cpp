// Randomized differential testing: for a sweep of seeds, generate a
// random query and a random disorder regime, then require the native OOO
// engine (with per-seed-rotated options), the buffered engine and — via
// net results — the aggressive policy to reproduce the oracle exactly.
// Any divergence prints the full reproduction recipe (all inputs derive
// from the seed).
#include <gtest/gtest.h>

#include <sstream>

#include "engine_test_util.hpp"
#include "stream/disorder.hpp"
#include "stream/outage.hpp"
#include "workload/synthetic.hpp"

namespace oosp {
namespace {

using testutil::run_engine;

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSweep, EnginesMatchOracle) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 0x9e3779b97f4a7c15ull + 1);

  // Random workload shape.
  SyntheticConfig cfg;
  cfg.num_events = 1'200 + static_cast<std::size_t>(rng.uniform_int(0, 1'200));
  cfg.num_types = static_cast<std::size_t>(rng.uniform_int(2, 5));
  cfg.key_cardinality = rng.uniform_int(2, 40);
  cfg.key_skew = rng.bernoulli(0.5) ? rng.uniform(0.5, 1.5) : 0.0;
  cfg.mean_gap = rng.uniform_int(2, 8);
  cfg.seed = seed;
  SyntheticWorkload wl(cfg);
  const auto ordered = wl.generate();

  // Random query over that workload.
  const Timestamp window = rng.uniform_int(40, 400);
  const std::size_t max_len = std::min<std::size_t>(cfg.num_types, 4);
  std::string query_text;
  if (cfg.num_types >= 3 && rng.bernoulli(0.35)) {
    query_text = wl.negation_query(window);
  } else {
    const auto len = static_cast<std::size_t>(
        rng.uniform_int(2, static_cast<std::int64_t>(max_len)));
    const bool keyed = rng.bernoulli(0.7);
    const std::int64_t min_val = rng.bernoulli(0.3) ? rng.uniform_int(100, 700) : -1;
    query_text = wl.seq_query(len, keyed, window, min_val);
  }

  // Random disorder: jitter or partial outage.
  std::vector<Event> arrivals;
  Timestamp slack = 0;
  if (rng.bernoulli(0.3)) {
    OutageInjector inj({.outages = static_cast<std::size_t>(rng.uniform_int(1, 4)),
                        .min_duration = rng.uniform_int(50, 150),
                        .max_duration = rng.uniform_int(150, 600),
                        .affected_fraction = rng.uniform(0.2, 0.8),
                        .seed = seed + 7});
    arrivals = inj.deliver(ordered);
    slack = inj.slack_bound();
  } else {
    const Timestamp max_delay = rng.uniform_int(20, 500);
    LatencyModel model;
    switch (rng.uniform_int(0, 2)) {
      case 0: model = LatencyModel::uniform(max_delay); break;
      case 1: model = LatencyModel::pareto(2.0, 1.3, max_delay); break;
      default:
        model = LatencyModel::normal(max_delay / 2.0, max_delay / 3.0, max_delay);
    }
    DisorderInjector inj(model, rng.uniform(0.05, 0.6), seed + 7);
    arrivals = inj.deliver(ordered);
    slack = inj.slack_bound();
  }

  const CompiledQuery q = compile_query(query_text, wl.registry());
  const auto truth = oracle_keys(q, arrivals);

  std::ostringstream recipe;
  recipe << "seed=" << seed << " query=\"" << query_text << "\" events="
         << arrivals.size() << " slack=" << slack << " expected=" << truth.size();

  // Rotate engine options by seed so the whole grid gets fuzzed over the
  // suite without running every combination on every seed.
  EngineOptions opt;
  opt.slack = slack;
  opt.partition_by_key = (seed % 2) == 0;
  opt.cache_rip = (seed % 3) == 0;
  opt.purge_period = (seed % 5 == 0) ? 1 : (seed % 5 == 1 ? 0 : 32);

  {
    const auto sink = std::make_shared<CollectingSink>();
    const auto engine = testutil::make_test_engine(EngineKind::kOoo, q, sink, opt);
    for (const Event& e : arrivals) engine->on_event(e);
    engine->finish();
    EXPECT_EQ(sink->sorted_keys(), truth) << "ooo conservative, " << recipe.str();
    EXPECT_EQ(engine->stats_snapshot().contract_violations, 0u) << recipe.str();
  }
  {
    EngineOptions aopt = opt;
    aopt.aggressive_negation = true;
    const auto sink = std::make_shared<CollectingSink>();
    const auto engine = testutil::make_test_engine(EngineKind::kOoo, q, sink, aopt);
    for (const Event& e : arrivals) engine->on_event(e);
    engine->finish();
    EXPECT_EQ(sink->net_sorted_keys(), truth) << "ooo aggressive, " << recipe.str();
  }
  {
    const auto sink = std::make_shared<CollectingSink>();
    const auto engine = testutil::make_test_engine(EngineKind::kKSlackInOrder, q, sink, opt);
    for (const Event& e : arrivals) engine->on_event(e);
    engine->finish();
    EXPECT_EQ(sink->sorted_keys(), truth) << "kslack, " << recipe.str();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep, ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace oosp
