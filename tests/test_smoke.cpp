// End-to-end smoke: compile a query, run every engine on a tiny ordered
// and disordered stream, compare with the oracle.
#include <gtest/gtest.h>

#include "engine/oracle/oracle.hpp"
#include "runtime/driver.hpp"
#include "runtime/verify.hpp"
#include "stream/disorder.hpp"
#include "workload/synthetic.hpp"

namespace oosp {
namespace {

TEST(Smoke, AllEnginesAgreeWithOracleOnOrderedStream) {
  SyntheticWorkload wl({.num_events = 2'000, .num_types = 3, .key_cardinality = 10,
                        .mean_gap = 5, .seed = 42});
  const auto events = wl.generate();
  const CompiledQuery q = compile_query(wl.seq_query(3, true, 200), wl.registry());
  const auto expected = oracle_keys(q, events);
  ASSERT_GT(expected.size(), 0u);

  for (const EngineKind kind :
       {EngineKind::kInOrder, EngineKind::kNfa, EngineKind::kOoo,
        EngineKind::kKSlackInOrder, EngineKind::kKSlackNfa}) {
    DriverConfig cfg;
    cfg.kind = kind;
    cfg.collect_matches = true;
    const RunResult r = run_stream(q, events, cfg);
    const VerifyResult v = verify_against_oracle(q, events, r.collected);
    EXPECT_TRUE(v.exact()) << to_string(kind) << " missed=" << v.missed
                           << " false=" << v.false_positives;
  }
}

TEST(Smoke, OooEngineExactOnDisorderedStream) {
  SyntheticWorkload wl({.num_events = 2'000, .num_types = 3, .key_cardinality = 10,
                        .mean_gap = 5, .seed = 43});
  const auto ordered = wl.generate();
  DisorderInjector inj(LatencyModel::uniform(100), 0.2, 99);
  const auto arrivals = inj.deliver(ordered);
  ASSERT_GT(DisorderInjector::measure(arrivals).late_events, 0u);

  const CompiledQuery q = compile_query(wl.seq_query(3, true, 200), wl.registry());

  DriverConfig cfg;
  cfg.kind = EngineKind::kOoo;
  cfg.options.slack = inj.slack_bound();
  cfg.collect_matches = true;
  const RunResult r = run_stream(q, arrivals, cfg);
  const VerifyResult v = verify_against_oracle(q, arrivals, r.collected);
  EXPECT_TRUE(v.exact()) << "missed=" << v.missed << " false=" << v.false_positives
                         << " expected=" << v.expected;

  cfg.kind = EngineKind::kKSlackInOrder;
  const RunResult rb = run_stream(q, arrivals, cfg);
  const VerifyResult vb = verify_against_oracle(q, arrivals, rb.collected);
  EXPECT_TRUE(vb.exact()) << "missed=" << vb.missed << " false=" << vb.false_positives;
}

}  // namespace
}  // namespace oosp
