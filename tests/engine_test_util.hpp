// Shared helpers for the engine test suites.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "engine/engines.hpp"
#include "engine/oracle/oracle.hpp"
#include "event/event.hpp"
#include "query/compiled.hpp"
#include "runtime/verify.hpp"

namespace oosp::testutil {

// Registry with A/B/C/D{k:int, v:int}.
inline TypeRegistry make_abcd_registry() {
  TypeRegistry reg;
  const Schema s({{"k", ValueType::kInt}, {"v", ValueType::kInt}});
  for (const char* n : {"A", "B", "C", "D"}) reg.register_type(n, s);
  return reg;
}

inline Event make_event(const TypeRegistry& reg, const char* type, EventId id,
                        Timestamp ts, std::int64_t k = 0, std::int64_t v = 0) {
  Event e;
  e.type = reg.lookup(type);
  e.id = id;
  e.ts = ts;
  e.attrs = {Value(k), Value(v)};
  return e;
}

// Engines co-own their query and sink (EngineContext). Tests keep
// value-typed CompiledQuery locals, so share a copy per engine here.
inline std::unique_ptr<PatternEngine> make_test_engine(EngineKind kind,
                                                       const CompiledQuery& q,
                                                       std::shared_ptr<MatchSink> sink,
                                                       EngineOptions options = {}) {
  return make_engine(kind, std::make_shared<const CompiledQuery>(q), std::move(sink),
                     std::move(options));
}

// Feeds `arrivals` (arrival order) through a fresh engine; returns
// collected matches.
inline std::vector<Match> run_engine(EngineKind kind, const CompiledQuery& q,
                                     const std::vector<Event>& arrivals,
                                     EngineOptions options = {}) {
  const auto sink = std::make_shared<CollectingSink>();
  const auto engine = make_test_engine(kind, q, sink, options);
  for (const Event& e : arrivals) engine->on_event(e);
  engine->finish();
  return sink->matches();
}

inline std::vector<MatchKey> run_engine_keys(EngineKind kind, const CompiledQuery& q,
                                             const std::vector<Event>& arrivals,
                                             EngineOptions options = {}) {
  const auto sink = std::make_shared<CollectingSink>();
  const auto engine = make_test_engine(kind, q, sink, options);
  for (const Event& e : arrivals) engine->on_event(e);
  engine->finish();
  return sink->sorted_keys();
}

// Asserts an engine run over `arrivals` reproduces the oracle exactly.
inline void expect_exact(EngineKind kind, const CompiledQuery& q,
                         const std::vector<Event>& arrivals, EngineOptions options = {},
                         const char* context = "") {
  const auto produced = run_engine(kind, q, arrivals, options);
  const VerifyResult v = verify_against_oracle(q, arrivals, produced);
  EXPECT_TRUE(v.exact()) << to_string(kind) << " " << context
                         << ": expected=" << v.expected << " produced=" << v.produced
                         << " missed=" << v.missed
                         << " false_positives=" << v.false_positives;
}

}  // namespace oosp::testutil
