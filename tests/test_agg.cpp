// Windowed aggregation over OOO streams (engine/agg/): the AggTree
// store, AGG query parsing/compilation, recompute-oracle exactness for
// every function, bit-identical results across arrival orders / shard
// counts / batch sizes, speculative emission + retraction, checkpoint
// byte-identity, kill-at-batch-boundary recovery with agg queries, and
// overload shed accounting with mixed agg+pattern sessions.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "engine/agg/agg_engine.hpp"
#include "engine/agg/agg_tree.hpp"
#include "engine/engines.hpp"
#include "query/compiled.hpp"
#include "query/parser.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/session.hpp"
#include "stream/disorder.hpp"
#include "stream/faults.hpp"
#include "stream/latency.hpp"

namespace oosp {
namespace {

// ------------------------------------------------------------ fixtures

// T{key:int, val:int, dv:double, tag:string}; U{key:int, val:int}.
TypeRegistry make_agg_registry() {
  TypeRegistry reg;
  reg.register_type("T", Schema({{"key", ValueType::kInt},
                                 {"val", ValueType::kInt},
                                 {"dv", ValueType::kDouble},
                                 {"tag", ValueType::kString}}));
  reg.register_type("U", Schema({{"key", ValueType::kInt}, {"val", ValueType::kInt}}));
  return reg;
}

Event make_t(const TypeRegistry& reg, EventId id, Timestamp ts, std::int64_t key,
             std::int64_t val, double dv) {
  Event e;
  e.type = reg.lookup("T");
  e.id = id;
  e.ts = ts;
  e.attrs = {Value(key), Value(val), Value(dv), Value(std::string("x"))};
  return e;
}

Event make_u(const TypeRegistry& reg, EventId id, Timestamp ts, std::int64_t key,
             std::int64_t val) {
  Event e;
  e.type = reg.lookup("U");
  e.id = id;
  e.ts = ts;
  e.attrs = {Value(key), Value(val)};
  return e;
}

// ts-ordered stream of T events with inexact doubles (so a fold-order
// bug shows up at the ulp level) and a few exact key collisions.
std::vector<Event> gen_stream(const TypeRegistry& reg, std::size_t n,
                              std::int64_t keys, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Event> out;
  out.reserve(n);
  Timestamp ts = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ts += rng.uniform_int(0, 7);
    out.push_back(make_t(reg, i + 1, ts, rng.uniform_int(0, keys - 1),
                         rng.uniform_int(-50, 50),
                         static_cast<double>(rng.uniform_int(-1000, 1000)) * 0.1));
  }
  return out;
}

bool bits_equal(const Value& a, const Value& b) {
  if (a.type() != b.type()) return false;
  if (a.type() == ValueType::kDouble)
    return std::bit_cast<std::uint64_t>(a.as_double()) ==
           std::bit_cast<std::uint64_t>(b.as_double());
  return a.compare(b) == 0;
}

// Decoded window result: the synthetic event's payload.
struct AggOut {
  EventId id = 0;
  Timestamp start = 0, end = 0;
  std::int64_t key = 0;
  Value value;
  std::int64_t count = 0;

  bool operator==(const AggOut& o) const {
    return id == o.id && start == o.start && end == o.end && key == o.key &&
           count == o.count && bits_equal(value, o.value);
  }
};

AggOut decode(const Match& m) {
  EXPECT_EQ(m.events.size(), 1u);
  const Event& e = m.events.front();
  EXPECT_EQ(e.attrs.size(), 5u);
  return AggOut{e.id,
                e.attrs[0].as_int(),
                e.attrs[1].as_int(),
                e.attrs[2].as_int(),
                e.attrs[3],
                e.attrs[4].as_int()};
}

std::vector<AggOut> decode_all(const std::vector<Match>& ms) {
  std::vector<AggOut> out;
  out.reserve(ms.size());
  for (const Match& m : ms) out.push_back(decode(m));
  return out;
}

void sort_outs(std::vector<AggOut>& v) {
  std::sort(v.begin(), v.end(), [](const AggOut& a, const AggOut& b) {
    return std::tie(a.end, a.key, a.start) < std::tie(b.end, b.key, b.start);
  });
}

// Brute-force recompute oracle over the full event multiset, mirroring
// the engine's numeric contract: int sums wrap through uint64, double
// sums fold in (ts, id) order, avg divides in double.
std::vector<AggOut> oracle(const CompiledQuery& q, std::vector<Event> events) {
  const AggSpec& spec = q.agg();
  const Timestamp w = q.window(), s = spec.slide;
  std::sort(events.begin(), events.end(), TsIdLess{});
  const auto floor_div = [](std::int64_t a, std::int64_t b) {
    const std::int64_t qt = a / b, r = a % b;
    return (r != 0 && ((r < 0) != (b < 0))) ? qt - 1 : qt;
  };
  struct Acc {
    std::uint64_t count = 0;
    std::uint64_t isum = 0;
    std::int64_t imin = std::numeric_limits<std::int64_t>::max();
    std::int64_t imax = std::numeric_limits<std::int64_t>::min();
    double dsum = 0.0;
    double dmin = std::numeric_limits<double>::infinity();
    double dmax = -std::numeric_limits<double>::infinity();
  };
  std::map<std::pair<std::int64_t, std::int64_t>, Acc> accs;  // (key, index)
  for (const Event& e : events) {
    if (e.type != spec.type) continue;
    std::int64_t iv = 0;
    double dv = 0.0;
    if (spec.fn != AggFn::kCount) {
      const Value& v = e.attrs.at(spec.value_slot);
      if (spec.value_type == ValueType::kDouble) {
        dv = v.as_double();
        if (dv == 0.0) dv = 0.0;
      } else {
        iv = v.as_int();
      }
    }
    const std::int64_t key = spec.has_key ? e.attrs.at(spec.key_slot).as_int() : 0;
    const std::int64_t hi = floor_div(e.ts, s);
    const std::int64_t lo = floor_div(e.ts - w, s) + 1;
    for (std::int64_t i = lo; i <= hi; ++i) {
      Acc& a = accs[{key, i}];
      ++a.count;
      a.isum += static_cast<std::uint64_t>(iv);
      a.imin = std::min(a.imin, iv);
      a.imax = std::max(a.imax, iv);
      a.dsum += dv;
      a.dmin = std::min(a.dmin, dv);
      a.dmax = std::max(a.dmax, dv);
    }
  }
  std::vector<AggOut> out;
  for (const auto& [ki, a] : accs) {
    AggOut r;
    r.key = ki.first;
    r.start = ki.second * s;
    r.end = ki.second * s + w;
    r.count = static_cast<std::int64_t>(a.count);
    const bool dbl = spec.value_type == ValueType::kDouble;
    switch (spec.fn) {
      case AggFn::kCount: r.value = Value(r.count); break;
      case AggFn::kSum:
        r.value = dbl ? Value(a.dsum == 0.0 ? 0.0 : a.dsum)
                      : Value(static_cast<std::int64_t>(a.isum));
        break;
      case AggFn::kMin: r.value = dbl ? Value(a.dmin) : Value(a.imin); break;
      case AggFn::kMax: r.value = dbl ? Value(a.dmax) : Value(a.imax); break;
      case AggFn::kAvg: {
        const double sum =
            dbl ? a.dsum : static_cast<double>(static_cast<std::int64_t>(a.isum));
        const double avg = sum / static_cast<double>(a.count);
        r.value = Value(avg == 0.0 ? 0.0 : avg);
        break;
      }
    }
    out.push_back(std::move(r));
  }
  sort_outs(out);
  return out;
}

std::vector<AggOut> run_agg_engine(const CompiledQuery& q,
                                   const std::vector<Event>& arrivals,
                                   EngineOptions options) {
  const auto sink = std::make_shared<CollectingSink>();
  const auto engine = make_engine(EngineKind::kAgg,
                                  std::make_shared<const CompiledQuery>(q), sink,
                                  std::move(options));
  for (const Event& e : arrivals) engine->on_event(e);
  engine->finish();
  return decode_all(sink->matches());
}

// The oracle does not model synthetic result-event ids; zero them on the
// engine side before comparing against it.
std::vector<AggOut> strip_ids(std::vector<AggOut> v) {
  for (AggOut& o : v) o.id = 0;
  return v;
}

// ------------------------------------------------------------- AggTree

TEST(AggTree, RandomInsertEvictQueryMatchesModel) {
  Rng rng(7);
  AggTree tree(8);  // tiny leaves force frequent splits
  std::vector<AggEntry> model;
  Timestamp clock = 0;
  EventId next_id = 1;
  for (int round = 0; round < 4000; ++round) {
    const int roll = rng.uniform_int(0, 99);
    if (roll < 70) {
      clock += rng.uniform_int(0, 3);
      AggEntry e;
      e.ts = std::max<Timestamp>(0, clock - rng.uniform_int(0, 40));  // mostly near tail
      e.id = next_id++;
      e.ival = rng.uniform_int(-100, 100);
      e.dval = static_cast<double>(rng.uniform_int(-500, 500)) * 0.25;
      tree.insert(e);
      model.push_back(e);
    } else if (roll < 80 && clock > 60) {
      const Timestamp bound = clock - 60;
      const std::size_t before = model.size();
      std::erase_if(model, [bound](const AggEntry& e) { return e.ts < bound; });
      EXPECT_EQ(tree.evict_below(bound), before - model.size());
    } else {
      const Timestamp lo = clock - rng.uniform_int(0, 80);
      const Timestamp hi = lo + rng.uniform_int(1, 50);
      const AggSummary got = tree.summarize(lo, hi);
      AggSummary want;
      for (const AggEntry& e : model)
        if (e.ts >= lo && e.ts < hi) want.add(e);
      EXPECT_EQ(got.count, want.count);
      EXPECT_EQ(got.isum, want.isum);
      if (want.count > 0) {
        EXPECT_EQ(got.imin, want.imin);
        EXPECT_EQ(got.imax, want.imax);
        EXPECT_EQ(got.dmin, want.dmin);
        EXPECT_EQ(got.dmax, want.dmax);
      }
      // fold() must visit the same entries in (ts, id) order.
      std::vector<std::pair<Timestamp, EventId>> folded;
      tree.fold(lo, hi, [&](const AggEntry& e) { folded.emplace_back(e.ts, e.id); });
      EXPECT_EQ(folded.size(), want.count);
      EXPECT_TRUE(std::is_sorted(folded.begin(), folded.end()));
    }
  }
  EXPECT_EQ(tree.size(), model.size());
}

// ------------------------------------------------------ query compiler

TEST(AggQuery, ParsesCompilesAndRoundTripsCanonicalText) {
  const TypeRegistry reg = make_agg_registry();
  const CompiledQuery q =
      compile_query("agg SUM(T.val) over 100 slide 25 by key", reg);
  ASSERT_TRUE(q.is_agg());
  EXPECT_EQ(q.text(), "AGG sum(T.val) OVER 100 SLIDE 25 BY key");
  EXPECT_EQ(q.agg().fn, AggFn::kSum);
  EXPECT_EQ(q.agg().slide, 25);
  EXPECT_TRUE(q.agg().has_key);
  EXPECT_TRUE(q.partitionable());
  EXPECT_EQ(q.window(), 100);
  EXPECT_EQ(q.num_steps(), 1u);
  EXPECT_TRUE(q.relevant(reg.lookup("T")));
  EXPECT_FALSE(q.relevant(reg.lookup("U")));
  // Canonical text reparses to the same compiled form.
  const CompiledQuery q2 = compile_query(q.text(), reg);
  EXPECT_EQ(q2.text(), q.text());

  // Tumbling default: no SLIDE in the canonical form.
  const CompiledQuery t = compile_query("AGG count(T) OVER 60 BY key", reg);
  EXPECT_EQ(t.text(), "AGG count(T) OVER 60 BY key");
  EXPECT_EQ(t.agg().slide, 60);

  // Unkeyed: not partitionable.
  EXPECT_FALSE(compile_query("AGG avg(T.dv) OVER 60", reg).partitionable());

  EXPECT_THROW(compile_query("AGG count(T.val) OVER 10", reg), QueryParseError);
  EXPECT_THROW(compile_query("AGG sum(T) OVER 10", reg), QueryParseError);
  EXPECT_THROW(compile_query("AGG median(T.val) OVER 10", reg), QueryParseError);
  EXPECT_THROW(compile_query("AGG sum(T.val) OVER 10 SLIDE 20", reg),
               QueryParseError);
  EXPECT_THROW(compile_query("AGG sum(T.val) OVER 0", reg), QueryParseError);
  EXPECT_THROW(compile_query("AGG sum(T.tag) OVER 10", reg), QueryAnalysisError);
  EXPECT_THROW(compile_query("AGG sum(T.nope) OVER 10", reg), QueryAnalysisError);
  EXPECT_THROW(compile_query("AGG sum(Nope.val) OVER 10", reg), QueryAnalysisError);
  EXPECT_THROW(compile_query("AGG sum(T.val) OVER 10 BY nope", reg),
               QueryAnalysisError);
  // AGG queries refuse non-agg engine kinds and vice versa.
  const auto sink = std::make_shared<NullSink>();
  EXPECT_THROW(make_engine(EngineKind::kOoo,
                           compile_query_shared("AGG count(T) OVER 10", reg), sink),
               std::invalid_argument);
  EXPECT_THROW(
      make_engine(EngineKind::kAgg,
                  compile_query_shared("PATTERN SEQ(T a, U b) WITHIN 5", reg), sink),
      std::invalid_argument);
}

// ------------------------------------------------------ oracle matrix

TEST(AggEngineOracle, EveryFunctionMatchesRecomputeInOrder) {
  const TypeRegistry reg = make_agg_registry();
  const auto stream = gen_stream(reg, 3000, 8, 11);
  const char* queries[] = {
      "AGG count(T) OVER 64 BY key",
      "AGG sum(T.val) OVER 64 SLIDE 16 BY key",
      "AGG sum(T.dv) OVER 64 SLIDE 16 BY key",
      "AGG min(T.val) OVER 48 SLIDE 12 BY key",
      "AGG max(T.dv) OVER 48 SLIDE 12 BY key",
      "AGG avg(T.val) OVER 96 SLIDE 32 BY key",
      "AGG avg(T.dv) OVER 96 SLIDE 32 BY key",
      "AGG count(T) OVER 50",  // unkeyed tumbling
      "AGG sum(T.dv) OVER 200 SLIDE 10 BY key",  // heavy overlap
  };
  for (const char* text : queries) {
    const CompiledQuery q = compile_query(text, reg);
    auto got = run_agg_engine(q, stream, EngineOptions{});
    ASSERT_GT(got.size(), 10u) << text;
    sort_outs(got);
    EXPECT_EQ(strip_ids(got), oracle(q, stream)) << text;
  }
}

// -------------------------------------------- arrival-order determinism

TEST(AggEngineOracle, ShuffledArrivalBitIdenticalToInOrder) {
  const TypeRegistry reg = make_agg_registry();
  const auto ordered = gen_stream(reg, 3000, 6, 23);
  DisorderInjector inj(LatencyModel::uniform(48), 0.35, 5);
  const auto shuffled = inj.deliver(ordered);
  EngineOptions opt;
  opt.slack = inj.slack_bound();
  for (const char* text : {"AGG sum(T.dv) OVER 64 SLIDE 16 BY key",
                           "AGG count(T) OVER 50", "AGG min(T.val) OVER 80 BY key",
                           "AGG avg(T.dv) OVER 96 SLIDE 24 BY key"}) {
    const CompiledQuery q = compile_query(text, reg);
    // The emission SEQUENCE (not just the multiset) is canonical: the
    // seal agenda drains in (end, index, key) order under a monotone
    // watermark regardless of arrival order.
    const auto in_order = run_agg_engine(q, ordered, opt);
    const auto ooo = run_agg_engine(q, shuffled, opt);
    ASSERT_GT(in_order.size(), 10u) << text;
    EXPECT_EQ(ooo, in_order) << text;
    auto sorted = in_order;
    sort_outs(sorted);
    EXPECT_EQ(strip_ids(sorted), oracle(q, ordered)) << text;
  }
}

// -------------------------------------- shards × batch sizes bit-identity

struct TaggedOut {
  QueryId query;
  AggOut out;
  bool operator==(const TaggedOut& o) const {
    return query == o.query && out == o.out;
  }
};

std::vector<TaggedOut> run_agg_session(const TypeRegistry& reg,
                                       const std::vector<Event>& arrivals,
                                       Timestamp slack, std::size_t shards,
                                       std::size_t batch, std::uint64_t seed,
                                       std::size_t checkpoint_every = 0,
                                       WorkerKillHook hook = {},
                                       std::size_t* shard_count = nullptr) {
  const auto sink = std::make_shared<CollectingTaggedSink>();
  SessionConfig cfg;
  cfg.slack(slack).shards(shards).metrics(false);
  cfg.query("AGG sum(T.dv) OVER 120 SLIDE 30 BY key");
  cfg.query("AGG count(T) OVER 90 BY key");
  if (checkpoint_every) {
    cfg.checkpoint_every(checkpoint_every)
        .max_restarts(10)
        .restart_backoff(std::chrono::milliseconds(0), std::chrono::milliseconds(0));
  }
  if (hook) cfg.kill_hook(std::move(hook));
  Session session(reg, cfg, sink);
  if (shard_count != nullptr) *shard_count = session.shard_count();
  if (batch == 0) {
    for (const Event& e : arrivals) session.push(e);
  } else {
    Rng rng(seed);
    std::size_t i = 0;
    while (i < arrivals.size()) {
      const std::size_t want =
          seed ? static_cast<std::size_t>(rng.uniform_int(1, 2 * batch)) : batch;
      const std::size_t n = std::min(want, arrivals.size() - i);
      session.push_batch(std::span<const Event>(arrivals.data() + i, n));
      i += n;
    }
  }
  session.close();
  std::vector<TaggedOut> out;
  out.reserve(sink->matches().size());
  for (const TaggedMatch& tm : sink->matches())
    out.push_back(TaggedOut{tm.query, decode(tm.match)});
  return out;
}

TEST(AggSession, BitIdenticalAcrossShardsAndBatchSizes) {
  const TypeRegistry reg = make_agg_registry();
  const auto ordered = gen_stream(reg, 2500, 12, 41);
  DisorderInjector inj(LatencyModel::uniform(40), 0.3, 9);
  const auto arrivals = inj.deliver(ordered);
  const Timestamp slack = inj.slack_bound();

  const auto baseline = run_agg_session(reg, arrivals, slack, 1, 0, 0);
  ASSERT_GT(baseline.size(), 20u);

  // Against the recompute oracle, per query.
  for (QueryId qid : {QueryId{0}, QueryId{1}}) {
    const CompiledQuery q =
        compile_query(qid == 0 ? "AGG sum(T.dv) OVER 120 SLIDE 30 BY key"
                               : "AGG count(T) OVER 90 BY key",
                      reg);
    std::vector<AggOut> got;
    for (const TaggedOut& t : baseline)
      if (t.query == qid) got.push_back(t.out);
    sort_outs(got);
    EXPECT_EQ(strip_ids(got), oracle(q, ordered)) << "query " << qid;
  }

  for (const std::size_t shards : {std::size_t{1}, std::size_t{8}}) {
    std::size_t effective = 0;
    // batch: 0 = per-event push; 1 / 256 = fixed; 256+seed = ragged.
    EXPECT_EQ(run_agg_session(reg, arrivals, slack, shards, 1, 0), baseline)
        << "shards=" << shards << " batch=1";
    EXPECT_EQ(run_agg_session(reg, arrivals, slack, shards, 256, 0), baseline)
        << "shards=" << shards << " batch=256";
    EXPECT_EQ(run_agg_session(reg, arrivals, slack, shards, 256, 77), baseline)
        << "shards=" << shards << " batch=ragged";
    const auto per_event = run_agg_session(reg, arrivals, slack, shards, 0, 0,
                                           0, {}, &effective);
    EXPECT_EQ(per_event, baseline) << "shards=" << shards << " per-event";
    EXPECT_EQ(effective, shards) << "keyed agg queries must actually shard";
  }
}

TEST(AggSession, UnkeyedAggFallsBackToSingleShard) {
  const TypeRegistry reg = make_agg_registry();
  const auto stream = gen_stream(reg, 400, 4, 3);
  const auto sink = std::make_shared<CollectingTaggedSink>();
  Session session(reg,
                  SessionConfig{}
                      .shards(8)
                      .metrics(false)
                      .query("AGG sum(T.val) OVER 40"),
                  sink);
  EXPECT_EQ(session.shard_count(), 1u);
  EXPECT_FALSE(session.shard_fallback_reason().empty());
  for (const Event& e : stream) session.push(e);
  session.close();
  std::vector<AggOut> got;
  for (const TaggedMatch& tm : sink->matches()) got.push_back(decode(tm.match));
  sort_outs(got);
  EXPECT_EQ(strip_ids(got),
            oracle(compile_query("AGG sum(T.val) OVER 40", reg), stream));
}

// --------------------------------------------- speculative emission

TEST(AggEngineSpeculative, NetResultsEqualConservativeAndRetractionsPair) {
  const TypeRegistry reg = make_agg_registry();
  const auto ordered = gen_stream(reg, 2000, 5, 57);
  DisorderInjector inj(LatencyModel::uniform(64), 0.4, 13);
  const auto shuffled = inj.deliver(ordered);
  const CompiledQuery q =
      compile_query("AGG sum(T.dv) OVER 48 SLIDE 12 BY key", reg);
  EngineOptions conservative;
  conservative.slack = inj.slack_bound();
  EngineOptions aggressive = conservative;
  aggressive.aggressive_negation = true;

  const auto final_outs = run_agg_engine(q, shuffled, conservative);
  const auto sink = std::make_shared<CollectingSink>();
  const auto engine = make_engine(EngineKind::kAgg,
                                  std::make_shared<const CompiledQuery>(q), sink,
                                  aggressive);
  EXPECT_EQ(engine->name(), "agg-speculative");
  for (const Event& e : shuffled) engine->on_event(e);
  engine->finish();
  const auto emitted = decode_all(sink->matches());
  const auto retractions = decode_all(sink->retracted());
  ASSERT_GT(retractions.size(), 0u) << "disorder must trigger revisions";
  EXPECT_EQ(sink->matches().size(), final_outs.size() + retractions.size());

  // Every retraction revokes a prior emission (payload-identical), at
  // most once; the net multiset equals the conservative output.
  const auto as_key = [](const AggOut& o) {
    return std::tuple(o.id, o.start, o.end, o.key, o.count,
                      o.value.type() == ValueType::kDouble
                          ? std::bit_cast<std::uint64_t>(o.value.as_double())
                          : static_cast<std::uint64_t>(o.value.as_int()));
  };
  std::map<decltype(as_key(AggOut{})), int> net;
  for (const AggOut& o : emitted) ++net[as_key(o)];
  for (const AggOut& o : retractions) {
    auto it = net.find(as_key(o));
    ASSERT_NE(it, net.end()) << "retraction without a matching emission";
    if (--it->second == 0) net.erase(it);
  }
  std::map<decltype(as_key(AggOut{})), int> want;
  for (const AggOut& o : final_outs) ++want[as_key(o)];
  EXPECT_EQ(net, want);
}

// -------------------------------------------------- checkpoint identity

TEST(AggCheckpoint, SnapshotRoundTripIsByteIdenticalAndContinues) {
  const TypeRegistry reg = make_agg_registry();
  const auto ordered = gen_stream(reg, 1200, 6, 71);
  DisorderInjector inj(LatencyModel::uniform(32), 0.3, 17);
  const auto arrivals = inj.deliver(ordered);
  for (const bool aggressive : {false, true}) {
    for (const char* text :
         {"AGG sum(T.dv) OVER 60 SLIDE 15 BY key", "AGG max(T.val) OVER 44"}) {
      EngineOptions opt;
      opt.slack = inj.slack_bound();
      opt.aggressive_negation = aggressive;
      opt.dedup_by_id = true;  // exercise admission state in the frame
      const CompiledQuery q = compile_query(text, reg);
      const auto mk = [&](std::shared_ptr<CollectingSink>& sink) {
        sink = std::make_shared<CollectingSink>();
        return make_engine(EngineKind::kAgg,
                           std::make_shared<const CompiledQuery>(q), sink, opt);
      };
      std::shared_ptr<CollectingSink> sink_a, sink_b;
      const auto a = mk(sink_a);
      const std::size_t cut = arrivals.size() / 2;
      for (std::size_t i = 0; i < cut; ++i) a->on_event(arrivals[i]);
      const auto bytes = checkpoint_engine(*a);

      const auto b = mk(sink_b);
      restore_engine(*b, bytes);
      // Byte-identity: the restored engine re-snapshots to the same frame.
      EXPECT_EQ(checkpoint_engine(*b), bytes) << text << " aggressive=" << aggressive;

      // And both continuations are indistinguishable from here on.
      sink_a->clear();
      for (std::size_t i = cut; i < arrivals.size(); ++i) {
        a->on_event(arrivals[i]);
        b->on_event(arrivals[i]);
      }
      a->finish();
      b->finish();
      EXPECT_EQ(decode_all(sink_b->matches()), decode_all(sink_a->matches()))
          << text << " aggressive=" << aggressive;
      EXPECT_EQ(checkpoint_engine(*b), checkpoint_engine(*a))
          << text << " aggressive=" << aggressive;
    }
  }
}

TEST(AggCheckpoint, GuardRejectsWrongQueryOrMode) {
  const TypeRegistry reg = make_agg_registry();
  const CompiledQuery q1 = compile_query("AGG count(T) OVER 10", reg);
  const CompiledQuery q2 = compile_query("AGG count(T) OVER 20", reg);
  const auto sink = std::make_shared<NullSink>();
  const auto a = make_engine(EngineKind::kAgg,
                             std::make_shared<const CompiledQuery>(q1), sink);
  const auto bytes = checkpoint_engine(*a);
  const auto wrong_query = make_engine(
      EngineKind::kAgg, std::make_shared<const CompiledQuery>(q2), sink);
  EXPECT_THROW(restore_engine(*wrong_query, bytes), CheckpointError);
  EngineOptions aggressive;
  aggressive.aggressive_negation = true;
  const auto wrong_mode = make_engine(
      EngineKind::kAgg, std::make_shared<const CompiledQuery>(q1), sink, aggressive);
  EXPECT_THROW(restore_engine(*wrong_mode, bytes), CheckpointError);
}

// ----------------------------------------------- recovery with kills

TEST(AggRecovery, KillAtEveryBatchBoundaryYieldsFaultFreeOutput) {
  const TypeRegistry reg = make_agg_registry();
  const auto ordered = gen_stream(reg, 260, 8, 91);
  DisorderInjector inj(LatencyModel::uniform(30), 0.25, 21);
  const auto arrivals = inj.deliver(ordered);
  const Timestamp slack = inj.slack_bound();
  constexpr std::size_t kBatch = 32;

  const auto fault_free =
      run_agg_session(reg, arrivals, slack, 3, 0, 0, /*checkpoint_every=*/7);
  ASSERT_GT(fault_free.size(), 5u);
  EXPECT_EQ(run_agg_session(reg, arrivals, slack, 3, kBatch, 0, 7), fault_free);
  for (std::size_t i = 0; i < arrivals.size(); i += kBatch) {
    WorkerKillFault fault({arrivals[i].id});
    const auto run =
        run_agg_session(reg, arrivals, slack, 3, kBatch, 0, 7, fault.hook());
    EXPECT_EQ(run, fault_free) << "diverged after kill at batch boundary " << i;
    EXPECT_EQ(fault.victims_remaining(), 0u) << "kill at " << i << " never fired";
  }
}

// ------------------------------------------- overload shed accounting

TEST(AggOverload, ShedAccountingClosesWithMixedAggAndPatternQueries) {
  const TypeRegistry reg = make_agg_registry();
  // Offered load: T events (agg query) interleaved with U pairs (pattern
  // query on U only, so the per-query shed attribution is disjoint).
  Rng rng(5);
  std::vector<Event> offered;
  Timestamp ts = 0;
  std::size_t n_t = 0, n_u = 0;
  EventId id = 1;
  for (std::size_t i = 0; i < 4000; ++i) {
    ts += 1;
    if (i % 2 == 0) {
      offered.push_back(make_t(reg, id++, ts, rng.uniform_int(0, 7), 1, 0.5));
      ++n_t;
    } else {
      offered.push_back(make_u(reg, id++, ts, rng.uniform_int(0, 7), 1));
      ++n_u;
    }
  }
  OverloadConfig cfg;
  cfg.policy = OverloadPolicy::kShedNewest;
  const auto sink = std::make_shared<CollectingTaggedSink>();
  Session session(reg,
                  SessionConfig{}
                      .slack(50)
                      .shards(2)
                      .queue_capacity(64)
                      .overload(std::move(cfg))
                      .delay_hook([](const Event&) {
                        std::this_thread::sleep_for(std::chrono::microseconds(300));
                      })
                      .query("AGG count(T) OVER 100 BY key")
                      .query("PATTERN SEQ(U a, U b) WHERE a.key == b.key WITHIN 40"),
                  sink);
  ASSERT_EQ(session.shard_count(), 2u) << session.shard_fallback_reason();
  for (const Event& e : offered) session.push(e);
  session.close();

  ASSERT_GT(session.overload_shed(), 0u);
  // Offered = admitted + shed, per query (disjoint types) and in total;
  // every view of the count agrees.
  EXPECT_EQ(session.stats(0).events_seen + session.overload_shed(0), n_t);
  EXPECT_EQ(session.stats(1).events_seen + session.overload_shed(1), n_u);
  EXPECT_EQ(session.overload_shed(0) + session.overload_shed(1),
            session.overload_shed());
  EXPECT_EQ(session.degraded_accounting().shed_events, session.overload_shed());
}

// ------------------------------------------------- late-policy corners

TEST(AggEngineLate, DropExcludesViolatorsAndAdmitCannotResurrectSealedWindows) {
  const TypeRegistry reg = make_agg_registry();
  const CompiledQuery q = compile_query("AGG sum(T.val) OVER 5 BY key", reg);
  std::vector<Event> stream;
  for (Timestamp t = 1; t <= 10; ++t)
    stream.push_back(make_t(reg, static_cast<EventId>(t), t, 0, t, 0.0));
  // ts=2 arrives after the clock reached 10 (slack 0): sealed territory.
  stream.push_back(make_t(reg, 99, 2, 0, 1000, 0.0));
  const auto expected = oracle(q, {stream.begin(), stream.end() - 1});

  for (const LatePolicy policy : {LatePolicy::kDrop, LatePolicy::kAdmit,
                                  LatePolicy::kQuarantine}) {
    EngineOptions opt;
    opt.late_policy = policy;
    const auto sink = std::make_shared<CollectingSink>();
    const auto engine = make_engine(EngineKind::kAgg,
                                    std::make_shared<const CompiledQuery>(q), sink,
                                    opt);
    for (const Event& e : stream) engine->on_event(e);
    engine->finish();
    auto got = decode_all(sink->matches());
    sort_outs(got);
    // All three policies agree here: under kAdmit the violator's only
    // containing window is sealed, so it cannot change any result.
    EXPECT_EQ(strip_ids(got), expected) << to_string(policy);
    const EngineStats s = engine->stats_snapshot();
    EXPECT_EQ(s.contract_violations, 1u) << to_string(policy);
    EXPECT_EQ(s.events_dropped_late, policy == LatePolicy::kDrop ? 1u : 0u);
    EXPECT_EQ(s.events_quarantined, policy == LatePolicy::kQuarantine ? 1u : 0u);
    if (policy == LatePolicy::kQuarantine) {
      const auto parked = engine->drain_quarantine();
      ASSERT_EQ(parked.size(), 1u);
      EXPECT_EQ(parked.front().id, 99u);
    }
  }
}

TEST(AggEngineLate, DedupSuppressesRedeliveredEvents) {
  const TypeRegistry reg = make_agg_registry();
  const CompiledQuery q = compile_query("AGG count(T) OVER 10 BY key", reg);
  EngineOptions opt;
  opt.dedup_by_id = true;
  std::vector<Event> stream;
  for (Timestamp t = 0; t < 20; ++t)
    stream.push_back(make_t(reg, static_cast<EventId>(t + 1), t, 0, 1, 0.0));
  auto twice = stream;
  twice.insert(twice.end(), stream.begin(), stream.end());
  auto got = run_agg_engine(q, twice, opt);
  sort_outs(got);
  EXPECT_EQ(strip_ids(got), oracle(q, stream));
}

}  // namespace
}  // namespace oosp
