// Unit tests: typed attribute values (event/value.hpp).
#include <gtest/gtest.h>

#include <sstream>

#include "event/value.hpp"

namespace oosp {
namespace {

TEST(Value, DefaultIsIntZero) {
  const Value v;
  EXPECT_EQ(v.type(), ValueType::kInt);
  EXPECT_EQ(v.as_int(), 0);
}

TEST(Value, TypeTags) {
  EXPECT_EQ(Value(std::int64_t{7}).type(), ValueType::kInt);
  EXPECT_EQ(Value(7).type(), ValueType::kInt);
  EXPECT_EQ(Value(7.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value(true).type(), ValueType::kBool);
  EXPECT_EQ(Value("x").type(), ValueType::kString);
  EXPECT_EQ(Value(std::string("x")).type(), ValueType::kString);
}

TEST(Value, TypedAccessors) {
  EXPECT_EQ(Value(42).as_int(), 42);
  EXPECT_DOUBLE_EQ(Value(2.5).as_double(), 2.5);
  EXPECT_TRUE(Value(true).as_bool());
  EXPECT_EQ(Value("abc").as_string(), "abc");
}

TEST(Value, WrongAccessorThrows) {
  EXPECT_THROW(Value(1).as_double(), std::invalid_argument);
  EXPECT_THROW(Value(1.0).as_int(), std::invalid_argument);
  EXPECT_THROW(Value("s").as_bool(), std::invalid_argument);
  EXPECT_THROW(Value(true).as_string(), std::invalid_argument);
}

TEST(Value, NumericView) {
  EXPECT_DOUBLE_EQ(Value(3).numeric(), 3.0);
  EXPECT_DOUBLE_EQ(Value(3.25).numeric(), 3.25);
  EXPECT_THROW(Value("x").numeric(), std::invalid_argument);
  EXPECT_TRUE(Value(1).is_numeric());
  EXPECT_TRUE(Value(1.0).is_numeric());
  EXPECT_FALSE(Value(true).is_numeric());
  EXPECT_FALSE(Value("s").is_numeric());
}

TEST(Value, CrossNumericCompare) {
  EXPECT_EQ(Value(1).compare(Value(1.0)), 0);
  EXPECT_LT(Value(1).compare(Value(1.5)), 0);
  EXPECT_GT(Value(2.5).compare(Value(2)), 0);
}

TEST(Value, IntCompareIsExactAboveDoublePrecision) {
  // 2^53 + 1 and 2^53 are distinct as int64 but collide as doubles.
  const std::int64_t big = (std::int64_t{1} << 53);
  EXPECT_LT(Value(big).compare(Value(big + 1)), 0);
  EXPECT_GT(Value(big + 1).compare(Value(big)), 0);
}

TEST(Value, StringCompare) {
  EXPECT_LT(Value("abc").compare(Value("abd")), 0);
  EXPECT_EQ(Value("abc").compare(Value("abc")), 0);
  EXPECT_GT(Value("b").compare(Value("a")), 0);
}

TEST(Value, BoolCompare) {
  EXPECT_LT(Value(false).compare(Value(true)), 0);
  EXPECT_EQ(Value(true).compare(Value(true)), 0);
}

TEST(Value, IncomparableThrows) {
  EXPECT_THROW(Value(1).compare(Value("1")), std::invalid_argument);
  EXPECT_THROW(Value(true).compare(Value(1)), std::invalid_argument);
  EXPECT_FALSE(Value(1).comparable_with(Value("x")));
  EXPECT_TRUE(Value(1).comparable_with(Value(1.0)));
}

TEST(Value, EqualityAcrossTypesIsFalseNotThrow) {
  EXPECT_FALSE(Value(1) == Value("1"));
  EXPECT_TRUE(Value(1) == Value(1.0));
  EXPECT_FALSE(Value(true) == Value(1));
}

TEST(Value, HashConsistentWithEqualitySameType) {
  EXPECT_EQ(Value(5).hash(), Value(5).hash());
  EXPECT_EQ(Value("k").hash(), Value(std::string("k")).hash());
  EXPECT_EQ(Value(1.5).hash(), Value(1.5).hash());
  // Different types get different tags even for "equal" numerics; the
  // partition optimizer never mixes types, so this is by design.
  EXPECT_NE(Value(1).hash(), Value(true).hash());
}

TEST(Value, Display) {
  EXPECT_EQ(Value(7).to_display(), "7");
  EXPECT_EQ(Value(true).to_display(), "true");
  EXPECT_EQ(Value(false).to_display(), "false");
  EXPECT_EQ(Value("hi").to_display(), "\"hi\"");
  std::ostringstream os;
  os << Value(3);
  EXPECT_EQ(os.str(), "3");
}

TEST(ValueType, Names) {
  EXPECT_EQ(to_string(ValueType::kInt), "int");
  EXPECT_EQ(to_string(ValueType::kDouble), "double");
  EXPECT_EQ(to_string(ValueType::kBool), "bool");
  EXPECT_EQ(to_string(ValueType::kString), "string");
}

}  // namespace
}  // namespace oosp
