// Unit + integration tests: the machine-failure (outage) disorder model.
#include <gtest/gtest.h>

#include "engine_test_util.hpp"
#include "stream/disorder.hpp"
#include "stream/outage.hpp"
#include "workload/synthetic.hpp"

namespace oosp {
namespace {

using testutil::expect_exact;

std::vector<Event> ordered_events(std::size_t n, Timestamp gap = 10) {
  std::vector<Event> out;
  for (std::size_t i = 0; i < n; ++i) {
    Event e;
    e.id = i;
    e.ts = static_cast<Timestamp>(i + 1) * gap;
    out.push_back(std::move(e));
  }
  return out;
}

TEST(OutageInjector, ProducesBoundedBurstDisorder) {
  const auto in = ordered_events(5'000, 5);
  OutageInjector inj({.outages = 4, .min_duration = 200, .max_duration = 800,
                      .affected_fraction = 0.5, .seed = 5});
  const auto out = inj.deliver(in);
  ASSERT_EQ(out.size(), in.size());
  EXPECT_EQ(inj.windows().size(), 4u);
  const auto stats = DisorderInjector::measure(out);
  EXPECT_GT(stats.late_events, 50u);
  EXPECT_LE(stats.max_lateness, inj.slack_bound());
  EXPECT_GE(inj.slack_bound(), 200);
  EXPECT_LE(inj.slack_bound(), 800);
  // Event multiset preserved.
  std::vector<EventId> ids;
  for (const auto& e : out) ids.push_back(e.id);
  std::sort(ids.begin(), ids.end());
  for (std::size_t i = 0; i < ids.size(); ++i) EXPECT_EQ(ids[i], i);
}

TEST(OutageInjector, FullyAffectedSingleStreamStaysOrdered) {
  // A total outage of the only pipeline delays delivery but cannot
  // reorder it — the backlog drains in ts order.
  const auto in = ordered_events(2'000, 5);
  OutageInjector inj({.outages = 3, .min_duration = 300, .max_duration = 600,
                      .affected_fraction = 1.0, .seed = 6});
  const auto out = inj.deliver(in);
  EXPECT_EQ(DisorderInjector::measure(out).late_events, 0u);
}

TEST(OutageInjector, ZeroAffectedFractionIsIdentity) {
  const auto in = ordered_events(500);
  OutageInjector inj({.outages = 5, .min_duration = 100, .max_duration = 200,
                      .affected_fraction = 0.0, .seed = 7});
  const auto out = inj.deliver(in);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i].id, in[i].id);
}

TEST(OutageInjector, DeterministicForSeed) {
  const auto in = ordered_events(2'000, 5);
  OutageInjector a({.seed = 9}), b({.seed = 9});
  const auto oa = a.deliver(in);
  const auto ob = b.deliver(in);
  for (std::size_t i = 0; i < oa.size(); ++i) EXPECT_EQ(oa[i].id, ob[i].id);
}

TEST(OutageInjector, EmptyAndInvalidInput) {
  OutageInjector inj({});
  EXPECT_TRUE(inj.deliver({}).empty());
  auto bad = ordered_events(5);
  std::swap(bad[1], bad[3]);
  EXPECT_THROW(inj.deliver(bad), std::invalid_argument);
  EXPECT_THROW(OutageInjector({.min_duration = 0}), std::invalid_argument);
  EXPECT_THROW(OutageInjector({.min_duration = 10, .max_duration = 5}),
               std::invalid_argument);
  EXPECT_THROW(OutageInjector({.affected_fraction = 1.5}), std::invalid_argument);
}

TEST(OutageInjector, EnginesStayExactThroughOutages) {
  SyntheticWorkload wl({.num_events = 4'000, .num_types = 3, .key_cardinality = 10,
                        .mean_gap = 4, .seed = 77});
  const auto ordered = wl.generate();
  OutageInjector inj({.outages = 5, .min_duration = 200, .max_duration = 700,
                      .affected_fraction = 0.4, .seed = 13});
  const auto arrivals = inj.deliver(ordered);
  ASSERT_GT(DisorderInjector::measure(arrivals).late_events, 100u);

  for (const std::string query :
       {wl.seq_query(3, true, 300), wl.negation_query(300)}) {
    const CompiledQuery q = compile_query(query, wl.registry());
    EngineOptions opt;
    opt.slack = inj.slack_bound();
    expect_exact(EngineKind::kOoo, q, arrivals, opt, "outage ooo");
    expect_exact(EngineKind::kKSlackInOrder, q, arrivals, opt, "outage kslack");
  }
}

TEST(OutageInjector, BurstDisorderIsDenserThanJitter) {
  // Same late-event budget, but outage lateness concentrates near the
  // outage duration while jitter spreads uniformly — the shapes differ.
  const auto in = ordered_events(10'000, 5);
  OutageInjector outage({.outages = 2, .min_duration = 500, .max_duration = 500,
                         .affected_fraction = 0.5, .seed = 21});
  const auto burst = outage.deliver(in);
  const auto stats = DisorderInjector::measure(burst);
  // Two 500-tick windows over a gap-5 stream hold ~100 events each, half
  // of them affected → ≈100 late events concentrated in two bursts.
  EXPECT_GT(stats.late_events, 60u);
  EXPECT_LT(stats.late_events, 140u);
  EXPECT_LE(stats.max_lateness, 500);
  EXPECT_GE(stats.max_lateness, 400);  // someone waited nearly the full outage
}

}  // namespace
}  // namespace oosp
