// Unit tests: lexer and parser of the pattern query language.
#include <gtest/gtest.h>

#include "query/lexer.hpp"
#include "query/parser.hpp"

namespace oosp {
namespace {

TEST(Lexer, TokenizesFullQuery) {
  const auto toks = tokenize("PATTERN SEQ(A a, !B b) WHERE a.x == 1 WITHIN 10");
  ASSERT_FALSE(toks.empty());
  EXPECT_EQ(toks.front().kind, TokKind::kPattern);
  EXPECT_EQ(toks.back().kind, TokKind::kEnd);
}

TEST(Lexer, KeywordsAreCaseInsensitive) {
  const auto toks = tokenize("pattern Seq wHeRe wiThIn and or not true false");
  EXPECT_EQ(toks[0].kind, TokKind::kPattern);
  EXPECT_EQ(toks[1].kind, TokKind::kSeq);
  EXPECT_EQ(toks[2].kind, TokKind::kWhere);
  EXPECT_EQ(toks[3].kind, TokKind::kWithin);
  EXPECT_EQ(toks[4].kind, TokKind::kAnd);
  EXPECT_EQ(toks[5].kind, TokKind::kOr);
  EXPECT_EQ(toks[6].kind, TokKind::kNot);
  EXPECT_EQ(toks[7].kind, TokKind::kTrue);
  EXPECT_EQ(toks[8].kind, TokKind::kFalse);
}

TEST(Lexer, IdentifiersKeepCase) {
  const auto toks = tokenize("ShelfReading s_1");
  EXPECT_EQ(toks[0].kind, TokKind::kIdent);
  EXPECT_EQ(toks[0].text, "ShelfReading");
  EXPECT_EQ(toks[1].text, "s_1");
}

TEST(Lexer, Numbers) {
  const auto toks = tokenize("42 -17 3.5 -0.25");
  EXPECT_EQ(toks[0].kind, TokKind::kInt);
  EXPECT_EQ(toks[1].kind, TokKind::kInt);
  EXPECT_EQ(toks[1].text, "-17");
  EXPECT_EQ(toks[2].kind, TokKind::kFloat);
  EXPECT_EQ(toks[3].kind, TokKind::kFloat);
  EXPECT_EQ(toks[3].text, "-0.25");
}

TEST(Lexer, Strings) {
  const auto toks = tokenize("'abc' \"d\\\"e\"");
  EXPECT_EQ(toks[0].kind, TokKind::kString);
  EXPECT_EQ(toks[0].text, "abc");
  EXPECT_EQ(toks[1].text, "d\"e");
}

TEST(Lexer, UnterminatedStringThrows) {
  EXPECT_THROW(tokenize("'abc"), QueryParseError);
}

TEST(Lexer, Operators) {
  const auto toks = tokenize("== != < <= > >= ! ( ) , .");
  EXPECT_EQ(toks[0].kind, TokKind::kEq);
  EXPECT_EQ(toks[1].kind, TokKind::kNe);
  EXPECT_EQ(toks[2].kind, TokKind::kLt);
  EXPECT_EQ(toks[3].kind, TokKind::kLe);
  EXPECT_EQ(toks[4].kind, TokKind::kGt);
  EXPECT_EQ(toks[5].kind, TokKind::kGe);
  EXPECT_EQ(toks[6].kind, TokKind::kBang);
  EXPECT_EQ(toks[7].kind, TokKind::kLParen);
  EXPECT_EQ(toks[8].kind, TokKind::kRParen);
  EXPECT_EQ(toks[9].kind, TokKind::kComma);
  EXPECT_EQ(toks[10].kind, TokKind::kDot);
}

TEST(Lexer, SingleEqualsThrows) {
  EXPECT_THROW(tokenize("a = b"), QueryParseError);
}

TEST(Lexer, UnknownCharThrows) {
  EXPECT_THROW(tokenize("a # b"), QueryParseError);
}

TEST(Parser, MinimalQuery) {
  const ParsedQuery q = parse_query("PATTERN SEQ(A a) WITHIN 5");
  ASSERT_EQ(q.steps.size(), 1u);
  EXPECT_EQ(q.steps[0].type_name, "A");
  EXPECT_EQ(q.steps[0].binding, "a");
  EXPECT_FALSE(q.steps[0].negated);
  EXPECT_FALSE(q.where.has_value());
  EXPECT_EQ(q.window, 5);
}

TEST(Parser, NegatedSteps) {
  const ParsedQuery q = parse_query("PATTERN SEQ(A a, !B b, NOT C c, D d) WITHIN 9");
  ASSERT_EQ(q.steps.size(), 4u);
  EXPECT_FALSE(q.steps[0].negated);
  EXPECT_TRUE(q.steps[1].negated);
  EXPECT_TRUE(q.steps[2].negated);  // NOT prefix also accepted
  EXPECT_FALSE(q.steps[3].negated);
}

TEST(Parser, WhereClauseTree) {
  const ParsedQuery q = parse_query(
      "PATTERN SEQ(A a, B b) WHERE a.x == b.x AND (a.y > 1 OR NOT b.z == 's') WITHIN 7");
  ASSERT_TRUE(q.where.has_value());
  EXPECT_EQ(q.where->kind, BoolExpr::Kind::kAnd);
  ASSERT_EQ(q.where->children.size(), 2u);
  EXPECT_EQ(q.where->children[0].kind, BoolExpr::Kind::kCmp);
  EXPECT_EQ(q.where->children[1].kind, BoolExpr::Kind::kOr);
}

TEST(Parser, OperatorPrecedenceAndBeforeOr) {
  const BoolExpr e = parse_expression("a.x == 1 OR a.y == 2 AND a.z == 3");
  EXPECT_EQ(e.kind, BoolExpr::Kind::kOr);
  ASSERT_EQ(e.children.size(), 2u);
  EXPECT_EQ(e.children[1].kind, BoolExpr::Kind::kAnd);
}

TEST(Parser, ChainedAndIsFlattened) {
  const BoolExpr e = parse_expression("a.x == 1 AND a.y == 2 AND a.z == 3");
  EXPECT_EQ(e.kind, BoolExpr::Kind::kAnd);
  EXPECT_EQ(e.children.size(), 3u);
}

TEST(Parser, NotBinding) {
  const BoolExpr e = parse_expression("NOT NOT a.x == 1");
  EXPECT_EQ(e.kind, BoolExpr::Kind::kNot);
  EXPECT_EQ(e.children[0].kind, BoolExpr::Kind::kNot);
}

TEST(Parser, LiteralKinds) {
  const BoolExpr e = parse_expression(
      "a.i == 3 AND a.d == 2.5 AND a.s == 'txt' AND a.b == true AND a.c == false");
  ASSERT_EQ(e.children.size(), 5u);
  EXPECT_EQ(std::get<Value>(e.children[0].cmp->rhs).type(), ValueType::kInt);
  EXPECT_EQ(std::get<Value>(e.children[1].cmp->rhs).type(), ValueType::kDouble);
  EXPECT_EQ(std::get<Value>(e.children[2].cmp->rhs).type(), ValueType::kString);
  EXPECT_EQ(std::get<Value>(e.children[3].cmp->rhs).type(), ValueType::kBool);
  EXPECT_EQ(std::get<Value>(e.children[4].cmp->rhs).as_bool(), false);
}

TEST(Parser, AllComparisonOps) {
  for (const char* op : {"==", "!=", "<", "<=", ">", ">="}) {
    const BoolExpr e = parse_expression("a.x " + std::string(op) + " 1");
    EXPECT_EQ(e.kind, BoolExpr::Kind::kCmp) << op;
  }
}

TEST(Parser, WindowValidation) {
  EXPECT_THROW(parse_query("PATTERN SEQ(A a) WITHIN 0"), QueryParseError);
  EXPECT_THROW(parse_query("PATTERN SEQ(A a) WITHIN -5"), QueryParseError);
  EXPECT_THROW(parse_query("PATTERN SEQ(A a) WITHIN x"), QueryParseError);
}

TEST(Parser, SyntaxErrors) {
  EXPECT_THROW(parse_query("SEQ(A a) WITHIN 5"), QueryParseError);
  EXPECT_THROW(parse_query("PATTERN SEQ(A) WITHIN 5"), QueryParseError);
  EXPECT_THROW(parse_query("PATTERN SEQ(A a WITHIN 5"), QueryParseError);
  EXPECT_THROW(parse_query("PATTERN SEQ(A a,) WITHIN 5"), QueryParseError);
  EXPECT_THROW(parse_query("PATTERN SEQ(A a) WHERE WITHIN 5"), QueryParseError);
  EXPECT_THROW(parse_query("PATTERN SEQ(A a) WHERE a.x WITHIN 5"), QueryParseError);
  EXPECT_THROW(parse_query("PATTERN SEQ(A a) WHERE a.x == WITHIN 5"), QueryParseError);
  EXPECT_THROW(parse_query("PATTERN SEQ(A a) WITHIN 5 trailing"), QueryParseError);
  EXPECT_THROW(parse_query(""), QueryParseError);
}

TEST(Parser, ErrorCarriesOffset) {
  try {
    parse_query("PATTERN SEQ(A a) WITHIN x");
    FAIL() << "expected parse error";
  } catch (const QueryParseError& e) {
    EXPECT_GT(e.offset(), 0u);
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
}

TEST(Parser, RoundTripThroughText) {
  const std::string text =
      "PATTERN SEQ(Shelf s, !Checkout c, Exit e) WHERE s.item == c.item AND "
      "c.item == e.item WITHIN 600";
  const ParsedQuery q1 = parse_query(text);
  const ParsedQuery q2 = parse_query(to_text(q1));
  EXPECT_EQ(to_text(q1), to_text(q2));
  EXPECT_EQ(q1.steps.size(), q2.steps.size());
  EXPECT_EQ(q1.window, q2.window);
}

TEST(Parser, RoundTripComplexExpr) {
  const BoolExpr e =
      parse_expression("(a.x == 1 OR b.y < 2.5) AND NOT (a.z != 's' AND b.w >= true)");
  const BoolExpr e2 = parse_expression(to_text(e));
  EXPECT_EQ(to_text(e), to_text(e2));
}

}  // namespace
}  // namespace oosp
