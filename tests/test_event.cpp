// Unit tests: schemas, the type registry, events and the builder.
#include <gtest/gtest.h>

#include <sstream>

#include "event/event.hpp"
#include "event/schema.hpp"

namespace oosp {
namespace {

Schema item_schema() {
  return Schema({{"item", ValueType::kInt}, {"price", ValueType::kDouble}});
}

TEST(Schema, SlotLookup) {
  const Schema s = item_schema();
  EXPECT_EQ(s.field_count(), 2u);
  EXPECT_EQ(s.slot("item"), 0u);
  EXPECT_EQ(s.slot("price"), 1u);
  EXPECT_EQ(s.slot("missing"), Schema::npos);
  EXPECT_EQ(s.field(0).name, "item");
  EXPECT_EQ(s.field(1).type, ValueType::kDouble);
}

TEST(Schema, RejectsDuplicateFields) {
  EXPECT_THROW(Schema({{"a", ValueType::kInt}, {"a", ValueType::kInt}}),
               std::invalid_argument);
}

TEST(Schema, RejectsUnnamedField) {
  EXPECT_THROW(Schema({{"", ValueType::kInt}}), std::invalid_argument);
}

TEST(Schema, FieldOutOfRangeThrows) {
  EXPECT_THROW(item_schema().field(2), std::invalid_argument);
}

TEST(TypeRegistry, RegisterAndLookup) {
  TypeRegistry reg;
  const TypeId a = reg.register_type("A", item_schema());
  const TypeId b = reg.register_type("B");
  EXPECT_NE(a, b);
  EXPECT_EQ(reg.lookup("A"), a);
  EXPECT_EQ(reg.lookup("B"), b);
  EXPECT_EQ(reg.lookup("C"), kInvalidType);
  EXPECT_TRUE(reg.contains("A"));
  EXPECT_FALSE(reg.contains("C"));
  EXPECT_EQ(reg.name(a), "A");
  EXPECT_EQ(reg.schema(a).field_count(), 2u);
  EXPECT_EQ(reg.schema(b).field_count(), 0u);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(TypeRegistry, ReRegisterSameSchemaIsIdempotent) {
  TypeRegistry reg;
  const TypeId a1 = reg.register_type("A", item_schema());
  const TypeId a2 = reg.register_type("A", item_schema());
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(TypeRegistry, ReRegisterDifferentSchemaThrows) {
  TypeRegistry reg;
  reg.register_type("A", item_schema());
  EXPECT_THROW(reg.register_type("A", Schema({{"x", ValueType::kInt}})),
               std::invalid_argument);
  EXPECT_THROW(reg.register_type("A"), std::invalid_argument);
}

TEST(TypeRegistry, EmptyNameThrows) {
  TypeRegistry reg;
  EXPECT_THROW(reg.register_type(""), std::invalid_argument);
}

TEST(EventBuilder, BuildsCompleteEvent) {
  TypeRegistry reg;
  reg.register_type("Sale", item_schema());
  const Event e = EventBuilder(reg, "Sale")
                      .ts(100)
                      .id(7)
                      .set("item", 42)
                      .set("price", 9.99)
                      .build();
  EXPECT_EQ(e.ts, 100);
  EXPECT_EQ(e.id, 7u);
  EXPECT_EQ(e.attr(0).as_int(), 42);
  EXPECT_DOUBLE_EQ(e.attr(1).as_double(), 9.99);
}

TEST(EventBuilder, UnknownTypeThrows) {
  TypeRegistry reg;
  EXPECT_THROW(EventBuilder(reg, "Nope"), std::invalid_argument);
}

TEST(EventBuilder, UnknownFieldThrows) {
  TypeRegistry reg;
  reg.register_type("Sale", item_schema());
  EXPECT_THROW(EventBuilder(reg, "Sale").set("bogus", 1), std::invalid_argument);
}

TEST(EventBuilder, FieldTypeMismatchThrows) {
  TypeRegistry reg;
  reg.register_type("Sale", item_schema());
  EXPECT_THROW(EventBuilder(reg, "Sale").set("item", 1.5), std::invalid_argument);
}

TEST(EventBuilder, MissingFieldThrows) {
  TypeRegistry reg;
  reg.register_type("Sale", item_schema());
  EXPECT_THROW(EventBuilder(reg, "Sale").set("item", 1).build(), std::invalid_argument);
}

TEST(Event, AttrOutOfRangeThrows) {
  Event e;
  e.attrs = {Value(1)};
  EXPECT_THROW(e.attr(1), std::invalid_argument);
}

TEST(Event, TsIdLessOrdersByTsThenId) {
  Event a, b;
  a.ts = 1;
  a.id = 5;
  b.ts = 2;
  b.id = 1;
  EXPECT_TRUE(TsIdLess{}(a, b));
  b.ts = 1;
  EXPECT_TRUE(TsIdLess{}(b, a));  // same ts, smaller id first
  EXPECT_FALSE(TsIdLess{}(a, a));
}

TEST(Event, StreamOutput) {
  Event e;
  e.type = 3;
  e.id = 9;
  e.ts = 44;
  e.attrs = {Value(1), Value("x")};
  std::ostringstream os;
  os << e;
  EXPECT_NE(os.str().find("id=9"), std::string::npos);
  EXPECT_NE(os.str().find("ts=44"), std::string::npos);
}

}  // namespace
}  // namespace oosp
