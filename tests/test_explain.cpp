// Unit tests: EXPLAIN output of compiled queries.
#include <gtest/gtest.h>

#include "engine_test_util.hpp"
#include "query/explain.hpp"

namespace oosp {
namespace {

using testutil::make_abcd_registry;

TEST(Explain, DescribesStepsTriggerAndLocals) {
  TypeRegistry reg = make_abcd_registry();
  const CompiledQuery q = compile_query(
      "PATTERN SEQ(A a, B b) WHERE a.k == b.k AND b.v > 3 WITHIN 50", reg);
  const std::string s = explain(q, reg);
  EXPECT_NE(s.find("window:  50"), std::string::npos);
  EXPECT_NE(s.find("[0] A a"), std::string::npos);
  EXPECT_NE(s.find("[1] B b  (trigger: last positive step)"), std::string::npos);
  EXPECT_NE(s.find("scan-time filters: [b.v > 3]"), std::string::npos);
  EXPECT_NE(s.find("[a.k == b.k] over steps {0,1}"), std::string::npos);
  EXPECT_NE(s.find("partitioning: ENABLED"), std::string::npos);
  EXPECT_NE(s.find("keyed on k"), std::string::npos);
}

TEST(Explain, DescribesNegationInterval) {
  TypeRegistry reg = make_abcd_registry();
  const CompiledQuery q = compile_query(
      "PATTERN SEQ(A a, !B b, C c) WHERE a.k == c.k AND a.k == b.k WITHIN 90", reg);
  const std::string s = explain(q, reg);
  EXPECT_NE(s.find("NEGATED: no match in (a.ts, c.ts)"), std::string::npos);
  EXPECT_NE(s.find("(negation check)"), std::string::npos);
  EXPECT_NE(s.find("partitioning: ENABLED"), std::string::npos);
}

TEST(Explain, ReportsMissingPartitionKey) {
  TypeRegistry reg = make_abcd_registry();
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 50", reg);
  EXPECT_NE(explain(q, reg).find("partitioning: none"), std::string::npos);
}

}  // namespace
}  // namespace oosp
