// Shared multi-query scan (MQO): plan-time grouping, bit-identical
// output vs per-query engines across seeds × shard counts × batch
// sizes × query mixes, per-member stats invariants, registration-order
// guards, and crash recovery through the group checkpoint path.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "engine_test_util.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/session.hpp"
#include "stream/disorder.hpp"
#include "stream/faults.hpp"
#include "workload/synthetic.hpp"

namespace oosp {
namespace {

// ------------------------------------------------------------ planning

TEST(MqoPlanning, CompatibleQueriesGroupAndIncompatiblesGetAReason) {
  SyntheticWorkload wl({.num_events = 10, .num_types = 4, .key_cardinality = 8,
                        .mean_gap = 5, .seed = 1});
  const auto sink = std::make_shared<CollectingTaggedSink>();
  MultiQueryRunner runner(wl.registry(), sink);
  EngineOptions opt;
  opt.slack = 50;
  // Three compatible SEQ-prefix queries (same first type, same key).
  const QueryId a = runner.add_query({wl.seq_query(2, true, 100), EngineKind::kOoo, opt});
  const QueryId b = runner.add_query({wl.seq_query(3, true, 200), EngineKind::kOoo, opt});
  const QueryId c = runner.add_query(
      {wl.seq_query(2, true, 100, /*min_val=*/40), EngineKind::kOoo, opt});
  // Excluded: negation needs per-query sealing state.
  const QueryId n = runner.add_query({wl.negation_query(100), EngineKind::kOoo, opt});
  // Excluded: not the native OOO engine.
  const QueryId k =
      runner.add_query({wl.seq_query(2, true, 100), EngineKind::kInOrder, opt});
  // Excluded: adaptive slack retunes per engine.
  EngineOptions adaptive = opt;
  adaptive.adaptive_slack = true;
  const QueryId ad =
      runner.add_query({wl.seq_query(2, true, 100), EngineKind::kOoo, adaptive});
  // Excluded: the quarantine verdict depends on the per-query clock.
  EngineOptions parking = opt;
  parking.late_policy = LatePolicy::kQuarantine;
  const QueryId qu =
      runner.add_query({wl.seq_query(2, true, 100), EngineKind::kOoo, parking});
  runner.prepare();

  EXPECT_EQ(runner.group_count(), 1u);
  EXPECT_TRUE(runner.share_exclusion_reason(a).empty());
  EXPECT_TRUE(runner.share_exclusion_reason(b).empty());
  EXPECT_TRUE(runner.share_exclusion_reason(c).empty());
  EXPECT_FALSE(runner.share_exclusion_reason(n).empty());
  EXPECT_FALSE(runner.share_exclusion_reason(k).empty());
  EXPECT_FALSE(runner.share_exclusion_reason(ad).empty());
  EXPECT_FALSE(runner.share_exclusion_reason(qu).empty());
}

TEST(MqoPlanning, DisablingShareScansYieldsNoGroups) {
  SyntheticWorkload wl({.num_events = 10, .num_types = 2, .key_cardinality = 8,
                        .mean_gap = 5, .seed = 1});
  const auto sink = std::make_shared<CollectingTaggedSink>();
  MultiQueryRunner runner(wl.registry(), sink, /*share_scans=*/false);
  EngineOptions opt;
  opt.slack = 50;
  runner.add_query({wl.seq_query(2, true, 100), EngineKind::kOoo, opt});
  runner.add_query({wl.seq_query(2, true, 200), EngineKind::kOoo, opt});
  runner.prepare();
  EXPECT_EQ(runner.group_count(), 0u);
}

TEST(MqoPlanning, MismatchedOptionsDoNotGroup) {
  SyntheticWorkload wl({.num_events = 10, .num_types = 2, .key_cardinality = 8,
                        .mean_gap = 5, .seed = 1});
  const auto sink = std::make_shared<CollectingTaggedSink>();
  MultiQueryRunner runner(wl.registry(), sink);
  EngineOptions loose, tight;
  loose.slack = 50;
  tight.slack = 5;
  runner.add_query({wl.seq_query(2, true, 100), EngineKind::kOoo, loose});
  runner.add_query({wl.seq_query(2, true, 100), EngineKind::kOoo, tight});
  runner.prepare();
  // Different slack shapes different admission/purge state: no group.
  EXPECT_EQ(runner.group_count(), 0u);
}

// ------------------------------------------------- registration guards

TEST(MqoGuards, AddQueryAfterFirstEventThrows) {
  SyntheticWorkload wl({.num_events = 10, .num_types = 2, .key_cardinality = 4,
                        .mean_gap = 5, .seed = 2});
  const auto sink = std::make_shared<CollectingTaggedSink>();
  MultiQueryRunner runner(wl.registry(), sink);
  runner.add_query({wl.seq_query(2, true, 100), EngineKind::kOoo});
  runner.on_event(wl.generate(1)[0]);
  EXPECT_THROW(runner.add_query({wl.seq_query(2, false, 100), EngineKind::kOoo}),
               std::invalid_argument);
}

TEST(MqoGuards, AddQueryAfterPrepareThrows) {
  SyntheticWorkload wl({.num_events = 10, .num_types = 2, .key_cardinality = 4,
                        .mean_gap = 5, .seed = 2});
  const auto sink = std::make_shared<CollectingTaggedSink>();
  MultiQueryRunner runner(wl.registry(), sink);
  runner.add_query({wl.seq_query(2, true, 100), EngineKind::kOoo});
  runner.prepare();  // plan materialized: the engine set is now fixed
  EXPECT_THROW(runner.add_query({wl.seq_query(2, false, 100), EngineKind::kOoo}),
               std::logic_error);
}

TEST(MqoGuards, GroupRestoreAfterStartThrows) {
  SyntheticWorkload wl({.num_events = 64, .num_types = 2, .key_cardinality = 4,
                        .mean_gap = 5, .seed = 3});
  const auto arrivals = wl.generate();
  EngineOptions opt;
  opt.slack = 20;
  auto build = [&] {
    auto sink = std::make_shared<CollectingTaggedSink>();
    auto runner = std::make_unique<MultiQueryRunner>(wl.registry(), sink);
    runner->add_query({wl.seq_query(2, true, 100), EngineKind::kOoo, opt});
    runner->add_query({wl.seq_query(2, true, 200), EngineKind::kOoo, opt});
    return runner;
  };
  const auto donor = build();
  for (const Event& e : arrivals) donor->on_event(e);
  CheckpointWriter w;
  donor->snapshot(w);
  const auto frame = std::move(w).finalize();

  const auto tainted = build();
  tainted->prepare();
  ASSERT_EQ(tainted->group_count(), 1u);
  tainted->on_event(arrivals[0]);  // group already consumed an event
  CheckpointReader r(frame);
  EXPECT_THROW(tainted->restore(r), std::invalid_argument);
}

// ----------------------------------------------------- stats semantics

TEST(MqoStats, PerMemberCountersAndMetricsStayAccountable) {
  SyntheticWorkload wl({.num_events = 4'000, .num_types = 3, .key_cardinality = 16,
                        .mean_gap = 5, .seed = 11});
  const auto ordered = wl.generate();
  DisorderInjector inj(LatencyModel::uniform(90), 0.25, 7);
  const auto arrivals = inj.deliver(ordered);

  const auto sink = std::make_shared<CollectingTaggedSink>();
  Session session(wl.registry(),
                  SessionConfig{}
                      .engine(EngineKind::kOoo)
                      .slack(inj.slack_bound())
                      .query(wl.seq_query(2, true, 150))
                      .query(wl.seq_query(3, true, 300))
                      .query(wl.seq_query(2, true, 150, /*min_val=*/30)),
                  sink);
  for (const Event& e : arrivals) session.push(e);
  session.finish();

  // Arrival counters are replicated per relevant member: the 2-step
  // queries see T0/T1 arrivals, the 3-step query additionally sees T2.
  std::size_t t01 = 0;
  for (const Event& e : arrivals) t01 += (e.type <= 1);
  EXPECT_EQ(session.stats(0).events_seen, t01);
  EXPECT_EQ(session.stats(2).events_seen, t01);
  EXPECT_EQ(session.stats(1).events_seen, arrivals.size());

  // Every member reports real matches; the min_val variant is a strict
  // subset of its unfiltered sibling.
  EXPECT_GT(session.stats(0).matches_emitted, 0u);
  EXPECT_GT(session.stats(2).matches_emitted, 0u);
  EXPECT_LT(session.stats(2).matches_emitted, session.stats(0).matches_emitted);
  for (QueryId q = 0; q < 3; ++q)
    EXPECT_EQ(session.stats(q).matches_emitted, sink->keys_for(q).size()) << q;

  // Physical counters exist once (folded into the first member), so the
  // cross-query sum equals the group's physical reality — instances
  // inserted once per relevant arrival, not once per member.
  const EngineStats total = session.total_stats();
  EXPECT_GT(total.instances_inserted, 0u);
  EXPECT_LE(total.instances_inserted, arrivals.size());

  const MetricsSnapshot snap = session.metrics_snapshot();
  EXPECT_EQ(snap.gauge("oosp_mqo_groups"), 1);
  EXPECT_EQ(snap.counter("oosp_mqo_shared_insertions_total"),
            total.instances_inserted);
}

// ------------------------------------------------ bit-identical matrix

using Output = std::vector<std::pair<QueryId, MatchKey>>;

Output run_mix(const SyntheticWorkload& wl, const std::vector<Event>& arrivals,
               const std::vector<std::string>& queries, Timestamp slack,
               std::size_t shards, std::size_t batch, bool share,
               WorkerKillHook hook = {}, std::size_t checkpoint_every = 0) {
  const auto sink = std::make_shared<CollectingTaggedSink>();
  SessionConfig cfg;
  cfg.engine(EngineKind::kOoo).slack(slack).shards(shards).share_scans(share);
  cfg.metrics(false);
  for (const std::string& q : queries) cfg.query(q);
  if (checkpoint_every) {
    cfg.checkpoint_every(checkpoint_every)
        .max_restarts(20)
        .restart_backoff(std::chrono::milliseconds(0), std::chrono::milliseconds(0));
  }
  if (hook) cfg.kill_hook(std::move(hook));
  Session session(wl.registry(), cfg, sink);
  if (batch <= 1) {
    for (const Event& e : arrivals) session.push(e);
  } else {
    std::size_t i = 0;
    while (i < arrivals.size()) {
      const std::size_t n = std::min(batch, arrivals.size() - i);
      session.push_batch(std::span<const Event>(arrivals.data() + i, n));
      i += n;
    }
  }
  session.close();
  Output out;
  for (const TaggedMatch& tm : sink->matches())
    out.emplace_back(tm.query, match_key(tm.match));
  return out;
}

TEST(MqoMatrix, SharedScanOutputBitIdenticalToPerQueryEngines) {
  // Mix A: every query groups. Mix B: grouped + solo (negation, unkeyed
  // 4-step chain) so routing interleaves group and per-query slots.
  const std::vector<std::string> mix_names{"grouped-only", "grouped+solo"};
  for (const std::uint64_t seed : {5ull, 71ull}) {
    SyntheticWorkload wl({.num_events = 6'000, .num_types = 4,
                          .key_cardinality = 24, .mean_gap = 4,
                          .seed = seed});
    const auto ordered = wl.generate();
    DisorderInjector inj(LatencyModel::uniform(110), 0.25, seed + 1);
    const auto arrivals = inj.deliver(ordered);
    const Timestamp slack = inj.slack_bound();

    const std::vector<std::vector<std::string>> mixes{
        {wl.seq_query(2, true, 150), wl.seq_query(3, true, 300),
         wl.seq_query(2, true, 150, /*min_val=*/25),
         wl.seq_query(2, true, 600)},
        {wl.seq_query(2, true, 150), wl.seq_query(3, true, 300),
         wl.negation_query(150), wl.seq_query(4, false, 200)},
    };
    for (std::size_t m = 0; m < mixes.size(); ++m) {
      // Baseline: one engine per query, single shard, per-event feed.
      const Output base =
          run_mix(wl, arrivals, mixes[m], slack, 1, 1, /*share=*/false);
      ASSERT_GT(base.size(), 50u)
          << mix_names[m] << " seed=" << seed << ": workload too sparse";
      for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
        for (const std::size_t batch : {std::size_t{1}, std::size_t{64},
                                        std::size_t{257}}) {
          if (m == 1 && shards > 1) continue;  // negation mix is unshardable
          const Output got =
              run_mix(wl, arrivals, mixes[m], slack, shards, batch, true);
          ASSERT_EQ(got, base) << mix_names[m] << " seed=" << seed
                               << " shards=" << shards << " batch=" << batch;
        }
      }
    }
  }
}

TEST(MqoMatrix, QuarantineDrainIdenticalSharedVsSolo) {
  // Regression for the plan-time late-policy exclusion: a shared group's
  // union clock runs ahead of a member's solo clock, so sharing under
  // kQuarantine would park events a per-query engine processes. With the
  // exclusion in place, share_scans(true) must be a no-op here.
  SyntheticWorkload wl({.num_events = 3'000, .num_types = 3, .key_cardinality = 16,
                        .mean_gap = 5, .seed = 13});
  const auto ordered = wl.generate();
  DisorderInjector inj(LatencyModel::uniform(100), 0.3, 9);
  const auto arrivals = inj.deliver(ordered);

  EngineOptions opt;
  opt.slack = 5;  // far below the bound: plenty of quarantined stragglers
  opt.late_policy = LatePolicy::kQuarantine;
  auto run = [&](bool share) {
    const auto sink = std::make_shared<CollectingTaggedSink>();
    Session session(wl.registry(),
                    SessionConfig{}
                        .engine(EngineKind::kOoo)
                        .options(opt)
                        .share_scans(share)
                        .metrics(false)
                        .query(wl.seq_query(2, true, 150))
                        .query(wl.seq_query(3, true, 300)),
                    sink);
    for (const Event& e : arrivals) session.push(e);
    session.close();
    return session.quarantined();
  };
  const auto solo = run(false);
  const auto shared = run(true);
  ASSERT_GT(solo.size(), 0u);
  ASSERT_EQ(shared.size(), solo.size());
  for (std::size_t i = 0; i < solo.size(); ++i) {
    EXPECT_EQ(shared[i].first, solo[i].first) << i;
    EXPECT_EQ(shared[i].second.id, solo[i].second.id) << i;
  }
}

// ------------------------------------------------------ crash recovery

TEST(MqoRecovery, KillAtBatchBoundariesRecoversThroughGroupCheckpoint) {
  SyntheticWorkload wl({.num_events = 600, .num_types = 2, .key_cardinality = 12,
                        .mean_gap = 6, .seed = 37});
  const auto ordered = wl.generate();
  DisorderInjector inj(LatencyModel::uniform(60), 0.25, 5);
  const auto arrivals = inj.deliver(ordered);
  const Timestamp slack = inj.slack_bound();
  const std::vector<std::string> queries{wl.seq_query(2, true, 150),
                                         wl.seq_query(2, true, 300),
                                         wl.seq_query(2, true, 150, /*min_val=*/20)};
  constexpr std::size_t kBatch = 64;

  const Output oracle =
      run_mix(wl, arrivals, queries, slack, 3, kBatch, /*share=*/true);
  ASSERT_GT(oracle.size(), 30u) << "workload too sparse to be meaningful";

  // Kill a worker exactly at each batch boundary: the victim is the
  // first event of a push_batch slice, so the death and the group-state
  // restore both land on the batched ingestion path.
  for (std::size_t boundary = kBatch; boundary < arrivals.size();
       boundary += 3 * kBatch) {
    WorkerKillFault fault({arrivals[boundary].id});
    const Output got = run_mix(wl, arrivals, queries, slack, 3, kBatch, true,
                               fault.hook(), /*checkpoint_every=*/13);
    ASSERT_EQ(fault.victims_remaining(), 0u) << "boundary " << boundary;
    ASSERT_EQ(got, oracle)
        << "output diverges after killing at batch boundary " << boundary;
  }
}

TEST(MqoRecovery, RunnerSnapshotRoundTripsWithGroups) {
  SyntheticWorkload wl({.num_events = 2'000, .num_types = 3, .key_cardinality = 12,
                        .mean_gap = 5, .seed = 23});
  const auto ordered = wl.generate();
  DisorderInjector inj(LatencyModel::uniform(80), 0.3, 17);
  const auto arrivals = inj.deliver(ordered);
  EngineOptions opt;
  opt.slack = inj.slack_bound();
  const std::vector<std::string> queries{
      wl.seq_query(2, true, 150), wl.seq_query(3, true, 300),
      wl.negation_query(150)};  // mixed plan: one group + one solo engine

  auto build = [&](std::shared_ptr<CollectingTaggedSink>& sink) {
    sink = std::make_shared<CollectingTaggedSink>();
    auto runner = std::make_unique<MultiQueryRunner>(wl.registry(), sink);
    for (const auto& q : queries)
      runner->add_query({q, EngineKind::kOoo, opt});
    return runner;
  };

  std::shared_ptr<CollectingTaggedSink> full_sink;
  const auto full = build(full_sink);
  for (const Event& e : arrivals) full->on_event(e);
  full->finish();

  for (const std::size_t cut : {std::size_t{1}, arrivals.size() / 3,
                                arrivals.size() / 2, arrivals.size() - 1}) {
    std::shared_ptr<CollectingTaggedSink> sink1;
    const auto r1 = build(sink1);
    for (std::size_t i = 0; i < cut; ++i) r1->on_event(arrivals[i]);
    CheckpointWriter w;
    r1->snapshot(w);
    const auto frame = std::move(w).finalize();

    std::shared_ptr<CollectingTaggedSink> sink2;
    const auto r2 = build(sink2);
    {
      CheckpointReader r(frame);
      r2->restore(r);
      r.expect_done();
    }
    // The restored runner re-snapshots to identical bytes.
    CheckpointWriter w2;
    r2->snapshot(w2);
    EXPECT_EQ(std::move(w2).finalize(), frame) << "cut=" << cut;
    EXPECT_EQ(r2->events_seen(), r1->events_seen());

    for (std::size_t i = cut; i < arrivals.size(); ++i) r2->on_event(arrivals[i]);
    r2->finish();

    // Union of pre-kill and post-restore matches == uninterrupted run.
    for (QueryId q = 0; q < queries.size(); ++q) {
      auto got = sink1->keys_for(q);
      for (const MatchKey& k : sink2->keys_for(q)) got.push_back(k);
      auto want = full_sink->keys_for(q);
      std::sort(got.begin(), got.end());
      std::sort(want.begin(), want.end());
      ASSERT_EQ(got, want) << "query " << q << " cut=" << cut;
    }
  }
}

}  // namespace
}  // namespace oosp
