// Overload control: OverloadMonitor pressure grading and AIMD cut,
// per-policy Session behavior under a slow consumer (bounded producer
// latency, shed accounting, quality ordering of the shedding policies),
// and shedding composed with crash recovery (exactly-once preserved).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "engine/oracle/oracle.hpp"
#include "engine_test_util.hpp"
#include "runtime/overload.hpp"
#include "runtime/session.hpp"
#include "runtime/verify.hpp"

namespace oosp {
namespace {

using testutil::make_abcd_registry;
using testutil::make_event;

// ------------------------------------------------------ OverloadMonitor

TEST(OverloadMonitor, GradesPressureByQueueDepth) {
  OverloadConfig cfg;  // warn 0.50, shed 0.875
  OverloadMonitor mon(cfg, /*queue_capacity=*/100, /*metrics=*/nullptr);
  EXPECT_EQ(mon.assess(0, 0), Pressure::kOk);
  EXPECT_EQ(mon.assess(49, 0), Pressure::kOk);
  EXPECT_EQ(mon.assess(50, 0), Pressure::kWarn);
  EXPECT_EQ(mon.assess(86, 0), Pressure::kWarn);
  EXPECT_EQ(mon.assess(87, 0), Pressure::kShed);
  EXPECT_EQ(mon.assess(100, 0), Pressure::kShed);
}

TEST(OverloadMonitor, WatermarkLagEscalatesIndependentOfDepth) {
  OverloadConfig cfg;  // lag_warn 4.0, lag_shed 16.0; scale starts at 1
  OverloadMonitor mon(cfg, 100, nullptr);
  EXPECT_EQ(mon.assess(0, 3), Pressure::kOk);
  EXPECT_EQ(mon.assess(0, 4), Pressure::kWarn);
  EXPECT_EQ(mon.assess(0, 16), Pressure::kShed);
  // Depth grade is never LOWERED by a small lag.
  EXPECT_EQ(mon.assess(87, 1), Pressure::kShed);
}

TEST(OverloadMonitor, CutTracksLatenessQuantileWithAimdRecovery) {
  OverloadConfig cfg;
  cfg.shed_quantile = 0.90;
  cfg.estimator.refresh_period = 8;
  OverloadMonitor mon(cfg, 100, nullptr);

  // Before any refresh the cut is effectively off (nothing sheds).
  EXPECT_FALSE(mon.shed_late(1'000'000, Pressure::kShed));

  for (int i = 0; i < 8; ++i) mon.observe(100);
  EXPECT_EQ(mon.lateness_cut(), 100);
  EXPECT_EQ(mon.lateness_scale(), 100);

  // Pricing requires pressure: a late event under kOk is never shed.
  EXPECT_FALSE(mon.shed_late(100, Pressure::kOk));
  EXPECT_TRUE(mon.shed_late(100, Pressure::kWarn));
  EXPECT_FALSE(mon.shed_late(99, Pressure::kShed));

  // A forced shed halves the cut (multiplicative decrease)...
  mon.note_forced_shed();
  EXPECT_EQ(mon.lateness_cut(), 50);

  // ...and while pressure stays bad the refresh only keeps it tight.
  mon.assess(100, 0);  // kShed
  for (int i = 0; i < 8; ++i) mon.observe(100);
  EXPECT_EQ(mon.lateness_cut(), 50);

  // Once pressure returns to kOk, refreshes relax it back to the target.
  mon.assess(0, 0);  // kOk
  for (int i = 0; i < 8; ++i) mon.observe(100);
  EXPECT_EQ(mon.lateness_cut(), 100);
}

// ------------------------------------------------- offered-load harness

// Arrival stream of A/B pairs (key = (i/2) % 8, WITHIN-50 partners every
// 16 events) where `late_every`-th events arrive `late_by` behind the
// stream-time high-water mark — a bimodal lateness mix: most events are
// perfectly fresh (lateness 0), the rest hopeless stragglers.
std::vector<Event> make_offered(const TypeRegistry& reg, std::size_t n,
                                Timestamp late_by) {
  std::vector<Event> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Timestamp base = static_cast<Timestamp>(i) * 2;
    const bool late = (i % 20) < 7 && base >= late_by;  // ~35% stragglers
    out.push_back(make_event(reg, (i % 2 == 0) ? "A" : "B",
                             static_cast<EventId>(i), late ? base - late_by : base,
                             /*k=*/static_cast<std::int64_t>((i / 2) % 8)));
  }
  return out;
}

constexpr const char* kPairQuery =
    "PATTERN SEQ(A a, B b) WHERE a.k == b.k WITHIN 50";

struct PolicyRun {
  double recall = 0.0;
  std::uint64_t shed = 0;
  std::uint64_t shed_metric = 0;
  std::uint64_t admitted = 0;  // events_seen by the single query's engines
};

// Drives `offered` through a 2-shard session with a throttled consumer
// under the given overload config; scores recall against the oracle over
// the FULL offered stream. Slack 150 + LatePolicy::kDrop: the >150-late
// stragglers contribute nothing even when admitted, which is exactly the
// structure kShedByLateness exploits.
PolicyRun run_policy(const TypeRegistry& reg, const std::vector<Event>& offered,
                     OverloadConfig cfg, std::chrono::microseconds delay) {
  const auto sink = std::make_shared<CollectingTaggedSink>();
  Session session(reg,
                  SessionConfig{}
                      .engine(EngineKind::kOoo)
                      .slack(150)
                      .late_policy(LatePolicy::kDrop)
                      .shards(2)
                      .queue_capacity(64)
                      .overload(std::move(cfg))
                      .delay_hook([delay](const Event&) {
                        std::this_thread::sleep_for(delay);
                      })
                      .query(kPairQuery),
                  sink);
  EXPECT_EQ(session.shard_count(), 2u) << session.shard_fallback_reason();
  for (const Event& e : offered) session.push(e);
  session.close();

  PolicyRun r;
  r.shed = session.overload_shed();
  r.shed_metric = session.metrics_snapshot().counter("oosp_overload_shed_total");
  r.admitted = session.stats(0).events_seen;
  std::vector<MatchKey> expected = oracle_keys(session.query(0), offered);
  std::sort(expected.begin(), expected.end());
  const VerifyResult v = compare_keys(expected, sink->keys_for(0));
  r.recall = v.recall();
  return r;
}

// --------------------------------------------------- per-policy contract

TEST(OverloadSession, BlockPolicyShedsNothingAndStaysExact) {
  const TypeRegistry reg = make_abcd_registry();
  const auto offered = make_offered(reg, 4'000, /*late_by=*/400);
  const auto sink = std::make_shared<CollectingTaggedSink>();
  Session session(reg,
                  SessionConfig{}
                      .engine(EngineKind::kOoo)
                      .slack(500)  // covers the stragglers: exact run
                      .shards(2)
                      .queue_capacity(64)
                      .delay_hook([](const Event&) {
                        std::this_thread::sleep_for(std::chrono::microseconds(5));
                      })
                      .query(kPairQuery),
                  sink);
  for (const Event& e : offered) session.push(e);
  session.close();

  EXPECT_EQ(session.overload_shed(), 0u);
  EXPECT_EQ(session.degraded_accounting().shed_events, 0u);
  EXPECT_FALSE(session.degraded_accounting().degraded());
  std::vector<MatchKey> expected = oracle_keys(session.query(0), offered);
  std::sort(expected.begin(), expected.end());
  const VerifyResult v = compare_keys(expected, sink->keys_for(0));
  EXPECT_TRUE(v.exact()) << "missed=" << v.missed
                         << " false_positives=" << v.false_positives;
}

TEST(OverloadSession, ShedNewestBoundsProducerLatencyAndAccountsEveryShed) {
  const TypeRegistry reg = make_abcd_registry();
  const std::size_t n = 2'000;
  const auto offered = make_offered(reg, n, 400);
  OverloadConfig cfg;
  cfg.policy = OverloadPolicy::kShedNewest;

  const auto t0 = std::chrono::steady_clock::now();
  const auto sink = std::make_shared<CollectingTaggedSink>();
  Session session(reg,
                  SessionConfig{}
                      .engine(EngineKind::kOoo)
                      .slack(150)
                      .shards(2)
                      .queue_capacity(64)
                      .overload(std::move(cfg))
                      .delay_hook([](const Event&) {
                        std::this_thread::sleep_for(std::chrono::microseconds(500));
                      })
                      .query(kPairQuery),
                  sink);
  for (const Event& e : offered) session.push(e);
  const auto producer_wall = std::chrono::steady_clock::now() - t0;
  session.close();

  // kBlock would pace the producer at the consumer's ~500us/event crawl
  // (~1s for 2k events); shedding keeps the producer unthrottled.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(producer_wall).count(),
            400);
  EXPECT_GT(session.overload_shed(), 0u);

  // Accounting closes: offered = admitted + shed, and every view of the
  // shed count (runner, degraded accounting, metric, per-query) agrees.
  // The single query references both fed types, so its engines' combined
  // events_seen IS the admitted count.
  EXPECT_EQ(session.stats(0).events_seen + session.overload_shed(), n);
  EXPECT_EQ(session.degraded_accounting().shed_events, session.overload_shed());
  EXPECT_TRUE(session.degraded_accounting().degraded());
  EXPECT_EQ(session.metrics_snapshot().counter("oosp_overload_shed_total"),
            session.overload_shed());
  EXPECT_EQ(session.overload_shed(0), session.overload_shed());
}

TEST(OverloadSession, ShedByLatenessRecallAtLeastShedNewest) {
  const TypeRegistry reg = make_abcd_registry();
  const auto offered = make_offered(reg, 20'000, /*late_by=*/400);

  OverloadConfig newest;
  newest.policy = OverloadPolicy::kShedNewest;
  OverloadConfig by_lateness;
  by_lateness.policy = OverloadPolicy::kShedByLateness;
  // With ~35% stragglers the 0.6-quantile of lateness sits in the fresh
  // mode, so the refreshed cut prices exactly the straggler mode out.
  by_lateness.shed_quantile = 0.6;
  // Generous bounded wait: fresh events queue up behind the throttled
  // consumer instead of being force-shed, trading latency for recall.
  by_lateness.fresh_wait = std::chrono::microseconds(50'000);

  const auto delay = std::chrono::microseconds(20);
  const PolicyRun blind = run_policy(reg, offered, newest, delay);
  const PolicyRun priced = run_policy(reg, offered, by_lateness, delay);

  // Both overloaded runs shed, and every shed is metered.
  EXPECT_GT(blind.shed, 0u);
  EXPECT_GT(priced.shed, 0u);
  EXPECT_EQ(blind.shed_metric, blind.shed);
  EXPECT_EQ(priced.shed_metric, priced.shed);
  EXPECT_EQ(blind.admitted + blind.shed, offered.size());
  EXPECT_EQ(priced.admitted + priced.shed, offered.size());

  // The quality claim: lateness-priced shedding preserves at least the
  // recall of blind newest-drop at the same offered load, because it
  // spends its losses on events the engines would late-drop anyway.
  EXPECT_GE(priced.recall, blind.recall)
      << "by-lateness recall " << priced.recall << " vs shed-newest "
      << blind.recall << " (shed " << priced.shed << " vs " << blind.shed << ")";
}

TEST(OverloadSession, FailPolicyThrowsOverloadErrorAndCloseStillDrains) {
  const TypeRegistry reg = make_abcd_registry();
  const auto offered = make_offered(reg, 200, 400);
  OverloadConfig cfg;
  cfg.policy = OverloadPolicy::kFail;
  cfg.fail_deadline = std::chrono::milliseconds(2);

  const auto sink = std::make_shared<CollectingTaggedSink>();
  Session session(reg,
                  SessionConfig{}
                      .engine(EngineKind::kOoo)
                      .slack(150)
                      .shards(2)
                      .queue_capacity(16)
                      .overload(std::move(cfg))
                      .delay_hook([](const Event&) {
                        std::this_thread::sleep_for(std::chrono::milliseconds(10));
                      })
                      .query(kPairQuery),
                  sink);
  // A 10ms/event consumer against a 15-slot ring: the deadline expires
  // well before the 200-event offered stream is admitted.
  bool threw = false;
  try {
    for (const Event& e : offered) session.push(e);
  } catch (const OverloadError& err) {
    threw = true;
    EXPECT_LT(err.shard(), 2u);
    EXPECT_NE(std::string(err.what()).find("deadline"), std::string::npos);
  }
  EXPECT_TRUE(threw);
  EXPECT_EQ(session.overload_shed(), 0u);  // kFail refuses, never sheds
  // The failure is the producer's: the session itself is still healthy
  // and close() drains what was admitted.
  session.close();
}

// ------------------------------------------- shedding × crash recovery

TEST(OverloadSession, SheddingComposesWithRecoveryExactlyOnce) {
  const TypeRegistry reg = make_abcd_registry();
  const auto offered = make_offered(reg, 4'000, 400);
  OverloadConfig cfg;
  cfg.policy = OverloadPolicy::kShedNewest;

  // The hooks count PROCESSED events (shedding decides what is admitted,
  // so event ids are useless as triggers): the consumer crawls for the
  // first 300 — long enough for the paced producer to overrun the rings
  // and shed — then speeds up, and the 400th processed event kills its
  // worker exactly once. Shedding must not confuse the checkpoint/replay
  // path, and replay must not duplicate matches.
  auto processed = std::make_shared<std::atomic<std::uint64_t>>(0);
  auto killed = std::make_shared<std::atomic<bool>>(false);
  const auto sink = std::make_shared<CollectingTaggedSink>();
  Session session(reg,
                  SessionConfig{}
                      .engine(EngineKind::kOoo)
                      .slack(150)
                      .late_policy(LatePolicy::kDrop)
                      .shards(2)
                      .queue_capacity(16)
                      .checkpoint_every(16)
                      .overload(std::move(cfg))
                      .kill_hook([processed, killed](const Event&) {
                        return processed->load(std::memory_order_relaxed) >= 400 &&
                               !killed->exchange(true);
                      })
                      .delay_hook([processed](const Event&) {
                        if (processed->fetch_add(1, std::memory_order_relaxed) < 300)
                          std::this_thread::sleep_for(std::chrono::microseconds(300));
                      })
                      .query(kPairQuery),
                  sink);
  for (const Event& e : offered) {
    session.push(e);
    std::this_thread::sleep_for(std::chrono::microseconds(25));
  }
  session.close();

  EXPECT_TRUE(killed->load());
  EXPECT_GE(session.restarts(), 1u);
  EXPECT_GT(session.overload_shed(), 0u);
  EXPECT_GT(session.metrics_snapshot().counter("oosp_shard_checkpoints_total"), 0u);

  // Exactly-once over the ADMITTED stream: shedding and replay only ever
  // remove inputs, so for this positive SEQ query every produced match
  // must exist in the oracle set over the full offered stream, exactly
  // once — precision 1.0 means no replay duplicates and no phantoms.
  std::vector<MatchKey> expected = oracle_keys(session.query(0), offered);
  std::sort(expected.begin(), expected.end());
  const VerifyResult v = compare_keys(expected, sink->keys_for(0));
  EXPECT_EQ(v.precision(), 1.0) << "false_positives=" << v.false_positives;
}

}  // namespace
}  // namespace oosp
