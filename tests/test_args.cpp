// Unit tests: the command-line argument parser.
#include <gtest/gtest.h>

#include <sstream>

#include "common/args.hpp"

namespace oosp {
namespace {

ArgParser make_parser() {
  ArgParser p("test tool");
  p.add_string("name", "default", "a string");
  p.add_int("count", 7, "an int");
  p.add_double("ratio", 0.5, "a double");
  p.add_flag("verbose", "a flag");
  return p;
}

bool parse(ArgParser& p, std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return p.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParser, DefaultsApply) {
  ArgParser p = make_parser();
  ASSERT_TRUE(parse(p, {}));
  EXPECT_EQ(p.get_string("name"), "default");
  EXPECT_EQ(p.get_int("count"), 7);
  EXPECT_DOUBLE_EQ(p.get_double("ratio"), 0.5);
  EXPECT_FALSE(p.get_flag("verbose"));
}

TEST(ArgParser, SpaceSeparatedValues) {
  ArgParser p = make_parser();
  ASSERT_TRUE(parse(p, {"--name", "abc", "--count", "-3", "--ratio", "1.25",
                        "--verbose"}));
  EXPECT_EQ(p.get_string("name"), "abc");
  EXPECT_EQ(p.get_int("count"), -3);
  EXPECT_DOUBLE_EQ(p.get_double("ratio"), 1.25);
  EXPECT_TRUE(p.get_flag("verbose"));
}

TEST(ArgParser, EqualsSeparatedValues) {
  ArgParser p = make_parser();
  ASSERT_TRUE(parse(p, {"--name=xy", "--count=42"}));
  EXPECT_EQ(p.get_string("name"), "xy");
  EXPECT_EQ(p.get_int("count"), 42);
}

TEST(ArgParser, HelpShortCircuits) {
  ArgParser p = make_parser();
  EXPECT_FALSE(parse(p, {"--help"}));
  ArgParser q = make_parser();
  EXPECT_FALSE(parse(q, {"-h"}));
}

TEST(ArgParser, Errors) {
  {
    ArgParser p = make_parser();
    EXPECT_THROW(parse(p, {"--nope", "1"}), std::invalid_argument);
  }
  {
    ArgParser p = make_parser();
    EXPECT_THROW(parse(p, {"--count", "abc"}), std::invalid_argument);
  }
  {
    ArgParser p = make_parser();
    EXPECT_THROW(parse(p, {"--ratio", "x"}), std::invalid_argument);
  }
  {
    ArgParser p = make_parser();
    EXPECT_THROW(parse(p, {"--count"}), std::invalid_argument);  // missing value
  }
  {
    ArgParser p = make_parser();
    EXPECT_THROW(parse(p, {"--verbose=1"}), std::invalid_argument);  // flag w/ value
  }
  {
    ArgParser p = make_parser();
    EXPECT_THROW(parse(p, {"positional"}), std::invalid_argument);
  }
  {
    ArgParser p = make_parser();
    ASSERT_TRUE(parse(p, {}));
    EXPECT_THROW(p.get_int("name"), std::invalid_argument);  // wrong type access
    EXPECT_THROW(p.get_string("missing"), std::invalid_argument);
  }
}

TEST(ArgParser, LastValueWins) {
  ArgParser p = make_parser();
  ASSERT_TRUE(parse(p, {"--count", "1", "--count", "2"}));
  EXPECT_EQ(p.get_int("count"), 2);
}

TEST(ArgParser, UsageListsOptions) {
  ArgParser p = make_parser();
  std::ostringstream os;
  p.print_usage(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("--name"), std::string::npos);
  EXPECT_NE(s.find("--count"), std::string::npos);
  EXPECT_NE(s.find("default: 7"), std::string::npos);
  EXPECT_NE(s.find("--help"), std::string::npos);
}

}  // namespace
}  // namespace oosp
