// Unit tests: NFA-run engine (semantics parity with the stack engine on
// ordered input, run-count behaviour, purge).
#include <gtest/gtest.h>

#include "engine_test_util.hpp"

namespace oosp {
namespace {

using testutil::expect_exact;
using testutil::make_abcd_registry;
using testutil::make_event;
using testutil::run_engine_keys;

class NfaEngineTest : public ::testing::Test {
 protected:
  NfaEngineTest() : reg_(make_abcd_registry()) {}
  Event ev(const char* t, EventId id, Timestamp ts, std::int64_t k = 0,
           std::int64_t v = 0) {
    return make_event(reg_, t, id, ts, k, v);
  }
  TypeRegistry reg_;
};

TEST_F(NfaEngineTest, AgreesWithStackEngineOnOrderedStreams) {
  const CompiledQuery q = compile_query(
      "PATTERN SEQ(A a, B b, C c) WHERE a.k == b.k AND b.k == c.k WITHIN 120", reg_);
  std::vector<Event> events;
  EventId id = 0;
  for (int i = 0; i < 120; ++i) {
    const char* types[] = {"A", "B", "C"};
    events.push_back(
        ev(types[i % 3], id++, static_cast<Timestamp>(i) * 4 + 1, i % 4));
  }
  EXPECT_EQ(run_engine_keys(EngineKind::kNfa, q, events),
            run_engine_keys(EngineKind::kInOrder, q, events));
  expect_exact(EngineKind::kNfa, q, events, {}, "ordered parity");
}

TEST_F(NfaEngineTest, NegationParity) {
  const CompiledQuery q = compile_query(
      "PATTERN SEQ(A a, !B b, C c) WHERE a.k == c.k AND a.k == b.k WITHIN 100", reg_);
  const std::vector<Event> events{ev("A", 0, 10, 1), ev("B", 1, 15, 1),
                                  ev("C", 2, 20, 1), ev("A", 3, 30, 2),
                                  ev("C", 4, 40, 2)};
  EXPECT_EQ(run_engine_keys(EngineKind::kNfa, q, events),
            run_engine_keys(EngineKind::kInOrder, q, events));
}

TEST_F(NfaEngineTest, SingleStepAndSameTypeSteps) {
  const CompiledQuery q1 = compile_query("PATTERN SEQ(A a) WHERE a.v > 2 WITHIN 5", reg_);
  EXPECT_EQ(run_engine_keys(EngineKind::kNfa, q1,
                            {ev("A", 0, 1, 0, 1), ev("A", 1, 2, 0, 5)})
                .size(),
            1u);
  const CompiledQuery q2 = compile_query("PATTERN SEQ(A x, A y) WITHIN 50", reg_);
  const auto keys = run_engine_keys(EngineKind::kNfa, q2,
                                    {ev("A", 0, 10), ev("A", 1, 20), ev("A", 2, 30)});
  EXPECT_EQ(keys.size(), 3u);
}

TEST_F(NfaEngineTest, AnEventNeverExtendsItsOwnRun) {
  // Type A matches both steps; one event must not pair with itself.
  const CompiledQuery q = compile_query("PATTERN SEQ(A x, A y) WITHIN 50", reg_);
  EXPECT_TRUE(run_engine_keys(EngineKind::kNfa, q, {ev("A", 0, 10)}).empty());
}

TEST_F(NfaEngineTest, RunCountGrowsWithPartialMatches) {
  // Many A's, no B: state holds one run per A until purge.
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 1000", reg_);
  const auto sink = std::make_shared<CollectingSink>();
  EngineOptions opt;
  opt.purge_period = 0;
  const auto engine = testutil::make_test_engine(EngineKind::kNfa, q, sink, opt);
  for (EventId i = 0; i < 500; ++i)
    engine->on_event(ev("A", i, static_cast<Timestamp>(i) + 1));
  EXPECT_EQ(engine->stats_snapshot().current_instances, 500u);
}

TEST_F(NfaEngineTest, PurgeDropsExpiredRuns) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 10", reg_);
  const auto sink = std::make_shared<CollectingSink>();
  EngineOptions opt;
  opt.purge_period = 1;
  const auto engine = testutil::make_test_engine(EngineKind::kNfa, q, sink, opt);
  for (EventId i = 0; i < 100; ++i)
    engine->on_event(ev("A", i, static_cast<Timestamp>(i) * 5));
  const auto s = engine->stats_snapshot();
  EXPECT_LT(s.current_instances, 5u);
  EXPECT_GT(s.instances_purged, 90u);
}

TEST_F(NfaEngineTest, MissesLateEventsLikeAnyInOrderEngine) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 100", reg_);
  EXPECT_TRUE(
      run_engine_keys(EngineKind::kNfa, q, {ev("B", 0, 20), ev("A", 1, 10)}).empty());
}

TEST_F(NfaEngineTest, LongPattern) {
  const CompiledQuery q =
      compile_query("PATTERN SEQ(A a, B b, C c, D d) WITHIN 1000", reg_);
  std::vector<Event> events;
  EventId id = 0;
  const char* cycle[] = {"A", "B", "C", "D"};
  for (int round = 0; round < 10; ++round)
    for (const char* t : cycle) {
      const Timestamp ts = static_cast<Timestamp>(id + 1) * 3;
      events.push_back(ev(t, id++, ts));
    }
  expect_exact(EngineKind::kNfa, q, events, {}, "four step pattern");
}

}  // namespace
}  // namespace oosp
