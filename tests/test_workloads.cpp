// Unit tests: workload generators produce well-formed, ts-ordered streams
// whose canonical queries compile and yield plausible result counts.
#include <gtest/gtest.h>

#include "engine/oracle/oracle.hpp"
#include "stream/disorder.hpp"
#include "workload/intrusion.hpp"
#include "workload/rfid.hpp"
#include "workload/stock.hpp"
#include "workload/synthetic.hpp"

namespace oosp {
namespace {

TEST(SyntheticWorkload, GeneratesOrderedUniqueEvents) {
  SyntheticWorkload wl({.num_events = 3'000, .num_types = 5, .seed = 3});
  const auto events = wl.generate();
  ASSERT_EQ(events.size(), 3'000u);
  EXPECT_TRUE(is_ts_ordered(events));
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].id, events[i].id);
    EXPECT_LT(events[i - 1].ts, events[i].ts);  // gaps are >= 1
  }
  for (const auto& e : events) {
    EXPECT_LT(e.type, 5u);
    ASSERT_EQ(e.attrs.size(), 2u);
    EXPECT_GE(e.attrs[0].as_int(), 0);
    EXPECT_LT(e.attrs[0].as_int(), 100);
  }
}

TEST(SyntheticWorkload, GenerateContinuesSequence) {
  SyntheticWorkload wl({.num_events = 10, .seed = 4});
  const auto a = wl.generate(10);
  const auto b = wl.generate(10);
  EXPECT_LT(a.back().id, b.front().id);
  EXPECT_LT(a.back().ts, b.front().ts);
}

TEST(SyntheticWorkload, TypeWeightsRespected) {
  SyntheticWorkload wl({.num_events = 10'000, .num_types = 3, .seed = 5,
                        .type_weights = {1.0, 0.0, 3.0}});
  const auto events = wl.generate();
  std::size_t t0 = 0, t1 = 0, t2 = 0;
  for (const auto& e : events) {
    t0 += e.type == 0;
    t1 += e.type == 1;
    t2 += e.type == 2;
  }
  EXPECT_EQ(t1, 0u);
  EXPECT_NEAR(static_cast<double>(t2) / 10'000.0, 0.75, 0.02);
}

TEST(SyntheticWorkload, SkewedKeysConcentrate) {
  SyntheticWorkload uni({.num_events = 10'000, .key_cardinality = 50, .seed = 6});
  SyntheticWorkload skew(
      {.num_events = 10'000, .key_cardinality = 50, .key_skew = 1.2, .seed = 6});
  auto top_key_share = [](const std::vector<Event>& ev) {
    std::vector<std::size_t> counts(50, 0);
    for (const auto& e : ev) ++counts[static_cast<std::size_t>(e.attrs[0].as_int())];
    return static_cast<double>(*std::max_element(counts.begin(), counts.end())) /
           static_cast<double>(ev.size());
  };
  EXPECT_GT(top_key_share(skew.generate()), 2.0 * top_key_share(uni.generate()));
}

TEST(SyntheticWorkload, QueriesCompile) {
  SyntheticWorkload wl({.num_types = 5});
  EXPECT_NO_THROW(compile_query(wl.seq_query(3, true, 100), wl.registry()));
  EXPECT_NO_THROW(compile_query(wl.seq_query(5, false, 100), wl.registry()));
  EXPECT_NO_THROW(compile_query(wl.negation_query(100), wl.registry()));
  EXPECT_NO_THROW(compile_query(wl.seq_query(2, true, 100, 500), wl.registry()));
  EXPECT_THROW(wl.seq_query(6, true, 100), std::invalid_argument);
  const CompiledQuery keyed = compile_query(wl.seq_query(3, true, 100), wl.registry());
  EXPECT_TRUE(keyed.partitionable());
}

TEST(RfidWorkload, LifecyclesAreConsistent) {
  RfidWorkload wl({.num_items = 500, .shoplift_fraction = 0.1, .seed = 8});
  const auto events = wl.generate();
  EXPECT_TRUE(is_ts_ordered(events));
  const TypeId shelf = wl.registry().lookup("Shelf");
  const TypeId checkout = wl.registry().lookup("Checkout");
  const TypeId exit = wl.registry().lookup("Exit");
  std::size_t shelves = 0, checkouts = 0, exits = 0;
  for (const auto& e : events) {
    shelves += e.type == shelf;
    checkouts += e.type == checkout;
    exits += e.type == exit;
  }
  EXPECT_EQ(shelves, 500u);
  EXPECT_EQ(exits, 500u);
  EXPECT_EQ(checkouts, 500u - wl.expected_shoplifted());
  EXPECT_GT(wl.expected_shoplifted(), 20u);
  EXPECT_LT(wl.expected_shoplifted(), 100u);
}

TEST(RfidWorkload, OracleFindsExactlyTheShoplifters) {
  RfidWorkload wl({.num_items = 300, .shoplift_fraction = 0.08, .seed = 9});
  const auto events = wl.generate();
  // Window large enough to cover any lifecycle in this config.
  const CompiledQuery q = compile_query(wl.shoplifting_query(100'000), wl.registry());
  EXPECT_EQ(oracle_keys(q, events).size(), wl.expected_shoplifted());
  const CompiledQuery qp = compile_query(wl.purchase_query(100'000), wl.registry());
  EXPECT_EQ(oracle_keys(qp, events).size(), 300u - wl.expected_shoplifted());
}

TEST(StockWorkload, PricesPositiveAndOrdered) {
  StockWorkload wl({.num_ticks = 2'000, .num_symbols = 5, .seed = 10});
  const auto events = wl.generate();
  ASSERT_EQ(events.size(), 2'000u);
  EXPECT_TRUE(is_ts_ordered(events));
  for (const auto& e : events) {
    EXPECT_GT(e.attrs[1].as_double(), 0.0);
    EXPECT_GE(e.attrs[2].as_int(), 1);
  }
}

TEST(StockWorkload, QueriesCompileAndMatch) {
  StockWorkload wl({.num_ticks = 400, .num_symbols = 3, .seed = 11});
  const auto events = wl.generate();
  const CompiledQuery v = compile_query(wl.vshape_query(60), wl.registry());
  const CompiledQuery r = compile_query(wl.rising_query(3, 60), wl.registry());
  // Random walks produce both shapes in abundance.
  EXPECT_GT(oracle_keys(v, events).size(), 10u);
  EXPECT_GT(oracle_keys(r, events).size(), 10u);
  EXPECT_THROW(wl.rising_query(1, 60), std::invalid_argument);
}

TEST(IntrusionWorkload, AttackSignaturesDetectable) {
  IntrusionWorkload wl({.num_events = 8'000, .num_ips = 200, .seed = 12});
  const auto events = wl.generate();
  ASSERT_EQ(events.size(), 8'000u);
  EXPECT_TRUE(is_ts_ordered(events));
  const CompiledQuery q = compile_query(wl.bruteforce_query(3, 200), wl.registry());
  EXPECT_TRUE(q.partitionable());
  EXPECT_GT(oracle_keys(q, events).size(), 0u);
}

TEST(IntrusionWorkload, BackgroundOnlyHasFewSignatures) {
  IntrusionWorkload quiet({.num_events = 5'000, .num_ips = 400,
                           .attack_ip_fraction = 0.0, .fail_fraction = 0.02,
                           .seed = 13});
  const auto events = quiet.generate();
  const CompiledQuery q = compile_query(quiet.bruteforce_query(3, 100), quiet.registry());
  EXPECT_LT(oracle_keys(q, events).size(), 5u);
}

}  // namespace
}  // namespace oosp
