// Unit tests: the brute-force oracle on hand-checked streams.
#include <gtest/gtest.h>

#include "engine/oracle/oracle.hpp"
#include "query/parser.hpp"

namespace oosp {
namespace {

class OracleTest : public ::testing::Test {
 protected:
  OracleTest() {
    const Schema s({{"k", ValueType::kInt}, {"v", ValueType::kInt}});
    for (const char* n : {"A", "B", "C"}) reg_.register_type(n, s);
  }

  Event make(const char* type, EventId id, Timestamp ts, std::int64_t k = 0,
             std::int64_t v = 0) {
    Event e;
    e.type = reg_.lookup(type);
    e.id = id;
    e.ts = ts;
    e.attrs = {Value(k), Value(v)};
    return e;
  }

  TypeRegistry reg_;
};

TEST_F(OracleTest, SimpleSequence) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 100", reg_);
  const std::vector<Event> ev{make("A", 0, 10), make("B", 1, 20), make("A", 2, 30),
                              make("B", 3, 40)};
  const auto keys = oracle_keys(q, ev);
  // (0,1), (0,3), (2,3)
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], (MatchKey{0, 1}));
  EXPECT_EQ(keys[1], (MatchKey{0, 3}));
  EXPECT_EQ(keys[2], (MatchKey{2, 3}));
}

TEST_F(OracleTest, WindowIsInclusiveOfBound) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 10", reg_);
  const std::vector<Event> ev{make("A", 0, 10), make("B", 1, 20), make("B", 2, 21)};
  const auto keys = oracle_keys(q, ev);
  // last - first <= 10: (0,1) spans exactly 10 → in; (0,2) spans 11 → out.
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], (MatchKey{0, 1}));
}

TEST_F(OracleTest, EqualTimestampsNeverSequence) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 100", reg_);
  const std::vector<Event> ev{make("A", 0, 10), make("B", 1, 10)};
  EXPECT_TRUE(oracle_keys(q, ev).empty());
}

TEST_F(OracleTest, JoinPredicate) {
  const CompiledQuery q =
      compile_query("PATTERN SEQ(A a, B b) WHERE a.k == b.k WITHIN 100", reg_);
  const std::vector<Event> ev{make("A", 0, 10, 1), make("A", 1, 11, 2),
                              make("B", 2, 20, 1), make("B", 3, 21, 2)};
  const auto keys = oracle_keys(q, ev);
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], (MatchKey{0, 2}));
  EXPECT_EQ(keys[1], (MatchKey{1, 3}));
}

TEST_F(OracleTest, LocalPredicateFiltersCandidates) {
  const CompiledQuery q =
      compile_query("PATTERN SEQ(A a, B b) WHERE a.v > 5 WITHIN 100", reg_);
  const std::vector<Event> ev{make("A", 0, 10, 0, 3), make("A", 1, 11, 0, 9),
                              make("B", 2, 20)};
  const auto keys = oracle_keys(q, ev);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], (MatchKey{1, 2}));
}

TEST_F(OracleTest, NegationBlocksInterval) {
  const CompiledQuery q = compile_query(
      "PATTERN SEQ(A a, !B b, C c) WHERE a.k == c.k AND a.k == b.k WITHIN 100", reg_);
  const std::vector<Event> ev{
      make("A", 0, 10, 1), make("B", 1, 15, 1), make("C", 2, 20, 1),  // blocked
      make("A", 3, 30, 2), make("C", 4, 40, 2),                       // clean
  };
  const auto keys = oracle_keys(q, ev);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], (MatchKey{3, 4}));
}

TEST_F(OracleTest, NegationIsStrictlyInterior) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, !B b, C c) WITHIN 100", reg_);
  // B events exactly at the boundaries do NOT negate.
  const std::vector<Event> ev{make("A", 0, 10), make("B", 1, 10), make("B", 2, 20),
                              make("C", 3, 20)};
  const auto keys = oracle_keys(q, ev);
  ASSERT_EQ(keys.size(), 1u);
}

TEST_F(OracleTest, NegationWithDifferentKeyDoesNotBlock) {
  const CompiledQuery q = compile_query(
      "PATTERN SEQ(A a, !B b, C c) WHERE a.k == b.k AND a.k == c.k WITHIN 100", reg_);
  const std::vector<Event> ev{make("A", 0, 10, 1), make("B", 1, 15, 2),
                              make("C", 2, 20, 1)};
  EXPECT_EQ(oracle_keys(q, ev).size(), 1u);
}

TEST_F(OracleTest, ArrivalOrderIrrelevant) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b, C c) WITHIN 100", reg_);
  std::vector<Event> ev{make("C", 0, 30), make("A", 1, 10), make("B", 2, 20)};
  const auto keys = oracle_keys(q, ev);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], (MatchKey{1, 2, 0}));
}

TEST_F(OracleTest, SameTypeMultipleSteps) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A x, A y) WITHIN 100", reg_);
  const std::vector<Event> ev{make("A", 0, 10), make("A", 1, 20), make("A", 2, 30)};
  const auto keys = oracle_keys(q, ev);
  // (0,1), (0,2), (1,2)
  EXPECT_EQ(keys.size(), 3u);
}

TEST_F(OracleTest, SingleStepPattern) {
  const CompiledQuery q =
      compile_query("PATTERN SEQ(A a) WHERE a.v >= 5 WITHIN 10", reg_);
  const std::vector<Event> ev{make("A", 0, 1, 0, 4), make("A", 1, 2, 0, 5),
                              make("A", 2, 3, 0, 6)};
  EXPECT_EQ(oracle_keys(q, ev).size(), 2u);
}

TEST_F(OracleTest, EmptyStream) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 10", reg_);
  EXPECT_TRUE(oracle_keys(q, {}).empty());
}

TEST_F(OracleTest, CrossStepInequalityPredicate) {
  const CompiledQuery q =
      compile_query("PATTERN SEQ(A a, B b) WHERE a.v < b.v WITHIN 100", reg_);
  const std::vector<Event> ev{make("A", 0, 10, 0, 5), make("B", 1, 20, 0, 3),
                              make("B", 2, 21, 0, 8)};
  const auto keys = oracle_keys(q, ev);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], (MatchKey{0, 2}));
}

TEST_F(OracleTest, MatchBodyHasOrderedTimestamps) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b, C c) WITHIN 100", reg_);
  const std::vector<Event> ev{make("A", 0, 10), make("B", 1, 20), make("C", 2, 30)};
  const auto ms = oracle_matches(q, ev);
  ASSERT_EQ(ms.size(), 1u);
  EXPECT_EQ(ms[0].first_ts(), 10);
  EXPECT_EQ(ms[0].last_ts(), 30);
  EXPECT_EQ(ms[0].events.size(), 3u);
}

}  // namespace
}  // namespace oosp
