// Observability layer: metrics registry semantics (sharded slots, gauge
// aggregation, histogram buckets, text exposition), engine and session
// instrumentation, trace-hook lifecycle ordering, stats underflow
// guards, and shard-worker liveness.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "common/spsc_queue.hpp"
#include "engine_test_util.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/session.hpp"

namespace oosp {
namespace {

using testutil::make_abcd_registry;
using testutil::make_event;

// ----------------------------------------------------------- Histogram

TEST(ObsHistogram, BucketBoundaries) {
  // Bucket 0 holds exactly 0; bucket i >= 1 holds [2^(i-1), 2^i - 1].
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 1u);
  EXPECT_EQ(Histogram::bucket_index(2), 2u);
  EXPECT_EQ(Histogram::bucket_index(3), 2u);
  EXPECT_EQ(Histogram::bucket_index(4), 3u);
  EXPECT_EQ(Histogram::bucket_index(7), 3u);
  EXPECT_EQ(Histogram::bucket_index(8), 4u);
  EXPECT_EQ(Histogram::bucket_index(1024), 11u);
  EXPECT_EQ(Histogram::bucket_index(~std::uint64_t{0}), 64u);

  EXPECT_EQ(Histogram::bucket_upper_bound(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper_bound(1), 1u);
  EXPECT_EQ(Histogram::bucket_upper_bound(2), 3u);
  EXPECT_EQ(Histogram::bucket_upper_bound(3), 7u);
  EXPECT_EQ(Histogram::bucket_upper_bound(64), ~std::uint64_t{0});

  // Every bucket's upper bound maps back into that bucket, and the next
  // value up maps into the next bucket — the boundaries are airtight.
  for (std::size_t i = 0; i + 1 < Histogram::kBuckets; ++i) {
    const std::uint64_t ub = Histogram::bucket_upper_bound(i);
    EXPECT_EQ(Histogram::bucket_index(ub), i) << "upper bound of bucket " << i;
    EXPECT_EQ(Histogram::bucket_index(ub + 1), i + 1) << "first of bucket " << i + 1;
  }
}

TEST(ObsHistogram, ObserveCountSumAndSignedClamp) {
  Histogram h;
  h.observe(0);
  h.observe(1);
  h.observe(5);
  h.observe_signed(-3);  // clamps to 0
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 6u);
  EXPECT_EQ(h.bucket(0), 2u);  // the 0 and the clamped -3
  EXPECT_EQ(h.bucket(1), 1u);  // the 1
  EXPECT_EQ(h.bucket(3), 1u);  // the 5, in [4,7]
}

TEST(ObsHistogram, QuantileReturnsContainingBucketBound) {
  MetricsRegistry reg;
  Histogram* h = reg.histogram("lat");
  for (int i = 0; i < 99; ++i) h->observe(2);  // bucket 2, upper bound 3
  h->observe(1000);                            // bucket 10, upper bound 1023
  const MetricsSnapshot snap = reg.snapshot();
  const HistogramData* d = snap.histogram("lat");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->quantile(0.5), 3u);
  EXPECT_EQ(d->quantile(0.99), 3u);
  EXPECT_EQ(d->quantile(1.0), 1023u);
  EXPECT_DOUBLE_EQ(d->mean(), (99 * 2 + 1000) / 100.0);
}

// ------------------------------------------------------------ Registry

TEST(MetricsRegistryTest, CounterSlotsAggregateOnScrape) {
  MetricsRegistry reg;
  Counter* a = reg.counter("oosp_things_total");
  Counter* b = reg.counter("oosp_things_total");  // second shard's slot
  ASSERT_NE(a, b);
  a->inc(3);
  b->inc(4);
  EXPECT_EQ(reg.slot_count("oosp_things_total"), 2u);
  EXPECT_EQ(reg.snapshot().counter("oosp_things_total"), 7u);
}

TEST(MetricsRegistryTest, GaugeAggregationSumVsMax) {
  MetricsRegistry reg;
  Gauge* d1 = reg.gauge("depth", GaugeAgg::kSum);
  Gauge* d2 = reg.gauge("depth", GaugeAgg::kSum);
  Gauge* k1 = reg.gauge("slack", GaugeAgg::kMax);
  Gauge* k2 = reg.gauge("slack", GaugeAgg::kMax);
  d1->set(10);
  d2->set(5);
  k1->set(10);
  k2->set(25);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.gauge("depth"), 15);
  EXPECT_EQ(snap.gauge("slack"), 25);
}

TEST(MetricsRegistryTest, HistogramSlotsSumBucketwise) {
  MetricsRegistry reg;
  Histogram* h1 = reg.histogram("lat");
  Histogram* h2 = reg.histogram("lat");
  h1->observe(2);
  h2->observe(3);
  h2->observe(100);
  const MetricsSnapshot snap = reg.snapshot();
  const HistogramData* d = snap.histogram("lat");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->count, 3u);
  EXPECT_EQ(d->sum, 105u);
  EXPECT_EQ(d->buckets[Histogram::bucket_index(2)], 2u);  // the 2 and the 3
  EXPECT_EQ(d->buckets[Histogram::bucket_index(100)], 1u);
}

TEST(MetricsRegistryTest, TypeMismatchRejected) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("x"), std::invalid_argument);
  reg.gauge("g", GaugeAgg::kSum);
  EXPECT_THROW(reg.gauge("g", GaugeAgg::kMax), std::invalid_argument);
}

TEST(MetricsRegistryTest, SnapshotDoesNotResetButResetDoes) {
  MetricsRegistry reg;
  Counter* c = reg.counter("c");
  Gauge* g = reg.gauge("g");
  Histogram* h = reg.histogram("h");
  c->inc(5);
  g->set(-2);
  h->observe(9);
  EXPECT_EQ(reg.snapshot().counter("c"), 5u);
  // Prometheus-style cumulative semantics: scraping is read-only.
  EXPECT_EQ(reg.snapshot().counter("c"), 5u);
  EXPECT_EQ(reg.snapshot().gauge("g"), -2);
  reg.reset();
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("c"), 0u);
  EXPECT_EQ(snap.gauge("g"), 0);
  EXPECT_EQ(snap.histogram("h")->count, 0u);
}

TEST(MetricsRegistryTest, PrometheusTextExposition) {
  MetricsRegistry reg;
  reg.counter("oosp_events_total", "events ingested")->inc(42);
  reg.gauge("oosp_depth")->set(7);
  reg.histogram("oosp_lat")->observe(5);
  const std::string text = reg.scrape_text();
  EXPECT_NE(text.find("# TYPE oosp_events_total counter"), std::string::npos);
  EXPECT_NE(text.find("# HELP oosp_events_total events ingested"), std::string::npos);
  EXPECT_NE(text.find("oosp_events_total 42"), std::string::npos);
  EXPECT_NE(text.find("oosp_depth 7"), std::string::npos);
  EXPECT_NE(text.find("oosp_lat_bucket{le=\"7\"} 1"), std::string::npos);
  EXPECT_NE(text.find("oosp_lat_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("oosp_lat_sum 5"), std::string::npos);
  EXPECT_NE(text.find("oosp_lat_count 1"), std::string::npos);
}

// ------------------------------------------------- SpscQueue occupancy

TEST(SpscQueueObs, FullAtCapacityMinusOneAndSizeApprox) {
  // Regression guard for the reserved-slot design: a ring of 8 holds 7.
  SpscQueue<int> q(8);
  EXPECT_EQ(q.capacity(), 7u);
  EXPECT_EQ(q.size_approx(), 0u);
  for (int i = 0; i < 7; ++i) {
    EXPECT_TRUE(q.try_push(int(i)));
    EXPECT_EQ(q.size_approx(), static_cast<std::size_t>(i) + 1);
  }
  EXPECT_FALSE(q.try_push(7));  // full with 7 = capacity() elements
  EXPECT_EQ(q.size_approx(), 7u);
  int v = 0;
  for (int i = 0; i < 7; ++i) ASSERT_TRUE(q.try_pop(v));
  EXPECT_EQ(q.size_approx(), 0u);
  // Wrap-around: occupancy stays correct once the indices lap the ring.
  for (int round = 0; round < 5; ++round) {
    EXPECT_TRUE(q.try_push(1));
    EXPECT_TRUE(q.try_push(2));
    EXPECT_EQ(q.size_approx(), 2u);
    ASSERT_TRUE(q.try_pop(v));
    ASSERT_TRUE(q.try_pop(v));
    EXPECT_EQ(q.size_approx(), 0u);
  }
}

// ------------------------------------------------ Stats underflow guards

TEST(EngineStatsGuards, RemovingMoreThanLiveTripsDebugAssert) {
#ifdef NDEBUG
  GTEST_SKIP() << "OOSP_ASSERT is compiled out in NDEBUG builds";
#else
  EngineStats s;
  s.note_instance_added();
  s.note_instances_removed(1);
  // Double purge of the same instance: previously a silent u64 underflow
  // that corrupted footprint(); now a loud logic_error in debug builds.
  EXPECT_THROW(s.note_instances_removed(1), std::logic_error);

  EngineStats b;
  b.note_buffered(2);
  EXPECT_THROW(b.note_unbuffered(3), std::logic_error);
  b.note_unbuffered(2);
  EXPECT_THROW(b.note_unbuffered(1), std::logic_error);
#endif
}

// --------------------------------------------------- Engine instruments

class SessionObsTest : public ::testing::Test {
 protected:
  // a.k == b.k keyed workload with some disorder: 2 matches per key.
  std::vector<Event> keyed_stream(int keys) {
    std::vector<Event> events;
    EventId id = 0;
    for (int k = 0; k < keys; ++k) {
      const Timestamp base = 100 * k;
      events.push_back(make_event(reg_, "A", id++, base + 1, k));
      events.push_back(make_event(reg_, "B", id++, base + 5, k));
      events.push_back(make_event(reg_, "B", id++, base + 3, k));  // late
      events.push_back(make_event(reg_, "A", id++, base + 2, k));  // late
    }
    return events;
  }

  TypeRegistry reg_ = make_abcd_registry();
  static constexpr const char* kKeyed =
      "PATTERN SEQ(A a, B b) WHERE a.k == b.k WITHIN 50";
};

TEST_F(SessionObsTest, SnapshotMatchesEngineStats) {
  const auto sink = std::make_shared<CollectingTaggedSink>();
  Session session(reg_,
                  SessionConfig{}.engine(EngineKind::kOoo).slack(10).query(kKeyed),
                  sink);
  for (const Event& e : keyed_stream(8)) session.push(e);
  session.close();

  ASSERT_TRUE(session.metrics_enabled());
  const MetricsSnapshot snap = session.metrics_snapshot();
  const EngineStats total = session.total_stats();
  EXPECT_EQ(snap.counter("oosp_session_events_total"), session.events_seen());
  EXPECT_EQ(snap.counter("oosp_engine_events_total"), total.events_seen);
  EXPECT_EQ(snap.counter("oosp_engine_late_events_total"), total.late_events);
  EXPECT_EQ(snap.counter("oosp_engine_matches_total"), total.matches_emitted);
  EXPECT_EQ(snap.counter("oosp_engine_purge_passes_total"), total.purge_passes);
  EXPECT_GT(total.matches_emitted, 0u);
  // Each match observed a stream-time detection latency.
  const HistogramData* lat = snap.histogram("oosp_engine_detection_latency_stream");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, total.matches_emitted);
}

TEST_F(SessionObsTest, CrossShardAggregationMatchesStatsMerge) {
  const auto run = [&](std::size_t shards) {
    const auto sink = std::make_shared<CollectingTaggedSink>();
    Session session(
        reg_,
        SessionConfig{}.engine(EngineKind::kOoo).slack(10).shards(shards).query(kKeyed),
        sink);
    for (const Event& e : keyed_stream(16)) session.push(e);
    session.close();
    return std::pair(session.metrics_snapshot(), session.total_stats());
  };

  const auto [snap1, stats1] = run(1);
  const auto [snap4, stats4] = run(4);

  // The scrape-side aggregation (sum over per-shard slots) must agree
  // with the stats-side aggregation (EngineStats::operator+= over
  // per-shard snapshots) — same counters, two independent paths.
  for (const auto* snap : {&snap1, &snap4}) {
    const EngineStats& total = snap == &snap1 ? stats1 : stats4;
    EXPECT_EQ(snap->counter("oosp_engine_events_total"), total.events_seen);
    EXPECT_EQ(snap->counter("oosp_engine_late_events_total"), total.late_events);
    EXPECT_EQ(snap->counter("oosp_engine_matches_total"), total.matches_emitted);
    EXPECT_EQ(snap->counter("oosp_engine_purge_passes_total"), total.purge_passes);
  }
  // And the two shard counts found the same matches.
  EXPECT_EQ(snap1.counter("oosp_engine_matches_total"),
            snap4.counter("oosp_engine_matches_total"));
  // Sharded-runtime families exist only in the sharded run.
  EXPECT_EQ(snap1.counters.count("oosp_shard_push_retries_total"), 0u);
  EXPECT_EQ(snap4.counters.count("oosp_shard_push_retries_total"), 1u);
  EXPECT_EQ(snap4.counter("oosp_shard_worker_failures_total"), 0u);
}

TEST_F(SessionObsTest, KSlackBufferInstruments) {
  const auto sink = std::make_shared<CollectingTaggedSink>();
  Session session(
      reg_, SessionConfig{}.engine(EngineKind::kKSlackInOrder).slack(10).query(kKeyed),
      sink);
  const auto events = keyed_stream(4);
  for (const Event& e : events) session.push(e);
  const MetricsSnapshot mid = session.metrics_snapshot();  // mid-run scrape
  session.close();
  const MetricsSnapshot snap = session.metrics_snapshot();
  // Arrival-side counters come from the wrapper only — no double count
  // even though the inner engine re-sees every released event.
  EXPECT_EQ(snap.counter("oosp_engine_events_total"), events.size());
  // Everything buffered was eventually released, exactly once.
  EXPECT_EQ(snap.counter("oosp_kslack_releases_total"), events.size());
  EXPECT_EQ(snap.gauge("oosp_kslack_reorder_depth"), 0);
  EXPECT_GE(mid.gauge("oosp_kslack_reorder_depth"), 0);
  EXPECT_EQ(snap.gauge("oosp_engine_effective_slack"), 10);
}

TEST_F(SessionObsTest, MetricsDisabledSessionStillRuns) {
  const auto sink = std::make_shared<CollectingTaggedSink>();
  Session session(reg_, SessionConfig{}.metrics(false).query(kKeyed), sink);
  for (const Event& e : keyed_stream(4)) session.push(e);
  session.close();
  EXPECT_FALSE(session.metrics_enabled());
  EXPECT_GT(sink->matches().size(), 0u);
  EXPECT_THROW(session.metrics_snapshot(), std::logic_error);
  EXPECT_THROW(session.metrics_text(), std::logic_error);
}

// ------------------------------------------------------ Trace lifecycle

class TraceLifecycleTest : public ::testing::Test {
 protected:
  std::vector<TraceKind> run(bool aggressive, const std::vector<Event>& events) {
    EngineOptions options;
    options.slack = 10;
    options.aggressive_negation = aggressive;
    options.trace = recorder_.hook();
    const CompiledQuery q = compile_query(kNegated, reg_);
    const auto sink = std::make_shared<CollectingSink>();
    const auto engine = testutil::make_test_engine(EngineKind::kOoo, q, sink, options);
    for (const Event& e : events) engine->on_event(e);
    engine->finish();
    matches_ = sink->matches().size();
    return recorder_.kinds();
  }

  static std::size_t first(const std::vector<TraceKind>& kinds, TraceKind k) {
    const auto it = std::find(kinds.begin(), kinds.end(), k);
    return static_cast<std::size_t>(it - kinds.begin());
  }
  static std::size_t count(const std::vector<TraceKind>& kinds, TraceKind k) {
    return static_cast<std::size_t>(std::count(kinds.begin(), kinds.end(), k));
  }

  TypeRegistry reg_ = make_abcd_registry();
  TraceRecorder recorder_;
  std::size_t matches_ = 0;
  static constexpr const char* kNegated = "PATTERN SEQ(A a, !B b, C c) WITHIN 100";
};

TEST_F(TraceLifecycleTest, ConservativeSealThenEmit) {
  // A..C candidate is held (negation interval not sealed under K=10),
  // then the D tick advances the clock past the horizon: seal -> emit.
  const auto kinds = run(false, {make_event(reg_, "A", 1, 1),
                                 make_event(reg_, "C", 2, 5),
                                 make_event(reg_, "D", 3, 40)});
  EXPECT_EQ(matches_, 1u);
  ASSERT_EQ(count(kinds, TraceKind::kSeal), 1u);
  ASSERT_EQ(count(kinds, TraceKind::kEmit), 1u);
  EXPECT_LT(first(kinds, TraceKind::kStart), first(kinds, TraceKind::kSeal));
  EXPECT_LT(first(kinds, TraceKind::kSeal), first(kinds, TraceKind::kEmit));
  EXPECT_EQ(count(kinds, TraceKind::kRetract), 0u);
}

TEST_F(TraceLifecycleTest, ConservativeSealThenCancelOnLateNegative) {
  // The negative lands inside the pending candidate's interval before it
  // seals: the candidate is cancelled at seal time, never emitted.
  const auto kinds = run(false, {make_event(reg_, "A", 1, 1),
                                 make_event(reg_, "C", 2, 5),
                                 make_event(reg_, "B", 3, 3),  // late negative
                                 make_event(reg_, "D", 4, 40)});
  EXPECT_EQ(matches_, 0u);
  ASSERT_EQ(count(kinds, TraceKind::kSeal), 1u);
  ASSERT_EQ(count(kinds, TraceKind::kCancel), 1u);
  EXPECT_LT(first(kinds, TraceKind::kSeal), first(kinds, TraceKind::kCancel));
  EXPECT_EQ(count(kinds, TraceKind::kEmit), 0u);
}

TEST_F(TraceLifecycleTest, AggressiveEmitThenRetract) {
  // Aggressive negation emits immediately; the late negative inside the
  // unsealed interval then forces a retraction: emit -> retract.
  const auto kinds = run(true, {make_event(reg_, "A", 1, 1),
                                make_event(reg_, "C", 2, 5),
                                make_event(reg_, "B", 3, 3)});  // late negative
  ASSERT_EQ(count(kinds, TraceKind::kEmit), 1u);
  ASSERT_EQ(count(kinds, TraceKind::kRetract), 1u);
  EXPECT_LT(first(kinds, TraceKind::kEmit), first(kinds, TraceKind::kRetract));
}

// --------------------------------------------------- Periodic reporter

TEST(SessionReporter, PeriodicallyDeliversExposition) {
  const TypeRegistry reg = make_abcd_registry();
  const auto sink = std::make_shared<CollectingTaggedSink>();
  std::mutex mu;
  std::vector<std::string> reports;
  Session session(reg,
                  SessionConfig{}
                      .query("PATTERN SEQ(A a, B b) WHERE a.k == b.k WITHIN 50")
                      .report_every(std::chrono::milliseconds(2))
                      .report_to([&](const std::string& text) {
                        std::lock_guard<std::mutex> lock(mu);
                        reports.push_back(text);
                      }),
                  sink);
  for (EventId i = 0; i < 200; ++i) {
    session.push(make_event(reg, i % 2 ? "B" : "A", i, Timestamp(i), 0));
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  session.close();
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_FALSE(reports.empty());
  EXPECT_NE(reports.back().find("oosp_session_events_total"), std::string::npos);
  EXPECT_NE(reports.back().find("oosp_engine_matches_total"), std::string::npos);
}

// Regression: finish() used to leave the periodic reporter running while
// it drained the quarantine and bumped oosp_session_quarantine_drained_total,
// so a scrape could land between the two and publish a snapshot whose
// quarantine totals disagree. finish() must join the reporter FIRST — no
// report may be delivered after finish() returns. (The data race itself
// is the TSan job's catch; the joined-before-return contract is pinned
// here.)
TEST(SessionReporter, FinishStopsReporterBeforeQuarantineAccounting) {
  const TypeRegistry reg = make_abcd_registry();
  const auto sink = std::make_shared<CollectingTaggedSink>();
  auto scrapes = std::make_shared<std::atomic<std::uint64_t>>(0);
  EngineOptions opt;
  opt.late_policy = LatePolicy::kQuarantine;
  Session session(reg,
                  SessionConfig{}
                      .engine(EngineKind::kOoo)
                      .options(opt)
                      .slack(5)
                      .shards(2)
                      .report_every(std::chrono::milliseconds(1))
                      .report_to([scrapes](const std::string&) {
                        scrapes->fetch_add(1, std::memory_order_relaxed);
                      })
                      .query("PATTERN SEQ(A a, B b) WHERE a.k == b.k WITHIN 50"),
                  sink);
  for (EventId i = 0; i < 500; ++i)
    session.push(make_event(reg, i % 2 ? "B" : "A", i, Timestamp(i), (i / 2) % 8));
  // Stragglers past the slack horizon land in the quarantine finish() drains.
  session.push(make_event(reg, "A", 500, 0, 0));
  session.push(make_event(reg, "B", 501, 1, 0));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));  // let it scrape

  session.finish();  // direct finish, NOT close(): the racy path
  const std::uint64_t at_finish = scrapes->load(std::memory_order_relaxed);
  EXPECT_GT(session.quarantined().size(), 0u);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(scrapes->load(std::memory_order_relaxed), at_finish)
      << "reporter was still scraping after finish() returned";
}

// ------------------------------------------------- Worker liveness

// A trace hook that dies the moment any partial match opens — runs on
// the shard worker thread, so it kills the worker deterministically.
[[noreturn]] void poison_hook(void*, const TraceSpan&) {
  throw std::runtime_error("poisoned trace hook");
}

TEST(ShardLiveness, DeadWorkerSurfacesErrorInsteadOfHanging) {
  const TypeRegistry reg = make_abcd_registry();
  const auto sink = std::make_shared<CollectingTaggedSink>();
  Session session(reg,
                  SessionConfig{}
                      .shards(4)
                      .trace(TraceHook{&poison_hook, nullptr})
                      .query("PATTERN SEQ(A a, B b) WHERE a.k == b.k WITHIN 50"),
                  sink);
  ASSERT_TRUE(session.sharded());
  // The producer may trip over the dead worker in on_event (backpressure
  // spin or fail-fast) or only at close() — either way the original
  // exception must surface, and nothing may hang.
  bool threw = false;
  try {
    for (EventId i = 0; i < 50'000; ++i)
      session.push(make_event(reg, i % 2 ? "B" : "A", i, Timestamp(i), i % 64));
    session.close();
  } catch (const std::runtime_error& ex) {
    threw = true;
    EXPECT_STREQ(ex.what(), "poisoned trace hook");
  }
  ASSERT_TRUE(threw);
  // The failure was counted, and a repeat close() is a clean no-op.
  EXPECT_GE(session.metrics_snapshot().counter("oosp_shard_worker_failures_total"), 1u);
  EXPECT_NO_THROW(session.close());
}

TEST(ShardLiveness, BackpressureRetriesAreCounted) {
  const TypeRegistry reg = make_abcd_registry();
  const auto sink = std::make_shared<CollectingTaggedSink>();
  // One usable queue slot per shard: the producer is guaranteed to spin.
  Session session(reg,
                  SessionConfig{}
                      .shards(2)
                      .queue_capacity(2)
                      .query("PATTERN SEQ(A a, B b) WHERE a.k == b.k WITHIN 50"),
                  sink);
  ASSERT_TRUE(session.sharded());
  for (EventId i = 0; i < 20'000; ++i)
    session.push(make_event(reg, i % 2 ? "B" : "A", i, Timestamp(i), (i / 2) % 16));
  session.close();
  EXPECT_GT(session.metrics_snapshot().counter("oosp_shard_push_retries_total"), 0u);
  EXPECT_GT(sink->matches().size(), 0u);
}

}  // namespace
}  // namespace oosp
