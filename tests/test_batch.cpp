// Batched ingestion (Session::push_batch → ShardedRunner::on_batch →
// SpscQueue bulk ops → engine on_batch): SPSC bulk-transfer units, the
// event-arena recycling contract, batch-vs-per-event bit-identical
// output across engine kinds / keying / batch sizes, kill-at-batch-
// boundary recovery, checkpoint/restore mid-stream under batched
// feeding, and the aggressive-negation retraction-semantics pin.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/event_arena.hpp"
#include "common/rng.hpp"
#include "common/spsc_queue.hpp"
#include "engine_test_util.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/session.hpp"
#include "stream/disorder.hpp"
#include "stream/faults.hpp"
#include "workload/synthetic.hpp"

namespace oosp {
namespace {

using testutil::make_abcd_registry;
using testutil::make_event;
using testutil::make_test_engine;

// ----------------------------------------------------------- SPSC bulk

TEST(SpscBulk, RoundTripWithWraparoundMatchesModel) {
  SpscQueue<int> q(8);  // power of two; one slot reserved -> 7 usable
  constexpr std::size_t kUsable = 7;
  std::deque<int> model;
  Rng rng(42);
  int next = 0;
  std::vector<int> out(16);
  for (int round = 0; round < 2000; ++round) {
    if (rng.bernoulli(0.55)) {
      std::vector<int> src;
      const auto want = static_cast<std::size_t>(rng.uniform_int(1, 10));
      for (std::size_t i = 0; i < want; ++i) src.push_back(next + static_cast<int>(i));
      const std::size_t pushed = q.try_push_n(std::span<int>(src));
      // Single-threaded: the stale head cache only ever underestimates
      // free space and is refreshed on demand, so a bulk push must
      // accept exactly min(requested, free).
      ASSERT_EQ(pushed, std::min(want, kUsable - model.size()));
      for (std::size_t i = 0; i < pushed; ++i) model.push_back(src[i]);
      next += static_cast<int>(pushed);
    } else {
      const auto max = static_cast<std::size_t>(rng.uniform_int(1, 10));
      const std::size_t popped = q.try_pop_n(out.data(), max);
      ASSERT_EQ(popped, std::min(max, model.size()));
      for (std::size_t i = 0; i < popped; ++i) {
        ASSERT_EQ(out[i], model.front());
        model.pop_front();
      }
    }
  }
  // FIFO order held across ~2000 mixed transactions including many
  // wrap-arounds (ring is only 8 slots).
}

TEST(SpscBulk, BulkAndSingleOpsInterleave) {
  SpscQueue<int> q(4);  // 3 usable
  std::vector<int> src{1, 2, 3, 4, 5};
  EXPECT_EQ(q.try_push_n(std::span<int>(src)), 3u);  // partial fill
  EXPECT_EQ(q.try_push_n(std::span<int>(src)), 0u);  // full
  int v = 0;
  EXPECT_TRUE(q.try_pop(v));
  EXPECT_EQ(v, 1);
  std::vector<int> out(8);
  EXPECT_EQ(q.try_pop_n(out.data(), out.size()), 2u);
  EXPECT_EQ(out[0], 2);
  EXPECT_EQ(out[1], 3);
  EXPECT_EQ(q.try_pop_n(out.data(), out.size()), 0u);  // empty
  std::span<int> empty;
  EXPECT_EQ(q.try_push_n(empty), 0u);  // empty request is a no-op
}

// ----------------------------------------------------------- arena

TEST(EventArena, RecyclingAndAddressStability) {
  const TypeRegistry reg = make_abcd_registry();
  EventArena arena;
  std::vector<EventHandle> handles;
  std::vector<const Event*> addrs;
  // Grow across several 256-slot chunks; addresses must never move.
  for (EventId i = 0; i < 1000; ++i) {
    const EventHandle h =
        arena.alloc(make_event(reg, "A", i, static_cast<Timestamp>(i), 1, 2));
    handles.push_back(h);
    addrs.push_back(&arena.get(h));
  }
  EXPECT_EQ(arena.live(), 1000u);
  for (std::size_t i = 0; i < handles.size(); ++i) {
    EXPECT_EQ(&arena.get(handles[i]), addrs[i]) << "slot moved at " << i;
    EXPECT_EQ(arena.get(handles[i]).id, static_cast<EventId>(i));
  }
  // Refcounting: a retained handle survives one release.
  arena.retain(handles[0]);
  arena.release(handles[0]);
  EXPECT_EQ(arena.live(), 1000u);
  EXPECT_EQ(arena.get(handles[0]).id, 0u);
  // Releasing to zero recycles the slot: the next alloc reuses it (and
  // with it the attrs capacity) instead of growing the arena.
  arena.release(handles[0]);
  EXPECT_EQ(arena.live(), 999u);
  const std::size_t size_before = arena.size();
  const EventHandle reused = arena.alloc(make_event(reg, "B", 5000, 77, 3, 4));
  EXPECT_EQ(reused, handles[0]);
  EXPECT_EQ(arena.size(), size_before);
  EXPECT_EQ(arena.get(reused).id, 5000u);
  EXPECT_EQ(arena.get(reused).ts, 77);
}

// ------------------------------------ aggressive retraction semantics

// Pins the emit-then-retract contract of aggressive negation so the
// batched path (and the seal-indexed pending-match bookkeeping) cannot
// silently change it: a premature match is EMITTED as soon as its
// constituents exist, and RETRACTED when an in-contract late negative
// lands inside its negation interval; matches whose interval seals
// clean are never retracted.
TEST(AggressiveNegation, EmitsPrematurelyAndRetractsOnLateNegative) {
  const TypeRegistry reg = make_abcd_registry();
  const CompiledQuery q = compile_query(
      "PATTERN SEQ(A a, !B b, C c) WHERE a.k == b.k AND a.k == c.k WITHIN 100", reg);
  EngineOptions opt;
  opt.slack = 50;
  opt.aggressive_negation = true;
  const auto sink = std::make_shared<CollectingSink>();
  const auto engine = make_test_engine(EngineKind::kOoo, q, sink, opt);

  engine->on_event(make_event(reg, "A", 0, 10, 1));
  engine->on_event(make_event(reg, "C", 1, 30, 1));
  // Interval (10, 30) is unsealed (watermark = 30 - 50 < 10): the match
  // is emitted prematurely.
  ASSERT_EQ(sink->matches().size(), 1u);
  EXPECT_EQ(match_key(sink->matches()[0]), (MatchKey{0, 1}));
  EXPECT_TRUE(sink->retracted().empty());

  // Late negative inside (10, 30), same key, within slack: retract.
  engine->on_event(make_event(reg, "B", 2, 20, 1));
  ASSERT_EQ(sink->retracted().size(), 1u);
  EXPECT_EQ(match_key(sink->retracted()[0]), (MatchKey{0, 1}));

  // Second key: premature emission whose interval seals clean survives.
  engine->on_event(make_event(reg, "A", 3, 110, 2));
  engine->on_event(make_event(reg, "C", 4, 130, 2));
  engine->on_event(make_event(reg, "D", 5, 400, 0));  // clock: seals everything
  engine->finish();
  EXPECT_EQ(sink->retracted().size(), 1u);
  EXPECT_EQ(sink->net_sorted_keys(), (std::vector<MatchKey>{{3, 4}}));
}

// -------------------------------------- batch-vs-per-event determinism

// Feeds `arrivals` through a fresh engine in random-sized on_batch
// slices (pointer spans, like the runners deliver).
std::shared_ptr<CollectingSink> run_engine_batched(EngineKind kind,
                                                   const CompiledQuery& q,
                                                   const std::vector<Event>& arrivals,
                                                   const EngineOptions& options,
                                                   std::uint64_t partition_seed,
                                                   std::size_t fixed_batch = 0) {
  const auto sink = std::make_shared<CollectingSink>();
  const auto engine = make_test_engine(kind, q, sink, options);
  Rng rng(partition_seed);
  std::vector<const Event*> ptrs;
  std::size_t i = 0;
  while (i < arrivals.size()) {
    const std::size_t want =
        fixed_batch ? fixed_batch : static_cast<std::size_t>(rng.uniform_int(1, 64));
    const std::size_t n = std::min(want, arrivals.size() - i);
    ptrs.clear();
    for (std::size_t k = 0; k < n; ++k) ptrs.push_back(&arrivals[i + k]);
    engine->on_batch(std::span<const Event* const>(ptrs.data(), ptrs.size()));
    i += n;
  }
  engine->finish();
  return sink;
}

struct BatchCase {
  const char* label;
  EngineKind kind;
  std::string query;
  EngineOptions options;
};

class BatchDeterminism : public ::testing::Test {
 protected:
  BatchDeterminism()
      : wl_({.num_events = 3'000, .num_types = 3, .key_cardinality = 24,
             .mean_gap = 5, .seed = 7}) {
    const auto ordered = wl_.generate();
    DisorderInjector inj(LatencyModel::uniform(80), 0.3, 21);
    arrivals_ = inj.deliver(ordered);
    slack_ = inj.slack_bound();
  }

  SyntheticWorkload wl_;
  std::vector<Event> arrivals_;
  Timestamp slack_ = 0;
};

TEST_F(BatchDeterminism, EngineSweepMatchesPerEventOutput) {
  EngineOptions plain;
  EngineOptions unkeyed;
  unkeyed.partition_by_key = false;
  EngineOptions slacked = plain;
  slacked.slack = slack_;
  EngineOptions slacked_unkeyed = unkeyed;
  slacked_unkeyed.slack = slack_;
  EngineOptions no_rip = slacked;
  no_rip.cache_rip = false;
  EngineOptions eager = slacked;
  eager.purge_period = 1;

  const std::string keyed_q = wl_.seq_query(2, true, 200);
  const std::string unkeyed_q = wl_.seq_query(2, false, 200);
  const std::string neg_q = wl_.negation_query(200);

  const std::vector<BatchCase> cases{
      {"inorder-keyed", EngineKind::kInOrder, keyed_q, plain},
      {"inorder-unkeyed", EngineKind::kInOrder, unkeyed_q, unkeyed},
      {"nfa-keyed", EngineKind::kNfa, keyed_q, plain},
      {"ooo-keyed", EngineKind::kOoo, keyed_q, slacked},
      {"ooo-unkeyed", EngineKind::kOoo, unkeyed_q, slacked_unkeyed},
      {"ooo-keyed-norip", EngineKind::kOoo, keyed_q, no_rip},
      {"ooo-keyed-eager-purge", EngineKind::kOoo, keyed_q, eager},
      {"ooo-negation", EngineKind::kOoo, neg_q, slacked},
      {"kslack-inorder", EngineKind::kKSlackInOrder, keyed_q, slacked},
      {"kslack-nfa", EngineKind::kKSlackNfa, keyed_q, slacked},
      {"kslack-negation", EngineKind::kKSlackInOrder, neg_q, slacked},
  };

  for (const BatchCase& c : cases) {
    const CompiledQuery q = compile_query(c.query, wl_.registry());
    const auto oracle = testutil::run_engine(c.kind, q, arrivals_, c.options);
    std::vector<MatchKey> oracle_keys;
    for (const Match& m : oracle) oracle_keys.push_back(match_key(m));
    std::sort(oracle_keys.begin(), oracle_keys.end());
    ASSERT_GT(oracle_keys.size(), 0u) << c.label << ": vacuous case";
    // Random partitions plus the degenerate extremes: all singletons
    // (must be the per-event path exactly) and one whole-stream batch.
    for (const std::uint64_t seed : {11ull, 12ull, 13ull}) {
      const auto sink = run_engine_batched(c.kind, q, arrivals_, c.options, seed);
      EXPECT_EQ(sink->sorted_keys(), oracle_keys) << c.label << " seed=" << seed;
      EXPECT_TRUE(sink->retracted().empty()) << c.label;
    }
    const auto ones = run_engine_batched(c.kind, q, arrivals_, c.options, 0, 1);
    EXPECT_EQ(ones->sorted_keys(), oracle_keys) << c.label << " batch=1";
    const auto whole =
        run_engine_batched(c.kind, q, arrivals_, c.options, 0, arrivals_.size());
    EXPECT_EQ(whole->sorted_keys(), oracle_keys) << c.label << " batch=all";
  }
}

TEST_F(BatchDeterminism, AggressiveNegationNetSetMatchesPerEvent) {
  // Aggressive emission/retraction multisets may legitimately differ
  // under batching (a negative sorted ahead of its trigger within one
  // batch suppresses a premature emission instead of retracting it);
  // the NET result must not.
  EngineOptions opt;
  opt.slack = slack_;
  opt.aggressive_negation = true;
  const CompiledQuery q = compile_query(wl_.negation_query(200), wl_.registry());
  const auto sink_oracle = std::make_shared<CollectingSink>();
  const auto oracle = make_test_engine(EngineKind::kOoo, q, sink_oracle, opt);
  for (const Event& e : arrivals_) oracle->on_event(e);
  oracle->finish();
  ASSERT_GT(sink_oracle->matches().size(), 0u);
  for (const std::uint64_t seed : {21ull, 22ull}) {
    const auto sink = run_engine_batched(EngineKind::kOoo, q, arrivals_, opt, seed);
    EXPECT_EQ(sink->net_sorted_keys(), sink_oracle->net_sorted_keys())
        << "seed=" << seed;
  }
}

std::vector<std::pair<QueryId, MatchKey>> run_session_stream(
    const SyntheticWorkload& wl, const std::vector<Event>& arrivals, Timestamp slack,
    std::size_t shards, std::size_t batch, std::uint64_t seed,
    std::size_t checkpoint_every = 0, WorkerKillHook hook = {}) {
  const auto sink = std::make_shared<CollectingTaggedSink>();
  SessionConfig cfg;
  cfg.engine(EngineKind::kOoo)
      .slack(slack)
      .shards(shards)
      .metrics(false)
      .query(wl.seq_query(2, true, 200))
      .query(wl.negation_query(200));
  if (checkpoint_every) {
    cfg.checkpoint_every(checkpoint_every)
        .max_restarts(10)
        .restart_backoff(std::chrono::milliseconds(0), std::chrono::milliseconds(0));
  }
  if (hook) cfg.kill_hook(std::move(hook));
  Session session(wl.registry(), cfg, sink);
  if (batch == 0) {
    for (const Event& e : arrivals) session.push(e);
  } else {
    Rng rng(seed);
    std::size_t i = 0;
    while (i < arrivals.size()) {
      const std::size_t want =
          seed ? static_cast<std::size_t>(rng.uniform_int(1, 2 * batch)) : batch;
      const std::size_t n = std::min(want, arrivals.size() - i);
      session.push_batch(std::span<const Event>(arrivals.data() + i, n));
      i += n;
    }
  }
  session.close();
  std::vector<std::pair<QueryId, MatchKey>> out;
  for (const TaggedMatch& tm : sink->matches())
    out.emplace_back(tm.query, match_key(tm.match));
  return out;
}

TEST_F(BatchDeterminism, SessionInlineAndShardedMatchPerEventExactly) {
  for (const std::size_t shards : {std::size_t{1}, std::size_t{3}}) {
    const auto oracle = run_session_stream(wl_, arrivals_, slack_, shards, 0, 0);
    ASSERT_GT(oracle.size(), 10u) << "shards=" << shards;
    for (const std::uint64_t seed : {31ull, 32ull}) {
      const auto batched =
          run_session_stream(wl_, arrivals_, slack_, shards, 64, seed);
      // finish() delivers in canonical order: the full tagged sequence —
      // not just the multiset — must be bit-identical.
      EXPECT_EQ(batched, oracle) << "shards=" << shards << " seed=" << seed;
    }
    const auto giant = run_session_stream(wl_, arrivals_, slack_, shards,
                                          arrivals_.size(), 0);
    EXPECT_EQ(giant, oracle) << "shards=" << shards << " batch=all";
  }
}

// ------------------------------------------- batched feeding + recovery

class BatchRecovery : public ::testing::Test {
 protected:
  BatchRecovery()
      : wl_({.num_events = 250, .num_types = 3, .key_cardinality = 12,
             .mean_gap = 6, .seed = 33}) {
    const auto ordered = wl_.generate();
    DisorderInjector inj(LatencyModel::uniform(60), 0.25, 5);
    arrivals_ = inj.deliver(ordered);
    slack_ = inj.slack_bound();
  }

  SyntheticWorkload wl_;
  std::vector<Event> arrivals_;
  Timestamp slack_ = 0;
};

TEST_F(BatchRecovery, KillAtEveryBatchBoundaryYieldsPerEventOutput) {
  constexpr std::size_t kBatch = 32;
  const auto oracle = run_session_stream(wl_, arrivals_, slack_, 3, 0, 0,
                                         /*checkpoint_every=*/7);
  ASSERT_GT(oracle.size(), 5u);
  // Batched + recovery, fault-free, must already be bit-identical (the
  // runner falls back to per-event routing so the backup invariant
  // holds).
  EXPECT_EQ(run_session_stream(wl_, arrivals_, slack_, 3, kBatch, 0, 7), oracle);
  // Kill the worker at the first event of every batch: the crash lands
  // exactly on a producer-side batch boundary each time.
  for (std::size_t i = 0; i < arrivals_.size(); i += kBatch) {
    WorkerKillFault fault({arrivals_[i].id});
    const auto run =
        run_session_stream(wl_, arrivals_, slack_, 3, kBatch, 0, 7, fault.hook());
    EXPECT_EQ(run, oracle) << "diverged after kill at batch boundary " << i;
    EXPECT_EQ(fault.victims_remaining(), 0u) << "kill at " << i << " never fired";
  }
}

// -------------------------------- checkpoint/restore under batched feed

TEST_F(BatchRecovery, ArenaStateSurvivesCheckpointRestoreMidStream) {
  // Cut the batched stream at several points: snapshot, restore into a
  // fresh engine (fresh arena — handles are rebuilt, bytes must not
  // change), verify re-snapshot byte identity, finish on the suffix, and
  // compare the union against an uninterrupted per-event run.
  EngineOptions opt;
  opt.slack = slack_;
  const CompiledQuery q = compile_query(wl_.negation_query(200), wl_.registry());
  const auto full = testutil::run_engine_keys(EngineKind::kOoo, q, arrivals_, opt);
  ASSERT_GT(full.size(), 0u);
  constexpr std::size_t kBatch = 16;
  for (const std::size_t cut_batches : {1ul, 5ul, 11ul}) {
    const std::size_t cut = std::min(cut_batches * kBatch, arrivals_.size());
    const auto sink1 = std::make_shared<CollectingSink>();
    const auto engine1 = make_test_engine(EngineKind::kOoo, q, sink1, opt);
    std::vector<const Event*> ptrs;
    std::size_t i = 0;
    while (i < cut) {
      const std::size_t n = std::min(kBatch, cut - i);
      ptrs.clear();
      for (std::size_t k = 0; k < n; ++k) ptrs.push_back(&arrivals_[i + k]);
      engine1->on_batch(std::span<const Event* const>(ptrs.data(), ptrs.size()));
      i += n;
    }
    const auto bytes = checkpoint_engine(*engine1);

    const auto sink2 = std::make_shared<CollectingSink>();
    const auto engine2 = make_test_engine(EngineKind::kOoo, q, sink2, opt);
    restore_engine(*engine2, bytes);
    EXPECT_EQ(checkpoint_engine(*engine2), bytes)
        << "cut=" << cut << ": restored engine re-snapshots to different bytes";
    while (i < arrivals_.size()) {
      const std::size_t n = std::min(kBatch, arrivals_.size() - i);
      ptrs.clear();
      for (std::size_t k = 0; k < n; ++k) ptrs.push_back(&arrivals_[i + k]);
      engine2->on_batch(std::span<const Event* const>(ptrs.data(), ptrs.size()));
      i += n;
    }
    engine2->finish();

    std::vector<MatchKey> all = sink1->sorted_keys();
    const auto tail = sink2->sorted_keys();
    all.insert(all.end(), tail.begin(), tail.end());
    std::sort(all.begin(), all.end());
    EXPECT_EQ(all, full) << "cut=" << cut;
  }
}

}  // namespace
}  // namespace oosp
