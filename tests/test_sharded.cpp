// Sharded runtime: SPSC queue, partition analysis, ordered merge,
// exactly-once delivery, and 1-vs-N shard output determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "common/spsc_queue.hpp"
#include "engine_test_util.hpp"
#include "runtime/session.hpp"
#include "stream/disorder.hpp"
#include "workload/synthetic.hpp"

namespace oosp {
namespace {

using testutil::make_abcd_registry;
using testutil::make_event;

// ---------------------------------------------------------------- SPSC

TEST(SpscQueue, CapacityIsPowerOfTwoMinusReservedSlot) {
  // One ring slot is reserved to tell full from empty.
  SpscQueue<int> q(3);
  EXPECT_EQ(q.capacity(), 3u);  // ring of 4
  SpscQueue<int> q2(64);
  EXPECT_EQ(q2.capacity(), 63u);  // ring of 64
}

TEST(SpscQueue, FifoOrderAndFullBehaviour) {
  SpscQueue<int> q(4);
  const int cap = static_cast<int>(q.capacity());
  for (int i = 0; i < cap; ++i) EXPECT_TRUE(q.try_push(int(i)));
  EXPECT_FALSE(q.try_push(99));  // full
  int v = -1;
  for (int i = 0; i < cap; ++i) {
    ASSERT_TRUE(q.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.try_pop(v));  // empty
  EXPECT_TRUE(q.empty());
}

TEST(SpscQueue, CrossThreadTransfersEverythingInOrder) {
  constexpr int kN = 50'000;
  SpscQueue<int> q(1024);
  std::thread consumer([&] {
    int expect = 0, v = 0;
    while (expect < kN) {
      if (q.try_pop(v)) {
        ASSERT_EQ(v, expect);
        ++expect;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (int i = 0; i < kN; ++i)
    while (!q.try_push(int(i))) std::this_thread::yield();
  consumer.join();
  EXPECT_TRUE(q.empty());
}

// ------------------------------------------------------ PartitionSpec

class PartitionTest : public ::testing::Test {
 protected:
  std::vector<ShardQuerySpec> specs(std::initializer_list<const char*> queries) {
    std::vector<ShardQuerySpec> out;
    for (const char* text : queries)
      out.push_back(ShardQuerySpec{compile_query_shared(text, reg_)});
    return out;
  }

  TypeRegistry reg_ = make_abcd_registry();
};

TEST_F(PartitionTest, KeyedQueriesShareSlotsAndUnusedTypesAreTickOnly) {
  const auto s = specs({"PATTERN SEQ(A a, B b) WHERE a.k == b.k WITHIN 50",
                        "PATTERN SEQ(B x, C y) WHERE x.k == y.k WITHIN 50"});
  std::string why;
  const auto spec = PartitionSpec::build(s, reg_, &why);
  ASSERT_TRUE(spec.has_value()) << why;
  EXPECT_EQ(spec->slot_for(reg_.lookup("A")), 0u);  // k is slot 0
  EXPECT_EQ(spec->slot_for(reg_.lookup("B")), 0u);
  EXPECT_EQ(spec->slot_for(reg_.lookup("C")), 0u);
  EXPECT_EQ(spec->slot_for(reg_.lookup("D")), PartitionSpec::kTickOnly);
}

TEST_F(PartitionTest, RejectsQueryWithoutFullKey) {
  const auto s = specs({"PATTERN SEQ(A a, B b) WITHIN 50"});
  std::string why;
  EXPECT_FALSE(PartitionSpec::build(s, reg_, &why).has_value());
  EXPECT_NE(why.find("equi-join"), std::string::npos) << why;
}

TEST_F(PartitionTest, RejectsConflictingKeyAttributes) {
  // A keys on slot 0 (k) for the first query, slot 1 (v) for the second:
  // no single hash routes A events correctly for both.
  const auto s = specs({"PATTERN SEQ(A a, B b) WHERE a.k == b.k WITHIN 50",
                        "PATTERN SEQ(A a, C c) WHERE a.v == c.v WITHIN 50"});
  std::string why;
  EXPECT_FALSE(PartitionSpec::build(s, reg_, &why).has_value());
  EXPECT_NE(why.find("conflicting"), std::string::npos) << why;
}

TEST_F(PartitionTest, RejectsNegatedStepOutsideKeyClass) {
  // The !B step carries no key: its events must be visible to every
  // key's candidates, so the query set cannot be sharded.
  const auto s =
      specs({"PATTERN SEQ(A a, !B b, C c) WHERE a.k == c.k WITHIN 100"});
  std::string why;
  EXPECT_FALSE(PartitionSpec::build(s, reg_, &why).has_value());
  EXPECT_NE(why.find("negated"), std::string::npos) << why;
}

TEST_F(PartitionTest, AcceptsKeyedNegation) {
  const auto s = specs(
      {"PATTERN SEQ(A a, !B b, C c) WHERE a.k == b.k AND a.k == c.k WITHIN 100"});
  std::string why;
  const auto spec = PartitionSpec::build(s, reg_, &why);
  ASSERT_TRUE(spec.has_value()) << why;
  EXPECT_EQ(spec->slot_for(reg_.lookup("B")), 0u);
}

// ------------------------------------------------------- ordered merge

TEST(MergeMatchStreams, CanonicalOrderAcrossStreams) {
  const TypeRegistry reg = make_abcd_registry();
  auto tagged = [&](QueryId q, EventId id, Timestamp ts) {
    Match m;
    m.events.push_back(make_event(reg, "A", id, ts));
    return TaggedMatch{q, std::move(m)};
  };
  std::vector<std::vector<TaggedMatch>> streams(2);
  streams[0].push_back(tagged(1, 5, 30));
  streams[0].push_back(tagged(0, 1, 10));  // emission order is not ts order
  streams[1].push_back(tagged(0, 2, 30));
  streams[1].push_back(tagged(0, 9, 20));

  const auto merged = merge_match_streams(std::move(streams));
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].match.events[0].id, 1u);  // ts 10
  EXPECT_EQ(merged[1].match.events[0].id, 9u);  // ts 20
  EXPECT_EQ(merged[2].match.events[0].id, 2u);  // ts 30, query 0
  EXPECT_EQ(merged[3].match.events[0].id, 5u);  // ts 30, query 1
}

// -------------------------------------------- exactly-once delivery

TEST(MultiQueryDelivery, TypeBothPositiveAndNegatedIsDeliveredOnce) {
  // Regression: B is a positive step of Q0 and a negated step of Q1. A
  // router that first delivers to all relevant queries and then
  // broadcasts clock ticks to negation holders would hand Q1 every B
  // twice — visible as inflated events_seen (and, with dedup enabled,
  // spurious events_deduped).
  const TypeRegistry reg = make_abcd_registry();
  const auto sink = std::make_shared<CollectingTaggedSink>();
  MultiQueryRunner runner(reg, sink);
  EngineOptions opt;
  opt.slack = 10;
  const QueryId q0 = runner.add_query(
      {"PATTERN SEQ(B a, C b) WHERE a.k == b.k WITHIN 100", EngineKind::kOoo, opt});
  const QueryId q1 = runner.add_query(
      {"PATTERN SEQ(A a, !B b, C c) WHERE a.k == b.k AND a.k == c.k WITHIN 100",
       EngineKind::kOoo, opt});

  std::size_t events = 0, b_or_c = 0;
  EventId id = 0;
  for (Timestamp t = 0; t < 300; t += 5) {
    const char* type = (t % 15 == 0) ? "A" : ((t % 10 == 0) ? "B" : "C");
    runner.on_event(make_event(reg, type, id++, t, /*k=*/t % 3));
    ++events;
    b_or_c += (type[0] != 'A');
  }
  runner.finish();

  // Q1 references every fed type; Q0 only B and C. Exactly-once routing
  // means events_seen equals the number of deliveries owed, no more.
  EXPECT_EQ(runner.stats(q1).events_seen, events);
  EXPECT_EQ(runner.stats(q0).events_seen, b_or_c);
  EXPECT_EQ(runner.stats(q0).events_deduped, 0u);
  EXPECT_EQ(runner.stats(q1).events_deduped, 0u);
  EXPECT_EQ(runner.events_seen(), events);
}

TEST(MultiQueryDelivery, IrrelevantTypeTicksNegationHoldersOnly) {
  const TypeRegistry reg = make_abcd_registry();
  const auto sink = std::make_shared<CollectingTaggedSink>();
  MultiQueryRunner runner(reg, sink);
  const QueryId q_pos = runner.add_query(
      {"PATTERN SEQ(A a, B b) WITHIN 100", EngineKind::kOoo, EngineOptions{}});
  const QueryId q_neg = runner.add_query(
      {"PATTERN SEQ(A a, !B b, C c) WITHIN 100", EngineKind::kOoo, EngineOptions{}});
  runner.on_event(make_event(reg, "D", 0, 10));  // relevant to neither pattern
  runner.finish();
  EXPECT_EQ(runner.stats(q_pos).events_seen, 0u);  // no tick needed, none sent
  EXPECT_EQ(runner.stats(q_neg).events_seen, 1u);  // clock tick for sealing
  EXPECT_EQ(runner.events_routed(), 0u);
}

// -------------------------------------------------- Session / sharding

std::vector<std::pair<QueryId, MatchKey>> run_session(const SyntheticWorkload& wl,
                                                      const std::vector<Event>& arrivals,
                                                      Timestamp slack,
                                                      std::size_t shards,
                                                      std::size_t* got_shards = nullptr) {
  const auto sink = std::make_shared<CollectingTaggedSink>();
  Session session(wl.registry(),
                  SessionConfig{}
                      .engine(EngineKind::kOoo)
                      .slack(slack)
                      .shards(shards)
                      .query(wl.seq_query(2, true, 400))
                      .query(wl.seq_query(3, true, 800)),
                  sink);
  for (const Event& e : arrivals) session.push(e);
  session.finish();
  if (got_shards) *got_shards = session.shard_count();
  std::vector<std::pair<QueryId, MatchKey>> out;
  for (const TaggedMatch& tm : sink->matches())
    out.emplace_back(tm.query, match_key(tm.match));
  return out;
}

TEST(SessionSharded, OneVsEightShardsIdenticalOrderedOutput) {
  SyntheticWorkload wl({.num_events = 20'000, .num_types = 4, .key_cardinality = 64,
                        .mean_gap = 5, .seed = 424});
  const auto ordered = wl.generate();
  DisorderInjector inj(LatencyModel::uniform(150), 0.25, 11);
  const auto arrivals = inj.deliver(ordered);
  const Timestamp slack = inj.slack_bound();

  std::size_t shards1 = 0, shards8 = 0;
  const auto base = run_session(wl, arrivals, slack, 1, &shards1);
  const auto par = run_session(wl, arrivals, slack, 8, &shards8);
  EXPECT_EQ(shards1, 1u);
  EXPECT_EQ(shards8, 8u);
  EXPECT_GT(base.size(), 100u) << "workload too sparse to be meaningful";

  // Not just the same multiset — the same SEQUENCE, element by element.
  ASSERT_EQ(par.size(), base.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    ASSERT_EQ(par[i].first, base[i].first) << "query id diverges at " << i;
    ASSERT_EQ(par[i].second, base[i].second) << "match diverges at " << i;
  }
}

TEST(SessionSharded, ShardedMatchesAreExact) {
  // Two types, both bound by the query: every event is engine-relevant,
  // so cross-shard counters must add back up to the input size.
  SyntheticWorkload wl({.num_events = 8'000, .num_types = 2, .key_cardinality = 32,
                        .mean_gap = 6, .seed = 99});
  const auto ordered = wl.generate();
  DisorderInjector inj(LatencyModel::uniform(120), 0.2, 3);
  const auto arrivals = inj.deliver(ordered);

  const auto sink = std::make_shared<CollectingTaggedSink>();
  Session session(wl.registry(),
                  SessionConfig{}
                      .engine(EngineKind::kOoo)
                      .slack(inj.slack_bound())
                      .shards(4)
                      .query(wl.seq_query(2, true, 300)),
                  sink);
  for (const Event& e : arrivals) session.push(e);
  session.finish();
  ASSERT_EQ(session.shard_count(), 4u) << session.shard_fallback_reason();

  const CompiledQuery& q = session.query(0);
  const VerifyResult v =
      verify_against_oracle(q, arrivals, [&] {
        std::vector<Match> ms;
        for (const TaggedMatch& tm : sink->matches()) ms.push_back(tm.match);
        return ms;
      }());
  EXPECT_TRUE(v.exact()) << "expected=" << v.expected << " produced=" << v.produced
                         << " missed=" << v.missed
                         << " false_positives=" << v.false_positives;

  // Every event hashes to exactly one shard (no broadcast types here),
  // so merged per-engine counters add back up to the input size.
  EXPECT_EQ(session.stats(0).events_seen, arrivals.size());
  EXPECT_EQ(session.events_seen(), arrivals.size());
}

TEST(SessionSharded, UnshardableQueryFallsBackToSingleShard) {
  const TypeRegistry reg = make_abcd_registry();
  const auto sink = std::make_shared<CollectingTaggedSink>();
  Session session(reg,
                  SessionConfig{}
                      .slack(10)
                      .shards(4)
                      .query("PATTERN SEQ(A a, B b) WITHIN 50"),  // no key
                  sink);
  EXPECT_EQ(session.shard_count(), 1u);
  EXPECT_FALSE(session.sharded());
  EXPECT_FALSE(session.shard_fallback_reason().empty());

  session.push(make_event(reg, "A", 0, 10));
  session.push(make_event(reg, "B", 1, 20));
  session.finish();
  EXPECT_EQ(sink->matches().size(), 1u);
}

TEST(SessionSharded, PerQueryEngineOverridesApply) {
  const TypeRegistry reg = make_abcd_registry();
  const auto sink = std::make_shared<CollectingTaggedSink>();
  EngineOptions tight;
  tight.slack = 0;
  Session session(reg,
                  SessionConfig{}
                      .engine(EngineKind::kOoo)
                      .slack(100)
                      .query("PATTERN SEQ(A a, B b) WHERE a.k == b.k WITHIN 50")
                      .query({"PATTERN SEQ(A a, C c) WHERE a.k == c.k WITHIN 50",
                              EngineKind::kInOrder, tight}),
                  sink);
  session.push(make_event(reg, "A", 0, 10, 1));
  session.push(make_event(reg, "B", 1, 20, 1));
  session.push(make_event(reg, "C", 2, 30, 1));
  session.finish();
  EXPECT_EQ(sink->keys_for(0).size(), 1u);
  EXPECT_EQ(sink->keys_for(1).size(), 1u);
  // The override carried its own slack: the in-order engine ran with 0.
  EXPECT_EQ(session.stats(1).effective_slack, 0);
  EXPECT_EQ(session.stats(0).effective_slack, 100);
}

// ------------------------------------------- backpressure regressions

// Regression: the worker used to publish `size_approx() + popped` as the
// queue-depth gauge AFTER its pop, while the producer concurrently
// refilled the freed slots — the sum could transiently exceed the ring's
// capacity. The gauge must only ever publish genuine occupancy readings.
TEST(SessionSharded, QueueDepthGaugeNeverExceedsCapacity) {
  const TypeRegistry reg = make_abcd_registry();
  const auto sink = std::make_shared<CollectingTaggedSink>();
  Session session(reg,
                  SessionConfig{}
                      .engine(EngineKind::kOoo)
                      .slack(10)
                      .shards(2)
                      .queue_capacity(64)  // ring of 64, 63 usable slots
                      .delay_hook([](const Event&) {
                        std::this_thread::sleep_for(std::chrono::microseconds(2));
                      })
                      .query("PATTERN SEQ(A a, B b) WHERE a.k == b.k WITHIN 50"),
                  sink);
  const std::int64_t capacity = 63;

  std::atomic<bool> stop{false};
  std::int64_t max_seen = 0;
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      max_seen = std::max(
          max_seen, session.metrics_snapshot().gauge("oosp_shard_queue_depth"));
    }
  });

  // Saturating batched pushes keep both rings at/near full while the
  // scraper races the worker's pop-side samples.
  std::vector<Event> batch;
  EventId id = 0;
  for (int round = 0; round < 200; ++round) {
    batch.clear();
    for (int i = 0; i < 128; ++i, ++id)
      batch.push_back(make_event(reg, (id % 2 == 0) ? "A" : "B", id,
                                 static_cast<Timestamp>(id),
                                 static_cast<std::int64_t>(id % 16)));
    session.push_batch(batch);
  }
  stop.store(true, std::memory_order_release);
  scraper.join();
  session.close();

  EXPECT_GT(max_seen, 0);  // the scraper actually observed occupancy
  EXPECT_LE(max_seen, capacity);
}

// Regression: push_batch's backpressure loop only checked the dead flag
// when a ring transaction pushed NOTHING — a worker killed mid-batch
// while its queue still had ROOM let the producer quietly keep filling a
// queue nobody would ever drain. The scalar path fails fast in that
// state; the batched path must too. The ring here is deliberately huge,
// so the old code's only dead check (the full-ring branch) never runs
// and only loop-top parity surfaces the death.
TEST(SessionSharded, DeadWorkerFailsFastFromPushBatchWithRoomToSpare) {
  const TypeRegistry reg = make_abcd_registry();
  const auto sink = std::make_shared<CollectingTaggedSink>();
  // Recovery off: the batched routing path is exercised and a worker
  // death must surface as the stored exception, not be supervised away.
  Session session(reg,
                  SessionConfig{}
                      .engine(EngineKind::kOoo)
                      .slack(10)
                      .shards(2)
                      .queue_capacity(8192)
                      .kill_hook([](const Event& e) { return e.id == 3; })
                      .query("PATTERN SEQ(A a, B b) WHERE a.k == b.k WITHIN 50"),
                  sink);

  auto batch_of = [&](EventId base, int n) {
    std::vector<Event> batch;
    for (int i = 0; i < n; ++i) {
      const EventId id = base + static_cast<EventId>(i);
      batch.push_back(make_event(reg, (id % 2 == 0) ? "A" : "B", id,
                                 static_cast<Timestamp>(id),
                                 static_cast<std::int64_t>(id % 16)));
    }
    return batch;
  };

  // Deliver the victim, then wait for the kill to land: the failure
  // counter is bumped by the dying worker right before it marks itself
  // dead, so this poll makes the test deterministic.
  session.push_batch(batch_of(0, 8));
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (session.metrics_snapshot().counter("oosp_shard_worker_failures_total") == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "worker never died";
    std::this_thread::yield();
  }

  // 16 distinct keys guarantee the dead shard is targeted; nearly all of
  // the 8191-slot ring is free, so only the loop-top dead check can
  // surface the error. A few rounds tolerate the tiny window between the
  // failure counter and the dead-flag publication.
  bool threw = false;
  EventId id = 8;
  try {
    for (int round = 0; round < 200; ++round) {
      session.push_batch(batch_of(id, 16));
      id += 16;
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  } catch (const WorkerKilled& e) {
    threw = true;
    EXPECT_EQ(e.victim(), 3u);
  }
  EXPECT_TRUE(threw) << "producer kept filling a dead worker's queue";
  // Orderly teardown after the surfaced failure.
  session.close();
}

}  // namespace
}  // namespace oosp
