// Crash recovery: checkpoint codec integrity, engine snapshot/restore
// round-trips for every engine kind, and sharded-session supervision —
// kill-at-every-index exactly-once replay, restart-exhaustion policies,
// idempotent/concurrent close(), and quarantine drain at close.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "engine_test_util.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/session.hpp"
#include "stream/disorder.hpp"
#include "stream/faults.hpp"
#include "workload/synthetic.hpp"

namespace oosp {
namespace {

using testutil::make_abcd_registry;
using testutil::make_event;
using testutil::make_test_engine;
using testutil::run_engine;

// ------------------------------------------------------------- codec

TEST(CheckpointCodec, RoundTripsPrimitivesAndComposites) {
  const TypeRegistry reg = make_abcd_registry();
  CheckpointWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.f64(3.25);
  w.boolean(true);
  w.str("hello");
  w.tag("sect");
  const Event ev = make_event(reg, "B", 7, 123, 9, -4);
  w.event(ev);
  Match m;
  m.events = {ev};
  m.detection_clock = 999;
  w.match(m);
  EngineStats s;
  s.events_seen = 5;
  s.matches_emitted = 2;
  s.effective_slack = -7;
  w.stats(s);
  const auto frame = std::move(w).finalize();

  CheckpointReader r(frame);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f64(), 3.25);
  EXPECT_TRUE(r.boolean());
  EXPECT_EQ(r.str(), "hello");
  r.expect_tag("sect");
  const Event back = r.event();
  EXPECT_EQ(back.type, ev.type);
  EXPECT_EQ(back.id, ev.id);
  EXPECT_EQ(back.ts, ev.ts);
  EXPECT_EQ(back.arrival, ev.arrival);
  ASSERT_EQ(back.attrs.size(), 2u);
  EXPECT_EQ(back.attrs[0].as_int(), 9);
  EXPECT_EQ(back.attrs[1].as_int(), -4);
  const Match mback = r.match();
  EXPECT_EQ(match_key(mback), match_key(m));
  EXPECT_EQ(mback.detection_clock, 999);
  const EngineStats sback = r.stats();
  EXPECT_EQ(sback.events_seen, 5u);
  EXPECT_EQ(sback.matches_emitted, 2u);
  EXPECT_EQ(sback.effective_slack, -7);
  r.expect_done();
}

TEST(CheckpointCodec, RejectsTamperedFrames) {
  CheckpointWriter w;
  w.str("payload payload payload");
  const auto frame = std::move(w).finalize();

  // Pristine frame parses.
  EXPECT_NO_THROW(CheckpointReader{frame});

  auto bad_magic = frame;
  bad_magic[0] ^= 0xFF;
  EXPECT_THROW(CheckpointReader{bad_magic}, CheckpointError);

  auto bad_version = frame;
  bad_version[4] = 0x7F;
  EXPECT_THROW(CheckpointReader{bad_version}, CheckpointError);

  auto truncated = frame;
  truncated.resize(truncated.size() - 3);
  EXPECT_THROW(CheckpointReader{truncated}, CheckpointError);

  std::vector<std::uint8_t> tiny(frame.begin(), frame.begin() + 10);
  EXPECT_THROW(CheckpointReader{tiny}, CheckpointError);

  auto corrupt = frame;
  corrupt[20] ^= 0x01;  // payload bit flip -> checksum mismatch
  EXPECT_THROW(CheckpointReader{corrupt}, CheckpointError);

  auto trailing = frame;
  trailing.push_back(0x00);  // declared length no longer matches
  EXPECT_THROW(CheckpointReader{trailing}, CheckpointError);
}

TEST(CheckpointCodec, StructuralGuardsCatchSchemaDrift) {
  {
    CheckpointWriter w;
    w.tag("aaaa");
    const auto frame = std::move(w).finalize();
    CheckpointReader r(frame);
    EXPECT_THROW(r.expect_tag("bbbb"), CheckpointError);
  }
  {
    // A corrupt element count implying more bytes than the frame holds
    // must throw instead of attempting a giant allocation.
    CheckpointWriter w;
    w.u64(1ull << 60);
    const auto frame = std::move(w).finalize();
    CheckpointReader r(frame);
    EXPECT_THROW(r.count(8), CheckpointError);
  }
  {
    // Unread trailing bytes are a reader/writer disagreement.
    CheckpointWriter w;
    w.u32(1);
    w.u32(2);
    const auto frame = std::move(w).finalize();
    CheckpointReader r(frame);
    r.u32();
    EXPECT_THROW(r.expect_done(), CheckpointError);
  }
}

// --------------------------------------- engine snapshot round trips

const EngineKind kAllKinds[] = {EngineKind::kInOrder, EngineKind::kNfa,
                                EngineKind::kOoo, EngineKind::kKSlackInOrder,
                                EngineKind::kKSlackNfa};

std::vector<MatchKey> sorted_keys(const std::vector<Match>& ms) {
  std::vector<MatchKey> keys;
  keys.reserve(ms.size());
  for (const Match& m : ms) keys.push_back(match_key(m));
  std::sort(keys.begin(), keys.end());
  return keys;
}

// Feeds arrivals[0, cut), snapshots, restores into a FRESH engine,
// verifies the restored engine re-snapshots to identical bytes, then
// feeds the suffix and returns the union of both engines' matches.
std::vector<MatchKey> interrupted_run(EngineKind kind, const CompiledQuery& q,
                                      const std::vector<Event>& arrivals,
                                      std::size_t cut, const EngineOptions& options) {
  const auto sink1 = std::make_shared<CollectingSink>();
  const auto engine1 = make_test_engine(kind, q, sink1, options);
  for (std::size_t i = 0; i < cut; ++i) engine1->on_event(arrivals[i]);
  const auto bytes = checkpoint_engine(*engine1);

  const auto sink2 = std::make_shared<CollectingSink>();
  const auto engine2 = make_test_engine(kind, q, sink2, options);
  restore_engine(*engine2, bytes);
  EXPECT_EQ(checkpoint_engine(*engine2), bytes)
      << to_string(kind) << " cut=" << cut
      << ": restored engine re-snapshots to different bytes";
  EXPECT_EQ(engine2->stats_snapshot().events_seen,
            engine1->stats_snapshot().events_seen);

  for (std::size_t i = cut; i < arrivals.size(); ++i) engine2->on_event(arrivals[i]);
  engine2->finish();

  std::vector<Match> all = sink1->matches();
  for (const Match& m : sink2->matches()) all.push_back(m);
  return sorted_keys(all);
}

struct SweepCase {
  const char* label;
  std::string query;
  EngineOptions options;
};

class SnapshotSweep : public ::testing::Test {
 protected:
  SnapshotSweep()
      : wl_({.num_events = 4'000, .num_types = 3, .key_cardinality = 24,
             .mean_gap = 5, .seed = 7}) {
    const auto ordered = wl_.generate();
    DisorderInjector inj(LatencyModel::uniform(80), 0.3, 21);
    arrivals_ = inj.deliver(ordered);
    slack_ = inj.slack_bound();
  }

  void run_case(EngineKind kind, const SweepCase& c) {
    const CompiledQuery q = compile_query(c.query, wl_.registry());
    const auto full = sorted_keys(run_engine(kind, q, arrivals_, c.options));
    const std::size_t n = arrivals_.size();
    for (const std::size_t cut : {std::size_t{0}, std::size_t{1}, n / 3, n / 2, n - 1, n}) {
      const auto pieced = interrupted_run(kind, q, arrivals_, cut, c.options);
      ASSERT_EQ(pieced, full) << to_string(kind) << " " << c.label << " cut=" << cut
                              << ": snapshot/restore changed the match set";
    }
  }

  SyntheticWorkload wl_;
  std::vector<Event> arrivals_;
  Timestamp slack_ = 0;
};

TEST_F(SnapshotSweep, KeyedSequenceAllEngines) {
  for (const EngineKind kind : kAllKinds) {
    EngineOptions opt;
    opt.slack = slack_;
    run_case(kind, {"keyed-seq", wl_.seq_query(2, true, 200), opt});
  }
}

TEST_F(SnapshotSweep, UnkeyedSequenceAllEngines) {
  for (const EngineKind kind : kAllKinds) {
    EngineOptions opt;
    opt.slack = slack_;
    run_case(kind, {"unkeyed-seq", wl_.seq_query(2, false, 60), opt});
  }
}

TEST_F(SnapshotSweep, NegationAllEngines) {
  for (const EngineKind kind : kAllKinds) {
    EngineOptions opt;
    opt.slack = slack_;
    run_case(kind, {"negation", wl_.negation_query(200), opt});
  }
}

TEST_F(SnapshotSweep, AggressiveNegationRetractionsSurviveRestore) {
  EngineOptions opt;
  opt.slack = slack_;
  opt.aggressive_negation = true;
  run_case(EngineKind::kOoo, {"aggressive-negation", wl_.negation_query(200), opt});
}

TEST_F(SnapshotSweep, RobustnessOptionsSurviveRestore) {
  // Adaptive slack + dedup + quarantine + cached RIP: the state carried
  // by the estimator, admission control, and RIP cache all rides along.
  for (const EngineKind kind : {EngineKind::kOoo, EngineKind::kKSlackInOrder}) {
    EngineOptions opt;
    opt.slack = slack_ / 2;
    opt.adaptive_slack = true;
    opt.dedup_by_id = true;
    opt.late_policy = LatePolicy::kQuarantine;
    opt.cache_rip = true;
    run_case(kind, {"robust-options", wl_.seq_query(2, true, 200), opt});
  }
}

TEST_F(SnapshotSweep, QuarantineContentsSurviveRestore) {
  // Quarantined events parked before the snapshot must drain from the
  // restored engine exactly as they would have from the original.
  EngineOptions opt;
  opt.slack = 0;  // everything late is quarantined
  opt.late_policy = LatePolicy::kQuarantine;
  const CompiledQuery q = compile_query(wl_.seq_query(2, true, 200), wl_.registry());

  const auto sink1 = std::make_shared<CollectingSink>();
  const auto engine1 = make_test_engine(EngineKind::kOoo, q, sink1, opt);
  const std::size_t cut = arrivals_.size() / 2;
  for (std::size_t i = 0; i < cut; ++i) engine1->on_event(arrivals_[i]);
  const auto bytes = checkpoint_engine(*engine1);
  const auto expected = engine1->drain_quarantine();
  ASSERT_GT(expected.size(), 0u) << "workload produced no late events";

  const auto sink2 = std::make_shared<CollectingSink>();
  const auto engine2 = make_test_engine(EngineKind::kOoo, q, sink2, opt);
  restore_engine(*engine2, bytes);
  const auto restored = engine2->drain_quarantine();
  ASSERT_EQ(restored.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(restored[i].id, expected[i].id);
}

TEST(SnapshotGuards, KindQueryAndPolicyMismatchesAreRejected) {
  const TypeRegistry reg = make_abcd_registry();
  const CompiledQuery q =
      compile_query("PATTERN SEQ(A a, B b) WHERE a.k == b.k WITHIN 50", reg);
  EngineOptions opt;
  opt.slack = 10;
  const auto sink = std::make_shared<CollectingSink>();
  const auto engine = make_test_engine(EngineKind::kOoo, q, sink, opt);
  engine->on_event(make_event(reg, "A", 0, 10, 1));
  const auto bytes = checkpoint_engine(*engine);

  {  // different engine kind
    const auto other = make_test_engine(EngineKind::kNfa, q, sink, opt);
    EXPECT_THROW(restore_engine(*other, bytes), CheckpointError);
  }
  {  // different query
    const CompiledQuery q2 =
        compile_query("PATTERN SEQ(A a, C c) WHERE a.k == c.k WITHIN 50", reg);
    const auto other = make_test_engine(EngineKind::kOoo, q2, sink, opt);
    EXPECT_THROW(restore_engine(*other, bytes), CheckpointError);
  }
  {  // different negation policy variant (name encodes it)
    EngineOptions aggressive = opt;
    aggressive.aggressive_negation = true;
    const CompiledQuery qn =
        compile_query("PATTERN SEQ(A a, !B b, C c) WHERE a.k == b.k AND a.k == c.k"
                      " WITHIN 50", reg);
    const auto conservative = make_test_engine(EngineKind::kOoo, qn, sink, opt);
    const auto nb = checkpoint_engine(*conservative);
    const auto other = make_test_engine(EngineKind::kOoo, qn, sink, aggressive);
    EXPECT_THROW(restore_engine(*other, nb), CheckpointError);
  }
}

// --------------------------------------------- session supervision

struct RecoveryRun {
  std::vector<std::pair<QueryId, MatchKey>> output;  // exact delivery order
  std::size_t restarts = 0;
  std::uint64_t replayed = 0;
  std::size_t dropped_shards = 0;
  std::size_t shard_count = 0;
};

RecoveryRun run_recovery_session(const SyntheticWorkload& wl,
                                 const std::vector<Event>& arrivals, Timestamp slack,
                                 WorkerKillHook hook,
                                 RestartPolicy policy = RestartPolicy::kFail,
                                 std::size_t max_restarts = 5) {
  const auto sink = std::make_shared<CollectingTaggedSink>();
  SessionConfig cfg;
  cfg.engine(EngineKind::kOoo)
      .slack(slack)
      .shards(3)
      .checkpoint_every(7)  // small cadence: most kills land mid-interval
      .max_restarts(max_restarts)
      .restart_backoff(std::chrono::milliseconds(0), std::chrono::milliseconds(0))
      .on_restart_exhausted(policy)
      .query(wl.seq_query(2, true, 200));
  if (hook) cfg.kill_hook(std::move(hook));
  Session session(wl.registry(), cfg, sink);
  for (const Event& e : arrivals) session.push(e);
  session.close();

  RecoveryRun run;
  run.shard_count = session.shard_count();
  run.restarts = session.restarts();
  run.replayed = session.replayed_events();
  run.dropped_shards = session.dropped_shards();
  for (const TaggedMatch& tm : sink->matches())
    run.output.emplace_back(tm.query, match_key(tm.match));
  return run;
}

class SessionRecovery : public ::testing::Test {
 protected:
  SessionRecovery()
      : wl_({.num_events = 250, .num_types = 2, .key_cardinality = 12,
             .mean_gap = 6, .seed = 33}) {
    const auto ordered = wl_.generate();
    DisorderInjector inj(LatencyModel::uniform(60), 0.25, 5);
    arrivals_ = inj.deliver(ordered);
    slack_ = inj.slack_bound();
    oracle_ = run_recovery_session(wl_, arrivals_, slack_, {});
  }

  SyntheticWorkload wl_;
  std::vector<Event> arrivals_;
  Timestamp slack_ = 0;
  RecoveryRun oracle_;
};

TEST_F(SessionRecovery, KillAtEveryIndexYieldsBitIdenticalExactlyOnceOutput) {
  ASSERT_EQ(oracle_.shard_count, 3u);
  ASSERT_EQ(oracle_.restarts, 0u);
  ASSERT_GT(oracle_.output.size(), 20u) << "workload too sparse to be meaningful";

  for (std::size_t i = 0; i < arrivals_.size(); ++i) {
    WorkerKillFault fault({arrivals_[i].id});
    const RecoveryRun run =
        run_recovery_session(wl_, arrivals_, slack_, fault.hook());
    ASSERT_GE(run.restarts, 1u) << "kill at index " << i << " never fired";
    ASSERT_GE(run.replayed, 1u) << "victim " << i << " was not replayed";
    ASSERT_EQ(run.dropped_shards, 0u);
    // Not just the same multiset: the same SEQUENCE, element by element —
    // exactly-once, no duplicates, no holes, canonical order preserved.
    ASSERT_EQ(run.output, oracle_.output)
        << "output diverges after killing the worker at event index " << i;
    ASSERT_EQ(fault.victims_remaining(), 0u);
  }
}

TEST_F(SessionRecovery, MultipleKillsAcrossShardsStillExactlyOnce) {
  // Seeded fraction mode: ~8% of events are victims, spread over every
  // shard, with a budget large enough to absorb them all.
  WorkerKillFault fault(0.08, 99);
  auto stream = arrivals_;
  stream = fault.apply(std::move(stream));
  ASSERT_GT(fault.victims_remaining(), 3u);
  const RecoveryRun run = run_recovery_session(wl_, stream, slack_, fault.hook(),
                                               RestartPolicy::kFail,
                                               /*max_restarts=*/100);
  EXPECT_EQ(run.output, oracle_.output);
  EXPECT_GE(run.restarts, fault.victims_remaining());
  EXPECT_EQ(fault.victims_remaining(), 0u);
}

TEST_F(SessionRecovery, ExhaustedBudgetFailPolicyRethrows) {
  // Kill on every event of one key: each respawn survives replay (the
  // hook is not consulted there) and dies on the next fresh event of
  // that key, burning exactly one restart each time.
  const std::int64_t poison_key = 3;
  const WorkerKillHook always = [poison_key](const Event& e) {
    return !e.attrs.empty() && e.attrs[0] == Value(poison_key);
  };
  EXPECT_THROW(
      run_recovery_session(wl_, arrivals_, slack_, always, RestartPolicy::kFail,
                           /*max_restarts=*/2),
      WorkerKilled);
}

TEST_F(SessionRecovery, ExhaustedBudgetDegradePolicyCompletesWithAccounting) {
  const std::int64_t poison_key = 3;
  const WorkerKillHook always = [poison_key](const Event& e) {
    return !e.attrs.empty() && e.attrs[0] == Value(poison_key);
  };
  const RecoveryRun run =
      run_recovery_session(wl_, arrivals_, slack_, always,
                           RestartPolicy::kDegradeDropShard, /*max_restarts=*/2);
  EXPECT_EQ(run.dropped_shards, 1u);
  EXPECT_EQ(run.restarts, 2u);
  // The run completed; the surviving shards' output is a subsequence of
  // the oracle (the dropped shard's post-checkpoint matches are lost).
  ASSERT_LE(run.output.size(), oracle_.output.size());
  std::size_t oi = 0;
  for (const auto& got : run.output) {
    while (oi < oracle_.output.size() && oracle_.output[oi] != got) ++oi;
    ASSERT_LT(oi, oracle_.output.size())
        << "degraded run emitted a match absent from the fault-free oracle";
    ++oi;
  }
}

TEST(SessionClose, IdempotentAndConcurrentWithReporter) {
  SyntheticWorkload wl({.num_events = 2'000, .num_types = 2, .key_cardinality = 16,
                        .mean_gap = 5, .seed = 17});
  const auto arrivals = wl.generate();
  const auto sink = std::make_shared<CollectingTaggedSink>();
  std::atomic<int> reports{0};
  Session session(wl.registry(),
                  SessionConfig{}
                      .engine(EngineKind::kOoo)
                      .slack(50)
                      .shards(2)
                      .checkpoint_every(64)
                      .report_every(std::chrono::milliseconds(1))
                      .report_to([&](const std::string&) { ++reports; })
                      .query(wl.seq_query(2, true, 100)),
                  sink);
  for (const Event& e : arrivals) session.push(e);

  // Racing closes: exactly one performs the shutdown, the others block
  // until it is done; the match stream is delivered exactly once.
  std::thread t1([&] { session.close(); });
  std::thread t2([&] { session.close(); });
  session.close();
  t1.join();
  t2.join();
  session.close();   // idempotent afterwards too
  session.finish();  // and so is finish()

  const std::size_t delivered = sink->matches().size();
  EXPECT_GT(delivered, 0u);
  const auto sink2 = std::make_shared<CollectingTaggedSink>();
  {
    Session clean(wl.registry(),
                  SessionConfig{}
                      .engine(EngineKind::kOoo)
                      .slack(50)
                      .query(wl.seq_query(2, true, 100)),
                  sink2);
    for (const Event& e : arrivals) clean.push(e);
    clean.close();
  }
  EXPECT_EQ(delivered, sink2->matches().size()) << "double close duplicated output";
}

TEST(SessionQuarantine, DrainedAtCloseAndCountedInMetrics) {
  SyntheticWorkload wl({.num_events = 3'000, .num_types = 2, .key_cardinality = 16,
                        .mean_gap = 5, .seed = 29});
  const auto ordered = wl.generate();
  DisorderInjector inj(LatencyModel::uniform(100), 0.3, 13);
  const auto arrivals = inj.deliver(ordered);

  for (const std::size_t shards : {std::size_t{1}, std::size_t{3}}) {
    EngineOptions opt;
    opt.slack = 5;  // far below the true bound: plenty of late events
    opt.late_policy = LatePolicy::kQuarantine;
    const auto sink = std::make_shared<CollectingTaggedSink>();
    Session session(wl.registry(),
                    SessionConfig{}
                        .engine(EngineKind::kOoo)
                        .options(opt)
                        .shards(shards)
                        .checkpoint_every(shards > 1 ? 128 : 0)
                        .query(wl.seq_query(2, true, 100)),
                    sink);
    for (const Event& e : arrivals) session.push(e);
    session.close();

    const auto& quarantined = session.quarantined();
    ASSERT_GT(quarantined.size(), 0u) << "shards=" << shards;
    EXPECT_EQ(quarantined.size(), session.total_stats().events_quarantined)
        << "shards=" << shards;
    EXPECT_EQ(session.metrics_snapshot().counter(
                  "oosp_session_quarantine_drained_total"),
              quarantined.size())
        << "shards=" << shards;
    // Canonical (query, ts, id) order: identical for every shard count.
    for (std::size_t i = 1; i < quarantined.size(); ++i) {
      const auto& a = quarantined[i - 1];
      const auto& b = quarantined[i];
      EXPECT_LE(a.first, b.first);
      if (a.first == b.first) {
        EXPECT_LE(a.second.ts, b.second.ts);
        if (a.second.ts == b.second.ts) EXPECT_LT(a.second.id, b.second.id);
      }
    }
  }
}

TEST(SessionRecoveryMetrics, CheckpointAndRecoveryInstrumentsPopulate) {
  SyntheticWorkload wl({.num_events = 1'500, .num_types = 2, .key_cardinality = 8,
                        .mean_gap = 5, .seed = 41});
  const auto arrivals = wl.generate();
  WorkerKillFault fault({arrivals[700].id});
  const auto sink = std::make_shared<CollectingTaggedSink>();
  Session session(wl.registry(),
                  SessionConfig{}
                      .engine(EngineKind::kOoo)
                      .slack(30)
                      .shards(2)
                      .checkpoint_every(50)
                      .restart_backoff(std::chrono::milliseconds(0),
                                       std::chrono::milliseconds(0))
                      .kill_hook(fault.hook())
                      .query(wl.seq_query(2, true, 100)),
                  sink);
  for (const Event& e : arrivals) session.push(e);
  session.close();

  const MetricsSnapshot snap = session.metrics_snapshot();
  EXPECT_GT(snap.counter("oosp_shard_checkpoints_total"), 0u);
  EXPECT_GT(snap.gauge("oosp_shard_checkpoint_bytes"), 0);
  EXPECT_EQ(snap.counter("oosp_shard_restarts_total"), 1u);
  EXPECT_GE(snap.counter("oosp_shard_replayed_events_total"), 1u);
  EXPECT_EQ(snap.counter("oosp_shard_dropped_shards_total"), 0u);
  const HistogramData* recovery = snap.histogram("oosp_shard_recovery_duration_us");
  ASSERT_NE(recovery, nullptr);
  EXPECT_EQ(recovery->count, 1u);
  EXPECT_EQ(session.restarts(), 1u);
  EXPECT_GE(session.replayed_events(), 1u);
}

}  // namespace
}  // namespace oosp
