// Property tests: every correctness-preserving engine configuration must
// reproduce the oracle's result set exactly, across a grid of queries ×
// disorder levels × engine options. This is the suite that pins the core
// claim of the reproduction: the native OOO engine is exact under any
// bounded disorder, with every optimization enabled or disabled.
#include <gtest/gtest.h>

#include <sstream>

#include "engine_test_util.hpp"
#include "stream/disorder.hpp"
#include "workload/synthetic.hpp"

namespace oosp {
namespace {

using testutil::expect_exact;

struct PropertyCase {
  std::string label;
  std::string query;       // built against SyntheticWorkload's registry
  double ooo_fraction;
  LatencyKind latency;
  Timestamp max_delay;
  std::size_t events;
};

std::ostream& operator<<(std::ostream& os, const PropertyCase& c) { return os << c.label; }

class EngineProperty : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(EngineProperty, CorrectEnginesAreExact) {
  const PropertyCase& pc = GetParam();
  SyntheticWorkload wl({.num_events = pc.events,
                        .num_types = 4,
                        .key_cardinality = 8,
                        .mean_gap = 4,
                        .seed = 1234});
  const auto ordered = wl.generate();
  LatencyModel model;
  switch (pc.latency) {
    case LatencyKind::kUniform: model = LatencyModel::uniform(pc.max_delay); break;
    case LatencyKind::kPareto: model = LatencyModel::pareto(2.0, 1.4, pc.max_delay); break;
    case LatencyKind::kFixed: model = LatencyModel::fixed(pc.max_delay); break;
    case LatencyKind::kNormal:
      model = LatencyModel::normal(pc.max_delay / 2.0, pc.max_delay / 4.0, pc.max_delay);
      break;
    case LatencyKind::kNone: model = LatencyModel::none(); break;
  }
  DisorderInjector inj(model, pc.ooo_fraction, 555);
  const auto arrivals = inj.deliver(ordered);
  const CompiledQuery q = compile_query(pc.query, wl.registry());

  // Native OOO engine under every option combination.
  for (const bool partition : {true, false}) {
    for (const bool rip : {true, false}) {
      for (const std::size_t purge : {std::size_t{1}, std::size_t{32}, std::size_t{0}}) {
        EngineOptions opt;
        opt.slack = inj.slack_bound();
        opt.partition_by_key = partition;
        opt.cache_rip = rip;
        opt.purge_period = purge;
        std::ostringstream ctx;
        ctx << "ooo partition=" << partition << " rip=" << rip << " purge=" << purge;
        expect_exact(EngineKind::kOoo, q, arrivals, opt, ctx.str().c_str());
      }
    }
  }
  // Conventional buffered fix.
  EngineOptions bopt;
  bopt.slack = inj.slack_bound();
  expect_exact(EngineKind::kKSlackInOrder, q, arrivals, bopt, "kslack+inorder");

  // Aggressive policy: the NET result (emissions minus retractions) must
  // equal the oracle set.
  {
    EngineOptions aopt = bopt;
    aopt.aggressive_negation = true;
    const auto sink = std::make_shared<CollectingSink>();
    const auto engine = testutil::make_test_engine(EngineKind::kOoo, q, sink, aopt);
    for (const Event& e : arrivals) engine->on_event(e);
    engine->finish();
    EXPECT_EQ(sink->net_sorted_keys(), oracle_keys(q, arrivals)) << "aggressive net";
  }

  // Plain in-order engines are exact only when the stream stayed ordered.
  if (pc.ooo_fraction == 0.0) {
    expect_exact(EngineKind::kInOrder, q, arrivals, {}, "inorder on ordered");
    expect_exact(EngineKind::kNfa, q, arrivals, {}, "nfa on ordered");
  }
}

std::vector<PropertyCase> make_cases() {
  SyntheticWorkload proto({.num_types = 4});
  const std::string q2 = proto.seq_query(2, false, 60);
  const std::string q3k = proto.seq_query(3, true, 120);
  const std::string q4k = proto.seq_query(4, true, 200);
  const std::string qneg = proto.negation_query(120);
  const std::string qval = proto.seq_query(3, true, 120, 300);
  std::vector<PropertyCase> cases;
  struct Dis {
    const char* tag;
    double frac;
    LatencyKind kind;
    Timestamp delay;
  };
  const Dis levels[] = {
      {"ordered", 0.0, LatencyKind::kNone, 0},
      {"light_uniform", 0.10, LatencyKind::kUniform, 40},
      {"heavy_uniform", 0.50, LatencyKind::kUniform, 120},
      {"pareto_tail", 0.25, LatencyKind::kPareto, 200},
      {"all_fixed", 1.0, LatencyKind::kFixed, 30},
      {"normal", 0.30, LatencyKind::kNormal, 80},
  };
  const std::pair<const char*, const std::string*> queries[] = {
      {"pair", &q2}, {"keyed3", &q3k}, {"keyed4", &q4k}, {"negation", &qneg},
      {"filtered3", &qval}};
  for (const auto& [qtag, query] : queries) {
    for (const auto& d : levels) {
      cases.push_back(PropertyCase{std::string(qtag) + "_" + d.tag, *query, d.frac,
                                   d.kind, d.delay, 900});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, EngineProperty, ::testing::ValuesIn(make_cases()),
                         [](const ::testing::TestParamInfo<PropertyCase>& info) {
                           return info.param.label;
                         });

}  // namespace
}  // namespace oosp
