// Slack-violation safety net tests: the three late policies, quarantine
// bounds and draining, schema validation, duplicate suppression, the
// adaptive K-slack estimator, and the accounting invariants tying them
// together (every contract violation lands in exactly one bucket).
#include <gtest/gtest.h>

#include <optional>
#include <utility>
#include <vector>

#include "engine_test_util.hpp"
#include "runtime/driver.hpp"
#include "runtime/pipeline.hpp"

namespace oosp {
namespace {

using testutil::make_abcd_registry;
using testutil::make_event;

// --- SlackEstimator unit tests ----------------------------------------

TEST(SlackEstimator, FastGrowthCoversExcursionImmediately) {
  SlackEstimatorConfig cfg;
  cfg.headroom = 2.0;
  cfg.min_slack = 0;
  SlackEstimator est(cfg, 4);
  EXPECT_EQ(est.estimate(), 4);
  est.observe(10);  // leading edge of a spike: no refresh wait
  EXPECT_EQ(est.estimate(), 20);
}

TEST(SlackEstimator, RefreshRelaxesAfterCalm) {
  SlackEstimatorConfig cfg;
  cfg.window = 8;
  cfg.refresh_period = 4;
  cfg.headroom = 1.0;
  cfg.quantile = 0.5;
  cfg.min_slack = 0;
  SlackEstimator est(cfg, 0);
  est.observe(100);
  EXPECT_EQ(est.estimate(), 100);
  for (int i = 0; i < 8; ++i) est.observe(0);
  EXPECT_EQ(est.estimate(), 0);  // the spike left the window's median
}

TEST(SlackEstimator, ClampsToConfiguredRange) {
  SlackEstimatorConfig cfg;
  cfg.min_slack = 5;
  cfg.max_slack = 50;
  cfg.headroom = 10.0;
  SlackEstimator est(cfg, 0);
  EXPECT_EQ(est.estimate(), 5);
  est.observe(100);
  EXPECT_EQ(est.estimate(), 50);
}

TEST(SlackEstimator, SampleWindowIsBounded) {
  SlackEstimatorConfig cfg;
  cfg.window = 4;
  SlackEstimator est(cfg, 0);
  for (int i = 0; i < 10; ++i) est.observe(i);
  EXPECT_EQ(est.samples(), 4u);
}

TEST(LatePolicyNames, RoundTrip) {
  EXPECT_EQ(to_string(LatePolicy::kAdmit), "admit");
  EXPECT_EQ(to_string(LatePolicy::kDrop), "drop");
  EXPECT_EQ(to_string(LatePolicy::kQuarantine), "quarantine");
}

// --- late policies -----------------------------------------------------

class RobustnessTest : public ::testing::Test {
 protected:
  RobustnessTest() : reg_(make_abcd_registry()) {}
  Event ev(const char* t, EventId id, Timestamp ts, std::int64_t k = 0) {
    return make_event(reg_, t, id, ts, k);
  }
  EngineOptions late(LatePolicy policy, Timestamp k = 5) {
    EngineOptions o;
    o.slack = k;
    o.late_policy = policy;
    o.purge_period = 0;  // keep state alive so kAdmit can still match
    return o;
  }
  TypeRegistry reg_;
};

// Shared scenario: K = 5, clock driven to 116, then B@105 arrives with
// lateness 11 — a contract violation whichever engine observes it.
TEST_F(RobustnessTest, AdmitPolicyProcessesViolatorBestEffort) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 10", reg_);
  const auto sink = std::make_shared<CollectingSink>();
  const auto engine = testutil::make_test_engine(EngineKind::kOoo, q, sink, late(LatePolicy::kAdmit));
  engine->on_event(ev("A", 0, 100));
  engine->on_event(ev("D", 1, 116));
  engine->on_event(ev("B", 2, 105));
  engine->finish();
  const EngineStats s = engine->stats_snapshot();
  EXPECT_EQ(s.contract_violations, 1u);
  EXPECT_EQ(s.events_dropped_late, 0u);
  EXPECT_EQ(s.events_quarantined, 0u);
  EXPECT_EQ(sink->size(), 1u);  // state survived (no purge), so it matched
}

TEST_F(RobustnessTest, DropPolicyDiscardsViolatorWithAccounting) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 10", reg_);
  const auto sink = std::make_shared<CollectingSink>();
  const auto engine = testutil::make_test_engine(EngineKind::kOoo, q, sink, late(LatePolicy::kDrop));
  engine->on_event(ev("A", 0, 100));
  engine->on_event(ev("D", 1, 116));
  engine->on_event(ev("B", 2, 105));
  engine->finish();
  const EngineStats s = engine->stats_snapshot();
  EXPECT_EQ(s.contract_violations, 1u);
  EXPECT_EQ(s.events_dropped_late, 1u);
  EXPECT_EQ(sink->size(), 0u);
  EXPECT_TRUE(engine->drain_quarantine().empty());
}

TEST_F(RobustnessTest, QuarantinePolicyParksViolatorForDrain) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 10", reg_);
  const auto sink = std::make_shared<CollectingSink>();
  const auto engine =
      testutil::make_test_engine(EngineKind::kOoo, q, sink, late(LatePolicy::kQuarantine));
  engine->on_event(ev("A", 0, 100));
  engine->on_event(ev("D", 1, 116));
  engine->on_event(ev("B", 2, 105));
  engine->finish();
  const EngineStats s = engine->stats_snapshot();
  EXPECT_EQ(s.contract_violations, 1u);
  EXPECT_EQ(s.events_quarantined, 1u);
  EXPECT_EQ(s.events_dropped_late, 0u);
  EXPECT_EQ(sink->size(), 0u);
  const auto parked = engine->drain_quarantine();
  ASSERT_EQ(parked.size(), 1u);
  EXPECT_EQ(parked[0].id, 2u);
  EXPECT_TRUE(engine->drain_quarantine().empty());  // drain is destructive
}

TEST_F(RobustnessTest, QuarantineOverflowFallsBackToDropAccounting) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 10", reg_);
  EngineOptions opt = late(LatePolicy::kQuarantine);
  opt.quarantine_capacity = 2;
  const auto sink = std::make_shared<CollectingSink>();
  const auto engine = testutil::make_test_engine(EngineKind::kOoo, q, sink, opt);
  engine->on_event(ev("A", 0, 100));
  engine->on_event(ev("D", 1, 120));  // seal watermark passes 107
  engine->on_event(ev("B", 2, 105));
  engine->on_event(ev("B", 3, 106));
  engine->on_event(ev("B", 4, 107));  // over capacity: dropped, not parked
  engine->finish();
  const EngineStats s = engine->stats_snapshot();
  EXPECT_EQ(s.contract_violations, 3u);
  EXPECT_EQ(s.events_quarantined, 2u);
  EXPECT_EQ(s.events_dropped_late, 1u);
  // Invariant: every violation lands in exactly one bucket (or, under
  // kAdmit, in none).
  EXPECT_EQ(s.contract_violations, s.events_quarantined + s.events_dropped_late);
  const auto parked = engine->drain_quarantine();
  ASSERT_EQ(parked.size(), 2u);  // arrival order
  EXPECT_EQ(parked[0].id, 2u);
  EXPECT_EQ(parked[1].id, 3u);
}

TEST_F(RobustnessTest, KSlackBufferAppliesTheSamePolicies) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 10", reg_);
  // Clock 120 forces the release watermark to 115; B@105 then arrives
  // below it — it can only reach the inner engine out of order.
  const std::vector<Event> arrivals = {ev("A", 0, 100), ev("D", 1, 120),
                                       ev("B", 2, 105)};

  for (const LatePolicy policy :
       {LatePolicy::kAdmit, LatePolicy::kDrop, LatePolicy::kQuarantine}) {
    const auto sink = std::make_shared<CollectingSink>();
    const auto engine =
        testutil::make_test_engine(EngineKind::kKSlackInOrder, q, sink, late(policy));
    for (const Event& e : arrivals) engine->on_event(e);
    engine->finish();
    const EngineStats s = engine->stats_snapshot();
    EXPECT_EQ(s.contract_violations, 1u) << to_string(policy);
    switch (policy) {
      case LatePolicy::kAdmit:
        // Best effort worked out here: the violator drained from the
        // buffer behind A@100, so the inner engine still saw ts order.
        EXPECT_EQ(sink->size(), 1u);
        break;
      case LatePolicy::kDrop:
        EXPECT_EQ(s.events_dropped_late, 1u);
        EXPECT_EQ(sink->size(), 0u);
        break;
      case LatePolicy::kQuarantine:
        EXPECT_EQ(s.events_quarantined, 1u);
        EXPECT_EQ(engine->drain_quarantine().size(), 1u);
        EXPECT_EQ(sink->size(), 0u);
        break;
    }
  }
}

TEST_F(RobustnessTest, DriverCollectsQuarantineBeforeEngineTeardown) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 10", reg_);
  const std::vector<Event> arrivals = {ev("A", 0, 100), ev("D", 1, 116),
                                       ev("B", 2, 105)};
  DriverConfig cfg;
  cfg.kind = EngineKind::kOoo;
  cfg.options = late(LatePolicy::kQuarantine);
  cfg.collect_quarantine = true;
  const RunResult r = run_stream(q, arrivals, cfg);
  EXPECT_EQ(r.stats.events_quarantined, 1u);
  ASSERT_EQ(r.quarantined.size(), 1u);
  EXPECT_EQ(r.quarantined[0].id, 2u);
}

// --- schema validation and duplicate suppression -----------------------

TEST_F(RobustnessTest, MalformedEventsAreRejectedNotProcessed) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 10", reg_);
  Event unknown_type = ev("A", 1, 101);
  unknown_type.type = static_cast<TypeId>(99);
  Event bad_arity = ev("A", 2, 102);
  bad_arity.attrs.pop_back();
  Event bad_value = ev("A", 3, 103);
  bad_value.attrs[0] = Value(std::string("not an int"));
  const std::vector<Event> arrivals = {ev("A", 0, 100), unknown_type, bad_arity,
                                       bad_value, ev("B", 4, 104)};

  for (const EngineKind kind : {EngineKind::kInOrder, EngineKind::kNfa,
                                EngineKind::kOoo, EngineKind::kKSlackInOrder}) {
    EngineOptions opt;
    opt.slack = 5;
    opt.registry = &reg_;
    const auto sink = std::make_shared<CollectingSink>();
    const auto engine = testutil::make_test_engine(kind, q, sink, opt);
    for (const Event& e : arrivals) engine->on_event(e);  // must not fault
    engine->finish();
    EXPECT_EQ(engine->stats_snapshot().events_rejected, 3u) << to_string(kind);
    EXPECT_EQ(sink->size(), 1u) << to_string(kind);  // the well-formed pair
  }
}

TEST_F(RobustnessTest, InvalidTypeIdRejectedEvenWithoutRegistry) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 10", reg_);
  Event poison = ev("A", 0, 100);
  poison.type = kInvalidType;
  const auto sink = std::make_shared<CollectingSink>();
  const auto engine = testutil::make_test_engine(EngineKind::kOoo, q, sink, {});
  engine->on_event(poison);
  engine->finish();
  EXPECT_EQ(engine->stats_snapshot().events_rejected, 1u);
}

TEST_F(RobustnessTest, DuplicateDeliveryInflatesMatchesUnlessDeduped) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 10", reg_);
  // The same B delivered twice (same id, ts, payload — an at-least-once
  // transport retry).
  const std::vector<Event> arrivals = {ev("A", 0, 100), ev("B", 1, 103),
                                       ev("B", 1, 103)};
  for (const EngineKind kind :
       {EngineKind::kInOrder, EngineKind::kNfa, EngineKind::kOoo}) {
    EngineOptions opt;
    opt.slack = 5;
    const auto naive = testutil::run_engine(kind, q, arrivals, opt);
    EXPECT_EQ(naive.size(), 2u) << to_string(kind) << ": retry re-matched";

    opt.dedup_by_id = true;
    const auto sink = std::make_shared<CollectingSink>();
    const auto engine = testutil::make_test_engine(kind, q, sink, opt);
    for (const Event& e : arrivals) engine->on_event(e);
    engine->finish();
    EXPECT_EQ(sink->size(), 1u) << to_string(kind);
    EXPECT_EQ(engine->stats_snapshot().events_deduped, 1u) << to_string(kind);
  }
}

// --- adaptive K-slack --------------------------------------------------

// In-order (A_k, B_k) pairs 2 apart; every B is delivered right after the
// NEXT pair's A, so its lateness equals the phase's configured value.
// Lateness ramps across phases by less than the estimator's 1.5x
// headroom, which is exactly the regime adaptive K must survive.
std::vector<Event> make_ramp(const TypeRegistry& reg,
                             const std::vector<std::pair<Timestamp, int>>& phases) {
  std::vector<Event> arrivals;
  EventId id = 0;
  std::int64_t key = 0;
  Timestamp t = 100;
  std::optional<Event> pending_b;
  for (const auto& [lateness, pairs] : phases) {
    for (int i = 0; i < pairs; ++i) {
      arrivals.push_back(make_event(reg, "A", id++, t, key));
      if (pending_b) arrivals.push_back(*pending_b);
      pending_b = make_event(reg, "B", id++, t + 2, key);
      ++key;
      t += lateness + 2;
    }
  }
  if (pending_b) arrivals.push_back(*pending_b);
  for (std::size_t i = 0; i < arrivals.size(); ++i)
    arrivals[i].arrival = static_cast<ArrivalSeq>(i);
  return arrivals;
}

EngineOptions adaptive_options() {
  EngineOptions o;
  o.slack = 4;
  o.adaptive_slack = true;
  o.late_policy = LatePolicy::kDrop;  // any violation would cost a match
  o.purge_period = 1;
  o.slack_estimator.headroom = 1.5;
  o.slack_estimator.window = 64;
  o.slack_estimator.refresh_period = 2;
  o.slack_estimator.min_slack = 4;
  return o;
}

TEST_F(RobustnessTest, AdaptiveSlackTracksALatenessRampExactly) {
  const CompiledQuery q =
      compile_query("PATTERN SEQ(A a, B b) WHERE a.k == b.k WITHIN 10", reg_);
  const auto arrivals =
      make_ramp(reg_, {{3, 4}, {5, 4}, {7, 4}, {10, 4}, {14, 4}, {20, 4}, {28, 4}});

  // Fixed K = 4 under the historical admit policy: the ramp blows past
  // the configured slack, purges race ahead, and matches go missing.
  EngineOptions fixed;
  fixed.slack = 4;
  fixed.purge_period = 1;
  const auto fixed_sink = std::make_shared<CollectingSink>();
  {
    const auto engine = testutil::make_test_engine(EngineKind::kOoo, q, fixed_sink, fixed);
    for (const Event& e : arrivals) engine->on_event(e);
    engine->finish();
    EXPECT_GT(engine->stats_snapshot().contract_violations, 0u);
  }
  const VerifyResult fixed_v =
      verify_against_oracle(q, arrivals, fixed_sink->matches());
  EXPECT_GT(fixed_v.missed, 0u);
  EXPECT_LT(fixed_v.recall(), 1.0);

  // Same stream, same initial K, adaptive: the estimator's headroom stays
  // ahead of the ramp, so no violation ever happens and (with kDrop armed
  // to punish any slip) the result set is still exact.
  const auto sink = std::make_shared<CollectingSink>();
  const auto engine = testutil::make_test_engine(EngineKind::kOoo, q, sink, adaptive_options());
  for (const Event& e : arrivals) engine->on_event(e);
  engine->finish();
  const EngineStats s = engine->stats_snapshot();
  EXPECT_EQ(s.contract_violations, 0u);
  EXPECT_EQ(s.events_dropped_late, 0u);
  EXPECT_GE(s.slack_grows, 2u);
  EXPECT_GT(s.effective_slack, 4);
  const VerifyResult v = verify_against_oracle(q, arrivals, sink->matches());
  EXPECT_TRUE(v.exact()) << "missed=" << v.missed
                         << " false_positives=" << v.false_positives;
}

TEST_F(RobustnessTest, AdaptiveSlackShrinksBackAfterTheSpike) {
  const CompiledQuery q =
      compile_query("PATTERN SEQ(A a, B b) WHERE a.k == b.k WITHIN 10", reg_);
  const auto arrivals = make_ramp(
      reg_, {{3, 4}, {5, 4}, {7, 4}, {10, 4}, {14, 4}, {20, 4}, {28, 4}, {3, 40}});

  EngineOptions opt = adaptive_options();
  opt.slack_estimator.window = 32;  // let the calm tail flush the spike out
  const auto sink = std::make_shared<CollectingSink>();
  const auto engine = testutil::make_test_engine(EngineKind::kOoo, q, sink, opt);
  for (const Event& e : arrivals) engine->on_event(e);
  engine->finish();
  const EngineStats s = engine->stats_snapshot();
  EXPECT_EQ(s.contract_violations, 0u);
  EXPECT_GE(s.slack_grows, 2u);
  EXPECT_GE(s.slack_shrinks, 1u);
  EXPECT_LT(s.effective_slack, 28);  // back near the calm-phase bound
  const VerifyResult v = verify_against_oracle(q, arrivals, sink->matches());
  EXPECT_TRUE(v.exact()) << "missed=" << v.missed
                         << " false_positives=" << v.false_positives;
}

TEST_F(RobustnessTest, KSlackBufferAdaptsItsReleaseThresholdToo) {
  const CompiledQuery q =
      compile_query("PATTERN SEQ(A a, B b) WHERE a.k == b.k WITHIN 10", reg_);
  const auto arrivals =
      make_ramp(reg_, {{3, 4}, {5, 4}, {7, 4}, {10, 4}, {14, 4}, {20, 4}, {28, 4}});
  const auto sink = std::make_shared<CollectingSink>();
  const auto engine =
      testutil::make_test_engine(EngineKind::kKSlackInOrder, q, sink, adaptive_options());
  for (const Event& e : arrivals) engine->on_event(e);
  engine->finish();
  const EngineStats s = engine->stats_snapshot();
  EXPECT_EQ(s.contract_violations, 0u);
  EXPECT_GE(s.slack_grows, 2u);
  const VerifyResult v = verify_against_oracle(q, arrivals, sink->matches());
  EXPECT_TRUE(v.exact()) << "missed=" << v.missed
                         << " false_positives=" << v.false_positives;
}

// --- retraction refusal across pipeline stages -------------------------

TEST_F(RobustnessTest, UpstreamRetractionIsRefusedByCompositeEmitter) {
  // An aggressive upstream emits optimistically and later retracts; the
  // emitter must refuse loudly rather than leave the downstream engine
  // holding a composite event that no longer exists.
  const TypeId composite =
      reg_.register_type("Pair", Schema({{"k", ValueType::kInt}}));
  const CompiledQuery q1 =
      compile_query("PATTERN SEQ(A a, !B b, C c) WITHIN 100", reg_);
  const CompiledQuery q2 =
      compile_query("PATTERN SEQ(Pair p1, Pair p2) WITHIN 500", reg_);

  const auto final_sink = std::make_shared<CollectingSink>();
  const auto downstream = testutil::make_test_engine(EngineKind::kOoo, q2, final_sink, {});
  const auto emitter = std::make_shared<CompositeEmitter>(
      composite, [](const Match& m) { return std::vector<Value>{m.events[0].attr(0)}; },
      *downstream, 1'000'000);
  EngineOptions opt;
  opt.slack = 100;
  opt.aggressive_negation = true;
  const auto upstream = testutil::make_test_engine(EngineKind::kOoo, q1, emitter, opt);

  upstream->on_event(ev("A", 0, 10));
  upstream->on_event(ev("C", 1, 30));  // optimistic emission composes
  EXPECT_EQ(emitter->emitted(), 1u);
  // The late negative invalidates the already-composed match.
  EXPECT_THROW(upstream->on_event(ev("B", 2, 20)), std::logic_error);
}

}  // namespace
}  // namespace oosp
