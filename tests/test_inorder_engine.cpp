// Unit tests: in-order SSC engine on ts-ordered streams (its contract),
// plus demonstrations of its documented failure modes under OOO input.
#include <gtest/gtest.h>

#include "engine_test_util.hpp"

namespace oosp {
namespace {

using testutil::expect_exact;
using testutil::make_abcd_registry;
using testutil::make_event;
using testutil::run_engine;
using testutil::run_engine_keys;

class InOrderEngineTest : public ::testing::Test {
 protected:
  InOrderEngineTest() : reg_(make_abcd_registry()) {}
  Event ev(const char* t, EventId id, Timestamp ts, std::int64_t k = 0,
           std::int64_t v = 0) {
    return make_event(reg_, t, id, ts, k, v);
  }
  TypeRegistry reg_;
};

TEST_F(InOrderEngineTest, BasicSequence) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 100", reg_);
  const auto keys = run_engine_keys(
      EngineKind::kInOrder, q,
      {ev("A", 0, 10), ev("B", 1, 20), ev("A", 2, 30), ev("B", 3, 40)});
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], (MatchKey{0, 1}));
  EXPECT_EQ(keys[1], (MatchKey{0, 3}));
  EXPECT_EQ(keys[2], (MatchKey{2, 3}));
}

TEST_F(InOrderEngineTest, WindowEnforced) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 10", reg_);
  const auto keys = run_engine_keys(
      EngineKind::kInOrder, q, {ev("A", 0, 10), ev("B", 1, 20), ev("B", 2, 21)});
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], (MatchKey{0, 1}));
}

TEST_F(InOrderEngineTest, EqualTimestampsDoNotSequence) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 100", reg_);
  EXPECT_TRUE(
      run_engine_keys(EngineKind::kInOrder, q, {ev("A", 0, 10), ev("B", 1, 10)}).empty());
}

TEST_F(InOrderEngineTest, JoinPredicatePartitionedAndNot) {
  const CompiledQuery q =
      compile_query("PATTERN SEQ(A a, B b) WHERE a.k == b.k WITHIN 100", reg_);
  const std::vector<Event> ev_list{ev("A", 0, 10, 1), ev("A", 1, 11, 2),
                                   ev("B", 2, 20, 1), ev("B", 3, 21, 2)};
  for (const bool partition : {true, false}) {
    EngineOptions opt;
    opt.partition_by_key = partition;
    const auto keys = run_engine_keys(EngineKind::kInOrder, q, ev_list, opt);
    ASSERT_EQ(keys.size(), 2u) << "partition=" << partition;
    EXPECT_EQ(keys[0], (MatchKey{0, 2}));
    EXPECT_EQ(keys[1], (MatchKey{1, 3}));
  }
}

TEST_F(InOrderEngineTest, ThreeStepWithNegation) {
  const CompiledQuery q = compile_query(
      "PATTERN SEQ(A a, !B b, C c) WHERE a.k == c.k AND a.k == b.k WITHIN 100", reg_);
  const auto keys = run_engine_keys(
      EngineKind::kInOrder, q,
      {ev("A", 0, 10, 1), ev("B", 1, 15, 1), ev("C", 2, 20, 1),   // blocked
       ev("A", 3, 30, 2), ev("C", 4, 40, 2)});                    // clean
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], (MatchKey{3, 4}));
}

TEST_F(InOrderEngineTest, PurgeDoesNotChangeResults) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 20", reg_);
  std::vector<Event> events;
  for (EventId i = 0; i < 400; ++i)
    events.push_back(ev(i % 2 ? "B" : "A", i, static_cast<Timestamp>(i) * 3));
  for (const std::size_t period : {std::size_t{1}, std::size_t{16}, std::size_t{0}}) {
    EngineOptions opt;
    opt.purge_period = period;
    expect_exact(EngineKind::kInOrder, q, events, opt, "purge sweep");
  }
}

TEST_F(InOrderEngineTest, PurgeActuallyShrinksState) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 20", reg_);
  std::vector<Event> events;
  for (EventId i = 0; i < 1'000; ++i)
    events.push_back(ev("A", i, static_cast<Timestamp>(i) * 5));
  const auto sink = std::make_shared<CollectingSink>();
  EngineOptions opt;
  opt.purge_period = 8;
  const auto engine = testutil::make_test_engine(EngineKind::kInOrder, q, sink, opt);
  for (const auto& e : events) engine->on_event(e);
  const auto s = engine->stats_snapshot();
  EXPECT_GT(s.instances_purged, 900u);
  EXPECT_LT(s.current_instances, 20u);
  EXPECT_LT(s.footprint_peak, 40u);
}

TEST_F(InOrderEngineTest, MissesMatchesUnderOutOfOrderInput) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 100", reg_);
  // B arrives before its A: in-order engine cannot see (A,B).
  const auto keys =
      run_engine_keys(EngineKind::kInOrder, q, {ev("B", 0, 20), ev("A", 1, 10)});
  EXPECT_TRUE(keys.empty());
  // The oracle disagrees — this is the documented failure mode.
  const std::vector<Event> all{ev("B", 0, 20), ev("A", 1, 10)};
  EXPECT_EQ(oracle_keys(q, all).size(), 1u);
}

TEST_F(InOrderEngineTest, PhantomMatchWhenNegativeArrivesLate) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, !B b, C c) WITHIN 100", reg_);
  // The C trigger fires before the (earlier-ts) B arrives → phantom match.
  const std::vector<Event> arrivals{ev("A", 0, 10), ev("C", 1, 30), ev("B", 2, 20)};
  const auto keys = run_engine_keys(EngineKind::kInOrder, q, arrivals);
  EXPECT_EQ(keys.size(), 1u);                      // engine claims a match
  EXPECT_TRUE(oracle_keys(q, arrivals).empty());   // truth: there is none
}

TEST_F(InOrderEngineTest, StatsCountersPopulated) {
  const CompiledQuery q =
      compile_query("PATTERN SEQ(A a, B b) WHERE a.k == b.k WITHIN 50", reg_);
  const auto sink = std::make_shared<CollectingSink>();
  const auto engine = testutil::make_test_engine(EngineKind::kInOrder, q, sink);
  for (EventId i = 0; i < 100; ++i)
    engine->on_event(ev(i % 2 ? "B" : "A", i, static_cast<Timestamp>(i) * 2, i % 5));
  engine->finish();
  const auto s = engine->stats_snapshot();
  EXPECT_EQ(s.events_seen, 100u);
  EXPECT_EQ(s.events_relevant, 100u);
  EXPECT_GT(s.instances_inserted, 0u);
  EXPECT_GT(s.construction_visits, 0u);
  EXPECT_GT(s.matches_emitted, 0u);
  EXPECT_EQ(s.matches_emitted, sink->size());
  EXPECT_EQ(engine->name(), "inorder-ssc");
}

TEST_F(InOrderEngineTest, IrrelevantTypesIgnored) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 50", reg_);
  const auto sink = std::make_shared<CollectingSink>();
  const auto engine = testutil::make_test_engine(EngineKind::kInOrder, q, sink);
  engine->on_event(ev("D", 0, 10));
  engine->on_event(ev("D", 1, 20));
  const auto s = engine->stats_snapshot();
  EXPECT_EQ(s.events_seen, 2u);
  EXPECT_EQ(s.events_relevant, 0u);
  EXPECT_EQ(s.instances_inserted, 0u);
}

TEST_F(InOrderEngineTest, SameTypeMultipleSteps) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A x, A y, A z) WITHIN 100", reg_);
  std::vector<Event> events;
  for (EventId i = 0; i < 6; ++i)
    events.push_back(ev("A", i, static_cast<Timestamp>(i + 1) * 10));
  expect_exact(EngineKind::kInOrder, q, events, {}, "A,A,A pattern");
  // C(6,3) = 20 matches.
  EXPECT_EQ(run_engine_keys(EngineKind::kInOrder, q, events).size(), 20u);
}

TEST_F(InOrderEngineTest, SingleStepQuery) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a) WHERE a.v > 1 WITHIN 5", reg_);
  const auto keys = run_engine_keys(
      EngineKind::kInOrder, q,
      {ev("A", 0, 1, 0, 0), ev("A", 1, 2, 0, 2), ev("A", 2, 3, 0, 5)});
  EXPECT_EQ(keys.size(), 2u);
}

TEST_F(InOrderEngineTest, LongPatternFiveSteps) {
  const CompiledQuery q =
      compile_query("PATTERN SEQ(A a, B b, C c, D d, A e) WITHIN 1000", reg_);
  std::vector<Event> events;
  EventId id = 0;
  const char* cycle[] = {"A", "B", "C", "D", "A"};
  for (int round = 0; round < 8; ++round)
    for (const char* t : cycle) {
      const Timestamp ts = static_cast<Timestamp>(id + 1) * 7;
      events.push_back(ev(t, id++, ts));
    }
  expect_exact(EngineKind::kInOrder, q, events, {}, "five step pattern");
}

}  // namespace
}  // namespace oosp
