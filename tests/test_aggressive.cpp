// Unit + property tests: the aggressive output policy — optimistic
// emission with retraction on late negatives.
#include <gtest/gtest.h>

#include "engine_test_util.hpp"
#include "runtime/driver.hpp"
#include "stream/disorder.hpp"
#include "workload/synthetic.hpp"

namespace oosp {
namespace {

using testutil::make_abcd_registry;
using testutil::make_event;

class AggressiveTest : public ::testing::Test {
 protected:
  AggressiveTest() : reg_(make_abcd_registry()) {}
  Event ev(const char* t, EventId id, Timestamp ts, std::int64_t k = 0,
           std::int64_t v = 0) {
    return make_event(reg_, t, id, ts, k, v);
  }
  EngineOptions aggressive(Timestamp k) {
    EngineOptions o;
    o.slack = k;
    o.aggressive_negation = true;
    return o;
  }
  TypeRegistry reg_;
};

TEST_F(AggressiveTest, EmitsImmediatelyWithoutWaitingForSeal) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, !B b, C c) WITHIN 100", reg_);
  const auto sink = std::make_shared<CollectingSink>();
  const auto engine = testutil::make_test_engine(EngineKind::kOoo, q, sink, aggressive(1'000));
  engine->on_event(ev("A", 0, 10));
  engine->on_event(ev("C", 1, 30));
  // Conservative would pend (huge slack); aggressive emits now with zero delay.
  ASSERT_EQ(sink->size(), 1u);
  EXPECT_EQ(sink->matches()[0].detection_delay(), 0);
  EXPECT_EQ(engine->name(), "ooo-aggressive");
}

TEST_F(AggressiveTest, LateNegativeTriggersRetraction) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, !B b, C c) WITHIN 100", reg_);
  const auto sink = std::make_shared<CollectingSink>();
  const auto engine = testutil::make_test_engine(EngineKind::kOoo, q, sink, aggressive(100));
  engine->on_event(ev("A", 0, 10));
  engine->on_event(ev("C", 1, 30));
  ASSERT_EQ(sink->size(), 1u);
  engine->on_event(ev("B", 2, 20));  // invalidates the emitted match
  ASSERT_EQ(sink->retracted().size(), 1u);
  EXPECT_EQ(match_key(sink->retracted()[0]), (MatchKey{0, 1}));
  engine->finish();
  EXPECT_TRUE(sink->net_sorted_keys().empty());
  EXPECT_EQ(engine->stats_snapshot().matches_retracted, 1u);
}

TEST_F(AggressiveTest, SealedMatchCannotBeRetracted) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, !B b, C c) WITHIN 100", reg_);
  const auto sink = std::make_shared<CollectingSink>();
  const auto engine = testutil::make_test_engine(EngineKind::kOoo, q, sink, aggressive(50));
  engine->on_event(ev("A", 0, 10));
  engine->on_event(ev("C", 1, 30));
  engine->on_event(ev("D", 2, 200));  // clock >> 30 + K: interval seals
  // A (contract-violating) extremely late B must not retract anything.
  engine->on_event(ev("B", 3, 20));
  engine->finish();
  EXPECT_EQ(sink->retracted().size(), 0u);
  EXPECT_EQ(sink->net_sorted_keys().size(), 1u);
}

TEST_F(AggressiveTest, RetractionRespectsNegationPredicates) {
  const CompiledQuery q = compile_query(
      "PATTERN SEQ(A a, !B b, C c) WHERE a.k == c.k AND a.k == b.k WITHIN 100", reg_);
  const auto sink = std::make_shared<CollectingSink>();
  const auto engine = testutil::make_test_engine(EngineKind::kOoo, q, sink, aggressive(100));
  engine->on_event(ev("A", 0, 10, 1));
  engine->on_event(ev("C", 1, 30, 1));
  ASSERT_EQ(sink->size(), 1u);
  engine->on_event(ev("B", 2, 20, 9));  // wrong key: no retraction
  EXPECT_EQ(sink->retracted().size(), 0u);
  engine->on_event(ev("B", 3, 25, 1));  // right key: retract
  EXPECT_EQ(sink->retracted().size(), 1u);
}

TEST_F(AggressiveTest, NetResultEqualsConservativeAndOracle) {
  SyntheticWorkload wl({.num_events = 3'000, .num_types = 3, .key_cardinality = 12,
                        .mean_gap = 4, .seed = 71});
  const auto ordered = wl.generate();
  DisorderInjector inj(LatencyModel::uniform(150), 0.3, 8);
  const auto arrivals = inj.deliver(ordered);
  const CompiledQuery q = compile_query(wl.negation_query(200), wl.registry());

  EngineOptions copt;
  copt.slack = inj.slack_bound();
  EngineOptions aopt = copt;
  aopt.aggressive_negation = true;

  const auto conservative = std::make_shared<CollectingSink>();
  const auto aggressive_sink = std::make_shared<CollectingSink>();
  {
    const auto e = testutil::make_test_engine(EngineKind::kOoo, q, conservative, copt);
    for (const Event& ev2 : arrivals) e->on_event(ev2);
    e->finish();
  }
  {
    const auto e = testutil::make_test_engine(EngineKind::kOoo, q, aggressive_sink, aopt);
    for (const Event& ev2 : arrivals) e->on_event(ev2);
    e->finish();
    EXPECT_GT(e->stats_snapshot().matches_retracted, 0u) << "scenario should force retractions";
  }
  const auto truth = oracle_keys(q, arrivals);
  EXPECT_EQ(conservative->sorted_keys(), truth);
  EXPECT_EQ(aggressive_sink->net_sorted_keys(), truth);
  // Aggressive emissions = net + retracted.
  EXPECT_EQ(aggressive_sink->size(),
            truth.size() + aggressive_sink->retracted().size());
}

TEST_F(AggressiveTest, AggressiveNeverSlowerToReport) {
  // Mean detection delay under the aggressive policy must be <= the
  // conservative policy's on the same stream (it never waits for seals).
  SyntheticWorkload wl({.num_events = 4'000, .num_types = 3, .key_cardinality = 10,
                        .mean_gap = 4, .seed = 72});
  const auto ordered = wl.generate();
  DisorderInjector inj(LatencyModel::uniform(300), 0.15, 9);
  const auto arrivals = inj.deliver(ordered);
  const CompiledQuery q = compile_query(wl.negation_query(250), wl.registry());

  DriverConfig conservative;
  conservative.kind = EngineKind::kOoo;
  conservative.options.slack = inj.slack_bound();
  DriverConfig aggressive_cfg = conservative;
  aggressive_cfg.options.aggressive_negation = true;

  const RunResult rc = run_stream(q, arrivals, conservative);
  const RunResult ra = run_stream(q, arrivals, aggressive_cfg);
  EXPECT_LE(ra.delay.mean(), rc.delay.mean());
  EXPECT_GT(rc.delay.mean(), 0.0);
  EXPECT_GE(ra.matches, rc.matches);  // extra (later-retracted) emissions
  EXPECT_EQ(ra.matches - ra.retractions, rc.matches);
}

TEST_F(AggressiveTest, PuresPositiveQueriesUnaffected) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 100", reg_);
  const auto sink = std::make_shared<CollectingSink>();
  const auto engine = testutil::make_test_engine(EngineKind::kOoo, q, sink, aggressive(100));
  engine->on_event(ev("A", 0, 10));
  engine->on_event(ev("B", 1, 20));
  engine->finish();
  EXPECT_EQ(sink->size(), 1u);
  EXPECT_EQ(sink->retracted().size(), 0u);
  EXPECT_EQ(engine->stats_snapshot().pending_peak, 0u);
}

}  // namespace
}  // namespace oosp
