// Unit tests: query analyzer / compiled form (query/compiled.hpp).
#include <gtest/gtest.h>

#include "query/compiled.hpp"
#include "query/parser.hpp"

namespace oosp {
namespace {

class CompiledTest : public ::testing::Test {
 protected:
  CompiledTest() {
    const Schema full({{"k", ValueType::kInt},
                       {"v", ValueType::kInt},
                       {"s", ValueType::kString},
                       {"f", ValueType::kDouble},
                       {"b", ValueType::kBool}});
    for (const char* name : {"A", "B", "C", "D"}) reg_.register_type(name, full);
    reg_.register_type("Other", Schema({{"k", ValueType::kDouble}}));
  }

  TypeRegistry reg_;
};

TEST_F(CompiledTest, ResolvesStepsAndTypes) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b, A c) WITHIN 10", reg_);
  EXPECT_EQ(q.num_steps(), 3u);
  EXPECT_EQ(q.num_positive(), 3u);
  EXPECT_EQ(q.window(), 10);
  EXPECT_EQ(q.trigger_step(), 2u);
  EXPECT_EQ(q.first_step(), 0u);
  const auto a_steps = q.steps_for_type(reg_.lookup("A"));
  ASSERT_EQ(a_steps.size(), 2u);
  EXPECT_EQ(a_steps[0], 0u);
  EXPECT_EQ(a_steps[1], 2u);
  EXPECT_TRUE(q.relevant(reg_.lookup("B")));
  EXPECT_FALSE(q.relevant(reg_.lookup("D")));
}

TEST_F(CompiledTest, NegatedStepAdjacency) {
  const CompiledQuery q =
      compile_query("PATTERN SEQ(A a, !B b, !C c, D d) WITHIN 10", reg_);
  EXPECT_TRUE(q.step(1).negated);
  EXPECT_TRUE(q.step(2).negated);
  EXPECT_EQ(q.step(1).prev_positive, 0u);
  EXPECT_EQ(q.step(1).next_positive, 3u);
  EXPECT_EQ(q.step(2).prev_positive, 0u);
  EXPECT_EQ(q.step(2).next_positive, 3u);
  EXPECT_EQ(q.positive_steps(), (std::vector<std::size_t>{0, 3}));
}

TEST_F(CompiledTest, RejectsBoundaryNegation) {
  EXPECT_THROW(compile_query("PATTERN SEQ(!A a, B b) WITHIN 5", reg_),
               QueryAnalysisError);
  EXPECT_THROW(compile_query("PATTERN SEQ(A a, !B b) WITHIN 5", reg_),
               QueryAnalysisError);
  EXPECT_THROW(compile_query("PATTERN SEQ(!A a) WITHIN 5", reg_), QueryAnalysisError);
}

TEST_F(CompiledTest, RejectsUnknownTypeBindingAttr) {
  EXPECT_THROW(compile_query("PATTERN SEQ(Zed z) WITHIN 5", reg_), QueryAnalysisError);
  EXPECT_THROW(compile_query("PATTERN SEQ(A a, A a) WITHIN 5", reg_),
               QueryAnalysisError);
  EXPECT_THROW(compile_query("PATTERN SEQ(A a) WHERE x.k == 1 WITHIN 5", reg_),
               QueryAnalysisError);
  EXPECT_THROW(compile_query("PATTERN SEQ(A a) WHERE a.nope == 1 WITHIN 5", reg_),
               QueryAnalysisError);
}

TEST_F(CompiledTest, RejectsIncomparableTypes) {
  EXPECT_THROW(compile_query("PATTERN SEQ(A a) WHERE a.k == 's' WITHIN 5", reg_),
               QueryAnalysisError);
  EXPECT_THROW(compile_query("PATTERN SEQ(A a) WHERE a.b == 1 WITHIN 5", reg_),
               QueryAnalysisError);
  EXPECT_THROW(compile_query("PATTERN SEQ(A a, B b) WHERE a.s == b.f WITHIN 5", reg_),
               QueryAnalysisError);
}

TEST_F(CompiledTest, NumericCrossTypeComparisonAllowed) {
  const CompiledQuery q =
      compile_query("PATTERN SEQ(A a) WHERE a.k == a.f AND a.f > 2 WITHIN 5", reg_);
  EXPECT_EQ(q.predicates().size(), 2u);
}

TEST_F(CompiledTest, ConjunctSplitting) {
  const CompiledQuery q = compile_query(
      "PATTERN SEQ(A a, B b) WHERE a.k == b.k AND a.v > 1 AND (b.v < 2 OR b.v > 7) "
      "WITHIN 5",
      reg_);
  EXPECT_EQ(q.predicates().size(), 3u);
  // a.v > 1 and the OR-group are single-step locals.
  EXPECT_EQ(q.step(0).local_predicates.size(), 1u);
  EXPECT_EQ(q.step(1).local_predicates.size(), 1u);
  // The join conjunct references both.
  bool found_join = false;
  for (const auto& p : q.predicates())
    if (p.steps().size() == 2) found_join = true;
  EXPECT_TRUE(found_join);
}

TEST_F(CompiledTest, OrIsNotSplit) {
  const CompiledQuery q = compile_query(
      "PATTERN SEQ(A a, B b) WHERE a.v > 1 OR b.v > 1 WITHIN 5", reg_);
  ASSERT_EQ(q.predicates().size(), 1u);
  EXPECT_EQ(q.predicates()[0].steps().size(), 2u);
}

TEST_F(CompiledTest, PredicateStepsSortedAndFlags) {
  const CompiledQuery q = compile_query(
      "PATTERN SEQ(A a, !B b, C c) WHERE c.k == a.k AND b.k == a.k WITHIN 5", reg_);
  const auto& preds = q.predicates();
  ASSERT_EQ(preds.size(), 2u);
  EXPECT_EQ(preds[0].steps(), (std::vector<std::size_t>{0, 2}));
  EXPECT_TRUE(preds[0].positive_only());
  EXPECT_EQ(preds[1].steps(), (std::vector<std::size_t>{0, 1}));
  EXPECT_FALSE(preds[1].positive_only());
  EXPECT_TRUE(preds[1].references(1));
  EXPECT_FALSE(preds[1].references(2));
}

TEST_F(CompiledTest, RejectsPredicateOverTwoNegatedSteps) {
  EXPECT_THROW(
      compile_query("PATTERN SEQ(A a, !B b, !C c, D d) WHERE b.k == c.k WITHIN 5", reg_),
      QueryAnalysisError);
}

TEST_F(CompiledTest, RejectsLiteralOnlyPredicate) {
  EXPECT_THROW(compile_query("PATTERN SEQ(A a) WHERE 1 == 1 WITHIN 5", reg_),
               QueryAnalysisError);
}

TEST_F(CompiledTest, PartitionKeyDetected) {
  const CompiledQuery q = compile_query(
      "PATTERN SEQ(A a, B b, C c) WHERE a.k == b.k AND b.k == c.k WITHIN 5", reg_);
  EXPECT_TRUE(q.partitionable());
  EXPECT_EQ(q.partition_slots(), (std::vector<std::size_t>{0, 0, 0}));
}

TEST_F(CompiledTest, NegatedStepAttachesToPositiveClass) {
  const CompiledQuery q = compile_query(
      "PATTERN SEQ(A a, !B b, C c) WHERE a.k == c.k AND a.k == b.k WITHIN 5", reg_);
  EXPECT_TRUE(q.partitionable());
  EXPECT_EQ(q.partition_slots()[0], 0u);
  EXPECT_EQ(q.partition_slots()[1], 0u);
  EXPECT_EQ(q.partition_slots()[2], 0u);
}

TEST_F(CompiledTest, ChainThroughNegatedStepIsNotPartitionable) {
  // a.k == b.k AND b.k == c.k with !B does NOT imply a.k == c.k for a
  // match (no B need exist), so no sound partition key exists.
  const CompiledQuery q = compile_query(
      "PATTERN SEQ(A a, !B b, C c) WHERE a.k == b.k AND b.k == c.k WITHIN 5", reg_);
  EXPECT_FALSE(q.partitionable());
}

TEST_F(CompiledTest, NoPartitionKeyWhenChainBroken) {
  const CompiledQuery q =
      compile_query("PATTERN SEQ(A a, B b, C c) WHERE a.k == b.k WITHIN 5", reg_);
  EXPECT_FALSE(q.partitionable());
}

TEST_F(CompiledTest, NoPartitionKeyAcrossDifferentStaticTypes) {
  // A.k is int, Other.k is double: equality is legal but not partitionable.
  const CompiledQuery q =
      compile_query("PATTERN SEQ(A a, Other o) WHERE a.k == o.k WITHIN 5", reg_);
  EXPECT_FALSE(q.partitionable());
}

TEST_F(CompiledTest, NoPartitionKeyFromNonEqOrLiteral) {
  EXPECT_FALSE(compile_query("PATTERN SEQ(A a, B b) WHERE a.k <= b.k WITHIN 5", reg_)
                   .partitionable());
  EXPECT_FALSE(
      compile_query("PATTERN SEQ(A a, B b) WHERE a.k == 3 AND b.k == 3 WITHIN 5", reg_)
          .partitionable());
}

TEST_F(CompiledTest, PartitionKeyOnDifferentSlots) {
  const CompiledQuery q =
      compile_query("PATTERN SEQ(A a, B b) WHERE a.k == b.v WITHIN 5", reg_);
  EXPECT_TRUE(q.partitionable());
  EXPECT_EQ(q.partition_slots()[0], 0u);
  EXPECT_EQ(q.partition_slots()[1], 1u);
}

TEST_F(CompiledTest, SingleStepQueryIsPartitionableTrivially) {
  // No equality conjuncts at all → no class covers the positive step.
  const CompiledQuery q = compile_query("PATTERN SEQ(A a) WITHIN 5", reg_);
  EXPECT_FALSE(q.partitionable());
}

TEST_F(CompiledTest, PredicateEvaluation) {
  const CompiledQuery q = compile_query(
      "PATTERN SEQ(A a, B b) WHERE a.k == b.k AND a.f < b.f WITHIN 5", reg_);
  Event ea, eb;
  ea.attrs = {Value(1), Value(0), Value("x"), Value(1.5), Value(true)};
  eb.attrs = {Value(1), Value(0), Value("y"), Value(2.5), Value(false)};
  std::vector<const Event*> b{&ea, &eb};
  for (const auto& p : q.predicates()) EXPECT_TRUE(p.eval(b));
  eb.attrs[0] = Value(2);
  EXPECT_FALSE(q.predicates()[0].eval(b));
}

TEST_F(CompiledTest, NotAndOrEvaluation) {
  const CompiledQuery q = compile_query(
      "PATTERN SEQ(A a) WHERE NOT (a.v < 5 OR a.s == 'bad') WITHIN 5", reg_);
  Event e;
  e.attrs = {Value(0), Value(9), Value("good"), Value(0.0), Value(false)};
  std::vector<const Event*> b{&e};
  EXPECT_TRUE(q.predicates()[0].eval(b));
  e.attrs[1] = Value(3);
  EXPECT_FALSE(q.predicates()[0].eval(b));
  e.attrs[1] = Value(9);
  e.attrs[2] = Value("bad");
  EXPECT_FALSE(q.predicates()[0].eval(b));
}

TEST_F(CompiledTest, QueryTextPreserved) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 5", reg_);
  EXPECT_NE(q.text().find("PATTERN SEQ(A a, B b)"), std::string::npos);
}

TEST_F(CompiledTest, EmptyPatternRejected) {
  ParsedQuery p;
  p.window = 5;
  EXPECT_THROW(compile_query(p, reg_), QueryAnalysisError);
}

}  // namespace
}  // namespace oosp
