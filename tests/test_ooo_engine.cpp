// Unit tests: the native out-of-order engine — hand-built late-arrival
// scenarios covering every retroactive-construction anchor position,
// sealing, cancellation, purging and both RIP modes.
#include <gtest/gtest.h>

#include "engine_test_util.hpp"

namespace oosp {
namespace {

using testutil::expect_exact;
using testutil::make_abcd_registry;
using testutil::make_event;
using testutil::run_engine;
using testutil::run_engine_keys;

class OooEngineTest : public ::testing::Test {
 protected:
  OooEngineTest() : reg_(make_abcd_registry()) {}
  Event ev(const char* t, EventId id, Timestamp ts, std::int64_t k = 0,
           std::int64_t v = 0) {
    return make_event(reg_, t, id, ts, k, v);
  }
  EngineOptions slack(Timestamp k) {
    EngineOptions o;
    o.slack = k;
    return o;
  }
  TypeRegistry reg_;
};

TEST_F(OooEngineTest, InOrderStreamMatchesLikeBaseline) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 100", reg_);
  const std::vector<Event> events{ev("A", 0, 10), ev("B", 1, 20), ev("A", 2, 30),
                                  ev("B", 3, 40)};
  EXPECT_EQ(run_engine_keys(EngineKind::kOoo, q, events),
            run_engine_keys(EngineKind::kInOrder, q, events));
}

TEST_F(OooEngineTest, LateFirstStepEvent) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 100", reg_);
  // A(ts=10) arrives after B(ts=20): anchor at step 0, right-phase finds B.
  const auto keys = run_engine_keys(EngineKind::kOoo, q,
                                    {ev("B", 0, 20), ev("A", 1, 10)}, slack(50));
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], (MatchKey{1, 0}));
}

TEST_F(OooEngineTest, LateTriggerEvent) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 100", reg_);
  // B(ts=20) arrives after a newer A(ts=30): anchor at trigger, left-phase.
  const auto keys = run_engine_keys(
      EngineKind::kOoo, q, {ev("A", 0, 10), ev("A", 1, 30), ev("B", 2, 20)}, slack(50));
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], (MatchKey{0, 2}));  // only A@10 precedes B@20
}

TEST_F(OooEngineTest, LateMiddleStepEvent) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b, C c) WITHIN 100", reg_);
  // B(ts=20) arrives last: anchor in the middle, left+right phases.
  const auto keys = run_engine_keys(
      EngineKind::kOoo, q, {ev("A", 0, 10), ev("C", 1, 30), ev("B", 2, 20)}, slack(50));
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], (MatchKey{0, 2, 1}));
}

TEST_F(OooEngineTest, EachMatchEmittedExactlyOnce) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b, C c) WITHIN 100", reg_);
  // Multiple As and Cs around one late B: every (A,B,C) combination must
  // appear exactly once.
  const std::vector<Event> arrivals{ev("A", 0, 10), ev("A", 1, 12), ev("C", 2, 30),
                                    ev("C", 3, 32), ev("B", 4, 20)};
  const auto keys = run_engine_keys(EngineKind::kOoo, q, arrivals, slack(50));
  EXPECT_EQ(keys.size(), 4u);
  EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end()) << "duplicates";
}

TEST_F(OooEngineTest, InterleavedLateEventsAllPositions) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b, C c, D d) WITHIN 500",
                                        reg_);
  // Deliver one full match entirely in reverse timestamp order.
  const std::vector<Event> arrivals{ev("D", 0, 40), ev("C", 1, 30), ev("B", 2, 20),
                                    ev("A", 3, 10)};
  const auto keys = run_engine_keys(EngineKind::kOoo, q, arrivals, slack(100));
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], (MatchKey{3, 2, 1, 0}));
}

TEST_F(OooEngineTest, WindowEnforcedInRetroactiveConstruction) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b, C c) WITHIN 15", reg_);
  // Span A..C is 20 > 15 → no match even though the late B fits both sides.
  EXPECT_TRUE(run_engine_keys(EngineKind::kOoo, q,
                              {ev("A", 0, 10), ev("C", 1, 30), ev("B", 2, 20)},
                              slack(50))
                  .empty());
  // Span exactly 15 is allowed.
  const auto keys = run_engine_keys(
      EngineKind::kOoo, q, {ev("A", 0, 10), ev("C", 1, 25), ev("B", 2, 20)}, slack(50));
  EXPECT_EQ(keys.size(), 1u);
}

TEST_F(OooEngineTest, JoinPredicatesInBothPhases) {
  const CompiledQuery q = compile_query(
      "PATTERN SEQ(A a, B b, C c) WHERE a.k == b.k AND b.k == c.k WITHIN 100", reg_);
  const std::vector<Event> arrivals{
      ev("A", 0, 10, 1), ev("A", 1, 11, 2), ev("C", 2, 30, 1), ev("C", 3, 31, 2),
      ev("B", 4, 20, 1),  // late; must join only key-1 events
  };
  const auto keys = run_engine_keys(EngineKind::kOoo, q, arrivals, slack(50));
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], (MatchKey{0, 4, 2}));
}

TEST_F(OooEngineTest, PartitioningOnAndOffAgree) {
  const CompiledQuery q = compile_query(
      "PATTERN SEQ(A a, B b, C c) WHERE a.k == b.k AND b.k == c.k WITHIN 200", reg_);
  std::vector<Event> arrivals;
  // keys alternate; C's arrive before their B's.
  EventId id = 0;
  for (int i = 0; i < 30; ++i) {
    const Timestamp base = i * 40;
    const std::int64_t key = i % 3;
    arrivals.push_back(ev("A", id++, base + 1, key));
    arrivals.push_back(ev("C", id++, base + 21, key));
    arrivals.push_back(ev("B", id++, base + 11, key));  // late middle
  }
  EngineOptions with = slack(60);
  EngineOptions without = slack(60);
  without.partition_by_key = false;
  EXPECT_EQ(run_engine_keys(EngineKind::kOoo, q, arrivals, with),
            run_engine_keys(EngineKind::kOoo, q, arrivals, without));
  expect_exact(EngineKind::kOoo, q, arrivals, with, "partitioned");
}

TEST_F(OooEngineTest, CachedRipAgreesWithBinarySearch) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b, C c) WITHIN 150", reg_);
  std::vector<Event> arrivals;
  EventId id = 0;
  // Deliberately scrambled deliveries across overlapping windows.
  for (int i = 0; i < 25; ++i) {
    const Timestamp base = i * 25;
    arrivals.push_back(ev("C", id++, base + 20));
    arrivals.push_back(ev("A", id++, base + 2));
    arrivals.push_back(ev("B", id++, base + 10));
  }
  EngineOptions bs = slack(80);
  EngineOptions rip = slack(80);
  rip.cache_rip = true;
  const auto k1 = run_engine_keys(EngineKind::kOoo, q, arrivals, bs);
  const auto k2 = run_engine_keys(EngineKind::kOoo, q, arrivals, rip);
  EXPECT_EQ(k1, k2);
  expect_exact(EngineKind::kOoo, q, arrivals, rip, "cached rip");
}

TEST_F(OooEngineTest, CachedRipSurvivesPurge) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 30", reg_);
  EngineOptions opt = slack(20);
  opt.cache_rip = true;
  opt.purge_period = 4;
  std::vector<Event> arrivals;
  EventId id = 0;
  for (int i = 0; i < 200; ++i) {
    const Timestamp base = i * 12;
    arrivals.push_back(ev("B", id++, base + 8));
    arrivals.push_back(ev("A", id++, base + 1));  // late first-step
  }
  expect_exact(EngineKind::kOoo, q, arrivals, opt, "rip+purge");
}

TEST_F(OooEngineTest, PurgeNeverDropsNeededState) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 40", reg_);
  for (const std::size_t period : {std::size_t{1}, std::size_t{7}, std::size_t{64}}) {
    EngineOptions opt = slack(30);
    opt.purge_period = period;
    std::vector<Event> arrivals;
    EventId id = 0;
    for (int i = 0; i < 150; ++i) {
      const Timestamp base = i * 9;
      arrivals.push_back(ev(i % 2 ? "A" : "B", id++, base + 5));
      if (i % 4 == 0) arrivals.push_back(ev("B", id++, base - 20 < 0 ? 1 : base - 20));
    }
    // Arrival stream may exceed stated lateness bound; use true bound.
    Timestamp max_late = 0;
    {
      Timestamp clock = kMinTimestamp;
      for (const auto& e : arrivals) {
        if (clock != kMinTimestamp && e.ts < clock) max_late = std::max(max_late, clock - e.ts);
        clock = std::max(clock, e.ts);
      }
    }
    opt.slack = max_late;
    expect_exact(EngineKind::kOoo, q, arrivals, opt, "purge periods");
  }
}

TEST_F(OooEngineTest, PurgeBoundsMemoryUnderDisorder) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 50", reg_);
  EngineOptions opt = slack(40);
  opt.purge_period = 16;
  const auto sink = std::make_shared<CollectingSink>();
  const auto engine = testutil::make_test_engine(EngineKind::kOoo, q, sink, opt);
  EventId id = 0;
  for (int i = 0; i < 5'000; ++i)
    engine->on_event(ev(i % 2 ? "B" : "A", id++, static_cast<Timestamp>(i) * 4));
  const auto s = engine->stats_snapshot();
  EXPECT_GT(s.instances_purged, 4'000u);
  // W+K = 90 ticks ≈ 23 events of live horizon; generous bound.
  EXPECT_LT(s.footprint_peak, 120u);
}

TEST_F(OooEngineTest, NoPurgeGrowsUnbounded) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 50", reg_);
  EngineOptions opt = slack(40);
  opt.purge_period = 0;
  const auto sink = std::make_shared<CollectingSink>();
  const auto engine = testutil::make_test_engine(EngineKind::kOoo, q, sink, opt);
  for (int i = 0; i < 2'000; ++i)
    engine->on_event(ev(i % 2 ? "B" : "A", static_cast<EventId>(i),
                        static_cast<Timestamp>(i) * 4));
  EXPECT_EQ(engine->stats_snapshot().current_instances, 2'000u);
}

TEST_F(OooEngineTest, StatsLateEventsCounted) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 100", reg_);
  const auto sink = std::make_shared<CollectingSink>();
  const auto engine = testutil::make_test_engine(EngineKind::kOoo, q, sink, slack(50));
  engine->on_event(ev("A", 0, 100));
  engine->on_event(ev("B", 1, 90));   // late
  engine->on_event(ev("B", 2, 120));  // in order
  EXPECT_EQ(engine->stats_snapshot().late_events, 1u);
  EXPECT_EQ(engine->name(), "ooo-native");
}

TEST_F(OooEngineTest, DuplicateTimestampsAcrossTypes) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b, C c) WITHIN 100", reg_);
  const std::vector<Event> arrivals{ev("C", 0, 30), ev("B", 1, 30), ev("A", 2, 10),
                                    ev("B", 3, 20), ev("C", 4, 20)};
  expect_exact(EngineKind::kOoo, q, arrivals, slack(100), "ts ties");
}

TEST_F(OooEngineTest, SameTypeMultipleStepsOutOfOrder) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A x, A y) WITHIN 100", reg_);
  const std::vector<Event> arrivals{ev("A", 0, 30), ev("A", 1, 10), ev("A", 2, 20)};
  // pairs with strictly increasing ts: (1,2),(1,0),(2,0)
  const auto keys = run_engine_keys(EngineKind::kOoo, q, arrivals, slack(50));
  EXPECT_EQ(keys.size(), 3u);
  expect_exact(EngineKind::kOoo, q, arrivals, slack(50), "same-type steps");
}

TEST_F(OooEngineTest, FinishFlushesWithoutClockAdvance) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, !B b, C c) WITHIN 100", reg_);
  const auto sink = std::make_shared<CollectingSink>();
  const auto engine = testutil::make_test_engine(EngineKind::kOoo, q, sink, slack(1'000));
  engine->on_event(ev("A", 0, 10));
  engine->on_event(ev("C", 1, 30));
  // Interval (10,30) cannot seal with slack 1000 unless finish() forces it.
  EXPECT_EQ(sink->size(), 0u);
  engine->finish();
  EXPECT_EQ(sink->size(), 1u);
}

}  // namespace
}  // namespace oosp
