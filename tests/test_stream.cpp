// Unit tests: latency models, disorder injection, sources, stream clock.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "stream/clock.hpp"
#include "stream/disorder.hpp"
#include "stream/source.hpp"

namespace oosp {
namespace {

std::vector<Event> ordered_events(std::size_t n, Timestamp gap = 10,
                                  TypeId type = 0, EventId first_id = 0) {
  std::vector<Event> out;
  for (std::size_t i = 0; i < n; ++i) {
    Event e;
    e.type = type;
    e.id = first_id + i;
    e.ts = static_cast<Timestamp>(i + 1) * gap;
    out.push_back(std::move(e));
  }
  return out;
}

TEST(LatencyModel, NoneAlwaysZero) {
  Rng r(1);
  const auto m = LatencyModel::none();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(m.sample(r), 0);
}

TEST(LatencyModel, FixedAlwaysMax) {
  Rng r(1);
  const auto m = LatencyModel::fixed(25);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(m.sample(r), 25);
}

TEST(LatencyModel, UniformWithinBounds) {
  Rng r(2);
  const auto m = LatencyModel::uniform(50);
  bool saw_low = false, saw_high = false;
  for (int i = 0; i < 5'000; ++i) {
    const Timestamp d = m.sample(r);
    EXPECT_GE(d, 0);
    EXPECT_LE(d, 50);
    saw_low |= d < 10;
    saw_high |= d > 40;
  }
  EXPECT_TRUE(saw_low);
  EXPECT_TRUE(saw_high);
}

TEST(LatencyModel, NormalClamped) {
  Rng r(3);
  const auto m = LatencyModel::normal(30.0, 20.0, 60);
  for (int i = 0; i < 5'000; ++i) {
    const Timestamp d = m.sample(r);
    EXPECT_GE(d, 0);
    EXPECT_LE(d, 60);
  }
}

TEST(LatencyModel, ParetoClampedHeavyTail) {
  Rng r(4);
  const auto m = LatencyModel::pareto(5.0, 1.2, 1'000);
  int big = 0;
  for (int i = 0; i < 10'000; ++i) {
    const Timestamp d = m.sample(r);
    EXPECT_GE(d, 0);
    EXPECT_LE(d, 1'000);
    big += d > 100;
  }
  EXPECT_GT(big, 50);  // heavy tail produces real outliers
}

TEST(LatencyModel, InvalidParams) {
  EXPECT_THROW(LatencyModel::fixed(-1), std::invalid_argument);
  EXPECT_THROW(LatencyModel::pareto(0.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(LatencyModel::normal(0.0, -1.0, 10), std::invalid_argument);
}

TEST(DisorderInjector, ZeroFractionPreservesOrder) {
  const auto in = ordered_events(500);
  DisorderInjector inj(LatencyModel::uniform(100), 0.0, 5);
  const auto out = inj.deliver(in);
  ASSERT_EQ(out.size(), in.size());
  EXPECT_TRUE(is_ts_ordered(out));
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].id, in[i].id);
    EXPECT_EQ(out[i].arrival, i);
  }
  EXPECT_EQ(DisorderInjector::measure(out).late_events, 0u);
}

TEST(DisorderInjector, InjectsBoundedDisorder) {
  const auto in = ordered_events(5'000, 5);
  DisorderInjector inj(LatencyModel::uniform(200), 0.25, 6);
  const auto out = inj.deliver(in);
  const auto stats = DisorderInjector::measure(out);
  EXPECT_GT(stats.late_events, 100u);
  EXPECT_LE(stats.max_lateness, inj.slack_bound());
  EXPECT_GT(stats.ooo_percent(), 1.0);
  // Same multiset of events.
  std::vector<EventId> ids;
  for (const auto& e : out) ids.push_back(e.id);
  std::sort(ids.begin(), ids.end());
  for (std::size_t i = 0; i < ids.size(); ++i) EXPECT_EQ(ids[i], i);
}

TEST(DisorderInjector, DeterministicForSeed) {
  const auto in = ordered_events(1'000);
  DisorderInjector a(LatencyModel::uniform(100), 0.3, 9);
  DisorderInjector b(LatencyModel::uniform(100), 0.3, 9);
  const auto oa = a.deliver(in);
  const auto ob = b.deliver(in);
  for (std::size_t i = 0; i < oa.size(); ++i) EXPECT_EQ(oa[i].id, ob[i].id);
}

TEST(DisorderInjector, HigherFractionMoreDisorder) {
  const auto in = ordered_events(5'000, 5);
  DisorderInjector a(LatencyModel::uniform(100), 0.05, 3);
  DisorderInjector c(LatencyModel::uniform(100), 0.60, 3);
  EXPECT_LT(DisorderInjector::measure(a.deliver(in)).late_events,
            DisorderInjector::measure(c.deliver(in)).late_events);
}

TEST(DisorderInjector, RequiresOrderedInput) {
  auto in = ordered_events(10);
  std::swap(in[2], in[7]);
  DisorderInjector inj(LatencyModel::none(), 0.0, 1);
  EXPECT_THROW(inj.deliver(in), std::invalid_argument);
}

TEST(DisorderInjector, InvalidFraction) {
  EXPECT_THROW(DisorderInjector(LatencyModel::none(), -0.1, 1), std::invalid_argument);
  EXPECT_THROW(DisorderInjector(LatencyModel::none(), 1.1, 1), std::invalid_argument);
}

TEST(VectorSource, DrainsAll) {
  VectorSource src(ordered_events(5));
  const auto out = drain(src);
  EXPECT_EQ(out.size(), 5u);
  EXPECT_FALSE(src.next().has_value());
}

TEST(MergeSource, EqualDelaysPreserveOrder) {
  std::vector<MergeSource::Input> inputs;
  inputs.push_back({std::make_unique<VectorSource>(ordered_events(10, 10, 0, 0)), 0});
  inputs.push_back({std::make_unique<VectorSource>(ordered_events(10, 15, 1, 100)), 0});
  MergeSource merge(std::move(inputs));
  EXPECT_EQ(merge.slack_bound(), 0);
  const auto out = drain(merge);
  ASSERT_EQ(out.size(), 20u);
  EXPECT_TRUE(is_ts_ordered(out));
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i].arrival, i);
}

TEST(MergeSource, DelayGapCreatesBoundedDisorder) {
  std::vector<MergeSource::Input> inputs;
  inputs.push_back({std::make_unique<VectorSource>(ordered_events(200, 7, 0, 0)), 0});
  inputs.push_back({std::make_unique<VectorSource>(ordered_events(200, 11, 1, 1'000)), 90});
  MergeSource merge(std::move(inputs));
  EXPECT_EQ(merge.slack_bound(), 90);
  const auto out = drain(merge);
  const auto stats = DisorderInjector::measure(out);
  EXPECT_GT(stats.late_events, 0u);
  EXPECT_LE(stats.max_lateness, merge.slack_bound());
}

TEST(MergeSource, RejectsBadInputs) {
  EXPECT_THROW(MergeSource({}), std::invalid_argument);
  std::vector<MergeSource::Input> inputs;
  inputs.push_back({nullptr, 0});
  EXPECT_THROW(MergeSource(std::move(inputs)), std::invalid_argument);
}

TEST(StreamClock, TracksMaxAndLateness) {
  StreamClock c(50);
  Event e;
  e.ts = 100;
  EXPECT_EQ(c.observe(e), 0);
  EXPECT_EQ(c.now(), 100);
  e.ts = 80;
  EXPECT_EQ(c.observe(e), 20);  // late by 20
  EXPECT_EQ(c.now(), 100);
  e.ts = 130;
  EXPECT_EQ(c.observe(e), 0);
  EXPECT_EQ(c.now(), 130);
  EXPECT_EQ(c.max_lateness(), 20);
  EXPECT_FALSE(c.contract_violated());
  e.ts = 10;
  c.observe(e);
  EXPECT_TRUE(c.contract_violated());
}

TEST(StreamClock, SealPoint) {
  StreamClock c(30);
  EXPECT_EQ(c.seal_point(), kMinTimestamp);
  Event e;
  e.ts = 100;
  c.observe(e);
  EXPECT_EQ(c.seal_point(), 100 - 30 - 1);
  EXPECT_FALSE(c.started() == false);
}

TEST(StreamClock, FirstEventNeverLate) {
  StreamClock c(0);
  Event e;
  e.ts = -500;
  EXPECT_EQ(c.observe(e), 0);
  EXPECT_EQ(c.now(), -500);
}

}  // namespace
}  // namespace oosp
