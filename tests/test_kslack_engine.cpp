// Unit tests: the K-slack reorder buffer front-end.
#include <gtest/gtest.h>

#include "engine_test_util.hpp"
#include "stream/disorder.hpp"

namespace oosp {
namespace {

using testutil::expect_exact;
using testutil::make_abcd_registry;
using testutil::make_event;
using testutil::run_engine_keys;

class KSlackTest : public ::testing::Test {
 protected:
  KSlackTest() : reg_(make_abcd_registry()) {}
  Event ev(const char* t, EventId id, Timestamp ts, std::int64_t k = 0) {
    return make_event(reg_, t, id, ts, k);
  }
  EngineOptions slack(Timestamp k) {
    EngineOptions o;
    o.slack = k;
    return o;
  }
  TypeRegistry reg_;
};

TEST_F(KSlackTest, ReordersBoundedDisorderExactly) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 100", reg_);
  const std::vector<Event> arrivals{ev("B", 0, 20), ev("A", 1, 10), ev("B", 2, 40),
                                    ev("A", 3, 30), ev("D", 4, 200)};
  expect_exact(EngineKind::kKSlackInOrder, q, arrivals, slack(30), "bounded disorder");
  expect_exact(EngineKind::kKSlackNfa, q, arrivals, slack(30), "bounded disorder nfa");
}

TEST_F(KSlackTest, FinishDrainsBuffer) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 100", reg_);
  const auto sink = std::make_shared<CollectingSink>();
  const auto engine = testutil::make_test_engine(EngineKind::kKSlackInOrder, q, sink, slack(1'000));
  engine->on_event(ev("A", 0, 10));
  engine->on_event(ev("B", 1, 20));
  EXPECT_EQ(sink->size(), 0u);  // everything still buffered
  engine->finish();
  EXPECT_EQ(sink->size(), 1u);
}

TEST_F(KSlackTest, DetectionDelayIsAtLeastSlackMidStream) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 100", reg_);
  const auto sink = std::make_shared<CollectingSink>();
  const auto engine = testutil::make_test_engine(EngineKind::kKSlackInOrder, q, sink, slack(50));
  engine->on_event(ev("A", 0, 10));
  engine->on_event(ev("B", 1, 20));
  engine->on_event(ev("D", 2, 75));  // releases ts<=25: A and B
  ASSERT_EQ(sink->size(), 1u);
  // Completed at ts=20, detected when clock=75 → delay 55 >= K.
  EXPECT_GE(sink->matches()[0].detection_delay(), 50);
}

TEST_F(KSlackTest, StatsMergeBufferAndInner) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 100", reg_);
  const auto sink = std::make_shared<CollectingSink>();
  const auto engine = testutil::make_test_engine(EngineKind::kKSlackInOrder, q, sink, slack(100));
  for (EventId i = 0; i < 50; ++i)
    engine->on_event(ev("A", i, static_cast<Timestamp>(i) + 1));
  const auto s = engine->stats_snapshot();
  EXPECT_EQ(s.events_seen, 50u);
  EXPECT_GT(s.buffered, 0u);           // events still parked
  EXPECT_GT(s.footprint_peak, 40u);    // buffer dominates footprint
  EXPECT_EQ(engine->name(), "kslack+inorder-ssc");
}

TEST_F(KSlackTest, ZeroSlackDegeneratesToInner) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 100", reg_);
  const std::vector<Event> events{ev("A", 0, 10), ev("B", 1, 20), ev("A", 2, 30),
                                  ev("B", 3, 40)};
  EXPECT_EQ(run_engine_keys(EngineKind::kKSlackInOrder, q, events, slack(0)),
            run_engine_keys(EngineKind::kInOrder, q, events));
}

TEST_F(KSlackTest, ReleasesInTsOrderUnderHeavyDisorder) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 60", reg_);
  // Build an ordered stream, scramble it with bounded delays, then verify
  // exactness — the inner engine only works if release order is sorted.
  std::vector<Event> ordered;
  for (EventId i = 0; i < 800; ++i)
    ordered.push_back(ev(i % 2 ? "B" : "A", i, static_cast<Timestamp>(i) * 3 + 1, i % 7));
  DisorderInjector inj(LatencyModel::pareto(3.0, 1.3, 150), 0.5, 21);
  const auto arrivals = inj.deliver(ordered);
  ASSERT_GT(DisorderInjector::measure(arrivals).late_events, 50u);
  expect_exact(EngineKind::kKSlackInOrder, q, arrivals, slack(inj.slack_bound()),
               "heavy disorder");
}

TEST_F(KSlackTest, NegationQueryThroughBuffer) {
  const CompiledQuery q = compile_query(
      "PATTERN SEQ(A a, !B b, C c) WHERE a.k == b.k AND b.k == c.k WITHIN 100", reg_);
  const std::vector<Event> arrivals{
      ev("A", 0, 10, 1), ev("C", 1, 40, 1), ev("B", 2, 25, 1),  // late checkout
      ev("A", 3, 100, 2), ev("C", 4, 130, 2), ev("D", 5, 400),
  };
  expect_exact(EngineKind::kKSlackInOrder, q, arrivals, slack(30), "negation buffered");
}

}  // namespace
}  // namespace oosp
