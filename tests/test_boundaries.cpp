// Boundary-exactness tests: every threshold in the system (window span,
// purge horizon, seal point, buffer release, contract bound) is pinned
// at its exact off-by-one edges, since these are precisely the places a
// reimplementation silently diverges.
#include <gtest/gtest.h>

#include "engine_test_util.hpp"

namespace oosp {
namespace {

using testutil::make_abcd_registry;
using testutil::make_event;
using testutil::run_engine_keys;

class BoundaryTest : public ::testing::Test {
 protected:
  BoundaryTest() : reg_(make_abcd_registry()) {}
  Event ev(const char* t, EventId id, Timestamp ts, std::int64_t k = 0) {
    return make_event(reg_, t, id, ts, k);
  }
  EngineOptions slack(Timestamp k, std::size_t purge = 1) {
    EngineOptions o;
    o.slack = k;
    o.purge_period = purge;
    return o;
  }
  TypeRegistry reg_;
};

TEST_F(BoundaryTest, WindowSpanExactlyWIncluded) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 10", reg_);
  for (const EngineKind kind : {EngineKind::kInOrder, EngineKind::kNfa, EngineKind::kOoo}) {
    EXPECT_EQ(run_engine_keys(kind, q, {ev("A", 0, 100), ev("B", 1, 110)}).size(), 1u)
        << to_string(kind);
    EXPECT_EQ(run_engine_keys(kind, q, {ev("A", 0, 100), ev("B", 1, 111)}).size(), 0u)
        << to_string(kind);
  }
}

TEST_F(BoundaryTest, OooPurgeKeepsInstanceAtExactHorizon) {
  // Purge discards ts < clock − K − W strictly. An A exactly at the
  // horizon must survive and still join a maximally-late, maximally-
  // distant B.
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 10", reg_);
  const auto sink = std::make_shared<CollectingSink>();
  const auto engine = testutil::make_test_engine(EngineKind::kOoo, q, sink, slack(5, 1));
  engine->on_event(ev("A", 0, 100));
  engine->on_event(ev("D", 1, 115));  // clock=115: horizon = 115−5−10 = 100
  engine->on_event(ev("B", 2, 110));  // late by 5 (== K), span == 10 (== W)
  engine->finish();
  EXPECT_EQ(sink->size(), 1u);
  EXPECT_EQ(engine->stats_snapshot().contract_violations, 0u);
}

TEST_F(BoundaryTest, OooPurgeDropsInstanceJustBelowHorizon) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 10", reg_);
  const auto sink = std::make_shared<CollectingSink>();
  const auto engine = testutil::make_test_engine(EngineKind::kOoo, q, sink, slack(5, 1));
  engine->on_event(ev("A", 0, 99));
  engine->on_event(ev("D", 1, 115));  // horizon 100 > 99: A purged
  EXPECT_EQ(engine->stats_snapshot().instances_purged, 1u);
  // No contract-violating resurrection is possible: any B joining A@99
  // within W=10 has ts <= 109 < clock − K = 110 → would itself violate
  // the contract. The purge was safe by construction.
}

TEST_F(BoundaryTest, SealFiresExactlyAtIntervalEndPlusK) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, !B b, C c) WITHIN 100", reg_);
  const auto sink = std::make_shared<CollectingSink>();
  const auto engine = testutil::make_test_engine(EngineKind::kOoo, q, sink, slack(50, 0));
  engine->on_event(ev("A", 0, 10));
  engine->on_event(ev("C", 1, 30));
  engine->on_event(ev("D", 2, 79));  // clock = 79 < 30 + 50: not sealed
  EXPECT_EQ(sink->size(), 0u);
  engine->on_event(ev("D", 3, 80));  // clock = 80 == 30 + 50: sealed
  EXPECT_EQ(sink->size(), 1u);
}

TEST_F(BoundaryTest, NegativeExactlyAtSealBoundaryStillCancels) {
  // A violating B with lateness exactly K must arrive before (or at) the
  // event that seals its interval, and must still cancel the match.
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, !B b, C c) WITHIN 100", reg_);
  const auto sink = std::make_shared<CollectingSink>();
  const auto engine = testutil::make_test_engine(EngineKind::kOoo, q, sink, slack(50, 0));
  engine->on_event(ev("A", 0, 10));
  engine->on_event(ev("C", 1, 30));
  engine->on_event(ev("D", 2, 79));
  engine->on_event(ev("B", 3, 29));  // lateness 50 == K: legal, cancels
  engine->on_event(ev("D", 4, 200));
  engine->finish();
  EXPECT_EQ(sink->size(), 0u);
  EXPECT_EQ(engine->stats_snapshot().contract_violations, 0u);
  EXPECT_EQ(engine->stats_snapshot().matches_cancelled, 1u);
}

TEST_F(BoundaryTest, ContractViolationCountedAboveSlackOnly) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 100", reg_);
  const auto sink = std::make_shared<CollectingSink>();
  const auto engine = testutil::make_test_engine(EngineKind::kOoo, q, sink, slack(10));
  engine->on_event(ev("D", 0, 100));
  engine->on_event(ev("D", 1, 90));  // lateness 10 == K: allowed
  EXPECT_EQ(engine->stats_snapshot().contract_violations, 0u);
  engine->on_event(ev("D", 2, 89));  // lateness 11 > K: violation
  EXPECT_EQ(engine->stats_snapshot().contract_violations, 1u);
  EXPECT_EQ(engine->stats_snapshot().late_events, 2u);
}

TEST_F(BoundaryTest, KSlackCountsContractViolationsToo) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 100", reg_);
  const auto sink = std::make_shared<CollectingSink>();
  const auto engine = testutil::make_test_engine(EngineKind::kKSlackInOrder, q, sink, slack(10));
  engine->on_event(ev("D", 0, 100));
  engine->on_event(ev("D", 1, 80));
  EXPECT_EQ(engine->stats_snapshot().contract_violations, 1u);
}

TEST_F(BoundaryTest, KSlackReleaseBoundary) {
  // An event is released once clock − K >= its ts; with equal release
  // instants, ties release in (ts, id) order into the inner engine.
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 100", reg_);
  const auto sink = std::make_shared<CollectingSink>();
  const auto engine = testutil::make_test_engine(EngineKind::kKSlackInOrder, q, sink, slack(20));
  engine->on_event(ev("B", 1, 30));
  engine->on_event(ev("A", 0, 30));  // tie ts, smaller id: must sort first…
  // …but equal timestamps never sequence, so no match from these two.
  engine->on_event(ev("A", 2, 31));
  engine->on_event(ev("B", 3, 40));
  engine->on_event(ev("D", 4, 60));  // releases everything ts <= 40
  EXPECT_EQ(sink->size(), 2u);        // (A@30,B@40) and (A@31,B@40)
  engine->finish();
  EXPECT_EQ(sink->size(), 2u);
}

TEST_F(BoundaryTest, ZeroSlackOnOrderedStreamBehavesLikeInOrder) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 50", reg_);
  std::vector<Event> events;
  for (EventId i = 0; i < 60; ++i)
    events.push_back(ev(i % 2 ? "B" : "A", i, static_cast<Timestamp>(i + 1) * 3));
  EXPECT_EQ(run_engine_keys(EngineKind::kOoo, q, events, slack(0)),
            run_engine_keys(EngineKind::kInOrder, q, events));
}

TEST_F(BoundaryTest, NegativeTimestampsWork) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 100", reg_);
  const auto keys = run_engine_keys(EngineKind::kOoo, q,
                                    {ev("B", 0, -50), ev("A", 1, -120)}, slack(100));
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], (MatchKey{1, 0}));
}

TEST_F(BoundaryTest, WindowOfOneTick) {
  const CompiledQuery q = compile_query("PATTERN SEQ(A a, B b) WITHIN 1", reg_);
  for (const EngineKind kind : {EngineKind::kInOrder, EngineKind::kOoo}) {
    EXPECT_EQ(run_engine_keys(kind, q, {ev("A", 0, 5), ev("B", 1, 6)}).size(), 1u);
    EXPECT_EQ(run_engine_keys(kind, q, {ev("A", 0, 5), ev("B", 1, 7)}).size(), 0u);
  }
}

TEST_F(BoundaryTest, StatsAccountingConsistentAfterRun) {
  const CompiledQuery q =
      compile_query("PATTERN SEQ(A a, !B b, C c) WHERE a.k == c.k AND a.k == b.k "
                    "WITHIN 30",
                    reg_);
  const auto sink = std::make_shared<CollectingSink>();
  const auto engine = testutil::make_test_engine(EngineKind::kOoo, q, sink, slack(20, 4));
  EventId id = 0;
  for (int i = 0; i < 500; ++i) {
    const Timestamp base = i * 7;
    engine->on_event(ev(i % 3 == 0 ? "A" : (i % 3 == 1 ? "B" : "C"), id++, base, i % 4));
  }
  engine->finish();
  const auto s = engine->stats_snapshot();
  EXPECT_EQ(s.events_seen, 500u);
  EXPECT_EQ(s.instances_inserted, s.instances_purged + s.current_instances);
  EXPECT_GE(s.footprint_peak, s.footprint());
  EXPECT_EQ(s.pending_matches, 0u);  // finish() drained everything
  EXPECT_EQ(s.matches_emitted, sink->size());
}

}  // namespace
}  // namespace oosp
