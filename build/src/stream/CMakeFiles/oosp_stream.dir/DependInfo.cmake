
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stream/disorder.cpp" "src/stream/CMakeFiles/oosp_stream.dir/disorder.cpp.o" "gcc" "src/stream/CMakeFiles/oosp_stream.dir/disorder.cpp.o.d"
  "/root/repo/src/stream/latency.cpp" "src/stream/CMakeFiles/oosp_stream.dir/latency.cpp.o" "gcc" "src/stream/CMakeFiles/oosp_stream.dir/latency.cpp.o.d"
  "/root/repo/src/stream/outage.cpp" "src/stream/CMakeFiles/oosp_stream.dir/outage.cpp.o" "gcc" "src/stream/CMakeFiles/oosp_stream.dir/outage.cpp.o.d"
  "/root/repo/src/stream/source.cpp" "src/stream/CMakeFiles/oosp_stream.dir/source.cpp.o" "gcc" "src/stream/CMakeFiles/oosp_stream.dir/source.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/event/CMakeFiles/oosp_event.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/oosp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
