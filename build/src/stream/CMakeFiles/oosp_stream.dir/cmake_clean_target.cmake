file(REMOVE_RECURSE
  "liboosp_stream.a"
)
