file(REMOVE_RECURSE
  "CMakeFiles/oosp_stream.dir/disorder.cpp.o"
  "CMakeFiles/oosp_stream.dir/disorder.cpp.o.d"
  "CMakeFiles/oosp_stream.dir/latency.cpp.o"
  "CMakeFiles/oosp_stream.dir/latency.cpp.o.d"
  "CMakeFiles/oosp_stream.dir/outage.cpp.o"
  "CMakeFiles/oosp_stream.dir/outage.cpp.o.d"
  "CMakeFiles/oosp_stream.dir/source.cpp.o"
  "CMakeFiles/oosp_stream.dir/source.cpp.o.d"
  "liboosp_stream.a"
  "liboosp_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oosp_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
