# Empty compiler generated dependencies file for oosp_stream.
# This may be replaced when dependencies are built.
