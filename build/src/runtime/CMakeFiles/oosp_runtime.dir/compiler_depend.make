# Empty compiler generated dependencies file for oosp_runtime.
# This may be replaced when dependencies are built.
