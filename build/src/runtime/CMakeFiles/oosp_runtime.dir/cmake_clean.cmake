file(REMOVE_RECURSE
  "CMakeFiles/oosp_runtime.dir/driver.cpp.o"
  "CMakeFiles/oosp_runtime.dir/driver.cpp.o.d"
  "CMakeFiles/oosp_runtime.dir/multi_query.cpp.o"
  "CMakeFiles/oosp_runtime.dir/multi_query.cpp.o.d"
  "CMakeFiles/oosp_runtime.dir/pipeline.cpp.o"
  "CMakeFiles/oosp_runtime.dir/pipeline.cpp.o.d"
  "CMakeFiles/oosp_runtime.dir/verify.cpp.o"
  "CMakeFiles/oosp_runtime.dir/verify.cpp.o.d"
  "liboosp_runtime.a"
  "liboosp_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oosp_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
