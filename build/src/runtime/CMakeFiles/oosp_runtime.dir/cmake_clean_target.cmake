file(REMOVE_RECURSE
  "liboosp_runtime.a"
)
