file(REMOVE_RECURSE
  "CMakeFiles/oosp_event.dir/event.cpp.o"
  "CMakeFiles/oosp_event.dir/event.cpp.o.d"
  "CMakeFiles/oosp_event.dir/schema.cpp.o"
  "CMakeFiles/oosp_event.dir/schema.cpp.o.d"
  "CMakeFiles/oosp_event.dir/value.cpp.o"
  "CMakeFiles/oosp_event.dir/value.cpp.o.d"
  "liboosp_event.a"
  "liboosp_event.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oosp_event.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
