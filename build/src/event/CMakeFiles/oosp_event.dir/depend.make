# Empty dependencies file for oosp_event.
# This may be replaced when dependencies are built.
