file(REMOVE_RECURSE
  "liboosp_event.a"
)
