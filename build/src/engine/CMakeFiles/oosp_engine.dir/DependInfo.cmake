
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/buffer/kslack_engine.cpp" "src/engine/CMakeFiles/oosp_engine.dir/buffer/kslack_engine.cpp.o" "gcc" "src/engine/CMakeFiles/oosp_engine.dir/buffer/kslack_engine.cpp.o.d"
  "/root/repo/src/engine/core/match.cpp" "src/engine/CMakeFiles/oosp_engine.dir/core/match.cpp.o" "gcc" "src/engine/CMakeFiles/oosp_engine.dir/core/match.cpp.o.d"
  "/root/repo/src/engine/core/negative_buffer.cpp" "src/engine/CMakeFiles/oosp_engine.dir/core/negative_buffer.cpp.o" "gcc" "src/engine/CMakeFiles/oosp_engine.dir/core/negative_buffer.cpp.o.d"
  "/root/repo/src/engine/core/schedule.cpp" "src/engine/CMakeFiles/oosp_engine.dir/core/schedule.cpp.o" "gcc" "src/engine/CMakeFiles/oosp_engine.dir/core/schedule.cpp.o.d"
  "/root/repo/src/engine/engines.cpp" "src/engine/CMakeFiles/oosp_engine.dir/engines.cpp.o" "gcc" "src/engine/CMakeFiles/oosp_engine.dir/engines.cpp.o.d"
  "/root/repo/src/engine/inorder/inorder_engine.cpp" "src/engine/CMakeFiles/oosp_engine.dir/inorder/inorder_engine.cpp.o" "gcc" "src/engine/CMakeFiles/oosp_engine.dir/inorder/inorder_engine.cpp.o.d"
  "/root/repo/src/engine/nfa/nfa_engine.cpp" "src/engine/CMakeFiles/oosp_engine.dir/nfa/nfa_engine.cpp.o" "gcc" "src/engine/CMakeFiles/oosp_engine.dir/nfa/nfa_engine.cpp.o.d"
  "/root/repo/src/engine/ooo/ooo_engine.cpp" "src/engine/CMakeFiles/oosp_engine.dir/ooo/ooo_engine.cpp.o" "gcc" "src/engine/CMakeFiles/oosp_engine.dir/ooo/ooo_engine.cpp.o.d"
  "/root/repo/src/engine/ooo/sorted_stack.cpp" "src/engine/CMakeFiles/oosp_engine.dir/ooo/sorted_stack.cpp.o" "gcc" "src/engine/CMakeFiles/oosp_engine.dir/ooo/sorted_stack.cpp.o.d"
  "/root/repo/src/engine/oracle/oracle.cpp" "src/engine/CMakeFiles/oosp_engine.dir/oracle/oracle.cpp.o" "gcc" "src/engine/CMakeFiles/oosp_engine.dir/oracle/oracle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/query/CMakeFiles/oosp_query.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/oosp_event.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/oosp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
