file(REMOVE_RECURSE
  "liboosp_engine.a"
)
