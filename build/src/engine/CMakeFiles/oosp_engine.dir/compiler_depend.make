# Empty compiler generated dependencies file for oosp_engine.
# This may be replaced when dependencies are built.
