file(REMOVE_RECURSE
  "CMakeFiles/oosp_engine.dir/buffer/kslack_engine.cpp.o"
  "CMakeFiles/oosp_engine.dir/buffer/kslack_engine.cpp.o.d"
  "CMakeFiles/oosp_engine.dir/core/match.cpp.o"
  "CMakeFiles/oosp_engine.dir/core/match.cpp.o.d"
  "CMakeFiles/oosp_engine.dir/core/negative_buffer.cpp.o"
  "CMakeFiles/oosp_engine.dir/core/negative_buffer.cpp.o.d"
  "CMakeFiles/oosp_engine.dir/core/schedule.cpp.o"
  "CMakeFiles/oosp_engine.dir/core/schedule.cpp.o.d"
  "CMakeFiles/oosp_engine.dir/engines.cpp.o"
  "CMakeFiles/oosp_engine.dir/engines.cpp.o.d"
  "CMakeFiles/oosp_engine.dir/inorder/inorder_engine.cpp.o"
  "CMakeFiles/oosp_engine.dir/inorder/inorder_engine.cpp.o.d"
  "CMakeFiles/oosp_engine.dir/nfa/nfa_engine.cpp.o"
  "CMakeFiles/oosp_engine.dir/nfa/nfa_engine.cpp.o.d"
  "CMakeFiles/oosp_engine.dir/ooo/ooo_engine.cpp.o"
  "CMakeFiles/oosp_engine.dir/ooo/ooo_engine.cpp.o.d"
  "CMakeFiles/oosp_engine.dir/ooo/sorted_stack.cpp.o"
  "CMakeFiles/oosp_engine.dir/ooo/sorted_stack.cpp.o.d"
  "CMakeFiles/oosp_engine.dir/oracle/oracle.cpp.o"
  "CMakeFiles/oosp_engine.dir/oracle/oracle.cpp.o.d"
  "liboosp_engine.a"
  "liboosp_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oosp_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
