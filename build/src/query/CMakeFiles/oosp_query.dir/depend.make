# Empty dependencies file for oosp_query.
# This may be replaced when dependencies are built.
