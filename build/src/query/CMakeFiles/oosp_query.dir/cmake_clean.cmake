file(REMOVE_RECURSE
  "CMakeFiles/oosp_query.dir/ast.cpp.o"
  "CMakeFiles/oosp_query.dir/ast.cpp.o.d"
  "CMakeFiles/oosp_query.dir/compiled.cpp.o"
  "CMakeFiles/oosp_query.dir/compiled.cpp.o.d"
  "CMakeFiles/oosp_query.dir/explain.cpp.o"
  "CMakeFiles/oosp_query.dir/explain.cpp.o.d"
  "CMakeFiles/oosp_query.dir/lexer.cpp.o"
  "CMakeFiles/oosp_query.dir/lexer.cpp.o.d"
  "CMakeFiles/oosp_query.dir/parser.cpp.o"
  "CMakeFiles/oosp_query.dir/parser.cpp.o.d"
  "liboosp_query.a"
  "liboosp_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oosp_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
