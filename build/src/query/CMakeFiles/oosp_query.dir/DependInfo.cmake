
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/ast.cpp" "src/query/CMakeFiles/oosp_query.dir/ast.cpp.o" "gcc" "src/query/CMakeFiles/oosp_query.dir/ast.cpp.o.d"
  "/root/repo/src/query/compiled.cpp" "src/query/CMakeFiles/oosp_query.dir/compiled.cpp.o" "gcc" "src/query/CMakeFiles/oosp_query.dir/compiled.cpp.o.d"
  "/root/repo/src/query/explain.cpp" "src/query/CMakeFiles/oosp_query.dir/explain.cpp.o" "gcc" "src/query/CMakeFiles/oosp_query.dir/explain.cpp.o.d"
  "/root/repo/src/query/lexer.cpp" "src/query/CMakeFiles/oosp_query.dir/lexer.cpp.o" "gcc" "src/query/CMakeFiles/oosp_query.dir/lexer.cpp.o.d"
  "/root/repo/src/query/parser.cpp" "src/query/CMakeFiles/oosp_query.dir/parser.cpp.o" "gcc" "src/query/CMakeFiles/oosp_query.dir/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/event/CMakeFiles/oosp_event.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/oosp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
