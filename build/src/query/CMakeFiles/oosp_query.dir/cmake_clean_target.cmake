file(REMOVE_RECURSE
  "liboosp_query.a"
)
