file(REMOVE_RECURSE
  "liboosp_workload.a"
)
