# Empty compiler generated dependencies file for oosp_workload.
# This may be replaced when dependencies are built.
