file(REMOVE_RECURSE
  "CMakeFiles/oosp_workload.dir/intrusion.cpp.o"
  "CMakeFiles/oosp_workload.dir/intrusion.cpp.o.d"
  "CMakeFiles/oosp_workload.dir/rfid.cpp.o"
  "CMakeFiles/oosp_workload.dir/rfid.cpp.o.d"
  "CMakeFiles/oosp_workload.dir/stock.cpp.o"
  "CMakeFiles/oosp_workload.dir/stock.cpp.o.d"
  "CMakeFiles/oosp_workload.dir/synthetic.cpp.o"
  "CMakeFiles/oosp_workload.dir/synthetic.cpp.o.d"
  "liboosp_workload.a"
  "liboosp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oosp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
