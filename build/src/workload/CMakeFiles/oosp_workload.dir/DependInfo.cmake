
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/intrusion.cpp" "src/workload/CMakeFiles/oosp_workload.dir/intrusion.cpp.o" "gcc" "src/workload/CMakeFiles/oosp_workload.dir/intrusion.cpp.o.d"
  "/root/repo/src/workload/rfid.cpp" "src/workload/CMakeFiles/oosp_workload.dir/rfid.cpp.o" "gcc" "src/workload/CMakeFiles/oosp_workload.dir/rfid.cpp.o.d"
  "/root/repo/src/workload/stock.cpp" "src/workload/CMakeFiles/oosp_workload.dir/stock.cpp.o" "gcc" "src/workload/CMakeFiles/oosp_workload.dir/stock.cpp.o.d"
  "/root/repo/src/workload/synthetic.cpp" "src/workload/CMakeFiles/oosp_workload.dir/synthetic.cpp.o" "gcc" "src/workload/CMakeFiles/oosp_workload.dir/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/event/CMakeFiles/oosp_event.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/oosp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
