file(REMOVE_RECURSE
  "CMakeFiles/oosp_common.dir/args.cpp.o"
  "CMakeFiles/oosp_common.dir/args.cpp.o.d"
  "CMakeFiles/oosp_common.dir/interner.cpp.o"
  "CMakeFiles/oosp_common.dir/interner.cpp.o.d"
  "CMakeFiles/oosp_common.dir/rng.cpp.o"
  "CMakeFiles/oosp_common.dir/rng.cpp.o.d"
  "CMakeFiles/oosp_common.dir/stats.cpp.o"
  "CMakeFiles/oosp_common.dir/stats.cpp.o.d"
  "CMakeFiles/oosp_common.dir/table.cpp.o"
  "CMakeFiles/oosp_common.dir/table.cpp.o.d"
  "liboosp_common.a"
  "liboosp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oosp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
