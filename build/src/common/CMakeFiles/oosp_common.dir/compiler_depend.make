# Empty compiler generated dependencies file for oosp_common.
# This may be replaced when dependencies are built.
