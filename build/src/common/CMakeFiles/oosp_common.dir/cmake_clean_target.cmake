file(REMOVE_RECURSE
  "liboosp_common.a"
)
