file(REMOVE_RECURSE
  "CMakeFiles/store_dashboard.dir/store_dashboard.cpp.o"
  "CMakeFiles/store_dashboard.dir/store_dashboard.cpp.o.d"
  "store_dashboard"
  "store_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
