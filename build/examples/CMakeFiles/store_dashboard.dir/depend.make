# Empty dependencies file for store_dashboard.
# This may be replaced when dependencies are built.
