# Empty dependencies file for pattern_cli.
# This may be replaced when dependencies are built.
