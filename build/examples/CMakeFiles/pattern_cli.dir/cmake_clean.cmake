file(REMOVE_RECURSE
  "CMakeFiles/pattern_cli.dir/pattern_cli.cpp.o"
  "CMakeFiles/pattern_cli.dir/pattern_cli.cpp.o.d"
  "pattern_cli"
  "pattern_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
