# Empty compiler generated dependencies file for test_compiled.
# This may be replaced when dependencies are built.
