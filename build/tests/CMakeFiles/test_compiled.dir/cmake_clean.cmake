file(REMOVE_RECURSE
  "CMakeFiles/test_compiled.dir/test_compiled.cpp.o"
  "CMakeFiles/test_compiled.dir/test_compiled.cpp.o.d"
  "test_compiled"
  "test_compiled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compiled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
