# Empty compiler generated dependencies file for test_multi_query.
# This may be replaced when dependencies are built.
