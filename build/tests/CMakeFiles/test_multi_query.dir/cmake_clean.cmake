file(REMOVE_RECURSE
  "CMakeFiles/test_multi_query.dir/test_multi_query.cpp.o"
  "CMakeFiles/test_multi_query.dir/test_multi_query.cpp.o.d"
  "test_multi_query"
  "test_multi_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
