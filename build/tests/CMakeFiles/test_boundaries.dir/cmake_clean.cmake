file(REMOVE_RECURSE
  "CMakeFiles/test_boundaries.dir/test_boundaries.cpp.o"
  "CMakeFiles/test_boundaries.dir/test_boundaries.cpp.o.d"
  "test_boundaries"
  "test_boundaries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_boundaries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
