# Empty dependencies file for test_ooo_engine.
# This may be replaced when dependencies are built.
