file(REMOVE_RECURSE
  "CMakeFiles/test_ooo_engine.dir/test_ooo_engine.cpp.o"
  "CMakeFiles/test_ooo_engine.dir/test_ooo_engine.cpp.o.d"
  "test_ooo_engine"
  "test_ooo_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ooo_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
