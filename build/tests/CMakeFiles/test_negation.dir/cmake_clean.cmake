file(REMOVE_RECURSE
  "CMakeFiles/test_negation.dir/test_negation.cpp.o"
  "CMakeFiles/test_negation.dir/test_negation.cpp.o.d"
  "test_negation"
  "test_negation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_negation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
