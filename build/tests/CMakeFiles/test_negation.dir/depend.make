# Empty dependencies file for test_negation.
# This may be replaced when dependencies are built.
