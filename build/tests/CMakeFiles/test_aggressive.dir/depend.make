# Empty dependencies file for test_aggressive.
# This may be replaced when dependencies are built.
