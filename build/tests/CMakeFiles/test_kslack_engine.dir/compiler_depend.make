# Empty compiler generated dependencies file for test_kslack_engine.
# This may be replaced when dependencies are built.
