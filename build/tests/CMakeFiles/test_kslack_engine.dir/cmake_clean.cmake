file(REMOVE_RECURSE
  "CMakeFiles/test_kslack_engine.dir/test_kslack_engine.cpp.o"
  "CMakeFiles/test_kslack_engine.dir/test_kslack_engine.cpp.o.d"
  "test_kslack_engine"
  "test_kslack_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kslack_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
