file(REMOVE_RECURSE
  "CMakeFiles/test_nfa_engine.dir/test_nfa_engine.cpp.o"
  "CMakeFiles/test_nfa_engine.dir/test_nfa_engine.cpp.o.d"
  "test_nfa_engine"
  "test_nfa_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nfa_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
