# Empty dependencies file for test_nfa_engine.
# This may be replaced when dependencies are built.
