file(REMOVE_RECURSE
  "CMakeFiles/test_outage.dir/test_outage.cpp.o"
  "CMakeFiles/test_outage.dir/test_outage.cpp.o.d"
  "test_outage"
  "test_outage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_outage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
