# Empty compiler generated dependencies file for test_outage.
# This may be replaced when dependencies are built.
