file(REMOVE_RECURSE
  "CMakeFiles/test_inorder_engine.dir/test_inorder_engine.cpp.o"
  "CMakeFiles/test_inorder_engine.dir/test_inorder_engine.cpp.o.d"
  "test_inorder_engine"
  "test_inorder_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inorder_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
