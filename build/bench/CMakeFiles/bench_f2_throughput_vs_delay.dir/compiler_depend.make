# Empty compiler generated dependencies file for bench_f2_throughput_vs_delay.
# This may be replaced when dependencies are built.
