# Empty compiler generated dependencies file for bench_f3_latency.
# This may be replaced when dependencies are built.
