file(REMOVE_RECURSE
  "CMakeFiles/bench_f5_seq_length.dir/bench_f5_seq_length.cpp.o"
  "CMakeFiles/bench_f5_seq_length.dir/bench_f5_seq_length.cpp.o.d"
  "bench_f5_seq_length"
  "bench_f5_seq_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f5_seq_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
