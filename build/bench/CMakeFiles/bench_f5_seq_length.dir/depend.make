# Empty dependencies file for bench_f5_seq_length.
# This may be replaced when dependencies are built.
