# Empty compiler generated dependencies file for bench_a1_purge.
# This may be replaced when dependencies are built.
