file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_purge.dir/bench_a1_purge.cpp.o"
  "CMakeFiles/bench_a1_purge.dir/bench_a1_purge.cpp.o.d"
  "bench_a1_purge"
  "bench_a1_purge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_purge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
