# Empty dependencies file for bench_f7_negation.
# This may be replaced when dependencies are built.
