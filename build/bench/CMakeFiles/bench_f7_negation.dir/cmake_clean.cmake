file(REMOVE_RECURSE
  "CMakeFiles/bench_f7_negation.dir/bench_f7_negation.cpp.o"
  "CMakeFiles/bench_f7_negation.dir/bench_f7_negation.cpp.o.d"
  "bench_f7_negation"
  "bench_f7_negation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f7_negation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
