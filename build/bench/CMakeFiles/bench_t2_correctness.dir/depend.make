# Empty dependencies file for bench_t2_correctness.
# This may be replaced when dependencies are built.
