file(REMOVE_RECURSE
  "CMakeFiles/bench_t2_correctness.dir/bench_t2_correctness.cpp.o"
  "CMakeFiles/bench_t2_correctness.dir/bench_t2_correctness.cpp.o.d"
  "bench_t2_correctness"
  "bench_t2_correctness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t2_correctness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
