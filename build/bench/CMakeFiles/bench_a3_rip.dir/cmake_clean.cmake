file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_rip.dir/bench_a3_rip.cpp.o"
  "CMakeFiles/bench_a3_rip.dir/bench_a3_rip.cpp.o.d"
  "bench_a3_rip"
  "bench_a3_rip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_rip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
