file(REMOVE_RECURSE
  "CMakeFiles/bench_f1_throughput_vs_ooo.dir/bench_f1_throughput_vs_ooo.cpp.o"
  "CMakeFiles/bench_f1_throughput_vs_ooo.dir/bench_f1_throughput_vs_ooo.cpp.o.d"
  "bench_f1_throughput_vs_ooo"
  "bench_f1_throughput_vs_ooo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f1_throughput_vs_ooo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
