# Empty compiler generated dependencies file for bench_f1_throughput_vs_ooo.
# This may be replaced when dependencies are built.
