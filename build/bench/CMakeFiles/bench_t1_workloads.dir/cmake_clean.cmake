file(REMOVE_RECURSE
  "CMakeFiles/bench_t1_workloads.dir/bench_t1_workloads.cpp.o"
  "CMakeFiles/bench_t1_workloads.dir/bench_t1_workloads.cpp.o.d"
  "bench_t1_workloads"
  "bench_t1_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
