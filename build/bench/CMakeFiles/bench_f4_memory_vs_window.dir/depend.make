# Empty dependencies file for bench_f4_memory_vs_window.
# This may be replaced when dependencies are built.
