file(REMOVE_RECURSE
  "CMakeFiles/bench_f4_memory_vs_window.dir/bench_f4_memory_vs_window.cpp.o"
  "CMakeFiles/bench_f4_memory_vs_window.dir/bench_f4_memory_vs_window.cpp.o.d"
  "bench_f4_memory_vs_window"
  "bench_f4_memory_vs_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f4_memory_vs_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
