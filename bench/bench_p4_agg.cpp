// Experiment R-P4 — OOO sliding-window aggregation vs buffer-then-recompute.
//
// Both sides run SPECULATIVE emission: a window result is published the
// moment the stream clock passes the window end (no K-slack holdback),
// and every later event that lands inside an already-published window
// retracts and republishes a corrected result. This is the low-latency
// operating point the aggressive retraction contract exists for — and
// the regime where the aggregation store is the whole game:
//
//   * Baseline ("recompute-kslack"): the conventional fix — keep the
//     window's events in a ts-sorted K-slack buffer and RECOMPUTE the
//     aggregate by scanning every buffered event in [start, end) each
//     time a published window needs correcting. One late event that
//     touches c published windows costs c full window scans.
//
//   * Treatment ("agg-ooo"): the AggEngine's finger-B-tree store — the
//     late insert lands in O(log n), and each corrected window
//     re-aggregates from per-leaf summaries (two boundary chunks plus
//     O(log n) summary merges) instead of re-reading every event.
//
// Fixed: single-type workload, `AGG sum(T0.val) OVER 8192 SLIDE 512 BY
// key`, 1 key, mean gap 1 (~8k events per window), every event
// delayed U[0, max_delay]. Sweeps max_delay over {0, ¼, ½, 1}·window;
// correction traffic — and with it the recompute bill — scales with the
// delay, which is exactly the claim under test.
//
// Both sides implement identical semantics (same registration, seal and
// speculative agendas, same correction rule); the `windows` counters
// must agree — a run where they diverge is measuring different work.
//
// Reported counters:
//   ev/s      end-to-end events per second
//   windows   window results published (first emissions + corrections)
//   speedup   agg-ooo ev/s relative to the recompute baseline at the
//             same delay (reported on the treatment runs)
//
// Short mode for CI: OOSP_BENCH_SHORT=1 shrinks the stream ~5x.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "engine/engines.hpp"

namespace {

using namespace oosp;
using benchutil::Scenario;

constexpr Timestamp kWindow = 8192;
constexpr Timestamp kSlide = 512;

bool short_mode() {
  const char* v = std::getenv("OOSP_BENCH_SHORT");
  return v != nullptr && *v != '\0' && *v != '0';
}

// Delay fractions of the window, labelled as such ("delay:0.5w").
const std::pair<const char*, Timestamp> kDelays[] = {
    {"0w", 0},
    {"0.25w", kWindow / 4},
    {"0.5w", kWindow / 2},
    {"1w", kWindow},
};

const Scenario& scenario(Timestamp delay) {
  static std::map<Timestamp, Scenario> cache;
  auto it = cache.find(delay);
  if (it == cache.end()) {
    SyntheticConfig cfg;
    cfg.num_events = short_mode() ? 24'000 : 120'000;
    cfg.num_types = 1;
    cfg.key_cardinality = 1;
    cfg.mean_gap = 1;
    cfg.seed = 4004;
    it = cache
             .emplace(delay, benchutil::make_scenario(
                                 cfg,
                                 "AGG sum(T0.val) OVER " + std::to_string(kWindow) +
                                     " SLIDE " + std::to_string(kSlide) + " BY key",
                                 1.0, delay))
             .first;
  }
  return it->second;
}

std::int64_t floor_div(std::int64_t a, std::int64_t b) {
  const std::int64_t q = a / b, r = a % b;
  return (r != 0 && ((r < 0) != (b < 0))) ? q - 1 : q;
}

// The buffer-then-recompute baseline. Same clock, registration, seal and
// speculative emission logic as the speculative AggEngine; the only
// difference is the store — a flat ts-sorted buffer per key, with every
// (re)computation a full scan of the window's events.
class KSlackRecompute {
 public:
  KSlackRecompute(const AggSpec& spec, Timestamp window, Timestamp slack)
      : key_slot_(spec.key_slot),
        value_slot_(spec.value_slot),
        window_(window),
        slide_(spec.slide),
        slack_(slack) {}

  void on_event(const Event& e) {
    clock_ = std::max(clock_, e.ts);
    const Timestamp wm = clock_ - slack_ - 1;
    const std::int64_t key = e.attrs[key_slot_].as_int();
    KeyBuf& kb = keys_[key];
    // Register every still-open window this event belongs to.
    const std::int64_t hi = floor_div(e.ts, slide_);
    const std::int64_t lo = floor_div(e.ts - window_, slide_) + 1;
    bool any_open = false;
    for (std::int64_t i = lo; i <= hi; ++i) {
      if (i * slide_ + window_ - 1 <= wm) continue;  // sealed: final already
      any_open = true;
      const auto [it, inserted] = kb.windows.try_emplace(i, false);
      if (inserted) {
        seal_agenda_.push(Due{i * slide_ + window_, key, i});
        spec_agenda_.push(Due{i * slide_ + window_, key, i});
      }
    }
    if (any_open) {
      // Insert in ts order; arrivals are K-bounded so the slot is near
      // the tail.
      Entry entry{e.ts, e.attrs[value_slot_].as_int()};
      const auto at = std::upper_bound(
          kb.buf.begin() + static_cast<std::ptrdiff_t>(kb.head), kb.buf.end(),
          entry, [](const Entry& a, const Entry& b) { return a.ts < b.ts; });
      kb.buf.insert(at, entry);
      // Correct every already-published window the event landed in: THE
      // recompute — drop the stale result and rescan the whole window.
      for (std::int64_t i = lo; i <= hi; ++i) {
        const auto it = kb.windows.find(i);
        if (it != kb.windows.end() && it->second) publish(kb, i);
      }
    }
    // Seal pass: finalize and drop windows behind the watermark.
    while (!seal_agenda_.empty() && seal_agenda_.top().end - 1 <= wm) {
      const Due due = seal_agenda_.top();
      seal_agenda_.pop();
      KeyBuf& owner = keys_[due.key];
      const auto it = owner.windows.find(due.index);
      if (it == owner.windows.end()) continue;
      if (!it->second) publish(owner, due.index);
      owner.windows.erase(it);
    }
    // Speculative pass: publish windows the clock has passed.
    while (!spec_agenda_.empty() && spec_agenda_.top().end <= clock_) {
      const Due due = spec_agenda_.top();
      spec_agenda_.pop();
      KeyBuf& owner = keys_[due.key];
      const auto it = owner.windows.find(due.index);
      if (it == owner.windows.end() || it->second) continue;
      it->second = true;
      publish(owner, due.index);
    }
    if (++since_purge_ >= 64) {
      since_purge_ = 0;
      purge(wm);
    }
  }

  void finish() {
    while (!seal_agenda_.empty()) {
      const Due due = seal_agenda_.top();
      seal_agenda_.pop();
      KeyBuf& owner = keys_[due.key];
      const auto it = owner.windows.find(due.index);
      if (it == owner.windows.end()) continue;
      if (!it->second) publish(owner, due.index);
      owner.windows.erase(it);
    }
  }

  std::uint64_t windows_published() const { return published_; }
  std::int64_t checksum() const { return checksum_; }

 private:
  struct Entry {
    Timestamp ts;
    std::int64_t val;
  };
  struct KeyBuf {
    std::vector<Entry> buf;  // ts-sorted from head
    std::size_t head = 0;
    std::map<std::int64_t, bool> windows;  // index -> published?
  };
  struct Due {
    Timestamp end;
    std::int64_t key;
    std::int64_t index;
  };
  struct DueLater {
    bool operator()(const Due& a, const Due& b) const { return a.end > b.end; }
  };

  void publish(const KeyBuf& kb, std::int64_t index) {
    const Timestamp start = index * slide_;
    const Timestamp end = start + window_;
    std::int64_t sum = 0;
    const auto from = std::lower_bound(
        kb.buf.begin() + static_cast<std::ptrdiff_t>(kb.head), kb.buf.end(), start,
        [](const Entry& a, Timestamp t) { return a.ts < t; });
    for (auto it = from; it != kb.buf.end() && it->ts < end; ++it) sum += it->val;
    checksum_ += sum;
    ++published_;
  }

  void purge(Timestamp wm) {
    const Timestamp bound = wm - window_ + 2;
    for (auto& [key, kb] : keys_) {
      while (kb.head < kb.buf.size() && kb.buf[kb.head].ts < bound) ++kb.head;
      if (kb.head > kb.buf.size() / 2) {
        kb.buf.erase(kb.buf.begin(),
                     kb.buf.begin() + static_cast<std::ptrdiff_t>(kb.head));
        kb.head = 0;
      }
    }
  }

  std::size_t key_slot_, value_slot_;
  Timestamp window_, slide_, slack_;
  Timestamp clock_ = 0;
  std::unordered_map<std::int64_t, KeyBuf> keys_;
  std::priority_queue<Due, std::vector<Due>, DueLater> seal_agenda_;
  std::priority_queue<Due, std::vector<Due>, DueLater> spec_agenda_;
  std::size_t since_purge_ = 0;
  std::uint64_t published_ = 0;
  std::int64_t checksum_ = 0;
};

double& baseline_evps(Timestamp delay) {
  static std::map<Timestamp, double> evps;
  return evps[delay];
}

void run_baseline(benchmark::State& state, Timestamp delay) {
  const Scenario& sc = scenario(delay);
  std::uint64_t windows = 0;
  double evps = 0.0;
  for (auto _ : state) {
    KSlackRecompute baseline(sc.query->agg(), sc.query->window(), sc.slack);
    const auto t0 = std::chrono::steady_clock::now();
    for (const Event& e : sc.arrivals) baseline.on_event(e);
    baseline.finish();
    const auto t1 = std::chrono::steady_clock::now();
    windows = baseline.windows_published();
    benchmark::DoNotOptimize(baseline.checksum());
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    evps = secs > 0.0 ? static_cast<double>(sc.arrivals.size()) / secs : 0.0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sc.arrivals.size()));
  state.counters["ev/s"] = benchmark::Counter(evps);
  state.counters["windows"] = benchmark::Counter(static_cast<double>(windows));
  baseline_evps(delay) = evps;
}

void run_treatment(benchmark::State& state, Timestamp delay) {
  const Scenario& sc = scenario(delay);
  std::uint64_t windows = 0;
  double evps = 0.0;
  for (auto _ : state) {
    EngineOptions options;
    options.slack = sc.slack;
    options.aggressive_negation = true;  // speculative emission + retraction
    const auto sink = std::make_shared<NullSink>();
    const auto engine = make_engine(EngineKind::kAgg, sc.query, sink, options);
    const auto t0 = std::chrono::steady_clock::now();
    for (const Event& e : sc.arrivals) engine->on_event(e);
    engine->finish();
    const auto t1 = std::chrono::steady_clock::now();
    windows = sink->count();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    evps = secs > 0.0 ? static_cast<double>(sc.arrivals.size()) / secs : 0.0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sc.arrivals.size()));
  state.counters["ev/s"] = benchmark::Counter(evps);
  state.counters["windows"] = benchmark::Counter(static_cast<double>(windows));
  if (baseline_evps(delay) > 0.0)
    state.counters["speedup"] = benchmark::Counter(evps / baseline_evps(delay));
}

void register_benchmarks() {
  // Baseline first so the treatment can report its speedup; benchmarks
  // execute in registration order.
  for (const auto& [label, delay] : kDelays) {
    benchmark::RegisterBenchmark(
        ("P4/recompute-kslack/delay:" + std::string(label)).c_str(),
        [delay = delay](benchmark::State& state) { run_baseline(state, delay); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(2);
    benchmark::RegisterBenchmark(
        ("P4/agg-ooo/delay:" + std::string(label)).c_str(),
        [delay = delay](benchmark::State& state) { run_treatment(state, delay); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(2);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_benchmarks();
  return oosp::benchutil::run_benchmark_main(argc, argv);
}
