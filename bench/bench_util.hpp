// Shared scaffolding for the per-experiment benchmark binaries.
//
// Every figure benchmark follows the same shape: build a deterministic
// disordered arrival stream, run one engine configuration per registered
// benchmark, and expose the paper's metrics as counters —
//   ev/s        wall-clock throughput (events per second)
//   peak_state  EngineStats::footprint_peak (instances + buffers + pending)
//   matches     results emitted
//   delay_avg   mean detection delay in stream time
//   delay_max   max detection delay in stream time
#pragma once

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "query/compiled.hpp"
#include "runtime/driver.hpp"
#include "stream/disorder.hpp"
#include "workload/synthetic.hpp"

namespace oosp::benchutil {

struct Scenario {
  std::shared_ptr<SyntheticWorkload> workload;
  std::shared_ptr<CompiledQuery> query;
  std::vector<Event> arrivals;
  Timestamp slack = 0;
  DisorderStats disorder;
};

// Builds a synthetic scenario: ts-ordered generation, then disorder
// injection with `ooo_fraction` of events delayed U[0, max_delay].
inline Scenario make_scenario(SyntheticConfig cfg, const std::string& query_text,
                              double ooo_fraction, Timestamp max_delay,
                              std::uint64_t disorder_seed = 97) {
  Scenario sc;
  sc.workload = std::make_shared<SyntheticWorkload>(cfg);
  const auto ordered = sc.workload->generate();
  DisorderInjector inj(max_delay > 0 ? LatencyModel::uniform(max_delay)
                                     : LatencyModel::none(),
                       ooo_fraction, disorder_seed);
  sc.arrivals = inj.deliver(ordered);
  sc.slack = inj.slack_bound();
  sc.disorder = DisorderInjector::measure(sc.arrivals);
  sc.query = std::make_shared<CompiledQuery>(
      compile_query(query_text, sc.workload->registry()));
  return sc;
}

// Runs `kind` over the scenario once per benchmark iteration and reports
// the standard counter set.
inline void run_case(benchmark::State& state, const Scenario& sc, EngineKind kind,
                     EngineOptions options) {
  options.slack = sc.slack;
  RunResult last;
  for (auto _ : state) {
    DriverConfig cfg;
    cfg.kind = kind;
    cfg.options = options;
    last = run_stream(*sc.query, sc.arrivals, cfg);
    benchmark::DoNotOptimize(last.matches);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sc.arrivals.size()));
  state.counters["ev/s"] = benchmark::Counter(last.events_per_second);
  state.counters["peak_state"] =
      benchmark::Counter(static_cast<double>(last.stats.footprint_peak));
  state.counters["matches"] = benchmark::Counter(static_cast<double>(last.matches));
  state.counters["delay_avg"] = benchmark::Counter(last.delay.mean());
  state.counters["delay_max"] = benchmark::Counter(last.delay.max());
  state.counters["ooo_pct"] = benchmark::Counter(sc.disorder.ooo_percent());
  if (last.retractions)
    state.counters["retractions"] =
        benchmark::Counter(static_cast<double>(last.retractions));
}

inline int run_benchmark_main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace oosp::benchutil
