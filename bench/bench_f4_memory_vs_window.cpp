// Experiment R-F4 — peak engine state vs window size W.
//
// Fixed: 3-step keyed query, 10% disorder with max delay 500, 60k events.
// Sweeps W over {500, 1000, 2000, 4000, 8000} ticks. Both engines hold
// W(+K) worth of instances; the buffered engine additionally parks a
// K-sized reorder heap, a constant offset visible at every W. peak_state
// counts instances + buffered events + pending matches.
#include <map>

#include "bench_util.hpp"

namespace {

using namespace oosp;
using benchutil::Scenario;

const Scenario& scenario() {
  static Scenario sc = [] {
    SyntheticConfig cfg;
    cfg.num_events = 60'000;
    cfg.num_types = 3;
    cfg.key_cardinality = 50;
    cfg.mean_gap = 5;
    cfg.seed = 1004;
    // Query text is per-benchmark (window varies); build with a
    // placeholder and recompile below.
    SyntheticWorkload proto(cfg);
    return benchutil::make_scenario(cfg, proto.seq_query(3, true, 500), 0.10, 500);
  }();
  return sc;
}

const CompiledQuery& query_for_window(Timestamp w) {
  static std::map<Timestamp, CompiledQuery> cache;
  auto it = cache.find(w);
  if (it == cache.end()) {
    const Scenario& sc = scenario();
    it = cache
             .emplace(w, compile_query(sc.workload->seq_query(3, true, w),
                                       sc.workload->registry()))
             .first;
  }
  return it->second;
}

void run_window_case(benchmark::State& state, EngineKind kind, Timestamp w) {
  const Scenario& sc = scenario();
  const CompiledQuery& q = query_for_window(w);
  RunResult last;
  for (auto _ : state) {
    DriverConfig cfg;
    cfg.kind = kind;
    cfg.options.slack = sc.slack;
    last = run_stream(q, sc.arrivals, cfg);
    benchmark::DoNotOptimize(last.matches);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sc.arrivals.size()));
  state.counters["ev/s"] = benchmark::Counter(last.events_per_second);
  state.counters["peak_state"] =
      benchmark::Counter(static_cast<double>(last.stats.footprint_peak));
  state.counters["matches"] = benchmark::Counter(static_cast<double>(last.matches));
}

void register_benchmarks() {
  const std::pair<const char*, EngineKind> engines[] = {
      {"ooo-native", EngineKind::kOoo},
      {"kslack+inorder", EngineKind::kKSlackInOrder},
  };
  for (const auto& [name, kind] : engines) {
    for (const Timestamp w : {500, 1'000, 2'000, 4'000, 8'000}) {
      benchmark::RegisterBenchmark(
          ("F4/" + std::string(name) + "/window:" + std::to_string(w)).c_str(),
          [kind = kind, w](benchmark::State& state) { run_window_case(state, kind, w); })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(2);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_benchmarks();
  return oosp::benchutil::run_benchmark_main(argc, argv);
}
