// Experiment R-T1 — application workload summary table.
//
// One row per application workload (RFID retail, stock ticks, intrusion
// detection) plus the synthetic driver: event counts, type mix, effective
// event rate, the canonical query, and the match count the native OOO
// engine produces under a representative disorder level (exactness
// against the oracle for these exact runs is asserted by the test suite;
// here the row reports the workload's scale).
#include <iostream>
#include <map>

#include "common/table.hpp"
#include "runtime/driver.hpp"
#include "stream/disorder.hpp"
#include "workload/intrusion.hpp"
#include "workload/rfid.hpp"
#include "workload/stock.hpp"
#include "workload/synthetic.hpp"

namespace oosp {
namespace {

struct Row {
  std::string name;
  std::vector<Event> ordered;
  const TypeRegistry* registry;
  std::string query;
};

void emit(Table& t, const Row& row, double ooo_fraction, Timestamp max_delay) {
  DisorderInjector inj(LatencyModel::uniform(max_delay), ooo_fraction, 31);
  const auto arrivals = inj.deliver(row.ordered);
  const auto dstats = DisorderInjector::measure(arrivals);
  const CompiledQuery q = compile_query(row.query, *row.registry);

  DriverConfig cfg;
  cfg.kind = EngineKind::kOoo;
  cfg.options.slack = inj.slack_bound();
  const RunResult r = run_stream(q, arrivals, cfg);

  const double span = static_cast<double>(arrivals.back().ts - arrivals.front().ts);
  t.add_row({row.name, Table::cell(static_cast<std::uint64_t>(arrivals.size())),
             Table::cell(span > 0 ? static_cast<double>(arrivals.size()) / span : 0.0, 3),
             Table::cell(dstats.ooo_percent(), 1),
             Table::cell(static_cast<std::uint64_t>(dstats.max_lateness)),
             Table::cell(r.matches), Table::cell(r.events_per_second / 1e6, 2),
             Table::cell(static_cast<std::uint64_t>(r.stats.footprint_peak))});
}

}  // namespace
}  // namespace oosp

int main() {
  using namespace oosp;
  std::cout << "R-T1: application workload summary (engine: ooo-native, 10% disorder)\n";
  Table t({"workload", "events", "events/tick", "ooo%", "max_late", "matches",
           "Mev/s", "peak_state"});

  RfidWorkload rfid({.num_items = 15'000, .seed = 41});
  emit(t, {"rfid-shoplifting", rfid.generate(), &rfid.registry(),
           rfid.shoplifting_query(600)},
       0.10, 150);

  StockWorkload stock({.num_ticks = 40'000, .num_symbols = 40, .seed = 42});
  emit(t, {"stock-vshape", stock.generate(), &stock.registry(), stock.vshape_query(60)},
       0.10, 100);

  IntrusionWorkload intr({.num_events = 40'000, .num_ips = 800, .seed = 43});
  emit(t, {"intrusion-bruteforce", intr.generate(), &intr.registry(),
           intr.bruteforce_query(3, 300)},
       0.10, 120);

  SyntheticWorkload synth({.num_events = 40'000, .num_types = 3, .key_cardinality = 50,
                           .mean_gap = 5, .seed = 44});
  const std::string q = synth.seq_query(3, true, 2'000);
  emit(t, {"synthetic-keyed3", synth.generate(), &synth.registry(), q}, 0.10, 500);

  t.print(std::cout);
  return 0;
}
