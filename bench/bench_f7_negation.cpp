// Experiment R-F7 — negation queries under disorder.
//
// Query: SEQ(T0 a, !T1 b, T2 c, T3 d) keyed, W = 1500. Sweeps disorder
// over {0, 5, 20}% with max delay 400 (K). A result with a negated step
// cannot be emitted before its negation interval (a.ts, c.ts) seals —
// but the interval here is INTERIOR: by the time the final step `d`
// arrives the clock has usually already passed c.ts + K, so the native
// engine emits most results immediately and its delay_avg sits well
// below K. The buffered engine still pays the full K on top of every
// result. (With the negated step directly before the last positive step
// the two engines converge — sealing then costs exactly K; that regime
// is covered by the conservative/aggressive discussion in DESIGN.md.)
#include <map>

#include "bench_util.hpp"

namespace {

using namespace oosp;
using benchutil::Scenario;

const Scenario& scenario(int pct) {
  static std::map<int, Scenario> cache;
  auto it = cache.find(pct);
  if (it == cache.end()) {
    SyntheticConfig cfg;
    cfg.num_events = 50'000;
    cfg.num_types = 4;
    cfg.key_cardinality = 50;
    cfg.mean_gap = 5;
    cfg.seed = 1007;
    const std::string query =
        "PATTERN SEQ(T0 a, !T1 b, T2 c, T3 d) "
        "WHERE a.key == c.key AND c.key == d.key AND a.key == b.key WITHIN 1500";
    it = cache.emplace(pct, benchutil::make_scenario(cfg, query, pct / 100.0, 400))
             .first;
  }
  return it->second;
}

void register_benchmarks() {
  struct Row {
    const char* name;
    EngineKind kind;
    bool aggressive;
  };
  const Row engines[] = {
      {"ooo-conservative", EngineKind::kOoo, false},
      {"ooo-aggressive", EngineKind::kOoo, true},
      {"kslack+inorder", EngineKind::kKSlackInOrder, false},
  };
  for (const auto& row : engines) {
    for (const int pct : {0, 5, 20}) {
      benchmark::RegisterBenchmark(
          ("F7/" + std::string(row.name) + "/ooo_pct:" + std::to_string(pct)).c_str(),
          [row, pct](benchmark::State& state) {
            EngineOptions opt;
            opt.aggressive_negation = row.aggressive;
            benchutil::run_case(state, scenario(pct), row.kind, opt);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(2);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_benchmarks();
  return oosp::benchutil::run_benchmark_main(argc, argv);
}
