// Experiment R-P2 — batched ingestion throughput (Session::push_batch).
//
// Fixed: a single-shard kOoo session (inline MultiQueryRunner, no
// worker threads) over a keyed 2-step query with high key cardinality,
// W = 1000, 10% disorder — the many-mostly-idle-keys regime, where the
// per-event path spends its time on bookkeeping that rides on every
// arrival (routing, virtual dispatch, pending scan, and above all the
// purge cadence, which walks the whole shard map every period) rather
// than on construction. Sweeps the ingestion batch size; batch:1
// drives the per-event on_event path and is the baseline the speedup
// counter is relative to. Batching collapses purge passes that nothing
// observes (no resolution due between consecutive cadence marks) into
// the deepest one, which is where most of the win comes from.
//
// Batching is semantically invisible (test_batch pins bit-identical
// output, including recovery at batch boundaries); this benchmark
// measures what the amortization buys in wall-clock terms.
//
// Reported counters:
//   ev/s      end-to-end events per second (Session ingest + engines)
//   matches   matches delivered to the sink
//   speedup   ev/s relative to the batch:1 run of the same binary
//
// Short mode for CI soak: OOSP_BENCH_SHORT=1 shrinks the stream ~8x so
// the sweep finishes in seconds while keeping the shape comparable.
#include <chrono>
#include <cstdlib>
#include <span>

#include "bench_util.hpp"
#include "runtime/session.hpp"

namespace {

using namespace oosp;
using benchutil::Scenario;

bool short_mode() {
  const char* v = std::getenv("OOSP_BENCH_SHORT");
  return v != nullptr && *v != '\0' && *v != '0';
}

const Scenario& scenario() {
  static const Scenario sc = [] {
    SyntheticConfig cfg;
    cfg.num_events = short_mode() ? 25'000 : 200'000;
    cfg.num_types = 3;
    cfg.key_cardinality = 8'192;
    cfg.mean_gap = 1;
    cfg.seed = 2002;
    SyntheticWorkload proto(cfg);
    return benchutil::make_scenario(cfg, proto.seq_query(2, true, 1'000), 0.10, 300);
  }();
  return sc;
}

double& baseline_evps() {
  static double evps = 0.0;
  return evps;
}

void run_batched(benchmark::State& state, std::size_t batch) {
  const Scenario& sc = scenario();
  std::uint64_t matches = 0;
  double evps = 0.0;
  for (auto _ : state) {
    const auto sink = std::make_shared<CollectingTaggedSink>();
    Session session(sc.workload->registry(),
                    SessionConfig{}
                        .engine(EngineKind::kOoo)
                        .slack(sc.slack)
                        .shards(1)
                        .metrics(false)
                        .query(sc.query->text()),
                    sink);
    const auto t0 = std::chrono::steady_clock::now();
    if (batch <= 1) {
      for (const Event& e : sc.arrivals) session.push(e);
    } else {
      for (std::size_t i = 0; i < sc.arrivals.size(); i += batch) {
        const std::size_t n = std::min(batch, sc.arrivals.size() - i);
        session.push_batch(std::span<const Event>(sc.arrivals.data() + i, n));
      }
    }
    session.finish();
    const auto t1 = std::chrono::steady_clock::now();
    matches = sink->matches().size();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    evps = secs > 0.0 ? static_cast<double>(sc.arrivals.size()) / secs : 0.0;
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sc.arrivals.size()));
  state.counters["ev/s"] = benchmark::Counter(evps);
  state.counters["matches"] = benchmark::Counter(static_cast<double>(matches));
  if (batch <= 1) baseline_evps() = evps;
  if (baseline_evps() > 0.0)
    state.counters["speedup"] = benchmark::Counter(evps / baseline_evps());
}

void register_benchmarks() {
  for (const std::size_t batch : {1, 16, 64, 256, 1024}) {
    benchmark::RegisterBenchmark(
        ("P2/session-ooo/batch:" + std::to_string(batch)).c_str(),
        [batch](benchmark::State& state) { run_batched(state, batch); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(3);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_benchmarks();
  return oosp::benchutil::run_benchmark_main(argc, argv);
}
