// Experiment R-R1 — recall under slack-contract violations: late-event
// policies and adaptive K-slack.
//
// A calm stream (delays within the provisioned K) is hit by a latency
// spike that ramps past K and subsides. Every spike event past the safe
// horizon is a contract violation; the sweep raises the spike ceiling to
// raise the injected violation rate. Each row scores one safety-net
// configuration against the oracle over what actually arrived:
//   fixed+admit       historical behavior — violators processed against
//                     already-purged state; recall quietly decays
//   fixed+drop        violators discarded with accounting; recall decays
//                     the same way but the loss is visible in `dropped`
//   fixed+quarantine  like drop, but the violators are recoverable via
//                     drain_quarantine() for audit or replay
//   adaptive+drop     the estimator grows K ahead of the ramp (and
//                     shrinks it after), so violations barely happen —
//                     recall holds >= 0.99 across the whole sweep
#include <algorithm>
#include <iostream>
#include <span>
#include <vector>

#include "common/table.hpp"
#include "engine/oracle/oracle.hpp"
#include "runtime/driver.hpp"
#include "runtime/verify.hpp"
#include "stream/disorder.hpp"
#include "workload/synthetic.hpp"

namespace oosp {
namespace {

constexpr Timestamp kCalmDelay = 15;   // within the provisioned K
constexpr Timestamp kProvisionedK = 20;

// Calm / ramping-spike / calm delivery: the middle 20% of the stream is
// delayed with a ceiling that ramps x1.5 per sub-segment up to
// `spike_max`, so the lateness signal grows the way a congesting link's
// would (a cliff-edge jump is unrecoverable for ANY online policy — by
// the time the first violator arrives the horizon has already passed).
std::vector<Event> deliver_with_spike(std::span<const Event> ordered,
                                      Timestamp spike_max, std::uint64_t seed) {
  std::vector<Timestamp> ceilings;
  for (Timestamp d = kCalmDelay + 7; d < spike_max; d = d * 3 / 2)
    ceilings.push_back(d);
  ceilings.push_back(spike_max);

  const std::size_t n = ordered.size();
  const std::size_t spike_begin = n * 2 / 5;
  const std::size_t spike_end = n * 3 / 5;
  struct Slice {
    std::size_t begin, end;
    Timestamp ceiling;
  };
  std::vector<Slice> slices;
  slices.push_back({0, spike_begin, kCalmDelay});
  const std::size_t spike_len = spike_end - spike_begin;
  for (std::size_t i = 0; i < ceilings.size(); ++i) {
    const std::size_t b = spike_begin + spike_len * i / ceilings.size();
    const std::size_t e = spike_begin + spike_len * (i + 1) / ceilings.size();
    slices.push_back({b, e, ceilings[i]});
  }
  slices.push_back({spike_end, n, kCalmDelay});

  std::vector<Event> arrivals;
  arrivals.reserve(n);
  std::uint64_t stage = 0;
  for (const Slice& s : slices) {
    if (s.begin >= s.end) continue;
    DisorderInjector inj(LatencyModel::uniform(s.ceiling), 0.5, seed + stage++);
    const auto part = inj.deliver(ordered.subspan(s.begin, s.end - s.begin));
    arrivals.insert(arrivals.end(), part.begin(), part.end());
  }
  for (std::size_t i = 0; i < arrivals.size(); ++i)
    arrivals[i].arrival = static_cast<ArrivalSeq>(i);
  return arrivals;
}

EngineOptions safety_net(LatePolicy policy, bool adaptive) {
  EngineOptions o;
  o.slack = kProvisionedK;
  o.late_policy = policy;
  o.adaptive_slack = adaptive;
  o.purge_period = 1;  // eager purge: state dies exactly at the horizon
  o.slack_estimator.headroom = 1.5;
  o.slack_estimator.window = 512;
  o.slack_estimator.refresh_period = 64;
  o.slack_estimator.min_slack = kProvisionedK;
  return o;
}

void run_rows(Table& t) {
  SyntheticConfig cfg;
  cfg.num_events = 12'000;
  cfg.num_types = 3;
  cfg.key_cardinality = 30;
  cfg.mean_gap = 5;
  cfg.seed = 3001;
  SyntheticWorkload wl(cfg);
  const auto ordered = wl.generate();
  const CompiledQuery q = compile_query(wl.seq_query(3, true, 300), wl.registry());

  for (const Timestamp spike : {Timestamp{40}, Timestamp{80}, Timestamp{160},
                                Timestamp{320}, Timestamp{640}}) {
    const auto arrivals = deliver_with_spike(ordered, spike, 83);
    const auto expected = oracle_keys(q, arrivals);

    struct Config {
      const char* name;
      LatePolicy policy;
      bool adaptive;
    };
    const Config configs[] = {
        {"fixed+admit", LatePolicy::kAdmit, false},
        {"fixed+drop", LatePolicy::kDrop, false},
        {"fixed+quarantine", LatePolicy::kQuarantine, false},
        {"adaptive+drop", LatePolicy::kDrop, true},
    };
    for (const Config& c : configs) {
      DriverConfig dcfg;
      dcfg.kind = EngineKind::kOoo;
      dcfg.options = safety_net(c.policy, c.adaptive);
      dcfg.collect_matches = true;
      const RunResult r = run_stream(q, arrivals, dcfg);
      std::vector<MatchKey> got;
      got.reserve(r.collected.size());
      for (const Match& m : r.collected) got.push_back(match_key(m));
      std::sort(got.begin(), got.end());
      const VerifyResult v = compare_keys(expected, got);
      t.add_row({std::to_string(spike), c.name,
                 Table::cell(static_cast<std::uint64_t>(r.stats.contract_violations)),
                 Table::cell(static_cast<std::uint64_t>(r.stats.events_dropped_late)),
                 Table::cell(static_cast<std::uint64_t>(r.stats.events_quarantined)),
                 Table::cell(static_cast<std::uint64_t>(
                     static_cast<std::uint64_t>(r.stats.effective_slack))),
                 Table::cell(static_cast<std::uint64_t>(v.expected)),
                 Table::cell(static_cast<std::uint64_t>(v.produced)),
                 Table::cell(v.recall(), 3), Table::cell(v.precision(), 3)});
    }
  }
}

}  // namespace
}  // namespace oosp

int main() {
  using namespace oosp;
  std::cout << "R-R1: recall under slack-contract violations "
               "(provisioned K=20, calm delay<=15, ramped latency spike; "
               "SEQ 3-step keyed, W=300)\n";
  Table t({"spike", "config", "viol", "dropped", "quar", "K_end", "expected",
           "produced", "recall", "precision"});
  run_rows(t);
  t.print(std::cout);
  return 0;
}
