// Experiment R-R3 — overload control: recall vs offered load per
// shedding policy, and the producer-latency bound each policy buys.
//
// The harness pins the consumer at a fixed per-event cost (busy-wait
// delay hook on every shard worker) and paces the producer at a
// multiple of the fleet's sustainable drain rate: load:1x is roughly
// balanced, load:2x and load:4x are sustained overload. The offered
// stream is bimodally late — most events arrive perfectly fresh, ~35%
// arrive 400 stream-time units behind the high-water mark — and the
// engines run slack 150 with LatePolicy::kDrop, so the stragglers can
// never contribute matches even when admitted. That is precisely the
// structure quality-driven shedding exploits:
//
//   block            sheds nothing; the producer is paced by the
//                    consumer (backpressure) — the recall ceiling and
//                    the latency floor of nothing-bounded.
//   shed-newest      bounded producer latency, quality-blind losses:
//                    recall collapses with offered load.
//   shed-by-lateness bounded producer latency, losses priced by the
//                    lateness distribution: sheds the already-doomed
//                    stragglers first, so recall stays near the block
//                    ceiling until genuine fresh capacity runs out.
//   fail             refuses instead of degrading: bounded wait, then
//                    OverloadError (with a live consumer the bounded
//                    wait always finds room, so it behaves like paced
//                    backpressure here).
//
// Per-case counters: p50/p99/max producer push latency (us), offered
// ev/s, sheds (+ forced sheds), recall vs the oracle over the FULL
// offered stream, matches. CI floor check (fault-soak job): at the
// highest load, recall(shed-by-lateness) >= recall(shed-newest).
//
// Short mode for CI soak: OOSP_BENCH_SHORT=1 shrinks the stream so the
// binary finishes in seconds under sanitizers.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <vector>

#include "engine/oracle/oracle.hpp"
#include "runtime/overload.hpp"
#include "runtime/session.hpp"
#include "runtime/verify.hpp"

namespace {

using namespace oosp;

bool short_mode() {
  const char* v = std::getenv("OOSP_BENCH_SHORT");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

constexpr std::size_t kShards = 2;
constexpr const char* kQuery = "PATTERN SEQ(A a, B b) WHERE a.k == b.k WITHIN 50";
constexpr Timestamp kLateBy = 400;
// Per-event consumer cost; the sustainable fleet rate is kShards events
// per kConsumerCost.
constexpr std::chrono::microseconds kConsumerCost{30};

std::size_t stream_size() { return short_mode() ? 6'000 : 40'000; }

// Busy-wait: sleep_for's wakeup overhead dwarfs microsecond pacing.
void spin_for(std::chrono::steady_clock::duration d) {
  const auto until = std::chrono::steady_clock::now() + d;
  while (std::chrono::steady_clock::now() < until) {
  }
}

TypeRegistry make_registry() {
  TypeRegistry reg;
  const Schema s({{"k", ValueType::kInt}, {"v", ValueType::kInt}});
  reg.register_type("A", s);
  reg.register_type("B", s);
  return reg;
}

// Bimodal arrival stream: A/B pairs keyed over 64 partitions, stream
// time advancing 2 per arrival, ~35% of events 400 late.
std::vector<Event> make_offered(const TypeRegistry& reg, std::size_t n) {
  std::vector<Event> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Timestamp base = static_cast<Timestamp>(i) * 2;
    const bool late = (i % 20) < 7 && base >= kLateBy;
    Event e;
    e.type = reg.lookup((i % 2 == 0) ? "A" : "B");
    e.id = static_cast<EventId>(i);
    e.ts = late ? base - kLateBy : base;
    e.attrs = {Value(static_cast<std::int64_t>((i / 2) % 64)), Value(0)};
    out.push_back(std::move(e));
  }
  return out;
}

struct Fixture {
  TypeRegistry reg = make_registry();
  std::vector<Event> offered;
  std::vector<MatchKey> oracle;  // sorted, over the full offered stream
};

const Fixture& fixture() {
  static const Fixture fx = [] {
    Fixture f;
    f.offered = make_offered(f.reg, stream_size());
    const CompiledQuery q = compile_query(kQuery, f.reg);
    f.oracle = oracle_keys(q, f.offered);
    std::sort(f.oracle.begin(), f.oracle.end());
    return f;
  }();
  return fx;
}

void run_case(benchmark::State& state, OverloadPolicy policy, int load_mult) {
  const Fixture& fx = fixture();
  OverloadConfig cfg;
  cfg.policy = policy;
  cfg.fresh_wait = std::chrono::microseconds(5'000);
  cfg.fail_deadline = std::chrono::milliseconds(100);
  // ~35% stragglers: the 0.6-quantile of lateness sits in the fresh
  // mode, so the refreshed cut prices the straggler mode out.
  cfg.shed_quantile = 0.6;

  // Producer pacing: the fleet drains kShards events per kConsumerCost,
  // so offered = sustainable * load_mult.
  const auto interval = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            kConsumerCost) /
                        (kShards * load_mult);

  double p50 = 0, p99 = 0, pmax = 0, evps = 0, recall = 0;
  std::uint64_t sheds = 0, forced = 0, matches = 0, failed = 0;
  std::vector<std::uint32_t> push_us(fx.offered.size(), 0);

  for (auto _ : state) {
    const auto sink = std::make_shared<CollectingTaggedSink>();
    Session session(fx.reg,
                    SessionConfig{}
                        .engine(EngineKind::kOoo)
                        .slack(150)
                        .late_policy(LatePolicy::kDrop)
                        .shards(kShards)
                        .queue_capacity(64)
                        .overload(cfg)
                        .delay_hook([](const Event&) { spin_for(kConsumerCost); })
                        .query(kQuery),
                    sink);
    if (session.shard_count() != kShards)
      state.SkipWithError(session.shard_fallback_reason().c_str());

    failed = 0;
    const auto run0 = std::chrono::steady_clock::now();
    auto next = run0;
    std::size_t pushed = 0;
    try {
      for (const Event& e : fx.offered) {
        const auto t0 = std::chrono::steady_clock::now();
        session.push(e);
        const auto t1 = std::chrono::steady_clock::now();
        push_us[pushed++] = static_cast<std::uint32_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count());
        next += interval;
        if (t1 < next) spin_for(next - t1);
      }
    } catch (const OverloadError&) {
      failed = 1;  // kFail refused the load; score what was offered
    }
    const double offered_secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - run0)
            .count();
    session.close();

    std::vector<std::uint32_t> lat(push_us.begin(),
                                   push_us.begin() + static_cast<std::ptrdiff_t>(pushed));
    if (!lat.empty()) {
      const auto nth = [&](double q) {
        const std::size_t r = std::min(lat.size() - 1,
                                       static_cast<std::size_t>(q * static_cast<double>(lat.size())));
        std::nth_element(lat.begin(), lat.begin() + static_cast<std::ptrdiff_t>(r), lat.end());
        return static_cast<double>(lat[r]);
      };
      p50 = nth(0.50);
      p99 = nth(0.99);
      pmax = static_cast<double>(*std::max_element(lat.begin(), lat.end()));
    }
    evps = offered_secs > 0.0 ? static_cast<double>(pushed) / offered_secs : 0.0;
    sheds = session.overload_shed();
    forced = session.metrics_snapshot().counter("oosp_overload_shed_forced_total");
    matches = sink->matches().size();
    const VerifyResult v = compare_keys(fx.oracle, sink->keys_for(0));
    recall = v.recall();
    benchmark::DoNotOptimize(matches);
  }

  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fx.offered.size()));
  state.counters["p50_push_us"] = benchmark::Counter(p50);
  state.counters["p99_push_us"] = benchmark::Counter(p99);
  state.counters["max_push_us"] = benchmark::Counter(pmax);
  state.counters["ev/s"] = benchmark::Counter(evps);
  state.counters["sheds"] = benchmark::Counter(static_cast<double>(sheds));
  state.counters["forced"] = benchmark::Counter(static_cast<double>(forced));
  state.counters["matches"] = benchmark::Counter(static_cast<double>(matches));
  state.counters["recall"] = benchmark::Counter(recall);
  state.counters["refused"] = benchmark::Counter(static_cast<double>(failed));
}

#define OOSP_OVERLOAD_CASE(fn, policy, mult, name)                        \
  void fn(benchmark::State& s) { run_case(s, policy, mult); }             \
  BENCHMARK(fn)->Name(name)->Unit(benchmark::kMillisecond)->Iterations(1)

OOSP_OVERLOAD_CASE(bench_block_1x, OverloadPolicy::kBlock, 1, "Overload/block/load:1x");
OOSP_OVERLOAD_CASE(bench_block_2x, OverloadPolicy::kBlock, 2, "Overload/block/load:2x");
OOSP_OVERLOAD_CASE(bench_block_4x, OverloadPolicy::kBlock, 4, "Overload/block/load:4x");
OOSP_OVERLOAD_CASE(bench_newest_1x, OverloadPolicy::kShedNewest, 1, "Overload/newest/load:1x");
OOSP_OVERLOAD_CASE(bench_newest_2x, OverloadPolicy::kShedNewest, 2, "Overload/newest/load:2x");
OOSP_OVERLOAD_CASE(bench_newest_4x, OverloadPolicy::kShedNewest, 4, "Overload/newest/load:4x");
OOSP_OVERLOAD_CASE(bench_lateness_1x, OverloadPolicy::kShedByLateness, 1,
                   "Overload/by-lateness/load:1x");
OOSP_OVERLOAD_CASE(bench_lateness_2x, OverloadPolicy::kShedByLateness, 2,
                   "Overload/by-lateness/load:2x");
OOSP_OVERLOAD_CASE(bench_lateness_4x, OverloadPolicy::kShedByLateness, 4,
                   "Overload/by-lateness/load:4x");
OOSP_OVERLOAD_CASE(bench_fail_2x, OverloadPolicy::kFail, 2, "Overload/fail/load:2x");

#undef OOSP_OVERLOAD_CASE

}  // namespace

BENCHMARK_MAIN();
