// Experiment R-F3 — detection delay vs disorder (the headline result).
//
// Detection delay is measured in STREAM time: how far the clock had
// advanced past a match's completing timestamp when the result was
// emitted (Match::detection_delay). The conventional buffered engine
// sits on EVERY event for the full slack K, so its delay is ≈K even on a
// perfectly ordered stream; the native engine reports in-order results
// immediately and pays only the actual lateness of genuinely late
// results — this is the latency argument the paper's abstract makes for
// native out-of-order processing.
#include <map>

#include "bench_util.hpp"

namespace {

using namespace oosp;
using benchutil::Scenario;

const Scenario& scenario(int pct, int delay) {
  static std::map<std::pair<int, int>, Scenario> cache;
  const auto key = std::make_pair(pct, delay);
  auto it = cache.find(key);
  if (it == cache.end()) {
    SyntheticConfig cfg;
    cfg.num_events = 40'000;
    cfg.num_types = 3;
    cfg.key_cardinality = 50;
    cfg.mean_gap = 5;
    cfg.seed = 1003;
    SyntheticWorkload proto(cfg);
    it = cache
             .emplace(key, benchutil::make_scenario(cfg, proto.seq_query(3, true, 2'000),
                                                    pct / 100.0, delay))
             .first;
  }
  return it->second;
}

void register_benchmarks() {
  const std::pair<const char*, EngineKind> engines[] = {
      {"ooo-native", EngineKind::kOoo},
      {"kslack+inorder", EngineKind::kKSlackInOrder},
  };
  for (const auto& [name, kind] : engines) {
    for (const int pct : {0, 5, 20}) {
      for (const int delay : {200, 800}) {
        benchmark::RegisterBenchmark(("F3/" + std::string(name) +
                                      "/ooo_pct:" + std::to_string(pct) +
                                      "/max_delay:" + std::to_string(delay))
                                         .c_str(),
                                     [kind = kind, pct, delay](benchmark::State& state) {
                                       benchutil::run_case(state, scenario(pct, delay),
                                                           kind, EngineOptions{});
                                     })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(2);
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_benchmarks();
  return oosp::benchutil::run_benchmark_main(argc, argv);
}
