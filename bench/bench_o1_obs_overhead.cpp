// Experiment R-O1 — what the observability layer costs on the hot path.
//
// Fixed: a keyed 3-step query over the F6-style partitioned workload
// (10% disorder, K = 300) driven through the Session API, single shard
// so the measurement is pure engine hot path, no queue noise. Varies
// only the instrumentation state:
//
//   off        .metrics(false) — every instrument pointer null, the hot
//              path pays one predicted branch per site (the floor)
//   on         metrics enabled (the default): relaxed-atomic counter /
//              gauge / histogram updates per decision point
//   on+scrape  metrics enabled plus a 10 ms periodic reporter rendering
//              the full text exposition concurrently with streaming
//
// Reported: ev/s per state and overhead_pct relative to `off`. The
// acceptance bar (EXPERIMENTS.md R-O1) is < 5% for `on`.
#include <chrono>
#include <string>

#include "bench_util.hpp"
#include "runtime/session.hpp"

namespace {

using namespace oosp;
using benchutil::Scenario;

const Scenario& scenario() {
  static const Scenario sc = [] {
    SyntheticConfig cfg;
    cfg.num_events = 200'000;
    cfg.num_types = 3;
    cfg.key_cardinality = 1'024;
    cfg.mean_gap = 5;
    cfg.seed = 3001;
    SyntheticWorkload proto(cfg);
    return benchutil::make_scenario(cfg, proto.seq_query(3, true, 1'000), 0.10, 300);
  }();
  return sc;
}

enum class ObsState { kOff, kOn, kOnScrape };

double& baseline_evps() {
  static double evps = 0.0;
  return evps;
}

void run_obs(benchmark::State& state, ObsState obs) {
  const Scenario& sc = scenario();
  std::uint64_t matches = 0;
  double evps = 0.0;
  for (auto _ : state) {
    const auto sink = std::make_shared<CollectingTaggedSink>();
    SessionConfig config;
    config.engine(EngineKind::kOoo).slack(sc.slack).query(sc.query->text());
    if (obs == ObsState::kOff) config.metrics(false);
    if (obs == ObsState::kOnScrape) {
      config.report_every(std::chrono::milliseconds(10));
      config.report_to([](const std::string& text) { benchmark::DoNotOptimize(text); });
    }
    Session session(sc.workload->registry(), std::move(config), sink);
    const auto t0 = std::chrono::steady_clock::now();
    for (const Event& e : sc.arrivals) session.push(e);
    session.close();
    const auto t1 = std::chrono::steady_clock::now();
    matches = sink->matches().size();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    evps = secs > 0.0 ? static_cast<double>(sc.arrivals.size()) / secs : 0.0;
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sc.arrivals.size()));
  state.counters["ev/s"] = benchmark::Counter(evps);
  state.counters["matches"] = benchmark::Counter(static_cast<double>(matches));
  if (obs == ObsState::kOff) baseline_evps() = evps;
  if (obs != ObsState::kOff && baseline_evps() > 0.0)
    state.counters["overhead_pct"] =
        benchmark::Counter(100.0 * (baseline_evps() - evps) / baseline_evps());
}

void register_benchmarks() {
  const struct {
    const char* name;
    ObsState obs;
  } cases[] = {
      {"O1/session-ooo/metrics:off", ObsState::kOff},
      {"O1/session-ooo/metrics:on", ObsState::kOn},
      {"O1/session-ooo/metrics:on+scrape", ObsState::kOnScrape},
  };
  for (const auto& c : cases)
    benchmark::RegisterBenchmark(c.name,
                                 [obs = c.obs](benchmark::State& state) {
                                   run_obs(state, obs);
                                 })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(3);
}

}  // namespace

int main(int argc, char** argv) {
  register_benchmarks();
  return oosp::benchutil::run_benchmark_main(argc, argv);
}
