// Experiment R-F2 — throughput and memory vs maximum network delay (K).
//
// Fixed: 3-step keyed query, W = 2000, 10% of events delayed, 60k events.
// Sweeps the delay bound over {50, 200, 800, 3200} ticks. The buffered
// engine must hold K worth of events in its reorder heap, so its
// peak_state counter grows linearly with K while its throughput pays the
// heap churn; the native engine's CPU cost is insensitive to K (K only
// stretches the purge horizon, so its state grows far more slowly).
#include <map>

#include "bench_util.hpp"

namespace {

using namespace oosp;
using benchutil::Scenario;

const Scenario& scenario(int delay) {
  static std::map<int, Scenario> cache;
  auto it = cache.find(delay);
  if (it == cache.end()) {
    SyntheticConfig cfg;
    cfg.num_events = 60'000;
    // Six types but the query touches three: half the traffic is
    // irrelevant background (other sensors/readers). The reorder buffer
    // must hold ALL of it for K; the native engine's stacks never admit
    // it — that asymmetry is the memory story of this experiment.
    cfg.num_types = 6;
    cfg.key_cardinality = 50;
    cfg.mean_gap = 5;
    cfg.seed = 1002;
    SyntheticWorkload proto(cfg);
    it = cache
             .emplace(delay, benchutil::make_scenario(cfg, proto.seq_query(3, true, 2'000),
                                                      0.10, delay))
             .first;
  }
  return it->second;
}

void register_benchmarks() {
  const std::pair<const char*, EngineKind> engines[] = {
      {"ooo-native", EngineKind::kOoo},
      {"kslack+inorder", EngineKind::kKSlackInOrder},
  };
  for (const auto& [name, kind] : engines) {
    for (const int delay : {50, 200, 800, 3'200}) {
      benchmark::RegisterBenchmark(
          ("F2/" + std::string(name) + "/max_delay:" + std::to_string(delay)).c_str(),
          [kind = kind, delay](benchmark::State& state) {
            benchutil::run_case(state, scenario(delay), kind, EngineOptions{});
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(2);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_benchmarks();
  return oosp::benchutil::run_benchmark_main(argc, argv);
}
