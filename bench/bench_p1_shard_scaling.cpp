// Experiment R-P1 — shard scaling of the parallel runtime.
//
// Fixed: the F6 partitioned workload (3-step keyed query, W = 1000,
// 10% disorder, high key cardinality so keys spread evenly) pushed
// through the Session API. Sweeps the shard count over {1, 2, 4, 8}.
// The query is fully keyed, so every event hashes to exactly one shard
// and the ordered merge reproduces the single-shard output bit for bit
// (test_sharded pins that); this benchmark measures what that costs /
// buys in wall-clock terms.
//
// Reported counters:
//   ev/s      end-to-end events per second (routing + engines + merge)
//   matches   merged matches delivered to the sink
//   speedup   ev/s relative to the shards:1 run of the same binary
//
// NOTE: on a single-core host the worker threads time-slice one CPU, so
// shards > 1 can only show queueing overhead, not speedup; run on a
// multicore host to observe scaling.
#include <chrono>
#include <map>

#include "bench_util.hpp"
#include "runtime/session.hpp"

namespace {

using namespace oosp;
using benchutil::Scenario;

const Scenario& scenario() {
  static const Scenario sc = [] {
    SyntheticConfig cfg;
    cfg.num_events = 50'000;
    cfg.num_types = 3;
    cfg.key_cardinality = 1'024;
    cfg.mean_gap = 5;
    cfg.seed = 2001;
    SyntheticWorkload proto(cfg);
    return benchutil::make_scenario(cfg, proto.seq_query(3, true, 1'000), 0.10, 300);
  }();
  return sc;
}

double& baseline_evps() {
  static double evps = 0.0;
  return evps;
}

void run_sharded(benchmark::State& state, std::size_t shards) {
  const Scenario& sc = scenario();
  std::uint64_t matches = 0;
  double evps = 0.0;
  for (auto _ : state) {
    const auto sink = std::make_shared<CollectingTaggedSink>();
    Session session(sc.workload->registry(),
                    SessionConfig{}
                        .engine(EngineKind::kOoo)
                        .slack(sc.slack)
                        .shards(shards)
                        .query(sc.query->text()),
                    sink);
    const auto t0 = std::chrono::steady_clock::now();
    for (const Event& e : sc.arrivals) session.push(e);
    session.finish();
    const auto t1 = std::chrono::steady_clock::now();
    if (session.shard_count() != shards)
      state.SkipWithError(session.shard_fallback_reason().c_str());
    matches = sink->matches().size();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    evps = secs > 0.0 ? static_cast<double>(sc.arrivals.size()) / secs : 0.0;
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sc.arrivals.size()));
  state.counters["ev/s"] = benchmark::Counter(evps);
  state.counters["matches"] = benchmark::Counter(static_cast<double>(matches));
  if (shards == 1) baseline_evps() = evps;
  if (baseline_evps() > 0.0)
    state.counters["speedup"] = benchmark::Counter(evps / baseline_evps());
}

void register_benchmarks() {
  for (const std::size_t shards : {1, 2, 4, 8}) {
    benchmark::RegisterBenchmark(
        ("P1/session-ooo/shards:" + std::to_string(shards)).c_str(),
        [shards](benchmark::State& state) { run_sharded(state, shards); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(2);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_benchmarks();
  return oosp::benchutil::run_benchmark_main(argc, argv);
}
