// Experiment R-F5 — throughput vs pattern length n (ordered input).
//
// Fixed: keyed query, W = 1500, ordered stream (0% disorder) of 50k
// events over n types. Sweeps n over {2..6} and compares the two
// stack-based engines and the NFA-run baseline. Stacks store one
// instance per event while NFA runs store one run per PARTIAL MATCH, so
// the run engine falls off combinatorially as n grows — the gap the
// stack-based SSC design exists to close. The native OOO engine on an
// ordered stream should track the in-order engine closely (out-of-order
// support costs almost nothing when nothing is late).
#include <map>

#include "bench_util.hpp"

namespace {

using namespace oosp;
using benchutil::Scenario;

const Scenario& scenario(int n) {
  static std::map<int, Scenario> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    SyntheticConfig cfg;
    cfg.num_events = 50'000;
    cfg.num_types = static_cast<std::size_t>(n);
    cfg.key_cardinality = 40;
    cfg.mean_gap = 5;
    cfg.seed = 1005;
    SyntheticWorkload proto(cfg);
    it = cache
             .emplace(n, benchutil::make_scenario(
                             cfg, proto.seq_query(static_cast<std::size_t>(n), true, 1'500),
                             0.0, 0))
             .first;
  }
  return it->second;
}

void register_benchmarks() {
  const std::pair<const char*, EngineKind> engines[] = {
      {"inorder-ssc", EngineKind::kInOrder},
      {"nfa-runs", EngineKind::kNfa},
      {"ooo-native", EngineKind::kOoo},
  };
  for (const auto& [name, kind] : engines) {
    for (const int n : {2, 3, 4, 5, 6}) {
      benchmark::RegisterBenchmark(
          ("F5/" + std::string(name) + "/seq_len:" + std::to_string(n)).c_str(),
          [kind = kind, n](benchmark::State& state) {
            benchutil::run_case(state, scenario(n), kind, EngineOptions{});
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(2);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_benchmarks();
  return oosp::benchutil::run_benchmark_main(argc, argv);
}
