// Experiment R-R2 — crash recovery: checkpoint overhead and recovery
// latency of the supervised sharded runtime.
//
// Two questions, two benchmark families over the same keyed workload:
//
// 1. CheckpointOverhead/every:K — what does a checkpoint cadence cost
//    when nothing fails? Sweeps checkpoint_every over {0 (supervision
//    off — the baseline), 1k, 10k, 100k} consumed events per shard and
//    reports end-to-end ev/s plus overhead_pct vs the 0 run. Each
//    checkpoint serializes the full engine state and drains the shard
//    sink, so the cost is (state size / cadence)-proportional; the
//    acceptance bar is < 5% at every:10k.
//
// 2. Recovery/every:K — how long does one crash cost? Kills one worker
//    mid-stream (WorkerKillFault) and reports the supervisor's measured
//    restore+replay wall time (recovery_us) and replayed event count.
//    Replay is bounded by the backup ring, which a checkpoint trims to
//    at most checkpoint_every + queue backlog events — so recovery time
//    tracks the cadence, not the stream length.
//
// Short mode for CI soak: OOSP_BENCH_SHORT=1 shrinks the stream ~8x so
// the binary finishes in seconds under sanitizers.
#include <chrono>
#include <cstdlib>

#include "bench_util.hpp"
#include "runtime/session.hpp"
#include "stream/faults.hpp"

namespace {

using namespace oosp;
using benchutil::Scenario;

bool short_mode() {
  const char* v = std::getenv("OOSP_BENCH_SHORT");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

const Scenario& scenario() {
  static const Scenario sc = [] {
    SyntheticConfig cfg;
    cfg.num_events = short_mode() ? 25'000 : 200'000;
    cfg.num_types = 3;
    cfg.key_cardinality = 1'024;
    cfg.mean_gap = 5;
    cfg.seed = 4242;
    SyntheticWorkload proto(cfg);
    return benchutil::make_scenario(cfg, proto.seq_query(3, true, 1'000), 0.10, 300);
  }();
  return sc;
}

constexpr std::size_t kShards = 4;

SessionConfig base_config(const Scenario& sc, std::size_t checkpoint_every) {
  return SessionConfig{}
      .engine(EngineKind::kOoo)
      .slack(sc.slack)
      .shards(kShards)
      .checkpoint_every(checkpoint_every)
      .restart_backoff(std::chrono::milliseconds(0), std::chrono::milliseconds(0))
      .query(sc.query->text());
}

double& baseline_evps() {
  static double evps = 0.0;
  return evps;
}

void checkpoint_overhead(benchmark::State& state, std::size_t every) {
  const Scenario& sc = scenario();
  double evps = 0.0;
  std::uint64_t checkpoints = 0, matches = 0;
  std::int64_t ckpt_bytes = 0;
  for (auto _ : state) {
    const auto sink = std::make_shared<CollectingTaggedSink>();
    Session session(sc.workload->registry(), base_config(sc, every), sink);
    const auto t0 = std::chrono::steady_clock::now();
    for (const Event& e : sc.arrivals) session.push(e);
    session.close();
    const auto t1 = std::chrono::steady_clock::now();
    if (session.shard_count() != kShards)
      state.SkipWithError(session.shard_fallback_reason().c_str());
    const MetricsSnapshot snap = session.metrics_snapshot();
    checkpoints = snap.counter("oosp_shard_checkpoints_total");
    ckpt_bytes = snap.gauge("oosp_shard_checkpoint_bytes");
    matches = sink->matches().size();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    evps = secs > 0.0 ? static_cast<double>(sc.arrivals.size()) / secs : 0.0;
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sc.arrivals.size()));
  state.counters["ev/s"] = benchmark::Counter(evps);
  state.counters["matches"] = benchmark::Counter(static_cast<double>(matches));
  state.counters["ckpts"] = benchmark::Counter(static_cast<double>(checkpoints));
  state.counters["ckpt_bytes"] = benchmark::Counter(static_cast<double>(ckpt_bytes));
  if (every == 0) baseline_evps() = evps;
  if (baseline_evps() > 0.0)
    state.counters["overhead_pct"] =
        benchmark::Counter(100.0 * (baseline_evps() - evps) / baseline_evps());
}

void recovery_latency(benchmark::State& state, std::size_t every) {
  const Scenario& sc = scenario();
  double recovery_us = 0.0;
  std::uint64_t replayed = 0, restarts = 0, matches = 0;
  for (auto _ : state) {
    // Kill the worker that processes the mid-stream event; the replay
    // the supervisor then performs is what this benchmark times.
    WorkerKillFault fault({sc.arrivals[sc.arrivals.size() / 2].id});
    const auto sink = std::make_shared<CollectingTaggedSink>();
    Session session(sc.workload->registry(),
                    base_config(sc, every).kill_hook(fault.hook()), sink);
    for (const Event& e : sc.arrivals) session.push(e);
    session.close();
    if (session.shard_count() != kShards)
      state.SkipWithError(session.shard_fallback_reason().c_str());
    if (session.restarts() == 0) state.SkipWithError("kill never fired");
    const MetricsSnapshot snap = session.metrics_snapshot();
    if (const HistogramData* h = snap.histogram("oosp_shard_recovery_duration_us"))
      recovery_us = h->mean();
    replayed = session.replayed_events();
    restarts = session.restarts();
    matches = sink->matches().size();
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sc.arrivals.size()));
  state.counters["recovery_us"] = benchmark::Counter(recovery_us);
  state.counters["replayed"] = benchmark::Counter(static_cast<double>(replayed));
  state.counters["restarts"] = benchmark::Counter(static_cast<double>(restarts));
  state.counters["matches"] = benchmark::Counter(static_cast<double>(matches));
}

void bench_overhead_off(benchmark::State& s) { checkpoint_overhead(s, 0); }
void bench_overhead_1k(benchmark::State& s) { checkpoint_overhead(s, 1'000); }
void bench_overhead_10k(benchmark::State& s) { checkpoint_overhead(s, 10'000); }
void bench_overhead_100k(benchmark::State& s) { checkpoint_overhead(s, 100'000); }
BENCHMARK(bench_overhead_off)->Name("CheckpointOverhead/every:0")->Unit(benchmark::kMillisecond);
BENCHMARK(bench_overhead_1k)->Name("CheckpointOverhead/every:1k")->Unit(benchmark::kMillisecond);
BENCHMARK(bench_overhead_10k)->Name("CheckpointOverhead/every:10k")->Unit(benchmark::kMillisecond);
BENCHMARK(bench_overhead_100k)->Name("CheckpointOverhead/every:100k")->Unit(benchmark::kMillisecond);

void bench_recovery_1k(benchmark::State& s) { recovery_latency(s, 1'000); }
void bench_recovery_10k(benchmark::State& s) { recovery_latency(s, 10'000); }
void bench_recovery_50k(benchmark::State& s) { recovery_latency(s, 50'000); }
BENCHMARK(bench_recovery_1k)->Name("Recovery/every:1k")->Unit(benchmark::kMillisecond);
BENCHMARK(bench_recovery_10k)->Name("Recovery/every:10k")->Unit(benchmark::kMillisecond);
BENCHMARK(bench_recovery_50k)->Name("Recovery/every:50k")->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
