// Experiment R-F1 — throughput vs fraction of out-of-order events.
//
// Fixed: 3-step keyed query, W = 2000 ticks, max delay 500 ticks, 60k
// events. Sweeps the fraction of delayed events over
// {0, 1, 5, 10, 20, 40}% and compares the native OOO engine with the
// conventional K-slack buffered engines.
//
// Expected shape (DESIGN.md §4): the native engine's throughput degrades
// gracefully as disorder grows (extra work is proportional to late
// events), while the buffered engines pay the reorder heap on every
// event regardless of disorder; the native engine dominates at low
// disorder and stays competitive at high disorder.
#include <map>

#include "bench_util.hpp"

namespace {

using namespace oosp;
using benchutil::Scenario;

const Scenario& scenario(int pct) {
  static std::map<int, Scenario> cache;
  auto it = cache.find(pct);
  if (it == cache.end()) {
    SyntheticConfig cfg;
    cfg.num_events = 60'000;
    cfg.num_types = 3;
    cfg.key_cardinality = 50;
    cfg.mean_gap = 5;
    cfg.seed = 1001;
    SyntheticWorkload proto(cfg);
    it = cache
             .emplace(pct, benchutil::make_scenario(cfg, proto.seq_query(3, true, 2'000),
                                                    pct / 100.0, 500))
             .first;
  }
  return it->second;
}

void register_benchmarks() {
  const std::pair<const char*, EngineKind> engines[] = {
      {"ooo-native", EngineKind::kOoo},
      {"kslack+inorder", EngineKind::kKSlackInOrder},
      {"kslack+nfa", EngineKind::kKSlackNfa},
  };
  for (const auto& [name, kind] : engines) {
    for (const int pct : {0, 1, 5, 10, 20, 40}) {
      benchmark::RegisterBenchmark(
          ("F1/" + std::string(name) + "/ooo_pct:" + std::to_string(pct)).c_str(),
          [kind = kind, pct](benchmark::State& state) {
            benchutil::run_case(state, scenario(pct), kind, EngineOptions{});
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(2);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_benchmarks();
  return oosp::benchutil::run_benchmark_main(argc, argv);
}
