// Experiment R-P3 — shared multi-query scan (MQO) throughput.
//
// Fixed: a single-shard kOoo session over N standing queries that share
// the SEQ(T0, T1) prefix and key attribute but differ in a step-local
// threshold on the first step (a0.val >= …), W = 1000, 10% disorder,
// high key cardinality. Every arrival is pattern input for every query,
// so the per-query-engine plan (share_scans(false), the baseline) runs
// admission, clock observation, dedup, stack insertion and the purge
// cadence N times per event; the shared-scan plan runs them once and
// keeps construction + predicate evaluation per query. The sweep varies
// N — the gap is the arrival-side share of the per-event cost, and it
// widens with the number of co-resident queries.
//
// Sharing is semantically invisible (test_mqo pins bit-identical output
// across seeds × shards × batch sizes, including recovery); this
// benchmark measures what the shared pipeline buys in wall-clock terms.
//
// Reported counters:
//   ev/s      end-to-end events per second (Session ingest + engines)
//   matches   matches delivered to the sink (identical shared vs solo)
//   speedup   shared-plan ev/s relative to the per-query-engine run at
//             the same query count (reported on the shared runs)
//
// Short mode for CI soak: OOSP_BENCH_SHORT=1 shrinks the stream ~8x so
// the sweep finishes in seconds while keeping the shape comparable.
#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "bench_util.hpp"
#include "runtime/session.hpp"

namespace {

using namespace oosp;
using benchutil::Scenario;

bool short_mode() {
  const char* v = std::getenv("OOSP_BENCH_SHORT");
  return v != nullptr && *v != '\0' && *v != '0';
}

const Scenario& scenario() {
  static const Scenario sc = [] {
    SyntheticConfig cfg;
    cfg.num_events = short_mode() ? 20'000 : 150'000;
    cfg.num_types = 2;
    cfg.key_cardinality = 8'192;
    cfg.mean_gap = 1;
    cfg.seed = 3003;
    SyntheticWorkload proto(cfg);
    return benchutil::make_scenario(cfg, proto.seq_query(2, true, 1'000), 0.10, 300);
  }();
  return sc;
}

// N shared-prefix queries: same chain and key, different first-step
// thresholds (val is uniform on [0, 999], so selectivity spans the
// sweep). Query 0 is the unfiltered scenario query.
std::vector<std::string> query_set(std::size_t n) {
  const Scenario& sc = scenario();
  std::vector<std::string> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(sc.workload->seq_query(
        2, true, 1'000,
        i == 0 ? -1 : static_cast<std::int64_t>((i * 960) / n)));
  return out;
}

double& solo_evps(std::size_t nqueries) {
  static std::map<std::size_t, double> evps;
  return evps[nqueries];
}

void run_mqo(benchmark::State& state, std::size_t nqueries, bool shared) {
  const Scenario& sc = scenario();
  const std::vector<std::string> queries = query_set(nqueries);
  std::uint64_t matches = 0;
  std::uint64_t groups = 0;
  double evps = 0.0;
  for (auto _ : state) {
    const auto sink = std::make_shared<CollectingTaggedSink>();
    SessionConfig cfg;
    cfg.engine(EngineKind::kOoo)
        .slack(sc.slack)
        .shards(1)
        .share_scans(shared)
        .metrics(true);  // exercised so the mqo gauges cost what they cost
    for (const std::string& q : queries) cfg.query(q);
    Session session(sc.workload->registry(), cfg, sink);
    const auto t0 = std::chrono::steady_clock::now();
    for (const Event& e : sc.arrivals) session.push(e);
    session.finish();
    const auto t1 = std::chrono::steady_clock::now();
    matches = sink->matches().size();
    groups = static_cast<std::uint64_t>(
        session.metrics_snapshot().gauge("oosp_mqo_groups"));
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    evps = secs > 0.0 ? static_cast<double>(sc.arrivals.size()) / secs : 0.0;
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sc.arrivals.size()));
  state.counters["ev/s"] = benchmark::Counter(evps);
  state.counters["matches"] = benchmark::Counter(static_cast<double>(matches));
  state.counters["groups"] = benchmark::Counter(static_cast<double>(groups));
  if (!shared) {
    solo_evps(nqueries) = evps;
  } else if (solo_evps(nqueries) > 0.0) {
    state.counters["speedup"] = benchmark::Counter(evps / solo_evps(nqueries));
  }
}

void register_benchmarks() {
  // Per-query-engine baseline first so the shared run can report its
  // speedup; benchmarks execute in registration order.
  for (const std::size_t n : {2, 4, 8, 16}) {
    benchmark::RegisterBenchmark(
        ("P3/mqo-solo/queries:" + std::to_string(n)).c_str(),
        [n](benchmark::State& state) { run_mqo(state, n, false); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(2);
    benchmark::RegisterBenchmark(
        ("P3/mqo-shared/queries:" + std::to_string(n)).c_str(),
        [n](benchmark::State& state) { run_mqo(state, n, true); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(2);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_benchmarks();
  return oosp::benchutil::run_benchmark_main(argc, argv);
}
