// Ablation R-A1 — state purging policy of the native OOO engine.
//
// Fixed: 3-step keyed query, W = 1500, 10% disorder (max delay 400), 60k
// events. Sweeps purge_period over {1 (eager), 16, 256, 0 (never)}.
// Expected: batched purging matches eager purging's memory to within a
// batch while spending fewer passes; never-purging makes peak_state grow
// with the whole stream — the memory-consumption argument of the paper's
// "state purging to minimize CPU cost and memory consumption".
#include <map>

#include "bench_util.hpp"

namespace {

using namespace oosp;
using benchutil::Scenario;

const Scenario& scenario() {
  static Scenario sc = [] {
    SyntheticConfig cfg;
    cfg.num_events = 60'000;
    cfg.num_types = 3;
    cfg.key_cardinality = 50;
    cfg.mean_gap = 5;
    cfg.seed = 1008;
    SyntheticWorkload proto(cfg);
    return benchutil::make_scenario(cfg, proto.seq_query(3, true, 1'500), 0.10, 400);
  }();
  return sc;
}

void register_benchmarks() {
  for (const std::size_t period : {std::size_t{1}, std::size_t{16}, std::size_t{256},
                                   std::size_t{0}}) {
    benchmark::RegisterBenchmark(
        ("A1/ooo-native/purge_period:" +
         (period == 0 ? std::string("never") : std::to_string(period)))
            .c_str(),
        [period](benchmark::State& state) {
          EngineOptions opt;
          opt.purge_period = period;
          benchutil::run_case(state, scenario(), EngineKind::kOoo, opt);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(2);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_benchmarks();
  return oosp::benchutil::run_benchmark_main(argc, argv);
}
