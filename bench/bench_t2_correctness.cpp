// Experiment R-T2 — result corruption of conventional engines under
// out-of-order arrival.
//
// Sweeps disorder over {0, 1, 5, 10, 20, 40}% (max delay 400, W = 1500,
// keyed 3-step query with a negated middle step so BOTH failure modes
// show: missed matches from late positives/unsafe purges AND phantom
// matches from negation checked before a late negative lands). Each row
// scores an engine against the oracle: recall, precision, missed and
// phantom counts. The native OOO engine and the K-slack buffer stay at
// 1.00/1.00 on every row; the plain in-order engines degrade with
// disorder — the paper's motivating failure analysis.
#include <iostream>

#include "common/table.hpp"
#include "engine/oracle/oracle.hpp"
#include "runtime/driver.hpp"
#include "runtime/verify.hpp"
#include "stream/disorder.hpp"
#include "workload/synthetic.hpp"

namespace oosp {
namespace {

void run_rows(Table& t) {
  for (const int pct : {0, 1, 5, 10, 20, 40}) {
    SyntheticConfig cfg;
    cfg.num_events = 12'000;
    cfg.num_types = 3;
    cfg.key_cardinality = 30;
    cfg.mean_gap = 5;
    cfg.seed = 2001;
    SyntheticWorkload wl(cfg);
    const auto ordered = wl.generate();
    DisorderInjector inj(LatencyModel::uniform(400), pct / 100.0, 71);
    const auto arrivals = inj.deliver(ordered);
    const CompiledQuery q = compile_query(wl.negation_query(1'500), wl.registry());
    const auto expected = oracle_keys(q, arrivals);

    const std::pair<const char*, EngineKind> engines[] = {
        {"inorder-ssc", EngineKind::kInOrder},
        {"nfa-runs", EngineKind::kNfa},
        {"kslack+inorder", EngineKind::kKSlackInOrder},
        {"ooo-native", EngineKind::kOoo},
    };
    for (const auto& [name, kind] : engines) {
      DriverConfig dcfg;
      dcfg.kind = kind;
      dcfg.options.slack = inj.slack_bound();
      dcfg.collect_matches = true;
      const RunResult r = run_stream(q, arrivals, dcfg);
      std::vector<MatchKey> got;
      got.reserve(r.collected.size());
      for (const Match& m : r.collected) got.push_back(match_key(m));
      std::sort(got.begin(), got.end());
      const VerifyResult v = compare_keys(expected, got);
      t.add_row({std::to_string(pct), name,
                 Table::cell(static_cast<std::uint64_t>(v.expected)),
                 Table::cell(static_cast<std::uint64_t>(v.produced)),
                 Table::cell(v.recall(), 3), Table::cell(v.precision(), 3),
                 Table::cell(static_cast<std::uint64_t>(v.missed)),
                 Table::cell(static_cast<std::uint64_t>(v.false_positives))});
    }
  }
}

}  // namespace
}  // namespace oosp

int main() {
  using namespace oosp;
  std::cout << "R-T2: correctness under out-of-order arrival "
               "(SEQ(T0,!T1,T2) keyed, W=1500, max delay 400)\n";
  Table t({"ooo%", "engine", "expected", "produced", "recall", "precision", "missed",
           "phantom"});
  run_rows(t);
  t.print(std::cout);
  return 0;
}
