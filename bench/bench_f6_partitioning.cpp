// Experiment R-F6 / ablation R-A2 — equi-join key partitioning.
//
// Fixed: 3-step keyed query, W = 2000, 10% disorder, 50k events. Sweeps
// key cardinality over {1, 10, 100, 1000} with the native engine's
// hash-partitioned stacks enabled and disabled. With one key the two are
// identical; as cardinality grows the unpartitioned engine scans
// stack ranges full of other keys' instances during construction while
// the partitioned engine touches only its own shard, so the gap widens.
#include <map>

#include "bench_util.hpp"

namespace {

using namespace oosp;
using benchutil::Scenario;

const Scenario& scenario(int cardinality) {
  static std::map<int, Scenario> cache;
  auto it = cache.find(cardinality);
  if (it == cache.end()) {
    SyntheticConfig cfg;
    cfg.num_events = 30'000;
    cfg.num_types = 3;
    cfg.key_cardinality = cardinality;
    cfg.mean_gap = 5;
    cfg.seed = 1006;
    SyntheticWorkload proto(cfg);
    it = cache
             .emplace(cardinality, benchutil::make_scenario(
                                       cfg, proto.seq_query(3, true, 1'000), 0.10, 300))
             .first;
  }
  return it->second;
}

void register_benchmarks() {
  for (const bool partition : {true, false}) {
    for (const int card : {4, 16, 64, 256, 1'024}) {
      benchmark::RegisterBenchmark(
          (std::string("F6/ooo-native/") + (partition ? "partitioned" : "flat") +
           "/keys:" + std::to_string(card))
              .c_str(),
          [partition, card](benchmark::State& state) {
            EngineOptions opt;
            opt.partition_by_key = partition;
            benchutil::run_case(state, scenario(card), EngineKind::kOoo, opt);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(2);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_benchmarks();
  return oosp::benchutil::run_benchmark_main(argc, argv);
}
