// Ablation R-A3 — cached rightmost-instance pointers vs binary search.
//
// The in-order SSC design gets predecessor ranges for free from RIPs
// recorded at push time. Under out-of-order arrival a cached RIP must be
// repaired on every mid-stack insertion (suffix bump) and every purge
// (global drop), while the search-based variant pays one binary search
// per construction edge and nothing on insertion. Sweeping disorder over
// {0, 5, 30}% shows where the break-even sits.
#include <map>

#include "bench_util.hpp"

namespace {

using namespace oosp;
using benchutil::Scenario;

const Scenario& scenario(int pct) {
  static std::map<int, Scenario> cache;
  auto it = cache.find(pct);
  if (it == cache.end()) {
    SyntheticConfig cfg;
    cfg.num_events = 60'000;
    cfg.num_types = 3;
    cfg.key_cardinality = 50;
    cfg.mean_gap = 5;
    cfg.seed = 1009;
    SyntheticWorkload proto(cfg);
    it = cache
             .emplace(pct, benchutil::make_scenario(cfg, proto.seq_query(3, true, 1'500),
                                                    pct / 100.0, 400))
             .first;
  }
  return it->second;
}

void register_benchmarks() {
  for (const bool rip : {false, true}) {
    for (const int pct : {0, 5, 30}) {
      benchmark::RegisterBenchmark(
          (std::string("A3/ooo-native/") + (rip ? "cached-rip" : "binary-search") +
           "/ooo_pct:" + std::to_string(pct))
              .c_str(),
          [rip, pct](benchmark::State& state) {
            EngineOptions opt;
            opt.cache_rip = rip;
            benchutil::run_case(state, scenario(pct), EngineKind::kOoo, opt);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(2);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_benchmarks();
  return oosp::benchutil::run_benchmark_main(argc, argv);
}
