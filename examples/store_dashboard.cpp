// Store dashboard — several concurrent queries over one RFID stream.
//
// A deployment watches one event stream with many standing queries.
// MultiQueryRunner routes each reader event only to the engines whose
// queries care about its type (shared scan), while negation queries keep
// receiving clock ticks so their sealing logic advances. This example
// runs three queries over the store's reader stream:
//
//   Q0 shoplifting  — Shelf then Exit with no Checkout in between
//   Q1 purchases    — Shelf, Checkout, Exit for the same item
//   Q2 fast lane    — checkout within 40 ticks of the shelf read
//
// Build & run:   ./build/examples/store_dashboard
#include <iostream>
#include <memory>

#include "common/table.hpp"
#include "runtime/multi_query.hpp"
#include "stream/disorder.hpp"
#include "workload/rfid.hpp"

int main() {
  using namespace oosp;

  RfidWorkload store({.num_items = 10'000, .shoplift_fraction = 0.03, .seed = 77});
  const auto readings = store.generate();
  DisorderInjector network(LatencyModel::uniform(100), 0.12, 5);
  const auto arrivals = network.deliver(readings);

  struct Dash final : public TaggedSink {
    std::vector<std::uint64_t> counts;
    void on_match(QueryId q, Match&&) override {
      if (q >= counts.size()) counts.resize(q + 1, 0);
      ++counts[q];
    }
  };
  const auto dashboard = std::make_shared<Dash>();

  MultiQueryRunner runner(store.registry(), dashboard);
  EngineOptions opt;
  opt.slack = network.slack_bound();
  const QueryId q_theft =
      runner.add_query({store.shoplifting_query(600), EngineKind::kOoo, opt});
  const QueryId q_sale =
      runner.add_query({store.purchase_query(600), EngineKind::kOoo, opt});
  const QueryId q_fast = runner.add_query(
      {"PATTERN SEQ(Shelf s, Checkout c) WHERE s.item == c.item WITHIN 40",
       EngineKind::kOoo, opt});

  for (const Event& e : arrivals) runner.on_event(e);
  runner.finish();

  const auto disorder = DisorderInjector::measure(arrivals);
  std::cout << "stream: " << arrivals.size() << " reader events, "
            << disorder.ooo_percent() << "% late (bound "
            << network.slack_bound() << ")\n\n";

  Table t({"query", "matches", "events routed", "peak state"});
  const struct {
    const char* name;
    QueryId id;
  } rows[] = {{"shoplifting alarms", q_theft},
              {"completed purchases", q_sale},
              {"fast-lane checkouts", q_fast}};
  for (const auto& row : rows) {
    const auto s = runner.stats(row.id);
    t.add_row({row.name,
               Table::cell(row.id < dashboard->counts.size()
                               ? dashboard->counts[row.id]
                               : std::uint64_t{0}),
               Table::cell(s.events_seen), Table::cell(s.footprint_peak)});
  }
  t.print(std::cout);
  std::cout << "\nitems actually stolen (generator): " << store.expected_shoplifted()
            << "\nrouter: " << runner.events_seen() << " events seen, "
            << runner.events_routed() << " routed to at least one engine\n";
  return 0;
}
