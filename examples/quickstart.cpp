// Quickstart: the smallest end-to-end OOSP program.
//
// 1. Register event types and their schemas.
// 2. Compile a pattern query.
// 3. Feed an (out-of-order!) event stream to the native OOO engine.
// 4. Receive matches through a sink.
//
// Build & run:   ./build/examples/quickstart
#include <iostream>

#include "engine/engines.hpp"
#include "event/event.hpp"
#include "query/compiled.hpp"

int main() {
  using namespace oosp;

  // 1. Event types. A tiny payment flow: an order is placed, then paid.
  TypeRegistry registry;
  registry.register_type(
      "Order", Schema({{"order_id", ValueType::kInt}, {"amount", ValueType::kDouble}}));
  registry.register_type(
      "Payment", Schema({{"order_id", ValueType::kInt}, {"amount", ValueType::kDouble}}));

  // 2. Pattern: a payment for the same order within 100 ticks of the order.
  const CompiledQuery query = compile_query(
      "PATTERN SEQ(Order o, Payment p) "
      "WHERE o.order_id == p.order_id AND p.amount >= 10 "
      "WITHIN 100",
      registry);
  std::cout << "query: " << query.text() << "\n\n";

  // 3. Sink: print every detected match.
  FunctionSink sink([&](Match&& m) {
    std::cout << "match: order #" << m.events[0].attr(0).as_int() << " placed at t="
              << m.events[0].ts << ", paid at t=" << m.events[1].ts
              << " (detected with stream-time delay " << m.detection_delay() << ")\n";
  });

  // 4. Engine: the native out-of-order engine with a lateness bound of 50
  //    ticks — events may arrive up to 50 ticks late and results stay exact.
  EngineOptions options;
  options.slack = 50;
  const auto engine = make_engine(EngineKind::kOoo, query, sink, options);

  auto event = [&](const char* type, EventId id, Timestamp ts, std::int64_t order,
                   double amount) {
    return EventBuilder(registry, type)
        .id(id)
        .ts(ts)
        .set("order_id", order)
        .set("amount", amount)
        .build();
  };

  // The Payment for order 7 ARRIVES BEFORE its Order — a late event a
  // conventional engine would silently drop on the floor.
  engine->on_event(event("Payment", 0, 60, 7, 99.5));
  engine->on_event(event("Order", 1, 40, 7, 99.5));    // late by 20 ticks
  engine->on_event(event("Order", 2, 70, 8, 15.0));
  engine->on_event(event("Payment", 3, 90, 8, 15.0));
  engine->on_event(event("Payment", 4, 95, 9, 2.0));   // below amount filter
  engine->finish();

  const auto stats = engine->stats();
  std::cout << "\nprocessed " << stats.events_seen << " events ("
            << stats.late_events << " late), emitted " << stats.matches_emitted
            << " matches, peak state " << stats.footprint_peak << " entries\n";
  return 0;
}
