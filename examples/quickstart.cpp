// Quickstart: the smallest end-to-end OOSP program.
//
// 1. Register event types and their schemas.
// 2. Declare a Session: pattern queries + engine configuration.
// 3. Feed an (out-of-order!) event stream through it.
// 4. Receive matches through a sink when the session finishes.
//
// The Session is the library's front door: it compiles the queries,
// builds the engines, and (with .shards(N) on a partitionable query
// set) transparently scales across worker threads with bit-identical
// output. See examples/store_dashboard.cpp for the lower-level
// MultiQueryRunner and engine APIs.
//
// Build & run:   ./build/examples/quickstart
#include <iostream>
#include <memory>

#include "runtime/session.hpp"

int main() {
  using namespace oosp;

  // 1. Event types. A tiny payment flow: an order is placed, then paid.
  TypeRegistry registry;
  registry.register_type(
      "Order", Schema({{"order_id", ValueType::kInt}, {"amount", ValueType::kDouble}}));
  registry.register_type(
      "Payment", Schema({{"order_id", ValueType::kInt}, {"amount", ValueType::kDouble}}));

  // 2. Sink: print every detected match. Matches arrive tagged with the
  //    id of the query that produced them, in deterministic order.
  struct Printer final : public TaggedSink {
    void on_match(QueryId, Match&& m) override {
      std::cout << "match: order #" << m.events[0].attr(0).as_int() << " placed at t="
                << m.events[0].ts << ", paid at t=" << m.events[1].ts
                << " (detected with stream-time delay " << m.detection_delay() << ")\n";
    }
  };

  // 3. Session: one pattern — a payment for the same order within 100
  //    ticks of the order — on the native OOO engine with a lateness
  //    bound of 50 ticks (events may arrive up to 50 ticks late and
  //    results stay exact).
  Session session(registry,
                  SessionConfig{}
                      .engine(EngineKind::kOoo)
                      .slack(50)
                      .query("PATTERN SEQ(Order o, Payment p) "
                             "WHERE o.order_id == p.order_id AND p.amount >= 10 "
                             "WITHIN 100"),
                  std::make_shared<Printer>());
  std::cout << "query: " << session.query(0).text() << "\n\n";

  auto event = [&](const char* type, EventId id, Timestamp ts, std::int64_t order,
                   double amount) {
    return EventBuilder(registry, type)
        .id(id)
        .ts(ts)
        .set("order_id", order)
        .set("amount", amount)
        .build();
  };

  // The Payment for order 7 ARRIVES BEFORE its Order — a late event a
  // conventional engine would silently drop on the floor.
  session.push(event("Payment", 0, 60, 7, 99.5));
  session.push(event("Order", 1, 40, 7, 99.5));    // late by 20 ticks
  session.push(event("Order", 2, 70, 8, 15.0));
  session.push(event("Payment", 3, 90, 8, 15.0));
  session.push(event("Payment", 4, 95, 9, 2.0));   // below amount filter
  session.close();

  const EngineStats stats = session.total_stats();
  std::cout << "\nprocessed " << stats.events_seen << " events ("
            << stats.late_events << " late), emitted " << stats.matches_emitted
            << " matches, peak state " << stats.footprint_peak << " entries\n";

  // 4. Observability: every Session owns a metrics registry (disable
  //    with .metrics(false)); this is the Prometheus-style exposition a
  //    scrape endpoint would serve. Works mid-run too — the instruments
  //    are lock-free atomics.
  std::cout << "\n--- metrics exposition ---\n" << session.metrics_text();
  return 0;
}
