// RFID retail tracking — the paper's motivating application.
//
// A store's readers emit Shelf / Checkout / Exit readings; checkout
// readings cross the store backbone and often arrive late. The
// shoplifting query (Shelf followed by Exit with NO Checkout in between
// for the same item) is evaluated three ways:
//
//   * a conventional in-order engine fed the raw arrival stream —
//     demonstrates phantom alarms (late checkout missed) and missed
//     alarms (late exits dropped);
//   * the conventional fix — K-slack buffer + in-order engine — correct
//     but every alarm waits out the full slack;
//   * the native OOO engine — correct AND alarms fire as soon as the
//     negation interval is safe.
//
// Build & run:   ./build/examples/rfid_tracking
#include <iostream>

#include "common/table.hpp"
#include "engine/oracle/oracle.hpp"
#include "runtime/driver.hpp"
#include "runtime/verify.hpp"
#include "stream/disorder.hpp"
#include "workload/rfid.hpp"

int main() {
  using namespace oosp;

  RfidConfig cfg;
  cfg.num_items = 8'000;
  cfg.shoplift_fraction = 0.04;
  cfg.seed = 2024;
  RfidWorkload store(cfg);
  const auto readings = store.generate();

  // Checkout readings are delayed through the backbone: 15% of events
  // suffer up to 120 ticks of delivery latency.
  DisorderInjector network(LatencyModel::pareto(4.0, 1.4, 120), 0.15, 99);
  const auto arrivals = network.deliver(readings);
  const auto disorder = DisorderInjector::measure(arrivals);

  const CompiledQuery query =
      compile_query(store.shoplifting_query(600), store.registry());
  const auto truth = oracle_keys(query, arrivals);

  std::cout << "RFID store: " << arrivals.size() << " reader events, "
            << store.expected_shoplifted() << " items actually stolen, "
            << disorder.ooo_percent() << "% of events arrived late (max lateness "
            << disorder.max_lateness << " ticks)\n"
            << "query: " << query.text() << "\n\n";

  Table t({"engine", "alarms", "true", "phantom", "missed", "mean alarm delay",
           "peak state"});
  for (const EngineKind kind :
       {EngineKind::kInOrder, EngineKind::kKSlackInOrder, EngineKind::kOoo}) {
    DriverConfig dc;
    dc.kind = kind;
    dc.options.slack = network.slack_bound();
    dc.collect_matches = true;
    const RunResult r = run_stream(query, arrivals, dc);
    const VerifyResult v = verify_against_oracle(query, arrivals, r.collected);
    t.add_row({r.engine_name, Table::cell(r.matches),
               Table::cell(static_cast<std::uint64_t>(v.true_positives)),
               Table::cell(static_cast<std::uint64_t>(v.false_positives)),
               Table::cell(static_cast<std::uint64_t>(v.missed)),
               Table::cell(r.delay.mean(), 1),
               Table::cell(static_cast<std::uint64_t>(r.stats.footprint_peak))});
  }
  t.print(std::cout);

  std::cout << "\nGround truth (oracle): " << truth.size()
            << " shoplifting incidents.\n"
            << "The in-order engine raises phantom alarms for customers whose\n"
            << "checkout reading was merely late, and can miss real thefts whose\n"
            << "exit reading overtook the shelf reading. Both repaired engines are\n"
            << "exact. Note the alarm delays match here: this query's negation\n"
            << "interval ends AT the exit reading, so a conservative engine —\n"
            << "native or buffered — must wait out the lateness bound before an\n"
            << "alarm is provably not a paying customer. When the pattern\n"
            << "continues past the negated step (see intrusion_detection, or\n"
            << "bench_f7), the native engine's head start becomes visible.\n";
  return 0;
}
