// pattern_cli — run any pattern query over any bundled workload from the
// command line, with configurable disorder, engine and options.
//
// Examples:
//   ./build/examples/pattern_cli --workload rfid --events 5000 \
//       --engine ooo --ooo-pct 15 --max-delay 120 --verify
//   ./build/examples/pattern_cli --workload synthetic \
//       --query "PATTERN SEQ(T0 a, T1 b) WHERE a.key == b.key WITHIN 300" \
//       --engine kslack --print-matches 5
//   ./build/examples/pattern_cli --workload intrusion --engine ooo --aggressive
#include <iostream>

#include "common/args.hpp"
#include "common/table.hpp"
#include "query/explain.hpp"
#include "runtime/driver.hpp"
#include "runtime/verify.hpp"
#include "stream/disorder.hpp"
#include "stream/outage.hpp"
#include "workload/intrusion.hpp"
#include "workload/rfid.hpp"
#include "workload/stock.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace oosp;

struct Loaded {
  std::vector<Event> ordered;
  const TypeRegistry* registry = nullptr;
  std::string default_query;
  // Keep the owning workload alive.
  std::shared_ptr<void> owner;
};

Loaded load_workload(const std::string& name, std::int64_t events, std::uint64_t seed) {
  Loaded out;
  if (name == "synthetic") {
    auto wl = std::make_shared<SyntheticWorkload>(SyntheticConfig{
        .num_events = static_cast<std::size_t>(events), .num_types = 3,
        .key_cardinality = 50, .mean_gap = 5, .seed = seed});
    out.ordered = wl->generate();
    out.registry = &wl->registry();
    out.default_query = wl->seq_query(3, true, 2'000);
    out.owner = wl;
  } else if (name == "rfid") {
    auto wl = std::make_shared<RfidWorkload>(
        RfidConfig{.num_items = static_cast<std::size_t>(events / 3), .seed = seed});
    out.ordered = wl->generate();
    out.registry = &wl->registry();
    out.default_query = wl->shoplifting_query(600);
    out.owner = wl;
  } else if (name == "stock") {
    auto wl = std::make_shared<StockWorkload>(StockConfig{
        .num_ticks = static_cast<std::size_t>(events), .num_symbols = 30, .seed = seed});
    out.ordered = wl->generate();
    out.registry = &wl->registry();
    out.default_query = wl->vshape_query(60);
    out.owner = wl;
  } else if (name == "intrusion") {
    auto wl = std::make_shared<IntrusionWorkload>(IntrusionConfig{
        .num_events = static_cast<std::size_t>(events), .num_ips = 500, .seed = seed});
    out.ordered = wl->generate();
    out.registry = &wl->registry();
    out.default_query = wl->bruteforce_query(3, 300);
    out.owner = wl;
  } else {
    throw std::invalid_argument("unknown workload: " + name +
                                " (expected synthetic|rfid|stock|intrusion)");
  }
  return out;
}

EngineKind parse_engine(const std::string& name) {
  if (name == "ooo") return EngineKind::kOoo;
  if (name == "inorder") return EngineKind::kInOrder;
  if (name == "nfa") return EngineKind::kNfa;
  if (name == "kslack") return EngineKind::kKSlackInOrder;
  if (name == "kslack-nfa") return EngineKind::kKSlackNfa;
  throw std::invalid_argument("unknown engine: " + name +
                              " (expected ooo|inorder|nfa|kslack|kslack-nfa)");
}

}  // namespace

int main(int argc, char** argv) try {
  ArgParser args(
      "pattern_cli — evaluate a pattern query over a bundled workload under "
      "configurable out-of-order delivery");
  args.add_string("workload", "synthetic", "synthetic | rfid | stock | intrusion");
  args.add_string("query", "", "pattern query text (default: workload's canonical query)");
  args.add_string("engine", "ooo", "ooo | inorder | nfa | kslack | kslack-nfa");
  args.add_int("events", 20'000, "approximate number of events to generate");
  args.add_int("seed", 42, "workload generation seed");
  args.add_double("ooo-pct", 10.0, "percentage of events delivered late");
  args.add_int("max-delay", 200, "maximum delivery delay (K-slack bound)");
  args.add_int("outages", 0, "additionally inject this many partial outages");
  args.add_int("purge-period", 64, "events between purge passes (0 = never)");
  args.add_flag("aggressive", "use the aggressive (emit+retract) negation policy");
  args.add_flag("no-partition", "disable equi-join key partitioning");
  args.add_flag("verify", "check results against the brute-force oracle");
  args.add_int("print-matches", 0, "print the first N matches");
  args.add_flag("explain", "print the compiled query plan before running");
  if (!args.parse(argc, argv)) return 0;

  const Loaded wl =
      load_workload(args.get_string("workload"), args.get_int("events"),
                    static_cast<std::uint64_t>(args.get_int("seed")));

  // Delivery path: random per-event latency, then optional outages.
  DisorderInjector jitter(LatencyModel::uniform(args.get_int("max-delay")),
                          args.get_double("ooo-pct") / 100.0, 1234);
  std::vector<Event> arrivals = jitter.deliver(wl.ordered);
  Timestamp slack = jitter.slack_bound();
  if (args.get_int("outages") > 0) {
    // Outage injection needs a ts-ordered input: re-sort the jittered
    // stream is wrong (it would erase the jitter), so apply outages to
    // the ordered stream and the jitter to the result is not composable
    // either. Chain instead: ordered -> outage -> measure, then jitter
    // is skipped when outages are requested.
    const Timestamp base = std::max<Timestamp>(1, args.get_int("max-delay"));
    OutageInjector outage({.outages = static_cast<std::size_t>(args.get_int("outages")),
                           .min_duration = base,
                           .max_duration = base * 3,
                           .affected_fraction = 0.5,
                           .seed = 77});
    arrivals = outage.deliver(wl.ordered);
    slack = outage.slack_bound();
  }
  const auto disorder = DisorderInjector::measure(arrivals);

  const std::string query_text =
      args.get_string("query").empty() ? wl.default_query : args.get_string("query");
  const CompiledQuery query = compile_query(query_text, *wl.registry);
  if (args.get_flag("explain")) std::cout << explain(query, *wl.registry) << "\n";

  DriverConfig cfg;
  cfg.kind = parse_engine(args.get_string("engine"));
  cfg.options.slack = slack;
  cfg.options.purge_period = static_cast<std::size_t>(args.get_int("purge-period"));
  cfg.options.partition_by_key = !args.get_flag("no-partition");
  cfg.options.aggressive_negation = args.get_flag("aggressive");
  cfg.collect_matches = args.get_flag("verify") || args.get_int("print-matches") > 0;

  const RunResult r = run_stream(query, arrivals, cfg);

  std::cout << "query:    " << query.text() << "\n"
            << "stream:   " << arrivals.size() << " events, " << disorder.ooo_percent()
            << "% late, max lateness " << disorder.max_lateness << " (slack bound "
            << slack << ")\n"
            << "engine:   " << r.engine_name << "\n"
            << "matches:  " << r.matches;
  if (r.retractions) std::cout << " (+" << r.retractions << " retractions)";
  std::cout << "\nthroughput: " << static_cast<std::uint64_t>(r.events_per_second)
            << " events/s\n"
            << "delay:    mean " << r.delay.mean() << ", max " << r.delay.max()
            << " (stream time)\n"
            << "state:    peak " << r.stats.footprint_peak << " entries, "
            << r.stats.instances_purged << " purged\n";

  for (std::int64_t i = 0; i < args.get_int("print-matches") &&
                           i < static_cast<std::int64_t>(r.collected.size());
       ++i)
    std::cout << "  " << r.collected[static_cast<std::size_t>(i)] << "\n";

  if (args.get_flag("verify")) {
    // Under the aggressive policy the NET result (emissions minus
    // retractions) is what must match the oracle.
    std::vector<Match> net = r.collected;
    if (!r.collected_retractions.empty()) {
      std::vector<MatchKey> gone;
      for (const Match& m : r.collected_retractions) gone.push_back(match_key(m));
      std::sort(gone.begin(), gone.end());
      std::erase_if(net, [&](const Match& m) {
        const auto it = std::lower_bound(gone.begin(), gone.end(), match_key(m));
        if (it == gone.end() || *it != match_key(m)) return false;
        gone.erase(it);  // multiset semantics
        return true;
      });
    }
    const VerifyResult v = verify_against_oracle(query, arrivals, net);
    std::cout << "verify:   recall " << v.recall() << ", precision " << v.precision()
              << (v.exact() ? " — exact" : " — NOT exact") << "\n";
    return v.exact() ? 0 : 2;
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
