// Stock monitoring over merged exchange feeds.
//
// Two exchange feeds are each internally in timestamp order, but reach
// the engine over channels with different latencies; the merged arrival
// sequence is out of order even though no single feed ever is — the
// second disorder mechanism the paper describes (multi-source merge).
// The V-shape (dip-and-recover) pattern is evaluated directly on the
// merged stream by the native engine, with the merge's delay gap as the
// lateness bound.
//
// Build & run:   ./build/examples/stock_monitor
#include <iostream>
#include <memory>

#include "engine/engines.hpp"
#include "runtime/verify.hpp"
#include "stream/disorder.hpp"
#include "stream/source.hpp"
#include "workload/stock.hpp"

int main() {
  using namespace oosp;

  // One workload object defines the schema; two feeds carry disjoint
  // symbol ranges (exchange A lists symbols 0..19, exchange B 20..39).
  StockWorkload exchange_a({.num_ticks = 20'000, .num_symbols = 20, .seed = 501});
  StockWorkload exchange_b({.num_ticks = 20'000, .num_symbols = 20, .seed = 502});
  auto feed_b = exchange_b.generate();
  for (Event& e : feed_b) {
    e.id += 1'000'000;  // keep ids globally unique
    e.attrs[0] = Value(e.attrs[0].as_int() + 20);
  }

  // Exchange B's feed is 75 ticks slower than A's.
  std::vector<MergeSource::Input> inputs;
  inputs.push_back({std::make_unique<VectorSource>(exchange_a.generate()), 0});
  inputs.push_back({std::make_unique<VectorSource>(std::move(feed_b)), 75});
  MergeSource merged(std::move(inputs));

  const auto arrivals = drain(merged);
  const auto disorder = DisorderInjector::measure(arrivals);
  std::cout << "merged feed: " << arrivals.size() << " ticks, "
            << disorder.ooo_percent() << "% out of order (bounded by the "
            << merged.slack_bound() << "-tick channel gap)\n";

  const CompiledQuery query =
      compile_query(exchange_a.vshape_query(60), exchange_a.registry());
  std::cout << "query: " << query.text() << "\n\n";

  const auto sink = std::make_shared<CollectingSink>();
  EngineOptions options;
  options.slack = merged.slack_bound();
  const auto engine = make_engine(
      EngineKind::kOoo, std::make_shared<const CompiledQuery>(query), sink, options);
  for (const Event& e : arrivals) engine->on_event(e);
  engine->finish();

  const VerifyResult v = verify_against_oracle(query, arrivals, sink->matches());
  std::cout << "V-shape dips detected: " << sink->size()
            << " (oracle agrees: " << (v.exact() ? "yes" : "NO") << ")\n";

  // Show a few detected dips.
  std::size_t shown = 0;
  for (const Match& m : sink->matches()) {
    if (++shown > 3) break;
    std::cout << "  sym " << m.events[0].attr(0).as_int() << ": "
              << m.events[0].attr(1).as_double() << " -> "
              << m.events[1].attr(1).as_double() << " -> "
              << m.events[2].attr(1).as_double() << "  (t=" << m.events[0].ts << ".."
              << m.events[2].ts << ")\n";
  }
  const auto stats = engine->stats_snapshot();
  std::cout << "late events: " << stats.late_events
            << ", peak state: " << stats.footprint_peak << " entries\n";
  return 0;
}
