// Real-time intrusion detection — alert latency under disorder.
//
// Brute-force signature: three failed logins followed by a success from
// the same IP. The metric that matters here is ALERT DELAY: how much
// stream time passes between the attack completing and the engine
// raising the alert. A K-slack buffered engine delays every alert by the
// full slack; the native engine alerts immediately unless the completing
// event itself was late.
//
// Build & run:   ./build/examples/intrusion_detection
#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "runtime/driver.hpp"
#include "runtime/verify.hpp"
#include "stream/disorder.hpp"
#include "workload/intrusion.hpp"

int main() {
  using namespace oosp;

  IntrusionConfig cfg;
  cfg.num_events = 60'000;
  cfg.num_ips = 1'000;
  cfg.seed = 7777;
  IntrusionWorkload net(cfg);
  const auto ordered = net.generate();

  // Sensor uplinks add up to 200 ticks of delay to 10% of events.
  DisorderInjector uplink(LatencyModel::uniform(200), 0.10, 3);
  const auto arrivals = uplink.deliver(ordered);

  const CompiledQuery query = compile_query(net.bruteforce_query(3, 300), net.registry());
  std::cout << "auth stream: " << arrivals.size() << " events, "
            << DisorderInjector::measure(arrivals).ooo_percent()
            << "% late\nquery: " << query.text() << "\n\n";

  Table t({"engine", "alerts", "exact?", "delay mean", "delay max", "events/s"});
  for (const EngineKind kind : {EngineKind::kKSlackInOrder, EngineKind::kOoo}) {
    DriverConfig dc;
    dc.kind = kind;
    dc.options.slack = uplink.slack_bound();
    dc.collect_matches = true;
    const RunResult r = run_stream(query, arrivals, dc);
    const VerifyResult v = verify_against_oracle(query, arrivals, r.collected);
    t.add_row({r.engine_name, Table::cell(r.matches), v.exact() ? "yes" : "NO",
               Table::cell(r.delay.mean(), 1), Table::cell(r.delay.max(), 0),
               Table::cell(r.events_per_second, 0)});
  }
  t.print(std::cout);

  std::cout << "\nBoth engines detect the identical alert set; the buffered\n"
            << "engine holds every alert for the full slack (" << uplink.slack_bound()
            << " ticks) while the native engine raises most alerts the moment\n"
            << "the completing login arrives.\n";
  return 0;
}
