#!/usr/bin/env python3
"""Summarize Google Benchmark JSON output and gate it against baselines.

Subcommands:

  extract RUN.json
      Print a flat {benchmark -> {counter -> value}} summary of a
      --benchmark_out=RUN.json file (the BENCH_<name>.json CI artifact).

  check RUN.json BASELINE.json [--tolerance 0.15]
      Compare a run against a committed baseline (bench/baselines/*.json)
      and exit non-zero if any gated metric regresses beyond the
      tolerance. "higher" gates fail when value < baseline * (1 - tol);
      "lower" gates fail when value > baseline * (1 + tol).

  baseline RUN.json --bench NAME --gate BENCH:COUNTER[:DIRECTION[:MARGIN]] ...
           [--out FILE]
      Write a baseline file from a measured run. Each gate's stored
      baseline is the measured value derated by MARGIN (default 0.3):
      measured * (1 - margin) for "higher", * (1 + margin) for "lower" —
      so routine machine-to-machine variance does not trip the gate and
      only genuine regressions (further >tolerance below the derated
      value) fail CI.

Baseline file schema:

  {
    "bench": "bench_p4_agg",
    "gates": [
      {"benchmark": "P4/agg-ooo/delay:0.5w", "counter": "speedup",
       "baseline": 2.31, "direction": "higher"}
    ]
  }

Only stdlib; runs anywhere python3 does.
"""

import argparse
import contextlib
import json
import re
import signal
import sys

# Die quietly when piped into `head` and friends.
with contextlib.suppress(AttributeError, ValueError):
    signal.signal(signal.SIGPIPE, signal.SIG_DFL)

# Keys of a benchmark entry that are not user counters.
_RESERVED = {
    "name", "run_name", "run_type", "repetitions", "repetition_index",
    "threads", "iterations", "real_time", "cpu_time", "time_unit",
    "family_index", "per_family_instance_index", "aggregate_name",
    "aggregate_unit", "label", "error_occurred", "error_message",
}

_NAME_SUFFIX = re.compile(r"/(iterations|repeats|threads|min_time|min_warmup_time):[^/]+")


def clean_name(name):
    """Strip runtime-argument suffixes google-benchmark appends to names."""
    return _NAME_SUFFIX.sub("", name)


def load_run(path):
    """RUN.json -> {clean benchmark name -> {counter/time -> value}}."""
    with open(path) as f:
        data = json.load(f)
    out = {}
    for entry in data.get("benchmarks", []):
        if entry.get("run_type") == "aggregate":
            continue
        metrics = {k: v for k, v in entry.items()
                   if k not in _RESERVED and isinstance(v, (int, float))}
        metrics["real_time"] = entry.get("real_time")
        metrics["cpu_time"] = entry.get("cpu_time")
        out[clean_name(entry["name"])] = metrics
    return out


def cmd_extract(args):
    print(json.dumps({"source": args.run, "benchmarks": load_run(args.run)},
                     indent=2, sort_keys=True))
    return 0


def cmd_check(args):
    run = load_run(args.run)
    with open(args.baseline) as f:
        base = json.load(f)
    tol = args.tolerance
    failures = []
    for gate in base.get("gates", []):
        name, counter = gate["benchmark"], gate["counter"]
        baseline = float(gate["baseline"])
        higher = gate.get("direction", "higher") == "higher"
        metrics = run.get(name)
        if metrics is None or counter not in metrics:
            failures.append(f"{name} [{counter}]: missing from run")
            print(f"FAIL {name} [{counter}]: not found in {args.run}")
            continue
        value = float(metrics[counter])
        floor = baseline * (1.0 - tol)
        ceil = baseline * (1.0 + tol)
        ok = value >= floor if higher else value <= ceil
        bound = f">= {floor:.4g}" if higher else f"<= {ceil:.4g}"
        status = "ok  " if ok else "FAIL"
        print(f"{status} {name} [{counter}]: {value:.4g} "
              f"(baseline {baseline:.4g}, require {bound})")
        if not ok:
            failures.append(
                f"{name} [{counter}]: {value:.4g} vs baseline {baseline:.4g} "
                f"(require {bound})")
    if failures:
        for f_ in failures:
            # GitHub Actions error annotation; harmless elsewhere.
            print(f"::error::benchmark regression: {f_}")
        return 1
    if not base.get("gates"):
        print(f"note: no gates defined in {args.baseline}")
    return 0


def cmd_baseline(args):
    run = load_run(args.run)
    gates = []
    for spec in args.gate:
        # Benchmark names themselves contain ':' (e.g. "P2/.../batch:256"),
        # so gate specs use '@' as the separator.
        parts = spec.split("@")
        if len(parts) < 2:
            raise SystemExit(f"bad --gate {spec!r}: want BENCH@COUNTER[@DIR[@MARGIN]]")
        name, counter = parts[0], parts[1]
        direction = parts[2] if len(parts) > 2 and parts[2] else "higher"
        margin = float(parts[3]) if len(parts) > 3 else args.margin
        if direction not in ("higher", "lower"):
            raise SystemExit(f"bad --gate {spec!r}: direction must be higher|lower")
        metrics = run.get(name)
        if metrics is None or counter not in metrics:
            raise SystemExit(f"--gate {spec!r}: {name} [{counter}] not in {args.run}")
        measured = float(metrics[counter])
        derated = measured * (1.0 - margin if direction == "higher" else 1.0 + margin)
        gates.append({
            "benchmark": name,
            "counter": counter,
            "baseline": round(derated, 4),
            "direction": direction,
            "measured": round(measured, 4),
        })
    doc = {"bench": args.bench, "gates": gates}
    text = json.dumps(doc, indent=2) + "\n"
    if args.out:
        with open(args.out, "w") as f:
            f.write(text)
        print(f"wrote {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def main(argv):
    p = argparse.ArgumentParser(description=__doc__,
                                formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = p.add_subparsers(dest="cmd", required=True)

    pe = sub.add_parser("extract", help="summarize a benchmark JSON file")
    pe.add_argument("run")
    pe.set_defaults(fn=cmd_extract)

    pc = sub.add_parser("check", help="gate a run against a baseline file")
    pc.add_argument("run")
    pc.add_argument("baseline")
    pc.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed fractional regression (default 0.15)")
    pc.set_defaults(fn=cmd_check)

    pb = sub.add_parser("baseline", help="write a baseline file from a run")
    pb.add_argument("run")
    pb.add_argument("--bench", required=True, help="bench target name")
    pb.add_argument("--gate", action="append", required=True,
                    metavar="BENCH@COUNTER[@DIR[@MARGIN]]",
                    help="gated metric; DIR is higher|lower (default higher)")
    pb.add_argument("--margin", type=float, default=0.3,
                    help="default derating margin (default 0.3)")
    pb.add_argument("--out", "-o", help="output file (default stdout)")
    pb.set_defaults(fn=cmd_baseline)

    args = p.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
