#!/usr/bin/env bash
# Re-measure the committed perf-gate baselines in bench/baselines/.
#
# Run this after an INTENTIONAL performance change (better or worse), on
# a quiet machine, and commit the regenerated files together with the
# change that motivated them. The stored baselines are derated from the
# measured values (see scripts/bench_metrics.py baseline --margin), and
# the CI gate allows a further 15% below them, so only real regressions
# trip the perf job. For a one-off intentionally-regressing PR, prefer
# the `perf-regression-ok` label over rewriting history here.
#
# Usage: scripts/update_baselines.sh [build-dir]   (default: build-perf)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build-perf}"
BENCHES=(bench_p2_batch bench_p3_multiquery bench_r3_overload bench_p4_agg)

cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD" -j "$(nproc)" --target "${BENCHES[@]}"

OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT
for b in "${BENCHES[@]}"; do
  echo "== $b (short mode)"
  OOSP_BENCH_SHORT=1 "$BUILD/bench/$b" \
    --benchmark_out="$OUT/BENCH_$b.json" --benchmark_out_format=json
done

mkdir -p bench/baselines

# Gated headline metrics. Ratios (speedup, recall) are machine-portable;
# absolute ev/s is not, so it is never gated. Recall is deterministic, so
# it gets a tight margin; timing ratios get the default 0.3.
python3 scripts/bench_metrics.py baseline "$OUT/BENCH_bench_p2_batch.json" \
  --bench bench_p2_batch \
  --gate 'P2/session-ooo/batch:256@speedup' \
  -o bench/baselines/bench_p2_batch.json
python3 scripts/bench_metrics.py baseline "$OUT/BENCH_bench_p3_multiquery.json" \
  --bench bench_p3_multiquery \
  --gate 'P3/mqo-shared/queries:16@speedup' \
  -o bench/baselines/bench_p3_multiquery.json
python3 scripts/bench_metrics.py baseline "$OUT/BENCH_bench_r3_overload.json" \
  --bench bench_r3_overload \
  --gate 'Overload/by-lateness/load:4x@recall@higher@0.05' \
  -o bench/baselines/bench_r3_overload.json
python3 scripts/bench_metrics.py baseline "$OUT/BENCH_bench_p4_agg.json" \
  --bench bench_p4_agg \
  --gate 'P4/agg-ooo/delay:0.5w@speedup' \
  --gate 'P4/agg-ooo/delay:1w@speedup' \
  -o bench/baselines/bench_p4_agg.json

echo "baselines updated:"
git diff --stat -- bench/baselines
