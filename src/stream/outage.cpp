#include "stream/outage.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "stream/disorder.hpp"

namespace oosp {

OutageInjector::OutageInjector(OutageConfig config) : config_(config), rng_(config.seed) {
  OOSP_REQUIRE(config_.min_duration >= 1, "outage duration must be positive");
  OOSP_REQUIRE(config_.max_duration >= config_.min_duration,
               "max_duration must be >= min_duration");
  OOSP_REQUIRE(config_.affected_fraction >= 0.0 && config_.affected_fraction <= 1.0,
               "affected_fraction must be in [0,1]");
}

std::vector<Event> OutageInjector::deliver(std::span<const Event> in_order) {
  OOSP_REQUIRE(is_ts_ordered(in_order), "deliver() expects a ts-ordered stream");
  windows_.clear();
  slack_bound_ = 0;
  if (in_order.empty()) return {};

  const Timestamp span_lo = in_order.front().ts;
  const Timestamp span_hi = in_order.back().ts;
  for (std::size_t i = 0; i < config_.outages; ++i) {
    const Timestamp duration =
        rng_.uniform_int(config_.min_duration, config_.max_duration);
    if (span_hi <= span_lo) break;
    const Timestamp start = rng_.uniform_int(span_lo, span_hi);
    windows_.push_back(Window{start, start + duration});
    slack_bound_ = std::max(slack_bound_, duration);
  }
  // Overlapping outages behave like one longer outage for the events in
  // the overlap; delivery uses the max recovery instant covering each ts.
  struct Item {
    Event event;
    Timestamp delivery;
    std::size_t pos;
  };
  std::vector<Item> items;
  items.reserve(in_order.size());
  for (std::size_t i = 0; i < in_order.size(); ++i) {
    const Event& e = in_order[i];
    Timestamp delivery = e.ts;
    if (rng_.bernoulli(config_.affected_fraction)) {
      for (const Window& w : windows_)
        if (e.ts >= w.start && e.ts < w.end) delivery = std::max(delivery, w.end);
    }
    items.push_back(Item{e, delivery, i});
  }
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    if (a.delivery != b.delivery) return a.delivery < b.delivery;
    return a.pos < b.pos;
  });
  std::vector<Event> out;
  out.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    out.push_back(std::move(items[i].event));
    out.back().arrival = i;
  }
  return out;
}

}  // namespace oosp
