// Adaptive K-slack estimation from observed lateness.
//
// The K-slack contract is only as good as the K someone configured; the
// paper's own motivation (networking latencies, machine failure) says the
// true lateness bound drifts at runtime. SlackEstimator watches the
// lateness of every arrival over a sliding sample window and recommends a
// slack that covers a configurable quantile of it, times a headroom
// factor — the dynamic-buffer-sizing approach (Weiss et al., PAPERS.md)
// adapted to this engine's integer stream time.
//
// The estimate is recomputed every `refresh_period` observations (an
// O(window) selection), so per-event cost is an append into a ring
// buffer. Consumers decide *when* to apply a recommendation: the engines
// grow their effective slack immediately (growing is always safe — it
// only delays purging/sealing) but shrink only at purge boundaries and
// never below state already finalized (see DESIGN.md "When K is wrong").
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "event/event.hpp"

namespace oosp {

struct SlackEstimatorConfig {
  double quantile = 0.999;        // lateness quantile the slack must cover
  double headroom = 1.5;          // multiplier on the quantile estimate
  std::size_t window = 4096;      // sliding sample window, in events
  std::size_t refresh_period = 256;  // recompute estimate every N observations
  Timestamp min_slack = 0;        // floor (never recommend below)
  Timestamp max_slack = kMaxTimestamp / 4;  // cap (bounds buffer growth)
};

class SlackEstimator {
 public:
  explicit SlackEstimator(SlackEstimatorConfig config = {}, Timestamp initial = 0)
      : config_(config), estimate_(clamp(initial)) {
    samples_.reserve(config_.window);
  }

  // Records one arrival's lateness (0 for in-order events).
  void observe(Timestamp lateness) noexcept {
    if (config_.window == 0) return;
    if (samples_.size() < config_.window) {
      samples_.push_back(lateness);
    } else {
      samples_[next_] = lateness;
      next_ = (next_ + 1) % config_.window;
    }
    if (lateness > estimate_) {
      // Fast path: an excursion beyond the current estimate is the
      // leading edge of a spike. Cover it (with headroom) immediately —
      // waiting out the refresh period would let the rest of the burst
      // through as violations.
      estimate_ = clamp(ceil_scaled(lateness));
    }
    if (++since_refresh_ >= std::max<std::size_t>(1, config_.refresh_period)) {
      since_refresh_ = 0;
      refresh();
    }
  }

  // Current recommended K, clamped to [min_slack, max_slack].
  Timestamp estimate() const noexcept { return estimate_; }

  // On-demand lateness quantile over the current sample window, RAW —
  // no headroom, no clamping. This is the read the overload monitor
  // prices shedding from: "how late is the q-fraction boundary of
  // recent arrivals", distinct from estimate()'s "what slack should the
  // engines trust". O(window) selection; call at refresh cadence, not
  // per event. Returns 0 while the window is empty.
  Timestamp quantile(double q) const {
    if (samples_.empty()) return 0;
    std::vector<Timestamp> scratch = samples_;
    const double qc = std::min(1.0, std::max(0.0, q));
    const std::size_t rank = std::min(
        scratch.size() - 1,
        static_cast<std::size_t>(qc * static_cast<double>(scratch.size())));
    std::nth_element(scratch.begin(),
                     scratch.begin() + static_cast<std::ptrdiff_t>(rank),
                     scratch.end());
    return scratch[rank];
  }

  std::size_t samples() const noexcept { return samples_.size(); }

  // Checkpoint support: raw ring state out / in (runtime/checkpoint.hpp).
  // The config is NOT serialized — it comes from EngineOptions at
  // construction, which restore validates separately.
  const std::vector<Timestamp>& sample_ring() const noexcept { return samples_; }
  std::size_t ring_next() const noexcept { return next_; }
  std::size_t since_refresh() const noexcept { return since_refresh_; }
  void restore_state(std::vector<Timestamp> samples, std::size_t next,
                     std::size_t since_refresh, Timestamp estimate) {
    samples_ = std::move(samples);
    next_ = next;
    since_refresh_ = since_refresh;
    estimate_ = estimate;
  }

 private:
  Timestamp clamp(Timestamp k) const noexcept {
    return std::min(config_.max_slack, std::max(config_.min_slack, k));
  }

  Timestamp ceil_scaled(Timestamp lateness) const noexcept {
    const double covered =
        static_cast<double>(lateness) * std::max(1.0, config_.headroom);
    return static_cast<Timestamp>(std::ceil(covered));
  }

  void refresh() {
    if (samples_.empty()) return;
    scratch_ = samples_;
    const double q = std::min(1.0, std::max(0.0, config_.quantile));
    const std::size_t rank = std::min(
        scratch_.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(scratch_.size())));
    std::nth_element(scratch_.begin(),
                     scratch_.begin() + static_cast<std::ptrdiff_t>(rank),
                     scratch_.end());
    estimate_ = clamp(ceil_scaled(scratch_[rank]));
  }

  SlackEstimatorConfig config_;
  std::vector<Timestamp> samples_;  // ring buffer once full
  std::vector<Timestamp> scratch_;  // reused selection workspace
  std::size_t next_ = 0;
  std::size_t since_refresh_ = 0;
  Timestamp estimate_ = 0;
};

}  // namespace oosp
