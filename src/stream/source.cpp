#include "stream/source.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace oosp {

MergeSource::MergeSource(std::vector<Input> inputs) : inputs_(std::move(inputs)) {
  OOSP_REQUIRE(!inputs_.empty(), "merge needs at least one input");
  Timestamp min_delay = kMaxTimestamp, max_delay = 0;
  for (const Input& in : inputs_) {
    OOSP_REQUIRE(in.source != nullptr, "merge input has null source");
    OOSP_REQUIRE(in.channel_delay >= 0, "channel delay must be non-negative");
    min_delay = std::min(min_delay, in.channel_delay);
    max_delay = std::max(max_delay, in.channel_delay);
  }
  slack_bound_ = max_delay - min_delay;
  heads_.resize(inputs_.size());
  for (std::size_t i = 0; i < inputs_.size(); ++i) refill(i);
}

void MergeSource::refill(std::size_t input) {
  auto e = inputs_[input].source->next();
  if (!e) {
    heads_[input] = std::nullopt;
    return;
  }
  const Timestamp delivery = e->ts + inputs_[input].channel_delay;
  heads_[input] = Head{std::move(*e), delivery, input};
}

std::optional<Event> MergeSource::next() {
  std::size_t best = heads_.size();
  for (std::size_t i = 0; i < heads_.size(); ++i) {
    if (!heads_[i]) continue;
    if (best == heads_.size() || heads_[i]->delivery < heads_[best]->delivery ||
        (heads_[i]->delivery == heads_[best]->delivery &&
         heads_[i]->event.ts < heads_[best]->event.ts))
      best = i;
  }
  if (best == heads_.size()) return std::nullopt;
  Event out = std::move(heads_[best]->event);
  out.arrival = next_arrival_++;
  refill(best);
  return out;
}

std::vector<Event> drain(EventSource& source) {
  std::vector<Event> out;
  while (auto e = source.next()) out.push_back(std::move(*e));
  return out;
}

}  // namespace oosp
