#include "stream/disorder.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace oosp {

DisorderInjector::DisorderInjector(LatencyModel model, double ooo_fraction,
                                   std::uint64_t seed)
    : model_(model), ooo_fraction_(ooo_fraction), rng_(seed) {
  OOSP_REQUIRE(ooo_fraction >= 0.0 && ooo_fraction <= 1.0,
               "ooo_fraction must be in [0,1]");
}

std::vector<Event> DisorderInjector::deliver(std::span<const Event> in_order) {
  OOSP_REQUIRE(is_ts_ordered(in_order), "deliver() expects a ts-ordered stream");
  struct Item {
    Event event;
    Timestamp delivery;
    std::size_t source_pos;
  };
  std::vector<Item> items;
  items.reserve(in_order.size());
  for (std::size_t i = 0; i < in_order.size(); ++i) {
    const Event& e = in_order[i];
    const Timestamp delay = rng_.bernoulli(ooo_fraction_) ? model_.sample(rng_) : 0;
    items.push_back(Item{e, e.ts + delay, i});
  }
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    if (a.delivery != b.delivery) return a.delivery < b.delivery;
    return a.source_pos < b.source_pos;
  });
  std::vector<Event> out;
  out.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    out.push_back(std::move(items[i].event));
    out.back().arrival = i;
  }
  return out;
}

DisorderStats DisorderInjector::measure(std::span<const Event> arrivals) {
  DisorderStats s;
  s.events = arrivals.size();
  Timestamp clock = kMinTimestamp;
  for (const Event& e : arrivals) {
    if (clock != kMinTimestamp && e.ts < clock) {
      ++s.late_events;
      s.max_lateness = std::max(s.max_lateness, clock - e.ts);
    }
    clock = std::max(clock, e.ts);
  }
  return s;
}

bool is_ts_ordered(std::span<const Event> events) noexcept {
  for (std::size_t i = 1; i < events.size(); ++i)
    if (events[i].ts < events[i - 1].ts) return false;
  return true;
}

}  // namespace oosp
