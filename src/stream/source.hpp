// Pull-based event sources and multi-source merging.
//
// Engines consume events one at a time in arrival order. A source yields
// that arrival order. `MergeSource` models the second disorder mechanism
// the paper describes: several sources that are each internally in order
// (by ts) but reach the engine through channels with different delays —
// the merged arrival sequence is out of order even though no single
// source ever is.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "event/event.hpp"

namespace oosp {

class EventSource {
 public:
  virtual ~EventSource() = default;
  // Next event in arrival order, or nullopt at end of stream.
  virtual std::optional<Event> next() = 0;
};

// Replays a pre-materialized arrival sequence.
class VectorSource final : public EventSource {
 public:
  explicit VectorSource(std::vector<Event> events) : events_(std::move(events)) {}
  std::optional<Event> next() override {
    if (pos_ >= events_.size()) return std::nullopt;
    return events_[pos_++];
  }

 private:
  std::vector<Event> events_;
  std::size_t pos_ = 0;
};

// Merges several ts-ordered inputs, each shifted by a fixed channel
// delay; delivery order is (ts + channel_delay). Arrival sequence numbers
// are (re)assigned on the merged output.
class MergeSource final : public EventSource {
 public:
  struct Input {
    std::unique_ptr<EventSource> source;
    Timestamp channel_delay = 0;
  };

  explicit MergeSource(std::vector<Input> inputs);
  std::optional<Event> next() override;

  // The K-slack bound of the merged stream: max pairwise delay gap.
  Timestamp slack_bound() const noexcept { return slack_bound_; }

 private:
  struct Head {
    Event event;
    Timestamp delivery;
    std::size_t input;
  };

  void refill(std::size_t input);

  std::vector<Input> inputs_;
  std::vector<std::optional<Head>> heads_;
  Timestamp slack_bound_ = 0;
  ArrivalSeq next_arrival_ = 0;
};

// Drains a source to a vector (testing / batch experiments).
std::vector<Event> drain(EventSource& source);

}  // namespace oosp
