#include "stream/latency.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace oosp {

std::string_view to_string(LatencyKind k) noexcept {
  switch (k) {
    case LatencyKind::kNone: return "none";
    case LatencyKind::kFixed: return "fixed";
    case LatencyKind::kUniform: return "uniform";
    case LatencyKind::kNormal: return "normal";
    case LatencyKind::kPareto: return "pareto";
  }
  return "?";
}

LatencyModel LatencyModel::fixed(Timestamp d) {
  OOSP_REQUIRE(d >= 0, "delay must be non-negative");
  LatencyModel m;
  m.kind = LatencyKind::kFixed;
  m.max_delay = d;
  return m;
}

LatencyModel LatencyModel::uniform(Timestamp max) {
  OOSP_REQUIRE(max >= 0, "delay must be non-negative");
  LatencyModel m;
  m.kind = LatencyKind::kUniform;
  m.max_delay = max;
  return m;
}

LatencyModel LatencyModel::normal(double mean, double stddev, Timestamp max) {
  OOSP_REQUIRE(max >= 0, "delay must be non-negative");
  OOSP_REQUIRE(stddev >= 0.0, "stddev must be non-negative");
  LatencyModel m;
  m.kind = LatencyKind::kNormal;
  m.mean = mean;
  m.stddev = stddev;
  m.max_delay = max;
  return m;
}

LatencyModel LatencyModel::pareto(double scale, double shape, Timestamp max) {
  OOSP_REQUIRE(max >= 0, "delay must be non-negative");
  OOSP_REQUIRE(scale > 0.0 && shape > 0.0, "pareto parameters must be positive");
  LatencyModel m;
  m.kind = LatencyKind::kPareto;
  m.pareto_scale = scale;
  m.pareto_shape = shape;
  m.max_delay = max;
  return m;
}

Timestamp LatencyModel::sample(Rng& rng) const {
  double d = 0.0;
  switch (kind) {
    case LatencyKind::kNone: return 0;
    case LatencyKind::kFixed: return max_delay;
    case LatencyKind::kUniform:
      return static_cast<Timestamp>(rng.uniform_int(0, max_delay));
    case LatencyKind::kNormal: d = rng.normal(mean, stddev); break;
    case LatencyKind::kPareto: d = rng.pareto(pareto_scale, pareto_shape) - pareto_scale; break;
  }
  const auto t = static_cast<Timestamp>(std::llround(std::max(0.0, d)));
  return std::clamp<Timestamp>(t, 0, max_delay);
}

}  // namespace oosp
