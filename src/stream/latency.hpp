// Network latency models for the simulated delivery path.
//
// The paper attributes out-of-order arrival to "networking latencies and
// even machine failure". We model the delivery delay of each event as a
// random variable; sorting by (ts + delay) turns an in-order stream into
// the out-of-order arrival sequence the engine observes. All models are
// clamped to [0, max_delay], so `max_delay` is a sound K-slack bound for
// the resulting stream.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "event/event.hpp"

namespace oosp {

enum class LatencyKind : std::uint8_t {
  kNone,     // always 0
  kFixed,    // always max_delay
  kUniform,  // U[0, max_delay]
  kNormal,   // N(mean, stddev) clamped to [0, max_delay]
  kPareto,   // pareto(scale, shape) − scale, clamped (heavy tail)
};

std::string_view to_string(LatencyKind k) noexcept;

struct LatencyModel {
  LatencyKind kind = LatencyKind::kNone;
  Timestamp max_delay = 0;  // clamp bound == K-slack guarantee
  double mean = 0.0;        // kNormal
  double stddev = 0.0;      // kNormal
  double pareto_scale = 1.0;  // kPareto
  double pareto_shape = 1.5;  // kPareto

  static LatencyModel none() { return {}; }
  static LatencyModel fixed(Timestamp d);
  static LatencyModel uniform(Timestamp max);
  static LatencyModel normal(double mean, double stddev, Timestamp max);
  static LatencyModel pareto(double scale, double shape, Timestamp max);

  // Samples one delivery delay in [0, max_delay].
  Timestamp sample(Rng& rng) const;
};

}  // namespace oosp
