// Outage (machine-failure) disorder model.
//
// The paper's abstract names two causes of out-of-order arrival:
// networking latencies — modelled by DisorderInjector's per-event random
// delays — and machine failure, modelled here. During an outage window a
// link or broker buffers everything it carries; on recovery the backlog
// is flushed at once. Only PART of the traffic rides the failing path
// (`affected_fraction` — think one of several sensors, partitions or
// replicated links), so unaffected events keep flowing during the outage
// and the flushed backlog lands behind them: long stretches of perfectly
// ordered data punctuated by dense, heavily-late bursts, with the
// maximum lateness bounded by the longest outage. (A 100%-affected
// outage of a single totally-ordered pipeline merely delays the whole
// stream and produces no disorder — the backlog still drains in
// timestamp order.)
#pragma once

#include <span>
#include <vector>

#include "common/rng.hpp"
#include "event/event.hpp"

namespace oosp {

struct OutageConfig {
  std::size_t outages = 3;          // failure episodes across the stream
  Timestamp min_duration = 100;     // outage length drawn U[min, max]
  Timestamp max_duration = 500;
  double affected_fraction = 0.5;   // share of traffic on the failing path
  std::uint64_t seed = 1;
};

class OutageInjector {
 public:
  explicit OutageInjector(OutageConfig config);

  // Takes a ts-ordered stream; returns the arrival order with outage
  // backlogs flushed at their recovery instants. Arrival sequence
  // numbers are reassigned.
  std::vector<Event> deliver(std::span<const Event> in_order);

  // Sound K-slack bound for the LAST deliver() call: the longest outage
  // actually scheduled (0 before any call).
  Timestamp slack_bound() const noexcept { return slack_bound_; }

  // The outage windows scheduled by the last deliver() call.
  struct Window {
    Timestamp start;
    Timestamp end;  // recovery instant (exclusive of further delay)
  };
  const std::vector<Window>& windows() const noexcept { return windows_; }

 private:
  OutageConfig config_;
  Rng rng_;
  Timestamp slack_bound_ = 0;
  std::vector<Window> windows_;
};

}  // namespace oosp
