// Stream clock: the engine-side notion of time progress.
//
// The clock is the maximum application timestamp delivered so far. Under
// the K-slack contract every event arrives before the clock exceeds its
// timestamp by more than K, which makes two derived quantities safe:
//
//   * seal point  = clock − K : no future event can carry ts <= seal
//     point, so intervals ending at or before it are final ("sealed").
//   * purge point = clock − W − K : state older than this can never join
//     a new match of a window-W query (DESIGN.md §3.3).
//
// The clock also measures the observed lateness of each event, which
// tests use to validate that injected streams respect their stated bound.
#pragma once

#include <algorithm>

#include "event/event.hpp"

namespace oosp {

class StreamClock {
 public:
  explicit StreamClock(Timestamp slack = 0) : slack_(slack) {}

  // Observes an arrival; returns the event's lateness (0 when in order).
  Timestamp observe(const Event& e) noexcept {
    const Timestamp lateness = started_ ? std::max<Timestamp>(0, clock_ - e.ts) : 0;
    max_lateness_ = std::max(max_lateness_, lateness);
    clock_ = started_ ? std::max(clock_, e.ts) : e.ts;
    started_ = true;
    return lateness;
  }

  bool started() const noexcept { return started_; }
  Timestamp now() const noexcept { return started_ ? clock_ : kMinTimestamp; }
  Timestamp slack() const noexcept { return slack_; }

  // Adaptive K-slack support: retunes the slack the seal point is derived
  // from. Callers that cache seal/purge decisions must keep their own
  // monotone watermark — raising the slack moves seal_point() backwards,
  // which never un-seals anything already acted upon.
  void set_slack(Timestamp slack) noexcept { slack_ = slack; }
  Timestamp max_lateness() const noexcept { return max_lateness_; }

  // Largest timestamp t such that no future event can have ts <= t.
  // kMinTimestamp before any event is seen.
  Timestamp seal_point() const noexcept {
    if (!started_) return kMinTimestamp;
    // Guard against underflow near the numeric extremes.
    return clock_ < kMinTimestamp + slack_ + 1 ? kMinTimestamp : clock_ - slack_ - 1;
  }

  // K-slack contract violated iff some event was later than `slack`.
  bool contract_violated() const noexcept { return max_lateness_ > slack_; }

  // Checkpoint support: raw state out / in (runtime/checkpoint.hpp).
  Timestamp raw_clock() const noexcept { return clock_; }
  void restore_state(Timestamp slack, Timestamp clock, Timestamp max_lateness,
                     bool started) noexcept {
    slack_ = slack;
    clock_ = clock;
    max_lateness_ = max_lateness;
    started_ = started;
  }

 private:
  Timestamp slack_;
  Timestamp clock_ = kMinTimestamp;
  Timestamp max_lateness_ = 0;
  bool started_ = false;
};

}  // namespace oosp
