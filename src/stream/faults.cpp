#include "stream/faults.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "stream/disorder.hpp"

namespace oosp {

namespace {

void reassign_arrivals(std::vector<Event>& stream) {
  for (std::size_t i = 0; i < stream.size(); ++i)
    stream[i].arrival = static_cast<ArrivalSeq>(i);
}

}  // namespace

DuplicateFault::DuplicateFault(double fraction, std::size_t max_gap, std::uint64_t seed)
    : fraction_(fraction), max_gap_(max_gap), seed_(seed) {
  OOSP_REQUIRE(fraction >= 0.0 && fraction <= 1.0, "fraction must be in [0,1]");
  OOSP_REQUIRE(max_gap >= 1, "max_gap must be positive");
}

std::vector<Event> DuplicateFault::apply(std::vector<Event> stream) {
  stats_ = FaultStats{};
  stats_.events_in = stream.size();
  Rng rng(seed_);
  // Position keys: originals sit at 2i; a duplicate of i re-delivered
  // `gap` events later sits at 2(i+gap)+1 — after the original at that
  // distance but before the next original. Stable sort keeps original
  // relative order intact.
  struct Keyed {
    Event event;
    std::size_t key;
  };
  std::vector<Keyed> keyed;
  keyed.reserve(stream.size() * 2);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    keyed.push_back(Keyed{stream[i], 2 * i});
    if (rng.bernoulli(fraction_)) {
      const std::size_t gap =
          static_cast<std::size_t>(rng.uniform_int(1, static_cast<std::int64_t>(max_gap_)));
      keyed.push_back(Keyed{stream[i], 2 * (i + gap) + 1});
      ++stats_.duplicated;
    }
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const Keyed& a, const Keyed& b) { return a.key < b.key; });
  std::vector<Event> out;
  out.reserve(keyed.size());
  for (Keyed& k : keyed) out.push_back(std::move(k.event));
  reassign_arrivals(out);
  stats_.events_out = out.size();
  return out;
}

LossFault::LossFault(double fraction, std::uint64_t seed)
    : fraction_(fraction), seed_(seed) {
  OOSP_REQUIRE(fraction >= 0.0 && fraction <= 1.0, "fraction must be in [0,1]");
}

std::vector<Event> LossFault::apply(std::vector<Event> stream) {
  stats_ = FaultStats{};
  stats_.events_in = stream.size();
  Rng rng(seed_);
  std::vector<Event> out;
  out.reserve(stream.size());
  for (Event& e : stream) {
    if (rng.bernoulli(fraction_)) {
      ++stats_.lost;
    } else {
      out.push_back(std::move(e));
    }
  }
  reassign_arrivals(out);
  stats_.events_out = out.size();
  return out;
}

CorruptionFault::CorruptionFault(double fraction, std::uint64_t seed)
    : fraction_(fraction), seed_(seed) {
  OOSP_REQUIRE(fraction >= 0.0 && fraction <= 1.0, "fraction must be in [0,1]");
}

std::vector<Event> CorruptionFault::apply(std::vector<Event> stream) {
  stats_ = FaultStats{};
  stats_.events_in = stream.size();
  Rng rng(seed_);
  for (Event& e : stream) {
    if (!rng.bernoulli(fraction_)) continue;
    switch (rng.uniform_int(0, 2)) {
      case 0:
        e.type = kInvalidType;  // unregistered type id
        break;
      case 1:
        if (!e.attrs.empty()) {
          e.attrs.pop_back();  // arity mismatch vs the registered schema
        } else {
          e.type = kInvalidType;
        }
        break;
      default:
        if (!e.attrs.empty()) {
          e.attrs[0] = Value(std::string("\xff CORRUPT"));  // wrong-typed value
        } else {
          e.type = kInvalidType;
        }
        break;
    }
    ++stats_.corrupted;
  }
  reassign_arrivals(stream);
  stats_.events_out = stream.size();
  return stream;
}

ClockSkewFault::ClockSkewFault(std::size_t num_sources, Timestamp max_skew,
                               std::uint64_t seed)
    : num_sources_(num_sources), max_skew_(max_skew), seed_(seed) {
  OOSP_REQUIRE(num_sources >= 1, "need at least one source");
  OOSP_REQUIRE(max_skew >= 0, "max_skew must be non-negative");
}

std::vector<Event> ClockSkewFault::apply(std::vector<Event> stream) {
  stats_ = FaultStats{};
  stats_.events_in = stream.size();
  Rng rng(seed_);
  std::vector<Timestamp> offsets(num_sources_);
  for (Timestamp& o : offsets) o = rng.uniform_int(-max_skew_, max_skew_);
  for (Event& e : stream) {
    const Timestamp offset = offsets[e.id % num_sources_];
    if (offset != 0) {
      e.ts += offset;
      ++stats_.skewed;
    }
  }
  reassign_arrivals(stream);
  stats_.events_out = stream.size();
  return stream;
}

LatencyFault::LatencyFault(LatencyModel model, double ooo_fraction, std::uint64_t seed)
    : model_(model), ooo_fraction_(ooo_fraction), seed_(seed) {}

std::vector<Event> LatencyFault::apply(std::vector<Event> stream) {
  stats_ = FaultStats{};
  stats_.events_in = stream.size();
  DisorderInjector injector(model_, ooo_fraction_, seed_);
  std::vector<Event> out = injector.deliver(stream);
  stats_.events_out = out.size();
  return out;
}

OutageFault::OutageFault(OutageConfig config) : config_(config) {}

std::vector<Event> OutageFault::apply(std::vector<Event> stream) {
  stats_ = FaultStats{};
  stats_.events_in = stream.size();
  OutageInjector injector(config_);
  std::vector<Event> out = injector.deliver(stream);
  slack_bound_ = injector.slack_bound();
  stats_.events_out = out.size();
  return out;
}

FaultChain& FaultChain::add(std::unique_ptr<FaultInjector> stage) {
  OOSP_REQUIRE(stage != nullptr, "chain stage must not be null");
  stages_.push_back(std::move(stage));
  name_ = "chain(";
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    if (i) name_ += "+";
    name_ += stages_[i]->name();
  }
  name_ += ")";
  return *this;
}

WorkerKillFault::WorkerKillFault(std::vector<EventId> victims) {
  state_->victims.insert(victims.begin(), victims.end());
}

WorkerKillFault::WorkerKillFault(double fraction, std::uint64_t seed)
    : fraction_(fraction), seed_(seed), fraction_mode_(true) {
  OOSP_REQUIRE(fraction >= 0.0 && fraction <= 1.0, "fraction must be in [0,1]");
}

std::vector<Event> WorkerKillFault::apply(std::vector<Event> stream) {
  stats_ = FaultStats{};
  stats_.events_in = stream.size();
  stats_.events_out = stream.size();
  if (fraction_mode_) {
    Rng rng(seed_);
    std::lock_guard<std::mutex> lock(state_->mu);
    for (const Event& e : stream)
      if (rng.bernoulli(fraction_)) state_->victims.insert(e.id);
  }
  // The stream itself is untouched: the fault fires at the consumer,
  // through hook(), not on the wire.
  return stream;
}

WorkerKillHook WorkerKillFault::hook() const {
  return [state = state_](const Event& e) {
    std::lock_guard<std::mutex> lock(state->mu);
    return state->victims.erase(e.id) > 0;
  };
}

std::size_t WorkerKillFault::victims_remaining() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->victims.size();
}

std::vector<Event> FaultChain::apply(std::vector<Event> stream) {
  stats_ = FaultStats{};
  stats_.events_in = stream.size();
  for (const auto& stage : stages_) {
    stream = stage->apply(std::move(stream));
    stats_.merge(stage->stats());
  }
  stats_.events_out = stream.size();
  return stream;
}

}  // namespace oosp
