// Composable fault injection for the simulated delivery path.
//
// The latency models (latency.hpp) and outage bursts (outage.hpp) cover
// the paper's two causes of DISORDER; real transports also duplicate,
// lose, and corrupt what they carry, and real sources disagree about
// what time it is. Each fault here is one seeded, deterministic
// transformation of a delivery sequence; FaultChain stacks any number of
// them (including the latency/outage models via their adapters) so a
// test or experiment can assemble exactly the failure cocktail it wants
// and replay it bit-for-bit from the seeds.
//
// Determinism contract: apply() re-seeds from the stage's configured
// seed on every call, so the same injector applied to the same input
// always yields the same output — the round-trip property the harness
// tests rely on. Stages that need ts-ordered input (outage, latency)
// must come first in a chain; the order-preserving stages (duplicate,
// loss, corruption, skew) compose anywhere after them.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "event/event.hpp"
#include "stream/latency.hpp"
#include "stream/outage.hpp"

namespace oosp {

// What the last apply() did, aggregated across a chain.
struct FaultStats {
  std::uint64_t events_in = 0;
  std::uint64_t events_out = 0;
  std::uint64_t duplicated = 0;  // extra deliveries inserted
  std::uint64_t lost = 0;        // events removed
  std::uint64_t corrupted = 0;   // payloads mangled
  std::uint64_t skewed = 0;      // events with a nonzero clock offset

  void merge(const FaultStats& other) noexcept {
    duplicated += other.duplicated;
    lost += other.lost;
    corrupted += other.corrupted;
    skewed += other.skewed;
  }
};

class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  // Transforms a delivery sequence; arrival numbers are reassigned
  // 0..n−1 on the output. Deterministic per configuration (see above).
  virtual std::vector<Event> apply(std::vector<Event> stream) = 0;

  virtual std::string_view name() const noexcept = 0;

  // Accounting for the most recent apply().
  const FaultStats& stats() const noexcept { return stats_; }

 protected:
  FaultStats stats_;
};

// At-least-once delivery: each event is re-delivered (same id, ts and
// payload) with probability `fraction`, the copy landing 1..max_gap
// positions later in the sequence.
class DuplicateFault final : public FaultInjector {
 public:
  DuplicateFault(double fraction, std::size_t max_gap, std::uint64_t seed);
  std::vector<Event> apply(std::vector<Event> stream) override;
  std::string_view name() const noexcept override { return "duplicate"; }

 private:
  double fraction_;
  std::size_t max_gap_;
  std::uint64_t seed_;
};

// Event loss: each event is dropped with probability `fraction`.
class LossFault final : public FaultInjector {
 public:
  LossFault(double fraction, std::uint64_t seed);
  std::vector<Event> apply(std::vector<Event> stream) override;
  std::string_view name() const noexcept override { return "loss"; }

 private:
  double fraction_;
  std::uint64_t seed_;
};

// Payload corruption: each event is mangled with probability `fraction`
// by one of three mutations — unregistered TypeId, truncated attribute
// vector, or a wrong-typed attribute value. Engines configured with
// EngineOptions::registry reject all three with accounting; engines
// without validation would fault or silently mis-evaluate.
class CorruptionFault final : public FaultInjector {
 public:
  CorruptionFault(double fraction, std::uint64_t seed);
  std::vector<Event> apply(std::vector<Event> stream) override;
  std::string_view name() const noexcept override { return "corruption"; }

 private:
  double fraction_;
  std::uint64_t seed_;
};

// Per-source clock skew: events are attributed round-robin by id to
// `num_sources` logical sources; each source draws one fixed offset in
// [−max_skew, +max_skew] and every timestamp it emits is shifted by it.
// Delivery order is unchanged, so skew both reorders timestamps AND
// moves ground truth — the engine's results are scored against the
// skewed reality it actually observed.
class ClockSkewFault final : public FaultInjector {
 public:
  ClockSkewFault(std::size_t num_sources, Timestamp max_skew, std::uint64_t seed);
  std::vector<Event> apply(std::vector<Event> stream) override;
  std::string_view name() const noexcept override { return "clock-skew"; }

 private:
  std::size_t num_sources_;
  Timestamp max_skew_;
  std::uint64_t seed_;
};

// Adapter: network latency disorder (DisorderInjector) as a chain stage.
// Input should be ts-ordered for the K-slack bound to be meaningful.
class LatencyFault final : public FaultInjector {
 public:
  LatencyFault(LatencyModel model, double ooo_fraction, std::uint64_t seed);
  std::vector<Event> apply(std::vector<Event> stream) override;
  std::string_view name() const noexcept override { return "latency"; }
  Timestamp slack_bound() const noexcept { return model_.max_delay; }

 private:
  LatencyModel model_;
  double ooo_fraction_;
  std::uint64_t seed_;
};

// Adapter: machine-failure bursts (OutageInjector) as a chain stage.
// Requires ts-ordered input (OutageInjector's own precondition).
class OutageFault final : public FaultInjector {
 public:
  explicit OutageFault(OutageConfig config);
  std::vector<Event> apply(std::vector<Event> stream) override;
  std::string_view name() const noexcept override { return "outage"; }
  // Sound lateness bound for the last apply().
  Timestamp slack_bound() const noexcept { return slack_bound_; }

 private:
  OutageConfig config_;
  Timestamp slack_bound_ = 0;
};

// Thrown by a shard worker when the kill hook selects the event it is
// about to process — simulates the worker thread dying mid-stream.
class WorkerKilled : public std::runtime_error {
 public:
  explicit WorkerKilled(EventId victim)
      : std::runtime_error("worker killed at event " + std::to_string(victim)),
        victim_(victim) {}
  EventId victim() const noexcept { return victim_; }

 private:
  EventId victim_;
};

// Consulted by the sharded worker loop immediately before processing an
// event; true = die now (the worker throws WorkerKilled). Must be
// thread-safe: each shard worker calls it concurrently.
using WorkerKillHook = std::function<bool(const Event&)>;

// Slow-consumer fault: invoked by the sharded worker loop for every
// event it is about to process (typically to sleep), throttling the
// consumer below the offered load so backpressure and overload-shedding
// paths can be driven deterministically in tests and benchmarks. Must
// be thread-safe: each shard worker calls it concurrently.
using WorkerDelayHook = std::function<void(const Event&)>;

// Machine-failure fault: crashes the worker thread that is about to
// process a selected victim event. Unlike every other fault this one
// does not mutate the stream — apply() passes events through unchanged
// (selecting victims in fraction mode) — because the failure happens at
// the CONSUMER: wire hook() into SessionConfig/RecoveryConfig and the
// worker loop (and recovery replay — same processing path) throws
// WorkerKilled on meeting a victim. Each victim fires exactly once, so
// at most one incarnation or replay attempt dies per victim and
// recovery converges — that is what makes it testable. A hook that
// keeps firing models a deterministic poison event instead and exhausts
// the restart budget.
class WorkerKillFault final : public FaultInjector {
 public:
  // Kill whichever workers process these exact event ids.
  explicit WorkerKillFault(std::vector<EventId> victims);
  // Kill at a seeded `fraction` of the event ids seen by apply().
  WorkerKillFault(double fraction, std::uint64_t seed);

  std::vector<Event> apply(std::vector<Event> stream) override;
  std::string_view name() const noexcept override { return "worker-kill"; }

  // Thread-safe, fires-once-per-victim predicate for the worker loop.
  // The hook shares the victim set: victims added by a later apply() are
  // seen by hooks handed out earlier.
  WorkerKillHook hook() const;

  std::size_t victims_remaining() const;

 private:
  struct State {
    mutable std::mutex mu;
    std::set<EventId> victims;
  };
  std::shared_ptr<State> state_ = std::make_shared<State>();
  double fraction_ = 0.0;
  std::uint64_t seed_ = 0;
  bool fraction_mode_ = false;
};

// Applies its stages in order; stats() aggregates all of them.
class FaultChain final : public FaultInjector {
 public:
  FaultChain() = default;

  FaultChain& add(std::unique_ptr<FaultInjector> stage);

  std::vector<Event> apply(std::vector<Event> stream) override;
  std::string_view name() const noexcept override { return name_; }

  std::size_t size() const noexcept { return stages_.size(); }
  const FaultInjector& stage(std::size_t i) const { return *stages_.at(i); }

 private:
  std::vector<std::unique_ptr<FaultInjector>> stages_;
  std::string name_ = "chain()";
};

}  // namespace oosp
