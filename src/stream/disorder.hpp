// Disorder injection: converts a timestamp-ordered stream into the
// arrival-ordered stream an engine would observe behind a lossy network.
//
// Each event independently suffers a delivery delay: with probability
// `ooo_fraction` a delay sampled from `model`, otherwise zero. Events are
// then delivered in (ts + delay) order. Because delays are clamped to
// model.max_delay, the produced stream satisfies the K-slack contract
// with K = model.max_delay: when an event with timestamp t arrives, no
// later-arriving event has timestamp < t − K… more precisely, every event
// arrives before the stream clock (max ts delivered) exceeds its own
// timestamp by more than K.
#pragma once

#include <span>
#include <vector>

#include "common/rng.hpp"
#include "event/event.hpp"
#include "stream/latency.hpp"

namespace oosp {

struct DisorderStats {
  std::uint64_t events = 0;
  std::uint64_t late_events = 0;   // events overtaken by a larger-ts event
  Timestamp max_lateness = 0;      // max over events of (clock before arrival − ts)
  double ooo_percent() const noexcept {
    return events ? 100.0 * static_cast<double>(late_events) / static_cast<double>(events) : 0.0;
  }
};

class DisorderInjector {
 public:
  // `ooo_fraction` in [0,1]: probability an event is delayed at all.
  DisorderInjector(LatencyModel model, double ooo_fraction, std::uint64_t seed);

  // Takes a ts-ordered stream; returns the arrival-ordered stream with
  // `arrival` sequence numbers assigned (0,1,2,…). Ties in delivery time
  // keep source order (stable), which mimics FIFO per-instant delivery.
  std::vector<Event> deliver(std::span<const Event> in_order);

  // K-slack bound guaranteed by construction.
  Timestamp slack_bound() const noexcept { return model_.max_delay; }

  // Measures disorder of an arrival-ordered stream (any stream).
  static DisorderStats measure(std::span<const Event> arrivals);

 private:
  LatencyModel model_;
  double ooo_fraction_;
  Rng rng_;
};

// Verifies a stream is sorted by timestamp (ties allowed).
bool is_ts_ordered(std::span<const Event> events) noexcept;

}  // namespace oosp
