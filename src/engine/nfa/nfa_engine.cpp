#include "engine/nfa/nfa_engine.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "engine/core/schedule.hpp"
#include "runtime/checkpoint.hpp"

namespace oosp {

NfaEngine::NfaEngine(EngineContext ctx) : PatternEngine(std::move(ctx)) {
  const CompiledQuery& query = query_;
  ordinal_of_step_.assign(query.num_steps(), CompiledStep::npos);
  for (std::size_t s = 0; s < query.num_steps(); ++s) {
    if (query.step(s).negated) {
      ordinal_of_step_[s] = step_of_negated_.size();
      step_of_negated_.push_back(s);
    } else {
      ordinal_of_step_[s] = step_of_positive_.size();
      step_of_positive_.push_back(s);
    }
  }
  schedule_ = build_predicate_schedule(query, step_of_positive_);
  bindings_.assign(query.num_steps(), nullptr);
  single_.assign(query.num_steps(), nullptr);
  // States 0..n-2 hold incomplete runs (a run completing state n-1 emits
  // immediately and is never stored).
  runs_.resize(step_of_positive_.size() > 1 ? step_of_positive_.size() - 1 : 0);
  negatives_.reserve(step_of_negated_.size());
  for (const std::size_t step : step_of_negated_) negatives_.emplace_back(query_, step);
}

bool NfaEngine::passes_local(std::size_t step, const Event& e) {
  single_[step] = &e;
  bool ok = true;
  for (const std::size_t pi : query_.step(step).local_predicates) {
    ++stats_.predicate_evals;
    if (!query_.predicates()[pi].eval(single_)) {
      ok = false;
      break;
    }
  }
  single_[step] = nullptr;
  return ok;
}

void NfaEngine::on_event(const Event& e) {
  ++stats_.events_seen;
  EngineObs::inc(obs_.events);
  if (!admission_.admit(e)) return;
  if (clock_.observe(e) > 0) {
    ++stats_.late_events;
    EngineObs::inc(obs_.late);
  }
  const auto steps = query_.steps_for_type(e.type);
  if (!steps.empty()) {
    ++stats_.events_relevant;
    // Descending ordinal order so an event never extends a run it just
    // created/extended in this same round.
    std::vector<std::size_t> matched;
    for (const std::size_t step : steps)
      if (passes_local(step, e)) matched.push_back(step);
    for (auto it = matched.rbegin(); it != matched.rend(); ++it) {
      const std::size_t step = *it;
      if (query_.step(step).negated) {
        negatives_[ordinal_of_step_[step]].insert(e.ts, e.id, arena_.alloc(e));
        stats_.note_buffered(1);
      } else {
        try_extend(ordinal_of_step_[step], e);
      }
    }
  }
  maybe_purge();
  stats_.note_footprint(stats_.footprint());
  EngineObs::set(obs_.footprint, static_cast<std::int64_t>(stats_.footprint()));
}

void NfaEngine::try_extend(std::size_t ordinal, const Event& e) {
  const std::size_t n = step_of_positive_.size();
  if (ordinal == 0) {
    Run r;
    r.bound.push_back(e);
    ++stats_.construction_visits;
    trace_span(TraceKind::kStart, e.ts, clock_.now(), nullptr, &e);
    if (n == 1) {
      complete(r, e);
    } else {
      runs_[0].push_back(std::move(r));
      stats_.note_instance_added();
    }
    return;
  }
  // Extend every run parked in state ordinal-1. New runs are appended to
  // runs_[ordinal], never rescanned in this call.
  for (const Run& run : runs_[ordinal - 1]) {
    ++stats_.construction_visits;
    if (run.bound.back().ts >= e.ts) continue;               // strict sequencing
    if (e.ts - run.bound.front().ts > query_.window()) continue;  // window
    // Bind and check predicates that become ready at this ordinal.
    for (std::size_t k = 0; k < run.bound.size(); ++k)
      bindings_[step_of_positive_[k]] = &run.bound[k];
    bindings_[step_of_positive_[ordinal]] = &e;
    bool ok = true;
    for (const std::size_t pi : schedule_[ordinal]) {
      ++stats_.predicate_evals;
      if (!query_.predicates()[pi].eval(bindings_)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      trace_span(TraceKind::kStep, e.ts, clock_.now(), nullptr, &e);
      if (ordinal == n - 1) {
        complete(run, e);
      } else {
        Run extended = run;
        extended.bound.push_back(e);
        runs_[ordinal].push_back(std::move(extended));
        stats_.note_instance_added();
      }
    }
    for (std::size_t k = 0; k <= ordinal; ++k) bindings_[step_of_positive_[k]] = nullptr;
  }
}

void NfaEngine::complete(const Run& run, const Event& last) {
  for (std::size_t k = 0; k < run.bound.size(); ++k)
    bindings_[step_of_positive_[k]] = &run.bound[k];
  bindings_[step_of_positive_.back()] = &last;
  bool negated_away = false;
  for (std::size_t i = 0; i < step_of_negated_.size() && !negated_away; ++i) {
    const CompiledStep& s = query_.step(step_of_negated_[i]);
    const Timestamp lo = bindings_[s.prev_positive]->ts;
    const Timestamp hi = bindings_[s.next_positive]->ts;
    negated_away =
        negatives_[i].violates(arena_, lo, hi, bindings_, stats_.predicate_evals);
  }
  if (!negated_away) {
    Match m;
    m.events.reserve(step_of_positive_.size());
    for (const std::size_t p : step_of_positive_) m.events.push_back(*bindings_[p]);
    m.detection_clock = clock_.now();
    emit(std::move(m));
  }
  for (const std::size_t p : step_of_positive_) bindings_[p] = nullptr;
}

void NfaEngine::snapshot(CheckpointWriter& w) const {
  write_engine_guard(w, name(), query_.text());
  w.stats(stats_);
  write_clock(w, clock_);
  write_admission(w, admission_);
  w.u64(events_since_purge_);
  // Runs are kept in their deterministic single-threaded insertion order,
  // which extension iteration depends on — preserve it verbatim.
  w.u64(runs_.size());
  for (const auto& state : runs_) {
    w.u64(state.size());
    for (const Run& run : state) {
      w.u64(run.bound.size());
      for (const Event& e : run.bound) w.event(e);
    }
  }
  w.u64(negatives_.size());
  for (const NegativeBuffer& nb : negatives_) write_negative_buffer(w, nb, arena_);
}

void NfaEngine::restore(CheckpointReader& r) {
  read_engine_guard(r, name(), query_.text());
  stats_ = r.stats();
  read_clock(r, clock_);
  read_admission(r, admission_);
  events_since_purge_ = static_cast<std::size_t>(r.u64());
  if (r.count() != runs_.size())
    throw CheckpointError("nfa checkpoint state count disagrees with query");
  for (auto& state : runs_) {
    state.clear();
    const std::size_t n_runs = r.count(8);
    for (std::size_t i = 0; i < n_runs; ++i) {
      Run run;
      const std::size_t n_bound = r.count(8);
      run.bound.reserve(n_bound);
      for (std::size_t k = 0; k < n_bound; ++k) run.bound.push_back(r.event());
      state.push_back(std::move(run));
    }
  }
  if (r.count() != negatives_.size())
    throw CheckpointError("nfa checkpoint negation count disagrees with query");
  arena_.clear();
  for (NegativeBuffer& nb : negatives_) read_negative_buffer(r, nb, arena_);
}

void NfaEngine::maybe_purge() {
  if (options_.purge_period == 0) return;
  if (++events_since_purge_ < options_.purge_period) return;
  events_since_purge_ = 0;
  if (!clock_.started()) return;
  const Timestamp threshold = clock_.now() - query_.window();
  ++stats_.purge_passes;
  EngineObs::inc(obs_.purge_passes);
  trace_span(TraceKind::kPurge, threshold, clock_.now());
  for (auto& state : runs_) {
    // A run's window is anchored at its first binding; extension order
    // does not preserve first-binding order inside a state, so purge by
    // full sweep rather than front-popping.
    const auto removed = std::erase_if(
        state, [&](const Run& r) { return r.bound.front().ts < threshold; });
    if (removed) {
      stats_.note_instances_removed(removed);
      EngineObs::inc(obs_.purged, removed);
    }
  }
  for (NegativeBuffer& nb : negatives_) {
    const std::size_t removed = nb.purge_before(threshold, arena_);
    if (removed) {
      stats_.note_unbuffered(removed);
      EngineObs::inc(obs_.purged, removed);
    }
  }
}

}  // namespace oosp
