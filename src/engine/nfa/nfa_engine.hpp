// NFA-run engine: one run per partial match.
//
// The second conventional baseline. Each partial match is materialized
// as its own run (a copy of the events bound so far); an arriving event
// extends every run waiting in the matching state. Result semantics are
// identical to the stack-based engines (skip-till-any-match), but state
// is the number of PARTIAL MATCHES rather than the number of events —
// combinatorially larger under bursty inputs, which is precisely the gap
// the stack-based SSC design closes (experiment R-F5).
//
// Like InOrderEngine this engine assumes ts-ordered arrival; under
// out-of-order input it misses matches (a late event cannot extend runs
// whose next binding already has a larger timestamp… it simply never
// sees them) and purges runs late events still need.
#pragma once

#include <deque>
#include <vector>

#include "common/event_arena.hpp"
#include "engine/core/admission.hpp"
#include "engine/core/engine.hpp"
#include "engine/core/negative_buffer.hpp"
#include "stream/clock.hpp"

namespace oosp {

class NfaEngine final : public PatternEngine {
 public:
  explicit NfaEngine(EngineContext ctx);

  void on_event(const Event& e) override;
  std::string name() const override { return "nfa-runs"; }
  void snapshot(CheckpointWriter& w) const override;
  void restore(CheckpointReader& r) override;

 private:
  struct Run {
    std::vector<Event> bound;  // events for positive ordinals 0..bound.size()-1
  };

  bool passes_local(std::size_t step, const Event& e);
  void try_extend(std::size_t ordinal, const Event& e);
  void complete(const Run& run, const Event& last);
  void maybe_purge();

  StreamClock clock_;
  AdmissionControl admission_{options_, stats_};
  // Backing store for negation-buffer entries (runs keep whole events:
  // they are copied per extension anyway).
  EventArena arena_;
  std::vector<std::size_t> step_of_positive_;
  std::vector<std::size_t> step_of_negated_;
  std::vector<std::size_t> ordinal_of_step_;
  std::vector<std::vector<std::size_t>> schedule_;  // ascending positive order
  std::vector<const Event*> bindings_;
  std::vector<const Event*> single_;

  // runs_[k]: runs with k+1 steps bound, waiting for positive ordinal k+1.
  std::vector<std::deque<Run>> runs_;
  std::vector<NegativeBuffer> negatives_;
  std::size_t events_since_purge_ = 0;
};

}  // namespace oosp
