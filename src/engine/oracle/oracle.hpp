// Brute-force reference matcher.
//
// Computes the exact result set of a query over a finite event collection
// (any arrival order — the oracle sees the whole stream at once, so order
// is irrelevant). Exponential in the worst case but aggressively pruned;
// used by tests and the verification harness as ground truth, and by the
// correctness experiment (R-T2) to score recall/precision of engines that
// mishandle out-of-order input.
#pragma once

#include <span>
#include <vector>

#include "engine/core/match.hpp"
#include "query/compiled.hpp"

namespace oosp {

std::vector<Match> oracle_matches(const CompiledQuery& query, std::span<const Event> events);

// Sorted identity keys of the oracle result (convenience for comparisons).
std::vector<MatchKey> oracle_keys(const CompiledQuery& query, std::span<const Event> events);

}  // namespace oosp
