#include "engine/oracle/oracle.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "engine/core/schedule.hpp"

namespace oosp {
namespace {

class Oracle {
 public:
  Oracle(const CompiledQuery& q, std::span<const Event> events) : q_(q) {
    sorted_.assign(events.begin(), events.end());
    std::sort(sorted_.begin(), sorted_.end(), TsIdLess{});
    candidates_.resize(q.num_steps());
    single_.assign(q.num_steps(), nullptr);
    for (const Event& e : sorted_) {
      for (const std::size_t step : q.steps_for_type(e.type)) {
        if (passes_local(step, e)) candidates_[step].push_back(&e);
      }
    }
    schedule_ = build_predicate_schedule(q, q.positive_steps());
    bindings_.assign(q.num_steps(), nullptr);
  }

  std::vector<Match> run() {
    descend(0);
    return std::move(out_);
  }

 private:
  // Local predicates reference one step only; bind just that slot.
  bool passes_local(std::size_t step, const Event& e) {
    single_[step] = &e;
    bool ok = true;
    for (const std::size_t pi : q_.step(step).local_predicates) {
      if (!q_.predicates()[pi].eval(single_)) {
        ok = false;
        break;
      }
    }
    single_[step] = nullptr;
    return ok;
  }

  void descend(std::size_t k) {
    const auto& pos = q_.positive_steps();
    if (k == pos.size()) {
      finish_candidate();
      return;
    }
    const std::size_t step = pos[k];
    const auto& cands = candidates_[step];
    const Timestamp prev_ts = k == 0 ? kMinTimestamp : bindings_[pos[k - 1]]->ts;
    const Timestamp first_ts = k == 0 ? kMinTimestamp : bindings_[pos[0]]->ts;
    // First candidate with ts strictly greater than the previous binding.
    auto it = std::lower_bound(cands.begin(), cands.end(), prev_ts,
                               [](const Event* e, Timestamp t) { return e->ts <= t; });
    for (; it != cands.end(); ++it) {
      const Event* e = *it;
      if (k > 0 && e->ts - first_ts > q_.window()) break;  // sorted: all later fail too
      bindings_[step] = e;
      bool ok = true;
      for (const std::size_t pi : schedule_[k]) {
        if (!q_.predicates()[pi].eval(bindings_)) {
          ok = false;
          break;
        }
      }
      if (ok) descend(k + 1);
    }
    bindings_[step] = nullptr;
  }

  void finish_candidate() {
    // Negation checks against the full event collection.
    for (std::size_t step = 0; step < q_.num_steps(); ++step) {
      const CompiledStep& s = q_.step(step);
      if (!s.negated) continue;
      const Timestamp lo = bindings_[s.prev_positive]->ts;
      const Timestamp hi = bindings_[s.next_positive]->ts;
      if (has_violator(step, lo, hi)) return;
    }
    Match m;
    for (const std::size_t p : q_.positive_steps()) m.events.push_back(*bindings_[p]);
    out_.push_back(std::move(m));
  }

  bool has_violator(std::size_t step, Timestamp lo, Timestamp hi) {
    const auto& cands = candidates_[step];
    auto it = std::lower_bound(cands.begin(), cands.end(), lo,
                               [](const Event* e, Timestamp t) { return e->ts <= t; });
    for (; it != cands.end() && (*it)->ts < hi; ++it) {
      bindings_[step] = *it;
      bool all = true;
      for (std::size_t pi = 0; pi < q_.predicates().size(); ++pi) {
        const CompiledPredicate& p = q_.predicates()[pi];
        if (!p.references(step) || p.steps().size() == 1) continue;  // locals prefiltered
        if (!p.eval(bindings_)) {
          all = false;
          break;
        }
      }
      bindings_[step] = nullptr;
      if (all) return true;
    }
    bindings_[step] = nullptr;
    return false;
  }

  const CompiledQuery& q_;
  std::vector<Event> sorted_;
  std::vector<std::vector<const Event*>> candidates_;
  std::vector<std::vector<std::size_t>> schedule_;
  std::vector<const Event*> bindings_;
  std::vector<const Event*> single_;
  std::vector<Match> out_;
};

}  // namespace

std::vector<Match> oracle_matches(const CompiledQuery& query, std::span<const Event> events) {
  return Oracle(query, events).run();
}

std::vector<MatchKey> oracle_keys(const CompiledQuery& query, std::span<const Event> events) {
  std::vector<MatchKey> keys;
  for (const Match& m : oracle_matches(query, events)) keys.push_back(match_key(m));
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace oosp
