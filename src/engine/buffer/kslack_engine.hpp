// K-slack reorder buffer: the conventional fix for out-of-order arrival.
//
// Holds every arriving event in a sorted reorder buffer and releases it — in
// timestamp order — only once the stream clock has advanced K past its
// timestamp, then feeds an ordinary in-order engine. Under the K-slack
// contract the released stream is ts-ordered, so the inner engine's
// results are exactly correct; the price is (a) a buffer holding up to
// K time-units worth of events on top of the engine state and (b) every
// result — in-order or not — waiting out the full slack before it can be
// detected. The native OOO engine (engine/ooo) removes both costs; the
// benchmark suite quantifies the gap (R-F1..R-F4).
//
// Slack-violation safety net: an event whose timestamp is below the
// release watermark (the highest release threshold already applied)
// would reach the inner engine out of order no matter what — the
// configured LatePolicy decides whether it is forwarded anyway
// (historical behavior), dropped, or quarantined for
// drain_quarantine(). With adaptive_slack the effective K follows a
// windowed lateness quantile: growth holds events back longer
// (immediately safe); shrink releases earlier and is also always safe
// here because releases stay globally ts-ordered and the watermark is
// monotone — a smaller K only narrows what future lateness is tolerated.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "engine/core/admission.hpp"
#include "engine/core/engine.hpp"
#include "stream/clock.hpp"
#include "stream/slack_estimator.hpp"

namespace oosp {

using EngineFactory = std::function<std::unique_ptr<PatternEngine>(EngineContext)>;

class KSlackEngine final : public PatternEngine {
 public:
  // `ctx.options.slack` is K. The inner engine is built by `factory` with
  // the same query/options and this wrapper's clock-stamping sink.
  // Admission gates (validation, dedup, late policy) run in the wrapper,
  // so the inner engine's own gates are disabled to avoid double
  // accounting.
  KSlackEngine(EngineContext ctx, const EngineFactory& factory);

  void on_event(const Event& e) override;
  // Batched arrival: per-event admission/clock/release semantics are
  // unchanged (arrival order matters for the watermark), but the
  // footprint sample — which walks the inner engine's stats — and the
  // depth/slack gauges are hoisted to once per batch.
  void on_batch(std::span<const Event* const> batch) override;
  void finish() override;
  std::string name() const override { return "kslack+" + inner_->name(); }
  EngineStats stats_snapshot() const override;
  std::vector<Event> drain_quarantine() override {
    return admission_.drain_quarantine();
  }
  // Recursive: serializes the wrapper's buffer/clock state plus the inner
  // engine's own snapshot in the same frame.
  void snapshot(CheckpointWriter& w) const override;
  void restore(CheckpointReader& r) override;

 private:
  // Re-stamps detection_clock with the OUTER clock: the inner engine's
  // clock lags by K, but detection delay must be charged against real
  // stream progress.
  class StampSink final : public MatchSink {
   public:
    StampSink(MatchSink& downstream, const StreamClock& clock)
        : downstream_(downstream), clock_(clock) {}
    void on_match(Match&& m) override {
      m.detection_clock = clock_.now();
      downstream_.on_match(std::move(m));
    }

   private:
    MatchSink& downstream_;
    const StreamClock& clock_;
  };

  void ingest(const Event& e);
  void insert_sorted(const Event& e);
  void release_up_to(Timestamp threshold);
  std::size_t live() const noexcept { return buffer_.size() - head_; }

  StreamClock clock_;
  SlackEstimator estimator_;
  AdmissionControl admission_{options_, stats_};
  // Shared so it can be handed to the inner engine's EngineContext; it
  // forwards into this wrapper's own (co-owned) downstream sink.
  std::shared_ptr<StampSink> stamp_;
  std::unique_ptr<PatternEngine> inner_;

  // Highest release threshold ever applied: everything at or below it
  // has already been fed to the inner engine, so an arriving event with
  // ts strictly below it can no longer be re-ordered into place.
  Timestamp release_watermark_ = kMinTimestamp;

  // Reorder buffer: (ts, id)-ascending from head_ onward. Mostly-ordered
  // input appends at the back in O(1); a late event shifts its suffix
  // into place (cheap — the buffer only spans ~K time units). Releases
  // advance head_ and the dead prefix is compacted lazily, so the steady
  // state is allocation-free. Replaces a binary heap whose snapshot had
  // to COPY AND DRAIN the whole queue to recover sorted order — here the
  // live range is already canonical and is written in place.
  std::vector<Event> buffer_;
  std::size_t head_ = 0;
};

}  // namespace oosp
