#include "engine/buffer/kslack_engine.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "runtime/checkpoint.hpp"

namespace oosp {

KSlackEngine::KSlackEngine(EngineContext ctx, const EngineFactory& factory)
    : PatternEngine(std::move(ctx)),
      clock_(options_.slack),
      estimator_(options_.slack_estimator, options_.slack),
      stamp_(std::make_shared<StampSink>(sink_, clock_)) {
  OOSP_REQUIRE(options_.slack >= 0, "slack must be non-negative");
  // The wrapper owns admission: the inner engine sees an already
  // validated, deduplicated, in-order stream, so running its own gates
  // would only double-count (and its late policy could never fire).
  EngineOptions inner_options = options_;
  inner_options.registry = nullptr;
  inner_options.dedup_by_id = false;
  inner_options.late_policy = LatePolicy::kAdmit;
  inner_options.adaptive_slack = false;
  // The inner engine re-sees every released event; arrival-side
  // instruments stay with this wrapper so the registry counts each event
  // once (mirrors the stats_snapshot() merge below).
  inner_options.obs_arrival_side = false;
  inner_ = factory(EngineContext{ctx_.query, stamp_, inner_options});
  OOSP_REQUIRE(inner_ != nullptr, "engine factory returned null");
  obs_.add_reorder_buffer(options_.metrics);
}

void KSlackEngine::on_event(const Event& e) {
  ++stats_.events_seen;
  EngineObs::inc(obs_.events);
  if (!admission_.admit(e)) return;
  const Timestamp lateness = clock_.observe(e);
  if (lateness > 0) {
    ++stats_.late_events;
    EngineObs::inc(obs_.late);
  }
  if (options_.adaptive_slack) {
    estimator_.observe(lateness);
    const Timestamp est = estimator_.estimate();
    if (est > clock_.slack()) {
      clock_.set_slack(est);
      ++stats_.slack_grows;
    } else if (est < clock_.slack()) {
      // Shrinking only raises the release threshold: more of the buffer
      // drains now, still in global ts order, and the watermark stays
      // monotone — safe at any instant (unlike the OOO engine's purge
      // horizon, nothing here is destroyed early).
      clock_.set_slack(est);
      ++stats_.slack_shrinks;
    }
  }
  if (e.ts < release_watermark_) {
    // Everything at the watermark and below was already released: this
    // event would reach the inner engine out of order no matter what.
    ++stats_.contract_violations;
    EngineObs::inc(obs_.violations);
    if (!admission_.admit_violation(e)) {
      stats_.note_footprint(buffer_.size() + admission_.quarantine_size() +
                            inner_->stats_snapshot().footprint());
      return;
    }
  }
  buffer_.push(e);
  stats_.note_buffered(1);
  release_up_to(clock_.now() - clock_.slack());
  stats_.note_footprint(buffer_.size() + admission_.quarantine_size() +
                        inner_->stats_snapshot().footprint());
  EngineObs::set(obs_.reorder_depth, static_cast<std::int64_t>(buffer_.size()));
  EngineObs::set(obs_.effective_slack, clock_.slack());
}

void KSlackEngine::release_up_to(Timestamp threshold) {
  release_watermark_ = std::max(release_watermark_, threshold);
  while (!buffer_.empty() && buffer_.top().ts <= threshold) {
    inner_->on_event(buffer_.top());
    buffer_.pop();
    stats_.note_unbuffered(1);
    EngineObs::inc(obs_.releases);
  }
}

void KSlackEngine::finish() {
  // Drain WITHOUT raising the watermark: end-of-stream is not a release
  // decision future arrivals could violate.
  while (!buffer_.empty()) {
    inner_->on_event(buffer_.top());
    buffer_.pop();
    stats_.note_unbuffered(1);
    EngineObs::inc(obs_.releases);
  }
  inner_->finish();
  EngineObs::set(obs_.reorder_depth, 0);
}

void KSlackEngine::snapshot(CheckpointWriter& w) const {
  write_engine_guard(w, name(), query_.text());
  w.stats(stats_);
  write_clock(w, clock_);
  write_estimator(w, estimator_);
  write_admission(w, admission_);
  w.i64(release_watermark_);
  // Draining a copy of the priority queue yields the canonical (ts, id)
  // ascending order — deterministic because the comparator is total.
  auto heap = buffer_;
  w.u64(heap.size());
  while (!heap.empty()) {
    w.event(heap.top());
    heap.pop();
  }
  inner_->snapshot(w);
}

void KSlackEngine::restore(CheckpointReader& r) {
  read_engine_guard(r, name(), query_.text());
  stats_ = r.stats();
  read_clock(r, clock_);
  read_estimator(r, estimator_);
  read_admission(r, admission_);
  release_watermark_ = r.i64();
  buffer_ = {};
  const std::size_t n = r.count(8);
  for (std::size_t i = 0; i < n; ++i) buffer_.push(r.event());
  inner_->restore(r);
}

EngineStats KSlackEngine::stats_snapshot() const {
  EngineStats s = inner_->stats_snapshot();
  // Arrival-side counters come from the wrapper; the inner engine only
  // ever sees an in-order stream.
  s.events_seen = stats_.events_seen;
  s.late_events = stats_.late_events;
  s.contract_violations = stats_.contract_violations;
  s.events_dropped_late = stats_.events_dropped_late;
  s.events_quarantined = stats_.events_quarantined;
  s.events_rejected = stats_.events_rejected;
  s.events_deduped = stats_.events_deduped;
  s.effective_slack = clock_.slack();
  s.slack_grows = stats_.slack_grows;
  s.slack_shrinks = stats_.slack_shrinks;
  s.buffered += stats_.buffered;
  s.buffered_peak += stats_.buffered_peak;
  s.footprint_peak = stats_.footprint_peak;
  return s;
}

}  // namespace oosp
