#include "engine/buffer/kslack_engine.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "runtime/checkpoint.hpp"

namespace oosp {

KSlackEngine::KSlackEngine(EngineContext ctx, const EngineFactory& factory)
    : PatternEngine(std::move(ctx)),
      clock_(options_.slack),
      estimator_(options_.slack_estimator, options_.slack),
      stamp_(std::make_shared<StampSink>(sink_, clock_)) {
  OOSP_REQUIRE(options_.slack >= 0, "slack must be non-negative");
  // The wrapper owns admission: the inner engine sees an already
  // validated, deduplicated, in-order stream, so running its own gates
  // would only double-count (and its late policy could never fire).
  EngineOptions inner_options = options_;
  inner_options.registry = nullptr;
  inner_options.dedup_by_id = false;
  inner_options.late_policy = LatePolicy::kAdmit;
  inner_options.adaptive_slack = false;
  // The inner engine re-sees every released event; arrival-side
  // instruments stay with this wrapper so the registry counts each event
  // once (mirrors the stats_snapshot() merge below).
  inner_options.obs_arrival_side = false;
  inner_ = factory(EngineContext{ctx_.query, stamp_, inner_options});
  OOSP_REQUIRE(inner_ != nullptr, "engine factory returned null");
  obs_.add_reorder_buffer(options_.metrics);
}

void KSlackEngine::on_event(const Event& e) {
  const Event* one = &e;
  on_batch(std::span<const Event* const>(&one, 1));
}

void KSlackEngine::on_batch(std::span<const Event* const> batch) {
  if (batch.empty()) return;
  stats_.events_seen += batch.size();
  EngineObs::inc(obs_.events, batch.size());
  for (const Event* e : batch) ingest(*e);
  // One footprint sample per batch: inner_->stats_snapshot() copies the
  // whole stats block, which dominated the per-event hot path. A batch of
  // one samples at exactly the seed's point, so footprint_peak is
  // unchanged for per-event feeding.
  stats_.note_footprint(live() + admission_.quarantine_size() +
                        inner_->stats_snapshot().footprint());
  EngineObs::set(obs_.reorder_depth, static_cast<std::int64_t>(live()));
  EngineObs::set(obs_.effective_slack, clock_.slack());
}

void KSlackEngine::ingest(const Event& e) {
  if (!admission_.admit(e)) return;
  const Timestamp lateness = clock_.observe(e);
  if (lateness > 0) {
    ++stats_.late_events;
    EngineObs::inc(obs_.late);
  }
  if (options_.adaptive_slack) {
    estimator_.observe(lateness);
    const Timestamp est = estimator_.estimate();
    if (est > clock_.slack()) {
      clock_.set_slack(est);
      ++stats_.slack_grows;
    } else if (est < clock_.slack()) {
      // Shrinking only raises the release threshold: more of the buffer
      // drains now, still in global ts order, and the watermark stays
      // monotone — safe at any instant (unlike the OOO engine's purge
      // horizon, nothing here is destroyed early).
      clock_.set_slack(est);
      ++stats_.slack_shrinks;
    }
  }
  if (e.ts < release_watermark_) {
    // Everything at the watermark and below was already released: this
    // event would reach the inner engine out of order no matter what.
    ++stats_.contract_violations;
    EngineObs::inc(obs_.violations);
    if (!admission_.admit_violation(e)) return;
  }
  insert_sorted(e);
  stats_.note_buffered(1);
  release_up_to(clock_.now() - clock_.slack());
}

void KSlackEngine::insert_sorted(const Event& e) {
  if (head_ == buffer_.size() || TsIdLess{}(buffer_.back(), e)) {
    buffer_.push_back(e);  // in-order-dominant fast path
    return;
  }
  const auto it =
      std::lower_bound(buffer_.begin() + static_cast<std::ptrdiff_t>(head_),
                       buffer_.end(), e, TsIdLess{});
  buffer_.insert(it, e);
}

void KSlackEngine::release_up_to(Timestamp threshold) {
  release_watermark_ = std::max(release_watermark_, threshold);
  std::size_t released = 0;
  while (head_ < buffer_.size() && buffer_[head_].ts <= threshold) {
    inner_->on_event(buffer_[head_]);
    ++head_;
    ++released;
  }
  if (released) {
    stats_.note_unbuffered(released);
    EngineObs::inc(obs_.releases, released);
  }
  // Lazy compaction: reclaim the released prefix only once it dominates
  // the vector, so release stays amortized O(1) per event.
  if (head_ >= 64 && head_ * 2 >= buffer_.size()) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
}

void KSlackEngine::finish() {
  // Drain WITHOUT raising the watermark: end-of-stream is not a release
  // decision future arrivals could violate.
  std::size_t released = 0;
  while (head_ < buffer_.size()) {
    inner_->on_event(buffer_[head_]);
    ++head_;
    ++released;
  }
  buffer_.clear();
  head_ = 0;
  if (released) {
    stats_.note_unbuffered(released);
    EngineObs::inc(obs_.releases, released);
  }
  inner_->finish();
  EngineObs::set(obs_.reorder_depth, 0);
}

void KSlackEngine::snapshot(CheckpointWriter& w) const {
  write_engine_guard(w, name(), query_.text());
  w.stats(stats_);
  write_clock(w, clock_);
  write_estimator(w, estimator_);
  write_admission(w, admission_);
  w.i64(release_watermark_);
  // The live range is already in canonical (ts, id) ascending order —
  // written in place, no copy. Byte format is unchanged from the heap
  // era: count, then events ascending.
  w.u64(live());
  for (std::size_t i = head_; i < buffer_.size(); ++i) w.event(buffer_[i]);
  inner_->snapshot(w);
}

void KSlackEngine::restore(CheckpointReader& r) {
  read_engine_guard(r, name(), query_.text());
  stats_ = r.stats();
  read_clock(r, clock_);
  read_estimator(r, estimator_);
  read_admission(r, admission_);
  release_watermark_ = r.i64();
  buffer_.clear();
  head_ = 0;
  const std::size_t n = r.count(8);
  buffer_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) buffer_.push_back(r.event());
  inner_->restore(r);
}

EngineStats KSlackEngine::stats_snapshot() const {
  EngineStats s = inner_->stats_snapshot();
  // Arrival-side counters come from the wrapper; the inner engine only
  // ever sees an in-order stream.
  s.events_seen = stats_.events_seen;
  s.late_events = stats_.late_events;
  s.contract_violations = stats_.contract_violations;
  s.events_dropped_late = stats_.events_dropped_late;
  s.events_quarantined = stats_.events_quarantined;
  s.events_rejected = stats_.events_rejected;
  s.events_deduped = stats_.events_deduped;
  s.effective_slack = clock_.slack();
  s.slack_grows = stats_.slack_grows;
  s.slack_shrinks = stats_.slack_shrinks;
  s.buffered += stats_.buffered;
  s.buffered_peak += stats_.buffered_peak;
  s.footprint_peak = stats_.footprint_peak;
  return s;
}

}  // namespace oosp
