#include "engine/buffer/kslack_engine.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace oosp {

KSlackEngine::KSlackEngine(const CompiledQuery& query, MatchSink& sink,
                           EngineOptions options, const EngineFactory& factory)
    : PatternEngine(query, sink, options),
      clock_(options.slack),
      stamp_(sink, clock_) {
  OOSP_REQUIRE(options.slack >= 0, "slack must be non-negative");
  inner_ = factory(query, stamp_, options);
  OOSP_REQUIRE(inner_ != nullptr, "engine factory returned null");
}

void KSlackEngine::on_event(const Event& e) {
  ++stats_.events_seen;
  const Timestamp lateness = clock_.observe(e);
  if (lateness > 0) ++stats_.late_events;
  if (lateness > options_.slack) ++stats_.contract_violations;
  buffer_.push(e);
  stats_.note_buffered(1);
  release_up_to(clock_.now() - options_.slack);
  stats_.note_footprint(buffer_.size() + inner_->stats().footprint());
}

void KSlackEngine::release_up_to(Timestamp threshold) {
  while (!buffer_.empty() && buffer_.top().ts <= threshold) {
    inner_->on_event(buffer_.top());
    buffer_.pop();
    stats_.note_unbuffered(1);
  }
}

void KSlackEngine::finish() {
  release_up_to(kMaxTimestamp);
  inner_->finish();
}

EngineStats KSlackEngine::stats() const {
  EngineStats s = inner_->stats();
  // Arrival-side counters come from the wrapper; the inner engine only
  // ever sees an in-order stream.
  s.events_seen = stats_.events_seen;
  s.late_events = stats_.late_events;
  s.contract_violations = stats_.contract_violations;
  s.buffered += stats_.buffered;
  s.buffered_peak += stats_.buffered_peak;
  s.footprint_peak = stats_.footprint_peak;
  return s;
}

}  // namespace oosp
