#include "engine/agg/agg_engine.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "runtime/checkpoint.hpp"

namespace oosp {

namespace {

// FNV-1a over the window index and key payload: a stable synthetic
// EventId for the window result, identical on every shard that could
// own the key, so retraction keys and canonical merge order agree
// across shard counts.
class Fnv1a64 {
 public:
  void bytes(const void* data, std::size_t n) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= p[i];
      h_ *= 0x100000001B3ull;
    }
  }
  void u64(std::uint64_t v) noexcept { bytes(&v, sizeof(v)); }
  std::uint64_t digest() const noexcept { return h_; }

 private:
  std::uint64_t h_ = 0xCBF29CE484222325ull;
};

double canonical_double(double v) noexcept { return v == 0.0 ? 0.0 : v; }

}  // namespace

AggEngine::AggEngine(EngineContext ctx)
    : PatternEngine(std::move(ctx)), clock_(options_.slack) {
  OOSP_REQUIRE(query_.is_agg(), "AggEngine needs an AGG query");
  const AggSpec& spec = query_.agg();
  fn_ = spec.fn;
  type_ = spec.type;
  window_ = query_.window();
  slide_ = spec.slide;
  OOSP_REQUIRE(window_ > 0 && slide_ > 0, "AggEngine needs positive window and slide");
  keyed_ = spec.has_key;
  key_slot_ = spec.key_slot;
  value_slot_ = spec.value_slot;
  value_is_double_ = spec.value_type == ValueType::kDouble;
  stats_.effective_slack = options_.slack;
  obs_.add_agg(options_.metrics);
  EngineObs::set(obs_.effective_slack, options_.slack);
}

AggEngine::KeyState& AggEngine::state_for(const Value& key) {
  if (!keyed_) return root_;
  return keys_[key];
}

const AggEngine::KeyState* AggEngine::find_state(const Value& key) const {
  if (!keyed_) return &root_;
  const auto it = keys_.find(key);
  return it == keys_.end() ? nullptr : &it->second;
}

void AggEngine::on_event(const Event& e) {
  ++stats_.events_seen;
  EngineObs::inc(obs_.events);
  if (!admission_.admit(e)) return;
  const Timestamp lateness = clock_.observe(e);
  if (lateness > 0) {
    ++stats_.late_events;
    EngineObs::inc(obs_.late);
  }
  seal_watermark_ = std::max(seal_watermark_, clock_.seal_point());
  if (e.ts <= seal_watermark_) {
    // A window this event belongs to may already be sealed; ingest()
    // skips those, so the damage is bounded to sealed windows missing
    // the event — counted here, disposed of by the late policy.
    ++stats_.contract_violations;
    EngineObs::inc(obs_.violations);
    if (!admission_.admit_violation(e)) {
      run_seal_pass();
      if (options_.aggressive_negation) run_speculative_pass();
      return;
    }
  }
  if (e.type == type_) {
    ++stats_.events_relevant;
    ingest(e);
  }
  run_seal_pass();
  if (options_.aggressive_negation) run_speculative_pass();
  maybe_purge();
  stats_.note_footprint(stats_.footprint());
  EngineObs::set(obs_.footprint, static_cast<std::int64_t>(stats_.footprint()));
  EngineObs::set(obs_.agg_footprint, static_cast<std::int64_t>(stats_.footprint()));
}

void AggEngine::ingest(const Event& e) {
  AggEntry entry;
  entry.ts = e.ts;
  entry.id = e.id;
  if (fn_ != AggFn::kCount) {
    const Value& v = e.attr(value_slot_);
    if (value_is_double_)
      entry.dval = canonical_double(v.as_double());
    else
      entry.ival = v.as_int();
  }
  const Value key = keyed_ ? e.attr(key_slot_) : Value();

  // Window indices containing ts: i*slide <= ts < i*slide + window.
  const std::int64_t hi = floor_div(e.ts, slide_);
  const std::int64_t lo = floor_div(e.ts - window_, slide_) + 1;
  bool any_open = false;
  KeyState& ks = state_for(key);
  for (std::int64_t i = lo; i <= hi; ++i) {
    if (sealed(window_end(i))) continue;  // emitted (or empty) and final
    any_open = true;
    auto [it, inserted] = ks.windows.try_emplace(i);
    if (inserted) {
      stats_.note_pending_added();
      seal_agenda_.push(Due{window_end(i), i, key});
      if (options_.aggressive_negation)
        spec_agenda_.push(Due{window_end(i), i, key});
    }
  }
  if (!any_open) {
    // Every containing window is sealed: the entry could never be read
    // again, so keep it out of the tree (and erase the key if this was
    // a stillborn lookup).
    if (keyed_ && ks.tree.empty() && ks.windows.empty()) keys_.erase(key);
    return;
  }
  ks.tree.insert(entry);
  stats_.note_instance_added();

  if (options_.aggressive_negation) {
    // Revise any window that already announced a speculative result.
    for (std::int64_t i = lo; i <= hi; ++i) {
      const auto it = ks.windows.find(i);
      if (it == ks.windows.end() || !it->second.emitted) continue;
      Match old = make_match(key, i, it->second.emitted_value,
                             it->second.emitted_count);
      old.detection_clock = clock_.now();
      ++stats_.matches_retracted;
      EngineObs::inc(obs_.retractions);
      EngineObs::inc(obs_.agg_retracts);
      trace_span(TraceKind::kRetract, old.last_ts(), clock_.now(), &old);
      sink_.on_retract(old);
      emit_window(key, i, it->second);
    }
  }
}

Value AggEngine::aggregate(const KeyState& ks, std::int64_t index,
                           std::int64_t* out_count) const {
  const Timestamp lo = window_start(index), hi = window_end(index);
  // Double sums are folded in canonical (ts, id) order — float addition
  // is not associative, so summary-combining would make the result
  // depend on tree shape and with it on arrival order.
  if (value_is_double_ && (fn_ == AggFn::kSum || fn_ == AggFn::kAvg)) {
    double sum = 0.0;
    std::int64_t n = 0;
    ks.tree.fold(lo, hi, [&](const AggEntry& e) {
      sum += e.dval;
      ++n;
    });
    *out_count = n;
    if (fn_ == AggFn::kSum) return Value(canonical_double(sum));
    return Value(canonical_double(n == 0 ? 0.0 : sum / static_cast<double>(n)));
  }
  const AggSummary s = ks.tree.summarize(lo, hi);
  *out_count = static_cast<std::int64_t>(s.count);
  switch (fn_) {
    case AggFn::kCount: return Value(static_cast<std::int64_t>(s.count));
    case AggFn::kSum:
      return Value(static_cast<std::int64_t>(s.isum));
    case AggFn::kMin:
      return value_is_double_ ? Value(canonical_double(s.dmin)) : Value(s.imin);
    case AggFn::kMax:
      return value_is_double_ ? Value(canonical_double(s.dmax)) : Value(s.imax);
    case AggFn::kAvg:
      return Value(s.count == 0 ? 0.0
                                : static_cast<double>(static_cast<std::int64_t>(s.isum)) /
                                      static_cast<double>(s.count));
  }
  return Value(std::int64_t{0});
}

EventId AggEngine::synthetic_id(const Value& key, std::int64_t index) const {
  Fnv1a64 h;
  h.u64(static_cast<std::uint64_t>(index));
  h.u64(static_cast<std::uint64_t>(key.type()));
  switch (key.type()) {
    case ValueType::kInt: h.u64(static_cast<std::uint64_t>(key.as_int())); break;
    case ValueType::kDouble: {
      std::uint64_t bits;
      static_assert(sizeof(bits) == sizeof(double));
      const double d = key.as_double();
      std::memcpy(&bits, &d, sizeof(bits));
      h.u64(bits);
      break;
    }
    case ValueType::kBool: h.u64(key.as_bool() ? 1 : 0); break;
    case ValueType::kString:
      h.bytes(key.as_string().data(), key.as_string().size());
      break;
  }
  return h.digest();
}

Match AggEngine::make_match(const Value& key, std::int64_t index, const Value& value,
                            std::int64_t count) const {
  Event ev;
  ev.type = type_;
  ev.id = synthetic_id(key, index);
  ev.ts = window_end(index) - 1;  // seal timestamp: canonical merge order
  ev.arrival = 0;
  ev.attrs.reserve(5);
  ev.attrs.push_back(Value(window_start(index)));
  ev.attrs.push_back(Value(window_end(index)));
  ev.attrs.push_back(keyed_ ? key : Value(std::int64_t{0}));
  ev.attrs.push_back(value);
  ev.attrs.push_back(Value(count));
  Match m;
  m.events.push_back(std::move(ev));
  return m;
}

void AggEngine::emit_window(const Value& key, std::int64_t index, WindowState& w) {
  const KeyState* ks = find_state(key);
  OOSP_ASSERT(ks != nullptr);
  std::int64_t count = 0;
  const Value value = aggregate(*ks, index, &count);
  Match m = make_match(key, index, value, count);
  m.detection_clock = clock_.now();
  w.emitted = true;
  w.emitted_value = value;
  w.emitted_count = count;
  EngineObs::inc(obs_.agg_emits);
  EngineObs::observe(obs_.agg_emit_latency, m.detection_delay());
  emit(std::move(m));
}

void AggEngine::run_seal_pass() {
  while (!seal_agenda_.empty() && sealed(seal_agenda_.top().end)) {
    const Due due = seal_agenda_.top();
    seal_agenda_.pop();
    KeyState& ks = keyed_ ? keys_.at(due.key) : root_;
    const auto it = ks.windows.find(due.index);
    OOSP_ASSERT(it != ks.windows.end());
    EngineObs::inc(obs_.seals);
    if (!it->second.emitted) emit_window(due.key, due.index, it->second);
    ks.windows.erase(it);
    OOSP_ASSERT(stats_.pending_matches > 0);
    --stats_.pending_matches;
  }
}

void AggEngine::run_speculative_pass() {
  const Timestamp now = clock_.now();
  while (!spec_agenda_.empty() && spec_agenda_.top().end <= now) {
    const Due due = spec_agenda_.top();
    spec_agenda_.pop();
    KeyState* ks = keyed_ ? (keys_.count(due.key) ? &keys_.at(due.key) : nullptr)
                          : &root_;
    if (ks == nullptr) continue;  // sealed and fully purged already
    const auto it = ks->windows.find(due.index);
    if (it == ks->windows.end() || it->second.emitted) continue;
    emit_window(due.key, due.index, it->second);
  }
}

void AggEngine::maybe_purge() {
  if (options_.purge_period == 0) return;
  if (++events_since_purge_ < options_.purge_period) return;
  events_since_purge_ = 0;
  purge();
}

void AggEngine::purge() {
  // An entry is dead once every window containing it is sealed:
  // ts + window <= watermark + 1, i.e. ts < watermark - window + 2.
  if (seal_watermark_ <= kMinTimestamp + window_) return;
  const Timestamp bound = seal_watermark_ - window_ + 2;
  ++stats_.purge_passes;
  EngineObs::inc(obs_.purge_passes);
  std::uint64_t removed = 0;
  if (keyed_) {
    for (auto it = keys_.begin(); it != keys_.end();) {
      removed += it->second.tree.evict_below(bound);
      if (it->second.tree.empty() && it->second.windows.empty())
        it = keys_.erase(it);
      else
        ++it;
    }
  } else {
    removed += root_.tree.evict_below(bound);
  }
  stats_.note_instances_removed(removed);
  EngineObs::inc(obs_.purged, removed);
  refresh_gauges();
}

void AggEngine::refresh_gauges() {
  std::size_t depth = root_.tree.depth();
  for (const auto& [key, ks] : keys_) depth = std::max(depth, ks.tree.depth());
  EngineObs::set(obs_.agg_tree_depth, static_cast<std::int64_t>(depth));
  EngineObs::set(obs_.agg_footprint, static_cast<std::int64_t>(stats_.footprint()));
}

void AggEngine::finish() {
  // End of stream seals everything still open; drain the agenda in its
  // canonical (end, index, key) order so single-shard emission order
  // matches the sharded runners' merged order.
  while (!seal_agenda_.empty()) {
    const Due due = seal_agenda_.top();
    seal_agenda_.pop();
    KeyState& ks = keyed_ ? keys_.at(due.key) : root_;
    const auto it = ks.windows.find(due.index);
    OOSP_ASSERT(it != ks.windows.end());
    EngineObs::inc(obs_.seals);
    if (!it->second.emitted) emit_window(due.key, due.index, it->second);
    ks.windows.erase(it);
    OOSP_ASSERT(stats_.pending_matches > 0);
    --stats_.pending_matches;
  }
  spec_agenda_ = Agenda{};
  refresh_gauges();
  EngineObs::set(obs_.footprint, static_cast<std::int64_t>(stats_.footprint()));
}

void AggEngine::snapshot(CheckpointWriter& w) const {
  write_engine_guard(w, name(), query_.text());
  write_clock(w, clock_);
  w.i64(seal_watermark_);
  write_admission(w, admission_);
  w.u64(events_since_purge_);
  w.tag("agk");
  w.boolean(keyed_);
  const auto write_key_state = [&w](const KeyState& ks) {
    w.u64(ks.tree.size());
    ks.tree.for_each([&w](const AggEntry& e) {
      w.i64(e.ts);
      w.u64(e.id);
      w.i64(e.ival);
      w.f64(e.dval);
    });
    w.u64(ks.windows.size());
    for (const auto& [index, ws] : ks.windows) {
      w.i64(index);
      w.boolean(ws.emitted);
      w.value(ws.emitted_value);
      w.i64(ws.emitted_count);
    }
  };
  if (keyed_) {
    // Canonical key order for byte determinism.
    std::vector<const Value*> order;
    order.reserve(keys_.size());
    for (const auto& [key, ks] : keys_) order.push_back(&key);
    std::sort(order.begin(), order.end(),
              [](const Value* a, const Value* b) { return a->compare(*b) < 0; });
    w.u64(order.size());
    for (const Value* key : order) {
      w.value(*key);
      write_key_state(keys_.at(*key));
    }
  } else {
    write_key_state(root_);
  }
  w.stats(stats_);
}

void AggEngine::restore(CheckpointReader& r) {
  read_engine_guard(r, name(), query_.text());
  StreamClock clock(options_.slack);
  read_clock(r, clock);
  const Timestamp watermark = r.i64();
  AdmissionControl admission(options_, stats_);
  read_admission(r, admission);
  const std::uint64_t since_purge = r.u64();
  r.expect_tag("agk");
  const bool keyed = r.boolean();
  if (keyed != keyed_)
    throw CheckpointError("agg checkpoint keying mismatch");
  const auto read_key_state = [&r](KeyState& ks) {
    const std::size_t n = r.count(8);
    for (std::size_t i = 0; i < n; ++i) {
      AggEntry e;
      e.ts = r.i64();
      e.id = r.u64();
      e.ival = r.i64();
      e.dval = r.f64();
      // Entries were written in (ts, id) order, so insertion replays the
      // in-order fast path and the rebuilt tree re-snapshots identically.
      ks.tree.insert(e);
    }
    const std::size_t nw = r.count(8);
    for (std::size_t i = 0; i < nw; ++i) {
      const std::int64_t index = r.i64();
      WindowState ws;
      ws.emitted = r.boolean();
      ws.emitted_value = r.value();
      ws.emitted_count = r.i64();
      ks.windows.emplace(index, ws);
    }
  };
  KeyState root;
  std::unordered_map<Value, KeyState, ValueHasher> keys;
  if (keyed_) {
    const std::size_t n = r.count(2);
    for (std::size_t i = 0; i < n; ++i) {
      Value key = r.value();
      read_key_state(keys[std::move(key)]);
    }
  } else {
    read_key_state(root);
  }
  const EngineStats stats = r.stats();

  // Commit.
  clock_ = clock;
  seal_watermark_ = watermark;
  admission_.restore_state(
      std::unordered_set<EventId>(admission.seen_ids().begin(),
                                  admission.seen_ids().end()),
      std::deque<Event>(admission.quarantined_events().begin(),
                        admission.quarantined_events().end()));
  events_since_purge_ = static_cast<std::size_t>(since_purge);
  root_ = std::move(root);
  keys_ = std::move(keys);
  stats_ = stats;
  seal_agenda_ = Agenda{};
  spec_agenda_ = Agenda{};
  const auto enqueue = [this](const Value& key, const KeyState& ks) {
    for (const auto& [index, ws] : ks.windows) {
      seal_agenda_.push(Due{window_end(index), index, key});
      if (options_.aggressive_negation && !ws.emitted)
        spec_agenda_.push(Due{window_end(index), index, key});
    }
  };
  if (keyed_) {
    for (const auto& [key, ks] : keys_) enqueue(key, ks);
  } else {
    enqueue(Value(), root_);
  }
  EngineObs::set(obs_.effective_slack, clock_.slack());
  refresh_gauges();
}

}  // namespace oosp
