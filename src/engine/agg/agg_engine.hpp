// Out-of-order sliding-window aggregation engine for AGG queries.
//
// Events land in a per-key AggTree ordered by (ts, id); window emission
// is driven by the same lowest-watermark sealing the pattern engine
// uses: window [start, end) is final once seal_watermark >= end - 1, at
// which point no admissible event can still fall inside it. Each open
// (non-empty, unsealed) window is tracked in an agenda min-heap by end
// timestamp, so an event advancing the watermark seals exactly the due
// windows, each emitted exactly once as a Match carrying one synthetic
// event with attrs [start, end, key, value, count].
//
// Aggressive mode (EngineOptions::aggressive_negation, reused as the
// speculative-emission flag) emits a window the moment the clock passes
// its end — before it seals — and issues MatchSink::on_retract plus a
// corrected emission when late data revises it. The net result multiset
// (emissions minus retractions) equals the conservative output, exactly
// the contract the pattern engine's aggressive negation established.
//
// Determinism: for int inputs every function folds through associative
// exact summaries; double sum/avg fold in canonical (ts, id) order so
// the result is bit-identical across arrival orders, shard counts and
// batch sizes; -0.0 is canonicalized to +0.0 at ingest.
#pragma once

#include <cstdint>
#include <map>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/agg/agg_tree.hpp"
#include "engine/core/admission.hpp"
#include "engine/core/engine.hpp"
#include "stream/clock.hpp"

namespace oosp {

class AggEngine final : public PatternEngine {
 public:
  explicit AggEngine(EngineContext ctx);

  void on_event(const Event& e) override;
  void finish() override;

  std::string name() const override {
    return options_.aggressive_negation ? "agg-speculative" : "agg-ooo";
  }

  std::vector<Event> drain_quarantine() override {
    return admission_.drain_quarantine();
  }

  void snapshot(CheckpointWriter& w) const override;
  void restore(CheckpointReader& r) override;

  Timestamp seal_watermark() const noexcept { return seal_watermark_; }

 private:
  struct WindowState {
    bool emitted = false;       // speculative emission outstanding
    Value emitted_value;        // payload of that emission (for retraction)
    std::int64_t emitted_count = 0;
  };

  struct KeyState {
    AggTree tree;
    std::map<std::int64_t, WindowState> windows;  // open windows by index
  };

  // Agenda entry: one per open window, ordered by (end, index, key).
  struct Due {
    Timestamp end = 0;
    std::int64_t index = 0;
    Value key;
  };

  static std::int64_t floor_div(std::int64_t a, std::int64_t b) noexcept {
    const std::int64_t q = a / b, r = a % b;
    return (r != 0 && ((r < 0) != (b < 0))) ? q - 1 : q;
  }

  Timestamp window_start(std::int64_t i) const noexcept { return i * slide_; }
  Timestamp window_end(std::int64_t i) const noexcept { return i * slide_ + window_; }
  bool sealed(Timestamp end) const noexcept { return seal_watermark_ >= end - 1; }

  KeyState& state_for(const Value& key);
  const KeyState* find_state(const Value& key) const;

  void ingest(const Event& e);
  Value aggregate(const KeyState& ks, std::int64_t index,
                  std::int64_t* out_count) const;
  Match make_match(const Value& key, std::int64_t index, const Value& value,
                   std::int64_t count) const;
  EventId synthetic_id(const Value& key, std::int64_t index) const;

  void emit_window(const Value& key, std::int64_t index, WindowState& w);
  void run_seal_pass();
  void run_speculative_pass();
  void maybe_purge();
  void purge();
  void refresh_gauges();

  // Agenda heaps, popped in (end, index, key) order. Entries whose
  // window is already gone (sealed before a speculative pop reached it)
  // are skipped on pop.
  struct DueLater {
    bool operator()(const Due& a, const Due& b) const noexcept {
      if (a.end != b.end) return a.end > b.end;
      if (a.index != b.index) return a.index > b.index;
      return a.key.compare(b.key) > 0;
    }
  };
  using Agenda = std::priority_queue<Due, std::vector<Due>, DueLater>;

  StreamClock clock_;
  AdmissionControl admission_{options_, stats_};
  Timestamp seal_watermark_ = kMinTimestamp;

  AggFn fn_ = AggFn::kCount;
  TypeId type_ = kInvalidType;
  Timestamp window_ = 0;
  Timestamp slide_ = 0;
  bool keyed_ = false;
  std::size_t key_slot_ = 0;
  std::size_t value_slot_ = 0;
  bool value_is_double_ = false;

  KeyState root_;  // unkeyed state
  std::unordered_map<Value, KeyState, ValueHasher> keys_;

  Agenda seal_agenda_;
  Agenda spec_agenda_;  // aggressive mode only

  std::size_t events_since_purge_ = 0;
};

}  // namespace oosp
