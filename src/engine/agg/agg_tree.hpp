// Out-of-order sliding-window aggregation store: a two-level B-tree
// specialization in the spirit of the finger B-tree aggregator (FiBA,
// Tangwongsan et al.) tuned for the shapes this engine meets:
//
//  * entries are keyed by (ts, id) and arrive MOSTLY near the right end
//    (the stream is K-slack bounded), so the structure keeps a rightmost
//    finger: an in-order append is O(1) amortized;
//  * an out-of-order insert binary-searches the leaf directory and the
//    leaf, O(log n + chunk) — cheap for inserts near the tail because the
//    directory search is over leaf maxima and late events land in the
//    last few leaves;
//  * evictions happen only at the left edge (watermark purges), dropping
//    whole leaves without touching their entries;
//  * window queries combine per-leaf summaries for interior leaves and
//    scan only the two boundary leaves.
//
// Summaries hold count / int-sum / int-min/max / double-min/max — the
// associative, order-insensitive combinators. Double SUMS are excluded
// on purpose: float addition is not associative, and the repository-wide
// determinism contract (bit-identical results across arrival orders,
// shard counts, and batch sizes) requires folding doubles in canonical
// (ts, id) order — use fold() for those.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/contracts.hpp"
#include "event/event.hpp"

namespace oosp {

struct AggEntry {
  Timestamp ts = 0;
  EventId id = 0;
  std::int64_t ival = 0;
  double dval = 0.0;
};

inline bool agg_entry_less(const AggEntry& a, const AggEntry& b) noexcept {
  return a.ts != b.ts ? a.ts < b.ts : a.id < b.id;
}

struct AggSummary {
  std::uint64_t count = 0;
  // Int sums accumulate in unsigned space so overflow wraps (defined)
  // instead of tripping UBSan; the engine reports the wrapped value.
  std::uint64_t isum = 0;
  std::int64_t imin = std::numeric_limits<std::int64_t>::max();
  std::int64_t imax = std::numeric_limits<std::int64_t>::min();
  double dmin = std::numeric_limits<double>::infinity();
  double dmax = -std::numeric_limits<double>::infinity();

  void add(const AggEntry& e) noexcept {
    ++count;
    isum += static_cast<std::uint64_t>(e.ival);
    imin = e.ival < imin ? e.ival : imin;
    imax = e.ival > imax ? e.ival : imax;
    dmin = e.dval < dmin ? e.dval : dmin;
    dmax = e.dval > dmax ? e.dval : dmax;
  }

  void merge(const AggSummary& o) noexcept {
    count += o.count;
    isum += o.isum;
    imin = o.imin < imin ? o.imin : imin;
    imax = o.imax > imax ? o.imax : imax;
    dmin = o.dmin < dmin ? o.dmin : dmin;
    dmax = o.dmax > dmax ? o.dmax : dmax;
  }
};

class AggTree {
 public:
  explicit AggTree(std::size_t leaf_capacity = 128) : cap_(leaf_capacity) {
    OOSP_REQUIRE(leaf_capacity >= 2, "AggTree leaf capacity too small");
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t leaf_count() const noexcept { return leaves_.size(); }
  // Effective search depth: binary-search steps over the leaf directory
  // plus the leaf level itself (0 when empty) — the obs tree-depth gauge.
  std::size_t depth() const noexcept {
    return leaves_.empty() ? 0 : 1 + std::bit_width(leaves_.size());
  }

  void insert(const AggEntry& e) {
    ++size_;
    if (leaves_.empty()) {
      leaves_.emplace_back();
      leaves_.back().entries.push_back(e);
      leaves_.back().sum.add(e);
      return;
    }
    // Rightmost finger: the common case appends to the last leaf.
    std::size_t li = leaves_.size() - 1;
    if (!agg_entry_less(e, leaves_[li].entries.back())) {
      leaves_[li].entries.push_back(e);
      leaves_[li].sum.add(e);
      maybe_split(li);
      return;
    }
    // Out of order: first leaf whose max is >= e holds the slot.
    li = leaf_for(e);
    Leaf& leaf = leaves_[li];
    const auto at = std::lower_bound(leaf.entries.begin(), leaf.entries.end(), e,
                                     agg_entry_less);
    leaf.entries.insert(at, e);
    leaf.sum.add(e);
    maybe_split(li);
  }

  // Drops every entry with ts < bound (left-edge eviction only: the
  // engine guarantees no future query will reach below the bound).
  // Returns the number of entries removed.
  std::size_t evict_below(Timestamp bound) {
    std::size_t removed = 0;
    std::size_t whole = 0;
    while (whole < leaves_.size() && leaves_[whole].entries.back().ts < bound) {
      removed += leaves_[whole].entries.size();
      ++whole;
    }
    if (whole > 0)
      leaves_.erase(leaves_.begin(),
                    leaves_.begin() + static_cast<std::ptrdiff_t>(whole));
    if (!leaves_.empty() && leaves_.front().entries.front().ts < bound) {
      Leaf& leaf = leaves_.front();
      const auto keep = std::partition_point(
          leaf.entries.begin(), leaf.entries.end(),
          [bound](const AggEntry& e) { return e.ts < bound; });
      removed += static_cast<std::size_t>(keep - leaf.entries.begin());
      leaf.entries.erase(leaf.entries.begin(), keep);
      leaf.sum = AggSummary{};
      for (const AggEntry& e : leaf.entries) leaf.sum.add(e);
    }
    size_ -= removed;
    return removed;
  }

  // Combined summary of entries with lo <= ts < hi: interior leaves by
  // summary, boundary leaves by scan.
  AggSummary summarize(Timestamp lo, Timestamp hi) const {
    AggSummary out;
    walk(lo, hi, [&](const Leaf& leaf, bool whole) {
      if (whole) {
        out.merge(leaf.sum);
      } else {
        for (const AggEntry& e : leaf.entries)
          if (e.ts >= lo && e.ts < hi) out.add(e);
      }
    });
    return out;
  }

  // Visits entries with lo <= ts < hi in (ts, id) order — the canonical
  // fold order for non-associative combinators (double sums).
  template <class F>
  void fold(Timestamp lo, Timestamp hi, F&& f) const {
    walk(lo, hi, [&](const Leaf& leaf, bool whole) {
      if (whole) {
        for (const AggEntry& e : leaf.entries) f(e);
      } else {
        for (const AggEntry& e : leaf.entries)
          if (e.ts >= lo && e.ts < hi) f(e);
      }
    });
  }

  // Visits every entry in (ts, id) order (checkpoint serialization).
  template <class F>
  void for_each(F&& f) const {
    for (const Leaf& leaf : leaves_)
      for (const AggEntry& e : leaf.entries) f(e);
  }

 private:
  struct Leaf {
    std::vector<AggEntry> entries;  // sorted by (ts, id), never empty
    AggSummary sum;
  };

  std::size_t leaf_for(const AggEntry& e) const {
    // First leaf whose max entry is >= e; insert() only calls this when
    // such a leaf exists (e is not past the global max).
    std::size_t lo = 0, hi = leaves_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (agg_entry_less(leaves_[mid].entries.back(), e))
        lo = mid + 1;
      else
        hi = mid;
    }
    return lo;
  }

  void maybe_split(std::size_t li) {
    if (leaves_[li].entries.size() < cap_) return;
    Leaf right;
    const std::size_t half = leaves_[li].entries.size() / 2;
    right.entries.assign(leaves_[li].entries.begin() + static_cast<std::ptrdiff_t>(half),
                         leaves_[li].entries.end());
    leaves_[li].entries.resize(half);
    leaves_[li].sum = AggSummary{};
    for (const AggEntry& e : leaves_[li].entries) leaves_[li].sum.add(e);
    for (const AggEntry& e : right.entries) right.sum.add(e);
    leaves_.insert(leaves_.begin() + static_cast<std::ptrdiff_t>(li) + 1,
                   std::move(right));
  }

  template <class Visit>
  void walk(Timestamp lo, Timestamp hi, Visit&& visit) const {
    if (lo >= hi) return;
    // First leaf that could hold ts >= lo (max ts >= lo).
    std::size_t li = 0, right = leaves_.size();
    {
      std::size_t a = 0, b = leaves_.size();
      while (a < b) {
        const std::size_t mid = a + (b - a) / 2;
        if (leaves_[mid].entries.back().ts < lo)
          a = mid + 1;
        else
          b = mid;
      }
      li = a;
    }
    for (; li < right; ++li) {
      const Leaf& leaf = leaves_[li];
      if (leaf.entries.front().ts >= hi) break;
      const bool whole = leaf.entries.front().ts >= lo && leaf.entries.back().ts < hi;
      visit(leaf, whole);
    }
  }

  std::size_t cap_;
  std::vector<Leaf> leaves_;
  std::size_t size_ = 0;
};

}  // namespace oosp
