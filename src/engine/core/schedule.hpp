// Predicate scheduling: decide, for a given step-binding order, at which
// position each multi-step positive predicate becomes fully bound so the
// enumeration can prune as early as possible.
#pragma once

#include <span>
#include <vector>

#include "query/compiled.hpp"

namespace oosp {

// `binding_order` lists pattern step indices in the order an enumeration
// binds them (it must contain every positive step; negated steps are
// ignored). Returns sched where sched[k] holds indices of positive-only
// predicates that (a) reference at least two steps and (b) have all
// referenced steps bound once position k is bound, and not earlier.
// Single-step (local) predicates are excluded: engines apply them at scan
// time. Predicates touching negated steps are excluded: they run at
// negation-check time.
std::vector<std::vector<std::size_t>> build_predicate_schedule(
    const CompiledQuery& query, std::span<const std::size_t> binding_order);

}  // namespace oosp
