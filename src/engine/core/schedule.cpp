#include "engine/core/schedule.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace oosp {

std::vector<std::vector<std::size_t>> build_predicate_schedule(
    const CompiledQuery& query, std::span<const std::size_t> binding_order) {
  std::vector<std::size_t> position(query.num_steps(), CompiledStep::npos);
  for (std::size_t k = 0; k < binding_order.size(); ++k) {
    OOSP_REQUIRE(binding_order[k] < query.num_steps(), "binding order step out of range");
    position[binding_order[k]] = k;
  }
  for (const std::size_t p : query.positive_steps())
    OOSP_REQUIRE(position[p] != CompiledStep::npos,
                 "binding order must cover every positive step");

  std::vector<std::vector<std::size_t>> sched(binding_order.size());
  for (std::size_t i = 0; i < query.predicates().size(); ++i) {
    const CompiledPredicate& p = query.predicates()[i];
    if (!p.positive_only() || p.steps().size() < 2) continue;
    std::size_t ready_at = 0;
    for (const std::size_t s : p.steps()) ready_at = std::max(ready_at, position[s]);
    sched[ready_at].push_back(i);
  }
  return sched;
}

}  // namespace oosp
