#include "engine/core/negative_buffer.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace oosp {

NegativeBuffer::NegativeBuffer(const CompiledQuery& query, std::size_t step)
    : query_(query), step_(step) {
  const CompiledStep& s = query.step(step);
  OOSP_REQUIRE(s.negated, "NegativeBuffer requires a negated step");
  for (std::size_t i = 0; i < query.predicates().size(); ++i) {
    const CompiledPredicate& p = query.predicates()[i];
    if (!p.references(step)) continue;
    if (p.steps().size() == 1) continue;  // local; evaluated before insert
    check_predicates_.push_back(i);
  }
}

void NegativeBuffer::insert(const Event& e) {
  if (events_.empty() || TsIdLess{}(events_.back(), e)) {
    events_.push_back(e);
    return;
  }
  const auto it = std::lower_bound(events_.begin(), events_.end(), e, TsIdLess{});
  events_.insert(it, e);
}

bool NegativeBuffer::violates(Timestamp lo, Timestamp hi,
                              std::span<const Event*> bindings,
                              std::uint64_t& predicate_evals) const {
  if (lo >= hi) return false;
  // First candidate with ts > lo (strict interior).
  auto it = std::lower_bound(events_.begin(), events_.end(), lo,
                             [](const Event& e, Timestamp t) { return e.ts <= t; });
  bool found = false;
  for (; it != events_.end() && it->ts < hi; ++it) {
    bindings[step_] = &*it;
    bool ok = true;
    for (const std::size_t pi : check_predicates_) {
      ++predicate_evals;
      if (!query_.predicates()[pi].eval(bindings)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      found = true;
      break;
    }
  }
  bindings[step_] = nullptr;
  return found;
}

std::size_t NegativeBuffer::purge_before(Timestamp threshold) {
  const auto it = std::lower_bound(events_.begin(), events_.end(), threshold,
                                   [](const Event& e, Timestamp t) { return e.ts < t; });
  const auto n = static_cast<std::size_t>(it - events_.begin());
  events_.erase(events_.begin(), it);
  return n;
}

}  // namespace oosp
