#include "engine/core/negative_buffer.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace oosp {

namespace {

inline bool entry_less(const NegativeBuffer::Entry& a,
                       const NegativeBuffer::Entry& b) noexcept {
  return a.ts < b.ts || (a.ts == b.ts && a.id < b.id);
}

}  // namespace

NegativeBuffer::NegativeBuffer(const CompiledQuery& query, std::size_t step)
    : query_(query), step_(step) {
  const CompiledStep& s = query.step(step);
  OOSP_REQUIRE(s.negated, "NegativeBuffer requires a negated step");
  for (std::size_t i = 0; i < query.predicates().size(); ++i) {
    const CompiledPredicate& p = query.predicates()[i];
    if (!p.references(step)) continue;
    if (p.steps().size() == 1) continue;  // local; evaluated before insert
    check_predicates_.push_back(i);
  }
}

void NegativeBuffer::insert(Timestamp ts, EventId id, EventHandle handle) {
  const Entry e{ts, id, handle};
  if (entries_.empty() || entry_less(entries_.back(), e)) {
    entries_.push_back(e);
    return;
  }
  const auto it = std::lower_bound(entries_.begin(), entries_.end(), e, entry_less);
  entries_.insert(it, e);
}

bool NegativeBuffer::violates(const EventArena& arena, Timestamp lo, Timestamp hi,
                              std::span<const Event*> bindings,
                              std::uint64_t& predicate_evals) const {
  if (lo >= hi) return false;
  // First candidate with ts > lo (strict interior).
  auto it = std::lower_bound(entries_.begin(), entries_.end(), lo,
                             [](const Entry& e, Timestamp t) { return e.ts <= t; });
  bool found = false;
  for (; it != entries_.end() && it->ts < hi; ++it) {
    if (check_predicates_.empty()) {
      found = true;
      break;
    }
    bindings[step_] = &arena.get(it->handle);
    bool ok = true;
    for (const std::size_t pi : check_predicates_) {
      ++predicate_evals;
      if (!query_.predicates()[pi].eval(bindings)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      found = true;
      break;
    }
  }
  bindings[step_] = nullptr;
  return found;
}

std::size_t NegativeBuffer::purge_before(Timestamp threshold, EventArena& arena) {
  const auto it = std::lower_bound(entries_.begin(), entries_.end(), threshold,
                                   [](const Entry& e, Timestamp t) { return e.ts < t; });
  const auto n = static_cast<std::size_t>(it - entries_.begin());
  for (auto p = entries_.begin(); p != it; ++p) arena.release(p->handle);
  entries_.erase(entries_.begin(), it);
  return n;
}

}  // namespace oosp
