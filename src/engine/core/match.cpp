#include "engine/core/match.hpp"

#include <ostream>

namespace oosp {

MatchKey match_key(const Match& m) {
  MatchKey k;
  k.reserve(m.events.size());
  for (const Event& e : m.events) k.push_back(e.id);
  return k;
}

std::ostream& operator<<(std::ostream& os, const Match& m) {
  os << "Match{";
  for (std::size_t i = 0; i < m.events.size(); ++i) {
    if (i) os << " -> ";
    os << "#" << m.events[i].id << "@" << m.events[i].ts;
  }
  return os << "}";
}

}  // namespace oosp
