// Event admission control shared by every engine implementation.
//
// Three independent gates, all off by default so the zero-cost path is
// unchanged:
//   * schema validation (EngineOptions::registry) — reject events whose
//     TypeId is unregistered or whose attribute vector disagrees with the
//     registered schema, instead of faulting during predicate evaluation;
//   * duplicate suppression (EngineOptions::dedup_by_id) — at-least-once
//     transports re-deliver, and a re-delivered event re-runs retroactive
//     construction, inflating match counts;
//   * the late policy (EngineOptions::late_policy) — what to do with an
//     event that violated the slack contract: admit best-effort, drop
//     with accounting, or quarantine for audit/replay.
// All accounting lands in the owning engine's EngineStats.
#pragma once

#include <deque>
#include <unordered_set>
#include <vector>

#include "engine/core/engine.hpp"

namespace oosp {

class AdmissionControl {
 public:
  // Both references are borrowed from the owning engine and must outlive
  // this object (engines are pinned: non-copyable, non-movable).
  AdmissionControl(const EngineOptions& options, EngineStats& stats)
      : options_(options), stats_(stats) {}

  // Validation + dedup gate, applied to every arrival before it touches
  // the clock or any engine state. False = skip the event (counted).
  bool admit(const Event& e);

  // Late-policy gate for an event past the safe horizon (the caller has
  // already counted the contract violation). True = process it anyway
  // (kAdmit); false = the event was dropped or quarantined here.
  bool admit_violation(const Event& e);

  std::vector<Event> drain_quarantine();
  std::size_t quarantine_size() const noexcept { return quarantine_.size(); }

  // Checkpoint support (runtime/checkpoint.hpp). seen_ids() is unordered;
  // serializers must sort before writing for byte determinism.
  const std::unordered_set<EventId>& seen_ids() const noexcept { return seen_ids_; }
  const std::deque<Event>& quarantined_events() const noexcept { return quarantine_; }
  void restore_state(std::unordered_set<EventId> seen_ids, std::deque<Event> quarantine) {
    seen_ids_ = std::move(seen_ids);
    quarantine_ = std::move(quarantine);
  }

 private:
  bool schema_ok(const Event& e) const;

  const EngineOptions& options_;
  EngineStats& stats_;
  std::unordered_set<EventId> seen_ids_;
  std::deque<Event> quarantine_;
};

}  // namespace oosp
