// The engine interface every matcher implements.
//
// Lifecycle: construct with a compiled query (borrowed; must outlive the
// engine) and a sink (borrowed likewise); feed events in ARRIVAL order
// via on_event(); call finish() exactly once at end of stream so engines
// that hold results for negation sealing or reorder buffering can flush.
#pragma once

#include <string>

#include "engine/core/sink.hpp"
#include "engine/core/stats.hpp"
#include "event/event.hpp"
#include "query/compiled.hpp"

namespace oosp {

// Tuning knobs shared by the engines; each engine reads the subset that
// applies to it (documented per field).
struct EngineOptions {
  // K-slack bound the input stream is trusted to satisfy. Used by the
  // OOO engine (purge horizon + negation sealing) and by the reorder
  // buffer (release threshold). Ignored by the plain in-order engines.
  Timestamp slack = 0;

  // Events between purge passes. 1 = purge on every event (eager);
  // 0 = never purge (for the ablation that shows why purging matters).
  std::size_t purge_period = 64;

  // Use hash-partitioned stacks when the query has a full equi-join key
  // (CompiledQuery::partitionable()). OOO and in-order engines.
  bool partition_by_key = true;

  // OOO engine only: maintain cached rightmost-instance pointers,
  // updated on out-of-order insertion, instead of re-deriving the
  // predecessor range by binary search during construction (R-A3).
  bool cache_rip = false;

  // OOO engine only: output policy for matches with negated steps.
  //
  // Conservative (false, default): hold a candidate until its negation
  // interval seals (clock >= interval end + K), then emit or drop — every
  // emission is final, at the cost of up to K of added delay.
  //
  // Aggressive (true): emit the candidate IMMEDIATELY if no buffered
  // negative violates it, and issue a RETRACTION (MatchSink::on_retract)
  // if a late negative lands inside the interval before it seals. Zero
  // added delay; downstream must tolerate revisions. The net result set
  // (emissions minus retractions) equals the conservative result set.
  bool aggressive_negation = false;
};

class PatternEngine {
 public:
  PatternEngine(const CompiledQuery& query, MatchSink& sink, EngineOptions options)
      : query_(query), sink_(sink), options_(options) {}
  virtual ~PatternEngine() = default;

  PatternEngine(const PatternEngine&) = delete;
  PatternEngine& operator=(const PatternEngine&) = delete;

  virtual void on_event(const Event& e) = 0;
  virtual void finish() {}

  virtual std::string name() const = 0;

  // Wrapper engines (e.g. the K-slack reorder buffer) override this to
  // merge their own buffering counters with the wrapped engine's.
  virtual EngineStats stats() const { return stats_; }
  const CompiledQuery& query() const noexcept { return query_; }
  const EngineOptions& options() const noexcept { return options_; }

 protected:
  void emit(Match&& m) {
    ++stats_.matches_emitted;
    sink_.on_match(std::move(m));
  }

  const CompiledQuery& query_;
  MatchSink& sink_;
  EngineOptions options_;
  EngineStats stats_;
};

}  // namespace oosp
