// The engine interface every matcher implements.
//
// Lifecycle: construct from an EngineContext — the engine co-owns its
// compiled query and sink through shared_ptrs, so no caller-managed
// lifetimes are involved; feed events in ARRIVAL order via on_event();
// call finish() exactly once at end of stream so engines that hold
// results for negation sealing or reorder buffering can flush.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "common/contracts.hpp"
#include "engine/core/sink.hpp"
#include "engine/core/stats.hpp"
#include "event/event.hpp"
#include "obs/engine_obs.hpp"
#include "obs/trace.hpp"
#include "query/compiled.hpp"
#include "stream/slack_estimator.hpp"

namespace oosp {

class CheckpointWriter;
class CheckpointReader;

// What to do with an event that arrives later than the engine's safe
// horizon (lateness beyond the effective K): state it needs may already
// be purged and results it touches may already be sealed, so it cannot
// be handled exactly no matter what.
enum class LatePolicy : std::uint8_t {
  // Process it best-effort against whatever state survives (historical
  // behavior). May silently miss matches or mis-sequence results;
  // EngineStats::contract_violations is the only trace.
  kAdmit,
  // Discard it, counted in EngineStats::events_dropped_late. Results over
  // the admitted prefix stay exact.
  kDrop,
  // Divert it to a bounded per-engine buffer the caller can drain via
  // PatternEngine::drain_quarantine() for audit or replay (e.g. into a
  // re-run with a larger K). Counted in EngineStats::events_quarantined;
  // overflow beyond quarantine_capacity falls back to kDrop accounting.
  kQuarantine,
};

std::string_view to_string(LatePolicy p) noexcept;

// Tuning knobs shared by the engines; each engine reads the subset that
// applies to it (documented per field).
struct EngineOptions {
  // K-slack bound the input stream is trusted to satisfy. Used by the
  // OOO engine (purge horizon + negation sealing) and by the reorder
  // buffer (release threshold). Ignored by the plain in-order engines.
  Timestamp slack = 0;

  // Disposition of events later than the effective slack (OOO engine and
  // K-slack buffer; the plain in-order engines have no slack contract).
  LatePolicy late_policy = LatePolicy::kAdmit;

  // kQuarantine only: max events parked for drain_quarantine(); overflow
  // is dropped with accounting so a pathological stream cannot grow the
  // quarantine without bound.
  std::size_t quarantine_capacity = 4096;

  // Adapt the effective K at runtime from observed lateness instead of
  // trusting `slack` forever (OOO engine and K-slack buffer). `slack`
  // seeds the estimate; growth applies immediately (always safe), shrink
  // is deferred to purge boundaries and never rewinds decisions already
  // made (see DESIGN.md "When K is wrong").
  bool adaptive_slack = false;
  SlackEstimatorConfig slack_estimator;

  // Drop events whose EventId was already delivered (at-least-once
  // transports re-deliver). All engines. Costs one hash-set entry per
  // distinct admitted id.
  bool dedup_by_id = false;

  // When set, every arriving event is validated against this registry —
  // unknown TypeId or an attribute vector that disagrees with the
  // registered schema (arity or value types) rejects the event with
  // accounting instead of faulting mid-construction. Borrowed; must
  // outlive the engine. When null only TypeId sanity is checked.
  const TypeRegistry* registry = nullptr;

  // Events between purge passes. 1 = purge on every event (eager);
  // 0 = never purge (for the ablation that shows why purging matters).
  std::size_t purge_period = 64;

  // Use hash-partitioned stacks when the query has a full equi-join key
  // (CompiledQuery::partitionable()). OOO and in-order engines.
  bool partition_by_key = true;

  // OOO engine only: maintain cached rightmost-instance pointers,
  // updated on out-of-order insertion, instead of re-deriving the
  // predecessor range by binary search during construction (R-A3).
  bool cache_rip = false;

  // Observability (see src/obs/): when set, the engine registers its
  // instrument slots here at construction and updates them on the hot
  // path with relaxed atomics — safe to scrape from another thread while
  // streaming. Borrowed; must outlive the engine. Null disables metrics
  // at near-zero cost (one predicted branch per update site).
  MetricsRegistry* metrics = nullptr;

  // Span-event callback for match-lifecycle tracing (obs/trace.hpp).
  // Unset (the default) costs one predicted branch per decision point.
  TraceHook trace;

  // Internal: cleared by wrapper engines (K-slack) for their inner
  // engine, which sees each event a second time — the wrapper owns
  // admission and registers the arrival-side instruments exactly once.
  bool obs_arrival_side = true;

  // OOO engine only: output policy for matches with negated steps.
  //
  // Conservative (false, default): hold a candidate until its negation
  // interval seals (clock >= interval end + K), then emit or drop — every
  // emission is final, at the cost of up to K of added delay.
  //
  // Aggressive (true): emit the candidate IMMEDIATELY if no buffered
  // negative violates it, and issue a RETRACTION (MatchSink::on_retract)
  // if a late negative lands inside the interval before it seals. Zero
  // added delay; downstream must tolerate revisions. The net result set
  // (emissions minus retractions) equals the conservative result set.
  bool aggressive_negation = false;
};

// Everything an engine needs to run: the compiled query, the sink that
// receives results, and the tuning options. Query and sink are held by
// shared_ptr — the engine co-owns them, so the old footguns (a sink
// destroyed before the engine, a query compiled on the stack and
// dangling) are gone by construction. Build one inline at the
// make_engine call site:
//
//   auto ctx = EngineContext{compile_query_shared(text, registry),
//                            std::make_shared<CollectingSink>(), options};
struct EngineContext {
  std::shared_ptr<const CompiledQuery> query;
  std::shared_ptr<MatchSink> sink;
  EngineOptions options;
};

class PatternEngine {
 public:
  explicit PatternEngine(EngineContext ctx)
      : ctx_(std::move(ctx)),
        query_(checked_query(ctx_)),
        sink_(checked_sink(ctx_)),
        options_(ctx_.options),
        obs_(EngineObs::create(options_.metrics, options_.obs_arrival_side)) {}
  virtual ~PatternEngine() = default;

  PatternEngine(const PatternEngine&) = delete;
  PatternEngine& operator=(const PatternEngine&) = delete;

  virtual void on_event(const Event& e) = 0;

  // Batched ingestion: `batch` holds pointers to events in ARRIVAL order
  // (the runner delivers each engine only the events routed to it, hence
  // pointers rather than a contiguous slice). The default is the trivial
  // per-event loop; engines override it to amortize sorting, structure
  // maintenance, sealing, and purging across the batch. Overrides must
  // produce the same emitted output as the per-event loop — batching is
  // a throughput lever, never a semantics change.
  virtual void on_batch(std::span<const Event* const> batch) {
    for (const Event* e : batch) on_event(*e);
  }

  virtual void finish() {}

  virtual std::string name() const = 0;

  // Crash-recovery serialization (runtime/checkpoint.hpp). snapshot()
  // writes every piece of dynamic state — partial-match structures,
  // reorder/negation buffers, admission state, clocks, stats — such that
  // restore() into a FRESHLY CONSTRUCTED engine with the same query and
  // options reproduces the original engine exactly: feeding both the
  // same suffix yields the same matches and the same stats. restore()
  // validates a guard header (engine name + query text) and throws
  // CheckpointError on any mismatch or corruption; on throw the target
  // engine must only be destroyed, not used. Serializers must emit
  // deterministic bytes for equal logical state (sort unordered
  // containers) so a restored engine re-snapshots byte-identically.
  virtual void snapshot(CheckpointWriter& w) const;
  virtual void restore(CheckpointReader& r);

  // Removes and returns the events parked by LatePolicy::kQuarantine, in
  // arrival order — audit them or replay into a fresh engine with a
  // larger K. Engines without a slack contract return empty.
  virtual std::vector<Event> drain_quarantine() { return {}; }

  // Consistent point-in-time copy of the counters. Wrapper engines (e.g.
  // the K-slack reorder buffer) override this to merge their own
  // buffering counters with the wrapped engine's. Safe to call from the
  // thread driving on_event at any time; under the sharded runtime each
  // engine is owned by exactly one worker thread, which snapshots after
  // its last on_event/finish — cross-shard aggregation then merges the
  // snapshots with EngineStats::operator+= after the workers are joined.
  virtual EngineStats stats_snapshot() const { return stats_; }

  const CompiledQuery& query() const noexcept { return query_; }
  const EngineOptions& options() const noexcept { return options_; }
  const std::shared_ptr<MatchSink>& sink_ptr() const noexcept { return ctx_.sink; }
  const std::shared_ptr<const CompiledQuery>& query_ptr() const noexcept {
    return ctx_.query;
  }

 protected:
  void emit(Match&& m) {
    ++stats_.matches_emitted;
    if (obs_.matches != nullptr) {
      obs_.matches->inc();
      if (m.detection_clock != kMinTimestamp)
        obs_.latency_stream->observe_signed(m.detection_delay());
    }
    if (options_.trace)
      options_.trace(
          TraceSpan{TraceKind::kEmit, m.last_ts(), m.detection_clock, &m, nullptr});
    sink_.on_match(std::move(m));
  }

  // Fires a trace span when a hook is installed; one predicted branch
  // otherwise. Pointers are borrowed for the duration of the callback.
  void trace_span(TraceKind kind, Timestamp ts, Timestamp clock,
                  const Match* m = nullptr, const Event* e = nullptr) const {
    if (options_.trace) options_.trace(TraceSpan{kind, ts, clock, m, e});
  }

 private:
  static const CompiledQuery& checked_query(const EngineContext& ctx) {
    OOSP_REQUIRE(ctx.query != nullptr, "EngineContext.query is null");
    return *ctx.query;
  }
  static MatchSink& checked_sink(const EngineContext& ctx) {
    OOSP_REQUIRE(ctx.sink != nullptr, "EngineContext.sink is null");
    return *ctx.sink;
  }

 protected:
  EngineContext ctx_;
  // Hot-path aliases into ctx_ so subclass code never chases a shared_ptr.
  const CompiledQuery& query_;
  MatchSink& sink_;
  EngineOptions options_;
  EngineObs obs_;
  EngineStats stats_;
};

}  // namespace oosp
