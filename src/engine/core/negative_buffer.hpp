// Buffer of candidate events for one negated step, ordered by (ts, id).
//
// Engines insert every arriving event of the negated step's type that
// passes the step's local predicates; candidate matches are then checked
// for a violating negative in the open interval (lo, hi) with the
// remaining negation predicates evaluated against the match's positive
// bindings.
//
// Entries are (ts, id, handle) keys into the owning engine's EventArena —
// the interval scan in violates() walks 16-byte PODs and only touches the
// arena event when a candidate needs predicate evaluation.
#pragma once

#include <span>
#include <vector>

#include "common/event_arena.hpp"
#include "event/event.hpp"
#include "query/compiled.hpp"

namespace oosp {

class NegativeBuffer {
 public:
  struct Entry {
    Timestamp ts = 0;
    EventId id = 0;
    EventHandle handle = kNullEventHandle;
  };

  // `step` is the pattern index of the negated step this buffer serves.
  NegativeBuffer(const CompiledQuery& query, std::size_t step);

  // Inserts in (ts, id) order, taking over one arena reference for the
  // handle; appending arrivals are O(1).
  void insert(Timestamp ts, EventId id, EventHandle handle);

  // True iff a buffered negative with lo < ts < hi satisfies every
  // predicate referencing the negated step. `bindings` must have the
  // match's positive bindings filled; slot `step` is used as scratch and
  // restored to null. `predicate_evals` is incremented per evaluation.
  bool violates(const EventArena& arena, Timestamp lo, Timestamp hi,
                std::span<const Event*> bindings,
                std::uint64_t& predicate_evals) const;

  // Removes events with ts < threshold, releasing their arena
  // references; returns how many.
  std::size_t purge_before(Timestamp threshold, EventArena& arena);

  std::size_t size() const noexcept { return entries_.size(); }
  std::size_t step() const noexcept { return step_; }

  // Checkpoint support (runtime/checkpoint.hpp). entries() is already in
  // the canonical (ts, id) order; set_entries() trusts its input to be
  // and to carry one arena reference per entry.
  const std::vector<Entry>& entries() const noexcept { return entries_; }
  void set_entries(std::vector<Entry> entries) { entries_ = std::move(entries); }

 private:
  const CompiledQuery& query_;
  std::size_t step_;
  std::vector<std::size_t> check_predicates_;  // preds referencing step_, minus locals
  std::vector<Entry> entries_;                 // sorted by (ts, id)
};

}  // namespace oosp
