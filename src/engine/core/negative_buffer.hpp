// Buffer of candidate events for one negated step, ordered by (ts, id).
//
// Engines insert every arriving event of the negated step's type that
// passes the step's local predicates; candidate matches are then checked
// for a violating negative in the open interval (lo, hi) with the
// remaining negation predicates evaluated against the match's positive
// bindings.
#pragma once

#include <span>
#include <vector>

#include "event/event.hpp"
#include "query/compiled.hpp"

namespace oosp {

class NegativeBuffer {
 public:
  // `step` is the pattern index of the negated step this buffer serves.
  NegativeBuffer(const CompiledQuery& query, std::size_t step);

  // Inserts in (ts, id) order; appending arrivals are O(1).
  void insert(const Event& e);

  // True iff a buffered negative with lo < ts < hi satisfies every
  // predicate referencing the negated step. `bindings` must have the
  // match's positive bindings filled; slot `step` is used as scratch and
  // restored to null. `predicate_evals` is incremented per evaluation.
  bool violates(Timestamp lo, Timestamp hi, std::span<const Event*> bindings,
                std::uint64_t& predicate_evals) const;

  // Removes events with ts < threshold; returns how many.
  std::size_t purge_before(Timestamp threshold);

  std::size_t size() const noexcept { return events_.size(); }
  std::size_t step() const noexcept { return step_; }

  // Checkpoint support (runtime/checkpoint.hpp). events() is already in
  // the canonical (ts, id) order; set_events() trusts its input to be.
  const std::vector<Event>& events() const noexcept { return events_; }
  void set_events(std::vector<Event> events) { events_ = std::move(events); }

 private:
  const CompiledQuery& query_;
  std::size_t step_;
  std::vector<std::size_t> check_predicates_;  // preds referencing step_, minus locals
  std::vector<Event> events_;                  // sorted by (ts, id)
};

}  // namespace oosp
