// Match sinks: where engines deliver results.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <iterator>
#include <vector>

#include "engine/core/match.hpp"

namespace oosp {

class MatchSink {
 public:
  virtual ~MatchSink() = default;
  virtual void on_match(Match&& m) = 0;

  // Revision of an earlier on_match: the engine has learned (from a late
  // negative event) that the match is invalid. Only engines running the
  // aggressive output policy ever call this; the default ignores it, so
  // conservative pipelines need not care.
  virtual void on_retract(const Match& m) { (void)m; }
};

// Discards matches (pure-throughput benchmarking).
class NullSink final : public MatchSink {
 public:
  void on_match(Match&&) override { ++count_; }
  std::uint64_t count() const noexcept { return count_; }

 private:
  std::uint64_t count_ = 0;
};

// Counts matches and aggregates detection delay without storing bodies.
class CountingSink final : public MatchSink {
 public:
  void on_match(Match&& m) override {
    ++count_;
    total_delay_ += m.detection_delay();
    max_delay_ = std::max(max_delay_, m.detection_delay());
  }
  void on_retract(const Match&) override { ++retractions_; }
  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t retractions() const noexcept { return retractions_; }
  double mean_delay() const noexcept {
    return count_ ? static_cast<double>(total_delay_) / static_cast<double>(count_) : 0.0;
  }
  Timestamp max_delay() const noexcept { return max_delay_; }

 private:
  std::uint64_t count_ = 0;
  std::uint64_t retractions_ = 0;
  Timestamp total_delay_ = 0;
  Timestamp max_delay_ = 0;
};

// Stores every match; used by tests and the verification harness.
class CollectingSink final : public MatchSink {
 public:
  void on_match(Match&& m) override { matches_.push_back(std::move(m)); }
  void on_retract(const Match& m) override { retracted_.push_back(m); }

  const std::vector<Match>& matches() const noexcept { return matches_; }
  const std::vector<Match>& retracted() const noexcept { return retracted_; }
  std::size_t size() const noexcept { return matches_.size(); }
  void clear() noexcept {
    matches_.clear();
    retracted_.clear();
  }

  // Sorted identity keys; duplicates preserved (an engine emitting the
  // same logical match twice is a bug that tests must be able to see).
  std::vector<MatchKey> sorted_keys() const {
    std::vector<MatchKey> keys;
    keys.reserve(matches_.size());
    for (const Match& m : matches_) keys.push_back(match_key(m));
    std::sort(keys.begin(), keys.end());
    return keys;
  }

  // Net result under the aggressive policy: emissions minus retractions
  // (multiset difference), sorted.
  std::vector<MatchKey> net_sorted_keys() const {
    std::vector<MatchKey> keys = sorted_keys();
    std::vector<MatchKey> gone;
    gone.reserve(retracted_.size());
    for (const Match& m : retracted_) gone.push_back(match_key(m));
    std::sort(gone.begin(), gone.end());
    std::vector<MatchKey> net;
    std::set_difference(keys.begin(), keys.end(), gone.begin(), gone.end(),
                        std::back_inserter(net));
    return net;
  }

 private:
  std::vector<Match> matches_;
  std::vector<Match> retracted_;
};

// Adapts a lambda.
class FunctionSink final : public MatchSink {
 public:
  explicit FunctionSink(std::function<void(Match&&)> fn) : fn_(std::move(fn)) {}
  void on_match(Match&& m) override { fn_(std::move(m)); }

 private:
  std::function<void(Match&&)> fn_;
};

}  // namespace oosp
