// Match sinks: where engines deliver results.
//
// Two sink interfaces exist, one per routing granularity, with the SAME
// delivery conventions:
//
//   MatchSink   — single-engine delivery (one query, no tagging).
//   TaggedSink  — multi-query delivery (Session / MultiQueryRunner /
//                 ShardedRunner); identical signatures plus a leading
//                 QueryId identifying the originating query.
//
// ## The retraction contract (normative for both interfaces)
//
// `on_match(Match&&)` transfers ownership: the match is MOVED into the
// sink, which may store or destroy it freely. Every emission is final
// unless the producing engine runs the aggressive negation policy
// (EngineOptions::aggressive_negation), in which case a later
// `on_retract(const Match&)` may revise it:
//
//   * on_retract passes the match by const reference — it is a
//     NOTIFICATION carrying the identity of a previously delivered
//     match, not a transfer of a new result. Identify the victim by
//     match_key(m) (the event ids bound to positive steps); the sink
//     must not assume the reference stays valid after the call returns.
//   * A retraction always refers to a match already delivered via
//     on_match with the same key, arrives before the engine's finish()
//     returns, and is issued at most once per emission.
//   * The net result set (emissions minus retractions, as multisets of
//     match keys) equals what the conservative policy would have
//     emitted. Sinks that cannot tolerate revisions (e.g. pipeline
//     composition into a downstream engine) should refuse retractions
//     loudly rather than ignore them — see CompositeEmitter.
//   * The default implementations ignore retractions, so purely
//     conservative pipelines need not care.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <iterator>
#include <vector>

#include "engine/core/match.hpp"

namespace oosp {

class MatchSink {
 public:
  virtual ~MatchSink() = default;
  virtual void on_match(Match&& m) = 0;

  // See "The retraction contract" above. Only engines running the
  // aggressive output policy ever call this.
  virtual void on_retract(const Match& m) { (void)m; }
};

// Identifies a registered query inside a Session / multi-query runner;
// assigned densely in registration order starting at 0.
using QueryId = std::size_t;

struct TaggedMatch {
  QueryId query = 0;
  Match match;
};

// Multi-query delivery interface; same conventions as MatchSink (see the
// retraction contract above), tagged with the originating query.
class TaggedSink {
 public:
  virtual ~TaggedSink() = default;
  virtual void on_match(QueryId query, Match&& m) = 0;
  virtual void on_retract(QueryId query, const Match& m) {
    (void)query;
    (void)m;
  }
};

// Stores every tagged match (and retraction) — tests, and the per-shard
// collection stage of the sharded runtime.
class CollectingTaggedSink final : public TaggedSink {
 public:
  void on_match(QueryId query, Match&& m) override {
    matches_.push_back(TaggedMatch{query, std::move(m)});
  }
  void on_retract(QueryId query, const Match& m) override {
    retracted_.push_back(TaggedMatch{query, m});
  }

  const std::vector<TaggedMatch>& matches() const noexcept { return matches_; }
  const std::vector<TaggedMatch>& retracted() const noexcept { return retracted_; }

  std::vector<MatchKey> keys_for(QueryId query) const {
    std::vector<MatchKey> keys;
    for (const TaggedMatch& tm : matches_)
      if (tm.query == query) keys.push_back(match_key(tm.match));
    std::sort(keys.begin(), keys.end());
    return keys;
  }

  std::vector<TaggedMatch> take() {
    std::vector<TaggedMatch> out = std::move(matches_);
    matches_.clear();
    return out;
  }
  std::vector<TaggedMatch> take_retracted() {
    std::vector<TaggedMatch> out = std::move(retracted_);
    retracted_.clear();
    return out;
  }

 private:
  std::vector<TaggedMatch> matches_;
  std::vector<TaggedMatch> retracted_;
};

// Discards matches (pure-throughput benchmarking).
class NullSink final : public MatchSink {
 public:
  void on_match(Match&&) override { ++count_; }
  std::uint64_t count() const noexcept { return count_; }

 private:
  std::uint64_t count_ = 0;
};

// Counts matches and aggregates detection delay without storing bodies.
class CountingSink final : public MatchSink {
 public:
  void on_match(Match&& m) override {
    ++count_;
    total_delay_ += m.detection_delay();
    max_delay_ = std::max(max_delay_, m.detection_delay());
  }
  void on_retract(const Match&) override { ++retractions_; }
  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t retractions() const noexcept { return retractions_; }
  double mean_delay() const noexcept {
    return count_ ? static_cast<double>(total_delay_) / static_cast<double>(count_) : 0.0;
  }
  Timestamp max_delay() const noexcept { return max_delay_; }

 private:
  std::uint64_t count_ = 0;
  std::uint64_t retractions_ = 0;
  Timestamp total_delay_ = 0;
  Timestamp max_delay_ = 0;
};

// Stores every match; used by tests and the verification harness.
class CollectingSink final : public MatchSink {
 public:
  void on_match(Match&& m) override { matches_.push_back(std::move(m)); }
  void on_retract(const Match& m) override { retracted_.push_back(m); }

  const std::vector<Match>& matches() const noexcept { return matches_; }
  const std::vector<Match>& retracted() const noexcept { return retracted_; }
  std::size_t size() const noexcept { return matches_.size(); }
  void clear() noexcept {
    matches_.clear();
    retracted_.clear();
  }

  // Sorted identity keys; duplicates preserved (an engine emitting the
  // same logical match twice is a bug that tests must be able to see).
  std::vector<MatchKey> sorted_keys() const {
    std::vector<MatchKey> keys;
    keys.reserve(matches_.size());
    for (const Match& m : matches_) keys.push_back(match_key(m));
    std::sort(keys.begin(), keys.end());
    return keys;
  }

  // Net result under the aggressive policy: emissions minus retractions
  // (multiset difference), sorted.
  std::vector<MatchKey> net_sorted_keys() const {
    std::vector<MatchKey> keys = sorted_keys();
    std::vector<MatchKey> gone;
    gone.reserve(retracted_.size());
    for (const Match& m : retracted_) gone.push_back(match_key(m));
    std::sort(gone.begin(), gone.end());
    std::vector<MatchKey> net;
    std::set_difference(keys.begin(), keys.end(), gone.begin(), gone.end(),
                        std::back_inserter(net));
    return net;
  }

 private:
  std::vector<Match> matches_;
  std::vector<Match> retracted_;
};

// Adapts a lambda.
class FunctionSink final : public MatchSink {
 public:
  explicit FunctionSink(std::function<void(Match&&)> fn) : fn_(std::move(fn)) {}
  void on_match(Match&& m) override { fn_(std::move(m)); }

 private:
  std::function<void(Match&&)> fn_;
};

}  // namespace oosp
