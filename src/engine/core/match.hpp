// A detected pattern match and its identity key.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "event/event.hpp"

namespace oosp {

struct Match {
  // One event per POSITIVE step, in pattern order. Timestamps are
  // strictly increasing left to right.
  std::vector<Event> events;

  // Stream clock (max ts delivered) at the moment the match was emitted.
  // Filled by the driver/sink wrapper; engines may leave it at kMin.
  Timestamp detection_clock = kMinTimestamp;

  Timestamp first_ts() const noexcept { return events.front().ts; }
  Timestamp last_ts() const noexcept { return events.back().ts; }

  // Detection delay in stream time: how far the clock had moved past the
  // pattern-completing timestamp when the result came out. Zero for an
  // engine that reports a result the instant its final event arrives in
  // order; ≈K for a K-slack buffered engine.
  Timestamp detection_delay() const noexcept { return detection_clock - last_ts(); }
};

// Identity of a match: the event ids bound to the positive steps.
using MatchKey = std::vector<EventId>;

MatchKey match_key(const Match& m);

std::ostream& operator<<(std::ostream& os, const Match& m);

}  // namespace oosp
