#include "engine/core/admission.hpp"

namespace oosp {

std::string_view to_string(LatePolicy p) noexcept {
  switch (p) {
    case LatePolicy::kAdmit: return "admit";
    case LatePolicy::kDrop: return "drop";
    case LatePolicy::kQuarantine: return "quarantine";
  }
  return "?";
}

bool AdmissionControl::schema_ok(const Event& e) const {
  if (e.type == kInvalidType) return false;
  const TypeRegistry* reg = options_.registry;
  if (reg == nullptr) return true;  // only TypeId sanity without a registry
  if (e.type >= reg->size()) return false;
  const Schema& schema = reg->schema(e.type);
  if (e.attrs.size() != schema.field_count()) return false;
  for (std::size_t i = 0; i < e.attrs.size(); ++i)
    if (e.attrs[i].type() != schema.field(i).type) return false;
  return true;
}

bool AdmissionControl::admit(const Event& e) {
  if (!schema_ok(e)) {
    ++stats_.events_rejected;
    return false;
  }
  if (options_.dedup_by_id && !seen_ids_.insert(e.id).second) {
    ++stats_.events_deduped;
    return false;
  }
  return true;
}

bool AdmissionControl::admit_violation(const Event& e) {
  switch (options_.late_policy) {
    case LatePolicy::kAdmit:
      return true;
    case LatePolicy::kDrop:
      ++stats_.events_dropped_late;
      return false;
    case LatePolicy::kQuarantine:
      if (quarantine_.size() >= options_.quarantine_capacity) {
        ++stats_.events_dropped_late;  // overflow falls back to drop
      } else {
        quarantine_.push_back(e);
        ++stats_.events_quarantined;
      }
      return false;
  }
  return true;
}

std::vector<Event> AdmissionControl::drain_quarantine() {
  std::vector<Event> out(quarantine_.begin(), quarantine_.end());
  quarantine_.clear();
  return out;
}

}  // namespace oosp
