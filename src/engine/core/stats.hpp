// Uniform engine counters, reported by every engine implementation.
// `current/peak_instances` count partial-match state (stack instances or
// NFA runs); `buffered` counts events parked in reorder or negation
// buffers; `pending_matches` counts results awaiting negation sealing.
// `construction_visits` and `predicate_evals` are the CPU-cost proxies
// the benchmark tables report alongside wall-clock throughput.
#pragma once

#include <cstdint>

#include "common/contracts.hpp"

namespace oosp {

struct EngineStats {
  std::uint64_t events_seen = 0;
  std::uint64_t events_relevant = 0;
  std::uint64_t late_events = 0;
  // Events later than the engine's safe horizon: the K-slack contract the
  // engine's purge/sealing decisions rely on was broken — results may be
  // missing matches whose state was already purged. What happens to the
  // violating event itself is EngineOptions::late_policy; each violation
  // is also counted in exactly one of events_dropped_late /
  // events_quarantined, or admitted best-effort. Monitor this.
  std::uint64_t contract_violations = 0;
  // Slack-violating events discarded under LatePolicy::kDrop (including
  // quarantine overflow under kQuarantine).
  std::uint64_t events_dropped_late = 0;
  // Slack-violating events parked for PatternEngine::drain_quarantine()
  // under LatePolicy::kQuarantine.
  std::uint64_t events_quarantined = 0;
  // Events rejected by schema validation (unknown TypeId, attribute
  // arity/type mismatch) before touching engine state.
  std::uint64_t events_rejected = 0;
  // Re-deliveries suppressed by EngineOptions::dedup_by_id.
  std::uint64_t events_deduped = 0;
  // Adaptive K-slack: the effective K at last report, and how often the
  // engine retuned it in either direction.
  std::int64_t effective_slack = 0;
  std::uint64_t slack_grows = 0;
  std::uint64_t slack_shrinks = 0;

  std::uint64_t instances_inserted = 0;
  std::uint64_t instances_purged = 0;
  std::uint64_t current_instances = 0;
  std::uint64_t peak_instances = 0;

  std::uint64_t buffered = 0;
  std::uint64_t buffered_peak = 0;

  std::uint64_t pending_matches = 0;
  std::uint64_t pending_peak = 0;

  std::uint64_t matches_emitted = 0;
  std::uint64_t matches_cancelled = 0;  // pending matches killed by a negative
  std::uint64_t matches_retracted = 0;  // aggressive policy: revisions issued

  std::uint64_t construction_visits = 0;
  std::uint64_t predicate_evals = 0;
  std::uint64_t purge_passes = 0;

  // Total live state right now (instances + buffers + pending).
  std::uint64_t footprint() const noexcept {
    return current_instances + buffered + pending_matches;
  }

  // High-water mark of footprint() over time — THE memory metric the
  // benchmark tables report. Engines refresh it once per on_event.
  std::uint64_t footprint_peak = 0;

  void note_footprint(std::uint64_t current) noexcept {
    footprint_peak = current > footprint_peak ? current : footprint_peak;
  }

  void note_instance_added() noexcept {
    ++instances_inserted;
    ++current_instances;
    peak_instances = current_instances > peak_instances ? current_instances : peak_instances;
  }
  // Debug builds trap removal of more state than is live: a silent u64
  // underflow here corrupts footprint() — and with it every memory table
  // in EXPERIMENTS.md — so a double-purge must fail loudly, not quietly.
  void note_instances_removed(std::uint64_t n) {
    OOSP_ASSERT(n <= current_instances);
    instances_purged += n;
    current_instances -= n;
  }
  void note_buffered(std::uint64_t delta_sign_positive) noexcept {
    buffered += delta_sign_positive;
    buffered_peak = buffered > buffered_peak ? buffered : buffered_peak;
  }
  void note_unbuffered(std::uint64_t n) {
    OOSP_ASSERT(n <= buffered);
    buffered -= n;
  }
  void note_pending_added() noexcept {
    ++pending_matches;
    pending_peak = pending_matches > pending_peak ? pending_matches : pending_peak;
  }

  // Cross-shard / cross-engine aggregation. Counters and gauges add;
  // peaks add too — the shards run concurrently, so the sum is the
  // correct upper bound on their combined high-water mark (per-shard
  // peaks need not coincide in time, so the true combined peak is <= the
  // sum). effective_slack is a tuning gauge, not a counter: the merge
  // keeps the maximum, i.e. the most conservative K any shard settled on.
  EngineStats& operator+=(const EngineStats& o) noexcept {
    events_seen += o.events_seen;
    events_relevant += o.events_relevant;
    late_events += o.late_events;
    contract_violations += o.contract_violations;
    events_dropped_late += o.events_dropped_late;
    events_quarantined += o.events_quarantined;
    events_rejected += o.events_rejected;
    events_deduped += o.events_deduped;
    effective_slack = o.effective_slack > effective_slack ? o.effective_slack
                                                          : effective_slack;
    slack_grows += o.slack_grows;
    slack_shrinks += o.slack_shrinks;
    instances_inserted += o.instances_inserted;
    instances_purged += o.instances_purged;
    current_instances += o.current_instances;
    peak_instances += o.peak_instances;
    buffered += o.buffered;
    buffered_peak += o.buffered_peak;
    pending_matches += o.pending_matches;
    pending_peak += o.pending_peak;
    matches_emitted += o.matches_emitted;
    matches_cancelled += o.matches_cancelled;
    matches_retracted += o.matches_retracted;
    construction_visits += o.construction_visits;
    predicate_evals += o.predicate_evals;
    purge_passes += o.purge_passes;
    footprint_peak += o.footprint_peak;
    return *this;
  }
};

inline EngineStats operator+(EngineStats a, const EngineStats& b) noexcept {
  a += b;
  return a;
}

}  // namespace oosp
