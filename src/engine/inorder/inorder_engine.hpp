// In-order Sequence Scan & Construction engine (SASE lineage).
//
// The state of the art the paper starts from. One Active Instance Stack
// per positive step; every pushed instance records a rightmost-instance
// pointer (RIP) — the virtual end index of the previous step's stack at
// push time — so sequence construction is a pointer-bounded depth-first
// enumeration triggered by arrivals of the last positive step's type.
//
// CORRECT ONLY FOR TS-ORDERED ARRIVAL. Fed out-of-order input it misses
// matches (a late event is pushed above instances it should precede, and
// triggers that already fired never see it) and purges state that late
// events still need. Experiment R-T2 quantifies exactly that; the buffer
// front-end (engine/buffer) or the native OOO engine (engine/ooo) are the
// two remedies this repository compares.
#pragma once

#include <deque>
#include <unordered_map>
#include <vector>

#include "common/event_arena.hpp"
#include "engine/core/admission.hpp"
#include "engine/core/engine.hpp"
#include "engine/core/negative_buffer.hpp"
#include "stream/clock.hpp"

namespace oosp {

class InOrderEngine final : public PatternEngine {
 public:
  explicit InOrderEngine(EngineContext ctx);

  void on_event(const Event& e) override;
  std::string name() const override { return "inorder-ssc"; }
  void snapshot(CheckpointWriter& w) const override;
  void restore(CheckpointReader& r) override;

 private:
  struct Instance {
    Event event;
    std::size_t rip;  // virtual end index of the previous stack at push time
  };

  // Deque plus a virtual base so RIPs survive front purges.
  struct Stack {
    std::deque<Instance> items;
    std::size_t base = 0;
    std::size_t virtual_end() const noexcept { return base + items.size(); }
    const Instance& at_virtual(std::size_t v) const { return items[v - base]; }
  };

  struct Shard {
    std::vector<Stack> stacks;          // indexed by positive ordinal
    std::vector<NegativeBuffer> negatives;  // indexed by negated ordinal
  };

  Shard make_shard() const;
  Shard& shard_for(const Value& key);
  void write_shard(CheckpointWriter& w, const Shard& sh) const;
  Shard read_shard(CheckpointReader& r);
  void process_in_shard(Shard& shard, const Event& e, std::size_t step);
  void construct(Shard& shard, const Instance& trigger);
  void descend(Shard& shard, std::size_t ordinal, std::size_t rip_limit,
               Timestamp succ_ts, Timestamp window_floor);
  void emit_candidate(Shard& shard);
  void purge(Shard& shard, Timestamp threshold);
  void maybe_purge();

  StreamClock clock_;
  AdmissionControl admission_{options_, stats_};
  // Backing store for negation-buffer entries (stacks keep whole events:
  // construction binds them constantly, the indirection would not pay).
  EventArena arena_;
  bool partitioned_ = false;
  std::vector<std::size_t> ordinal_of_step_;   // pattern step → ordinal in its class
  std::vector<std::size_t> step_of_positive_;  // positive ordinal → pattern step
  std::vector<std::size_t> step_of_negated_;   // negated ordinal → pattern step
  std::vector<std::vector<std::size_t>> schedule_;  // descending positive order
  std::vector<const Event*> bindings_;
  std::vector<const Event*> single_;  // scratch for local predicate checks
  std::size_t events_since_purge_ = 0;

  Shard root_;  // used when not partitioned
  std::unordered_map<Value, Shard, ValueHasher> shards_;
};

}  // namespace oosp
