#include "engine/inorder/inorder_engine.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "engine/core/schedule.hpp"
#include "runtime/checkpoint.hpp"

namespace oosp {

InOrderEngine::InOrderEngine(EngineContext ctx) : PatternEngine(std::move(ctx)) {
  const CompiledQuery& query = query_;
  ordinal_of_step_.assign(query.num_steps(), CompiledStep::npos);
  for (std::size_t s = 0; s < query.num_steps(); ++s) {
    if (query.step(s).negated) {
      ordinal_of_step_[s] = step_of_negated_.size();
      step_of_negated_.push_back(s);
    } else {
      ordinal_of_step_[s] = step_of_positive_.size();
      step_of_positive_.push_back(s);
    }
  }
  // Descending construction order: trigger first, then leftward.
  std::vector<std::size_t> desc(step_of_positive_.rbegin(), step_of_positive_.rend());
  schedule_ = build_predicate_schedule(query, desc);
  bindings_.assign(query.num_steps(), nullptr);
  single_.assign(query.num_steps(), nullptr);

  // Partition only when every step (negated included) is in the equality
  // class, so each shard is self-contained.
  partitioned_ = options_.partition_by_key && query.partitionable() &&
                 std::none_of(query.partition_slots().begin(), query.partition_slots().end(),
                              [](std::size_t s) { return s == CompiledStep::npos; });
  if (!partitioned_) root_ = make_shard();
}

InOrderEngine::Shard InOrderEngine::make_shard() const {
  Shard sh;
  sh.stacks.resize(step_of_positive_.size());
  sh.negatives.reserve(step_of_negated_.size());
  for (const std::size_t step : step_of_negated_) sh.negatives.emplace_back(query_, step);
  return sh;
}

InOrderEngine::Shard& InOrderEngine::shard_for(const Value& key) {
  auto it = shards_.find(key);
  if (it == shards_.end()) it = shards_.emplace(key, make_shard()).first;
  return it->second;
}

void InOrderEngine::on_event(const Event& e) {
  ++stats_.events_seen;
  EngineObs::inc(obs_.events);
  if (!admission_.admit(e)) return;
  if (clock_.observe(e) > 0) {
    ++stats_.late_events;
    EngineObs::inc(obs_.late);
  }
  const auto steps = query_.steps_for_type(e.type);
  if (steps.empty()) {
    maybe_purge();
    return;
  }
  ++stats_.events_relevant;
  for (const std::size_t step : steps) {
    // Local predicate gate.
    single_[step] = &e;
    bool ok = true;
    for (const std::size_t pi : query_.step(step).local_predicates) {
      ++stats_.predicate_evals;
      if (!query_.predicates()[pi].eval(single_)) {
        ok = false;
        break;
      }
    }
    single_[step] = nullptr;
    if (!ok) continue;
    Shard& shard =
        partitioned_ ? shard_for(e.attr(query_.partition_slots()[step])) : root_;
    process_in_shard(shard, e, step);
  }
  maybe_purge();
  stats_.note_footprint(stats_.footprint());
  EngineObs::set(obs_.footprint, static_cast<std::int64_t>(stats_.footprint()));
}

void InOrderEngine::process_in_shard(Shard& shard, const Event& e, std::size_t step) {
  const std::size_t ord = ordinal_of_step_[step];
  if (query_.step(step).negated) {
    shard.negatives[ord].insert(e.ts, e.id, arena_.alloc(e));
    stats_.note_buffered(1);
    return;
  }
  Stack& stack = shard.stacks[ord];
  const std::size_t rip = ord == 0 ? 0 : shard.stacks[ord - 1].virtual_end();
  stack.items.push_back(Instance{e, rip});
  stats_.note_instance_added();
  trace_span(ord == 0 ? TraceKind::kStart : TraceKind::kStep, e.ts, clock_.now(),
             nullptr, &e);
  if (step == query_.trigger_step()) construct(shard, stack.items.back());
}

void InOrderEngine::construct(Shard& shard, const Instance& trigger) {
  const std::size_t trigger_step = query_.trigger_step();
  bindings_[trigger_step] = &trigger.event;
  ++stats_.construction_visits;
  bool ok = true;
  for (const std::size_t pi : schedule_[0]) {
    ++stats_.predicate_evals;
    if (!query_.predicates()[pi].eval(bindings_)) {
      ok = false;
      break;
    }
  }
  if (ok) {
    const Timestamp window_floor = trigger.event.ts - query_.window();
    if (step_of_positive_.size() == 1) {
      emit_candidate(shard);
    } else {
      descend(shard, step_of_positive_.size() - 2, trigger.rip, trigger.event.ts,
              window_floor);
    }
  }
  bindings_[trigger_step] = nullptr;
}

void InOrderEngine::descend(Shard& shard, std::size_t ordinal, std::size_t rip_limit,
                            Timestamp succ_ts, Timestamp window_floor) {
  const Stack& stack = shard.stacks[ordinal];
  const std::size_t step = step_of_positive_[ordinal];
  const std::size_t sched_pos = step_of_positive_.size() - 1 - ordinal;
  const std::size_t hi = std::min(rip_limit, stack.virtual_end());
  for (std::size_t v = hi; v-- > stack.base;) {
    const Instance& inst = stack.at_virtual(v);
    ++stats_.construction_visits;
    if (inst.event.ts >= succ_ts) continue;   // strict sequencing
    if (inst.event.ts < window_floor) break;  // sorted by arrival==ts: all below fail
    bindings_[step] = &inst.event;
    bool ok = true;
    for (const std::size_t pi : schedule_[sched_pos]) {
      ++stats_.predicate_evals;
      if (!query_.predicates()[pi].eval(bindings_)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      if (ordinal == 0) {
        emit_candidate(shard);
      } else {
        descend(shard, ordinal - 1, inst.rip, inst.event.ts, window_floor);
      }
    }
  }
  bindings_[step] = nullptr;
}

void InOrderEngine::emit_candidate(Shard& shard) {
  for (std::size_t i = 0; i < step_of_negated_.size(); ++i) {
    const CompiledStep& s = query_.step(step_of_negated_[i]);
    const Timestamp lo = bindings_[s.prev_positive]->ts;
    const Timestamp hi = bindings_[s.next_positive]->ts;
    if (shard.negatives[i].violates(arena_, lo, hi, bindings_, stats_.predicate_evals))
      return;
  }
  Match m;
  m.events.reserve(step_of_positive_.size());
  for (const std::size_t p : step_of_positive_) m.events.push_back(*bindings_[p]);
  m.detection_clock = clock_.now();
  emit(std::move(m));
}

void InOrderEngine::write_shard(CheckpointWriter& w, const Shard& sh) const {
  w.tag("shd");
  w.u64(sh.stacks.size());
  for (const Stack& st : sh.stacks) {
    w.u64(st.base);
    w.u64(st.items.size());
    for (const Instance& inst : st.items) {
      w.event(inst.event);
      w.u64(inst.rip);
    }
  }
  w.u64(sh.negatives.size());
  for (const NegativeBuffer& nb : sh.negatives) write_negative_buffer(w, nb, arena_);
}

InOrderEngine::Shard InOrderEngine::read_shard(CheckpointReader& r) {
  r.expect_tag("shd");
  Shard sh = make_shard();
  if (r.count() != sh.stacks.size())
    throw CheckpointError("inorder checkpoint stack count disagrees with query");
  for (Stack& st : sh.stacks) {
    st.base = static_cast<std::size_t>(r.u64());
    const std::size_t n = r.count(8);
    for (std::size_t i = 0; i < n; ++i) {
      Event e = r.event();
      const std::size_t rip = static_cast<std::size_t>(r.u64());
      st.items.push_back(Instance{std::move(e), rip});
    }
  }
  if (r.count() != sh.negatives.size())
    throw CheckpointError("inorder checkpoint negation count disagrees with query");
  for (NegativeBuffer& nb : sh.negatives) read_negative_buffer(r, nb, arena_);
  return sh;
}

void InOrderEngine::snapshot(CheckpointWriter& w) const {
  write_engine_guard(w, name(), query_.text());
  w.stats(stats_);
  write_clock(w, clock_);
  write_admission(w, admission_);
  w.u64(events_since_purge_);
  w.boolean(partitioned_);
  if (!partitioned_) {
    write_shard(w, root_);
    return;
  }
  // Hash-map iteration order is nondeterministic; sort keys so equal
  // state always snapshots to equal bytes.
  std::vector<const std::pair<const Value, Shard>*> entries;
  entries.reserve(shards_.size());
  for (const auto& kv : shards_) entries.push_back(&kv);
  std::sort(entries.begin(), entries.end(),
            [](const auto* a, const auto* b) { return a->first.compare(b->first) < 0; });
  w.u64(entries.size());
  for (const auto* kv : entries) {
    w.value(kv->first);
    write_shard(w, kv->second);
  }
}

void InOrderEngine::restore(CheckpointReader& r) {
  read_engine_guard(r, name(), query_.text());
  stats_ = r.stats();
  read_clock(r, clock_);
  read_admission(r, admission_);
  events_since_purge_ = static_cast<std::size_t>(r.u64());
  if (r.boolean() != partitioned_)
    throw CheckpointError("inorder checkpoint partitioning disagrees with options");
  arena_.clear();
  shards_.clear();
  root_ = Shard{};
  if (!partitioned_) {
    root_ = read_shard(r);
    return;
  }
  const std::size_t n = r.count();
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Value key = r.value();
    Shard sh = read_shard(r);
    shards_.emplace(std::move(key), std::move(sh));
  }
}

void InOrderEngine::maybe_purge() {
  if (options_.purge_period == 0) return;
  if (++events_since_purge_ < options_.purge_period) return;
  events_since_purge_ = 0;
  if (!clock_.started()) return;
  // In-order semantics: no event older than the clock will ever arrive,
  // so anything below clock − W can never join a future trigger.
  const Timestamp threshold = clock_.now() - query_.window();
  ++stats_.purge_passes;
  EngineObs::inc(obs_.purge_passes);
  trace_span(TraceKind::kPurge, threshold, clock_.now());
  if (partitioned_) {
    for (auto it = shards_.begin(); it != shards_.end();) {
      purge(it->second, threshold);
      bool empty = std::all_of(it->second.stacks.begin(), it->second.stacks.end(),
                               [](const Stack& s) { return s.items.empty(); }) &&
                   std::all_of(it->second.negatives.begin(), it->second.negatives.end(),
                               [](const NegativeBuffer& b) { return b.size() == 0; });
      it = empty ? shards_.erase(it) : std::next(it);
    }
  } else {
    purge(root_, threshold);
  }
}

void InOrderEngine::purge(Shard& shard, Timestamp threshold) {
  for (Stack& stack : shard.stacks) {
    std::size_t removed = 0;
    while (!stack.items.empty() && stack.items.front().event.ts < threshold) {
      stack.items.pop_front();
      ++stack.base;
      ++removed;
    }
    if (removed) {
      stats_.note_instances_removed(removed);
      EngineObs::inc(obs_.purged, removed);
    }
  }
  for (NegativeBuffer& nb : shard.negatives) {
    const std::size_t removed = nb.purge_before(threshold, arena_);
    if (removed) {
      stats_.note_unbuffered(removed);
      EngineObs::inc(obs_.purged, removed);
    }
  }
}

}  // namespace oosp
