#include "engine/engines.hpp"

#include "common/contracts.hpp"
#include "engine/buffer/kslack_engine.hpp"
#include "engine/inorder/inorder_engine.hpp"
#include "engine/nfa/nfa_engine.hpp"
#include "engine/ooo/ooo_engine.hpp"

namespace oosp {

std::string_view to_string(EngineKind k) noexcept {
  switch (k) {
    case EngineKind::kInOrder: return "inorder-ssc";
    case EngineKind::kNfa: return "nfa-runs";
    case EngineKind::kOoo: return "ooo-native";
    case EngineKind::kKSlackInOrder: return "kslack+inorder-ssc";
    case EngineKind::kKSlackNfa: return "kslack+nfa-runs";
  }
  return "?";
}

std::unique_ptr<PatternEngine> make_engine(EngineKind kind, const CompiledQuery& query,
                                           MatchSink& sink, EngineOptions options) {
  switch (kind) {
    case EngineKind::kInOrder:
      return std::make_unique<InOrderEngine>(query, sink, options);
    case EngineKind::kNfa:
      return std::make_unique<NfaEngine>(query, sink, options);
    case EngineKind::kOoo:
      return std::make_unique<OooEngine>(query, sink, options);
    case EngineKind::kKSlackInOrder:
      return std::make_unique<KSlackEngine>(
          query, sink, options,
          [](const CompiledQuery& q, MatchSink& s, EngineOptions o) {
            return std::make_unique<InOrderEngine>(q, s, o);
          });
    case EngineKind::kKSlackNfa:
      return std::make_unique<KSlackEngine>(
          query, sink, options,
          [](const CompiledQuery& q, MatchSink& s, EngineOptions o) {
            return std::make_unique<NfaEngine>(q, s, o);
          });
  }
  OOSP_CHECK(false, "unknown engine kind");
  return nullptr;
}

}  // namespace oosp
