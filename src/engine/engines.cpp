#include "engine/engines.hpp"

#include "common/contracts.hpp"
#include "engine/agg/agg_engine.hpp"
#include "engine/buffer/kslack_engine.hpp"
#include "engine/inorder/inorder_engine.hpp"
#include "engine/nfa/nfa_engine.hpp"
#include "engine/ooo/ooo_engine.hpp"
#include "runtime/checkpoint.hpp"

namespace oosp {

// Base implementations: every shipped engine overrides these; a custom
// engine that does not is simply not checkpointable, and should fail
// loudly if a supervisor tries.
void PatternEngine::snapshot(CheckpointWriter&) const {
  throw CheckpointError("engine '" + name() + "' does not support snapshot()");
}

void PatternEngine::restore(CheckpointReader&) {
  throw CheckpointError("engine '" + name() + "' does not support restore()");
}

std::string_view to_string(EngineKind k) noexcept {
  switch (k) {
    case EngineKind::kInOrder: return "inorder-ssc";
    case EngineKind::kNfa: return "nfa-runs";
    case EngineKind::kOoo: return "ooo-native";
    case EngineKind::kKSlackInOrder: return "kslack+inorder-ssc";
    case EngineKind::kKSlackNfa: return "kslack+nfa-runs";
    case EngineKind::kAgg: return "agg-ooo";
  }
  return "?";
}

std::unique_ptr<PatternEngine> make_engine(EngineKind kind, EngineContext ctx) {
  OOSP_REQUIRE(ctx.query != nullptr, "make_engine: null query");
  OOSP_REQUIRE(ctx.query->is_agg() == (kind == EngineKind::kAgg),
               kind == EngineKind::kAgg
                   ? "kAgg engine needs an AGG query"
                   : "AGG queries run only on EngineKind::kAgg");
  switch (kind) {
    case EngineKind::kInOrder:
      return std::make_unique<InOrderEngine>(std::move(ctx));
    case EngineKind::kNfa:
      return std::make_unique<NfaEngine>(std::move(ctx));
    case EngineKind::kOoo:
      return std::make_unique<OooEngine>(std::move(ctx));
    case EngineKind::kKSlackInOrder:
      return std::make_unique<KSlackEngine>(std::move(ctx), [](EngineContext inner) {
        return std::make_unique<InOrderEngine>(std::move(inner));
      });
    case EngineKind::kKSlackNfa:
      return std::make_unique<KSlackEngine>(std::move(ctx), [](EngineContext inner) {
        return std::make_unique<NfaEngine>(std::move(inner));
      });
    case EngineKind::kAgg:
      return std::make_unique<AggEngine>(std::move(ctx));
  }
  OOSP_CHECK(false, "unknown engine kind");
  return nullptr;
}

}  // namespace oosp
