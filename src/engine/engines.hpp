// Factory over every engine in the repository — the single entry point
// through which examples, tests, benchmarks and the Session runtime
// construct engines. Construction takes an EngineContext (shared
// ownership of query and sink — see engine/core/engine.hpp), so no
// borrowed raw pointers cross the API boundary.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "engine/core/engine.hpp"

namespace oosp {

enum class EngineKind : std::uint8_t {
  kInOrder,        // in-order SSC stacks (baseline; wrong under OOO input)
  kNfa,            // NFA runs (baseline; wrong under OOO input)
  kOoo,            // native out-of-order engine (the paper's approach)
  kKSlackInOrder,  // K-slack reorder buffer + in-order SSC (conventional fix)
  kKSlackNfa,      // K-slack reorder buffer + NFA runs
  kAgg,            // OOO sliding-window aggregation (AGG queries only)
};

std::string_view to_string(EngineKind k) noexcept;

// Declarative registration of one query: the pattern text plus optional
// per-query engine kind and options. Implicitly constructible from a
// bare string so `.query("PATTERN ...")` keeps reading naturally; a kind
// or options left unset falls back to the caller's defaults (the
// SessionConfig-wide .engine()/.options(), or kOoo/{} on a raw
// MultiQueryRunner). This is the one value type query registration
// accepts — SessionConfig::query and MultiQueryRunner::add_query both
// take it, replacing the positional (text, kind, options) triples.
struct QuerySpec {
  std::string text;
  std::optional<EngineKind> kind;
  std::optional<EngineOptions> options;

  QuerySpec(std::string t) : text(std::move(t)) {}
  QuerySpec(const char* t) : text(t) {}
  QuerySpec(std::string t, EngineKind k) : text(std::move(t)), kind(k) {}
  QuerySpec(std::string t, EngineKind k, EngineOptions o)
      : text(std::move(t)), kind(k), options(std::move(o)) {}
};

std::unique_ptr<PatternEngine> make_engine(EngineKind kind, EngineContext ctx);

// Convenience overload assembling the context in place.
inline std::unique_ptr<PatternEngine> make_engine(
    EngineKind kind, std::shared_ptr<const CompiledQuery> query,
    std::shared_ptr<MatchSink> sink, EngineOptions options = {}) {
  return make_engine(kind, EngineContext{std::move(query), std::move(sink),
                                         std::move(options)});
}

}  // namespace oosp
