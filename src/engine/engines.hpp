// Factory over every engine in the repository — the single entry point
// through which examples, tests, benchmarks and the Session runtime
// construct engines. Construction takes an EngineContext (shared
// ownership of query and sink — see engine/core/engine.hpp), so no
// borrowed raw pointers cross the API boundary.
#pragma once

#include <memory>
#include <string>

#include "engine/core/engine.hpp"

namespace oosp {

enum class EngineKind : std::uint8_t {
  kInOrder,        // in-order SSC stacks (baseline; wrong under OOO input)
  kNfa,            // NFA runs (baseline; wrong under OOO input)
  kOoo,            // native out-of-order engine (the paper's approach)
  kKSlackInOrder,  // K-slack reorder buffer + in-order SSC (conventional fix)
  kKSlackNfa,      // K-slack reorder buffer + NFA runs
};

std::string_view to_string(EngineKind k) noexcept;

std::unique_ptr<PatternEngine> make_engine(EngineKind kind, EngineContext ctx);

// Convenience overload assembling the context in place.
inline std::unique_ptr<PatternEngine> make_engine(
    EngineKind kind, std::shared_ptr<const CompiledQuery> query,
    std::shared_ptr<MatchSink> sink, EngineOptions options = {}) {
  return make_engine(kind, EngineContext{std::move(query), std::move(sink),
                                         std::move(options)});
}

}  // namespace oosp
