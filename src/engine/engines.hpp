// Factory over every engine in the repository — the convenient entry
// point for examples, tests and benchmarks that sweep engines.
#pragma once

#include <memory>
#include <string>

#include "engine/core/engine.hpp"

namespace oosp {

enum class EngineKind : std::uint8_t {
  kInOrder,        // in-order SSC stacks (baseline; wrong under OOO input)
  kNfa,            // NFA runs (baseline; wrong under OOO input)
  kOoo,            // native out-of-order engine (the paper's approach)
  kKSlackInOrder,  // K-slack reorder buffer + in-order SSC (conventional fix)
  kKSlackNfa,      // K-slack reorder buffer + NFA runs
};

std::string_view to_string(EngineKind k) noexcept;

std::unique_ptr<PatternEngine> make_engine(EngineKind kind, const CompiledQuery& query,
                                           MatchSink& sink, EngineOptions options = {});

}  // namespace oosp
