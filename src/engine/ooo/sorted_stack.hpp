// Timestamp-ordered Active Instance Stack.
//
// The paper's key data-structure change: instead of stacking instances in
// arrival order (which equals timestamp order only for in-order streams),
// the stack keeps instances sorted by (ts, id) and supports insertion at
// any position, so a late event splices in exactly where its timestamp
// puts it. The predecessor set of an instance with timestamp t in the
// previous step's stack is then the prefix with ts < t — recovered either
// by binary search (default) or from a cached rightmost-instance pointer
// (RIP) that out-of-order insertions and purges maintain incrementally
// (EngineOptions::cache_rip, ablation R-A3).
#pragma once

#include <cstdint>
#include <vector>

#include "event/event.hpp"

namespace oosp {

struct OooInstance {
  Event event;
  // Cached RIP: number of instances in the PREVIOUS step's stack with
  // ts strictly below this instance's ts. Maintained only when the
  // engine runs in cache_rip mode; 0 otherwise.
  std::size_t rip = 0;
};

class SortedStack {
 public:
  // Inserts keeping (ts, id) order; returns the insertion index.
  // Appending (the in-order fast path) is O(1) amortized.
  std::size_t insert(const Event& e);

  // Number of instances with ts strictly below t == index of the first
  // instance with ts >= t.
  std::size_t count_ts_below(Timestamp t) const noexcept;

  // Index of the first instance with ts strictly above t.
  std::size_t first_ts_above(Timestamp t) const noexcept;

  // Removes the prefix with ts < threshold; returns how many.
  std::size_t purge_before(Timestamp threshold);

  // Adds delta to the rip of every instance in [from, size()).
  void bump_rips_from(std::size_t from, std::size_t delta) noexcept;

  // Subtracts `removed` from every rip (after the previous stack purged
  // `removed` instances). Every live rip must be >= removed.
  void drop_rips(std::size_t removed) noexcept;

  // Checkpoint support (runtime/checkpoint.hpp). items() is already in
  // the canonical (ts, id) order; set_items() trusts its input to be.
  const std::vector<OooInstance>& items() const noexcept { return items_; }
  void set_items(std::vector<OooInstance> items) { items_ = std::move(items); }

  bool empty() const noexcept { return items_.empty(); }
  std::size_t size() const noexcept { return items_.size(); }
  const OooInstance& operator[](std::size_t i) const noexcept { return items_[i]; }
  OooInstance& operator[](std::size_t i) noexcept { return items_[i]; }

 private:
  std::vector<OooInstance> items_;
};

}  // namespace oosp
