// Timestamp-ordered Active Instance Stack.
//
// The paper's key data-structure change: instead of stacking instances in
// arrival order (which equals timestamp order only for in-order streams),
// the stack keeps instances sorted by (ts, id) and supports insertion at
// any position, so a late event splices in exactly where its timestamp
// puts it. The predecessor set of an instance with timestamp t in the
// previous step's stack is then the prefix with ts < t — recovered either
// by binary search (default) or from a cached rightmost-instance pointer
// (RIP) that out-of-order insertions and purges maintain incrementally
// (EngineOptions::cache_rip, ablation R-A3).
//
// Instances hold a 16-byte (ts, id, handle) key into the engine's
// EventArena rather than an owning Event copy: binary searches touch only
// this POD node, the arena pays one attrs allocation per arrival instead
// of one per referencing stack, and purging releases a refcount instead
// of freeing a vector.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/event_arena.hpp"
#include "event/event.hpp"

namespace oosp {

struct OooInstance {
  Timestamp ts = 0;
  EventId id = 0;
  EventHandle handle = kNullEventHandle;
  // Cached RIP: number of instances in the PREVIOUS step's stack with
  // ts strictly below this instance's ts. Maintained only when the
  // engine runs in cache_rip mode; 0 otherwise.
  std::size_t rip = 0;
};

class SortedStack {
 public:
  // Inserts keeping (ts, id) order; returns the insertion index. The
  // stack takes over one arena reference for the handle. Appending (the
  // in-order fast path) is O(1) amortized.
  std::size_t insert(Timestamp ts, EventId id, EventHandle handle);

  // Number of instances with ts strictly below t == index of the first
  // instance with ts >= t.
  std::size_t count_ts_below(Timestamp t) const noexcept;

  // Index of the first instance with ts strictly above t.
  std::size_t first_ts_above(Timestamp t) const noexcept;

  // Removes the prefix with ts < threshold, releasing each instance's
  // arena reference; returns how many.
  std::size_t purge_before(Timestamp threshold, EventArena& arena);

  // Adds delta to the rip of every instance in [from, size()).
  void bump_rips_from(std::size_t from, std::size_t delta) noexcept;

  // Batched form of bump_rips_from for a run of inserts into the
  // PREVIOUS stack: `sorted_ts` holds the inserted timestamps in
  // ascending order, and each instance's rip grows by the number of
  // entries strictly below its ts. One pass over the suffix that can be
  // affected, instead of one bump pass per insert.
  void bump_rips_batch(std::span<const Timestamp> sorted_ts) noexcept;

  // Subtracts `removed` from every rip (after the previous stack purged
  // `removed` instances). Every live rip must be >= removed.
  void drop_rips(std::size_t removed) noexcept;

  // Checkpoint support (runtime/checkpoint.hpp). items() is already in
  // the canonical (ts, id) order; set_items() trusts its input to be and
  // to carry one arena reference per instance.
  const std::vector<OooInstance>& items() const noexcept { return items_; }
  void set_items(std::vector<OooInstance> items) { items_ = std::move(items); }

  bool empty() const noexcept { return items_.empty(); }
  std::size_t size() const noexcept { return items_.size(); }
  const OooInstance& operator[](std::size_t i) const noexcept { return items_[i]; }
  OooInstance& operator[](std::size_t i) noexcept { return items_[i]; }

 private:
  std::vector<OooInstance> items_;
};

}  // namespace oosp
