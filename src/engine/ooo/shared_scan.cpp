#include "engine/ooo/shared_scan.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "engine/core/schedule.hpp"
#include "runtime/checkpoint.hpp"

namespace oosp {

SharedScanGroup::SharedScanGroup(const ScanGroupPlan& plan,
                                 std::vector<SharedScanMember> members,
                                 EngineOptions options,
                                 std::shared_ptr<TaggedSink> sink)
    : options_(std::move(options)),
      sink_(std::move(sink)),
      clock_(options_.slack),
      obs_(EngineObs::create(options_.metrics, /*arrival_side=*/true)),
      mqo_obs_(MqoObs::create(options_.metrics)) {
  OOSP_REQUIRE(options_.slack >= 0, "slack must be non-negative");
  OOSP_REQUIRE(sink_ != nullptr, "SharedScanGroup: null sink");
  OOSP_REQUIRE(members.size() >= 2 && members.size() == plan.members.size(),
               "SharedScanGroup: members disagree with the plan");
  partitioned_ = plan.partitioned;
  types_ = plan.types;
  type_slot_ = plan.type_slot;
  type_index_.assign(types_.empty() ? 0 : types_.back() + 1, CompiledStep::npos);
  for (std::size_t i = 0; i < types_.size(); ++i) type_index_[types_[i]] = i;
  members_of_type_.resize(types_.size());
  anchors_.resize(types_.size());

  members_.reserve(members.size());
  for (std::uint32_t mi = 0; mi < members.size(); ++mi) {
    SharedScanMember& sm = members[mi];
    OOSP_REQUIRE(sm.query != nullptr, "SharedScanGroup: null query");
    const CompiledQuery& q = *sm.query;
    // Pure-positive means pattern step index == positive ordinal, which
    // the binding/bindings indexing below relies on.
    OOSP_CHECK(q.positive_steps().size() == q.num_steps(),
               "SharedScanGroup: negated steps cannot share a scan");
    Member m;
    m.id = sm.id;
    m.query = std::move(sm.query);
    window_ = std::max(window_, q.window());
    const std::size_t n = q.num_steps();
    m.stack_of_ordinal.resize(n);
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t ti = type_index(q.step(k).type);
      OOSP_CHECK(ti != CompiledStep::npos,
                 "SharedScanGroup: plan is missing a member's type");
      m.stack_of_ordinal[k] = ti;
      anchors_[ti].push_back(Anchor{mi, static_cast<std::uint32_t>(k)});
      auto& audience = members_of_type_[ti];
      if (audience.empty() || audience.back() != mi) audience.push_back(mi);
    }
    // One predicate schedule per anchor ordinal, binding order
    // a, a−1, …, 0, a+1, …, n−1 — identical to OooEngine's construction.
    m.anchored_schedule.resize(n);
    for (std::size_t a = 0; a < n; ++a) {
      std::vector<std::size_t> order;
      order.reserve(n);
      for (std::size_t k = a + 1; k-- > 0;) order.push_back(k);
      for (std::size_t k = a + 1; k < n; ++k) order.push_back(k);
      m.anchored_schedule[a] = build_predicate_schedule(q, order);
    }
    m.bindings.assign(n, nullptr);
    members_.push_back(std::move(m));
  }
  if (!partitioned_) root_ = make_shard();
}

SharedScanGroup::Shard SharedScanGroup::make_shard() const {
  Shard sh;
  sh.stacks.resize(types_.size());
  return sh;
}

SharedScanGroup::Shard& SharedScanGroup::shard_for(const Value& key) {
  if (!partitioned_) return root_;
  auto it = shards_.find(key);
  if (it == shards_.end()) it = shards_.emplace(key, make_shard()).first;
  return it->second;
}

void SharedScanGroup::on_event(const Event& e) {
  const Event* one = &e;
  on_batch(std::span<const Event* const>(&one, 1));
}

void SharedScanGroup::on_batch(std::span<const Event* const> batch) {
  if (batch.empty()) return;
  started_ = true;

  // Phase A — arrival order, ONCE for the whole group: admission, clock
  // observation and the contract-violation policy run exactly as one
  // OooEngine's would, with the arrival counters replicated to every
  // member the event is relevant to (each member engine would have seen
  // it). Lateness/violations are judged against the group clock (the
  // union of member-relevant types), which advances at least as fast as
  // any member's own clock — a monotone-conservative accounting.
  batch_admitted_.clear();
  for (const Event* pe : batch) {
    const Event& e = *pe;
    const std::size_t ti = type_index(e.type);
    if (ti == CompiledStep::npos) continue;  // runner routes only relevant types
    const auto& audience = members_of_type_[ti];
    for (const std::uint32_t mi : audience) ++members_[mi].stats.events_seen;
    EngineObs::inc(obs_.events, audience.size());
    if (!admission_.admit(e)) continue;
    const Timestamp lateness = clock_.observe(e);
    if (lateness > 0) {
      for (const std::uint32_t mi : audience) ++members_[mi].stats.late_events;
      EngineObs::inc(obs_.late, audience.size());
    }
    seal_watermark_ = std::max(seal_watermark_, clock_.seal_point());
    if (e.ts <= seal_watermark_) {
      for (const std::uint32_t mi : audience)
        ++members_[mi].stats.contract_violations;
      EngineObs::inc(obs_.violations, audience.size());
      if (!admission_.admit_violation(e)) continue;
    }
    batch_admitted_.push_back(pe);
    if (options_.purge_period != 0 &&
        ++events_since_purge_ >= options_.purge_period) {
      events_since_purge_ = 0;
      // With no negation state a purge is observable only through the
      // positive stacks, so a deeper pass subsumes earlier ones — record
      // just the last crossing (what OooEngine's subsumed-pass collapsing
      // does for a pure-positive query, keeping purge_passes comparable).
      batch_purge_due_ = true;
      batch_purge_mark_ = seal_watermark_;
    }
  }

  // Phase B — canonical intra-batch order (see OooEngine::on_batch: the
  // match set is invariant under insertion order of a fixed multiset).
  std::sort(batch_admitted_.begin(), batch_admitted_.end(),
            [](const Event* a, const Event* b) { return TsIdLess{}(*a, *b); });

  // Phase C — insert ONCE into the shared per-type stack, then run each
  // member's anchored construction from the inserted instance.
  for (const Event* pe : batch_admitted_) {
    const Event& e = *pe;
    const std::size_t ti = type_index(e.type);
    for (const std::uint32_t mi : members_of_type_[ti])
      ++members_[mi].stats.events_relevant;
    const Value key = partitioned_ ? e.attr(type_slot_[e.type]) : Value{};
    Shard& shard = shard_for(key);
    const EventHandle h = arena_.alloc(e);
    const std::size_t idx = shard.stacks[ti].insert(e.ts, e.id, h);
    shared_stats_.note_instance_added();
    EngineObs::inc(mqo_obs_.shared_insertions);
    // No member inserts during construction, so the reference is stable
    // across the whole anchor sweep.
    const OooInstance& anchor = shard.stacks[ti][idx];
    for (const Anchor& a : anchors_[ti])
      construct_anchored(members_[a.member], shard, a.ordinal, anchor);
  }

  if (batch_purge_due_) {
    purge_pass(batch_purge_mark_);
    batch_purge_due_ = false;
  }
  shared_stats_.note_footprint(shared_stats_.footprint() +
                               admission_.quarantine_size());
  EngineObs::set(obs_.footprint,
                 static_cast<std::int64_t>(shared_stats_.footprint()));
  EngineObs::set(obs_.effective_slack, clock_.slack());
}

bool SharedScanGroup::bind_if_local_pass(Member& m, std::size_t ordinal,
                                         const Event& e) {
  m.bindings[ordinal] = &e;
  for (const std::size_t pi : m.query->step(ordinal).local_predicates) {
    ++m.stats.predicate_evals;
    if (!m.query->predicates()[pi].eval(m.bindings)) {
      m.bindings[ordinal] = nullptr;
      return false;
    }
  }
  return true;
}

void SharedScanGroup::construct_anchored(Member& m, Shard& shard,
                                         std::size_t anchor_ordinal,
                                         const OooInstance& anchor) {
  // A member engine filtered by step-local predicates at insert time; the
  // shared stack is unfiltered, so the anchor must pass them here before
  // this member constructs around it.
  if (!bind_if_local_pass(m, anchor_ordinal, arena_.get(anchor.handle))) return;
  ++m.stats.construction_visits;
  if (anchor_ordinal > 0) {
    left_phase(m, shard, anchor_ordinal - 1, anchor_ordinal, anchor);
  } else if (m.query->num_steps() > 1) {
    right_phase(m, shard, 1, anchor_ordinal);
  } else {
    complete_candidate(m);
  }
  m.bindings[anchor_ordinal] = nullptr;
}

void SharedScanGroup::left_phase(Member& m, Shard& shard, std::size_t ordinal,
                                 std::size_t anchor_ordinal,
                                 const OooInstance& successor) {
  SortedStack& stack = shard.stacks[m.stack_of_ordinal[ordinal]];
  const Timestamp anchor_ts = m.bindings[anchor_ordinal]->ts;
  const std::size_t ub = stack.count_ts_below(successor.ts);
  const std::size_t floor = stack.count_ts_below(anchor_ts - m.query->window());
  const std::size_t sched_pos = anchor_ordinal - ordinal;
  for (std::size_t v = ub; v-- > floor;) {
    const OooInstance& inst = stack[v];
    ++m.stats.construction_visits;
    if (!bind_if_local_pass(m, ordinal, arena_.get(inst.handle))) continue;
    bool ok = true;
    for (const std::size_t pi : m.anchored_schedule[anchor_ordinal][sched_pos]) {
      ++m.stats.predicate_evals;
      if (!m.query->predicates()[pi].eval(m.bindings)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      if (ordinal > 0) {
        left_phase(m, shard, ordinal - 1, anchor_ordinal, inst);
      } else if (anchor_ordinal + 1 < m.query->num_steps()) {
        right_phase(m, shard, anchor_ordinal + 1, anchor_ordinal);
      } else {
        complete_candidate(m);
      }
    }
  }
  m.bindings[ordinal] = nullptr;
}

void SharedScanGroup::right_phase(Member& m, Shard& shard, std::size_t ordinal,
                                  std::size_t anchor_ordinal) {
  SortedStack& stack = shard.stacks[m.stack_of_ordinal[ordinal]];
  const Timestamp prev_ts = m.bindings[ordinal - 1]->ts;
  const Timestamp ceiling = m.bindings[0]->ts + m.query->window();
  for (std::size_t v = stack.first_ts_above(prev_ts); v < stack.size(); ++v) {
    const OooInstance& inst = stack[v];
    if (inst.ts > ceiling) break;  // sorted: all further fail the window
    ++m.stats.construction_visits;
    if (!bind_if_local_pass(m, ordinal, arena_.get(inst.handle))) continue;
    bool ok = true;
    for (const std::size_t pi : m.anchored_schedule[anchor_ordinal][ordinal]) {
      ++m.stats.predicate_evals;
      if (!m.query->predicates()[pi].eval(m.bindings)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      if (ordinal + 1 < m.query->num_steps()) {
        right_phase(m, shard, ordinal + 1, anchor_ordinal);
      } else {
        complete_candidate(m);
      }
    }
  }
  m.bindings[ordinal] = nullptr;
}

void SharedScanGroup::complete_candidate(Member& m) {
  Match match;
  const std::size_t n = m.query->num_steps();
  match.events.reserve(n);
  for (std::size_t k = 0; k < n; ++k) match.events.push_back(*m.bindings[k]);
  match.detection_clock = clock_.now();
  ++m.stats.matches_emitted;
  if (obs_.matches != nullptr) {
    obs_.matches->inc();
    if (match.detection_clock != kMinTimestamp)
      obs_.latency_stream->observe_signed(match.detection_delay());
  }
  EngineObs::observe(obs_.latency_wall_us, 0);  // emitted within the arrival call
  sink_->on_match(m.id, std::move(match));
}

void SharedScanGroup::purge_pass(Timestamp horizon) {
  if (!clock_.started()) return;
  // Same horizon derivation as OooEngine::purge_pass, with the group
  // window W_max: positive state below watermark − W_max + 1 cannot join
  // any member's future match (any admitted future event sits above the
  // watermark, and no member window is wider than W_max).
  const Timestamp pos_threshold = horizon < kMinTimestamp + window_
                                      ? kMinTimestamp + 1
                                      : horizon - window_ + 1;
  ++shared_stats_.purge_passes;
  EngineObs::inc(obs_.purge_passes);
  if (partitioned_) {
    for (auto it = shards_.begin(); it != shards_.end();) {
      purge_shard(it->second, pos_threshold);
      const bool empty =
          std::all_of(it->second.stacks.begin(), it->second.stacks.end(),
                      [](const SortedStack& s) { return s.empty(); });
      it = empty ? shards_.erase(it) : std::next(it);
    }
  } else {
    purge_shard(root_, pos_threshold);
  }
}

void SharedScanGroup::purge_shard(Shard& shard, Timestamp pos_threshold) {
  for (SortedStack& st : shard.stacks) {
    const std::size_t removed = st.purge_before(pos_threshold, arena_);
    if (removed) {
      shared_stats_.note_instances_removed(removed);
      EngineObs::inc(obs_.purged, removed);
    }
  }
}

void SharedScanGroup::finish() { purge_pass(seal_watermark_); }

std::vector<Event> SharedScanGroup::drain_quarantine() {
  return admission_.drain_quarantine();
}

EngineStats SharedScanGroup::member_stats(std::size_t i) const {
  EngineStats s = members_.at(i).stats;
  if (i == 0) s += shared_stats_;
  s.effective_slack = clock_.slack();
  return s;
}

void SharedScanGroup::write_shard(CheckpointWriter& w, const Shard& sh) const {
  w.tag("gsh");
  w.u64(sh.stacks.size());
  for (const SortedStack& st : sh.stacks) {
    w.u64(st.size());
    for (std::size_t i = 0; i < st.size(); ++i) w.event(arena_.get(st[i].handle));
  }
}

SharedScanGroup::Shard SharedScanGroup::read_shard(CheckpointReader& r) {
  r.expect_tag("gsh");
  Shard sh = make_shard();
  if (r.count() != sh.stacks.size())
    throw CheckpointError("shared-scan checkpoint stack count disagrees with plan");
  for (SortedStack& st : sh.stacks) {
    const std::size_t n = r.count(8);
    std::vector<OooInstance> items;
    items.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const Event e = r.event();
      items.push_back(OooInstance{e.ts, e.id, arena_.alloc(e), 0});
    }
    st.set_items(std::move(items));
  }
  return sh;
}

void SharedScanGroup::snapshot(CheckpointWriter& w) const {
  w.tag("mqg");
  w.u64(members_.size());
  for (const Member& m : members_) w.str(m.query->text());
  w.stats(shared_stats_);
  for (const Member& m : members_) w.stats(m.stats);
  write_clock(w, clock_);
  write_admission(w, admission_);
  w.i64(seal_watermark_);
  w.u64(events_since_purge_);
  w.boolean(partitioned_);
  if (partitioned_) {
    std::vector<const std::pair<const Value, Shard>*> entries;
    entries.reserve(shards_.size());
    for (const auto& kv : shards_) entries.push_back(&kv);
    std::sort(entries.begin(), entries.end(), [](const auto* a, const auto* b) {
      return a->first.compare(b->first) < 0;
    });
    w.u64(entries.size());
    for (const auto* kv : entries) {
      w.value(kv->first);
      write_shard(w, kv->second);
    }
  } else {
    write_shard(w, root_);
  }
}

void SharedScanGroup::restore(CheckpointReader& r) {
  OOSP_REQUIRE(!started_, "SharedScanGroup::restore after events were processed");
  r.expect_tag("mqg");
  if (r.count() != members_.size())
    throw CheckpointError("shared-scan checkpoint member count disagrees with plan");
  for (const Member& m : members_) {
    if (r.str() != m.query->text())
      throw CheckpointError("shared-scan checkpoint query drift");
  }
  shared_stats_ = r.stats();
  for (Member& m : members_) m.stats = r.stats();
  read_clock(r, clock_);
  read_admission(r, admission_);
  seal_watermark_ = r.i64();
  events_since_purge_ = static_cast<std::size_t>(r.u64());
  if (r.boolean() != partitioned_)
    throw CheckpointError("shared-scan checkpoint partitioning disagrees with plan");
  arena_.clear();
  shards_.clear();
  if (partitioned_) {
    const std::size_t n = r.count();
    shards_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      Value key = r.value();
      Shard sh = read_shard(r);
      shards_.emplace(std::move(key), std::move(sh));
    }
  } else {
    root_ = read_shard(r);
  }
  started_ = clock_.started();
}

}  // namespace oosp
