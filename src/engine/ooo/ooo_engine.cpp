#include "engine/ooo/ooo_engine.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "engine/core/schedule.hpp"
#include "runtime/checkpoint.hpp"

namespace oosp {

OooEngine::OooEngine(EngineContext ctx)
    : PatternEngine(std::move(ctx)),
      clock_(options_.slack),
      estimator_(options_.slack_estimator, options_.slack) {
  OOSP_REQUIRE(options_.slack >= 0, "slack must be non-negative");
  const CompiledQuery& query = query_;
  ordinal_of_step_.assign(query.num_steps(), CompiledStep::npos);
  for (std::size_t s = 0; s < query.num_steps(); ++s) {
    if (query.step(s).negated) {
      ordinal_of_step_[s] = step_of_negated_.size();
      step_of_negated_.push_back(s);
    } else {
      ordinal_of_step_[s] = step_of_positive_.size();
      step_of_positive_.push_back(s);
    }
  }
  // One predicate schedule per anchor ordinal: binding order
  // a, a−1, …, 0, a+1, …, n−1 (as pattern step indices).
  const std::size_t n = step_of_positive_.size();
  anchored_schedule_.resize(n);
  for (std::size_t a = 0; a < n; ++a) {
    std::vector<std::size_t> order;
    order.reserve(n);
    for (std::size_t k = a + 1; k-- > 0;) order.push_back(step_of_positive_[k]);
    for (std::size_t k = a + 1; k < n; ++k) order.push_back(step_of_positive_[k]);
    anchored_schedule_[a] = build_predicate_schedule(query, order);
  }
  bindings_.assign(query.num_steps(), nullptr);
  single_.assign(query.num_steps(), nullptr);

  neg_check_predicates_.resize(step_of_negated_.size());
  for (std::size_t i = 0; i < step_of_negated_.size(); ++i) {
    for (std::size_t pi = 0; pi < query.predicates().size(); ++pi) {
      const CompiledPredicate& p = query.predicates()[pi];
      if (p.references(step_of_negated_[i]) && p.steps().size() > 1)
        neg_check_predicates_[i].push_back(pi);
    }
  }

  partitioned_ = options_.partition_by_key && query.partitionable() &&
                 std::none_of(query.partition_slots().begin(), query.partition_slots().end(),
                              [](std::size_t s) { return s == CompiledStep::npos; });
  if (!partitioned_) root_ = make_shard();
}

OooEngine::Shard OooEngine::make_shard() const {
  Shard sh;
  sh.stacks.resize(step_of_positive_.size());
  sh.negatives.reserve(step_of_negated_.size());
  for (const std::size_t step : step_of_negated_) sh.negatives.emplace_back(query_, step);
  return sh;
}

OooEngine::Shard& OooEngine::shard_for(const Value& key) {
  if (!partitioned_) return root_;
  auto it = shards_.find(key);
  if (it == shards_.end()) it = shards_.emplace(key, make_shard()).first;
  return it->second;
}

OooEngine::Shard* OooEngine::find_shard(const Value& key) {
  if (!partitioned_) return &root_;
  auto it = shards_.find(key);
  return it == shards_.end() ? nullptr : &it->second;
}

bool OooEngine::passes_local(std::size_t step, const Event& e) {
  single_[step] = &e;
  bool ok = true;
  for (const std::size_t pi : query_.step(step).local_predicates) {
    ++stats_.predicate_evals;
    if (!query_.predicates()[pi].eval(single_)) {
      ok = false;
      break;
    }
  }
  single_[step] = nullptr;
  return ok;
}

void OooEngine::maybe_grow_slack() {
  const Timestamp est = estimator_.estimate();
  if (est > clock_.slack()) {
    clock_.set_slack(est);
    ++stats_.slack_grows;
  }
}

void OooEngine::on_event(const Event& e) {
  const Event* one = &e;
  on_batch(std::span<const Event* const>(&one, 1));
}

void OooEngine::on_batch(std::span<const Event* const> batch) {
  if (batch.empty()) return;
  stats_.events_seen += batch.size();
  EngineObs::inc(obs_.events, batch.size());

  // Phase A — arrival order: admission, clock observation, adaptive
  // growth, and the contract-violation policy are taken per event exactly
  // as the per-event path would, so the admitted multiset is identical
  // for any batching of the same arrival sequence.
  batch_admitted_.clear();
  for (const Event* pe : batch) {
    const Event& e = *pe;
    if (!admission_.admit(e)) continue;
    const Timestamp lateness = clock_.observe(e);
    if (lateness > 0) {
      ++stats_.late_events;
      EngineObs::inc(obs_.late);
    }
    if (options_.adaptive_slack) {
      estimator_.observe(lateness);
      maybe_grow_slack();
    }
    seal_watermark_ = std::max(seal_watermark_, clock_.seal_point());
    if (e.ts <= seal_watermark_) {
      // The effective contract is broken: seal/purge decisions at or
      // above this timestamp are already final. LatePolicy decides its
      // fate.
      ++stats_.contract_violations;
      EngineObs::inc(obs_.violations);
      if (!admission_.admit_violation(e)) continue;
    }
    batch_admitted_.push_back(AdmittedEvent{pe, seal_watermark_});
    // Purge cadence is observable state: resolution consults the
    // negation buffers, so WHICH watermark a purge ran at changes what a
    // later seal sees. Count exactly the events the per-event path
    // counted (admitted, including policy-admitted violations) and
    // record the watermark in effect at the crossing; the batch tail
    // replays the passes in order. Slack shrinks belong to the cadence
    // point too, so the recorded horizon matches per-event behaviour.
    if (options_.purge_period != 0 &&
        ++events_since_purge_ >= options_.purge_period) {
      events_since_purge_ = 0;
      apply_adaptive_shrink();
      batch_purge_marks_.push_back(seal_watermark_);
    }
  }

  // Phase B — canonical intra-batch order. Construction anchors a match
  // at its last-inserted constituent; the match set is invariant under
  // the insertion order of a fixed event multiset, so sorting changes
  // nothing semantically while making the splice pattern append-heavy
  // and the staged RIP bump lists ascending.
  std::sort(batch_admitted_.begin(), batch_admitted_.end(),
            [](const AdmittedEvent& a, const AdmittedEvent& b) {
              return TsIdLess{}(*a.e, *b.e);
            });

  // Phase C — splice and construct.
  for (const AdmittedEvent& ae : batch_admitted_) {
    const Event& e = *ae.e;
    arrival_watermark_ = ae.wm;
    const auto& steps = query_.steps_for_type(e.type);
    if (!steps.empty()) ++stats_.events_relevant;
    EventHandle h = kNullEventHandle;  // allocated on first accepting step
    for (const std::size_t step : steps) {
      if (!passes_local(step, e)) continue;
      const Value key =
          partitioned_ ? e.attr(query_.partition_slots()[step]) : Value{};
      Shard& shard = shard_for(key);
      if (h == kNullEventHandle) {
        h = arena_.alloc(e);
      } else {
        arena_.retain(h);
      }
      if (query_.step(step).negated) {
        shard.negatives[ordinal_of_step_[step]].insert(e.ts, e.id, h);
        stats_.note_buffered(1);
        if (options_.aggressive_negation) handle_late_negative(key, e, step);
      } else {
        insert_positive(shard, key, e, h, step);
      }
    }
  }
  flush_all_rips();

  // Seal/purge replay. Deferring sealing itself is sound: an interval an
  // earlier event's watermark sealed cannot gain an in-contract negative
  // from a later event (its ts would exceed the watermark). But a match
  // that sealed BETWEEN two purge passes must be resolved against the
  // buffer state between them — purging first with a later watermark
  // could drop a violating negative the per-event path still saw.
  // Replaying "resolve up to the mark, then purge at the mark" for each
  // cadence crossing Phase A recorded reproduces the per-event
  // interleaving exactly; in-contract events inserted later in the batch
  // sit above every recorded horizon and perturb neither step.
  // A pass at mark m is observable only through resolutions that occur
  // after it and before the next pass — i.e. entries due at a watermark
  // <= the next mark. With nothing due in that gap, the next pass (a
  // deeper horizon; purge state depends only on inserts and the deepest
  // threshold applied) subsumes this one, so skip it. The final mark
  // always runs: it is the purge state the next batch starts from.
  const auto next_due = [this]() -> Timestamp {
    Timestamp t = kMaxTimestamp;
    if (!pending_.empty()) t = std::min(t, pending_.top().seal_ts);
    if (!unsealed_emitted_.empty())
      t = std::min(t, unsealed_emitted_.front().seal_ts);
    return t;
  };
  for (std::size_t i = 0; i < batch_purge_marks_.size(); ++i) {
    const bool last = i + 1 == batch_purge_marks_.size();
    if (!last && next_due() - 1 > batch_purge_marks_[i + 1]) continue;
    process_pending_up_to(batch_purge_marks_[i]);
    purge_pass(batch_purge_marks_[i]);
  }
  batch_purge_marks_.clear();
  process_pending();
  stats_.note_footprint(stats_.footprint() + admission_.quarantine_size());
  EngineObs::set(obs_.footprint, static_cast<std::int64_t>(stats_.footprint()));
  EngineObs::set(obs_.effective_slack, clock_.slack());
}

EngineStats OooEngine::stats_snapshot() const {
  EngineStats s = stats_;
  s.effective_slack = clock_.slack();
  return s;
}

void OooEngine::stage_rip_bump(Shard& shard, std::size_t stack, Timestamp ts) {
  if (shard.pending_bumps.empty()) shard.pending_bumps.resize(shard.stacks.size());
  shard.pending_bumps[stack].push_back(ts);
  if (!shard.rip_dirty) {
    shard.rip_dirty = true;
    rip_dirty_shards_.push_back(&shard);
  }
}

void OooEngine::flush_stack_rips(Shard& shard, std::size_t stack) {
  if (shard.pending_bumps.empty()) return;
  auto& pend = shard.pending_bumps[stack];
  if (pend.empty()) return;
  shard.stacks[stack].bump_rips_batch(pend);
  pend.clear();
}

void OooEngine::flush_all_rips() {
  for (Shard* sh : rip_dirty_shards_) {
    for (std::size_t s = 1; s < sh->stacks.size(); ++s) flush_stack_rips(*sh, s);
    sh->rip_dirty = false;
  }
  rip_dirty_shards_.clear();
}

void OooEngine::insert_positive(Shard& shard, const Value& key, const Event& e,
                                EventHandle handle, std::size_t step) {
  const std::size_t a = ordinal_of_step_[step];
  SortedStack& stack = shard.stacks[a];
  // Settle bumps targeting this stack first: they belong to inserts that
  // preceded e, and e's own fresh rip must not be double-counted by a
  // later flush.
  if (options_.cache_rip && a > 0) flush_stack_rips(shard, a);
  const std::size_t idx = stack.insert(e.ts, e.id, handle);
  stats_.note_instance_added();
  trace_span(a == 0 ? TraceKind::kStart : TraceKind::kStep, e.ts, clock_.now(),
             nullptr, &e);
  if (options_.cache_rip) {
    stack[idx].rip = a == 0 ? 0 : shard.stacks[a - 1].count_ts_below(e.ts);
    if (a + 1 < shard.stacks.size()) stage_rip_bump(shard, a + 1, e.ts);
    // The left phase descends through stacks a−1…1 reading cached rips;
    // settle those before constructing. (The anchor's own rip is fresh,
    // and the right phase never reads rips.)
    for (std::size_t s = 1; s < a; ++s) flush_stack_rips(shard, s);
  }
  construct_anchored(shard, key, a, idx);
}

void OooEngine::construct_anchored(Shard& shard, const Value& key,
                                   std::size_t anchor_ordinal, std::size_t anchor_index) {
  const OooInstance& anchor = shard.stacks[anchor_ordinal][anchor_index];
  const std::size_t anchor_step = step_of_positive_[anchor_ordinal];
  bindings_[anchor_step] = &arena_.get(anchor.handle);
  ++stats_.construction_visits;
  // Multi-step predicates are never ready at position 0, so descend
  // straight away.
  if (anchor_ordinal > 0) {
    left_phase(shard, key, anchor_ordinal - 1, anchor_ordinal, anchor);
  } else if (step_of_positive_.size() > 1) {
    right_phase(shard, key, 1, anchor_ordinal);
  } else {
    complete_candidate(shard, key, anchor_ordinal);
  }
  bindings_[anchor_step] = nullptr;
}

void OooEngine::left_phase(Shard& shard, const Value& key, std::size_t ordinal,
                           std::size_t anchor_ordinal, const OooInstance& successor) {
  SortedStack& stack = shard.stacks[ordinal];
  const std::size_t step = step_of_positive_[ordinal];
  const Timestamp anchor_ts = bindings_[step_of_positive_[anchor_ordinal]]->ts;
  // Predecessor range: everything with ts strictly below the successor's,
  // loosely floored by the window anchored at the anchor (the eventual
  // last binding is >= anchor_ts, so nothing below anchor_ts − W can be
  // the first element of a valid match; the exact window check happens in
  // the right phase against the actual first binding).
  const std::size_t ub = options_.cache_rip
                             ? successor.rip
                             : stack.count_ts_below(successor.ts);
  const std::size_t floor = stack.count_ts_below(anchor_ts - query_.window());
  const std::size_t sched_pos = anchor_ordinal - ordinal;
  for (std::size_t v = ub; v-- > floor;) {
    const OooInstance& inst = stack[v];
    ++stats_.construction_visits;
    bindings_[step] = &arena_.get(inst.handle);
    bool ok = true;
    for (const std::size_t pi : anchored_schedule_[anchor_ordinal][sched_pos]) {
      ++stats_.predicate_evals;
      if (!query_.predicates()[pi].eval(bindings_)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      if (ordinal > 0) {
        left_phase(shard, key, ordinal - 1, anchor_ordinal, inst);
      } else if (anchor_ordinal + 1 < step_of_positive_.size()) {
        right_phase(shard, key, anchor_ordinal + 1, anchor_ordinal);
      } else {
        complete_candidate(shard, key, anchor_ordinal);
      }
    }
  }
  bindings_[step] = nullptr;
}

void OooEngine::right_phase(Shard& shard, const Value& key, std::size_t ordinal,
                            std::size_t anchor_ordinal) {
  SortedStack& stack = shard.stacks[ordinal];
  const std::size_t step = step_of_positive_[ordinal];
  const Timestamp prev_ts = bindings_[step_of_positive_[ordinal - 1]]->ts;
  const Timestamp first_ts = bindings_[step_of_positive_[0]]->ts;
  const Timestamp ceiling = first_ts + query_.window();
  for (std::size_t v = stack.first_ts_above(prev_ts); v < stack.size(); ++v) {
    const OooInstance& inst = stack[v];
    if (inst.ts > ceiling) break;  // sorted: all further fail the window
    ++stats_.construction_visits;
    bindings_[step] = &arena_.get(inst.handle);
    bool ok = true;
    for (const std::size_t pi : anchored_schedule_[anchor_ordinal][ordinal]) {
      ++stats_.predicate_evals;
      if (!query_.predicates()[pi].eval(bindings_)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      if (ordinal + 1 < step_of_positive_.size()) {
        right_phase(shard, key, ordinal + 1, anchor_ordinal);
      } else {
        complete_candidate(shard, key, anchor_ordinal);
      }
    }
  }
  bindings_[step] = nullptr;
}

void OooEngine::complete_candidate(Shard& shard, const Value& key,
                                   std::size_t /*anchor_ordinal*/) {
  std::vector<NegCheck> checks;
  checks.reserve(step_of_negated_.size());
  Timestamp seal_ts = kMinTimestamp;
  for (std::size_t i = 0; i < step_of_negated_.size(); ++i) {
    const CompiledStep& s = query_.step(step_of_negated_[i]);
    const Timestamp lo = bindings_[s.prev_positive]->ts;
    const Timestamp hi = bindings_[s.next_positive]->ts;
    checks.push_back(NegCheck{i, lo, hi});
    seal_ts = std::max(seal_ts, hi);
  }
  if (!checks.empty() && violated_now(shard, checks, bindings_)) return;

  Match m;
  m.events.reserve(step_of_positive_.size());
  for (const std::size_t p : step_of_positive_) m.events.push_back(*bindings_[p]);

  if (checks.empty() || sealed_at_arrival(seal_ts)) {
    m.detection_clock = clock_.now();
    EngineObs::observe(obs_.latency_wall_us, 0);  // emitted within the arrival call
    emit(std::move(m));
    return;
  }
  if (options_.aggressive_negation) {
    // Optimistic emission: report now, remember the match while it is
    // still revocable so a late negative can retract it. Keep the list
    // ordered by seal_ts (insert after equal keys — stable).
    m.detection_clock = clock_.now();
    const auto it = std::upper_bound(
        unsealed_emitted_.begin(), unsealed_emitted_.end(), seal_ts,
        [](Timestamp t, const PendingMatch& pm) { return t < pm.seal_ts; });
    unsealed_emitted_.insert(it, PendingMatch{m, std::move(checks), seal_ts, key});
    stats_.note_pending_added();
    EngineObs::observe(obs_.latency_wall_us, 0);
    emit(std::move(m));
    return;
  }
  PendingMatch pm{std::move(m), std::move(checks), seal_ts, key};
  if (obs_.enabled()) pm.held_since = std::chrono::steady_clock::now();
  pending_.push(std::move(pm));
  stats_.note_pending_added();
}

void OooEngine::handle_late_negative(const Value& key, const Event& e,
                                     std::size_t step) {
  const std::size_t ordinal = ordinal_of_step_[step];
  // A victim needs e.ts strictly inside some interval (lo, hi), and
  // hi <= seal_ts, so only entries with seal_ts > e.ts qualify — the
  // ordered list makes that a suffix.
  auto it = std::upper_bound(
      unsealed_emitted_.begin(), unsealed_emitted_.end(), e.ts,
      [](Timestamp t, const PendingMatch& pm) { return t < pm.seal_ts; });
  while (it != unsealed_emitted_.end()) {
    PendingMatch& pm = *it;
    bool retract = false;
    if (!partitioned_ || pm.shard_key == key) {
      for (const NegCheck& c : pm.checks) {
        if (c.ordinal != ordinal || e.ts <= c.lo || e.ts >= c.hi) continue;
        std::vector<const Event*> bindings(query_.num_steps(), nullptr);
        for (std::size_t k = 0; k < step_of_positive_.size(); ++k)
          bindings[step_of_positive_[k]] = &pm.match.events[k];
        bindings[step] = &e;
        retract = true;
        for (const std::size_t pi : neg_check_predicates_[ordinal]) {
          ++stats_.predicate_evals;
          if (!query_.predicates()[pi].eval(bindings)) {
            retract = false;
            break;
          }
        }
        if (retract) break;
      }
    }
    if (retract) {
      trace_span(TraceKind::kRetract, pm.match.last_ts(), clock_.now(), &pm.match, &e);
      sink_.on_retract(pm.match);
      ++stats_.matches_retracted;
      EngineObs::inc(obs_.retractions);
      --stats_.pending_matches;
      it = unsealed_emitted_.erase(it);
    } else {
      ++it;
    }
  }
}

bool OooEngine::violated_now(Shard& shard, const std::vector<NegCheck>& checks,
                             std::span<const Event*> bindings) {
  for (const NegCheck& c : checks) {
    if (shard.negatives[c.ordinal].violates(arena_, c.lo, c.hi, bindings,
                                            stats_.predicate_evals))
      return true;
  }
  return false;
}

void OooEngine::process_pending() { process_pending_up_to(seal_watermark_); }

void OooEngine::process_pending_up_to(Timestamp watermark) {
  // Same sealing rule as sealed(), evaluated against a possibly earlier
  // watermark: replaying a mid-batch cadence point must not resolve
  // matches that per-event would still have been pending at that moment.
  const auto sealed_at = [watermark](Timestamp interval_end) {
    return watermark >= interval_end - 1;
  };
  while (!pending_.empty() && clock_.started() &&
         sealed_at(pending_.top().seal_ts)) {
    PendingMatch pm = pending_.top();
    pending_.pop();
    --stats_.pending_matches;
    resolve_pending(std::move(pm));
  }
  if (!unsealed_emitted_.empty() && clock_.started()) {
    // Sealed entries are final — no retraction can reach them anymore.
    // sealed_at() is monotone in seal_ts, so they form a prefix of the
    // ordered list: pop it instead of sweeping everything.
    std::size_t removed = 0;
    while (!unsealed_emitted_.empty() &&
           sealed_at(unsealed_emitted_.front().seal_ts)) {
      const PendingMatch& pm = unsealed_emitted_.front();
      trace_span(TraceKind::kSeal, pm.match.last_ts(), clock_.now(), &pm.match);
      unsealed_emitted_.pop_front();
      ++removed;
    }
    stats_.pending_matches -= removed;
    EngineObs::inc(obs_.seals, removed);
  }
}

void OooEngine::resolve_pending(PendingMatch&& pm) {
  trace_span(TraceKind::kSeal, pm.match.last_ts(), clock_.now(), &pm.match);
  EngineObs::inc(obs_.seals);
  Shard* shard = find_shard(pm.shard_key);
  if (shard != nullptr) {
    // Rebuild the positive bindings for negation-predicate evaluation.
    std::vector<const Event*> bindings(query_.num_steps(), nullptr);
    for (std::size_t k = 0; k < step_of_positive_.size(); ++k)
      bindings[step_of_positive_[k]] = &pm.match.events[k];
    if (violated_now(*shard, pm.checks, bindings)) {
      ++stats_.matches_cancelled;
      EngineObs::inc(obs_.cancels);
      trace_span(TraceKind::kCancel, pm.match.last_ts(), clock_.now(), &pm.match);
      return;
    }
  }
  if (obs_.latency_wall_us != nullptr) {
    const auto waited = std::chrono::steady_clock::now() - pm.held_since;
    obs_.latency_wall_us->observe_signed(
        std::chrono::duration_cast<std::chrono::microseconds>(waited).count());
  }
  pm.match.detection_clock = clock_.now();
  emit(std::move(pm.match));
}

void OooEngine::finish() {
  // End of stream: every interval is final.
  while (!pending_.empty()) {
    PendingMatch pm = pending_.top();
    pending_.pop();
    --stats_.pending_matches;
    resolve_pending(std::move(pm));
  }
  // Aggressive policy: unsealed emissions become final — already
  // delivered, nothing left to do beyond dropping the revocation state.
  stats_.pending_matches -= unsealed_emitted_.size();
  unsealed_emitted_.clear();
  apply_adaptive_shrink();
  purge_pass(seal_watermark_);
}

void OooEngine::apply_adaptive_shrink() {
  if (!options_.adaptive_slack || !clock_.started()) return;
  // A purge pass is the only point where the effective slack may SHRINK:
  // growing mid-stream is always safe (it merely defers future purges),
  // but shrinking advances the horizon, and doing that between purges
  // would let sealing race ahead of the state the estimator said was
  // still needed. The watermark keeps the resize monotone either way.
  const Timestamp est = estimator_.estimate();
  if (est < clock_.slack()) {
    clock_.set_slack(est);
    ++stats_.slack_shrinks;
  }
  seal_watermark_ = std::max(seal_watermark_, clock_.seal_point());
}

void OooEngine::purge_pass(Timestamp horizon) {
  if (!clock_.started()) return;
  // See DESIGN.md §3.3: any future admitted event has ts > seal
  // watermark, and all match elements fit in a window of width W, so
  // positive state below watermark − W + 1 is dead. Negatives are
  // consulted until the intervals that could contain them seal, which
  // happens by clock ≈ ts + W + K; the extra −1 absorbs the strictness
  // of interval bounds. (With a fixed K this is exactly the paper's
  // clock − K − W horizon; deriving it from the monotone watermark keeps
  // adaptive resizes safe — the horizon never moves backwards and never
  // overtakes a sealing decision.) `horizon` is the watermark at the
  // cadence crossing being replayed — the current one at finish().
  const Timestamp pos_threshold =
      horizon < kMinTimestamp + query_.window()
          ? kMinTimestamp + 1
          : horizon - query_.window() + 1;
  const Timestamp neg_threshold = pos_threshold - 1;
  ++stats_.purge_passes;
  EngineObs::inc(obs_.purge_passes);
  trace_span(TraceKind::kPurge, pos_threshold, clock_.now());
  if (partitioned_) {
    for (auto it = shards_.begin(); it != shards_.end();) {
      purge_shard(it->second, pos_threshold, neg_threshold);
      const bool empty =
          std::all_of(it->second.stacks.begin(), it->second.stacks.end(),
                      [](const SortedStack& s) { return s.empty(); }) &&
          std::all_of(it->second.negatives.begin(), it->second.negatives.end(),
                      [](const NegativeBuffer& b) { return b.size() == 0; });
      it = empty ? shards_.erase(it) : std::next(it);
    }
  } else {
    purge_shard(root_, pos_threshold, neg_threshold);
  }
}

void OooEngine::write_shard(CheckpointWriter& w, const Shard& sh) const {
  w.tag("shd");
  w.u64(sh.stacks.size());
  for (const SortedStack& st : sh.stacks) {
    w.u64(st.size());
    for (std::size_t i = 0; i < st.size(); ++i) {
      w.event(arena_.get(st[i].handle));
      w.u64(st[i].rip);
    }
  }
  w.u64(sh.negatives.size());
  for (const NegativeBuffer& nb : sh.negatives) write_negative_buffer(w, nb, arena_);
}

OooEngine::Shard OooEngine::read_shard(CheckpointReader& r) {
  r.expect_tag("shd");
  Shard sh = make_shard();
  if (r.count() != sh.stacks.size())
    throw CheckpointError("ooo checkpoint stack count disagrees with query");
  for (SortedStack& st : sh.stacks) {
    const std::size_t n = r.count(8);
    std::vector<OooInstance> items;
    items.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const Event e = r.event();
      const std::size_t rip = static_cast<std::size_t>(r.u64());
      items.push_back(OooInstance{e.ts, e.id, arena_.alloc(e), rip});
    }
    st.set_items(std::move(items));
  }
  if (r.count() != sh.negatives.size())
    throw CheckpointError("ooo checkpoint negation count disagrees with query");
  for (NegativeBuffer& nb : sh.negatives) read_negative_buffer(r, nb, arena_);
  return sh;
}

void OooEngine::write_pending(CheckpointWriter& w, const PendingMatch& pm) {
  w.tag("pnd");
  w.match(pm.match);
  w.u64(pm.checks.size());
  for (const NegCheck& c : pm.checks) {
    w.u64(c.ordinal);
    w.i64(c.lo);
    w.i64(c.hi);
  }
  w.i64(pm.seal_ts);
  w.value(pm.shard_key);
  // held_since is a wall-clock point; restore re-stamps it with now(), so
  // the sealing-wait histogram charges recovery wait to the new run.
}

OooEngine::PendingMatch OooEngine::read_pending(CheckpointReader& r) {
  r.expect_tag("pnd");
  PendingMatch pm;
  pm.match = r.match();
  const std::size_t n = r.count(8);
  pm.checks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    NegCheck c;
    c.ordinal = static_cast<std::size_t>(r.u64());
    c.lo = r.i64();
    c.hi = r.i64();
    pm.checks.push_back(c);
  }
  pm.seal_ts = r.i64();
  pm.shard_key = r.value();
  pm.held_since = std::chrono::steady_clock::now();
  return pm;
}

void OooEngine::snapshot(CheckpointWriter& w) const {
  write_engine_guard(w, name(), query_.text());
  w.stats(stats_);
  write_clock(w, clock_);
  write_estimator(w, estimator_);
  write_admission(w, admission_);
  w.i64(seal_watermark_);
  w.u64(events_since_purge_);
  w.boolean(partitioned_);
  w.boolean(options_.cache_rip);
  if (partitioned_) {
    std::vector<const std::pair<const Value, Shard>*> entries;
    entries.reserve(shards_.size());
    for (const auto& kv : shards_) entries.push_back(&kv);
    std::sort(entries.begin(), entries.end(), [](const auto* a, const auto* b) {
      return a->first.compare(b->first) < 0;
    });
    w.u64(entries.size());
    for (const auto* kv : entries) {
      w.value(kv->first);
      write_shard(w, kv->second);
    }
  } else {
    write_shard(w, root_);
  }
  // The pending heap's internal layout depends on insertion history;
  // serialize its contents canonically sorted so equal logical state
  // snapshots to equal bytes. Restore re-heapifies by pushing.
  auto heap = pending_;
  std::vector<PendingMatch> pend;
  pend.reserve(heap.size());
  while (!heap.empty()) {
    pend.push_back(heap.top());
    heap.pop();
  }
  std::sort(pend.begin(), pend.end(), [](const PendingMatch& a, const PendingMatch& b) {
    if (a.seal_ts != b.seal_ts) return a.seal_ts < b.seal_ts;
    return match_key(a.match) < match_key(b.match);
  });
  w.u64(pend.size());
  for (const PendingMatch& pm : pend) write_pending(w, pm);
  // unsealed_emitted_ is kept in deterministic (seal_ts, insertion)
  // order; preserve verbatim.
  w.u64(unsealed_emitted_.size());
  for (const PendingMatch& pm : unsealed_emitted_) write_pending(w, pm);
}

void OooEngine::restore(CheckpointReader& r) {
  read_engine_guard(r, name(), query_.text());
  stats_ = r.stats();
  read_clock(r, clock_);
  read_estimator(r, estimator_);
  read_admission(r, admission_);
  seal_watermark_ = r.i64();
  events_since_purge_ = static_cast<std::size_t>(r.u64());
  if (r.boolean() != partitioned_)
    throw CheckpointError("ooo checkpoint partitioning disagrees with options");
  if (r.boolean() != options_.cache_rip)
    throw CheckpointError("ooo checkpoint cache_rip disagrees with options");
  // Structures are rebuilt wholesale; every live handle dies with them.
  rip_dirty_shards_.clear();
  arena_.clear();
  shards_.clear();
  if (partitioned_) {
    const std::size_t n = r.count();
    shards_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      Value key = r.value();
      Shard sh = read_shard(r);
      shards_.emplace(std::move(key), std::move(sh));
    }
  } else {
    root_ = read_shard(r);
  }
  pending_ = {};
  const std::size_t n_pending = r.count();
  for (std::size_t i = 0; i < n_pending; ++i) pending_.push(read_pending(r));
  unsealed_emitted_.clear();
  const std::size_t n_unsealed = r.count();
  for (std::size_t i = 0; i < n_unsealed; ++i) unsealed_emitted_.push_back(read_pending(r));
}

void OooEngine::purge_shard(Shard& shard, Timestamp pos_threshold,
                            Timestamp neg_threshold) {
  std::size_t removed_prev = 0;
  for (std::size_t k = 0; k < shard.stacks.size(); ++k) {
    const std::size_t removed = shard.stacks[k].purge_before(pos_threshold, arena_);
    if (removed) {
      stats_.note_instances_removed(removed);
      EngineObs::inc(obs_.purged, removed);
    }
    // Fix survivors' RIPs after the previous stack shrank. Doing this
    // after this stack's own purge matters: a purged instance here may
    // have had ts below some purged predecessors and thus a smaller rip.
    if (options_.cache_rip && k > 0) shard.stacks[k].drop_rips(removed_prev);
    removed_prev = removed;
  }
  for (NegativeBuffer& nb : shard.negatives) {
    const std::size_t removed = nb.purge_before(neg_threshold, arena_);
    if (removed) {
      stats_.note_unbuffered(removed);
      EngineObs::inc(obs_.purged, removed);
    }
  }
}

}  // namespace oosp
