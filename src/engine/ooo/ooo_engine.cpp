#include "engine/ooo/ooo_engine.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "engine/core/schedule.hpp"
#include "runtime/checkpoint.hpp"

namespace oosp {

OooEngine::OooEngine(EngineContext ctx)
    : PatternEngine(std::move(ctx)),
      clock_(options_.slack),
      estimator_(options_.slack_estimator, options_.slack) {
  OOSP_REQUIRE(options_.slack >= 0, "slack must be non-negative");
  const CompiledQuery& query = query_;
  ordinal_of_step_.assign(query.num_steps(), CompiledStep::npos);
  for (std::size_t s = 0; s < query.num_steps(); ++s) {
    if (query.step(s).negated) {
      ordinal_of_step_[s] = step_of_negated_.size();
      step_of_negated_.push_back(s);
    } else {
      ordinal_of_step_[s] = step_of_positive_.size();
      step_of_positive_.push_back(s);
    }
  }
  // One predicate schedule per anchor ordinal: binding order
  // a, a−1, …, 0, a+1, …, n−1 (as pattern step indices).
  const std::size_t n = step_of_positive_.size();
  anchored_schedule_.resize(n);
  for (std::size_t a = 0; a < n; ++a) {
    std::vector<std::size_t> order;
    order.reserve(n);
    for (std::size_t k = a + 1; k-- > 0;) order.push_back(step_of_positive_[k]);
    for (std::size_t k = a + 1; k < n; ++k) order.push_back(step_of_positive_[k]);
    anchored_schedule_[a] = build_predicate_schedule(query, order);
  }
  bindings_.assign(query.num_steps(), nullptr);
  single_.assign(query.num_steps(), nullptr);

  neg_check_predicates_.resize(step_of_negated_.size());
  for (std::size_t i = 0; i < step_of_negated_.size(); ++i) {
    for (std::size_t pi = 0; pi < query.predicates().size(); ++pi) {
      const CompiledPredicate& p = query.predicates()[pi];
      if (p.references(step_of_negated_[i]) && p.steps().size() > 1)
        neg_check_predicates_[i].push_back(pi);
    }
  }

  partitioned_ = options_.partition_by_key && query.partitionable() &&
                 std::none_of(query.partition_slots().begin(), query.partition_slots().end(),
                              [](std::size_t s) { return s == CompiledStep::npos; });
  if (!partitioned_) root_ = make_shard();
}

OooEngine::Shard OooEngine::make_shard() const {
  Shard sh;
  sh.stacks.resize(step_of_positive_.size());
  sh.negatives.reserve(step_of_negated_.size());
  for (const std::size_t step : step_of_negated_) sh.negatives.emplace_back(query_, step);
  return sh;
}

OooEngine::Shard& OooEngine::shard_for(const Value& key) {
  if (!partitioned_) return root_;
  auto it = shards_.find(key);
  if (it == shards_.end()) it = shards_.emplace(key, make_shard()).first;
  return it->second;
}

OooEngine::Shard* OooEngine::find_shard(const Value& key) {
  if (!partitioned_) return &root_;
  auto it = shards_.find(key);
  return it == shards_.end() ? nullptr : &it->second;
}

bool OooEngine::passes_local(std::size_t step, const Event& e) {
  single_[step] = &e;
  bool ok = true;
  for (const std::size_t pi : query_.step(step).local_predicates) {
    ++stats_.predicate_evals;
    if (!query_.predicates()[pi].eval(single_)) {
      ok = false;
      break;
    }
  }
  single_[step] = nullptr;
  return ok;
}

void OooEngine::maybe_grow_slack() {
  const Timestamp est = estimator_.estimate();
  if (est > clock_.slack()) {
    clock_.set_slack(est);
    ++stats_.slack_grows;
  }
}

void OooEngine::on_event(const Event& e) {
  ++stats_.events_seen;
  EngineObs::inc(obs_.events);
  if (!admission_.admit(e)) return;
  const Timestamp lateness = clock_.observe(e);
  if (lateness > 0) {
    ++stats_.late_events;
    EngineObs::inc(obs_.late);
  }
  if (options_.adaptive_slack) {
    estimator_.observe(lateness);
    maybe_grow_slack();
  }
  seal_watermark_ = std::max(seal_watermark_, clock_.seal_point());
  if (e.ts <= seal_watermark_) {
    // The effective contract is broken: seal/purge decisions at or above
    // this timestamp are already final. LatePolicy decides its fate.
    ++stats_.contract_violations;
    EngineObs::inc(obs_.violations);
    if (!admission_.admit_violation(e)) {
      process_pending();
      stats_.note_footprint(stats_.footprint() + admission_.quarantine_size());
      return;
    }
  }
  for (const std::size_t step : query_.steps_for_type(e.type)) {
    if (!passes_local(step, e)) continue;
    const Value key =
        partitioned_ ? e.attr(query_.partition_slots()[step]) : Value{};
    Shard& shard = shard_for(key);
    if (query_.step(step).negated) {
      shard.negatives[ordinal_of_step_[step]].insert(e);
      stats_.note_buffered(1);
      if (options_.aggressive_negation) handle_late_negative(key, e, step);
    } else {
      insert_positive(shard, key, e, step);
    }
  }
  if (!query_.steps_for_type(e.type).empty()) ++stats_.events_relevant;
  process_pending();
  maybe_purge(false);
  stats_.note_footprint(stats_.footprint() + admission_.quarantine_size());
  EngineObs::set(obs_.footprint, static_cast<std::int64_t>(stats_.footprint()));
  EngineObs::set(obs_.effective_slack, clock_.slack());
}

EngineStats OooEngine::stats_snapshot() const {
  EngineStats s = stats_;
  s.effective_slack = clock_.slack();
  return s;
}

void OooEngine::insert_positive(Shard& shard, const Value& key, const Event& e,
                                std::size_t step) {
  const std::size_t a = ordinal_of_step_[step];
  SortedStack& stack = shard.stacks[a];
  const std::size_t idx = stack.insert(e);
  stats_.note_instance_added();
  trace_span(a == 0 ? TraceKind::kStart : TraceKind::kStep, e.ts, clock_.now(),
             nullptr, &e);
  if (options_.cache_rip) {
    stack[idx].rip = a == 0 ? 0 : shard.stacks[a - 1].count_ts_below(e.ts);
    if (a + 1 < shard.stacks.size()) {
      SortedStack& next = shard.stacks[a + 1];
      next.bump_rips_from(next.first_ts_above(e.ts), 1);
    }
  }
  construct_anchored(shard, key, a, idx);
}

void OooEngine::construct_anchored(Shard& shard, const Value& key,
                                   std::size_t anchor_ordinal, std::size_t anchor_index) {
  const OooInstance& anchor = shard.stacks[anchor_ordinal][anchor_index];
  const std::size_t anchor_step = step_of_positive_[anchor_ordinal];
  bindings_[anchor_step] = &anchor.event;
  ++stats_.construction_visits;
  // Multi-step predicates are never ready at position 0, so descend
  // straight away.
  if (anchor_ordinal > 0) {
    left_phase(shard, key, anchor_ordinal - 1, anchor_ordinal, anchor);
  } else if (step_of_positive_.size() > 1) {
    right_phase(shard, key, 1, anchor_ordinal);
  } else {
    complete_candidate(shard, key, anchor_ordinal);
  }
  bindings_[anchor_step] = nullptr;
}

void OooEngine::left_phase(Shard& shard, const Value& key, std::size_t ordinal,
                           std::size_t anchor_ordinal, const OooInstance& successor) {
  SortedStack& stack = shard.stacks[ordinal];
  const std::size_t step = step_of_positive_[ordinal];
  const Timestamp anchor_ts = bindings_[step_of_positive_[anchor_ordinal]]->ts;
  // Predecessor range: everything with ts strictly below the successor's,
  // loosely floored by the window anchored at the anchor (the eventual
  // last binding is >= anchor_ts, so nothing below anchor_ts − W can be
  // the first element of a valid match; the exact window check happens in
  // the right phase against the actual first binding).
  const std::size_t ub = options_.cache_rip
                             ? successor.rip
                             : stack.count_ts_below(successor.event.ts);
  const std::size_t floor = stack.count_ts_below(anchor_ts - query_.window());
  const std::size_t sched_pos = anchor_ordinal - ordinal;
  for (std::size_t v = ub; v-- > floor;) {
    const OooInstance& inst = stack[v];
    ++stats_.construction_visits;
    bindings_[step] = &inst.event;
    bool ok = true;
    for (const std::size_t pi : anchored_schedule_[anchor_ordinal][sched_pos]) {
      ++stats_.predicate_evals;
      if (!query_.predicates()[pi].eval(bindings_)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      if (ordinal > 0) {
        left_phase(shard, key, ordinal - 1, anchor_ordinal, inst);
      } else if (anchor_ordinal + 1 < step_of_positive_.size()) {
        right_phase(shard, key, anchor_ordinal + 1, anchor_ordinal);
      } else {
        complete_candidate(shard, key, anchor_ordinal);
      }
    }
  }
  bindings_[step] = nullptr;
}

void OooEngine::right_phase(Shard& shard, const Value& key, std::size_t ordinal,
                            std::size_t anchor_ordinal) {
  SortedStack& stack = shard.stacks[ordinal];
  const std::size_t step = step_of_positive_[ordinal];
  const Timestamp prev_ts = bindings_[step_of_positive_[ordinal - 1]]->ts;
  const Timestamp first_ts = bindings_[step_of_positive_[0]]->ts;
  const Timestamp ceiling = first_ts + query_.window();
  for (std::size_t v = stack.first_ts_above(prev_ts); v < stack.size(); ++v) {
    const OooInstance& inst = stack[v];
    if (inst.event.ts > ceiling) break;  // sorted: all further fail the window
    ++stats_.construction_visits;
    bindings_[step] = &inst.event;
    bool ok = true;
    for (const std::size_t pi : anchored_schedule_[anchor_ordinal][ordinal]) {
      ++stats_.predicate_evals;
      if (!query_.predicates()[pi].eval(bindings_)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      if (ordinal + 1 < step_of_positive_.size()) {
        right_phase(shard, key, ordinal + 1, anchor_ordinal);
      } else {
        complete_candidate(shard, key, anchor_ordinal);
      }
    }
  }
  bindings_[step] = nullptr;
}

void OooEngine::complete_candidate(Shard& shard, const Value& key,
                                   std::size_t /*anchor_ordinal*/) {
  std::vector<NegCheck> checks;
  checks.reserve(step_of_negated_.size());
  Timestamp seal_ts = kMinTimestamp;
  for (std::size_t i = 0; i < step_of_negated_.size(); ++i) {
    const CompiledStep& s = query_.step(step_of_negated_[i]);
    const Timestamp lo = bindings_[s.prev_positive]->ts;
    const Timestamp hi = bindings_[s.next_positive]->ts;
    checks.push_back(NegCheck{i, lo, hi});
    seal_ts = std::max(seal_ts, hi);
  }
  if (!checks.empty() && violated_now(shard, checks, bindings_)) return;

  Match m;
  m.events.reserve(step_of_positive_.size());
  for (const std::size_t p : step_of_positive_) m.events.push_back(*bindings_[p]);

  if (checks.empty() || sealed(seal_ts)) {
    m.detection_clock = clock_.now();
    EngineObs::observe(obs_.latency_wall_us, 0);  // emitted within the arrival call
    emit(std::move(m));
    return;
  }
  if (options_.aggressive_negation) {
    // Optimistic emission: report now, remember the match while it is
    // still revocable so a late negative can retract it.
    m.detection_clock = clock_.now();
    unsealed_emitted_.push_back(PendingMatch{m, std::move(checks), seal_ts, key});
    stats_.note_pending_added();
    EngineObs::observe(obs_.latency_wall_us, 0);
    emit(std::move(m));
    return;
  }
  PendingMatch pm{std::move(m), std::move(checks), seal_ts, key};
  if (obs_.enabled()) pm.held_since = std::chrono::steady_clock::now();
  pending_.push(std::move(pm));
  stats_.note_pending_added();
}

void OooEngine::handle_late_negative(const Value& key, const Event& e,
                                     std::size_t step) {
  const std::size_t ordinal = ordinal_of_step_[step];
  for (std::size_t i = 0; i < unsealed_emitted_.size();) {
    PendingMatch& pm = unsealed_emitted_[i];
    bool retract = false;
    if (!partitioned_ || pm.shard_key == key) {
      for (const NegCheck& c : pm.checks) {
        if (c.ordinal != ordinal || e.ts <= c.lo || e.ts >= c.hi) continue;
        std::vector<const Event*> bindings(query_.num_steps(), nullptr);
        for (std::size_t k = 0; k < step_of_positive_.size(); ++k)
          bindings[step_of_positive_[k]] = &pm.match.events[k];
        bindings[step] = &e;
        retract = true;
        for (const std::size_t pi : neg_check_predicates_[ordinal]) {
          ++stats_.predicate_evals;
          if (!query_.predicates()[pi].eval(bindings)) {
            retract = false;
            break;
          }
        }
        if (retract) break;
      }
    }
    if (retract) {
      trace_span(TraceKind::kRetract, pm.match.last_ts(), clock_.now(), &pm.match, &e);
      sink_.on_retract(unsealed_emitted_[i].match);
      ++stats_.matches_retracted;
      EngineObs::inc(obs_.retractions);
      --stats_.pending_matches;
      unsealed_emitted_[i] = std::move(unsealed_emitted_.back());
      unsealed_emitted_.pop_back();
    } else {
      ++i;
    }
  }
}

bool OooEngine::violated_now(Shard& shard, const std::vector<NegCheck>& checks,
                             std::span<const Event*> bindings) {
  for (const NegCheck& c : checks) {
    if (shard.negatives[c.ordinal].violates(c.lo, c.hi, bindings, stats_.predicate_evals))
      return true;
  }
  return false;
}

void OooEngine::process_pending() {
  while (!pending_.empty() && clock_.started() && sealed(pending_.top().seal_ts)) {
    PendingMatch pm = pending_.top();
    pending_.pop();
    --stats_.pending_matches;
    resolve_pending(std::move(pm));
  }
  if (!unsealed_emitted_.empty() && clock_.started()) {
    // Sealed entries are final — no retraction can reach them anymore.
    const auto removed = std::erase_if(unsealed_emitted_, [&](const PendingMatch& pm) {
      if (!sealed(pm.seal_ts)) return false;
      trace_span(TraceKind::kSeal, pm.match.last_ts(), clock_.now(), &pm.match);
      return true;
    });
    stats_.pending_matches -= removed;
    EngineObs::inc(obs_.seals, removed);
  }
}

void OooEngine::resolve_pending(PendingMatch&& pm) {
  trace_span(TraceKind::kSeal, pm.match.last_ts(), clock_.now(), &pm.match);
  EngineObs::inc(obs_.seals);
  Shard* shard = find_shard(pm.shard_key);
  if (shard != nullptr) {
    // Rebuild the positive bindings for negation-predicate evaluation.
    std::vector<const Event*> bindings(query_.num_steps(), nullptr);
    for (std::size_t k = 0; k < step_of_positive_.size(); ++k)
      bindings[step_of_positive_[k]] = &pm.match.events[k];
    if (violated_now(*shard, pm.checks, bindings)) {
      ++stats_.matches_cancelled;
      EngineObs::inc(obs_.cancels);
      trace_span(TraceKind::kCancel, pm.match.last_ts(), clock_.now(), &pm.match);
      return;
    }
  }
  if (obs_.latency_wall_us != nullptr) {
    const auto waited = std::chrono::steady_clock::now() - pm.held_since;
    obs_.latency_wall_us->observe_signed(
        std::chrono::duration_cast<std::chrono::microseconds>(waited).count());
  }
  pm.match.detection_clock = clock_.now();
  emit(std::move(pm.match));
}

void OooEngine::finish() {
  // End of stream: every interval is final.
  while (!pending_.empty()) {
    PendingMatch pm = pending_.top();
    pending_.pop();
    --stats_.pending_matches;
    resolve_pending(std::move(pm));
  }
  // Aggressive policy: unsealed emissions become final — already
  // delivered, nothing left to do beyond dropping the revocation state.
  stats_.pending_matches -= unsealed_emitted_.size();
  unsealed_emitted_.clear();
  maybe_purge(true);
}

void OooEngine::maybe_purge(bool force) {
  if (!force) {
    if (options_.purge_period == 0) return;
    if (++events_since_purge_ < options_.purge_period) return;
    events_since_purge_ = 0;
  }
  if (!clock_.started()) return;
  // A purge pass is the only point where the effective slack may SHRINK:
  // growing mid-stream is always safe (it merely defers future purges),
  // but shrinking advances the horizon, and doing that between purges
  // would let sealing race ahead of the state the estimator said was
  // still needed. The watermark keeps the resize monotone either way.
  if (options_.adaptive_slack) {
    const Timestamp est = estimator_.estimate();
    if (est < clock_.slack()) {
      clock_.set_slack(est);
      ++stats_.slack_shrinks;
    }
    seal_watermark_ = std::max(seal_watermark_, clock_.seal_point());
  }
  // See DESIGN.md §3.3: any future admitted event has ts > seal
  // watermark, and all match elements fit in a window of width W, so
  // positive state below watermark − W + 1 is dead. Negatives are
  // consulted until the intervals that could contain them seal, which
  // happens by clock ≈ ts + W + K; the extra −1 absorbs the strictness
  // of interval bounds. (With a fixed K this is exactly the paper's
  // clock − K − W horizon; deriving it from the monotone watermark keeps
  // adaptive resizes safe — the horizon never moves backwards and never
  // overtakes a sealing decision.)
  const Timestamp pos_threshold =
      seal_watermark_ < kMinTimestamp + query_.window()
          ? kMinTimestamp + 1
          : seal_watermark_ - query_.window() + 1;
  const Timestamp neg_threshold = pos_threshold - 1;
  ++stats_.purge_passes;
  EngineObs::inc(obs_.purge_passes);
  trace_span(TraceKind::kPurge, pos_threshold, clock_.now());
  if (partitioned_) {
    for (auto it = shards_.begin(); it != shards_.end();) {
      purge_shard(it->second, pos_threshold, neg_threshold);
      const bool empty =
          std::all_of(it->second.stacks.begin(), it->second.stacks.end(),
                      [](const SortedStack& s) { return s.empty(); }) &&
          std::all_of(it->second.negatives.begin(), it->second.negatives.end(),
                      [](const NegativeBuffer& b) { return b.size() == 0; });
      it = empty ? shards_.erase(it) : std::next(it);
    }
  } else {
    purge_shard(root_, pos_threshold, neg_threshold);
  }
}

void OooEngine::write_shard(CheckpointWriter& w, const Shard& sh) const {
  w.tag("shd");
  w.u64(sh.stacks.size());
  for (const SortedStack& st : sh.stacks) {
    w.u64(st.size());
    for (std::size_t i = 0; i < st.size(); ++i) {
      w.event(st[i].event);
      w.u64(st[i].rip);
    }
  }
  w.u64(sh.negatives.size());
  for (const NegativeBuffer& nb : sh.negatives) write_negative_buffer(w, nb);
}

OooEngine::Shard OooEngine::read_shard(CheckpointReader& r) const {
  r.expect_tag("shd");
  Shard sh = make_shard();
  if (r.count() != sh.stacks.size())
    throw CheckpointError("ooo checkpoint stack count disagrees with query");
  for (SortedStack& st : sh.stacks) {
    const std::size_t n = r.count(8);
    std::vector<OooInstance> items;
    items.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      Event e = r.event();
      const std::size_t rip = static_cast<std::size_t>(r.u64());
      items.push_back(OooInstance{std::move(e), rip});
    }
    st.set_items(std::move(items));
  }
  if (r.count() != sh.negatives.size())
    throw CheckpointError("ooo checkpoint negation count disagrees with query");
  for (NegativeBuffer& nb : sh.negatives) read_negative_buffer(r, nb);
  return sh;
}

void OooEngine::write_pending(CheckpointWriter& w, const PendingMatch& pm) {
  w.tag("pnd");
  w.match(pm.match);
  w.u64(pm.checks.size());
  for (const NegCheck& c : pm.checks) {
    w.u64(c.ordinal);
    w.i64(c.lo);
    w.i64(c.hi);
  }
  w.i64(pm.seal_ts);
  w.value(pm.shard_key);
  // held_since is a wall-clock point; restore re-stamps it with now(), so
  // the sealing-wait histogram charges recovery wait to the new run.
}

OooEngine::PendingMatch OooEngine::read_pending(CheckpointReader& r) {
  r.expect_tag("pnd");
  PendingMatch pm;
  pm.match = r.match();
  const std::size_t n = r.count(8);
  pm.checks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    NegCheck c;
    c.ordinal = static_cast<std::size_t>(r.u64());
    c.lo = r.i64();
    c.hi = r.i64();
    pm.checks.push_back(c);
  }
  pm.seal_ts = r.i64();
  pm.shard_key = r.value();
  pm.held_since = std::chrono::steady_clock::now();
  return pm;
}

void OooEngine::snapshot(CheckpointWriter& w) const {
  write_engine_guard(w, name(), query_.text());
  w.stats(stats_);
  write_clock(w, clock_);
  write_estimator(w, estimator_);
  write_admission(w, admission_);
  w.i64(seal_watermark_);
  w.u64(events_since_purge_);
  w.boolean(partitioned_);
  w.boolean(options_.cache_rip);
  if (partitioned_) {
    std::vector<const std::pair<const Value, Shard>*> entries;
    entries.reserve(shards_.size());
    for (const auto& kv : shards_) entries.push_back(&kv);
    std::sort(entries.begin(), entries.end(), [](const auto* a, const auto* b) {
      return a->first.compare(b->first) < 0;
    });
    w.u64(entries.size());
    for (const auto* kv : entries) {
      w.value(kv->first);
      write_shard(w, kv->second);
    }
  } else {
    write_shard(w, root_);
  }
  // The pending heap's internal layout depends on insertion history;
  // serialize its contents canonically sorted so equal logical state
  // snapshots to equal bytes. Restore re-heapifies by pushing.
  auto heap = pending_;
  std::vector<PendingMatch> pend;
  pend.reserve(heap.size());
  while (!heap.empty()) {
    pend.push_back(heap.top());
    heap.pop();
  }
  std::sort(pend.begin(), pend.end(), [](const PendingMatch& a, const PendingMatch& b) {
    if (a.seal_ts != b.seal_ts) return a.seal_ts < b.seal_ts;
    return match_key(a.match) < match_key(b.match);
  });
  w.u64(pend.size());
  for (const PendingMatch& pm : pend) write_pending(w, pm);
  // unsealed_emitted_ order is deterministic (single-threaded
  // swap-remove); preserve verbatim.
  w.u64(unsealed_emitted_.size());
  for (const PendingMatch& pm : unsealed_emitted_) write_pending(w, pm);
}

void OooEngine::restore(CheckpointReader& r) {
  read_engine_guard(r, name(), query_.text());
  stats_ = r.stats();
  read_clock(r, clock_);
  read_estimator(r, estimator_);
  read_admission(r, admission_);
  seal_watermark_ = r.i64();
  events_since_purge_ = static_cast<std::size_t>(r.u64());
  if (r.boolean() != partitioned_)
    throw CheckpointError("ooo checkpoint partitioning disagrees with options");
  if (r.boolean() != options_.cache_rip)
    throw CheckpointError("ooo checkpoint cache_rip disagrees with options");
  shards_.clear();
  if (partitioned_) {
    const std::size_t n = r.count();
    shards_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      Value key = r.value();
      Shard sh = read_shard(r);
      shards_.emplace(std::move(key), std::move(sh));
    }
  } else {
    root_ = read_shard(r);
  }
  pending_ = {};
  const std::size_t n_pending = r.count();
  for (std::size_t i = 0; i < n_pending; ++i) pending_.push(read_pending(r));
  unsealed_emitted_.clear();
  const std::size_t n_unsealed = r.count();
  unsealed_emitted_.reserve(n_unsealed);
  for (std::size_t i = 0; i < n_unsealed; ++i) unsealed_emitted_.push_back(read_pending(r));
}

void OooEngine::purge_shard(Shard& shard, Timestamp pos_threshold,
                            Timestamp neg_threshold) {
  std::size_t removed_prev = 0;
  for (std::size_t k = 0; k < shard.stacks.size(); ++k) {
    const std::size_t removed = shard.stacks[k].purge_before(pos_threshold);
    if (removed) {
      stats_.note_instances_removed(removed);
      EngineObs::inc(obs_.purged, removed);
    }
    // Fix survivors' RIPs after the previous stack shrank. Doing this
    // after this stack's own purge matters: a purged instance here may
    // have had ts below some purged predecessors and thus a smaller rip.
    if (options_.cache_rip && k > 0) shard.stacks[k].drop_rips(removed_prev);
    removed_prev = removed;
  }
  for (NegativeBuffer& nb : shard.negatives) {
    const std::size_t removed = nb.purge_before(neg_threshold);
    if (removed) {
      stats_.note_unbuffered(removed);
      EngineObs::inc(obs_.purged, removed);
    }
  }
}

}  // namespace oosp
