#include "engine/ooo/sorted_stack.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace oosp {

std::size_t SortedStack::insert(const Event& e) {
  if (items_.empty() || TsIdLess{}(items_.back().event, e)) {
    items_.push_back(OooInstance{e, 0});
    return items_.size() - 1;
  }
  const auto it = std::lower_bound(
      items_.begin(), items_.end(), e,
      [](const OooInstance& a, const Event& b) { return TsIdLess{}(a.event, b); });
  const auto idx = static_cast<std::size_t>(it - items_.begin());
  items_.insert(it, OooInstance{e, 0});
  return idx;
}

std::size_t SortedStack::count_ts_below(Timestamp t) const noexcept {
  const auto it = std::lower_bound(
      items_.begin(), items_.end(), t,
      [](const OooInstance& a, Timestamp ts) { return a.event.ts < ts; });
  return static_cast<std::size_t>(it - items_.begin());
}

std::size_t SortedStack::first_ts_above(Timestamp t) const noexcept {
  const auto it = std::upper_bound(
      items_.begin(), items_.end(), t,
      [](Timestamp ts, const OooInstance& a) { return ts < a.event.ts; });
  return static_cast<std::size_t>(it - items_.begin());
}

std::size_t SortedStack::purge_before(Timestamp threshold) {
  const std::size_t n = count_ts_below(threshold);
  items_.erase(items_.begin(), items_.begin() + static_cast<std::ptrdiff_t>(n));
  return n;
}

void SortedStack::bump_rips_from(std::size_t from, std::size_t delta) noexcept {
  for (std::size_t i = from; i < items_.size(); ++i) items_[i].rip += delta;
}

void SortedStack::drop_rips(std::size_t removed) noexcept {
  if (removed == 0) return;
  for (OooInstance& inst : items_) {
    OOSP_ASSERT(inst.rip >= removed);
    inst.rip -= removed;
  }
}

}  // namespace oosp
