#include "engine/ooo/sorted_stack.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace oosp {

namespace {

inline bool key_less(Timestamp ats, EventId aid, Timestamp bts, EventId bid) noexcept {
  return ats < bts || (ats == bts && aid < bid);
}

}  // namespace

std::size_t SortedStack::insert(Timestamp ts, EventId id, EventHandle handle) {
  if (items_.empty() || key_less(items_.back().ts, items_.back().id, ts, id)) {
    items_.push_back(OooInstance{ts, id, handle, 0});
    return items_.size() - 1;
  }
  const auto it = std::lower_bound(
      items_.begin(), items_.end(), OooInstance{ts, id, handle, 0},
      [](const OooInstance& a, const OooInstance& b) {
        return key_less(a.ts, a.id, b.ts, b.id);
      });
  const auto idx = static_cast<std::size_t>(it - items_.begin());
  items_.insert(it, OooInstance{ts, id, handle, 0});
  return idx;
}

std::size_t SortedStack::count_ts_below(Timestamp t) const noexcept {
  const auto it = std::lower_bound(
      items_.begin(), items_.end(), t,
      [](const OooInstance& a, Timestamp ts) { return a.ts < ts; });
  return static_cast<std::size_t>(it - items_.begin());
}

std::size_t SortedStack::first_ts_above(Timestamp t) const noexcept {
  const auto it = std::upper_bound(
      items_.begin(), items_.end(), t,
      [](Timestamp ts, const OooInstance& a) { return ts < a.ts; });
  return static_cast<std::size_t>(it - items_.begin());
}

std::size_t SortedStack::purge_before(Timestamp threshold, EventArena& arena) {
  const std::size_t n = count_ts_below(threshold);
  for (std::size_t i = 0; i < n; ++i) arena.release(items_[i].handle);
  items_.erase(items_.begin(), items_.begin() + static_cast<std::ptrdiff_t>(n));
  return n;
}

void SortedStack::bump_rips_from(std::size_t from, std::size_t delta) noexcept {
  for (std::size_t i = from; i < items_.size(); ++i) items_[i].rip += delta;
}

void SortedStack::bump_rips_batch(std::span<const Timestamp> sorted_ts) noexcept {
  if (sorted_ts.empty()) return;
  // Entries with ts <= sorted_ts.front() are unaffected; from there both
  // sequences are ascending, so a single merge pass assigns each entry
  // the count of inserted timestamps strictly below its ts.
  std::size_t j = 0;
  for (std::size_t i = first_ts_above(sorted_ts.front()); i < items_.size(); ++i) {
    while (j < sorted_ts.size() && sorted_ts[j] < items_[i].ts) ++j;
    items_[i].rip += j;
  }
}

void SortedStack::drop_rips(std::size_t removed) noexcept {
  if (removed == 0) return;
  for (OooInstance& inst : items_) {
    OOSP_ASSERT(inst.rip >= removed);
    inst.rip -= removed;
  }
}

}  // namespace oosp
