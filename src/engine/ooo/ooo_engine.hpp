// Native out-of-order engine — the paper's contribution.
//
// Processes the arrival stream directly, with no reorder buffer:
//
//  * Scan: each relevant event splices into the timestamp-ordered stack
//    of every step it satisfies (sorted_stack.hpp). Late events land in
//    the middle; in-order events append in O(1).
//
//  * Retroactive construction: a newly inserted event e at step i can
//    only create matches that CONTAIN e, so construction is anchored at
//    e — enumerate leftward (steps i−1…0, timestamps descending below
//    e.ts) then rightward (steps i+1…n−1, ascending, bounded by the
//    window anchored at the step-0 binding). Every new match is emitted
//    exactly once: at the insertion of its last-arriving constituent.
//    When the stream happens to be in order this degenerates to exactly
//    the classic trigger-driven leftward construction, so ordered input
//    pays (almost) nothing for out-of-order support.
//
//  * Negation sealing: a candidate match with negated steps is checked
//    against the negatives buffered so far and, if any of its negation
//    intervals could still admit a late negative (interval end not yet
//    K-sealed by the clock), parked in a pending heap and resolved at
//    the first clock advance that seals it. Pure-positive matches are
//    emitted immediately.
//
//  * K-slack purge: state with ts < clock − W − K can never join a new
//    match (any future event has ts ≥ clock − K, and a shared window of
//    width W cannot span both); purging runs every purge_period events.
//
//  * Slack-violation safety net: all seal/purge decisions are taken
//    against a MONOTONE watermark (the high-water mark of the clock's
//    seal point), so retuning K at runtime never rewinds a decision. An
//    event at or below the watermark broke the effective contract; the
//    configured LatePolicy decides whether it is admitted best-effort,
//    dropped, or quarantined for drain_quarantine(). With adaptive_slack
//    the effective K follows a windowed lateness quantile: growth applies
//    immediately (only delays future sealing/purging — always safe),
//    shrink waits for the next purge boundary.
//
// Options honoured: slack (K), purge_period, partition_by_key (hash
// partition all state by the query's equi-join key), cache_rip
// (incrementally maintained RIPs instead of per-construction binary
// search), late_policy + quarantine_capacity, adaptive_slack +
// slack_estimator, dedup_by_id, registry (schema validation).
#pragma once

#include <chrono>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "engine/core/admission.hpp"
#include "engine/core/engine.hpp"
#include "engine/core/negative_buffer.hpp"
#include "engine/ooo/sorted_stack.hpp"
#include "stream/clock.hpp"
#include "stream/slack_estimator.hpp"

namespace oosp {

class OooEngine final : public PatternEngine {
 public:
  explicit OooEngine(EngineContext ctx);

  void on_event(const Event& e) override;
  void finish() override;
  std::string name() const override {
    return options_.aggressive_negation ? "ooo-aggressive" : "ooo-native";
  }
  EngineStats stats_snapshot() const override;
  std::vector<Event> drain_quarantine() override {
    return admission_.drain_quarantine();
  }
  void snapshot(CheckpointWriter& w) const override;
  void restore(CheckpointReader& r) override;

 private:
  struct Shard {
    std::vector<SortedStack> stacks;        // per positive ordinal
    std::vector<NegativeBuffer> negatives;  // per negated ordinal
  };

  struct NegCheck {
    std::size_t ordinal;  // negated ordinal
    Timestamp lo, hi;     // open interval (lo, hi)
  };

  struct PendingMatch {
    Match match;
    std::vector<NegCheck> checks;
    Timestamp seal_ts;  // max interval end; final once clock >= seal_ts + K
    Value shard_key;    // meaningful only when partitioned
    // Wall clock at candidate completion; the wall-time detection-latency
    // histogram charges the sealing wait against it. Only captured when
    // metrics are enabled (a steady_clock read per HELD candidate, never
    // per event).
    std::chrono::steady_clock::time_point held_since{};
  };
  struct PendingLater {
    bool operator()(const PendingMatch& a, const PendingMatch& b) const noexcept {
      return a.seal_ts > b.seal_ts;
    }
  };

  Shard make_shard() const;
  Shard& shard_for(const Value& key);
  Shard* find_shard(const Value& key);
  void write_shard(CheckpointWriter& w, const Shard& sh) const;
  Shard read_shard(CheckpointReader& r) const;
  static void write_pending(CheckpointWriter& w, const PendingMatch& pm);
  static PendingMatch read_pending(CheckpointReader& r);

  bool passes_local(std::size_t step, const Event& e);
  void insert_positive(Shard& shard, const Value& key, const Event& e, std::size_t step);
  void construct_anchored(Shard& shard, const Value& key, std::size_t anchor_ordinal,
                          std::size_t anchor_index);
  void left_phase(Shard& shard, const Value& key, std::size_t ordinal,
                  std::size_t anchor_ordinal, const OooInstance& successor);
  void right_phase(Shard& shard, const Value& key, std::size_t ordinal,
                   std::size_t anchor_ordinal);
  void complete_candidate(Shard& shard, const Value& key, std::size_t anchor_ordinal);
  bool violated_now(Shard& shard, const std::vector<NegCheck>& checks,
                    std::span<const Event*> bindings);
  void process_pending();
  void resolve_pending(PendingMatch&& pm);
  // Aggressive policy: a late negative may invalidate an already-emitted,
  // not-yet-sealed match — find the victims and issue retractions.
  void handle_late_negative(const Value& key, const Event& e, std::size_t step);
  void maybe_purge(bool force);
  void purge_shard(Shard& shard, Timestamp pos_threshold, Timestamp neg_threshold);

  bool sealed(Timestamp interval_end) const noexcept {
    // No future event can fall strictly inside an interval ending at
    // `interval_end` once every timestamp <= interval_end − 1 is sealed.
    // Evaluated against the monotone watermark, not the instantaneous
    // seal point, so a later slack increase cannot un-seal anything.
    return seal_watermark_ >= interval_end - 1;
  }

  // Adaptive K: apply estimator growth (safe at any time); called per
  // event. Shrink is applied inside maybe_purge() only.
  void maybe_grow_slack();

  StreamClock clock_;
  SlackEstimator estimator_;
  AdmissionControl admission_{options_, stats_};
  // High-water mark of clock_.seal_point() over the run: every sealing
  // and purge decision ever taken used a horizon <= this. An arriving
  // event with ts <= seal_watermark_ violates the effective contract.
  Timestamp seal_watermark_ = kMinTimestamp;
  bool partitioned_ = false;
  std::vector<std::size_t> ordinal_of_step_;
  std::vector<std::size_t> step_of_positive_;
  std::vector<std::size_t> step_of_negated_;
  // anchored_schedule_[a][pos]: predicate ids ready at position pos of
  // the binding order (a, a−1, …, 0, a+1, …, n−1) — ordinals.
  std::vector<std::vector<std::vector<std::size_t>>> anchored_schedule_;
  std::vector<const Event*> bindings_;  // by pattern step index
  std::vector<const Event*> single_;
  std::size_t events_since_purge_ = 0;

  // Non-local predicates referencing each negated ordinal — evaluated
  // directly when the aggressive policy probes a late negative against an
  // emitted-but-unsealed match.
  std::vector<std::vector<std::size_t>> neg_check_predicates_;

  Shard root_;
  std::unordered_map<Value, Shard, ValueHasher> shards_;
  std::priority_queue<PendingMatch, std::vector<PendingMatch>, PendingLater> pending_;
  // Aggressive policy: emitted matches whose negation intervals have not
  // sealed yet — still revocable. Swept alongside process_pending().
  std::vector<PendingMatch> unsealed_emitted_;
};

}  // namespace oosp
