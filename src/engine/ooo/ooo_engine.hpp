// Native out-of-order engine — the paper's contribution.
//
// Processes the arrival stream directly, with no reorder buffer:
//
//  * Scan: each relevant event splices into the timestamp-ordered stack
//    of every step it satisfies (sorted_stack.hpp). Late events land in
//    the middle; in-order events append in O(1).
//
//  * Retroactive construction: a newly inserted event e at step i can
//    only create matches that CONTAIN e, so construction is anchored at
//    e — enumerate leftward (steps i−1…0, timestamps descending below
//    e.ts) then rightward (steps i+1…n−1, ascending, bounded by the
//    window anchored at the step-0 binding). Every new match is emitted
//    exactly once: at the insertion of its last-arriving constituent.
//    When the stream happens to be in order this degenerates to exactly
//    the classic trigger-driven leftward construction, so ordered input
//    pays (almost) nothing for out-of-order support.
//
//  * Negation sealing: a candidate match with negated steps is checked
//    against the negatives buffered so far and, if any of its negation
//    intervals could still admit a late negative (interval end not yet
//    K-sealed by the clock), parked in a pending heap and resolved at
//    the first clock advance that seals it. Pure-positive matches are
//    emitted immediately.
//
//  * K-slack purge: state with ts < clock − W − K can never join a new
//    match (any future event has ts ≥ clock − K, and a shared window of
//    width W cannot span both); purging runs every purge_period events.
//
//  * Slack-violation safety net: all seal/purge decisions are taken
//    against a MONOTONE watermark (the high-water mark of the clock's
//    seal point), so retuning K at runtime never rewinds a decision. An
//    event at or below the watermark broke the effective contract; the
//    configured LatePolicy decides whether it is admitted best-effort,
//    dropped, or quarantined for drain_quarantine(). With adaptive_slack
//    the effective K follows a windowed lateness quantile: growth applies
//    immediately (only delays future sealing/purging — always safe),
//    shrink waits for the next purge boundary.
//
//  * Batched ingestion (on_batch): admission, clock observation, and
//    contract decisions run per event in ARRIVAL order (identical to the
//    per-event path), then the admitted slice is sorted by (ts, id) and
//    spliced in with RIP maintenance amortized across the batch (bump
//    passes are staged per stack and flushed lazily: a stack's pending
//    bumps apply before anything reads its RIPs or inserts into it).
//    Sealing and purging run once per batch. on_event() is a batch of
//    one, so there is a single code path and the per-event guarantees
//    carry over verbatim. Events live in a pooled EventArena; stacks and
//    negation buffers hold refcounted 32-bit handles.
//
// Options honoured: slack (K), purge_period, partition_by_key (hash
// partition all state by the query's equi-join key), cache_rip
// (incrementally maintained RIPs instead of per-construction binary
// search), late_policy + quarantine_capacity, adaptive_slack +
// slack_estimator, dedup_by_id, registry (schema validation).
#pragma once

#include <chrono>
#include <deque>
#include <optional>
#include <queue>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/event_arena.hpp"
#include "engine/core/admission.hpp"
#include "engine/core/engine.hpp"
#include "engine/core/negative_buffer.hpp"
#include "engine/ooo/sorted_stack.hpp"
#include "stream/clock.hpp"
#include "stream/slack_estimator.hpp"

namespace oosp {

class OooEngine final : public PatternEngine {
 public:
  explicit OooEngine(EngineContext ctx);

  void on_event(const Event& e) override;
  void on_batch(std::span<const Event* const> batch) override;
  void finish() override;
  std::string name() const override {
    return options_.aggressive_negation ? "ooo-aggressive" : "ooo-native";
  }
  EngineStats stats_snapshot() const override;
  std::vector<Event> drain_quarantine() override {
    return admission_.drain_quarantine();
  }
  void snapshot(CheckpointWriter& w) const override;
  void restore(CheckpointReader& r) override;

 private:
  struct Shard {
    std::vector<SortedStack> stacks;        // per positive ordinal
    std::vector<NegativeBuffer> negatives;  // per negated ordinal
    // Batched RIP maintenance: pending_bumps[s] holds the timestamps of
    // this batch's inserts into stack s−1 whose +1 bump of stack s has
    // not been applied yet (ascending — phase C runs in (ts, id) order).
    // Lazily sized on first use; empty between batches.
    std::vector<std::vector<Timestamp>> pending_bumps;
    bool rip_dirty = false;  // registered in rip_dirty_shards_
  };

  struct NegCheck {
    std::size_t ordinal;  // negated ordinal
    Timestamp lo, hi;     // open interval (lo, hi)
  };

  struct PendingMatch {
    Match match;
    std::vector<NegCheck> checks;
    Timestamp seal_ts;  // max interval end; final once clock >= seal_ts + K
    Value shard_key;    // meaningful only when partitioned
    // Wall clock at candidate completion; the wall-time detection-latency
    // histogram charges the sealing wait against it. Only captured when
    // metrics are enabled (a steady_clock read per HELD candidate, never
    // per event).
    std::chrono::steady_clock::time_point held_since{};
  };
  struct PendingLater {
    bool operator()(const PendingMatch& a, const PendingMatch& b) const noexcept {
      return a.seal_ts > b.seal_ts;
    }
  };

  Shard make_shard() const;
  Shard& shard_for(const Value& key);
  Shard* find_shard(const Value& key);
  void write_shard(CheckpointWriter& w, const Shard& sh) const;
  Shard read_shard(CheckpointReader& r);
  static void write_pending(CheckpointWriter& w, const PendingMatch& pm);
  static PendingMatch read_pending(CheckpointReader& r);

  bool passes_local(std::size_t step, const Event& e);
  void insert_positive(Shard& shard, const Value& key, const Event& e,
                       EventHandle handle, std::size_t step);
  void construct_anchored(Shard& shard, const Value& key, std::size_t anchor_ordinal,
                          std::size_t anchor_index);
  void left_phase(Shard& shard, const Value& key, std::size_t ordinal,
                  std::size_t anchor_ordinal, const OooInstance& successor);
  void right_phase(Shard& shard, const Value& key, std::size_t ordinal,
                   std::size_t anchor_ordinal);
  void complete_candidate(Shard& shard, const Value& key, std::size_t anchor_ordinal);
  bool violated_now(Shard& shard, const std::vector<NegCheck>& checks,
                    std::span<const Event*> bindings);
  void process_pending();
  // Resolve pending/unsealed matches whose intervals were sealed by the
  // given watermark (not necessarily the current one) — used to replay
  // per-event seal points inside a batch.
  void process_pending_up_to(Timestamp watermark);
  void resolve_pending(PendingMatch&& pm);
  // Aggressive policy: a late negative may invalidate an already-emitted,
  // not-yet-sealed match — find the victims and issue retractions.
  void handle_late_negative(const Value& key, const Event& e, std::size_t step);
  // Adaptive K shrink — legal only at purge cadence points (see the
  // comment in the implementation); no-op when adaptive slack is off.
  void apply_adaptive_shrink();
  // One purge pass with thresholds derived from `horizon` — the seal
  // watermark in effect when the purge-period counter crossed, which in
  // a batch may be earlier than the current watermark.
  void purge_pass(Timestamp horizon);
  void purge_shard(Shard& shard, Timestamp pos_threshold, Timestamp neg_threshold);

  // Batched RIP bookkeeping (cache_rip only). Invariant: a stack's
  // pending bumps are applied before any read of its instances' rips and
  // before any insert into it; everything flushes by the end of on_batch,
  // so snapshots and purges always see settled rips.
  void stage_rip_bump(Shard& shard, std::size_t stack, Timestamp ts);
  void flush_stack_rips(Shard& shard, std::size_t stack);
  void flush_all_rips();

  bool sealed(Timestamp interval_end) const noexcept {
    // No future event can fall strictly inside an interval ending at
    // `interval_end` once every timestamp <= interval_end − 1 is sealed.
    // Evaluated against the monotone watermark, not the instantaneous
    // seal point, so a later slack increase cannot un-seal anything.
    return seal_watermark_ >= interval_end - 1;
  }

  // Sealing as the in-flight arrival sees it: identical to sealed() on
  // the per-event path, potentially earlier than the batch-end watermark
  // inside on_batch (see AdmittedEvent).
  bool sealed_at_arrival(Timestamp interval_end) const noexcept {
    return arrival_watermark_ >= interval_end - 1;
  }

  // Adaptive K: apply estimator growth (safe at any time); called per
  // event. Shrink is applied inside maybe_purge() only.
  void maybe_grow_slack();

  StreamClock clock_;
  SlackEstimator estimator_;
  AdmissionControl admission_{options_, stats_};
  // One Event copy per admitted relevant arrival; stacks and negation
  // buffers reference it by handle. Cleared and rebuilt on restore.
  EventArena arena_;
  // High-water mark of clock_.seal_point() over the run: every sealing
  // and purge decision ever taken used a horizon <= this. An arriving
  // event with ts <= seal_watermark_ violates the effective contract.
  Timestamp seal_watermark_ = kMinTimestamp;
  bool partitioned_ = false;
  std::vector<std::size_t> ordinal_of_step_;
  std::vector<std::size_t> step_of_positive_;
  std::vector<std::size_t> step_of_negated_;
  // anchored_schedule_[a][pos]: predicate ids ready at position pos of
  // the binding order (a, a−1, …, 0, a+1, …, n−1) — ordinals.
  std::vector<std::vector<std::vector<std::size_t>>> anchored_schedule_;
  std::vector<const Event*> bindings_;  // by pattern step index
  std::vector<const Event*> single_;
  std::size_t events_since_purge_ = 0;

  // Non-local predicates referencing each negated ordinal — evaluated
  // directly when the aggressive policy probes a late negative against an
  // emitted-but-unsealed match.
  std::vector<std::vector<std::size_t>> neg_check_predicates_;

  Shard root_;
  std::unordered_map<Value, Shard, ValueHasher> shards_;
  std::priority_queue<PendingMatch, std::vector<PendingMatch>, PendingLater> pending_;
  // Aggressive policy: emitted matches whose negation intervals have not
  // sealed yet — still revocable. Kept ordered by seal_ts so sealing
  // pops a prefix and a late negative at ts t inspects only entries with
  // seal_ts > t (a victim needs t strictly inside an interval ending at
  // hi <= seal_ts), instead of rescanning the whole list per arrival.
  std::deque<PendingMatch> unsealed_emitted_;

  // on_batch scratch (admitted slice, sorted) and the shards with
  // pending RIP bumps this batch. Pointers into shards_ are safe:
  // unordered_map references are stable and flush_all_rips() runs before
  // any shard can be erased (maybe_purge).
  // Admitted slice with the seal watermark in effect at each event's
  // arrival. Phase C completes candidates against the trigger's arrival
  // watermark, not the batch-end one: a batch may advance the clock past
  // a candidate's seal point before the trigger is even spliced, and
  // treating it as already sealed would skip the pending-resolution
  // recheck that a same-batch negative must still be able to fail.
  struct AdmittedEvent {
    const Event* e;
    Timestamp wm;
  };
  std::vector<AdmittedEvent> batch_admitted_;
  // Watermark at the arrival being processed by Phase C (== the current
  // seal watermark on the per-event path).
  Timestamp arrival_watermark_ = kMinTimestamp;
  std::vector<Shard*> rip_dirty_shards_;
  // Watermarks recorded at purge-period crossings inside the current
  // batch (Phase A). The batch tail replays "seal up to mark, purge at
  // mark" per entry so resolution sees per-event buffer state.
  std::vector<Timestamp> batch_purge_marks_;
};

}  // namespace oosp
