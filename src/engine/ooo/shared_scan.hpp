// Shared multi-query sequence scan (MQO) — one arrival-side pipeline
// for a group of queries.
//
// A ScanGroupPlan (runtime/planner.hpp) buckets pure-positive OOO
// queries whose scans are physically compatible: same state-shaping
// EngineOptions, a shared SEQ prefix, and — when hash-partitioned —
// agreeing per-type key attributes. For such a group this class runs
// admission (schema validation, dedup, LatePolicy), stream-clock
// observation, seal-watermark maintenance, purge-cadence bookkeeping and
// stack insertion ONCE per arrival, where N per-query engines would run
// them N times.
//
// What stays per query: retroactive anchored construction and predicate
// evaluation. The group keeps one timestamp-ordered SortedStack per
// relevant event TYPE (per key shard when partitioned) instead of one
// per (query, step). The stacks are therefore UNFILTERED — a member's
// step-local predicates are evaluated at visit time during that member's
// construction, not at insert time — and each member walks them through
// its own ordinal→type mapping with its own window and predicate
// schedules. Emission goes through the TaggedSink/QueryId contract, and
// because construction is anchored at the inserted event exactly as in
// OooEngine, every member's output is bit-identical to what its own
// engine would have produced (match set, per-query order, and stats
// semantics for matches; see DESIGN.md §3.10 for the arrival-counter
// replication rules).
//
// Purging uses the MAXIMUM member window: state below
// watermark − W_max + 1 cannot join any member's future match, and the
// extra state a small-window member never purges is unobservable to it —
// its left phase floors at anchor_ts − W_member regardless.
//
// Negation, adaptive slack, RIP caching and trace hooks are excluded at
// plan time (shared_scan_exclusion) — they need per-query sealing state
// or per-engine lifecycles — so a group has no pending heap and no
// negative buffers, and a purge pass is observable only through the
// positive stacks (a deeper pass subsumes earlier ones within a batch).
#pragma once

#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/event_arena.hpp"
#include "engine/core/admission.hpp"
#include "engine/core/engine.hpp"
#include "engine/core/sink.hpp"
#include "engine/ooo/sorted_stack.hpp"
#include "runtime/planner.hpp"
#include "stream/clock.hpp"

namespace oosp {

class CheckpointWriter;
class CheckpointReader;

struct SharedScanMember {
  QueryId id = 0;
  std::shared_ptr<const CompiledQuery> query;
};

class SharedScanGroup {
 public:
  // `plan` must have been produced by plan_shared_scan over entries whose
  // ids match `members` (>= 2, ascending); `options` are the members'
  // common options. The sink receives per-member emissions tagged with
  // the member's QueryId.
  SharedScanGroup(const ScanGroupPlan& plan,
                  std::vector<SharedScanMember> members, EngineOptions options,
                  std::shared_ptr<TaggedSink> sink);

  SharedScanGroup(const SharedScanGroup&) = delete;
  SharedScanGroup& operator=(const SharedScanGroup&) = delete;

  void on_event(const Event& e);
  void on_batch(std::span<const Event* const> batch);
  void finish();

  // Events parked by LatePolicy::kQuarantine, drained once for the whole
  // group — the caller fans each event out to the members it is relevant
  // to (one member engine each would have quarantined its own copy).
  // Groups currently form only under LatePolicy::kAdmit (the planner
  // excludes clock-dependent late policies), so this is empty in
  // practice; it keeps the runner's drain loop uniform.
  std::vector<Event> drain_quarantine();

  std::size_t num_members() const noexcept { return members_.size(); }
  QueryId member_id(std::size_t i) const { return members_.at(i).id; }

  // True when events of type `t` are pattern input for some member.
  bool relevant(TypeId t) const noexcept {
    return type_index(t) != CompiledStep::npos;
  }

  // Per-member stats view. Arrival counters (events_seen/late/violations/
  // relevant) are replicated per relevant member; physical counters
  // (instances, purges, footprint, admission outcomes) exist once and are
  // merged into member 0's snapshot so summing across members equals the
  // group's physical reality.
  EngineStats member_stats(std::size_t i) const;

  bool started() const noexcept { return started_; }

  // Checkpointing: the group's shared state (clock, admission, stacks) is
  // written exactly once plus the per-member stats. restore() must run
  // on a freshly built group (same plan, members, options) before any
  // event — it validates member query texts and throws CheckpointError
  // on drift.
  void snapshot(CheckpointWriter& w) const;
  void restore(CheckpointReader& r);

 private:
  struct Shard {
    std::vector<SortedStack> stacks;  // one per dense type index
  };
  struct Anchor {
    std::uint32_t member;
    std::uint32_t ordinal;
  };
  struct Member {
    QueryId id = 0;
    std::shared_ptr<const CompiledQuery> query;
    EngineStats stats;
    // Member ordinal -> dense group type index (which shared stack holds
    // that step's candidates).
    std::vector<std::size_t> stack_of_ordinal;
    // anchored_schedule[a][pos]: predicate ids ready at position pos of
    // the binding order (a, a−1, …, 0, a+1, …, n−1) — same construction
    // as OooEngine's.
    std::vector<std::vector<std::vector<std::size_t>>> anchored_schedule;
    std::vector<const Event*> bindings;  // by step index (== ordinal)
  };

  Shard make_shard() const;
  Shard& shard_for(const Value& key);
  std::size_t type_index(TypeId t) const noexcept {
    return t < type_index_.size() ? type_index_[t] : CompiledStep::npos;
  }

  // Binds the visited event at `ordinal` and evaluates the member's
  // step-local predicates (shared stacks are unfiltered, so the filter a
  // member engine applied at insert time runs at visit time here).
  bool bind_if_local_pass(Member& m, std::size_t ordinal, const Event& e);
  void construct_anchored(Member& m, Shard& shard, std::size_t anchor_ordinal,
                          const OooInstance& anchor);
  void left_phase(Member& m, Shard& shard, std::size_t ordinal,
                  std::size_t anchor_ordinal, const OooInstance& successor);
  void right_phase(Member& m, Shard& shard, std::size_t ordinal,
                   std::size_t anchor_ordinal);
  void complete_candidate(Member& m);
  void purge_pass(Timestamp horizon);
  void purge_shard(Shard& shard, Timestamp pos_threshold);
  void write_shard(CheckpointWriter& w, const Shard& sh) const;
  Shard read_shard(CheckpointReader& r);

  EngineOptions options_;
  std::shared_ptr<TaggedSink> sink_;
  std::vector<Member> members_;

  // Physical (once-per-group) counters; admission writes its outcomes
  // here. Merged into member 0's snapshot by member_stats().
  EngineStats shared_stats_;
  StreamClock clock_;
  AdmissionControl admission_{options_, shared_stats_};
  EventArena arena_;
  EngineObs obs_;
  MqoObs mqo_obs_;

  Timestamp seal_watermark_ = kMinTimestamp;
  bool partitioned_ = false;
  bool started_ = false;
  std::size_t events_since_purge_ = 0;
  // Maximum member window — the group purge horizon (see header comment).
  Timestamp window_ = 0;

  std::vector<std::size_t> type_index_;  // TypeId -> dense index or npos
  std::vector<std::size_t> type_slot_;   // TypeId -> key slot (partitioned)
  std::vector<TypeId> types_;            // dense index -> TypeId
  // Per dense type: members it is relevant to (for arrival-counter
  // replication) and the (member, ordinal) anchors to construct from.
  std::vector<std::vector<std::uint32_t>> members_of_type_;
  std::vector<std::vector<Anchor>> anchors_;

  Shard root_;
  std::unordered_map<Value, Shard, ValueHasher> shards_;

  std::vector<const Event*> batch_admitted_;
  // Purge cadence crossings within the current batch. With no negation
  // state a deeper purge subsumes earlier ones, so only the LAST crossing
  // runs — exactly what OooEngine's subsumed-pass collapsing does for a
  // pure-positive query, keeping purge_passes counts comparable.
  bool batch_purge_due_ = false;
  Timestamp batch_purge_mark_ = kMinTimestamp;
};

}  // namespace oosp
