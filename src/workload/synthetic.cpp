#include "workload/synthetic.hpp"

#include <cmath>
#include <sstream>

#include "common/contracts.hpp"

namespace oosp {

SyntheticWorkload::SyntheticWorkload(SyntheticConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  OOSP_REQUIRE(config_.num_types >= 1, "need at least one type");
  OOSP_REQUIRE(config_.key_cardinality >= 1, "need at least one key");
  OOSP_REQUIRE(config_.mean_gap >= 1, "mean_gap must be at least 1");
  OOSP_REQUIRE(config_.type_weights.empty() ||
                   config_.type_weights.size() == config_.num_types,
               "type_weights size must match num_types");
  for (std::size_t i = 0; i < config_.num_types; ++i) {
    type_ids_.push_back(registry_.register_type(
        "T" + std::to_string(i),
        Schema({{"key", ValueType::kInt}, {"val", ValueType::kInt}})));
  }
}

std::vector<Event> SyntheticWorkload::generate(std::size_t count) {
  std::vector<Event> out;
  out.reserve(count);
  const std::vector<double> uniform(config_.num_types, 1.0);
  const std::vector<double>& weights =
      config_.type_weights.empty() ? uniform : config_.type_weights;
  for (std::size_t i = 0; i < count; ++i) {
    Event e;
    e.type = type_ids_[rng_.weighted_index(weights)];
    e.id = next_id_++;
    next_ts_ += std::max<Timestamp>(
        1, static_cast<Timestamp>(std::llround(
               rng_.exponential(1.0 / static_cast<double>(config_.mean_gap)))));
    e.ts = next_ts_;
    const std::int64_t key =
        config_.key_skew > 0.0
            ? static_cast<std::int64_t>(
                  rng_.zipf(static_cast<std::uint64_t>(config_.key_cardinality),
                            config_.key_skew)) -
                  1
            : rng_.uniform_int(0, config_.key_cardinality - 1);
    e.attrs = {Value(key), Value(rng_.uniform_int(0, 999))};
    out.push_back(std::move(e));
  }
  return out;
}

std::string SyntheticWorkload::seq_query(std::size_t len, bool keyed, Timestamp window,
                                         std::int64_t min_val) const {
  OOSP_REQUIRE(len >= 1 && len <= config_.num_types, "sequence length out of range");
  std::ostringstream q;
  q << "PATTERN SEQ(";
  for (std::size_t i = 0; i < len; ++i) {
    if (i) q << ", ";
    q << "T" << i << " a" << i;
  }
  q << ")";
  bool where_started = false;
  auto conj = [&]() -> std::ostringstream& {
    q << (where_started ? " AND " : " WHERE ");
    where_started = true;
    return q;
  };
  if (keyed) {
    for (std::size_t i = 1; i < len; ++i)
      conj() << "a" << (i - 1) << ".key == a" << i << ".key";
  }
  if (min_val >= 0) conj() << "a0.val >= " << min_val;
  q << " WITHIN " << window;
  return q.str();
}

std::string SyntheticWorkload::negation_query(Timestamp window) const {
  OOSP_REQUIRE(config_.num_types >= 3, "negation query needs three types");
  std::ostringstream q;
  // The positive join (a.key == c.key) must be stated directly: an
  // equality chain through the negated binding would not constrain the
  // positive match (see CompiledQuery partitioning notes).
  q << "PATTERN SEQ(T0 a, !T1 b, T2 c) "
       "WHERE a.key == c.key AND a.key == b.key WITHIN "
    << window;
  return q.str();
}

}  // namespace oosp
