// Stock tick workload: per-symbol geometric random-walk prices.
//
// Demonstrates patterns where several steps bind the SAME event type
// (every step is a Tick), exercising the multi-stack insertion path of
// the engines. The canonical query is the V-shape (dip-and-recover):
//
//   PATTERN SEQ(Tick a, Tick b, Tick c)
//   WHERE a.sym == b.sym AND b.sym == c.sym
//     AND a.price > b.price AND c.price > b.price
//   WITHIN <window>
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "event/event.hpp"

namespace oosp {

struct StockConfig {
  std::size_t num_ticks = 10'000;
  std::size_t num_symbols = 20;
  double start_price = 100.0;
  double volatility = 0.01;  // per-tick relative step
  Timestamp mean_gap = 3;
  std::uint64_t seed = 11;
};

class StockWorkload {
 public:
  explicit StockWorkload(StockConfig config);

  const TypeRegistry& registry() const noexcept { return registry_; }
  const StockConfig& config() const noexcept { return config_; }

  std::vector<Event> generate();

  // Dip-and-recover V-shape per symbol.
  std::string vshape_query(Timestamp window) const;

  // Monotone rise: k consecutive (in pattern order) rising ticks.
  std::string rising_query(std::size_t legs, Timestamp window) const;

 private:
  StockConfig config_;
  TypeRegistry registry_;
  Rng rng_;
};

}  // namespace oosp
