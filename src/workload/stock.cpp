#include "workload/stock.hpp"

#include <cmath>
#include <sstream>

#include "common/contracts.hpp"

namespace oosp {

StockWorkload::StockWorkload(StockConfig config) : config_(config), rng_(config.seed) {
  OOSP_REQUIRE(config_.num_symbols >= 1, "need at least one symbol");
  OOSP_REQUIRE(config_.volatility > 0.0, "volatility must be positive");
  registry_.register_type("Tick", Schema({{"sym", ValueType::kInt},
                                          {"price", ValueType::kDouble},
                                          {"volume", ValueType::kInt}}));
}

std::vector<Event> StockWorkload::generate() {
  const TypeId tick = registry_.lookup("Tick");
  std::vector<double> price(config_.num_symbols, config_.start_price);
  std::vector<Event> out;
  out.reserve(config_.num_ticks);
  Timestamp ts = 0;
  for (std::size_t i = 0; i < config_.num_ticks; ++i) {
    const auto sym = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(config_.num_symbols) - 1));
    price[sym] *= std::exp(rng_.normal(0.0, config_.volatility));
    ts += std::max<Timestamp>(
        1, static_cast<Timestamp>(std::llround(
               rng_.exponential(1.0 / static_cast<double>(config_.mean_gap)))));
    Event e;
    e.type = tick;
    e.id = static_cast<EventId>(i);
    e.ts = ts;
    e.attrs = {Value(static_cast<std::int64_t>(sym)), Value(price[sym]),
               Value(rng_.uniform_int(1, 1'000))};
    out.push_back(std::move(e));
  }
  return out;
}

std::string StockWorkload::vshape_query(Timestamp window) const {
  std::ostringstream q;
  q << "PATTERN SEQ(Tick a, Tick b, Tick c) "
       "WHERE a.sym == b.sym AND b.sym == c.sym "
       "AND a.price > b.price AND c.price > b.price WITHIN "
    << window;
  return q.str();
}

std::string StockWorkload::rising_query(std::size_t legs, Timestamp window) const {
  OOSP_REQUIRE(legs >= 2, "rising pattern needs at least two legs");
  std::ostringstream q;
  q << "PATTERN SEQ(";
  for (std::size_t i = 0; i < legs; ++i) {
    if (i) q << ", ";
    q << "Tick a" << i;
  }
  q << ") WHERE ";
  for (std::size_t i = 1; i < legs; ++i) {
    if (i > 1) q << " AND ";
    q << "a" << (i - 1) << ".sym == a" << i << ".sym AND a" << (i - 1)
      << ".price < a" << i << ".price";
  }
  q << " WITHIN " << window;
  return q.str();
}

}  // namespace oosp
