// Intrusion-detection workload: authentication events per source IP.
//
// Background traffic is a mix of successful logins and occasional
// isolated failures; attack sessions are bursts of failures from one IP
// followed by a success (credential stuffing that eventually lands).
// The detection pattern is a fixed-length brute-force signature:
//
//   PATTERN SEQ(Fail f1, Fail f2, Fail f3, Ok o)
//   WHERE f1.ip == f2.ip AND … AND f3.ip == o.ip
//   WITHIN <window>
//
// Real-time intrusion detection is the paper's second motivating
// application; detection delay (R-F3) matters most here — a buffered
// engine that sits on every alert for the full slack K is late exactly
// when it must not be.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "event/event.hpp"

namespace oosp {

struct IntrusionConfig {
  std::size_t num_events = 20'000;
  std::size_t num_ips = 500;
  double attack_ip_fraction = 0.02;   // IPs that run attack sessions
  double fail_fraction = 0.10;        // background failure probability
  std::size_t attack_burst = 5;       // failures per attack burst
  Timestamp mean_gap = 5;
  std::uint64_t seed = 23;
};

class IntrusionWorkload {
 public:
  explicit IntrusionWorkload(IntrusionConfig config);

  const TypeRegistry& registry() const noexcept { return registry_; }
  const IntrusionConfig& config() const noexcept { return config_; }

  std::vector<Event> generate();

  // Brute-force signature with `fails` consecutive failures.
  std::string bruteforce_query(std::size_t fails, Timestamp window) const;

 private:
  IntrusionConfig config_;
  TypeRegistry registry_;
  Rng rng_;
};

}  // namespace oosp
