#include "workload/rfid.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/contracts.hpp"

namespace oosp {

RfidWorkload::RfidWorkload(RfidConfig config) : config_(config), rng_(config.seed) {
  OOSP_REQUIRE(config_.num_items >= 1, "need at least one item");
  OOSP_REQUIRE(config_.shoplift_fraction >= 0.0 && config_.shoplift_fraction <= 1.0,
               "shoplift_fraction must be in [0,1]");
  const Schema item_schema({{"item", ValueType::kInt}});
  registry_.register_type("Shelf", item_schema);
  registry_.register_type("Checkout", item_schema);
  registry_.register_type("Exit", item_schema);
}

std::vector<Event> RfidWorkload::generate() {
  const TypeId shelf = registry_.lookup("Shelf");
  const TypeId checkout = registry_.lookup("Checkout");
  const TypeId exit = registry_.lookup("Exit");
  std::vector<Event> out;
  out.reserve(config_.num_items * 3);
  EventId next_id = 0;
  Timestamp shelf_ts = 0;
  shoplifted_ = 0;
  auto gap = [&](Timestamp mean) {
    return std::max<Timestamp>(
        1, static_cast<Timestamp>(
               std::llround(rng_.exponential(1.0 / static_cast<double>(mean)))));
  };
  for (std::size_t item = 0; item < config_.num_items; ++item) {
    shelf_ts += gap(config_.item_arrival_gap);
    const bool steals = rng_.bernoulli(config_.shoplift_fraction);
    if (steals) ++shoplifted_;
    const auto key = Value(static_cast<std::int64_t>(item));

    Event s;
    s.type = shelf;
    s.id = next_id++;
    s.ts = shelf_ts;
    s.attrs = {key};
    out.push_back(std::move(s));

    Timestamp t = shelf_ts + gap(config_.shelf_to_checkout_mean);
    if (!steals) {
      Event c;
      c.type = checkout;
      c.id = next_id++;
      c.ts = t;
      c.attrs = {key};
      out.push_back(std::move(c));
    }
    t += gap(config_.checkout_to_exit_mean);
    Event e;
    e.type = exit;
    e.id = next_id++;
    e.ts = t;
    e.attrs = {key};
    out.push_back(std::move(e));
  }
  std::sort(out.begin(), out.end(),
            [](const Event& a, const Event& b) { return TsIdLess{}(a, b); });
  return out;
}

std::string RfidWorkload::shoplifting_query(Timestamp window) const {
  std::ostringstream q;
  // s.item == e.item is the positive join; the negated binding then
  // attaches to the same item (a chain through `c` alone would leave the
  // positive pair unconstrained — see CompiledQuery partitioning notes).
  q << "PATTERN SEQ(Shelf s, !Checkout c, Exit e) "
       "WHERE s.item == e.item AND s.item == c.item WITHIN "
    << window;
  return q.str();
}

std::string RfidWorkload::purchase_query(Timestamp window) const {
  std::ostringstream q;
  q << "PATTERN SEQ(Shelf s, Checkout c, Exit e) "
       "WHERE s.item == c.item AND c.item == e.item WITHIN "
    << window;
  return q.str();
}

}  // namespace oosp
