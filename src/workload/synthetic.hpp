// Fully parameterized synthetic workload — the knob set behind most of
// the reconstructed experiments (DESIGN.md §4).
//
// Events are drawn from `num_types` types T0…T{n−1}, each with schema
// {key:int, val:int}. Occurrence timestamps advance by exponential gaps
// (mean `mean_gap`); keys are drawn from [0, key_cardinality) with
// optional Zipf skew; types are drawn from `type_weights` (uniform by
// default). The canonical queries bind consecutive types T0→T1→…, with
// or without an equi-join on `key`.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "event/event.hpp"

namespace oosp {

struct SyntheticConfig {
  std::size_t num_events = 10'000;
  std::size_t num_types = 5;
  std::int64_t key_cardinality = 100;
  double key_skew = 0.0;  // Zipf exponent; 0 = uniform
  Timestamp mean_gap = 10;
  std::uint64_t seed = 1;
  std::vector<double> type_weights;  // empty = uniform
};

class SyntheticWorkload {
 public:
  explicit SyntheticWorkload(SyntheticConfig config);

  const TypeRegistry& registry() const noexcept { return registry_; }
  const SyntheticConfig& config() const noexcept { return config_; }

  // Generates a ts-ordered stream. Each call continues the id/ts
  // sequence (events are globally unique across calls).
  std::vector<Event> generate(std::size_t count);
  std::vector<Event> generate() { return generate(config_.num_events); }

  // PATTERN SEQ(T0 a0, …, T{len−1} a{len−1}) [WHERE key equi-join]
  // [AND a0.val >= min_val] WITHIN window. Requires len <= num_types.
  std::string seq_query(std::size_t len, bool keyed, Timestamp window,
                        std::int64_t min_val = -1) const;

  // PATTERN SEQ(T0 a, !T1 b, T2 c) keyed on `key` WITHIN window.
  std::string negation_query(Timestamp window) const;

 private:
  SyntheticConfig config_;
  TypeRegistry registry_;
  Rng rng_;
  Timestamp next_ts_ = 0;
  EventId next_id_ = 0;
  std::vector<TypeId> type_ids_;
};

}  // namespace oosp
