// RFID retail workload — the paper's motivating application.
//
// Tagged items move through a store: a shelf reader sees the item, the
// checkout reader sees it if it is paid for, and the exit reader sees it
// leaving. The classic shoplifting query asks for items seen at a shelf
// and at the exit with NO checkout reading in between:
//
//   PATTERN SEQ(Shelf s, !Checkout c, Exit e)
//   WHERE s.item == c.item AND c.item == e.item
//   WITHIN <window>
//
// Checkout readings travel through the store backbone and are the events
// most prone to late arrival in practice — a late checkout reading makes
// a naive engine raise a false shoplifting alarm, which is exactly the
// phantom-result failure mode experiment R-T2 measures.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "event/event.hpp"

namespace oosp {

struct RfidConfig {
  std::size_t num_items = 2'000;
  double shoplift_fraction = 0.05;  // items that skip checkout
  Timestamp shelf_to_checkout_mean = 50;
  Timestamp checkout_to_exit_mean = 30;
  Timestamp item_arrival_gap = 7;  // mean gap between successive items' shelf reads
  std::uint64_t seed = 7;
};

class RfidWorkload {
 public:
  explicit RfidWorkload(RfidConfig config);

  const TypeRegistry& registry() const noexcept { return registry_; }
  const RfidConfig& config() const noexcept { return config_; }

  // ts-ordered stream of Shelf/Checkout/Exit readings.
  std::vector<Event> generate();

  // The shoplifting pattern; window should cover a full shelf→exit span.
  std::string shoplifting_query(Timestamp window) const;

  // Positive variant (no negation): items that did check out.
  std::string purchase_query(Timestamp window) const;

  std::size_t expected_shoplifted() const noexcept { return shoplifted_; }

 private:
  RfidConfig config_;
  TypeRegistry registry_;
  Rng rng_;
  std::size_t shoplifted_ = 0;
};

}  // namespace oosp
