#include "workload/intrusion.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/contracts.hpp"

namespace oosp {

IntrusionWorkload::IntrusionWorkload(IntrusionConfig config)
    : config_(config), rng_(config.seed) {
  OOSP_REQUIRE(config_.num_ips >= 1, "need at least one ip");
  const Schema auth_schema({{"ip", ValueType::kInt}, {"user", ValueType::kInt}});
  registry_.register_type("Fail", auth_schema);
  registry_.register_type("Ok", auth_schema);
}

std::vector<Event> IntrusionWorkload::generate() {
  const TypeId fail = registry_.lookup("Fail");
  const TypeId ok = registry_.lookup("Ok");
  const auto attackers = static_cast<std::size_t>(std::llround(
      config_.attack_ip_fraction * static_cast<double>(config_.num_ips)));
  std::vector<Event> out;
  out.reserve(config_.num_events);
  Timestamp ts = 0;
  EventId id = 0;
  auto gap = [&] {
    return std::max<Timestamp>(
        1, static_cast<Timestamp>(std::llround(
               rng_.exponential(1.0 / static_cast<double>(config_.mean_gap)))));
  };
  auto push = [&](TypeId type, std::int64_t ip) {
    ts += gap();
    Event e;
    e.type = type;
    e.id = id++;
    e.ts = ts;
    e.attrs = {Value(ip), Value(rng_.uniform_int(0, 9'999))};
    out.push_back(std::move(e));
  };
  while (out.size() < config_.num_events) {
    // Occasionally interleave a full attack burst from an attacker IP.
    if (attackers > 0 && rng_.bernoulli(0.01)) {
      const std::int64_t ip =
          rng_.uniform_int(0, static_cast<std::int64_t>(attackers) - 1);
      for (std::size_t i = 0; i < config_.attack_burst && out.size() < config_.num_events;
           ++i)
        push(fail, ip);
      if (out.size() < config_.num_events) push(ok, ip);
      continue;
    }
    const std::int64_t ip =
        rng_.uniform_int(0, static_cast<std::int64_t>(config_.num_ips) - 1);
    push(rng_.bernoulli(config_.fail_fraction) ? fail : ok, ip);
  }
  return out;
}

std::string IntrusionWorkload::bruteforce_query(std::size_t fails, Timestamp window) const {
  OOSP_REQUIRE(fails >= 1, "need at least one failure step");
  std::ostringstream q;
  q << "PATTERN SEQ(";
  for (std::size_t i = 0; i < fails; ++i) q << "Fail f" << (i + 1) << ", ";
  q << "Ok o) WHERE ";
  for (std::size_t i = 1; i < fails; ++i)
    q << "f" << i << ".ip == f" << (i + 1) << ".ip AND ";
  q << "f" << fails << ".ip == o.ip WITHIN " << window;
  return q.str();
}

}  // namespace oosp
