#include "event/value.hpp"

#include <cstdio>
#include <functional>
#include <ostream>

#include "common/contracts.hpp"

namespace oosp {

std::string_view to_string(ValueType t) noexcept {
  switch (t) {
    case ValueType::kInt: return "int";
    case ValueType::kDouble: return "double";
    case ValueType::kBool: return "bool";
    case ValueType::kString: return "string";
  }
  return "?";
}

ValueType Value::type() const noexcept {
  return static_cast<ValueType>(v_.index());
}

std::int64_t Value::as_int() const {
  OOSP_REQUIRE(type() == ValueType::kInt, "value is not int");
  return std::get<std::int64_t>(v_);
}

double Value::as_double() const {
  OOSP_REQUIRE(type() == ValueType::kDouble, "value is not double");
  return std::get<double>(v_);
}

bool Value::as_bool() const {
  OOSP_REQUIRE(type() == ValueType::kBool, "value is not bool");
  return std::get<bool>(v_);
}

const std::string& Value::as_string() const {
  OOSP_REQUIRE(type() == ValueType::kString, "value is not string");
  return std::get<std::string>(v_);
}

double Value::numeric() const {
  if (type() == ValueType::kInt) return static_cast<double>(std::get<std::int64_t>(v_));
  OOSP_REQUIRE(type() == ValueType::kDouble, "value is not numeric");
  return std::get<double>(v_);
}

bool Value::comparable_with(const Value& other) const noexcept {
  if (is_numeric() && other.is_numeric()) return true;
  return type() == other.type();
}

int Value::compare(const Value& other) const {
  OOSP_REQUIRE(comparable_with(other), "incomparable value types");
  if (is_numeric() && other.is_numeric()) {
    // Exact integer compare when both are ints (avoids double rounding
    // for magnitudes above 2^53).
    if (type() == ValueType::kInt && other.type() == ValueType::kInt) {
      const auto a = std::get<std::int64_t>(v_), b = std::get<std::int64_t>(other.v_);
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    const double a = numeric(), b = other.numeric();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  switch (type()) {
    case ValueType::kBool: {
      const bool a = std::get<bool>(v_), b = std::get<bool>(other.v_);
      return a == b ? 0 : (a ? 1 : -1);
    }
    case ValueType::kString: {
      const auto& a = std::get<std::string>(v_);
      const auto& b = std::get<std::string>(other.v_);
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    default: OOSP_CHECK(false, "unreachable value compare"); return 0;
  }
}

bool Value::operator==(const Value& other) const noexcept {
  if (!comparable_with(other)) return false;
  return compare(other) == 0;
}

std::size_t Value::hash() const noexcept {
  const std::size_t tag = v_.index() * 0x9e3779b97f4a7c15ull;
  switch (type()) {
    case ValueType::kInt:
      return tag ^ std::hash<std::int64_t>{}(std::get<std::int64_t>(v_));
    case ValueType::kDouble:
      return tag ^ std::hash<double>{}(std::get<double>(v_));
    case ValueType::kBool:
      return tag ^ std::hash<bool>{}(std::get<bool>(v_));
    case ValueType::kString:
      return tag ^ std::hash<std::string>{}(std::get<std::string>(v_));
  }
  return tag;
}

std::string Value::to_display() const {
  switch (type()) {
    case ValueType::kInt: return std::to_string(std::get<std::int64_t>(v_));
    case ValueType::kDouble: {
      char buf[48];
      std::snprintf(buf, sizeof buf, "%g", std::get<double>(v_));
      return buf;
    }
    case ValueType::kBool: return std::get<bool>(v_) ? "true" : "false";
    case ValueType::kString: return '"' + std::get<std::string>(v_) + '"';
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const Value& v) { return os << v.to_display(); }

}  // namespace oosp
