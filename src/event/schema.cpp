#include "event/schema.hpp"

#include "common/contracts.hpp"

namespace oosp {

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    OOSP_REQUIRE(!fields_[i].name.empty(), "schema field needs a name");
    for (std::size_t j = i + 1; j < fields_.size(); ++j)
      OOSP_REQUIRE(fields_[i].name != fields_[j].name,
                   "duplicate schema field: " + fields_[i].name);
  }
}

std::size_t Schema::slot(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < fields_.size(); ++i)
    if (fields_[i].name == name) return i;
  return npos;
}

const Field& Schema::field(std::size_t slot) const {
  OOSP_REQUIRE(slot < fields_.size(), "schema slot out of range");
  return fields_[slot];
}

TypeId TypeRegistry::register_type(std::string_view name, Schema schema) {
  OOSP_REQUIRE(!name.empty(), "type name must be non-empty");
  if (const TypeId existing = names_.lookup(name); existing != kInvalidType) {
    const Schema& have = schemas_[existing];
    OOSP_REQUIRE(have.field_count() == schema.field_count(),
                 "re-registering type with different schema: " + std::string(name));
    for (std::size_t i = 0; i < schema.field_count(); ++i) {
      OOSP_REQUIRE(have.field(i).name == schema.field(i).name &&
                       have.field(i).type == schema.field(i).type,
                   "re-registering type with different schema: " + std::string(name));
    }
    return existing;
  }
  const TypeId id = names_.intern(name);
  OOSP_ASSERT(id == schemas_.size());
  schemas_.push_back(std::move(schema));
  return id;
}

const Schema& TypeRegistry::schema(TypeId id) const {
  OOSP_REQUIRE(id < schemas_.size(), "unknown type id");
  return schemas_[id];
}

}  // namespace oosp
