// The event: the unit of data flowing through every stream and engine.
//
// Two orderings matter throughout this library and must never be
// conflated:
//   * `ts`      — the application (occurrence) timestamp assigned at the
//                 source; pattern semantics (SEQ order, windows) are
//                 defined purely over `ts`.
//   * `arrival` — the position in the arrival sequence at the engine.
//                 Network latency makes `arrival` order disagree with
//                 `ts` order; that disagreement is exactly the
//                 out-of-order problem this library addresses.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "event/schema.hpp"
#include "event/value.hpp"

namespace oosp {

// Application timestamps are integral ticks (think microseconds). Signed
// so that window arithmetic (ts - W) cannot underflow.
using Timestamp = std::int64_t;
constexpr Timestamp kMinTimestamp = INT64_MIN;
constexpr Timestamp kMaxTimestamp = INT64_MAX;

using EventId = std::uint64_t;
using ArrivalSeq = std::uint64_t;

struct Event {
  TypeId type = kInvalidType;
  EventId id = 0;          // unique per stream, assigned at generation
  Timestamp ts = 0;        // occurrence time
  ArrivalSeq arrival = 0;  // assigned by the channel on delivery
  std::vector<Value> attrs;

  const Value& attr(std::size_t slot) const;

  // An event is "late" in a delivered stream when some event with a larger
  // timestamp arrived before it.
  bool operator==(const Event& other) const = default;
};

// Total order used whenever ties must break deterministically:
// by (ts, id).
struct TsIdLess {
  bool operator()(const Event& a, const Event& b) const noexcept {
    return a.ts != b.ts ? a.ts < b.ts : a.id < b.id;
  }
};

std::ostream& operator<<(std::ostream& os, const Event& e);

// Convenience builder for tests/examples: resolves attribute names through
// the registry's schema and fills slots positionally.
class EventBuilder {
 public:
  EventBuilder(const TypeRegistry& registry, std::string_view type_name);

  EventBuilder& ts(Timestamp t) {
    event_.ts = t;
    return *this;
  }
  EventBuilder& id(EventId i) {
    event_.id = i;
    return *this;
  }
  EventBuilder& set(std::string_view field, Value v);
  Event build() const;

 private:
  const TypeRegistry& registry_;
  Event event_;
  std::vector<bool> filled_;
};

}  // namespace oosp
