// Typed attribute values carried by events.
//
// A Value is a small closed variant (int64 | double | bool | string). The
// query layer compares values with SQL-ish semantics: int/double compare
// numerically across types; all other cross-type comparisons are a query
// analysis error caught before execution.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <variant>

namespace oosp {

enum class ValueType : std::uint8_t { kInt, kDouble, kBool, kString };

std::string_view to_string(ValueType t) noexcept;

class Value {
 public:
  Value() noexcept : v_(std::int64_t{0}) {}
  Value(std::int64_t v) noexcept : v_(v) {}        // NOLINT(google-explicit-constructor)
  Value(int v) noexcept : v_(std::int64_t{v}) {}   // NOLINT(google-explicit-constructor)
  Value(double v) noexcept : v_(v) {}              // NOLINT(google-explicit-constructor)
  Value(bool v) noexcept : v_(v) {}                // NOLINT(google-explicit-constructor)
  Value(std::string v) noexcept : v_(std::move(v)) {}  // NOLINT(google-explicit-constructor)
  Value(const char* v) : v_(std::string(v)) {}     // NOLINT(google-explicit-constructor)

  ValueType type() const noexcept;

  bool is_numeric() const noexcept {
    return type() == ValueType::kInt || type() == ValueType::kDouble;
  }

  // Typed accessors; each requires the matching type.
  std::int64_t as_int() const;
  double as_double() const;
  bool as_bool() const;
  const std::string& as_string() const;

  // Numeric view: int or double widened to double. Requires is_numeric().
  double numeric() const;

  // Three-way comparison usable by predicates. Requires comparable types
  // (numeric with numeric, otherwise exactly equal types).
  int compare(const Value& other) const;

  // True when compare() is defined for this pair of types.
  bool comparable_with(const Value& other) const noexcept;

  bool operator==(const Value& other) const noexcept;

  // Hash consistent with operator== only across values of identical type
  // (the partition optimizer guarantees identical static types before
  // hashing; see CompiledQuery::partitionable()).
  std::size_t hash() const noexcept;

  std::string to_display() const;

 private:
  std::variant<std::int64_t, double, bool, std::string> v_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

struct ValueHasher {
  std::size_t operator()(const Value& v) const noexcept { return v.hash(); }
};

}  // namespace oosp
