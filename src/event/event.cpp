#include "event/event.hpp"

#include <ostream>

#include "common/contracts.hpp"

namespace oosp {

const Value& Event::attr(std::size_t slot) const {
  OOSP_REQUIRE(slot < attrs.size(), "attribute slot out of range");
  return attrs[slot];
}

std::ostream& operator<<(std::ostream& os, const Event& e) {
  os << "Event{type=" << e.type << ", id=" << e.id << ", ts=" << e.ts
     << ", arrival=" << e.arrival << ", attrs=[";
  for (std::size_t i = 0; i < e.attrs.size(); ++i) {
    if (i) os << ", ";
    os << e.attrs[i];
  }
  return os << "]}";
}

EventBuilder::EventBuilder(const TypeRegistry& registry, std::string_view type_name)
    : registry_(registry) {
  const TypeId id = registry.lookup(type_name);
  OOSP_REQUIRE(id != kInvalidType, "unknown event type: " + std::string(type_name));
  event_.type = id;
  const Schema& schema = registry.schema(id);
  event_.attrs.resize(schema.field_count());
  filled_.assign(schema.field_count(), false);
}

EventBuilder& EventBuilder::set(std::string_view field, Value v) {
  const Schema& schema = registry_.schema(event_.type);
  const std::size_t slot = schema.slot(field);
  OOSP_REQUIRE(slot != Schema::npos, "unknown field: " + std::string(field));
  OOSP_REQUIRE(v.type() == schema.field(slot).type,
               "type mismatch for field: " + std::string(field));
  event_.attrs[slot] = std::move(v);
  filled_[slot] = true;
  return *this;
}

Event EventBuilder::build() const {
  const Schema& schema = registry_.schema(event_.type);
  for (std::size_t i = 0; i < filled_.size(); ++i)
    OOSP_REQUIRE(filled_[i], "field not set: " + schema.field(i).name);
  return event_;
}

}  // namespace oosp
