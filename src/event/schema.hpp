// Event type schemas and the registry mapping type names to dense ids.
//
// Every event type declares a fixed, ordered set of typed attributes. The
// query analyzer resolves `binding.attr` references to (TypeId, slot)
// pairs against this registry, so the execution engines only ever index
// attribute vectors by position.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/interner.hpp"
#include "event/value.hpp"

namespace oosp {

using TypeId = Interner::Id;
constexpr TypeId kInvalidType = Interner::kInvalid;

struct Field {
  std::string name;
  ValueType type;
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  // Slot index for `name`, or npos.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t slot(std::string_view name) const noexcept;

  const Field& field(std::size_t slot) const;
  std::size_t field_count() const noexcept { return fields_.size(); }
  const std::vector<Field>& fields() const noexcept { return fields_; }

 private:
  std::vector<Field> fields_;
};

// Registry of event types known to one processing context. Not
// thread-safe; a registry belongs to a single pipeline.
class TypeRegistry {
 public:
  // Registers (or re-finds) a type. Re-registering with a different
  // schema is a precondition violation.
  TypeId register_type(std::string_view name, Schema schema);

  // Registers a type with an empty schema.
  TypeId register_type(std::string_view name) { return register_type(name, Schema{}); }

  TypeId lookup(std::string_view name) const noexcept { return names_.lookup(name); }
  bool contains(std::string_view name) const noexcept {
    return lookup(name) != kInvalidType;
  }

  const std::string& name(TypeId id) const { return names_.name(id); }
  const Schema& schema(TypeId id) const;
  std::size_t size() const noexcept { return schemas_.size(); }

 private:
  Interner names_;
  std::vector<Schema> schemas_;
};

}  // namespace oosp
