#include "runtime/session.hpp"

#include <algorithm>
#include <cstdio>
#include <tuple>
#include <utility>

#include "common/contracts.hpp"

namespace oosp {

Session::Session(const TypeRegistry& registry, SessionConfig config,
                 std::shared_ptr<TaggedSink> sink)
    : registry_(registry), sink_(std::move(sink)) {
  OOSP_REQUIRE(sink_ != nullptr, "Session sink is null");
  OOSP_REQUIRE(!config.declarations_.empty(), "Session has no queries");

  if (config.metrics_) {
    metrics_ = std::make_unique<MetricsRegistry>();
    session_events_ = metrics_->counter("oosp_session_events_total");
    quarantine_drained_ = metrics_->counter("oosp_session_quarantine_drained_total");
  }

  specs_.reserve(config.declarations_.size());
  for (QuerySpec& decl : config.declarations_) {
    ShardQuerySpec spec;
    spec.query = compile_query_shared(decl.text, registry_);
    spec.kind = decl.kind.value_or(config.default_kind_);
    // AGG queries run only on the aggregation engine; the session-wide
    // default kind is a fallback, not a contradiction.
    if (spec.query->is_agg()) spec.kind = EngineKind::kAgg;
    spec.options = decl.options.value_or(config.default_options_);
    // Every engine (one per query per shard) registers its own slots;
    // the snapshot aggregates them back into one view.
    spec.options.metrics = metrics_.get();
    specs_.push_back(std::move(spec));
  }

  std::size_t shards = std::max<std::size_t>(1, config.shards_);
  std::optional<PartitionSpec> partition;
  if (shards > 1) {
    partition = PartitionSpec::build(specs_, registry_, &fallback_reason_);
    if (!partition) shards = 1;
  }

  if (shards > 1) {
    sharded_runner_ = std::make_unique<ShardedRunner>(
        registry_, specs_, shards, *partition, config.queue_capacity_,
        metrics_.get(), std::move(config.recovery_), config.share_scans_,
        std::move(config.overload_));
  } else {
    // Single-shard path collects into the same kind of sink a shard
    // uses, so finish() runs the identical canonical-order delivery.
    collect_ = std::make_shared<CollectingTaggedSink>();
    inline_runner_ = std::make_unique<MultiQueryRunner>(registry_, collect_,
                                                       config.share_scans_);
    for (const ShardQuerySpec& spec : specs_)
      inline_runner_->add_query(spec.query, spec.kind, spec.options);
    // Materialize the plan (and its metric slots) before returning —
    // add_query after construction is a contract violation anyway.
    inline_runner_->prepare();
  }

  if (config.report_every_.count() > 0)
    start_reporter(config.report_every_, std::move(config.report_to_));
}

Session::~Session() { stop_reporter(); }

void Session::push(const Event& e) {
  OOSP_REQUIRE(!finished_, "push after finish");
  ++events_seen_;
  if (session_events_) session_events_->inc();
  if (sharded_runner_) {
    sharded_runner_->on_event(e);
  } else {
    inline_runner_->on_event(e);
  }
}

void Session::push_batch(std::span<const Event> batch) {
  if (batch.empty()) return;
  OOSP_REQUIRE(!finished_, "push_batch after finish");
  events_seen_ += batch.size();
  if (session_events_) session_events_->inc(batch.size());
  if (sharded_runner_) {
    sharded_runner_->on_batch(batch);
  } else {
    inline_runner_->on_batch(batch);
  }
}

void Session::finish() {
  if (finished_) return;
  finished_ = true;

  // Join the reporter before touching end-of-stream state: the drain
  // below mutates quarantined_ and then bumps the drained counter, and a
  // reporter scrape landing between the two would publish a snapshot
  // where the quarantine totals disagree with each other.
  stop_reporter();

  std::vector<TaggedMatch> matches;
  std::vector<TaggedMatch> retractions;
  if (sharded_runner_) {
    sharded_runner_->finish();
    matches = sharded_runner_->take_output();
    retractions = sharded_runner_->take_retractions();
  } else {
    inline_runner_->finish();
    std::vector<std::vector<TaggedMatch>> one;
    one.push_back(collect_->take());
    matches = merge_match_streams(std::move(one));
    one.clear();
    one.push_back(collect_->take_retracted());
    retractions = merge_match_streams(std::move(one));
  }
  for (TaggedMatch& tm : matches) sink_->on_match(tm.query, std::move(tm.match));
  for (const TaggedMatch& tm : retractions) sink_->on_retract(tm.query, tm.match);

  // Drain quarantined late events (LatePolicy::kQuarantine) from every
  // engine now that the workers are joined; canonical (query, ts, id)
  // order makes the report identical across shard counts.
  if (sharded_runner_) {
    quarantined_ = sharded_runner_->drain_quarantine();
  } else {
    quarantined_ = inline_runner_->drain_quarantine();
  }
  std::sort(quarantined_.begin(), quarantined_.end(),
            [](const auto& a, const auto& b) {
              return std::tie(a.first, a.second.ts, a.second.id) <
                     std::tie(b.first, b.second.ts, b.second.id);
            });
  if (quarantine_drained_) quarantine_drained_->inc(quarantined_.size());
}

std::size_t Session::query_count() const noexcept { return specs_.size(); }

const CompiledQuery& Session::query(QueryId id) const { return *specs_.at(id).query; }

EngineStats Session::stats(QueryId id) const {
  if (sharded_runner_) return sharded_runner_->stats(id);
  return inline_runner_->stats(id);
}

EngineStats Session::total_stats() const {
  EngineStats merged;
  for (QueryId id = 0; id < query_count(); ++id) merged += stats(id);
  return merged;
}

std::size_t Session::shard_count() const noexcept {
  return sharded_runner_ ? sharded_runner_->shard_count() : 1;
}

void Session::close() {
  // call_once makes concurrent closes safe: one caller shuts down, the
  // rest block until it is done. If the shutdown throws (a dead worker's
  // exception surfacing from finish), the flag stays unset — but finish()
  // marked itself done before rethrowing, so a retrying close() runs an
  // orderly no-op pass instead of rethrowing forever.
  std::call_once(close_once_, [this] {
    stop_reporter();
    finish();
  });
}

std::size_t Session::restarts() const noexcept {
  return sharded_runner_ ? sharded_runner_->restarts_total() : 0;
}

std::uint64_t Session::replayed_events() const noexcept {
  return sharded_runner_ ? sharded_runner_->replayed_events_total() : 0;
}

std::size_t Session::dropped_shards() const noexcept {
  return sharded_runner_ ? sharded_runner_->degraded_accounting().dropped_shards : 0;
}

DegradedAccounting Session::degraded_accounting() const noexcept {
  return sharded_runner_ ? sharded_runner_->degraded_accounting() : DegradedAccounting{};
}

std::uint64_t Session::overload_shed() const noexcept {
  return sharded_runner_ ? sharded_runner_->shed_events_total() : 0;
}

std::uint64_t Session::overload_shed(QueryId id) const {
  OOSP_REQUIRE(id < specs_.size(), "query id out of range");
  return sharded_runner_ ? sharded_runner_->shed_events(id) : 0;
}

MetricsSnapshot Session::metrics_snapshot() const {
  OOSP_CHECK(metrics_ != nullptr, "metrics disabled for this session");
  return metrics_->snapshot();
}

std::string Session::metrics_text() const {
  OOSP_CHECK(metrics_ != nullptr, "metrics disabled for this session");
  return metrics_->scrape_text();
}

void Session::start_reporter(std::chrono::milliseconds interval,
                             std::function<void(const std::string&)> fn) {
  OOSP_CHECK(metrics_ != nullptr, "reporter requires metrics");
  if (!fn) {
    fn = [](const std::string& text) {
      std::fputs(text.c_str(), stderr);
      std::fflush(stderr);
    };
  }
  reporter_ = std::thread([this, interval, fn = std::move(fn)] {
    std::unique_lock<std::mutex> lock(reporter_mu_);
    for (;;) {
      if (reporter_cv_.wait_for(lock, interval, [this] { return reporter_stop_; }))
        return;
      // Scrape without the lock: a close() racing the scrape should not
      // wait behind registry aggregation.
      lock.unlock();
      fn(metrics_->scrape_text());
      lock.lock();
    }
  });
}

void Session::stop_reporter() {
  if (!reporter_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(reporter_mu_);
    reporter_stop_ = true;
  }
  reporter_cv_.notify_all();
  reporter_.join();
}

}  // namespace oosp
