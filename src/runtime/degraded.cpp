#include "runtime/degraded.hpp"

#include <algorithm>

#include "engine/oracle/oracle.hpp"

namespace oosp {

DegradedResult run_degraded(const CompiledQuery& query,
                            std::span<const Event> clean_ordered,
                            FaultInjector& faults, const DriverConfig& config) {
  std::vector<Event> arrivals =
      faults.apply(std::vector<Event>(clean_ordered.begin(), clean_ordered.end()));

  DriverConfig cfg = config;
  cfg.collect_matches = true;

  DegradedResult result;
  result.run = run_stream(query, arrivals, cfg);
  result.faults = faults.stats();

  const std::vector<MatchKey> expected = oracle_keys(query, clean_ordered);
  std::vector<MatchKey> produced;
  produced.reserve(result.run.collected.size());
  for (const Match& m : result.run.collected) produced.push_back(match_key(m));
  std::sort(produced.begin(), produced.end());
  result.verify = compare_keys(expected, produced);
  return result;
}

}  // namespace oosp
