// Experiment driver: feeds an arrival sequence through an engine, timing
// the run and aggregating per-result detection delays. All benchmark
// binaries and integration tests go through this single code path so
// every engine is measured identically.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "engine/core/stats.hpp"
#include "engine/engines.hpp"
#include "event/event.hpp"

namespace oosp {

struct DriverConfig {
  EngineKind kind = EngineKind::kOoo;
  EngineOptions options;
  // Keep full match bodies (tests/verification); otherwise only delay
  // statistics are aggregated.
  bool collect_matches = false;
  // Drain the engine's quarantine (LatePolicy::kQuarantine) into
  // RunResult::quarantined before the engine is destroyed.
  bool collect_quarantine = false;
};

struct RunResult {
  std::string engine_name;
  EngineStats stats;
  double wall_seconds = 0.0;
  double events_per_second = 0.0;
  std::uint64_t matches = 0;
  std::uint64_t retractions = 0;  // aggressive policy only

  // Detection delay (stream-time, see Match::detection_delay) per match.
  StatAccumulator delay;

  std::vector<Match> collected;            // filled when collect_matches
  std::vector<Match> collected_retractions;  // filled when collect_matches
  std::vector<Event> quarantined;          // filled when collect_quarantine
};

RunResult run_stream(const CompiledQuery& query, std::span<const Event> arrivals,
                     const DriverConfig& config);

}  // namespace oosp
