#include "runtime/planner.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace oosp {
namespace {

// Options whose divergence would make a shared admission / clock / purge
// pipeline behave differently from each member's own engine. Members of
// one group must agree on all of them; the remaining options either
// cannot appear in a group (adaptive_slack, cache_rip, trace — excluded
// below) or have no effect on pure-positive queries (aggressive_negation,
// obs_arrival_side is a wrapper-only concern).
bool options_group_equal(const EngineOptions& a, const EngineOptions& b) {
  return a.slack == b.slack && a.late_policy == b.late_policy &&
         a.quarantine_capacity == b.quarantine_capacity &&
         a.dedup_by_id == b.dedup_by_id && a.registry == b.registry &&
         a.purge_period == b.purge_period &&
         a.partition_by_key == b.partition_by_key && a.metrics == b.metrics;
}

// Mirrors OooEngine's own partitioning decision so the shared scan
// shards by key exactly when each member engine would have.
bool effectively_partitioned(const ScanPlanEntry& e) {
  const CompiledQuery& q = *e.query;
  return e.options.partition_by_key && q.partitionable() &&
         std::none_of(q.partition_slots().begin(), q.partition_slots().end(),
                      [](std::size_t s) { return s == CompiledStep::npos; });
}

}  // namespace

std::string shared_scan_exclusion(const ScanPlanEntry& e) {
  OOSP_REQUIRE(e.query != nullptr, "planner: null query");
  const CompiledQuery& q = *e.query;
  if (q.is_agg())
    return "aggregation queries keep dedicated window state";
  if (e.kind != EngineKind::kOoo)
    return "engine kind is not the native OOO engine";
  if (q.positive_steps().size() != q.num_steps())
    return "negated steps need per-query sealing state";
  // The group clock observes the UNION of member types, so it can run
  // ahead of what a member's own engine would have seen — harmless under
  // kAdmit (lateness only moves counters), but kDrop/kQuarantine turn
  // the lateness verdict into a semantic decision that must match the
  // per-query engine's bit for bit.
  if (e.options.late_policy != LatePolicy::kAdmit)
    return "dropping or quarantining late events depends on the per-query clock";
  if (e.options.adaptive_slack)
    return "adaptive slack retunes the effective K per engine";
  if (e.options.cache_rip) return "cached RIPs encode per-query chain structure";
  if (e.options.trace) return "trace hooks observe per-engine lifecycles";
  if (effectively_partitioned(e)) {
    for (const TypeId t : q.positive_type_chain())
      if (q.uniform_partition_slot(t) == CompiledStep::npos)
        return "one event type keys on two different attributes";
  }
  return {};
}

ScanPlan plan_shared_scan(std::span<const ScanPlanEntry> entries, bool enabled) {
  struct Building {
    ScanGroupPlan plan;
    const ScanPlanEntry* leader = nullptr;
    std::vector<TypeId> prefix;  // running common positive-type prefix
  };

  ScanPlan out;
  std::vector<Building> open;

  const auto slot_of = [](const Building& b, TypeId t) -> std::size_t {
    return t < b.plan.type_slot.size() ? b.plan.type_slot[t]
                                       : CompiledStep::npos;
  };
  const auto absorb = [](Building& b, const CompiledQuery& q,
                         const std::vector<TypeId>& chain) {
    for (const TypeId t : chain) {
      if (std::find(b.plan.types.begin(), b.plan.types.end(), t) ==
          b.plan.types.end())
        b.plan.types.push_back(t);
      if (b.plan.partitioned) {
        if (t >= b.plan.type_slot.size())
          b.plan.type_slot.resize(t + 1, CompiledStep::npos);
        b.plan.type_slot[t] = q.uniform_partition_slot(t);
      }
    }
  };

  for (QueryId id = 0; id < entries.size(); ++id) {
    const ScanPlanEntry& e = entries[id];
    if (!enabled || !shared_scan_exclusion(e).empty()) {
      out.solo.push_back(id);
      continue;
    }
    const CompiledQuery& q = *e.query;
    const std::vector<TypeId> chain = q.positive_type_chain();
    const bool partitioned = effectively_partitioned(e);

    bool placed = false;
    for (Building& b : open) {
      if (!options_group_equal(e.options, b.leader->options)) continue;
      if (b.plan.partitioned != partitioned) continue;
      // Sharing pays off only when the scans actually overlap: require a
      // common SEQ prefix of at least the first step.
      if (b.prefix.empty() || b.prefix.front() != chain.front()) continue;
      if (partitioned) {
        // Overlapping types must agree on the key attribute — the group
        // keeps ONE stack per (type, key shard).
        bool agree = true;
        for (const TypeId t : chain) {
          const std::size_t theirs = slot_of(b, t);
          if (theirs != CompiledStep::npos &&
              theirs != q.uniform_partition_slot(t)) {
            agree = false;
            break;
          }
        }
        if (!agree) continue;
      }
      b.plan.members.push_back(id);
      absorb(b, q, chain);
      std::size_t lcp = 0;
      while (lcp < b.prefix.size() && lcp < chain.size() &&
             b.prefix[lcp] == chain[lcp])
        ++lcp;
      b.prefix.resize(lcp);
      placed = true;
      break;
    }
    if (!placed) {
      Building b;
      b.leader = &e;
      b.prefix = chain;
      b.plan.partitioned = partitioned;
      b.plan.members.push_back(id);
      absorb(b, q, chain);
      open.push_back(std::move(b));
    }
  }

  for (Building& b : open) {
    if (b.plan.members.size() < 2) {
      // A group of one would just be a worse per-query engine.
      out.solo.push_back(b.plan.members.front());
      continue;
    }
    std::sort(b.plan.types.begin(), b.plan.types.end());
    b.plan.shared_prefix_len = b.prefix.size();
    out.groups.push_back(std::move(b.plan));
  }
  std::sort(out.solo.begin(), out.solo.end());
  return out;
}

}  // namespace oosp
