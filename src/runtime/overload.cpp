#include "runtime/overload.hpp"

#include <algorithm>
#include <limits>

namespace oosp {

std::string_view to_string(OverloadPolicy p) noexcept {
  switch (p) {
    case OverloadPolicy::kBlock: return "block";
    case OverloadPolicy::kShedNewest: return "shed-newest";
    case OverloadPolicy::kShedByLateness: return "shed-by-lateness";
    case OverloadPolicy::kFail: return "fail";
  }
  return "?";
}

std::string_view to_string(Pressure p) noexcept {
  switch (p) {
    case Pressure::kOk: return "ok";
    case Pressure::kWarn: return "warn";
    case Pressure::kShed: return "shed";
  }
  return "?";
}

namespace {

std::size_t depth_threshold(double fraction, std::size_t capacity) {
  const double clamped = std::min(1.0, std::max(0.0, fraction));
  return static_cast<std::size_t>(clamped * static_cast<double>(capacity));
}

}  // namespace

OverloadMonitor::OverloadMonitor(const OverloadConfig& config,
                                 std::size_t queue_capacity, MetricsRegistry* metrics)
    : config_(config),
      capacity_(queue_capacity),
      warn_depth_(depth_threshold(config.warn_fraction, queue_capacity)),
      shed_depth_(depth_threshold(config.shed_fraction, queue_capacity)),
      lateness_(config.estimator) {
  // A full ring is kShed regardless of how permissive the fractions are.
  warn_depth_ = std::min(warn_depth_, capacity_);
  shed_depth_ = std::min(std::max(shed_depth_, warn_depth_), capacity_);
  if (metrics) {
    pressure_ = metrics->gauge("oosp_overload_pressure", GaugeAgg::kMax,
                               "graded overload pressure (0=ok 1=warn 2=shed)");
    cut_obs_ = metrics->gauge("oosp_overload_lateness_cut", GaugeAgg::kMax,
                              "current shed-by-lateness cut in stream time");
    shed_ = metrics->counter("oosp_overload_shed_total",
                             "events shed at admission by overload control");
    shed_forced_ = metrics->counter(
        "oosp_overload_shed_forced_total",
        "below-cut events shed after the bounded wait expired");
  }
}

void OverloadMonitor::observe(Timestamp lateness) {
  lateness_.observe(lateness);
  const std::size_t period = std::max<std::size_t>(1, config_.estimator.refresh_period);
  if (++since_refresh_ >= period) {
    since_refresh_ = 0;
    refresh_cut();
  }
}

void OverloadMonitor::refresh_cut() {
  // The scale the lag factors multiply: the median lateness of recent
  // arrivals, floored at 1 so in-order streams still get a meaningful
  // lag threshold.
  scale_ = std::max<Timestamp>(1, lateness_.quantile(0.5));
  const Timestamp target = std::max<Timestamp>(1, lateness_.quantile(config_.shed_quantile));
  // AIMD recovery: while pressure stays benign, relax the cut toward the
  // quantile target (halved cuts from forced sheds decay back). Under
  // pressure the cut only tightens — forced sheds drive it down.
  if (last_ == Pressure::kOk) {
    // Doubling guard: past target/2 the next double would overshoot (or,
    // from the kMaxTimestamp start, overflow) — snap to the target.
    cut_ = cut_ >= target / 2 ? target : cut_ * 2 + 1;
  } else {
    cut_ = std::min(cut_, target);
  }
  if (cut_obs_) cut_obs_->set(static_cast<std::int64_t>(std::min<Timestamp>(
      cut_, std::numeric_limits<std::int64_t>::max())));
}

Pressure OverloadMonitor::assess(std::size_t depth, Timestamp lag) {
  Pressure p = Pressure::kOk;
  if (depth >= capacity_ || depth >= shed_depth_) {
    p = Pressure::kShed;
  } else if (depth >= warn_depth_) {
    p = Pressure::kWarn;
  }
  // Watermark lag escalates independently: a slow consumer shows here
  // before its queue fills (the producer outruns it in stream time).
  if (lag > 0 && p != Pressure::kShed) {
    const double scaled = static_cast<double>(lag) / static_cast<double>(scale_);
    if (scaled >= config_.lag_shed_factor) {
      p = Pressure::kShed;
    } else if (scaled >= config_.lag_warn_factor && p == Pressure::kOk) {
      p = Pressure::kWarn;
    }
  }
  last_ = p;
  if (pressure_) pressure_->set(static_cast<std::int64_t>(p));
  return p;
}

void OverloadMonitor::note_forced_shed() {
  cut_ = std::max<Timestamp>(1, cut_ / 2);
  if (cut_obs_) cut_obs_->set(static_cast<std::int64_t>(cut_));
}

}  // namespace oosp
