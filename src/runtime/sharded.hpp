// Sharded parallel execution: partition-by-key scale-out of the
// multi-query runtime across worker threads.
//
// The model follows the standard recipe for ordered stream workloads
// ("Scaling Ordered Stream Processing on Shared-Memory Multicores",
// Prasaad et al.): hash-partition arriving events by the queries'
// equi-join key across N shards, run a full single-threaded engine set
// per shard, and deterministically merge the emitted matches afterwards.
//
//   producer thread                      worker threads (one per shard)
//   ───────────────                      ─────────────────────────────
//   on_event(e):
//     slot  = PartitionSpec[e.type]
//     shard = hash(e.attr(slot)) % N  ─► SPSC queue ─► MultiQueryRunner
//                                         (own engines, own clocks,
//                                          own stats, no shared state)
//   finish(): stop+join ───────────────► per-shard runner.finish()
//     then: ordered merge of all shards' collected matches.
//
// Why per-shard execution is exact: a shardable query set forces every
// event type onto ONE partition attribute (see PartitionSpec), so any
// two events that could ever appear in the same match carry the same
// key and land in the same shard. Events of other keys only ever
// affected an engine through its CLOCK (purge horizons, negation
// sealing); a shard clock that lags the global clock delays purging and
// sealing — both conservative — and finish() seals everything, so the
// final match multiset is bit-identical to a single-threaded run.
//
// Output determinism: matches are merged in the canonical order
// (seal_ts, query, match_key), where seal_ts is the match's final
// (largest) bound timestamp — an intrinsic property of the match, not
// of emission timing. Any shard count, including 1, therefore yields
// the same ordered output sequence.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/spsc_queue.hpp"
#include "obs/metrics.hpp"
#include "runtime/multi_query.hpp"

namespace oosp {

// One query as registered with the sharded runtime: compiled once,
// shared read-only by every shard's engine instance.
struct ShardQuerySpec {
  std::shared_ptr<const CompiledQuery> query;
  EngineKind kind = EngineKind::kOoo;
  EngineOptions options;
};

// Per-event-type routing decision for a query set. Built once up front;
// construction FAILS (returns nullopt with a reason) when the query set
// cannot be sharded safely:
//   * a query without a full equi-join key (not partitionable), or with
//     a negated step outside the key's equality class — its events
//     would need to be visible to every key's candidates;
//   * two queries keying the same event type on different attributes —
//     no single hash routes the type correctly for both.
// Callers (Session) fall back to single-shard execution in that case.
class PartitionSpec {
 public:
  static constexpr std::size_t kTickOnly = static_cast<std::size_t>(-1);

  static std::optional<PartitionSpec> build(std::span<const ShardQuerySpec> specs,
                                            const TypeRegistry& registry,
                                            std::string* reject_reason = nullptr);

  // Attribute slot whose value partitions events of type `t`, or
  // kTickOnly when the type is relevant to no query (such events only
  // advance clocks and are broadcast to every shard).
  std::size_t slot_for(TypeId t) const noexcept {
    return t < slots_.size() ? slots_[t] : kTickOnly;
  }

 private:
  std::vector<std::size_t> slots_;  // by TypeId
};

// Canonical cross-shard output order: (seal_ts = match.last_ts(),
// query id, match key). Returns the concatenation of `streams` sorted
// into that order; used for matches and retractions alike.
std::vector<TaggedMatch> merge_match_streams(std::vector<std::vector<TaggedMatch>> streams);

class ShardedRunner {
 public:
  // `registry` must outlive the runner (and `metrics`, when given).
  // Engines are constructed in the calling thread; workers start
  // immediately and wait on their queues.
  ShardedRunner(const TypeRegistry& registry, std::vector<ShardQuerySpec> specs,
                std::size_t num_shards, PartitionSpec partition,
                std::size_t queue_capacity = 64 * 1024,
                MetricsRegistry* metrics = nullptr);
  ~ShardedRunner();

  ShardedRunner(const ShardedRunner&) = delete;
  ShardedRunner& operator=(const ShardedRunner&) = delete;

  // Producer side; single-threaded. Blocks (yielding) while the target
  // shard's queue is full — backpressure preserves arrival order. If the
  // target worker has died (its engine threw), rethrows that worker's
  // exception instead of spinning on a queue nobody will ever drain.
  void on_event(const Event& e);

  // Drains the queues, joins the workers, runs per-shard finish().
  // Idempotent. After it returns, the accessors below are valid. If any
  // worker died on an exception, the first shard's error (by shard
  // index) is rethrown here — after every thread has been joined, so
  // the runner is still destructible and the survivors' results remain
  // readable.
  void finish();

  // Merged matches / retractions in canonical order. Call once each.
  std::vector<TaggedMatch> take_output();
  std::vector<TaggedMatch> take_retractions();

  // Cross-shard aggregate (EngineStats::operator+=).
  EngineStats stats(QueryId id) const;

  std::size_t shard_count() const noexcept { return shards_.size(); }
  std::size_t query_count() const noexcept { return specs_.size(); }
  const CompiledQuery& query(QueryId id) const { return *specs_.at(id).query; }
  std::uint64_t events_seen() const noexcept { return events_seen_; }
  std::uint64_t events_routed() const;  // after finish()

  // True once any worker has died on an exception (before finish()).
  bool worker_failed() const noexcept;

 private:
  struct Shard {
    std::unique_ptr<SpscQueue<Event>> queue;
    std::shared_ptr<CollectingTaggedSink> sink;
    std::unique_ptr<MultiQueryRunner> runner;
    std::thread worker;
    std::atomic<bool> stop{false};
    // Liveness: set (release) by the worker when its loop dies on an
    // exception; the producer's backpressure spin and finish() check it
    // (acquire) and rethrow `error` instead of waiting forever on a
    // queue nobody will drain. `error` is written before the release
    // store and only read after an acquire load observes dead == true.
    std::atomic<bool> dead{false};
    std::exception_ptr error;
    // Written by the worker after its final finish(), read by the
    // producer after join() — the join is the synchronization point.
    std::vector<EngineStats> final_stats;
    // Per-shard observability slots (null when metrics are disabled).
    Gauge* queue_depth = nullptr;      // ingress occupancy, scrape keeps max
    Gauge* watermark_lag = nullptr;    // global clock − event ts at dequeue
    Gauge* merge_occupancy = nullptr;  // matches parked awaiting the merge
  };

  void worker_loop(Shard& shard);
  void push_blocking(Shard& shard, Event e);
  [[noreturn]] void rethrow_worker_error(const Shard& shard);

  const TypeRegistry& registry_;
  std::vector<ShardQuerySpec> specs_;
  PartitionSpec partition_;
  std::vector<std::unique_ptr<Shard>> shards_;
  ValueHasher hasher_;
  bool finished_ = false;
  // A dead worker's exception has already been rethrown to the caller
  // (from a push or from finish); finish() then stays quiet so teardown
  // after a caught failure is orderly. Producer-thread only.
  bool error_surfaced_ = false;
  std::uint64_t events_seen_ = 0;
  // Producer-maintained high-water mark of routed event timestamps; the
  // workers read it (relaxed) to report how far each lags the stream.
  std::atomic<Timestamp> global_clock_{kMinTimestamp};
  // Runner-level observability slots (null when metrics are disabled).
  Counter* push_retries_ = nullptr;     // producer spins on a full queue
  Counter* worker_failures_ = nullptr;  // workers killed by an exception
  Counter* broadcasts_ = nullptr;       // tick-only events sent to every shard
};

}  // namespace oosp
