// Sharded parallel execution: partition-by-key scale-out of the
// multi-query runtime across worker threads.
//
// The model follows the standard recipe for ordered stream workloads
// ("Scaling Ordered Stream Processing on Shared-Memory Multicores",
// Prasaad et al.): hash-partition arriving events by the queries'
// equi-join key across N shards, run a full single-threaded engine set
// per shard, and deterministically merge the emitted matches afterwards.
//
//   producer thread                      worker threads (one per shard)
//   ───────────────                      ─────────────────────────────
//   on_event(e):
//     slot  = PartitionSpec[e.type]
//     shard = hash(e.attr(slot)) % N  ─► SPSC queue ─► MultiQueryRunner
//                                         (own engines, own clocks,
//                                          own stats, no shared state)
//   finish(): stop+join ───────────────► per-shard runner.finish()
//     then: ordered merge of all shards' collected matches.
//
// Why per-shard execution is exact: a shardable query set forces every
// event type onto ONE partition attribute (see PartitionSpec), so any
// two events that could ever appear in the same match carry the same
// key and land in the same shard. Events of other keys only ever
// affected an engine through its CLOCK (purge horizons, negation
// sealing); a shard clock that lags the global clock delays purging and
// sealing — both conservative — and finish() seals everything, so the
// final match multiset is bit-identical to a single-threaded run.
//
// Output determinism: matches are merged in the canonical order
// (seal_ts, query, match_key), where seal_ts is the match's final
// (largest) bound timestamp — an intrinsic property of the match, not
// of emission timing. Any shard count, including 1, therefore yields
// the same ordered output sequence.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/spsc_queue.hpp"
#include "obs/metrics.hpp"
#include "runtime/degraded.hpp"
#include "runtime/multi_query.hpp"
#include "runtime/overload.hpp"
#include "stream/faults.hpp"

namespace oosp {

// One query as registered with the sharded runtime: compiled once,
// shared read-only by every shard's engine instance.
struct ShardQuerySpec {
  std::shared_ptr<const CompiledQuery> query;
  EngineKind kind = EngineKind::kOoo;
  EngineOptions options;
};

// Per-event-type routing decision for a query set. Built once up front;
// construction FAILS (returns nullopt with a reason) when the query set
// cannot be sharded safely:
//   * a query without a full equi-join key (not partitionable), or with
//     a negated step outside the key's equality class — its events
//     would need to be visible to every key's candidates;
//   * two queries keying the same event type on different attributes —
//     no single hash routes the type correctly for both.
// Callers (Session) fall back to single-shard execution in that case.
class PartitionSpec {
 public:
  static constexpr std::size_t kTickOnly = static_cast<std::size_t>(-1);

  static std::optional<PartitionSpec> build(std::span<const ShardQuerySpec> specs,
                                            const TypeRegistry& registry,
                                            std::string* reject_reason = nullptr);

  // Attribute slot whose value partitions events of type `t`, or
  // kTickOnly when the type is relevant to no query (such events only
  // advance clocks and are broadcast to every shard).
  std::size_t slot_for(TypeId t) const noexcept {
    return t < slots_.size() ? slots_[t] : kTickOnly;
  }

 private:
  std::vector<std::size_t> slots_;  // by TypeId
};

// What to do with a shard whose worker keeps dying after its restart
// budget is spent.
enum class RestartPolicy : std::uint8_t {
  // Rethrow the worker's exception to the producer — the PR 3 fail-fast
  // behavior, now reached only after every restart was exhausted.
  kFail,
  // Drop the shard and complete the run without it. Its checkpoint-stable
  // matches are kept; everything since the last checkpoint is lost with
  // accounting (DegradedAccounting). The other shards are untouched.
  kDegradeDropShard,
};

std::string_view to_string(RestartPolicy p) noexcept;

// Crash-recovery policy for the sharded runtime. checkpoint_every == 0
// disables supervision entirely: a dead worker fails the session fast,
// exactly as before this subsystem existed.
struct RecoveryConfig {
  // Per-shard checkpoint cadence in CONSUMED events. Each checkpoint
  // serializes the shard's full engine state (runtime/checkpoint.hpp) and
  // drains its emitted matches into supervisor-held stable storage; the
  // upstream-backup ring is trimmed to the checkpoint, so this knob
  // bounds both replay work and backup memory. 0 = recovery off.
  std::size_t checkpoint_every = 0;
  // Restart budget per shard (lifetime, not consecutive).
  std::size_t max_restarts = 3;
  // Backoff before restart attempt n (1-based): backoff << (n-1), capped
  // at max_backoff.
  std::chrono::milliseconds backoff{5};
  std::chrono::milliseconds max_backoff{1000};
  RestartPolicy on_exhausted = RestartPolicy::kFail;
  // Fault injection: consulted immediately before each event is
  // processed — by the live worker loop AND by recovery replay, which
  // runs the same processing path; true = throw WorkerKilled there. A
  // deterministic poison event therefore keeps killing until the restart
  // budget is spent, while transient faults (stream/faults.hpp
  // WorkerKillFault::hook() fires once per victim) kill at most one
  // attempt each and recovery converges.
  WorkerKillHook kill_hook;
  // Fault injection: slow-consumer throttle, invoked for every event a
  // worker is about to process (live loop and recovery replay alike).
  // Like kill_hook it is consulted regardless of enabled() — it injects
  // a consumer-side fault, not a recovery behavior.
  WorkerDelayHook delay_hook;

  bool enabled() const noexcept { return checkpoint_every > 0; }
};

// Canonical cross-shard output order: (seal_ts = match.last_ts(),
// query id, match key). Returns the concatenation of `streams` sorted
// into that order; used for matches and retractions alike.
std::vector<TaggedMatch> merge_match_streams(std::vector<std::vector<TaggedMatch>> streams);

class ShardedRunner {
 public:
  // `registry` must outlive the runner (and `metrics`, when given).
  // Engines are constructed in the calling thread (each shard runner's
  // plan is prepared before any worker starts, so metric-slot
  // registration never races the workers); workers start immediately and
  // wait on their queues. `share_scans` gates the per-shard shared-scan
  // grouping pass (see runtime/planner.hpp).
  ShardedRunner(const TypeRegistry& registry, std::vector<ShardQuerySpec> specs,
                std::size_t num_shards, PartitionSpec partition,
                std::size_t queue_capacity = 64 * 1024,
                MetricsRegistry* metrics = nullptr, RecoveryConfig recovery = {},
                bool share_scans = true, OverloadConfig overload = {});
  ~ShardedRunner();

  ShardedRunner(const ShardedRunner&) = delete;
  ShardedRunner& operator=(const ShardedRunner&) = delete;

  // Producer side; single-threaded. Under OverloadPolicy::kBlock (the
  // default) blocks (pause/yield backoff) while the target shard's
  // queue is full — backpressure preserves arrival order. The other
  // policies bound that wait by shedding at admission or throwing
  // OverloadError (runtime/overload.hpp). If the target worker has died
  // (its engine threw), rethrows that worker's exception instead of
  // spinning on a queue nobody will ever drain.
  void on_event(const Event& e);

  // Producer side, batched: partitions the whole slice up front, then
  // moves each shard's sub-batch into its ring with bulk try_push_n
  // transactions (one acquire/release pair per round instead of per
  // event). Workers still process per event, so engine-visible order and
  // checkpoint cadence are untouched. With recovery enabled this falls
  // back to per-event routing: backup-before-push admission is a
  // per-event invariant — staging a whole batch into the backup before a
  // mid-push worker death would both replay it and push the remainder,
  // duplicating events.
  void on_batch(std::span<const Event> batch);

  // Drains the queues, joins the workers, runs per-shard finish().
  // Idempotent. After it returns, the accessors below are valid. If any
  // worker died on an exception, the first shard's error (by shard
  // index) is rethrown here — after every thread has been joined, so
  // the runner is still destructible and the survivors' results remain
  // readable.
  void finish();

  // Merged matches / retractions in canonical order. Call once each.
  std::vector<TaggedMatch> take_output();
  std::vector<TaggedMatch> take_retractions();

  // Cross-shard aggregate (EngineStats::operator+=).
  EngineStats stats(QueryId id) const;

  // After finish(): union of every shard's quarantined late events
  // (LatePolicy::kQuarantine), tagged with the owning query id. Shard
  // concatenation order; callers wanting a canonical order sort by
  // (query, ts, id). Quarantine state rides in checkpoints, so a
  // recovered shard reports exactly the events an uninterrupted run
  // would have.
  std::vector<std::pair<QueryId, Event>> drain_quarantine();

  std::size_t shard_count() const noexcept { return shards_.size(); }
  std::size_t query_count() const noexcept { return specs_.size(); }
  const CompiledQuery& query(QueryId id) const { return *specs_.at(id).query; }
  std::uint64_t events_seen() const noexcept { return events_seen_; }
  std::uint64_t events_routed() const;  // after finish()

  // True once any worker has died on an exception (before finish()).
  bool worker_failed() const noexcept;

  // Supervision accounting (producer thread; exact after finish()).
  std::size_t restarts_total() const noexcept;
  std::uint64_t replayed_events_total() const noexcept { return replayed_events_; }
  DegradedAccounting degraded_accounting() const noexcept;

  // Overload accounting (producer thread; exact after finish()). The
  // per-query view attributes each shed event to every query whose
  // pattern references its type — the queries whose input actually
  // thinned; broadcast (tick-only) sheds are counted in the total only.
  std::uint64_t shed_events_total() const noexcept { return degraded_.shed_events; }
  std::uint64_t shed_events(QueryId id) const { return shed_by_query_.at(id); }

 private:
  struct Shard {
    std::size_t index = 0;  // position in shards_ (stable; set once)
    std::unique_ptr<SpscQueue<Event>> queue;
    std::shared_ptr<CollectingTaggedSink> sink;
    std::unique_ptr<MultiQueryRunner> runner;
    std::thread worker;
    std::atomic<bool> stop{false};
    // Liveness: set (release) by the worker when its loop dies on an
    // exception; the producer's backpressure spin and finish() check it
    // (acquire) and rethrow `error` instead of waiting forever on a
    // queue nobody will drain. `error` is written before the release
    // store and only read after an acquire load observes dead == true.
    std::atomic<bool> dead{false};
    std::exception_ptr error;
    // Written by the worker after its final finish(), read by the
    // producer after join() — the join is the synchronization point.
    std::vector<EngineStats> final_stats;
    // Per-shard observability slots (null when metrics are disabled).
    Gauge* queue_depth = nullptr;      // ingress occupancy, scrape keeps max
    Gauge* watermark_lag = nullptr;    // global clock − event ts at dequeue
    Gauge* merge_occupancy = nullptr;  // matches parked awaiting the merge

    // High-water mark of consumed event timestamps, published (relaxed)
    // by the worker per pop batch; the producer's overload monitor reads
    // it to grade watermark lag. Advisory — never used for correctness.
    std::atomic<Timestamp> consumed_clock{kMinTimestamp};
    // Overload pressure assessment (producer-owned; null at kBlock).
    std::unique_ptr<OverloadMonitor> monitor;

    // ---- Supervision state; all of it idle when recovery is disabled.
    //
    // Producer-owned upstream backup: every event admitted to this shard
    // whose processing is not yet covered by a checkpoint. Entry i (since
    // `trimmed` were popped) is the (trimmed+i)-th event ever pushed;
    // trimming follows the worker's published checkpoint watermark.
    std::deque<Event> backup;
    std::uint64_t pushed = 0;   // events ever admitted (producer-owned)
    std::uint64_t trimmed = 0;  // backup entries retired to a checkpoint
    std::size_t restarts = 0;   // lifetime restart count (producer-owned)
    bool dropped = false;       // kDegradeDropShard spent the budget
    std::uint64_t dropped_events = 0;

    // Worker-published checkpoint: bytes + everything the shard emitted
    // up to that point, moved to "stable" storage so a later incarnation
    // can be discarded wholesale without losing or duplicating output.
    // The mutex orders worker publication against producer recovery;
    // `ckpt_consumed` additionally lets the producer trim the backup
    // without taking the lock on the hot path (stored release AFTER the
    // locked section, so a trim never outruns the bytes it relies on).
    std::mutex ckpt_mu;
    std::vector<std::uint8_t> ckpt_bytes;    // empty = no checkpoint yet
    std::uint64_t ckpt_consumed_locked = 0;  // consumed count the bytes describe
    std::vector<TaggedMatch> stable_matches;
    std::vector<TaggedMatch> stable_retractions;
    std::atomic<std::uint64_t> ckpt_consumed{0};

    // Events processed by the current incarnation's runner. Owned by the
    // live worker; ownership passes to the producer at join() and back at
    // respawn.
    std::uint64_t consumed = 0;
  };

  void worker_loop(Shard& shard);
  void push_blocking(Shard& shard, Event e);
  void route_event(const Event& e);
  // Moves all of `events` into the shard's ring, blocking with backoff
  // when full (kBlock) or per the overload policy; recovery is disabled
  // on this path (see on_batch).
  void push_batch_blocking(Shard& shard, std::vector<Event>& events);
  [[noreturn]] void rethrow_worker_error(const Shard& shard);

  // ---- Overload control (producer thread; see runtime/overload.hpp).
  //
  // Admission decision for one arrival: observes its lateness, grades
  // pressure, and applies the policy. Returns true when the event was
  // SHED (accounted; the caller must not admit it), false when it may
  // proceed to the backup/queue — with queue room guaranteed for the
  // shedding policies, so the subsequent push cannot spin unboundedly.
  // kFail throws OverloadError past its deadline.
  bool overload_admit(Shard& shard, const Event& e);
  // Spins (with backoff) until the ring has room or `deadline` passes;
  // returns false on deadline. A dead worker aborts the wait with true —
  // the caller falls through to the blocking push, whose dead-worker
  // handling (rethrow / supervise) is the single source of truth.
  bool wait_for_room(Shard& shard, std::chrono::steady_clock::duration deadline);
  // Books one shed event: DegradedAccounting, per-query attribution,
  // and the shard monitor's metric slots.
  void account_shed(Shard& shard, const Event& e, bool forced);

  // Supervision internals (recovery enabled only).
  void checkpoint_shard(Shard& shard);          // worker thread (or producer mid-recovery)
  void trim_backup(Shard& shard);               // producer thread
  void admit_to_backup(Shard& shard, const Event& e);  // producer thread
  // Join the dead worker, restore + replay with bounded retries, respawn.
  // Returns false when the shard was dropped (kDegradeDropShard);
  // rethrows the worker error on kFail exhaustion (or recovery disabled).
  bool supervise_dead_shard(Shard& shard);
  void drop_shard(Shard& shard);

  const TypeRegistry& registry_;
  std::vector<ShardQuerySpec> specs_;
  PartitionSpec partition_;
  std::size_t queue_capacity_;
  RecoveryConfig recovery_;
  bool share_scans_ = true;
  OverloadConfig overload_;
  // Per-TypeId list of queries whose pattern references the type, for
  // per-query shed attribution (built once in the constructor).
  std::vector<std::vector<QueryId>> queries_by_type_;
  std::vector<std::uint64_t> shed_by_query_;
  // Backup ring bound: past this the producer blocks until a checkpoint
  // trims (steady state never reaches it — the ring holds at most
  // checkpoint_every + queue_capacity events between trims).
  std::size_t backup_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  ValueHasher hasher_;
  bool finished_ = false;
  // A dead worker's exception has already been rethrown to the caller
  // (from a push or from finish); finish() then stays quiet so teardown
  // after a caught failure is orderly. Producer-thread only.
  bool error_surfaced_ = false;
  std::uint64_t events_seen_ = 0;
  // Producer-maintained high-water mark of routed event timestamps; the
  // workers read it (relaxed) to report how far each lags the stream.
  std::atomic<Timestamp> global_clock_{kMinTimestamp};
  // Runner-level observability slots (null when metrics are disabled).
  Counter* push_retries_ = nullptr;     // producer spins on a full queue
  Counter* worker_failures_ = nullptr;  // workers killed by an exception
  Counter* broadcasts_ = nullptr;       // tick-only events sent to every shard
  // Recovery instruments.
  Counter* checkpoints_ = nullptr;        // checkpoints taken, all shards
  Gauge* checkpoint_bytes_ = nullptr;     // last frame size (scrape keeps max)
  Histogram* checkpoint_duration_ = nullptr;  // serialize+drain wall time, us
  Counter* restarts_obs_ = nullptr;       // worker respawns
  Counter* replayed_obs_ = nullptr;       // events re-fed from the backup
  Histogram* recovery_duration_ = nullptr;  // restore+replay wall time, us
  Counter* dropped_shards_obs_ = nullptr;
  Counter* dropped_events_obs_ = nullptr;
  std::uint64_t replayed_events_ = 0;
  DegradedAccounting degraded_;
  // on_batch scratch: per-shard staged sub-batches (cleared after each
  // push round; capacity persists across batches).
  std::vector<std::vector<Event>> batch_stage_;
};

}  // namespace oosp
