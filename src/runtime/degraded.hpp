// Degraded-mode verification: run an engine under injected faults and
// measure exactly how far its results drift from the clean ground truth.
//
// The fault harness (stream/faults.hpp) mangles a clean ts-ordered
// stream; the oracle computes the result set the clean stream SHOULD
// have produced; the engine consumes the mangled arrival sequence with
// whatever robustness options the caller configured (late policy,
// adaptive slack, dedup, schema validation). The returned VerifyResult
// then quantifies the degradation: lost and late-dropped events show up
// as missed matches (recall), duplicates and corruption admitted without
// guards show up as phantoms (precision). This is the measurement behind
// experiment R-R1 and the safety-net acceptance tests: robustness is a
// claim about HOW FAR recall/precision fall under a given fault cocktail,
// and this is the single code path that computes it.
#pragma once

#include <span>

#include "runtime/driver.hpp"
#include "runtime/verify.hpp"
#include "stream/faults.hpp"

namespace oosp {

struct DegradedResult {
  RunResult run;        // engine-side outcome over the faulted stream
  VerifyResult verify;  // engine output vs oracle over the CLEAN stream
  FaultStats faults;    // what the injector actually did
};

// Applies `faults` to `clean_ordered` (a ts-ordered stream), feeds the
// result through the engine described by `config`, and scores the output
// against the oracle over the clean stream. Match collection is forced
// on (verification needs the bodies); quarantine collection is honored
// as configured.
DegradedResult run_degraded(const CompiledQuery& query,
                            std::span<const Event> clean_ordered,
                            FaultInjector& faults, const DriverConfig& config);

}  // namespace oosp
