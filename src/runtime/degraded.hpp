// Degraded-mode verification: run an engine under injected faults and
// measure exactly how far its results drift from the clean ground truth.
//
// The fault harness (stream/faults.hpp) mangles a clean ts-ordered
// stream; the oracle computes the result set the clean stream SHOULD
// have produced; the engine consumes the mangled arrival sequence with
// whatever robustness options the caller configured (late policy,
// adaptive slack, dedup, schema validation). The returned VerifyResult
// then quantifies the degradation: lost and late-dropped events show up
// as missed matches (recall), duplicates and corruption admitted without
// guards show up as phantoms (precision). This is the measurement behind
// experiment R-R1 and the safety-net acceptance tests: robustness is a
// claim about HOW FAR recall/precision fall under a given fault cocktail,
// and this is the single code path that computes it.
#pragma once

#include <span>

#include "runtime/driver.hpp"
#include "runtime/verify.hpp"
#include "stream/faults.hpp"

namespace oosp {

struct DegradedResult {
  RunResult run;        // engine-side outcome over the faulted stream
  VerifyResult verify;  // engine output vs oracle over the CLEAN stream
  FaultStats faults;    // what the injector actually did
};

// Degraded-mode accounting for the sharded runtime's restart-exhaustion
// policy (RestartPolicy::kDegradeDropShard): when a shard burns through
// its restart budget the session completes WITHOUT it, and this records
// exactly what that cost. The output contract degrades from exactly-once
// to "exactly-once over the surviving shards plus the dropped shards'
// checkpointed prefix": stable (checkpoint-drained) matches of a dropped
// shard are kept, everything after its last checkpoint is lost with the
// events counted here.
struct DegradedAccounting {
  std::size_t dropped_shards = 0;
  // Events discarded on dropped shards: replayable backup thrown away at
  // drop time plus everything routed there afterwards.
  std::uint64_t dropped_events = 0;
  // Matches salvaged from dropped shards' checkpoint-stable output.
  std::uint64_t stable_matches_kept = 0;
  // Events shed at admission by overload control (runtime/overload.hpp):
  // never admitted, never backed up, never replayed — the quantified gap
  // between the offered stream and the one the engines actually saw.
  std::uint64_t shed_events = 0;

  bool degraded() const noexcept { return dropped_shards > 0 || shed_events > 0; }
};

// Applies `faults` to `clean_ordered` (a ts-ordered stream), feeds the
// result through the engine described by `config`, and scores the output
// against the oracle over the clean stream. Match collection is forced
// on (verification needs the bodies); quarantine collection is honored
// as configured.
DegradedResult run_degraded(const CompiledQuery& query,
                            std::span<const Event> clean_ordered,
                            FaultInjector& faults, const DriverConfig& config);

}  // namespace oosp
