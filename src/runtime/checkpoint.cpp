#include "runtime/checkpoint.hpp"

#include "engine/core/engine.hpp"

namespace oosp {

std::vector<std::uint8_t> checkpoint_engine(const PatternEngine& engine) {
  CheckpointWriter w;
  engine.snapshot(w);
  return std::move(w).finalize();
}

void restore_engine(PatternEngine& engine, std::span<const std::uint8_t> frame) {
  CheckpointReader r(frame);
  engine.restore(r);
  r.expect_done();
}

}  // namespace oosp
