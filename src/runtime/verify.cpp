#include "runtime/verify.hpp"

#include <algorithm>

#include "engine/oracle/oracle.hpp"

namespace oosp {

VerifyResult compare_keys(std::span<const MatchKey> expected_sorted,
                          std::span<const MatchKey> produced_sorted) {
  VerifyResult r;
  r.expected = expected_sorted.size();
  r.produced = produced_sorted.size();
  std::size_t i = 0, j = 0;
  while (i < expected_sorted.size() && j < produced_sorted.size()) {
    if (expected_sorted[i] == produced_sorted[j]) {
      ++r.true_positives;
      ++i;
      ++j;
    } else if (expected_sorted[i] < produced_sorted[j]) {
      ++r.missed;
      ++i;
    } else {
      ++r.false_positives;
      ++j;
    }
  }
  r.missed += expected_sorted.size() - i;
  r.false_positives += produced_sorted.size() - j;
  return r;
}

VerifyResult verify_against_oracle(const CompiledQuery& query,
                                   std::span<const Event> events,
                                   std::span<const Match> produced) {
  const std::vector<MatchKey> expected = oracle_keys(query, events);
  std::vector<MatchKey> got;
  got.reserve(produced.size());
  for (const Match& m : produced) got.push_back(match_key(m));
  std::sort(got.begin(), got.end());
  return compare_keys(expected, got);
}

}  // namespace oosp
