#include "runtime/multi_query.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "runtime/checkpoint.hpp"

namespace oosp {

MultiQueryRunner::MultiQueryRunner(const TypeRegistry& registry,
                                   std::shared_ptr<TaggedSink> sink,
                                   bool share_scans)
    : registry_(registry), sink_(std::move(sink)), share_scans_(share_scans) {
  OOSP_REQUIRE(sink_ != nullptr, "MultiQueryRunner sink is null");
}

QueryId MultiQueryRunner::add_query(const QuerySpec& spec) {
  return add_query(compile_query_shared(spec.text, registry_),
                   spec.kind.value_or(EngineKind::kOoo),
                   spec.options.value_or(EngineOptions{}));
}

QueryId MultiQueryRunner::add_query(std::shared_ptr<const CompiledQuery> query,
                                    EngineKind kind, EngineOptions options) {
  OOSP_REQUIRE(!started_, "add_query after the first event");
  OOSP_CHECK(!built_, "add_query after the execution plan was materialized");
  OOSP_REQUIRE(query != nullptr, "add_query: query is null");
  // AGG queries run only on the aggregation engine; a caller-supplied
  // default kind (kOoo etc.) is a fallback, not a contradiction.
  if (query->is_agg()) kind = EngineKind::kAgg;
  // Engines validate this at construction; with lazy materialization the
  // caller should still hear about it at registration time.
  OOSP_REQUIRE(options.slack >= 0, "slack must be non-negative");
  const QueryId id = registrations_.size();
  Registration reg;
  reg.query = std::move(query);
  reg.kind = kind;
  reg.options = std::move(options);
  reg.has_negation =
      reg.query->positive_steps().size() != reg.query->num_steps();
  registrations_.push_back(std::move(reg));
  return id;
}

void MultiQueryRunner::ensure_built() const {
  if (!built_) build();
}

void MultiQueryRunner::build() const {
  built_ = true;
  std::vector<ScanPlanEntry> plan_entries;
  plan_entries.reserve(registrations_.size());
  for (const Registration& reg : registrations_)
    plan_entries.push_back(ScanPlanEntry{reg.query, reg.kind, reg.options});
  const ScanPlan plan = plan_shared_scan(plan_entries, share_scans_);

  exclusion_reasons_.assign(registrations_.size(), std::string{});
  entries_.clear();
  entries_.resize(registrations_.size());
  groups_.clear();
  groups_.reserve(plan.groups.size());
  for (std::size_t g = 0; g < plan.groups.size(); ++g) {
    const ScanGroupPlan& gp = plan.groups[g];
    std::vector<SharedScanMember> members;
    members.reserve(gp.members.size());
    for (const QueryId id : gp.members)
      members.push_back(SharedScanMember{id, registrations_[id].query});
    // Group members were bucketed on options equality, so the first
    // member's options are the group's options.
    groups_.push_back(std::make_unique<SharedScanGroup>(
        gp, std::move(members), registrations_[gp.members.front()].options,
        sink_));
    for (std::size_t mi = 0; mi < gp.members.size(); ++mi) {
      entries_[gp.members[mi]].group = g;
      entries_[gp.members[mi]].member = mi;
    }
  }
  clock_subscribers_.clear();
  for (const QueryId id : plan.solo) {
    const Registration& reg = registrations_[id];
    entries_[id].engine = make_engine(
        reg.kind, EngineContext{reg.query, std::make_shared<TagSink>(sink_, id),
                                reg.options});
    exclusion_reasons_[id] =
        shared_scan_exclusion(ScanPlanEntry{reg.query, reg.kind, reg.options});
    if (reg.has_negation) clock_subscribers_.push_back(id);
  }
  rebuild_deliveries();
  if (!registrations_.empty()) {
    mqo_obs_ = MqoObs::create(registrations_.front().options.metrics);
    if (mqo_obs_.groups != nullptr)
      mqo_obs_.groups->set(static_cast<std::int64_t>(groups_.size()));
  }
}

void MultiQueryRunner::rebuild_deliveries() const {
  // Built once at plan materialization. Each (type, query) pair
  // contributes AT MOST ONE delivery — relevant pattern input (solo or
  // via its group) or clock tick, never both — which is the exactly-once
  // guarantee the sharded runtime relies on.
  deliveries_.assign(registry_.size(), {});
  for (TypeId t = 0; t < registry_.size(); ++t) {
    for (QueryId id = 0; id < registrations_.size(); ++id) {
      if (entries_[id].engine == nullptr) continue;  // delivered via its group
      const bool relevant = registrations_[id].query->relevant(t);
      if (relevant || registrations_[id].has_negation)
        deliveries_[t].push_back(Delivery{id, relevant});
    }
    for (std::size_t g = 0; g < groups_.size(); ++g) {
      if (groups_[g]->relevant(t))
        deliveries_[t].push_back(Delivery{registrations_.size() + g, true});
    }
  }
}

void MultiQueryRunner::dispatch_to_slot(std::size_t slot, const Event& e) const {
  if (slot < entries_.size()) {
    entries_[slot].engine->on_event(e);
  } else {
    groups_[slot - entries_.size()]->on_event(e);
  }
}

void MultiQueryRunner::on_event(const Event& e) {
  ensure_built();
  started_ = true;
  ++events_seen_;
  bool routed = false;
  if (e.type < deliveries_.size()) {
    for (const Delivery& d : deliveries_[e.type]) {
      dispatch_to_slot(d.slot, e);
      routed |= d.relevant;
    }
  } else {
    // Type registered after the plan materialized: relevant to nobody,
    // but negation holders still need the clock progress.
    for (const QueryId id : clock_subscribers_) entries_[id].engine->on_event(e);
  }
  if (routed) ++events_routed_;
}

void MultiQueryRunner::on_batch(std::span<const Event> batch) {
  if (batch.empty()) return;
  ensure_built();
  started_ = true;
  events_seen_ += batch.size();
  if (batch_scratch_.size() != slot_count()) batch_scratch_.resize(slot_count());
  std::uint64_t routed = 0;
  for (const Event& e : batch) {
    bool rel = false;
    if (e.type < deliveries_.size()) {
      for (const Delivery& d : deliveries_[e.type]) {
        batch_scratch_[d.slot].push_back(&e);
        rel |= d.relevant;
      }
    } else {
      for (const QueryId id : clock_subscribers_) batch_scratch_[id].push_back(&e);
    }
    if (rel) ++routed;
  }
  events_routed_ += routed;
  for (std::size_t slot = 0; slot < batch_scratch_.size(); ++slot) {
    if (batch_scratch_[slot].empty()) continue;
    if (slot < entries_.size()) {
      entries_[slot].engine->on_batch(batch_scratch_[slot]);
    } else {
      groups_[slot - entries_.size()]->on_batch(batch_scratch_[slot]);
    }
    batch_scratch_[slot].clear();
  }
}

void MultiQueryRunner::finish() {
  ensure_built();
  for (Entry& en : entries_)
    if (en.engine != nullptr) en.engine->finish();
  for (auto& g : groups_) g->finish();
}

EngineStats MultiQueryRunner::stats(QueryId id) const {
  ensure_built();
  const Entry& en = entries_.at(id);
  if (en.engine != nullptr) return en.engine->stats_snapshot();
  return groups_[en.group]->member_stats(en.member);
}

std::string MultiQueryRunner::share_exclusion_reason(QueryId id) const {
  ensure_built();
  return exclusion_reasons_.at(id);
}

void MultiQueryRunner::snapshot(CheckpointWriter& w) const {
  ensure_built();
  w.tag("mqr");
  w.u64(registrations_.size());
  w.u64(groups_.size());
  for (const auto& g : groups_) g->snapshot(w);
  for (const Entry& en : entries_)
    if (en.engine != nullptr) en.engine->snapshot(w);
  w.u64(events_seen_);
  w.u64(events_routed_);
}

void MultiQueryRunner::restore(CheckpointReader& r) {
  ensure_built();
  r.expect_tag("mqr");
  if (r.count() != registrations_.size())
    throw CheckpointError("checkpoint query count disagrees with runner");
  if (r.count() != groups_.size())
    throw CheckpointError("checkpoint group count disagrees with the plan");
  for (auto& g : groups_) g->restore(r);
  for (Entry& en : entries_)
    if (en.engine != nullptr) en.engine->restore(r);
  events_seen_ = r.u64();
  events_routed_ = r.u64();
  started_ = events_seen_ > 0;
}

std::vector<std::pair<QueryId, Event>> MultiQueryRunner::drain_quarantine() {
  ensure_built();
  std::vector<std::vector<Event>> group_drained(groups_.size());
  for (std::size_t g = 0; g < groups_.size(); ++g)
    group_drained[g] = groups_[g]->drain_quarantine();
  std::vector<std::pair<QueryId, Event>> out;
  for (QueryId id = 0; id < registrations_.size(); ++id) {
    Entry& en = entries_[id];
    if (en.engine != nullptr) {
      for (Event& e : en.engine->drain_quarantine())
        out.emplace_back(id, std::move(e));
    } else {
      // One member engine each would have quarantined its own copy of
      // the event; replicate it to every member it is relevant to.
      for (const Event& e : group_drained[en.group])
        if (registrations_[id].query->relevant(e.type)) out.emplace_back(id, e);
    }
  }
  return out;
}

}  // namespace oosp
