#include "runtime/multi_query.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace oosp {

std::vector<MatchKey> CollectingTaggedSink::keys_for(QueryId query) const {
  std::vector<MatchKey> keys;
  for (const TaggedMatch& tm : matches_)
    if (tm.query == query) keys.push_back(match_key(tm.match));
  std::sort(keys.begin(), keys.end());
  return keys;
}

MultiQueryRunner::MultiQueryRunner(const TypeRegistry& registry, TaggedSink& sink)
    : registry_(registry), sink_(sink) {
  routes_.resize(registry.size());
}

QueryId MultiQueryRunner::add_query(std::string_view text, EngineKind kind,
                                    EngineOptions options) {
  OOSP_REQUIRE(!started_, "add_query after the first event");
  const QueryId id = entries_.size();
  Entry entry;
  entry.query = std::make_unique<CompiledQuery>(compile_query(text, registry_));
  entry.sink = std::make_unique<TagSink>(sink_, id);
  entry.engine = make_engine(kind, *entry.query, *entry.sink, options);
  // Index the types this query listens to.
  routes_.resize(std::max(routes_.size(), static_cast<std::size_t>(registry_.size())));
  for (TypeId t = 0; t < registry_.size(); ++t)
    if (entry.query->relevant(t)) routes_[t].push_back(id);
  const bool has_negation =
      entry.query->positive_steps().size() != entry.query->num_steps();
  if (has_negation) clock_subscribers_.push_back(id);
  entries_.push_back(std::move(entry));
  return id;
}

void MultiQueryRunner::on_event(const Event& e) {
  started_ = true;
  ++events_seen_;
  const bool relevant = e.type < routes_.size() && !routes_[e.type].empty();
  if (relevant) {
    ++events_routed_;
    for (const QueryId id : routes_[e.type]) entries_[id].engine->on_event(e);
  }
  // Clock ticks for negation sealing (skip engines already served above).
  for (const QueryId id : clock_subscribers_)
    if (!entries_[id].query->relevant(e.type)) entries_[id].engine->on_event(e);
}

void MultiQueryRunner::finish() {
  for (Entry& entry : entries_) entry.engine->finish();
}

}  // namespace oosp
