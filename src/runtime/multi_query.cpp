#include "runtime/multi_query.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "runtime/checkpoint.hpp"

namespace oosp {

MultiQueryRunner::MultiQueryRunner(const TypeRegistry& registry,
                                   std::shared_ptr<TaggedSink> sink)
    : registry_(registry), sink_(std::move(sink)) {
  OOSP_REQUIRE(sink_ != nullptr, "MultiQueryRunner sink is null");
}

QueryId MultiQueryRunner::add_query(std::string_view text, EngineKind kind,
                                    EngineOptions options) {
  return add_query(compile_query_shared(text, registry_), kind, options);
}

QueryId MultiQueryRunner::add_query(std::shared_ptr<const CompiledQuery> query,
                                    EngineKind kind, EngineOptions options) {
  OOSP_REQUIRE(!started_, "add_query after the first event");
  OOSP_REQUIRE(query != nullptr, "add_query: query is null");
  const QueryId id = entries_.size();
  Entry entry;
  entry.query = std::move(query);
  entry.has_negation =
      entry.query->positive_steps().size() != entry.query->num_steps();
  entry.engine = make_engine(
      kind, EngineContext{entry.query, std::make_shared<TagSink>(sink_, id), options});
  if (entry.has_negation) clock_subscribers_.push_back(id);
  entries_.push_back(std::move(entry));
  rebuild_deliveries();
  return id;
}

void MultiQueryRunner::rebuild_deliveries() {
  // Rebuilt from scratch on every add_query (all before streaming, so
  // cost is irrelevant). Each (type, query) pair contributes AT MOST ONE
  // delivery — relevant pattern input or clock tick, never both — which
  // is the exactly-once guarantee the sharded runtime relies on.
  deliveries_.assign(registry_.size(), {});
  for (TypeId t = 0; t < registry_.size(); ++t) {
    for (QueryId id = 0; id < entries_.size(); ++id) {
      const bool relevant = entries_[id].query->relevant(t);
      if (relevant || entries_[id].has_negation)
        deliveries_[t].push_back(Delivery{id, relevant});
    }
  }
}

void MultiQueryRunner::on_event(const Event& e) {
  started_ = true;
  ++events_seen_;
  bool routed = false;
  if (e.type < deliveries_.size()) {
    for (const Delivery& d : deliveries_[e.type]) {
      entries_[d.id].engine->on_event(e);
      routed |= d.relevant;
    }
  } else {
    // Type registered after the last add_query: relevant to nobody, but
    // negation holders still need the clock progress.
    for (const QueryId id : clock_subscribers_) entries_[id].engine->on_event(e);
  }
  if (routed) ++events_routed_;
}

void MultiQueryRunner::on_batch(std::span<const Event> batch) {
  if (batch.empty()) return;
  started_ = true;
  events_seen_ += batch.size();
  if (batch_scratch_.size() != entries_.size()) batch_scratch_.resize(entries_.size());
  std::uint64_t routed = 0;
  for (const Event& e : batch) {
    bool rel = false;
    if (e.type < deliveries_.size()) {
      for (const Delivery& d : deliveries_[e.type]) {
        batch_scratch_[d.id].push_back(&e);
        rel |= d.relevant;
      }
    } else {
      for (const QueryId id : clock_subscribers_) batch_scratch_[id].push_back(&e);
    }
    if (rel) ++routed;
  }
  events_routed_ += routed;
  for (QueryId id = 0; id < entries_.size(); ++id) {
    if (batch_scratch_[id].empty()) continue;
    entries_[id].engine->on_batch(batch_scratch_[id]);
    batch_scratch_[id].clear();
  }
}

void MultiQueryRunner::finish() {
  for (Entry& entry : entries_) entry.engine->finish();
}

void MultiQueryRunner::snapshot(CheckpointWriter& w) const {
  w.tag("mqr");
  w.u64(entries_.size());
  for (const Entry& entry : entries_) entry.engine->snapshot(w);
  w.u64(events_seen_);
  w.u64(events_routed_);
}

void MultiQueryRunner::restore(CheckpointReader& r) {
  r.expect_tag("mqr");
  if (r.count() != entries_.size())
    throw CheckpointError("checkpoint query count disagrees with runner");
  for (Entry& entry : entries_) entry.engine->restore(r);
  events_seen_ = r.u64();
  events_routed_ = r.u64();
  started_ = events_seen_ > 0;
}

std::vector<std::pair<QueryId, Event>> MultiQueryRunner::drain_quarantine() {
  std::vector<std::pair<QueryId, Event>> out;
  for (QueryId id = 0; id < entries_.size(); ++id)
    for (Event& e : entries_[id].engine->drain_quarantine())
      out.emplace_back(id, std::move(e));
  return out;
}

}  // namespace oosp
