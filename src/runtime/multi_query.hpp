// Multi-query execution: many pattern queries over one arrival stream.
//
// A production deployment rarely runs a single query. MultiQueryRunner
// owns one engine per registered query and routes each arriving event
// only to the engines whose queries reference its type — the shared-scan
// dispatch that makes q irrelevant queries cost nothing per event.
// Exception: engines whose query has negated steps additionally receive
// every event as a clock tick — negation sealing needs stream-time
// progress, and an engine that only sees its own types would sit on
// pending matches until the next relevant arrival. Results are tagged
// with the originating query's id.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "engine/engines.hpp"

namespace oosp {

using QueryId = std::size_t;

struct TaggedMatch {
  QueryId query = 0;
  Match match;
};

class TaggedSink {
 public:
  virtual ~TaggedSink() = default;
  virtual void on_match(QueryId query, Match&& m) = 0;
  virtual void on_retract(QueryId query, const Match& m) {
    (void)query;
    (void)m;
  }
};

class CollectingTaggedSink final : public TaggedSink {
 public:
  void on_match(QueryId query, Match&& m) override {
    matches_.push_back(TaggedMatch{query, std::move(m)});
  }
  const std::vector<TaggedMatch>& matches() const noexcept { return matches_; }
  std::vector<MatchKey> keys_for(QueryId query) const;

 private:
  std::vector<TaggedMatch> matches_;
};

class MultiQueryRunner {
 public:
  // `registry` must outlive the runner; engines reference the compiled
  // queries the runner stores.
  MultiQueryRunner(const TypeRegistry& registry, TaggedSink& sink);

  // Compiles and registers a query; returns its id. All queries must be
  // added before the first on_event.
  QueryId add_query(std::string_view text, EngineKind kind, EngineOptions options = {});

  void on_event(const Event& e);
  void finish();

  std::size_t query_count() const noexcept { return entries_.size(); }
  const CompiledQuery& query(QueryId id) const { return *entries_.at(id).query; }
  EngineStats stats(QueryId id) const { return entries_.at(id).engine->stats(); }

  // Events delivered to at least one engine.
  std::uint64_t events_routed() const noexcept { return events_routed_; }
  std::uint64_t events_seen() const noexcept { return events_seen_; }

 private:
  struct TagSink final : public MatchSink {
    TagSink(TaggedSink& out, QueryId id) : out_(out), id_(id) {}
    void on_match(Match&& m) override { out_.on_match(id_, std::move(m)); }
    void on_retract(const Match& m) override { out_.on_retract(id_, m); }
    TaggedSink& out_;
    QueryId id_;
  };

  struct Entry {
    std::unique_ptr<CompiledQuery> query;
    std::unique_ptr<TagSink> sink;
    std::unique_ptr<PatternEngine> engine;
  };

  const TypeRegistry& registry_;
  TaggedSink& sink_;
  std::vector<Entry> entries_;
  // type id → ids of queries that reference it (shared-scan index).
  std::vector<std::vector<QueryId>> routes_;
  // queries with negated steps: receive every event for clock progress.
  std::vector<QueryId> clock_subscribers_;
  bool started_ = false;
  std::uint64_t events_seen_ = 0;
  std::uint64_t events_routed_ = 0;
};

}  // namespace oosp
