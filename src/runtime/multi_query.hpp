// Multi-query execution: many pattern queries over one arrival stream.
//
// A production deployment rarely runs a single query. MultiQueryRunner
// registers queries (QuerySpec), materializes an execution plan —
// shared-scan groups for queries whose scans are physically compatible
// (runtime/planner.hpp + engine/ooo/shared_scan.hpp), per-query engines
// for the rest — and dispatches each arriving event through a single
// per-type DELIVERY TABLE listing every execution slot that must see
// events of that type, exactly once each:
//
//   * solo queries whose pattern references the type and shared-scan
//     groups with a member that does (shared-scan routing: irrelevant
//     queries cost nothing per event),
//   * queries with negated steps for which the type is IRRELEVANT — they
//     receive the event purely as a clock tick, because negation sealing
//     needs stream-time progress and an engine that only saw its own
//     types would sit on pending matches until the next relevant
//     arrival. (Negated queries never group, so ticks always target a
//     solo engine.)
//
// Building the union once per type (rather than routing and then
// broadcasting to negation holders) makes the exactly-once guarantee
// structural: an event type that is BOTH a positive step of one query
// and a negated step of another appears once in each query's entry, so
// no engine can ever observe the same event twice (test_sharded pins
// this with a regression test).
//
// The plan is materialized lazily at the first event (or snapshot/stats
// call) and explicitly via prepare(). The sharded runtime and the
// Session call prepare() on the construction thread so all metric-slot
// registration happens before worker threads touch the registry (the
// guarantee metrics.hpp documents). After materialization — and, for
// safety, after the first event — add_query throws.
//
// The runner co-owns its sink and compiled queries (shared_ptr); solo
// engines are built through make_engine/EngineContext. Results are
// tagged with the originating query's id whether they come from a solo
// engine or a group member. This is also the single-shard execution
// core the sharded runtime replicates — see runtime/sharded.hpp.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "engine/engines.hpp"
#include "engine/ooo/shared_scan.hpp"
#include "runtime/planner.hpp"

namespace oosp {

class MultiQueryRunner {
 public:
  // `registry` must outlive the runner. The sink is co-owned.
  // `share_scans` gates the shared-scan grouping pass (on by default;
  // the multi-query bench baseline turns it off to measure the win).
  MultiQueryRunner(const TypeRegistry& registry, std::shared_ptr<TaggedSink> sink,
                   bool share_scans = true);

  // Compiles and registers a query; returns its id (dense, in add
  // order). All queries must be added before the first on_event/push
  // (enforced — see prepare()).
  QueryId add_query(const QuerySpec& spec);

  // Registers an already-compiled query (shared with the caller — the
  // Session compiles once and hands the same query to every shard).
  QueryId add_query(std::shared_ptr<const CompiledQuery> query, EngineKind kind,
                    EngineOptions options = {});

  // Materializes the execution plan: runs the shared-scan grouping pass,
  // builds groups and solo engines, and registers their metric slots.
  // Implicit before the first event (and before snapshot/restore/stats),
  // but the multi-threaded runtimes call it explicitly on the
  // construction thread — metric-slot registration must finish before
  // worker threads hammer the registry (metrics.hpp). add_query after
  // prepare() throws.
  void prepare() const { ensure_built(); }

  void on_event(const Event& e);

  // Batched ingestion: routes the whole slice through the delivery table
  // once, gathering each slot's sub-batch (pointers into `batch`) and
  // handing it over in a single on_batch call. Delivery sets and the
  // per-event order each slot observes are identical to looping
  // on_event — slots are independent, so slot-major delivery order is
  // immaterial.
  void on_batch(std::span<const Event> batch);

  void finish();

  std::size_t query_count() const noexcept { return registrations_.size(); }
  const CompiledQuery& query(QueryId id) const {
    return *registrations_.at(id).query;
  }
  const std::shared_ptr<const CompiledQuery>& query_ptr(QueryId id) const {
    return registrations_.at(id).query;
  }

  // Per-query stats whether the query runs solo or grouped. For grouped
  // queries, arrival counters are replicated per member and the group's
  // physical counters are folded into its first member — summing stats()
  // over all queries remains the correct aggregate (test_mqo pins this).
  EngineStats stats(QueryId id) const;

  // Shared-scan groups in the materialized plan (0 before prepare()).
  std::size_t group_count() const noexcept { return groups_.size(); }
  // Empty when the query grouped; the planner's reason when it runs solo
  // (also empty when sharing is simply disabled or no partner matched).
  std::string share_exclusion_reason(QueryId id) const;

  // Events delivered to at least one slot as pattern input (clock-tick
  // deliveries to negation holders do not count as routing).
  std::uint64_t events_routed() const noexcept { return events_routed_; }
  std::uint64_t events_seen() const noexcept { return events_seen_; }

  // Crash-recovery serialization: each shared-scan group snapshotted
  // exactly once (shared state + per-member stats), then every solo
  // engine in query-id order, then the runner's counters. The restoring
  // runner must have the same queries registered in the same order with
  // the same kinds/options — the plan re-materializes identically, and
  // guards are validated per group/engine.
  void snapshot(CheckpointWriter& w) const;
  void restore(CheckpointReader& r);

  // Union of every engine's quarantined late events, in arrival order
  // per engine, tagged with the owning query id. A group's quarantine is
  // drained once and fanned out to every member the event is relevant to.
  std::vector<std::pair<QueryId, Event>> drain_quarantine();

 private:
  struct TagSink final : public MatchSink {
    TagSink(std::shared_ptr<TaggedSink> out, QueryId id)
        : out_(std::move(out)), id_(id) {}
    void on_match(Match&& m) override { out_->on_match(id_, std::move(m)); }
    void on_retract(const Match& m) override { out_->on_retract(id_, m); }
    std::shared_ptr<TaggedSink> out_;
    QueryId id_;
  };

  struct Registration {
    std::shared_ptr<const CompiledQuery> query;
    EngineKind kind = EngineKind::kOoo;
    EngineOptions options;
    bool has_negation = false;
  };

  // Materialized per-query execution state. Exactly one of {engine,
  // group} applies: solo queries own an engine; grouped queries point at
  // their group and member index.
  struct Entry {
    std::unique_ptr<PatternEngine> engine;
    std::size_t group = 0;   // index into groups_ (when !engine)
    std::size_t member = 0;  // member index within the group
  };

  // One delivery of an event to one execution slot. Slots < query count
  // are solo engines (slot == QueryId); slots >= query count are groups
  // (slot − query count indexes groups_). `relevant` distinguishes
  // pattern input from a pure clock tick (for events_routed accounting);
  // group deliveries are always relevant.
  struct Delivery {
    std::size_t slot;
    bool relevant;
  };

  void ensure_built() const;
  void build() const;
  void rebuild_deliveries() const;
  std::size_t slot_count() const { return registrations_.size() + groups_.size(); }
  void dispatch_to_slot(std::size_t slot, const Event& e) const;

  const TypeRegistry& registry_;
  std::shared_ptr<TaggedSink> sink_;
  bool share_scans_ = true;
  std::vector<Registration> registrations_;

  // Lazily materialized execution plan (const-correct lazy init: the
  // accessors that trigger it are logically const).
  mutable bool built_ = false;
  mutable std::vector<Entry> entries_;                          // by QueryId
  mutable std::vector<std::unique_ptr<SharedScanGroup>> groups_;
  mutable std::vector<std::string> exclusion_reasons_;          // by QueryId
  // deliveries_[type]: every slot that must see events of this type,
  // each exactly once (relevant queries/groups + clock-tick negation
  // holders).
  mutable std::vector<std::vector<Delivery>> deliveries_;
  // Fallback for type ids beyond the table (registered after prepare()):
  // such a type is relevant to no registered query, so only negation
  // holders need it, as a tick. Negated queries never group.
  mutable std::vector<QueryId> clock_subscribers_;
  // on_batch scratch: per-slot gathered sub-batches (cleared after each
  // dispatch; capacity persists across batches).
  mutable std::vector<std::vector<const Event*>> batch_scratch_;
  mutable MqoObs mqo_obs_;

  bool started_ = false;
  std::uint64_t events_seen_ = 0;
  std::uint64_t events_routed_ = 0;
};

}  // namespace oosp
