// Multi-query execution: many pattern queries over one arrival stream.
//
// A production deployment rarely runs a single query. MultiQueryRunner
// owns one engine per registered query and dispatches each arriving
// event through a single per-type DELIVERY TABLE listing every engine
// that must see events of that type, exactly once each:
//
//   * queries whose pattern references the type (shared-scan routing:
//     irrelevant queries cost nothing per event), and
//   * queries with negated steps for which the type is IRRELEVANT — they
//     receive the event purely as a clock tick, because negation sealing
//     needs stream-time progress and an engine that only saw its own
//     types would sit on pending matches until the next relevant
//     arrival.
//
// Building the union once per type (rather than routing and then
// broadcasting to negation holders) makes the exactly-once guarantee
// structural: an event type that is BOTH a positive step of one query
// and a negated step of another appears once in each query's entry, so
// no engine can ever observe the same event twice (test_sharded pins
// this with a regression test).
//
// The runner co-owns its sink and compiled queries (shared_ptr); engines
// are built through make_engine/EngineContext. Results are tagged with
// the originating query's id. This is also the single-shard execution
// core the sharded runtime replicates — see runtime/sharded.hpp.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "engine/engines.hpp"

namespace oosp {

class MultiQueryRunner {
 public:
  // `registry` must outlive the runner. The sink is co-owned.
  MultiQueryRunner(const TypeRegistry& registry, std::shared_ptr<TaggedSink> sink);

  // Compiles and registers a query; returns its id (dense, in add
  // order). All queries must be added before the first on_event.
  QueryId add_query(std::string_view text, EngineKind kind, EngineOptions options = {});

  // Registers an already-compiled query (shared with the caller — the
  // Session compiles once and hands the same query to every shard).
  QueryId add_query(std::shared_ptr<const CompiledQuery> query, EngineKind kind,
                    EngineOptions options = {});

  void on_event(const Event& e);

  // Batched ingestion: routes the whole slice through the delivery table
  // once, gathering each engine's sub-batch (pointers into `batch`) and
  // handing it over in a single on_batch call. Delivery sets and the
  // per-event order each engine observes are identical to looping
  // on_event — engines are independent, so engine-major delivery order
  // is immaterial.
  void on_batch(std::span<const Event> batch);

  void finish();

  std::size_t query_count() const noexcept { return entries_.size(); }
  const CompiledQuery& query(QueryId id) const { return *entries_.at(id).query; }
  const std::shared_ptr<const CompiledQuery>& query_ptr(QueryId id) const {
    return entries_.at(id).query;
  }
  EngineStats stats(QueryId id) const {
    return entries_.at(id).engine->stats_snapshot();
  }

  // Events delivered to at least one engine as pattern input (clock-tick
  // deliveries to negation holders do not count as routing).
  std::uint64_t events_routed() const noexcept { return events_routed_; }
  std::uint64_t events_seen() const noexcept { return events_seen_; }

  // Crash-recovery serialization: every engine's snapshot in query-id
  // order plus the runner's own counters, one section per engine. The
  // restoring runner must have the same queries registered in the same
  // order with the same kinds/options (guards are validated per engine).
  void snapshot(CheckpointWriter& w) const;
  void restore(CheckpointReader& r);

  // Union of every engine's quarantined late events, in arrival order
  // per engine, tagged with the owning query id.
  std::vector<std::pair<QueryId, Event>> drain_quarantine();

 private:
  struct TagSink final : public MatchSink {
    TagSink(std::shared_ptr<TaggedSink> out, QueryId id)
        : out_(std::move(out)), id_(id) {}
    void on_match(Match&& m) override { out_->on_match(id_, std::move(m)); }
    void on_retract(const Match& m) override { out_->on_retract(id_, m); }
    std::shared_ptr<TaggedSink> out_;
    QueryId id_;
  };

  struct Entry {
    std::shared_ptr<const CompiledQuery> query;
    std::unique_ptr<PatternEngine> engine;
    bool has_negation = false;
  };

  // One delivery of an event to one engine. `relevant` distinguishes
  // pattern input from a pure clock tick (for events_routed accounting).
  struct Delivery {
    QueryId id;
    bool relevant;
  };

  void rebuild_deliveries();

  const TypeRegistry& registry_;
  std::shared_ptr<TaggedSink> sink_;
  std::vector<Entry> entries_;
  // deliveries_[type]: every engine that must see events of this type,
  // each exactly once (relevant queries + clock-tick negation holders).
  std::vector<std::vector<Delivery>> deliveries_;
  // Fallback for type ids beyond the table (registered after the last
  // add_query): such a type is relevant to no registered query, so only
  // negation holders need it, as a tick.
  std::vector<QueryId> clock_subscribers_;
  bool started_ = false;
  std::uint64_t events_seen_ = 0;
  std::uint64_t events_routed_ = 0;
  // on_batch scratch: per-engine gathered sub-batches (cleared after each
  // dispatch; capacity persists across batches).
  std::vector<std::vector<const Event*>> batch_scratch_;
};

}  // namespace oosp
