#include "runtime/pipeline.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace oosp {

CompositeEmitter::CompositeEmitter(TypeId composite_type, Mapper mapper,
                                   PatternEngine& downstream, EventId first_id)
    : composite_type_(composite_type),
      mapper_(std::move(mapper)),
      downstream_(downstream),
      next_id_(first_id) {
  OOSP_REQUIRE(composite_type != kInvalidType, "composite type must be registered");
  OOSP_REQUIRE(mapper_ != nullptr, "composite mapper must be callable");
}

void CompositeEmitter::on_match(Match&& m) {
  Event e;
  e.type = composite_type_;
  e.id = next_id_++;
  e.ts = m.last_ts();
  e.arrival = next_arrival_++;
  e.attrs = mapper_(m);
  if (max_ts_emitted_ != kMinTimestamp && e.ts < max_ts_emitted_)
    max_lateness_ = std::max(max_lateness_, max_ts_emitted_ - e.ts);
  max_ts_emitted_ = std::max(max_ts_emitted_, e.ts);
  ++emitted_;
  downstream_.on_event(e);
}

void CompositeEmitter::on_retract(const Match&) {
  OOSP_CHECK(false,
             "CompositeEmitter cannot consume retractions: run the upstream "
             "stage with the conservative negation policy");
}

}  // namespace oosp
