// Result verification: scores an engine's output against ground truth.
//
// Used by integration tests (exactness assertions) and by experiment
// R-T2, which quantifies how badly the conventional in-order engines
// corrupt results when fed out-of-order input (missed matches from late
// events and unsafe purges; phantom matches from negation checked too
// early).
#pragma once

#include <span>
#include <vector>

#include "engine/core/match.hpp"
#include "query/compiled.hpp"

namespace oosp {

struct VerifyResult {
  std::uint64_t expected = 0;        // oracle matches
  std::uint64_t produced = 0;        // engine matches (duplicates included)
  std::uint64_t true_positives = 0;  // produced ∩ expected (multiset)
  std::uint64_t false_positives = 0;
  std::uint64_t missed = 0;

  double recall() const noexcept {
    return expected ? static_cast<double>(true_positives) / static_cast<double>(expected)
                    : 1.0;
  }
  double precision() const noexcept {
    return produced ? static_cast<double>(true_positives) / static_cast<double>(produced)
                    : 1.0;
  }
  bool exact() const noexcept { return false_positives == 0 && missed == 0; }
};

// Multiset comparison of sorted key lists.
VerifyResult compare_keys(std::span<const MatchKey> expected_sorted,
                          std::span<const MatchKey> produced_sorted);

// Runs the oracle over `events` and scores `produced` against it.
VerifyResult verify_against_oracle(const CompiledQuery& query,
                                   std::span<const Event> events,
                                   std::span<const Match> produced);

}  // namespace oosp
