#include "runtime/driver.hpp"

#include <chrono>
#include <memory>

namespace oosp {

namespace {

class DriverSink final : public MatchSink {
 public:
  DriverSink(RunResult& result, bool collect) : result_(result), collect_(collect) {}

  void on_match(Match&& m) override {
    ++result_.matches;
    result_.delay.add(static_cast<double>(m.detection_delay()));
    if (collect_) result_.collected.push_back(std::move(m));
  }

  void on_retract(const Match& m) override {
    ++result_.retractions;
    if (collect_) result_.collected_retractions.push_back(m);
  }

 private:
  RunResult& result_;
  bool collect_;
};

}  // namespace

RunResult run_stream(const CompiledQuery& query, std::span<const Event> arrivals,
                     const DriverConfig& config) {
  RunResult result;
  // The driver's borrowed-reference API predates EngineContext shared
  // ownership; one copy of the compiled query per run is negligible next
  // to streaming the events through it.
  const auto engine =
      make_engine(config.kind, std::make_shared<const CompiledQuery>(query),
                  std::make_shared<DriverSink>(result, config.collect_matches),
                  config.options);
  result.engine_name = engine->name();

  const auto t0 = std::chrono::steady_clock::now();
  for (const Event& e : arrivals) engine->on_event(e);
  engine->finish();
  const auto t1 = std::chrono::steady_clock::now();

  if (config.collect_quarantine) result.quarantined = engine->drain_quarantine();
  result.stats = engine->stats_snapshot();
  result.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  result.events_per_second =
      result.wall_seconds > 0.0
          ? static_cast<double>(arrivals.size()) / result.wall_seconds
          : 0.0;
  return result;
}

}  // namespace oosp
