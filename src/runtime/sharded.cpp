#include "runtime/sharded.hpp"

#include <algorithm>
#include <iterator>
#include <tuple>
#include <utility>

#include "common/contracts.hpp"
#include "common/cpu_relax.hpp"
#include "runtime/checkpoint.hpp"

namespace oosp {

std::string_view to_string(RestartPolicy p) noexcept {
  switch (p) {
    case RestartPolicy::kFail: return "fail";
    case RestartPolicy::kDegradeDropShard: return "degrade-drop-shard";
  }
  return "?";
}

std::optional<PartitionSpec> PartitionSpec::build(std::span<const ShardQuerySpec> specs,
                                                  const TypeRegistry& registry,
                                                  std::string* reject_reason) {
  const auto reject = [&](std::string why) -> std::optional<PartitionSpec> {
    if (reject_reason) *reject_reason = std::move(why);
    return std::nullopt;
  };

  PartitionSpec out;
  out.slots_.assign(registry.size(), kTickOnly);
  for (const ShardQuerySpec& spec : specs) {
    OOSP_REQUIRE(spec.query != nullptr, "PartitionSpec: null query");
    const CompiledQuery& q = *spec.query;
    if (!q.partitionable())
      return reject("query lacks a full equi-join key: " + q.text());
    for (TypeId t = 0; t < registry.size(); ++t) {
      for (const std::size_t step : q.steps_for_type(t)) {
        const std::size_t slot = q.partition_slots()[step];
        if (slot == CompiledStep::npos)
          return reject("negated step outside the equi-join class in: " + q.text());
        if (out.slots_[t] == kTickOnly) {
          out.slots_[t] = slot;
        } else if (out.slots_[t] != slot) {
          return reject("conflicting partition attributes for type '" +
                        std::string(registry.name(t)) + "'");
        }
      }
    }
  }
  return out;
}

std::vector<TaggedMatch> merge_match_streams(
    std::vector<std::vector<TaggedMatch>> streams) {
  std::size_t total = 0;
  for (const auto& s : streams) total += s.size();

  struct Decorated {
    Timestamp seal_ts;
    QueryId query;
    MatchKey key;
    TaggedMatch* source;
  };
  std::vector<Decorated> order;
  order.reserve(total);
  for (auto& stream : streams)
    for (TaggedMatch& tm : stream)
      order.push_back(
          Decorated{tm.match.last_ts(), tm.query, match_key(tm.match), &tm});
  std::sort(order.begin(), order.end(), [](const Decorated& a, const Decorated& b) {
    return std::tie(a.seal_ts, a.query, a.key) < std::tie(b.seal_ts, b.query, b.key);
  });

  std::vector<TaggedMatch> merged;
  merged.reserve(total);
  for (const Decorated& d : order) merged.push_back(std::move(*d.source));
  return merged;
}

ShardedRunner::ShardedRunner(const TypeRegistry& registry,
                             std::vector<ShardQuerySpec> specs, std::size_t num_shards,
                             PartitionSpec partition, std::size_t queue_capacity,
                             MetricsRegistry* metrics, RecoveryConfig recovery,
                             bool share_scans, OverloadConfig overload)
    : registry_(registry),
      specs_(std::move(specs)),
      partition_(partition),
      queue_capacity_(queue_capacity),
      recovery_(std::move(recovery)),
      share_scans_(share_scans),
      overload_(overload) {
  OOSP_REQUIRE(num_shards >= 1, "ShardedRunner needs at least one shard");
  if (recovery_.enabled())
    backup_capacity_ = 2 * recovery_.checkpoint_every + queue_capacity_;
  // Per-query shed attribution: which queries consume each event type.
  shed_by_query_.assign(specs_.size(), 0);
  queries_by_type_.assign(registry_.size(), {});
  for (QueryId q = 0; q < specs_.size(); ++q)
    for (TypeId t = 0; t < registry_.size(); ++t)
      if (specs_[q].query->relevant(t)) queries_by_type_[t].push_back(q);
  if (metrics) {
    push_retries_ = metrics->counter("oosp_shard_push_retries_total");
    worker_failures_ = metrics->counter("oosp_shard_worker_failures_total");
    broadcasts_ = metrics->counter("oosp_shard_broadcasts_total");
    if (recovery_.enabled()) {
      checkpoints_ = metrics->counter("oosp_shard_checkpoints_total");
      checkpoint_bytes_ = metrics->gauge("oosp_shard_checkpoint_bytes", GaugeAgg::kMax);
      checkpoint_duration_ =
          metrics->histogram("oosp_shard_checkpoint_duration_us");
      restarts_obs_ = metrics->counter("oosp_shard_restarts_total");
      replayed_obs_ = metrics->counter("oosp_shard_replayed_events_total");
      recovery_duration_ = metrics->histogram("oosp_shard_recovery_duration_us");
      dropped_shards_obs_ = metrics->counter("oosp_shard_dropped_shards_total");
      dropped_events_obs_ = metrics->counter("oosp_shard_dropped_events_total");
    }
  }
  shards_.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->index = s;
    shard->queue = std::make_unique<SpscQueue<Event>>(queue_capacity);
    shard->sink = std::make_shared<CollectingTaggedSink>();
    shard->runner =
        std::make_unique<MultiQueryRunner>(registry_, shard->sink, share_scans_);
    for (const ShardQuerySpec& spec : specs_)
      shard->runner->add_query(spec.query, spec.kind, spec.options);
    // Materialize the plan (and its metric slots) here, before any worker
    // thread exists — metrics.hpp's registration guarantee.
    shard->runner->prepare();
    if (metrics) {
      shard->queue_depth = metrics->gauge("oosp_shard_queue_depth", GaugeAgg::kMax);
      shard->watermark_lag = metrics->gauge("oosp_shard_watermark_lag", GaugeAgg::kMax);
      shard->merge_occupancy =
          metrics->gauge("oosp_shard_merge_occupancy", GaugeAgg::kSum);
    }
    if (overload_.active())
      shard->monitor = std::make_unique<OverloadMonitor>(
          overload_, shard->queue->capacity(), metrics);
    shards_.push_back(std::move(shard));
  }
  // Start the workers only after every runner is fully built; the thread
  // start is the publication point for the engine state they consume.
  for (auto& shard : shards_)
    shard->worker = std::thread([this, s = shard.get()] { worker_loop(*s); });
}

ShardedRunner::~ShardedRunner() {
  // Stop without delivering: finish() is the orderly path; this only
  // guarantees the threads are gone.
  for (auto& shard : shards_) shard->stop.store(true, std::memory_order_release);
  for (auto& shard : shards_)
    if (shard->worker.joinable()) shard->worker.join();
}

void ShardedRunner::worker_loop(Shard& shard) {
  try {
    // Bulk dequeue amortizes the ring's shared-cache-line traffic; the
    // popped events are still PROCESSED one at a time, so engine-visible
    // order, kill-hook points, and checkpoint cadence are identical to
    // the per-event loop (pop batch boundaries are timing-dependent and
    // must not be observable).
    constexpr std::size_t kWorkerBatch = 256;
    std::vector<Event> buf(kWorkerBatch);
    SpinBackoff backoff;
    Timestamp consumed_hwm = shard.consumed_clock.load(std::memory_order_relaxed);
    for (;;) {
      // Occupancy is sampled BEFORE the pop: a genuine size_approx()
      // reading is always within [0, capacity]. Reconstructing it after
      // the pop as size_approx() + n raced the producer refilling the
      // freed slots and could transiently exceed the capacity.
      const std::size_t depth =
          shard.queue_depth ? shard.queue->size_approx() : 0;
      const std::size_t n = shard.queue->try_pop_n(buf.data(), buf.size());
      if (n > 0) {
        backoff.reset();
        if (shard.watermark_lag) {
          // How far this shard trails the stream: the newest timestamp the
          // producer has routed anywhere minus the one being consumed now.
          const Timestamp newest = global_clock_.load(std::memory_order_relaxed);
          if (newest != kMinTimestamp && newest > buf[0].ts)
            shard.watermark_lag->set(newest - buf[0].ts);
          shard.queue_depth->set(static_cast<std::int64_t>(depth));
        }
        for (std::size_t i = 0; i < n; ++i) {
          const Event& e = buf[i];
          // Fault injection: die BEFORE processing, so the victim event is
          // neither reflected in engine state nor covered by a checkpoint —
          // the supervisor must replay it. (Events popped but not yet
          // processed die with this incarnation; their consumed count was
          // never advanced, so replay covers them too.)
          if (recovery_.kill_hook && recovery_.kill_hook(e)) throw WorkerKilled(e.id);
          if (recovery_.delay_hook) recovery_.delay_hook(e);
          shard.runner->on_event(e);
          ++shard.consumed;
          if (e.ts > consumed_hwm) consumed_hwm = e.ts;
          if (recovery_.enabled() && shard.consumed % recovery_.checkpoint_every == 0)
            checkpoint_shard(shard);
        }
        // Progress signal for the producer's overload monitor: the
        // newest stream time this shard has processed.
        shard.consumed_clock.store(consumed_hwm, std::memory_order_relaxed);
        if (shard.merge_occupancy)
          shard.merge_occupancy->set(
              static_cast<std::int64_t>(shard.sink->matches().size()));
        continue;
      }
      if (shard.stop.load(std::memory_order_acquire) && shard.queue->empty()) break;
      backoff.pause();
    }
    shard.runner->finish();
    shard.final_stats.clear();  // a dead predecessor may have left partial rows
    shard.final_stats.reserve(shard.runner->query_count());
    for (QueryId q = 0; q < shard.runner->query_count(); ++q)
      shard.final_stats.push_back(shard.runner->stats(q));
  } catch (...) {
    // Publish the failure before the liveness flag: the producer only
    // reads `error` after an acquire load sees dead == true.
    shard.error = std::current_exception();
    if (worker_failures_) worker_failures_->inc();
    shard.dead.store(true, std::memory_order_release);
  }
}

void ShardedRunner::checkpoint_shard(Shard& shard) {
  // Runs on whichever thread currently owns the shard's runner: the live
  // worker at its cadence, or the producer right after a replay.
  const auto t0 = std::chrono::steady_clock::now();
  CheckpointWriter w;
  shard.runner->snapshot(w);
  std::vector<std::uint8_t> bytes = std::move(w).finalize();
  const std::size_t frame_size = bytes.size();
  {
    std::lock_guard<std::mutex> lock(shard.ckpt_mu);
    // Drain emissions into stable storage IN the same critical section
    // that publishes the bytes: the checkpoint and the match prefix it
    // finalizes must move together, or a crash between them would
    // duplicate (or lose) the in-between matches.
    auto matches = shard.sink->take();
    std::move(matches.begin(), matches.end(), std::back_inserter(shard.stable_matches));
    auto retractions = shard.sink->take_retracted();
    std::move(retractions.begin(), retractions.end(),
              std::back_inserter(shard.stable_retractions));
    shard.ckpt_bytes = std::move(bytes);
    shard.ckpt_consumed_locked = shard.consumed;
  }
  // Trim watermark last (release): a producer that observes it is
  // guaranteed the locked section above already happened.
  shard.ckpt_consumed.store(shard.consumed, std::memory_order_release);
  if (checkpoints_) {
    checkpoints_->inc();
    checkpoint_bytes_->set(static_cast<std::int64_t>(frame_size));
    checkpoint_duration_->observe(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
  }
}

void ShardedRunner::trim_backup(Shard& shard) {
  const std::uint64_t upto = shard.ckpt_consumed.load(std::memory_order_acquire);
  while (shard.trimmed < upto && !shard.backup.empty()) {
    shard.backup.pop_front();
    ++shard.trimmed;
  }
}

void ShardedRunner::admit_to_backup(Shard& shard, const Event& e) {
  trim_backup(shard);
  // Bounded ring: block (yielding) until a checkpoint retires enough of
  // the backlog. Steady state never gets here — between trims the ring
  // holds at most checkpoint_every + queue_capacity events.
  SpinBackoff backoff;
  while (shard.backup.size() >= backup_capacity_) {
    if (shard.dead.load(std::memory_order_acquire)) {
      // A dead worker will never checkpoint; recover first (replays the
      // backup and trims it), then resume admitting. supervise may throw
      // (kFail exhaustion) or drop the shard — the caller re-checks.
      if (!supervise_dead_shard(shard)) return;
    }
    backoff.pause();
    trim_backup(shard);
  }
  shard.backup.push_back(e);
  ++shard.pushed;
}

void ShardedRunner::drop_shard(Shard& shard) {
  shard.dropped = true;
  // Everything not yet covered by a checkpoint is lost: the un-replayed
  // backup now, plus whatever the producer routes here later.
  trim_backup(shard);
  const std::uint64_t lost = shard.backup.size();
  shard.dropped_events += lost;
  shard.backup.clear();
  shard.queue = std::make_unique<SpscQueue<Event>>(queue_capacity_);
  // A fresh empty sink so take_output() sees only the stable prefix, not
  // the dead incarnation's uncheckpointed emissions.
  shard.sink = std::make_shared<CollectingTaggedSink>();
  shard.dead.store(false, std::memory_order_release);
  shard.error = nullptr;
  ++degraded_.dropped_shards;
  degraded_.dropped_events += lost;
  {
    std::lock_guard<std::mutex> lock(shard.ckpt_mu);
    degraded_.stable_matches_kept += shard.stable_matches.size();
  }
  if (dropped_shards_obs_) dropped_shards_obs_->inc();
  if (dropped_events_obs_) dropped_events_obs_->inc(lost);
}

bool ShardedRunner::supervise_dead_shard(Shard& shard) {
  if (shard.worker.joinable()) shard.worker.join();
  while (true) {
    if (shard.restarts >= recovery_.max_restarts) {
      if (recovery_.on_exhausted == RestartPolicy::kDegradeDropShard) {
        drop_shard(shard);
        return false;
      }
      rethrow_worker_error(shard);
    }
    ++shard.restarts;
    if (restarts_obs_) restarts_obs_->inc();
    // Exponential backoff, capped. Shift count is bounded by the cap
    // check, not the restart count, so a large budget cannot overflow.
    std::chrono::milliseconds wait = recovery_.backoff;
    for (std::size_t i = 1; i < shard.restarts && wait < recovery_.max_backoff; ++i)
      wait *= 2;
    wait = std::min(wait, recovery_.max_backoff);
    if (wait.count() > 0) std::this_thread::sleep_for(wait);

    const auto t0 = std::chrono::steady_clock::now();
    // Rebuild the execution state from scratch; the dead incarnation's
    // queue contents are a suffix of the backup, and its sink holds only
    // post-checkpoint emissions that replay will regenerate — discard
    // both wholesale.
    shard.queue = std::make_unique<SpscQueue<Event>>(queue_capacity_);
    shard.sink = std::make_shared<CollectingTaggedSink>();
    shard.runner =
        std::make_unique<MultiQueryRunner>(registry_, shard.sink, share_scans_);
    for (const ShardQuerySpec& spec : specs_)
      shard.runner->add_query(spec.query, spec.kind, spec.options);
    shard.runner->prepare();
    try {
      std::uint64_t replayed = 0;
      std::uint64_t ckpt_consumed = 0;
      {
        std::lock_guard<std::mutex> lock(shard.ckpt_mu);
        if (!shard.ckpt_bytes.empty()) {
          CheckpointReader r(shard.ckpt_bytes);
          shard.runner->restore(r);
          r.expect_done();
        }
        ckpt_consumed = shard.ckpt_consumed_locked;
      }
      // Replay the backup suffix the checkpoint does not cover. The trim
      // watermark may lag the locked consumed count (it is published
      // after the lock), so skip what the checkpoint already absorbed.
      OOSP_CHECK(ckpt_consumed >= shard.trimmed,
                 "checkpoint watermark behind the backup trim point");
      const std::uint64_t skip = ckpt_consumed - shard.trimmed;
      for (std::size_t i = static_cast<std::size_t>(skip); i < shard.backup.size(); ++i) {
        const Event& ev = shard.backup[i];
        // Replay runs the same processing a live worker would, so an
        // event that deterministically crashes processing crashes the
        // replay too — each attempt burns a restart until the budget is
        // spent. Transient faults (WorkerKillFault fires once per
        // victim) kill at most one attempt and then converge.
        if (recovery_.kill_hook && recovery_.kill_hook(ev)) throw WorkerKilled(ev.id);
        if (recovery_.delay_hook) recovery_.delay_hook(ev);
        shard.runner->on_event(ev);
        ++replayed;
      }
      shard.consumed = ckpt_consumed + replayed;
      replayed_events_ += replayed;
      if (replayed_obs_) replayed_obs_->inc(replayed);
      // Post-recovery checkpoint: retires the replayed suffix from the
      // ring (bounding a repeat crash) and moves the regenerated matches
      // to stable storage.
      checkpoint_shard(shard);
      trim_backup(shard);
    } catch (...) {
      // Restore/replay failed (e.g. a deterministic engine fault) —
      // charge a restart and try again until the budget runs out.
      shard.error = std::current_exception();
      if (worker_failures_) worker_failures_->inc();
      continue;
    }
    shard.dead.store(false, std::memory_order_release);
    shard.error = nullptr;
    shard.worker = std::thread([this, s = &shard] { worker_loop(*s); });
    if (recovery_duration_)
      recovery_duration_->observe(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()));
    return true;
  }
}

void ShardedRunner::rethrow_worker_error(const Shard& shard) {
  OOSP_CHECK(shard.error != nullptr, "dead shard without a stored exception");
  // Each failure surfaces exactly once: whichever of on_event / finish
  // trips over it first throws; a later finish() is orderly teardown.
  error_surfaced_ = true;
  std::rethrow_exception(shard.error);
}

void ShardedRunner::account_shed(Shard& shard, const Event& e, bool forced) {
  ++degraded_.shed_events;
  if (e.type < queries_by_type_.size())
    for (const QueryId q : queries_by_type_[e.type]) ++shed_by_query_[q];
  if (Counter* c = shard.monitor->shed_counter()) c->inc();
  if (forced)
    if (Counter* c = shard.monitor->forced_shed_counter()) c->inc();
}

bool ShardedRunner::wait_for_room(Shard& shard,
                                  std::chrono::steady_clock::duration deadline) {
  const auto give_up = std::chrono::steady_clock::now() + deadline;
  SpinBackoff backoff;
  while (shard.queue->size_approx() >= shard.queue->capacity()) {
    // A dead worker never drains; report "room" so the caller falls
    // through to the blocking push, the single owner of dead-worker
    // handling (rethrow / supervise).
    if (shard.dead.load(std::memory_order_acquire)) return true;
    if (std::chrono::steady_clock::now() >= give_up) return false;
    if (push_retries_) push_retries_->inc();
    backoff.pause();
  }
  return true;
}

bool ShardedRunner::overload_admit(Shard& shard, const Event& e) {
  OverloadMonitor& mon = *shard.monitor;
  // route_event advanced the clock past e.ts already, so lateness >= 0.
  const Timestamp clock = global_clock_.load(std::memory_order_relaxed);
  const Timestamp lateness = clock > e.ts ? clock - e.ts : 0;
  mon.observe(lateness);
  const std::size_t depth = shard.queue->size_approx();
  const Timestamp consumed = shard.consumed_clock.load(std::memory_order_relaxed);
  const Timestamp lag =
      (consumed != kMinTimestamp && clock > consumed) ? clock - consumed : 0;
  const Pressure p = mon.assess(depth, lag);
  // The producer is the ring's only writer, so "not full" cannot be
  // stolen out from under us: once size_approx() < capacity the
  // subsequent try_push is guaranteed to succeed.
  const bool full = depth >= shard.queue->capacity();
  switch (overload_.policy) {
    case OverloadPolicy::kBlock:
      break;
    case OverloadPolicy::kShedNewest:
      // Quality-blind: the arriving (newest) event is dropped the moment
      // the ring is full. Tightest producer-latency bound.
      if (full && !shard.dead.load(std::memory_order_acquire)) {
        account_shed(shard, e, false);
        return true;
      }
      break;
    case OverloadPolicy::kShedByLateness:
      // Price the event first: under pressure, arrivals past the
      // adaptive cut are shed pre-emptively — before the ring is even
      // full — leaving the remaining capacity to the fresh events that
      // still have sealed results ahead of them.
      if (mon.shed_late(lateness, p)) {
        account_shed(shard, e, false);
        return true;
      }
      if (full && !wait_for_room(shard, overload_.fresh_wait)) {
        // A fresh event hit the deadline: the cut is too permissive for
        // the offered load. Shed it (bounded latency wins) and tighten.
        mon.note_forced_shed();
        account_shed(shard, e, true);
        return true;
      }
      break;
    case OverloadPolicy::kFail:
      if (full && !wait_for_room(shard, overload_.fail_deadline))
        throw OverloadError(shard.index,
                            std::chrono::duration_cast<std::chrono::milliseconds>(
                                overload_.fail_deadline));
      break;
  }
  return false;
}

void ShardedRunner::push_blocking(Shard& shard, Event e) {
  if (shard.dropped) {
    ++shard.dropped_events;
    ++degraded_.dropped_events;
    if (dropped_events_obs_) dropped_events_obs_->inc();
    return;
  }
  if (shard.dead.load(std::memory_order_acquire)) {
    // Without supervision, fail fast even when the queue still has room —
    // the events would never be consumed anyway (the PR 3 contract).
    if (!recovery_.enabled()) rethrow_worker_error(shard);
    if (!supervise_dead_shard(shard)) {
      ++shard.dropped_events;
      ++degraded_.dropped_events;
      if (dropped_events_obs_) dropped_events_obs_->inc();
      return;
    }
  }
  // Overload admission BEFORE the backup: a shed event never enters the
  // execution stack at all — no backup entry, no replay, no checkpoint
  // interaction — so exactly-once delivery of admitted events is
  // untouched by shedding.
  if (shard.monitor && overload_admit(shard, e)) return;
  // Admit to the upstream backup BEFORE the queue: from this point on a
  // worker death replays the event from the backup, so it can never be
  // stranded in a dead incarnation's queue.
  if (recovery_.enabled()) {
    admit_to_backup(shard, e);
    if (shard.dropped) {  // supervision inside the ring spin gave up
      ++shard.dropped_events;
      ++degraded_.dropped_events;
      if (dropped_events_obs_) dropped_events_obs_->inc();
      return;
    }
  }
  SpinBackoff backoff;
  while (!shard.queue->try_push(std::move(e))) {
    if (shard.dead.load(std::memory_order_acquire)) {
      // A dead worker will never drain this queue; surface its exception
      // to the producer instead of spinning forever.
      if (!recovery_.enabled()) rethrow_worker_error(shard);
      // The event is already in the backup: supervision replays it (or
      // the drop policy accounts it) — pushing again would duplicate it.
      supervise_dead_shard(shard);
      return;
    }
    if (push_retries_) push_retries_->inc();
    backoff.pause();
  }
}

void ShardedRunner::push_batch_blocking(Shard& shard, std::vector<Event>& events) {
  // Recovery is off on this path (on_batch falls back to per-event
  // routing when it is on), so the only liveness hazard is a dead,
  // never-draining consumer — same fail-fast contract as push_blocking.
  //
  // Overload admission runs at batch granularity: lateness is observed
  // per event but pressure is graded once at entry (against the clock
  // high-water mark the staging loop already advanced), and under
  // kShedByLateness the priced-out late events are filtered before any
  // ring transaction, so the ring transactions stay bulk-sized.
  if (shard.monitor) {
    OverloadMonitor& mon = *shard.monitor;
    const Timestamp clock = global_clock_.load(std::memory_order_relaxed);
    for (const Event& e : events)
      mon.observe(clock > e.ts ? clock - e.ts : 0);
    const Timestamp consumed = shard.consumed_clock.load(std::memory_order_relaxed);
    const Timestamp lag =
        (consumed != kMinTimestamp && clock > consumed) ? clock - consumed : 0;
    const Pressure p = mon.assess(shard.queue->size_approx(), lag);
    if (overload_.policy == OverloadPolicy::kShedByLateness &&
        p >= Pressure::kWarn) {
      auto keep = events.begin();
      for (auto it = events.begin(); it != events.end(); ++it) {
        const Timestamp lateness = clock > it->ts ? clock - it->ts : 0;
        if (mon.shed_late(lateness, p)) {
          account_shed(shard, *it, false);
        } else {
          if (keep != it) *keep = std::move(*it);
          ++keep;
        }
      }
      events.erase(keep, events.end());
    }
  }
  std::span<Event> rest(events);
  SpinBackoff backoff;
  while (!rest.empty()) {
    // Dead-worker fail-fast parity with the scalar path: checked on
    // EVERY iteration, before each ring transaction — including after a
    // partial push — so a worker killed mid-batch surfaces its error
    // here instead of the producer quietly filling (or spinning on) a
    // queue nobody will ever drain.
    if (shard.dead.load(std::memory_order_acquire)) rethrow_worker_error(shard);
    const std::size_t n = shard.queue->try_push_n(rest);
    if (n > 0) {
      rest = rest.subspan(n);
      // Occupancy sample for the depth gauge, taken AFTER the chunk
      // landed — a genuine reading, never above capacity.
      if (shard.queue_depth)
        shard.queue_depth->set(
            static_cast<std::int64_t>(shard.queue->size_approx()));
      backoff.reset();
      continue;
    }
    // Ring full with a live worker: apply the overload policy to the
    // unpushed remainder (the newest events of the batch).
    if (shard.monitor) {
      switch (overload_.policy) {
        case OverloadPolicy::kBlock:
          break;
        case OverloadPolicy::kShedNewest:
          for (const Event& e : rest) account_shed(shard, e, false);
          return;
        case OverloadPolicy::kShedByLateness:
          if (!wait_for_room(shard, overload_.fresh_wait)) {
            shard.monitor->note_forced_shed();
            for (const Event& e : rest) account_shed(shard, e, true);
            return;
          }
          continue;  // room appeared (or the worker died; loop-top check)
        case OverloadPolicy::kFail:
          if (!wait_for_room(shard, overload_.fail_deadline))
            throw OverloadError(shard.index,
                                std::chrono::duration_cast<std::chrono::milliseconds>(
                                    overload_.fail_deadline));
          continue;
      }
    }
    if (push_retries_) push_retries_->inc();
    backoff.pause();
  }
}

void ShardedRunner::route_event(const Event& e) {
  if (e.ts > global_clock_.load(std::memory_order_relaxed))
    global_clock_.store(e.ts, std::memory_order_relaxed);
  const std::size_t slot = partition_.slot_for(e.type);
  if (slot == PartitionSpec::kTickOnly || slot >= e.attrs.size()) {
    // Relevant to no query (pure clock progress) — every shard needs it.
    // A keyed type whose event is missing the key attribute (malformed
    // input) also lands here: broadcast is harmless because schema
    // validation rejects it inside each engine before it touches state.
    if (broadcasts_) broadcasts_->inc();
    for (auto& shard : shards_) push_blocking(*shard, e);
    return;
  }
  const std::size_t target = hasher_(e.attrs[slot]) % shards_.size();
  push_blocking(*shards_[target], e);
}

void ShardedRunner::on_event(const Event& e) {
  OOSP_REQUIRE(!finished_, "on_event after finish");
  ++events_seen_;
  route_event(e);
}

void ShardedRunner::on_batch(std::span<const Event> batch) {
  OOSP_REQUIRE(!finished_, "on_batch after finish");
  events_seen_ += batch.size();
  if (recovery_.enabled() || batch.size() == 1) {
    // Per-event routing: the backup ring's admit-before-push invariant is
    // per event (see header), and a batch of one gains nothing from
    // staging.
    for (const Event& e : batch) route_event(e);
    return;
  }
  if (batch_stage_.size() != shards_.size()) batch_stage_.resize(shards_.size());
  for (const Event& e : batch) {
    if (e.ts > global_clock_.load(std::memory_order_relaxed))
      global_clock_.store(e.ts, std::memory_order_relaxed);
    const std::size_t slot = partition_.slot_for(e.type);
    if (slot == PartitionSpec::kTickOnly || slot >= e.attrs.size()) {
      if (broadcasts_) broadcasts_->inc();
      for (auto& stage : batch_stage_) stage.push_back(e);
      continue;
    }
    const std::size_t target = hasher_(e.attrs[slot]) % shards_.size();
    batch_stage_[target].push_back(e);
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (batch_stage_[i].empty()) continue;
    if (shards_[i]->dropped) {
      // Should be unreachable (dropping requires recovery, which routes
      // per event above), but keep the accounting correct regardless.
      shards_[i]->dropped_events += batch_stage_[i].size();
      degraded_.dropped_events += batch_stage_[i].size();
      if (dropped_events_obs_) dropped_events_obs_->inc(batch_stage_[i].size());
    } else {
      push_batch_blocking(*shards_[i], batch_stage_[i]);
    }
    batch_stage_[i].clear();
  }
}

void ShardedRunner::finish() {
  if (finished_) return;
  finished_ = true;
  for (auto& shard : shards_) shard->stop.store(true, std::memory_order_release);
  for (auto& shard : shards_)
    if (shard->worker.joinable()) shard->worker.join();
  if (recovery_.enabled()) {
    // A worker that died during the drain (or earlier, with nothing routed
    // to it since) is recovered even now: supervision restores + replays,
    // and because stop is already set the respawned incarnation drains its
    // (empty) queue, finishes, and exits — loop until the shard ends the
    // run alive with final stats recorded, or is dropped.
    for (auto& shard : shards_) {
      while (shard->dead.load(std::memory_order_acquire)) {
        if (!supervise_dead_shard(*shard)) break;  // dropped
        if (shard->worker.joinable()) shard->worker.join();
      }
    }
  }
  // All threads are gone; surface the first failure (deterministically by
  // shard index) now that the runner is safe to destroy — unless the
  // producer already took it from a push. finished_ was set first, so a
  // retry does not re-join or re-throw — accessors below still work for
  // the surviving shards.
  if (error_surfaced_) return;
  for (auto& shard : shards_)
    if (shard->dead.load(std::memory_order_acquire)) rethrow_worker_error(*shard);
}

bool ShardedRunner::worker_failed() const noexcept {
  for (const auto& shard : shards_)
    if (shard->dead.load(std::memory_order_acquire)) return true;
  return false;
}

std::vector<TaggedMatch> ShardedRunner::take_output() {
  OOSP_CHECK(finished_, "take_output before finish");
  // Per shard: the checkpoint-stable prefix, then everything the final
  // incarnation emitted after its last checkpoint. The merge canonicalizes
  // order, so the concatenation point is invisible in the output.
  std::vector<std::vector<TaggedMatch>> streams;
  streams.reserve(shards_.size() * 2);
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->ckpt_mu);
    streams.push_back(std::move(shard->stable_matches));
    streams.push_back(shard->sink->take());
  }
  return merge_match_streams(std::move(streams));
}

std::vector<TaggedMatch> ShardedRunner::take_retractions() {
  OOSP_CHECK(finished_, "take_retractions before finish");
  std::vector<std::vector<TaggedMatch>> streams;
  streams.reserve(shards_.size() * 2);
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->ckpt_mu);
    streams.push_back(std::move(shard->stable_retractions));
    streams.push_back(shard->sink->take_retracted());
  }
  return merge_match_streams(std::move(streams));
}

EngineStats ShardedRunner::stats(QueryId id) const {
  OOSP_CHECK(finished_, "stats before finish (workers still own the engines)");
  EngineStats merged;
  for (const auto& shard : shards_) {
    // A shard whose worker died never recorded final stats; its partial
    // counters are unreadable (the engines may be mid-mutation), so the
    // merge covers the surviving shards only.
    if (shard->final_stats.empty()) continue;
    merged += shard->final_stats.at(id);
  }
  return merged;
}

std::vector<std::pair<QueryId, Event>> ShardedRunner::drain_quarantine() {
  OOSP_CHECK(finished_, "drain_quarantine before finish");
  std::vector<std::pair<QueryId, Event>> out;
  for (auto& shard : shards_) {
    auto drained = shard->runner->drain_quarantine();
    std::move(drained.begin(), drained.end(), std::back_inserter(out));
  }
  return out;
}

std::size_t ShardedRunner::restarts_total() const noexcept {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->restarts;
  return total;
}

DegradedAccounting ShardedRunner::degraded_accounting() const noexcept {
  return degraded_;
}

std::uint64_t ShardedRunner::events_routed() const {
  OOSP_CHECK(finished_, "events_routed before finish");
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->runner->events_routed();
  return total;
}

}  // namespace oosp
