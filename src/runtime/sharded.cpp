#include "runtime/sharded.hpp"

#include <algorithm>
#include <tuple>
#include <utility>

#include "common/contracts.hpp"

namespace oosp {

std::optional<PartitionSpec> PartitionSpec::build(std::span<const ShardQuerySpec> specs,
                                                  const TypeRegistry& registry,
                                                  std::string* reject_reason) {
  const auto reject = [&](std::string why) -> std::optional<PartitionSpec> {
    if (reject_reason) *reject_reason = std::move(why);
    return std::nullopt;
  };

  PartitionSpec out;
  out.slots_.assign(registry.size(), kTickOnly);
  for (const ShardQuerySpec& spec : specs) {
    OOSP_REQUIRE(spec.query != nullptr, "PartitionSpec: null query");
    const CompiledQuery& q = *spec.query;
    if (!q.partitionable())
      return reject("query lacks a full equi-join key: " + q.text());
    for (TypeId t = 0; t < registry.size(); ++t) {
      for (const std::size_t step : q.steps_for_type(t)) {
        const std::size_t slot = q.partition_slots()[step];
        if (slot == CompiledStep::npos)
          return reject("negated step outside the equi-join class in: " + q.text());
        if (out.slots_[t] == kTickOnly) {
          out.slots_[t] = slot;
        } else if (out.slots_[t] != slot) {
          return reject("conflicting partition attributes for type '" +
                        std::string(registry.name(t)) + "'");
        }
      }
    }
  }
  return out;
}

std::vector<TaggedMatch> merge_match_streams(
    std::vector<std::vector<TaggedMatch>> streams) {
  std::size_t total = 0;
  for (const auto& s : streams) total += s.size();

  struct Decorated {
    Timestamp seal_ts;
    QueryId query;
    MatchKey key;
    TaggedMatch* source;
  };
  std::vector<Decorated> order;
  order.reserve(total);
  for (auto& stream : streams)
    for (TaggedMatch& tm : stream)
      order.push_back(
          Decorated{tm.match.last_ts(), tm.query, match_key(tm.match), &tm});
  std::sort(order.begin(), order.end(), [](const Decorated& a, const Decorated& b) {
    return std::tie(a.seal_ts, a.query, a.key) < std::tie(b.seal_ts, b.query, b.key);
  });

  std::vector<TaggedMatch> merged;
  merged.reserve(total);
  for (const Decorated& d : order) merged.push_back(std::move(*d.source));
  return merged;
}

ShardedRunner::ShardedRunner(const TypeRegistry& registry,
                             std::vector<ShardQuerySpec> specs, std::size_t num_shards,
                             PartitionSpec partition, std::size_t queue_capacity,
                             MetricsRegistry* metrics)
    : registry_(registry), specs_(std::move(specs)), partition_(partition) {
  OOSP_REQUIRE(num_shards >= 1, "ShardedRunner needs at least one shard");
  if (metrics) {
    push_retries_ = metrics->counter("oosp_shard_push_retries_total");
    worker_failures_ = metrics->counter("oosp_shard_worker_failures_total");
    broadcasts_ = metrics->counter("oosp_shard_broadcasts_total");
  }
  shards_.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->queue = std::make_unique<SpscQueue<Event>>(queue_capacity);
    shard->sink = std::make_shared<CollectingTaggedSink>();
    shard->runner = std::make_unique<MultiQueryRunner>(registry_, shard->sink);
    for (const ShardQuerySpec& spec : specs_)
      shard->runner->add_query(spec.query, spec.kind, spec.options);
    if (metrics) {
      shard->queue_depth = metrics->gauge("oosp_shard_queue_depth", GaugeAgg::kMax);
      shard->watermark_lag = metrics->gauge("oosp_shard_watermark_lag", GaugeAgg::kMax);
      shard->merge_occupancy =
          metrics->gauge("oosp_shard_merge_occupancy", GaugeAgg::kSum);
    }
    shards_.push_back(std::move(shard));
  }
  // Start the workers only after every runner is fully built; the thread
  // start is the publication point for the engine state they consume.
  for (auto& shard : shards_)
    shard->worker = std::thread([this, s = shard.get()] { worker_loop(*s); });
}

ShardedRunner::~ShardedRunner() {
  // Stop without delivering: finish() is the orderly path; this only
  // guarantees the threads are gone.
  for (auto& shard : shards_) shard->stop.store(true, std::memory_order_release);
  for (auto& shard : shards_)
    if (shard->worker.joinable()) shard->worker.join();
}

void ShardedRunner::worker_loop(Shard& shard) {
  try {
    Event e;
    for (;;) {
      if (shard.queue->try_pop(e)) {
        if (shard.watermark_lag) {
          // How far this shard trails the stream: the newest timestamp the
          // producer has routed anywhere minus the one being consumed now.
          const Timestamp newest = global_clock_.load(std::memory_order_relaxed);
          if (newest != kMinTimestamp && newest > e.ts)
            shard.watermark_lag->set(newest - e.ts);
          shard.queue_depth->set(
              static_cast<std::int64_t>(shard.queue->size_approx()));
        }
        shard.runner->on_event(e);
        if (shard.merge_occupancy)
          shard.merge_occupancy->set(
              static_cast<std::int64_t>(shard.sink->matches().size()));
        continue;
      }
      if (shard.stop.load(std::memory_order_acquire) && shard.queue->empty()) break;
      std::this_thread::yield();
    }
    shard.runner->finish();
    shard.final_stats.reserve(shard.runner->query_count());
    for (QueryId q = 0; q < shard.runner->query_count(); ++q)
      shard.final_stats.push_back(shard.runner->stats(q));
  } catch (...) {
    // Publish the failure before the liveness flag: the producer only
    // reads `error` after an acquire load sees dead == true.
    shard.error = std::current_exception();
    if (worker_failures_) worker_failures_->inc();
    shard.dead.store(true, std::memory_order_release);
  }
}

void ShardedRunner::rethrow_worker_error(const Shard& shard) {
  OOSP_CHECK(shard.error != nullptr, "dead shard without a stored exception");
  // Each failure surfaces exactly once: whichever of on_event / finish
  // trips over it first throws; a later finish() is orderly teardown.
  error_surfaced_ = true;
  std::rethrow_exception(shard.error);
}

void ShardedRunner::push_blocking(Shard& shard, Event e) {
  // Fail fast on a dead worker even when its queue still has room — the
  // events would never be consumed anyway.
  if (shard.dead.load(std::memory_order_acquire)) rethrow_worker_error(shard);
  while (!shard.queue->try_push(std::move(e))) {
    // A dead worker will never drain this queue; surface its exception to
    // the producer instead of spinning forever.
    if (shard.dead.load(std::memory_order_acquire)) rethrow_worker_error(shard);
    if (push_retries_) push_retries_->inc();
    std::this_thread::yield();
  }
}

void ShardedRunner::on_event(const Event& e) {
  OOSP_REQUIRE(!finished_, "on_event after finish");
  ++events_seen_;
  if (e.ts > global_clock_.load(std::memory_order_relaxed))
    global_clock_.store(e.ts, std::memory_order_relaxed);
  const std::size_t slot = partition_.slot_for(e.type);
  if (slot == PartitionSpec::kTickOnly || slot >= e.attrs.size()) {
    // Relevant to no query (pure clock progress) — every shard needs it.
    // A keyed type whose event is missing the key attribute (malformed
    // input) also lands here: broadcast is harmless because schema
    // validation rejects it inside each engine before it touches state.
    if (broadcasts_) broadcasts_->inc();
    for (auto& shard : shards_) push_blocking(*shard, e);
    return;
  }
  const std::size_t target = hasher_(e.attrs[slot]) % shards_.size();
  push_blocking(*shards_[target], e);
}

void ShardedRunner::finish() {
  if (finished_) return;
  finished_ = true;
  for (auto& shard : shards_) shard->stop.store(true, std::memory_order_release);
  for (auto& shard : shards_)
    if (shard->worker.joinable()) shard->worker.join();
  // All threads are gone; surface the first failure (deterministically by
  // shard index) now that the runner is safe to destroy — unless the
  // producer already took it from a push. finished_ was set first, so a
  // retry does not re-join or re-throw — accessors below still work for
  // the surviving shards.
  if (error_surfaced_) return;
  for (auto& shard : shards_)
    if (shard->dead.load(std::memory_order_acquire)) rethrow_worker_error(*shard);
}

bool ShardedRunner::worker_failed() const noexcept {
  for (const auto& shard : shards_)
    if (shard->dead.load(std::memory_order_acquire)) return true;
  return false;
}

std::vector<TaggedMatch> ShardedRunner::take_output() {
  OOSP_CHECK(finished_, "take_output before finish");
  std::vector<std::vector<TaggedMatch>> streams;
  streams.reserve(shards_.size());
  for (auto& shard : shards_) streams.push_back(shard->sink->take());
  return merge_match_streams(std::move(streams));
}

std::vector<TaggedMatch> ShardedRunner::take_retractions() {
  OOSP_CHECK(finished_, "take_retractions before finish");
  std::vector<std::vector<TaggedMatch>> streams;
  streams.reserve(shards_.size());
  for (auto& shard : shards_) streams.push_back(shard->sink->take_retracted());
  return merge_match_streams(std::move(streams));
}

EngineStats ShardedRunner::stats(QueryId id) const {
  OOSP_CHECK(finished_, "stats before finish (workers still own the engines)");
  EngineStats merged;
  for (const auto& shard : shards_) {
    // A shard whose worker died never recorded final stats; its partial
    // counters are unreadable (the engines may be mid-mutation), so the
    // merge covers the surviving shards only.
    if (shard->final_stats.empty()) continue;
    merged += shard->final_stats.at(id);
  }
  return merged;
}

std::uint64_t ShardedRunner::events_routed() const {
  OOSP_CHECK(finished_, "events_routed before finish");
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->runner->events_routed();
  return total;
}

}  // namespace oosp
