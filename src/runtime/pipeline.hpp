// Hierarchical (multi-stage) complex event processing.
//
// CEP engines commonly feed detected matches back in as COMPOSITE events
// so higher-level patterns can be expressed over lower-level detections
// (e.g. per-pallet reads composed from per-item reads, or "three brute-
// force alerts from the same subnet within an hour"). CompositeEmitter
// is a MatchSink that converts each match of an upstream query into an
// event of a registered composite type and pushes it straight into a
// downstream engine.
//
// Out-of-order composition: the upstream engine may emit matches out of
// timestamp order (a late constituent produces a late match). The
// composite event's timestamp is the match's completing timestamp
// (last_ts), and its lateness as seen downstream equals the upstream
// match's detection delay — so the downstream engine's slack must cover
// the upstream engine's maximum detection delay (upstream slack K for
// pure-positive patterns; K plus sealing wait for negation patterns).
// CompositeEmitter tracks the observed lateness so callers can assert
// their chosen downstream slack was sufficient.
//
// Retractions are NOT composable: an upstream engine running the
// aggressive policy would retract composite events the downstream engine
// already consumed. CompositeEmitter therefore refuses retractions —
// run upstream stages with the conservative policy.
#pragma once

#include <functional>

#include "engine/core/engine.hpp"

namespace oosp {

class CompositeEmitter final : public MatchSink {
 public:
  // Builds attribute values for the composite event from a match.
  using Mapper = std::function<std::vector<Value>(const Match&)>;

  // `composite_type` must be registered (with a schema matching what
  // `mapper` produces) in the registry the downstream query was compiled
  // against. Event ids are assigned from `first_id` — pick a range
  // disjoint from the base stream's ids.
  CompositeEmitter(TypeId composite_type, Mapper mapper, PatternEngine& downstream,
                   EventId first_id);

  void on_match(Match&& m) override;
  [[noreturn]] void on_retract(const Match& m) override;

  // How many composite events were emitted, and the largest lateness the
  // downstream engine observed from them (max upstream detection delay).
  std::uint64_t emitted() const noexcept { return emitted_; }
  Timestamp max_downstream_lateness() const noexcept { return max_lateness_; }

 private:
  TypeId composite_type_;
  Mapper mapper_;
  PatternEngine& downstream_;
  EventId next_id_;
  ArrivalSeq next_arrival_ = 0;
  std::uint64_t emitted_ = 0;
  Timestamp max_ts_emitted_ = kMinTimestamp;
  Timestamp max_lateness_ = 0;
};

}  // namespace oosp
