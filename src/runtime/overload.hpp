// Overload control: quality-driven load shedding and bounded
// backpressure for the sharded producer path.
//
// The K-slack and native OOO operators assume the system can always
// buffer until the slack horizon; under sustained overload the only
// pre-existing mechanism was an unbounded producer spin on a full shard
// queue — latency and buffer footprint grow without bound and the
// Session blocks forever. This subsystem makes the degradation a
// POLICY instead of an accident:
//
//   kBlock          today's behavior: spin until the worker drains.
//                   Exact, unbounded producer latency.
//   kShedNewest     drop the arriving event when the shard's queue is
//                   full. Tight latency bound, quality-blind: fresh and
//                   late events are shed alike.
//   kShedByLateness drop the events the lateness distribution says are
//                   least likely to affect sealed results FIRST: under
//                   pressure, arrivals later than an adaptive cut
//                   (seeded from the SlackEstimator's lateness quantile)
//                   are shed pre-emptively, and a fresh event on a full
//                   queue gets a bounded wait before it is force-shed
//                   (which tightens the cut — AIMD toward the shed rate
//                   the overload actually requires). The quality-driven
//                   disorder-handling result (Ji et al., PAPERS.md):
//                   lateness-informed shedding preserves far more recall
//                   than blind drops, because the latest events are the
//                   ones the engines would late-drop or purge anyway.
//   kFail           bounded wait, then throw OverloadError to the
//                   producer. For callers that prefer failing loudly
//                   over degrading silently.
//
// Shedding happens at ADMISSION, in the Session/ShardedRunner producer
// path, never inside engines: an event is either admitted (and then
// backed up, replayed, checkpointed and delivered exactly-once like any
// other) or it never existed as far as the execution stack is
// concerned. Checkpoint byte formats, recovery replay and the delivery
// contract are untouched; what changes is only WHICH prefix of the
// offered stream the engines see, and that difference is fully
// accounted (DegradedAccounting::shed_events, per-query shed counts,
// oosp_overload_shed_total).
//
// The per-shard OverloadMonitor fuses three signals into a graded
// pressure level (kOk/kWarn/kShed), exported as oosp_overload_pressure:
//   * queue depth as a fraction of capacity (the direct signal);
//   * watermark lag — how far the shard's consumed stream time trails
//     the producer's high-water mark, in multiples of the estimated
//     lateness scale (a slow consumer shows here before its queue
//     fills, because the producer outruns it in stream time);
//   * the SlackEstimator lateness distribution of this shard's
//     arrivals, which prices each event's shedding cost.
//
// Single-shard sessions have no ingress queue (the producer IS the
// consumer), so overload control is inert there by construction.
#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "event/event.hpp"
#include "obs/metrics.hpp"
#include "stream/slack_estimator.hpp"

namespace oosp {

enum class OverloadPolicy : std::uint8_t {
  kBlock,           // unbounded backpressure spin (exact; the default)
  kShedNewest,      // drop arrivals on a full queue
  kShedByLateness,  // drop quality-priced late arrivals first
  kFail,            // bounded wait, then throw OverloadError
};

std::string_view to_string(OverloadPolicy p) noexcept;

// Graded pressure signal, worst shard exported via oosp_overload_pressure.
enum class Pressure : std::uint8_t { kOk = 0, kWarn = 1, kShed = 2 };

std::string_view to_string(Pressure p) noexcept;

// Thrown to the producer by OverloadPolicy::kFail when a shard's queue
// stayed full past the bounded-wait deadline.
class OverloadError : public std::runtime_error {
 public:
  OverloadError(std::size_t shard, std::chrono::milliseconds waited)
      : std::runtime_error("overload: shard " + std::to_string(shard) +
                           " queue full past the " + std::to_string(waited.count()) +
                           "ms deadline"),
        shard_(shard) {}
  std::size_t shard() const noexcept { return shard_; }

 private:
  std::size_t shard_;
};

struct OverloadConfig {
  OverloadPolicy policy = OverloadPolicy::kBlock;

  // Queue-depth fractions (of the ring's usable capacity) where the
  // pressure grade steps up. Depth >= shed_fraction * capacity — or a
  // plainly full ring — is kShed.
  double warn_fraction = 0.50;
  double shed_fraction = 0.875;

  // Watermark-lag escalation: the shard's consumed stream time trailing
  // the producer's routed high-water mark by more than factor * max(1,
  // estimated lateness scale) raises the grade, independent of depth.
  double lag_warn_factor = 4.0;
  double lag_shed_factor = 16.0;

  // kShedByLateness: the shed cut starts at this quantile of observed
  // lateness; forced sheds (fresh event, full queue, deadline expired)
  // halve it, sustained kOk pressure doubles it back toward the
  // quantile. Events with lateness >= cut are shed while pressure is
  // kWarn or worse.
  double shed_quantile = 0.90;

  // kShedByLateness: how long a FRESH (below-cut) event may wait for
  // queue room before it is force-shed. The producer's per-push latency
  // bound under this policy.
  std::chrono::microseconds fresh_wait{2000};

  // kFail: how long any event may wait for queue room before the push
  // throws OverloadError.
  std::chrono::milliseconds fail_deadline{100};

  // Lateness sampling (ring size, refresh cadence). The estimator's
  // quantile/headroom fields are not used here — shed_quantile above
  // prices sheds, and headroom is a slack-sizing concept.
  SlackEstimatorConfig estimator;

  bool active() const noexcept { return policy != OverloadPolicy::kBlock; }
};

// Per-shard pressure assessment and shed pricing. Producer-thread owned:
// every member is updated and read from the single routing thread, so
// there is no synchronization here — the cross-thread inputs (queue
// depth, consumed clock) are sampled by the caller from the shard's
// atomics and passed in.
class OverloadMonitor {
 public:
  // `queue_capacity` is the ring's USABLE slot count. When `metrics` is
  // set, registers one slot each of oosp_overload_pressure (kMax),
  // oosp_overload_lateness_cut (kMax), oosp_overload_shed_total and
  // oosp_overload_shed_forced_total for this shard.
  OverloadMonitor(const OverloadConfig& config, std::size_t queue_capacity,
                  MetricsRegistry* metrics);

  // Records one arrival's lateness (producer clock high-water minus the
  // event's ts; 0 for in-order arrivals) and periodically refreshes the
  // lateness scale and the shed cut from the sample ring.
  void observe(Timestamp lateness);

  // Fuses queue depth and watermark lag into the graded signal and
  // publishes it. `lag` is in stream-time units (>= 0).
  Pressure assess(std::size_t depth, Timestamp lag);

  // kShedByLateness pricing: should an arrival this late be shed at
  // this pressure grade?
  bool shed_late(Timestamp lateness, Pressure p) const noexcept {
    return p >= Pressure::kWarn && lateness >= cut_;
  }

  // A fresh event had to be force-shed (full queue past the bounded
  // wait): the cut is too permissive for the offered load — halve it so
  // the policy sheds earlier, at the late end, instead of losing fresh
  // events to the deadline.
  void note_forced_shed();

  // Accounting taps (also mirrored to the metric slots by the caller's
  // use of shed()/shed_forced()).
  Counter* shed_counter() const noexcept { return shed_; }
  Counter* forced_shed_counter() const noexcept { return shed_forced_; }

  Timestamp lateness_cut() const noexcept { return cut_; }
  Timestamp lateness_scale() const noexcept { return scale_; }
  Pressure last_pressure() const noexcept { return last_; }

 private:
  void refresh_cut();

  const OverloadConfig& config_;  // owned by the ShardedRunner; outlives us
  std::size_t capacity_;
  std::size_t warn_depth_;
  std::size_t shed_depth_;
  SlackEstimator lateness_;   // sample ring only; its estimate() is unused
  std::size_t since_refresh_ = 0;
  // Current shed cut (kShedByLateness) and the scale the lag factors
  // multiply. Both refreshed from the ring every estimator refresh
  // period; the cut additionally moves under AIMD (see note_forced_shed).
  Timestamp cut_ = kMaxTimestamp;
  Timestamp scale_ = 1;
  Pressure last_ = Pressure::kOk;
  // Metric slots (null when metrics are disabled).
  Gauge* pressure_ = nullptr;
  Gauge* cut_obs_ = nullptr;
  Counter* shed_ = nullptr;
  Counter* shed_forced_ = nullptr;
};

}  // namespace oosp
