// Plan-time grouping for the shared multi-query sequence scan (MQO).
//
// N queries over the same event types pay the SSC arrival-side cost
// (admission, dedup, stack insertion, watermark/purge bookkeeping) N
// times when each runs on its own engine. The planner buckets compiled
// queries whose scans are physically compatible — same engine kind and
// state-shaping options, a shared SEQ-prefix, and (when partitioned)
// agreeing per-type key attributes — into ScanGroupPlans; at execution
// time a SharedScanGroup (engine/ooo/shared_scan.hpp) maintains ONE set
// of timestamp-ordered Active Instance Stacks per group while sequence
// construction and predicate evaluation stay per-query.
//
// Grouping is deterministic: entries are visited in registration order
// and greedily join the first compatible open bucket, so the same query
// set always produces the same plan (checkpoints rely on this — a group
// is snapshotted once, and restore re-plans to the identical layout).
// Queries that cannot share (negation, non-OOO kind, adaptive slack,
// trace hooks, RIP caching, key-attribute conflicts) and buckets that
// end up with a single member fall back to per-query engines, so the
// optimization is invisible except in throughput.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "engine/core/sink.hpp"
#include "engine/engines.hpp"
#include "query/compiled.hpp"

namespace oosp {

// One registered query as the planner sees it. QueryId is the index of
// the entry in the span handed to plan_shared_scan.
struct ScanPlanEntry {
  std::shared_ptr<const CompiledQuery> query;
  EngineKind kind = EngineKind::kOoo;
  EngineOptions options;
};

// One shared-scan group: >= 2 queries that will maintain a single set of
// per-type stacks.
struct ScanGroupPlan {
  std::vector<QueryId> members;       // ascending registration order
  std::size_t shared_prefix_len = 0;  // longest common positive-type prefix
  bool partitioned = false;           // every member keys uniformly per type

  // Union of the members' relevant types, ascending.
  std::vector<TypeId> types;

  // Indexed by TypeId; the equi-join slot for that type when
  // `partitioned` (entries for types outside `types` are npos).
  std::vector<std::size_t> type_slot;
};

struct ScanPlan {
  std::vector<ScanGroupPlan> groups;
  std::vector<QueryId> solo;  // ascending; run on per-query engines
};

// Why `e` can never join a shared-scan group; empty when it is eligible.
// Surfaced through docs/diagnostics so "my query didn't group" is
// answerable.
std::string shared_scan_exclusion(const ScanPlanEntry& e);

// Buckets `entries` into shared-scan groups. With `enabled` false (or
// for ineligible/singleton entries) everything lands in `solo`.
ScanPlan plan_shared_scan(std::span<const ScanPlanEntry> entries, bool enabled);

}  // namespace oosp
