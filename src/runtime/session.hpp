// Session: the unified public entry point to the runtime.
//
// Everything the library can execute — one query or many, one thread or
// a sharded fleet — is driven through the same three calls:
//
//   auto sink = std::make_shared<CollectingTaggedSink>();
//   Session session(registry,
//                   SessionConfig{}
//                       .engine(EngineKind::kOoo)
//                       .slack(120)
//                       .shards(4)
//                       .query("PATTERN SEQ(A a, B b) WHERE a.k == b.k WITHIN 300"),
//                   sink);
//   for (const Event& e : arrivals) session.push(e);
//   session.finish();   // results delivered to the sink, canonically ordered
//
// `.query(...)` takes a QuerySpec — a plain string uses the session
// defaults, `{text, kind}` / `{text, kind, options}` override them
// per query.
//
// The Session OWNS the full execution stack: it compiles the queries
// (shared with every shard), constructs the engines through
// make_engine/EngineContext, and co-owns the sink — no borrowed raw
// pointers anywhere in the public API.
//
// ## Sharding and fallback
//
// `shards(N)` requests hash-partitioned parallel execution (see
// runtime/sharded.hpp). Sharding requires every query to declare a full
// equi-join partition key and all queries to agree on each event type's
// key attribute; when that fails, the Session transparently falls back
// to single-shard execution and reports why in shard_fallback_reason().
//
// ## Output contract
//
// Matches are delivered to the TaggedSink during finish(), in the
// canonical order (seal_ts = match.last_ts(), query id, match key) —
// identical for EVERY shard count, which is what makes parallel runs
// bit-for-bit reproducible. (Retractions — aggressive negation only —
// are delivered after the matches, in the same canonical order.) This
// batch contract is deliberate: per-event streaming delivery would make
// output ORDER depend on arrival interleaving and shard clocks, and
// under LatePolicy::kAdmit no watermark bounds how late a straggler
// match can seal, so no exact streaming merge exists. Callers that want
// raw streaming (and accept emission order) can still drive a
// single MultiQueryRunner or engine directly.
// ## Observability
//
// Every Session owns a MetricsRegistry (disable with `.metrics(false)`)
// that is injected into each engine and the shard router before
// construction. `metrics_snapshot()` aggregates the per-engine /
// per-shard slots at any time — including mid-run, the slots are
// lock-free relaxed atomics — and `metrics_text()` renders the
// Prometheus-style text exposition. `.report_every(interval)` starts a
// background reporter thread that periodically hands the exposition to
// `.report_to(fn)` (stderr by default). `.trace(hook)` installs a
// TraceHook on every engine for span-level lifecycle events.
//
// `close()` = stop the reporter + finish(). In sharded mode a worker
// that died on an exception surfaces that exception from close() /
// finish() (and from push() when its queue backs up) instead of
// hanging the producer.
#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/sharded.hpp"

namespace oosp {

// Builder-style declaration of a Session: defaults plus one entry per
// query. Defaults (engine kind, options) apply to queries that do not
// override them, regardless of declaration order.
class SessionConfig {
 public:
  // Default engine kind for queries without an explicit kind.
  SessionConfig& engine(EngineKind kind) {
    default_kind_ = kind;
    return *this;
  }
  // Default options for queries without explicit options.
  SessionConfig& options(EngineOptions options) {
    default_options_ = std::move(options);
    return *this;
  }
  // Convenience tweaks on the default options.
  SessionConfig& slack(Timestamp k) {
    default_options_.slack = k;
    return *this;
  }
  SessionConfig& late_policy(LatePolicy policy) {
    default_options_.late_policy = policy;
    return *this;
  }
  // Enable/disable the session-owned MetricsRegistry (default: enabled).
  // Disabled, every instrument pointer is null and the hot path pays a
  // single predictable branch per site.
  SessionConfig& metrics(bool enabled) {
    metrics_ = enabled;
    return *this;
  }
  // Trace hook installed on every engine (see obs/trace.hpp). The hook
  // runs on whichever thread owns the engine — a shard worker in sharded
  // mode — and must be thread-safe if shards > 1.
  SessionConfig& trace(TraceHook hook) {
    default_options_.trace = hook;
    return *this;
  }
  // Start a background reporter that renders the metrics exposition
  // every `interval` (0 = off, the default) and passes it to the
  // report_to() callback (stderr when unset). Implies metrics(true).
  SessionConfig& report_every(std::chrono::milliseconds interval) {
    report_every_ = interval;
    if (interval.count() > 0) metrics_ = true;
    return *this;
  }
  SessionConfig& report_to(std::function<void(const std::string&)> fn) {
    report_to_ = std::move(fn);
    return *this;
  }

  // Number of parallel shards (1 = single-threaded; default).
  SessionConfig& shards(std::size_t n) {
    shards_ = n;
    return *this;
  }
  // Shared-scan grouping across compatible queries (default: on). Off,
  // every query runs its own engine — the multi-query bench baseline.
  SessionConfig& share_scans(bool enabled) {
    share_scans_ = enabled;
    return *this;
  }
  // Per-shard ingress queue capacity (bounded; producer blocks when full).
  SessionConfig& queue_capacity(std::size_t n) {
    queue_capacity_ = n;
    return *this;
  }

  // ---- Crash recovery (sharded mode only; see runtime/sharded.hpp
  // RecoveryConfig). checkpoint_every(0) — the default — disables
  // supervision: a dead worker fails the session fast. With a cadence
  // set, a dead worker is restored from its last checkpoint and the
  // backup replayed, so the session's output stays exactly-once and
  // bit-identical to a fault-free run. Inactive when the session falls
  // back to single-shard execution (no worker threads to supervise).
  SessionConfig& checkpoint_every(std::size_t consumed_events) {
    recovery_.checkpoint_every = consumed_events;
    return *this;
  }
  SessionConfig& max_restarts(std::size_t per_shard_budget) {
    recovery_.max_restarts = per_shard_budget;
    return *this;
  }
  SessionConfig& restart_backoff(std::chrono::milliseconds initial,
                                 std::chrono::milliseconds cap) {
    recovery_.backoff = initial;
    recovery_.max_backoff = cap;
    return *this;
  }
  SessionConfig& on_restart_exhausted(RestartPolicy policy) {
    recovery_.on_exhausted = policy;
    return *this;
  }
  // Fault injection: worker-kill hook (WorkerKillFault::hook()).
  SessionConfig& kill_hook(WorkerKillHook hook) {
    recovery_.kill_hook = std::move(hook);
    return *this;
  }
  // Fault injection: slow-consumer hook, run by each shard worker for
  // every event it processes. The overload test/bench harness.
  SessionConfig& delay_hook(WorkerDelayHook hook) {
    recovery_.delay_hook = std::move(hook);
    return *this;
  }

  // ---- Overload control (sharded mode only; see runtime/overload.hpp).
  // The default policy (OverloadPolicy::kBlock) is the pre-existing
  // unbounded backpressure spin. The shedding policies bound producer
  // push latency by dropping events AT ADMISSION — never inside engines,
  // so checkpoint/replay and exactly-once delivery of admitted events
  // are untouched; kFail bounds it by throwing OverloadError instead.
  // Every shed is accounted: overload_shed(), degraded_accounting(),
  // and the oosp_overload_* instruments. Inert when the session falls
  // back to single-shard execution (no ingress queue to overload).
  SessionConfig& overload(OverloadConfig cfg) {
    overload_ = std::move(cfg);
    return *this;
  }
  // Convenience: set just the policy, keeping the tuning defaults.
  SessionConfig& overload_policy(OverloadPolicy policy) {
    overload_.policy = policy;
    return *this;
  }

  // Registers a query. Ids are assigned densely in declaration order.
  // A bare string converts implicitly; `{text, kind}` and
  // `{text, kind, options}` override the session defaults per query.
  SessionConfig& query(QuerySpec spec) {
    declarations_.push_back(std::move(spec));
    return *this;
  }

 private:
  friend class Session;

  EngineKind default_kind_ = EngineKind::kOoo;
  EngineOptions default_options_;
  std::size_t shards_ = 1;
  std::size_t queue_capacity_ = 64 * 1024;
  bool share_scans_ = true;
  RecoveryConfig recovery_;
  OverloadConfig overload_;
  bool metrics_ = true;
  std::chrono::milliseconds report_every_{0};
  std::function<void(const std::string&)> report_to_;
  std::vector<QuerySpec> declarations_;
};

class Session {
 public:
  // Compiles every declared query and builds the execution stack.
  // `registry` must outlive the session; the sink is co-owned. Throws
  // QueryAnalysisError on a malformed query.
  Session(const TypeRegistry& registry, SessionConfig config,
          std::shared_ptr<TaggedSink> sink);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // Feed events in arrival order; single producer thread.
  void push(const Event& e);

  // Batched ingestion: semantically identical to calling push on
  // each element in order, but amortizes routing, queue transactions and
  // per-event engine overhead across the slice. The span is consumed
  // before return (events are copied into the runtime); the caller's
  // buffer can be reused immediately.
  void push_batch(std::span<const Event> batch);

  // End of stream: flushes the engines (joining shard workers) and
  // delivers all matches to the sink in canonical order. Idempotent.
  // Rethrows a dead shard worker's exception (after every thread has
  // been joined); a repeat call is then a no-op.
  void finish();

  // Orderly shutdown: stops the periodic reporter, then finish().
  // Idempotent AND safe to call concurrently (from a signal/shutdown
  // thread racing the owner, or twice from the same thread): exactly one
  // caller performs the shutdown, the rest wait for it to complete. The
  // place a sharded worker's failure surfaces if the producer never
  // tripped over it in push(); if the shutdown throws, a retry is an
  // orderly no-op.
  void close();

  std::size_t query_count() const noexcept;
  const CompiledQuery& query(QueryId id) const;

  // Per-query counters, aggregated across shards. Requires finish() in
  // sharded mode (the workers own the engines until then).
  EngineStats stats(QueryId id) const;
  // Sum over all queries.
  EngineStats total_stats() const;

  // Effective shard count (1 when sharding was not requested or the
  // query set was not shardable).
  std::size_t shard_count() const noexcept;
  bool sharded() const noexcept { return shard_count() > 1; }
  // Why a shards(N>1) request fell back to 1; empty when it did not.
  const std::string& shard_fallback_reason() const noexcept { return fallback_reason_; }

  std::uint64_t events_seen() const noexcept { return events_seen_; }

  // Quarantined late events (LatePolicy::kQuarantine), drained from
  // every engine at finish()/close() and sorted canonically by
  // (query, ts, id) — identical for every shard count, and checkpoint
  // recovery preserves them exactly-once. Also counted in the
  // oosp_session_quarantine_drained_total metric.
  const std::vector<std::pair<QueryId, Event>>& quarantined() const noexcept {
    return quarantined_;
  }

  // Crash-recovery accounting (sharded mode; all zero otherwise).
  std::size_t restarts() const noexcept;
  std::uint64_t replayed_events() const noexcept;
  std::size_t dropped_shards() const noexcept;
  DegradedAccounting degraded_accounting() const noexcept;

  // Overload accounting (sharded mode; zero otherwise). The per-query
  // view attributes each shed event to every query whose pattern
  // references the event's type.
  std::uint64_t overload_shed() const noexcept;
  std::uint64_t overload_shed(QueryId id) const;

  // Observability. The registry outlives every engine (Session member
  // order); snapshot/text may be called at any time, including mid-run.
  bool metrics_enabled() const noexcept { return metrics_ != nullptr; }
  MetricsRegistry* metrics() noexcept { return metrics_.get(); }
  MetricsSnapshot metrics_snapshot() const;
  std::string metrics_text() const;

 private:
  void start_reporter(std::chrono::milliseconds interval,
                      std::function<void(const std::string&)> fn);
  void stop_reporter();
  const TypeRegistry& registry_;
  std::shared_ptr<TaggedSink> sink_;
  // Declared before the runners: engines hold raw slot pointers into the
  // registry, so it must be destroyed after them.
  std::unique_ptr<MetricsRegistry> metrics_;
  Counter* session_events_ = nullptr;
  std::vector<ShardQuerySpec> specs_;
  std::string fallback_reason_;
  bool finished_ = false;
  std::uint64_t events_seen_ = 0;
  std::once_flag close_once_;
  Counter* quarantine_drained_ = nullptr;
  std::vector<std::pair<QueryId, Event>> quarantined_;

  // Periodic reporter (optional). cv-based stop so close() never waits a
  // full interval.
  std::thread reporter_;
  std::mutex reporter_mu_;
  std::condition_variable reporter_cv_;
  bool reporter_stop_ = false;

  // Exactly one of the two is set: single-shard runs use an inline
  // runner collecting into collect_, sharded runs use the ShardedRunner.
  std::shared_ptr<CollectingTaggedSink> collect_;
  std::unique_ptr<MultiQueryRunner> inline_runner_;
  std::unique_ptr<ShardedRunner> sharded_runner_;
};

}  // namespace oosp
