// Checkpoint codec: versioned, checksummed byte serialization of engine
// and runner state for crash recovery.
//
// ## Frame format (little-endian throughout)
//
//   offset  size  field
//   0       4     magic "OSPC"
//   4       4     format version (u32; currently 3)
//   8       8     payload length in bytes (u64)
//   16      n     payload
//   16+n    4     CRC-32 (IEEE, reflected) over the payload
//
// The payload is a flat sequence of primitively-encoded fields written
// by CheckpointWriter and read back, in the same order, by
// CheckpointReader. There is no self-describing schema: the engine that
// wrote a section is the only code that can read it, which is enforced
// by section tags (4-byte markers) plus each engine's own guard header
// (engine name + query text). Any structural disagreement — bad magic,
// unknown version, truncated frame, checksum mismatch, tag mismatch,
// guard mismatch, or trailing bytes — throws CheckpointError; a restore
// either succeeds completely or leaves the target engine untouched
// enough to be destroyed (engines restore into scratch structures and
// commit only after every read succeeded).
//
// ## Determinism
//
// Serializers are required to emit deterministic bytes for equal logical
// state: containers without intrinsic order (hash maps, id sets) are
// written in a canonical sort order. This is what lets the recovery
// tests assert that a restored engine re-snapshots to the identical
// byte string — and it makes checkpoint bytes comparable across runs.
//
// Everything here is header-inline so the engine library can serialize
// itself without a link-time dependency on the runtime library (which
// links against the engines, not vice versa).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "common/event_arena.hpp"
#include "engine/core/admission.hpp"
#include "engine/core/match.hpp"
#include "engine/core/negative_buffer.hpp"
#include "engine/core/stats.hpp"
#include "event/event.hpp"
#include "event/value.hpp"
#include "stream/clock.hpp"
#include "stream/slack_estimator.hpp"

namespace oosp {

class CheckpointError : public std::runtime_error {
 public:
  explicit CheckpointError(const std::string& what) : std::runtime_error(what) {}
};

namespace ckptdetail {

inline constexpr std::uint32_t kMagic = 0x4350534Fu;  // "OSPC" little-endian
// v2: MultiQueryRunner frames carry shared-scan groups ("mqg" blocks)
// ahead of the per-query solo engines.
// v3: AggEngine frames ("agk" blocks) — per-key aggregation trees and
// open-window state for AGG queries.
inline constexpr std::uint32_t kVersion = 3;
inline constexpr std::size_t kHeaderSize = 16;  // magic + version + payload length
inline constexpr std::size_t kTrailerSize = 4;  // crc32

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
inline const std::uint32_t* crc32_table() {
  static const auto table = [] {
    std::vector<std::uint32_t> t(256);
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table.data();
}

inline std::uint32_t crc32(std::span<const std::uint8_t> data) {
  const std::uint32_t* table = crc32_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const std::uint8_t b : data) c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace ckptdetail

class CheckpointWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(std::string_view s) {
    u64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  // 4-byte section marker; cheap structure check during reads.
  void tag(std::string_view four) {
    for (std::size_t i = 0; i < 4; ++i) buf_.push_back(i < four.size() ? four[i] : ' ');
  }

  void value(const Value& v) {
    u8(static_cast<std::uint8_t>(v.type()));
    switch (v.type()) {
      case ValueType::kInt: i64(v.as_int()); break;
      case ValueType::kDouble: f64(v.as_double()); break;
      case ValueType::kBool: boolean(v.as_bool()); break;
      case ValueType::kString: str(v.as_string()); break;
    }
  }

  void event(const Event& e) {
    u32(e.type);
    u64(e.id);
    i64(e.ts);
    u64(e.arrival);
    u64(e.attrs.size());
    for (const Value& v : e.attrs) value(v);
  }

  void match(const Match& m) {
    u64(m.events.size());
    for (const Event& e : m.events) event(e);
    i64(m.detection_clock);
  }

  void stats(const EngineStats& s) {
    tag("stat");
    u64(s.events_seen);
    u64(s.events_relevant);
    u64(s.late_events);
    u64(s.contract_violations);
    u64(s.events_dropped_late);
    u64(s.events_quarantined);
    u64(s.events_rejected);
    u64(s.events_deduped);
    i64(s.effective_slack);
    u64(s.slack_grows);
    u64(s.slack_shrinks);
    u64(s.instances_inserted);
    u64(s.instances_purged);
    u64(s.current_instances);
    u64(s.peak_instances);
    u64(s.buffered);
    u64(s.buffered_peak);
    u64(s.pending_matches);
    u64(s.pending_peak);
    u64(s.matches_emitted);
    u64(s.matches_cancelled);
    u64(s.matches_retracted);
    u64(s.construction_visits);
    u64(s.predicate_evals);
    u64(s.purge_passes);
    u64(s.footprint_peak);
  }

  std::size_t size() const noexcept { return buf_.size(); }

  // Wraps the payload in the versioned, checksummed frame.
  std::vector<std::uint8_t> finalize() && {
    std::vector<std::uint8_t> out;
    out.reserve(ckptdetail::kHeaderSize + buf_.size() + ckptdetail::kTrailerSize);
    const auto put32 = [&out](std::uint32_t v) {
      for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    };
    const auto put64 = [&out](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    };
    put32(ckptdetail::kMagic);
    put32(ckptdetail::kVersion);
    put64(buf_.size());
    out.insert(out.end(), buf_.begin(), buf_.end());
    put32(ckptdetail::crc32(buf_));
    return out;
  }

 private:
  std::vector<std::uint8_t> buf_;
};

class CheckpointReader {
 public:
  // Validates the frame (magic, version, length, checksum) up front.
  explicit CheckpointReader(std::span<const std::uint8_t> frame) {
    using namespace ckptdetail;
    if (frame.size() < kHeaderSize + kTrailerSize)
      throw CheckpointError("checkpoint frame truncated (shorter than header)");
    const std::uint32_t magic = peek32(frame, 0);
    if (magic != kMagic) throw CheckpointError("checkpoint frame has bad magic");
    const std::uint32_t version = peek32(frame, 4);
    if (version != kVersion)
      throw CheckpointError("unsupported checkpoint version " + std::to_string(version));
    const std::uint64_t len = peek64(frame, 8);
    if (frame.size() != kHeaderSize + len + kTrailerSize)
      throw CheckpointError("checkpoint frame length mismatch");
    payload_ = frame.subspan(kHeaderSize, static_cast<std::size_t>(len));
    const std::uint32_t want = peek32(frame, kHeaderSize + static_cast<std::size_t>(len));
    const std::uint32_t got = crc32(payload_);
    if (want != got) throw CheckpointError("checkpoint checksum mismatch (corrupt frame)");
  }

  std::uint8_t u8() { return take(1)[0]; }
  std::uint32_t u32() {
    const auto b = take(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    const auto b = take(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  bool boolean() { return u8() != 0; }
  std::string str() {
    const std::uint64_t n = u64();
    const auto b = take(checked_size(n, "string"));
    return std::string(reinterpret_cast<const char*>(b.data()), b.size());
  }

  void expect_tag(std::string_view four) {
    const auto b = take(4);
    char got[5] = {static_cast<char>(b[0]), static_cast<char>(b[1]),
                   static_cast<char>(b[2]), static_cast<char>(b[3]), '\0'};
    for (std::size_t i = 0; i < 4; ++i) {
      const char want = i < four.size() ? four[i] : ' ';
      if (got[i] != want)
        throw CheckpointError("checkpoint section mismatch: expected '" +
                              std::string(four) + "', found '" + got + "'");
    }
  }

  // Validated element count for a container about to be read: each
  // element consumes at least `min_bytes_each`, so a count implying more
  // bytes than remain is corruption, not a 2^60-element allocation.
  std::size_t count(std::size_t min_bytes_each = 1) {
    const std::uint64_t n = u64();
    if (min_bytes_each != 0 && n > remaining() / min_bytes_each)
      throw CheckpointError("checkpoint element count exceeds frame size");
    return static_cast<std::size_t>(n);
  }

  Value value() {
    switch (static_cast<ValueType>(u8())) {
      case ValueType::kInt: return Value(i64());
      case ValueType::kDouble: return Value(f64());
      case ValueType::kBool: return Value(boolean());
      case ValueType::kString: return Value(str());
    }
    throw CheckpointError("checkpoint holds an unknown Value type");
  }

  Event event() {
    Event e;
    e.type = u32();
    e.id = u64();
    e.ts = i64();
    e.arrival = u64();
    const std::size_t n = count();
    e.attrs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) e.attrs.push_back(value());
    return e;
  }

  Match match() {
    Match m;
    const std::size_t n = count();
    m.events.reserve(n);
    for (std::size_t i = 0; i < n; ++i) m.events.push_back(event());
    m.detection_clock = i64();
    return m;
  }

  EngineStats stats() {
    expect_tag("stat");
    EngineStats s;
    s.events_seen = u64();
    s.events_relevant = u64();
    s.late_events = u64();
    s.contract_violations = u64();
    s.events_dropped_late = u64();
    s.events_quarantined = u64();
    s.events_rejected = u64();
    s.events_deduped = u64();
    s.effective_slack = i64();
    s.slack_grows = u64();
    s.slack_shrinks = u64();
    s.instances_inserted = u64();
    s.instances_purged = u64();
    s.current_instances = u64();
    s.peak_instances = u64();
    s.buffered = u64();
    s.buffered_peak = u64();
    s.pending_matches = u64();
    s.pending_peak = u64();
    s.matches_emitted = u64();
    s.matches_cancelled = u64();
    s.matches_retracted = u64();
    s.construction_visits = u64();
    s.predicate_evals = u64();
    s.purge_passes = u64();
    s.footprint_peak = u64();
    return s;
  }

  std::size_t remaining() const noexcept { return payload_.size() - pos_; }
  bool done() const noexcept { return remaining() == 0; }

  // Every reader must end exactly at the frame boundary; leftover bytes
  // mean the writer and reader disagree about the schema.
  void expect_done() const {
    if (!done())
      throw CheckpointError("checkpoint has " + std::to_string(remaining()) +
                            " unread trailing bytes");
  }

 private:
  static std::uint32_t peek32(std::span<const std::uint8_t> s, std::size_t at) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(s[at + i]) << (8 * i);
    return v;
  }
  static std::uint64_t peek64(std::span<const std::uint8_t> s, std::size_t at) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(s[at + i]) << (8 * i);
    return v;
  }
  std::size_t checked_size(std::uint64_t n, const char* what) {
    if (n > remaining())
      throw CheckpointError(std::string("checkpoint ") + what + " overruns the frame");
    return static_cast<std::size_t>(n);
  }
  std::span<const std::uint8_t> take(std::size_t n) {
    if (n > remaining()) throw CheckpointError("checkpoint read past end of frame");
    const auto s = payload_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  std::span<const std::uint8_t> payload_;
  std::size_t pos_ = 0;
};

// ---- Shared sub-codecs for engine-internal components. Each pair must
// ---- mirror the other field for field; tags catch drift early.

inline void write_clock(CheckpointWriter& w, const StreamClock& c) {
  w.tag("clk");
  w.i64(c.slack());
  w.i64(c.raw_clock());
  w.i64(c.max_lateness());
  w.boolean(c.started());
}

inline void read_clock(CheckpointReader& r, StreamClock& c) {
  r.expect_tag("clk");
  const Timestamp slack = r.i64();
  const Timestamp clock = r.i64();
  const Timestamp max_lateness = r.i64();
  const bool started = r.boolean();
  c.restore_state(slack, clock, max_lateness, started);
}

inline void write_estimator(CheckpointWriter& w, const SlackEstimator& e) {
  w.tag("est");
  const auto& ring = e.sample_ring();
  w.u64(ring.size());
  for (const Timestamp t : ring) w.i64(t);
  w.u64(e.ring_next());
  w.u64(e.since_refresh());
  w.i64(e.estimate());
}

inline void read_estimator(CheckpointReader& r, SlackEstimator& e) {
  r.expect_tag("est");
  const std::size_t n = r.count(8);
  std::vector<Timestamp> ring;
  ring.reserve(n);
  for (std::size_t i = 0; i < n; ++i) ring.push_back(r.i64());
  const std::size_t next = static_cast<std::size_t>(r.u64());
  const std::size_t since_refresh = static_cast<std::size_t>(r.u64());
  const Timestamp estimate = r.i64();
  e.restore_state(std::move(ring), next, since_refresh, estimate);
}

// Dedup ids are written sorted (the set iterates in hash order) so equal
// logical state always produces equal bytes.
inline void write_admission(CheckpointWriter& w, const AdmissionControl& a) {
  w.tag("adm");
  std::vector<EventId> ids(a.seen_ids().begin(), a.seen_ids().end());
  std::sort(ids.begin(), ids.end());
  w.u64(ids.size());
  for (const EventId id : ids) w.u64(id);
  w.u64(a.quarantined_events().size());
  for (const Event& e : a.quarantined_events()) w.event(e);
}

inline void read_admission(CheckpointReader& r, AdmissionControl& a) {
  r.expect_tag("adm");
  const std::size_t n_ids = r.count(8);
  std::unordered_set<EventId> ids;
  ids.reserve(n_ids);
  for (std::size_t i = 0; i < n_ids; ++i) ids.insert(r.u64());
  const std::size_t n_q = r.count(8);
  std::deque<Event> quarantine;
  for (std::size_t i = 0; i < n_q; ++i) quarantine.push_back(r.event());
  a.restore_state(std::move(ids), std::move(quarantine));
}

// The wire format stores the events themselves (count + events in
// (ts, id) order); the arena handles are an in-memory detail, so the
// bytes are identical to the pre-arena layout and restore re-allocates
// one arena slot per entry.
inline void write_negative_buffer(CheckpointWriter& w, const NegativeBuffer& nb,
                                  const EventArena& arena) {
  w.tag("neg");
  w.u64(nb.entries().size());
  for (const NegativeBuffer::Entry& e : nb.entries()) w.event(arena.get(e.handle));
}

inline void read_negative_buffer(CheckpointReader& r, NegativeBuffer& nb,
                                 EventArena& arena) {
  r.expect_tag("neg");
  const std::size_t n = r.count(8);
  std::vector<NegativeBuffer::Entry> entries;
  entries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Event e = r.event();
    entries.push_back(NegativeBuffer::Entry{e.ts, e.id, arena.alloc(e)});
  }
  nb.set_entries(std::move(entries));
}

// Guard header every engine serializer writes first: restoring into an
// engine of a different kind, policy variant, or query is a structural
// error caught here rather than as garbage reads later.
inline void write_engine_guard(CheckpointWriter& w, std::string_view name,
                               std::string_view query_text) {
  w.tag("eng");
  w.str(name);
  w.str(query_text);
}

inline void read_engine_guard(CheckpointReader& r, std::string_view name,
                              std::string_view query_text) {
  r.expect_tag("eng");
  const std::string got_name = r.str();
  if (got_name != name)
    throw CheckpointError("checkpoint was written by engine '" + got_name +
                          "' but is being restored into '" + std::string(name) + "'");
  const std::string got_query = r.str();
  if (got_query != query_text)
    throw CheckpointError("checkpoint query mismatch: written for \"" + got_query +
                          "\", restoring into \"" + std::string(query_text) + "\"");
}

class PatternEngine;

// Convenience wrappers: one engine per frame. checkpoint_engine() calls
// engine.snapshot() and finalizes the frame; restore_engine() validates
// the frame, calls engine.restore(), and requires the reader to consume
// the payload exactly.
std::vector<std::uint8_t> checkpoint_engine(const PatternEngine& engine);
void restore_engine(PatternEngine& engine, std::span<const std::uint8_t> frame);

}  // namespace oosp
