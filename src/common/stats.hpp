// Streaming statistics: scalar accumulators (Welford) and fixed-memory
// histograms with quantile estimates. Used by the runtime's metrics layer
// and by the benchmark harnesses for latency distributions.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace oosp {

// Single-pass mean/variance/min/max accumulator (Welford's algorithm).
class StatAccumulator {
 public:
  void add(double x) noexcept;
  void merge(const StatAccumulator& other) noexcept;
  void reset() noexcept { *this = StatAccumulator{}; }

  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Log-bucketed histogram for non-negative values (latencies, sizes).
// Buckets grow geometrically from `min_value`; quantiles are estimated by
// linear interpolation inside the winning bucket. Memory is O(buckets).
class QuantileHistogram {
 public:
  explicit QuantileHistogram(double min_value = 1.0, double growth = 1.25,
                     std::size_t buckets = 128);

  void add(double x) noexcept;
  void merge(const QuantileHistogram& other);
  void reset() noexcept;

  std::uint64_t count() const noexcept { return total_; }
  double quantile(double q) const noexcept;  // q in [0,1]
  double p50() const noexcept { return quantile(0.50); }
  double p95() const noexcept { return quantile(0.95); }
  double p99() const noexcept { return quantile(0.99); }
  double observed_max() const noexcept { return max_seen_; }

 private:
  std::size_t bucket_for(double x) const noexcept;
  double bucket_lo(std::size_t i) const noexcept;
  double bucket_hi(std::size_t i) const noexcept;

  double min_value_;
  double growth_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  double max_seen_ = 0.0;
};

}  // namespace oosp
