// Bounded single-producer / single-consumer queue (Lamport ring buffer
// with cached indices), the ingress channel between the Session's
// routing thread and each shard worker.
//
// Design notes:
//   * Exactly one producer thread may call try_push and exactly one
//     consumer thread may call try_pop; the two indices are only ever
//     written by their owning side, so a store-release / load-acquire
//     pair per operation is sufficient — no CAS, no locks.
//   * Each side keeps a CACHED copy of the other side's index and only
//     re-reads the shared atomic when the cached value says the queue
//     looks full (producer) or empty (consumer). On the fast path an
//     operation touches one shared cache line instead of two.
//   * Capacity is rounded up to a power of two so wrap-around is a mask,
//     and one slot is intentionally never used (full at capacity-1) to
//     distinguish full from empty without a separate counter.
//   * try_push/try_pop never block: the sharded runner decides the
//     backpressure policy (it yields and retries, keeping arrival order
//     intact rather than dropping).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "common/contracts.hpp"

namespace oosp {

template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(std::size_t min_capacity) {
    OOSP_REQUIRE(min_capacity >= 2, "SpscQueue capacity must be >= 2");
    std::size_t cap = 1;
    while (cap < min_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  // Producer side. Returns false when the ring is full (caller retries).
  bool try_push(T&& v) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t next = (tail + 1) & mask_;
    if (next == head_cache_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (next == head_cache_) return false;
    }
    slots_[tail] = std::move(v);
    tail_.store(next, std::memory_order_release);
    return true;
  }

  // Producer side, bulk: moves as many leading elements of src into the
  // ring as fit right now and returns that count (0 when full). One
  // acquire (at most) and one release for the whole transaction, so a
  // batch of n amortizes the shared-cache-line traffic n ways.
  std::size_t try_push_n(std::span<T> src) {
    if (src.empty()) return 0;
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t free_slots = mask_ - ((tail - head_cache_) & mask_);
    if (free_slots < src.size()) {
      head_cache_ = head_.load(std::memory_order_acquire);
      free_slots = mask_ - ((tail - head_cache_) & mask_);
      if (free_slots == 0) return 0;
    }
    const std::size_t n = std::min(src.size(), free_slots);
    for (std::size_t i = 0; i < n; ++i) {
      slots_[(tail + i) & mask_] = std::move(src[i]);
    }
    tail_.store((tail + n) & mask_, std::memory_order_release);
    return n;
  }

  // Consumer side. Returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    out = std::move(slots_[head]);
    head_.store((head + 1) & mask_, std::memory_order_release);
    return true;
  }

  // Consumer side, bulk: moves up to max elements into out and returns
  // the count (0 when empty). Symmetric with try_push_n.
  std::size_t try_pop_n(T* out, std::size_t max) {
    if (max == 0) return 0;
    const std::size_t head = head_.load(std::memory_order_relaxed);
    std::size_t avail = (tail_cache_ - head) & mask_;
    if (avail < max) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      avail = (tail_cache_ - head) & mask_;
      if (avail == 0) return 0;
    }
    const std::size_t n = std::min(max, avail);
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = std::move(slots_[(head + i) & mask_]);
    }
    head_.store((head + n) & mask_, std::memory_order_release);
    return n;
  }

  // Usable from either side (approximate under concurrency; exact once
  // the other side has quiesced).
  bool empty() const noexcept {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  std::size_t capacity() const noexcept { return mask_; }  // usable slots

  // Occupancy snapshot for observability gauges. Approximate under
  // concurrency (the two indices are read at different instants) but
  // always within [0, capacity()]; exact once the other side quiesces.
  std::size_t size_approx() const noexcept {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return (tail - head) & mask_;
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;

  static constexpr std::size_t kCacheLine = 64;
  // Owned by the consumer; read-acquired by the producer on apparent full.
  alignas(kCacheLine) std::atomic<std::size_t> head_{0};
  // Owned by the producer; read-acquired by the consumer on apparent empty.
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};
  // Producer-local mirror of head_ / consumer-local mirror of tail_.
  alignas(kCacheLine) std::size_t head_cache_ = 0;
  alignas(kCacheLine) std::size_t tail_cache_ = 0;
};

}  // namespace oosp
