// Lightweight contract macros used across the library.
//
// OOSP_REQUIRE  — precondition on public API input; throws std::invalid_argument.
// OOSP_CHECK    — runtime condition that must hold in all builds; throws
//                 std::logic_error (used for states reachable only via bugs
//                 in caller composition, e.g. unsealed clock regressions).
// OOSP_ASSERT   — internal invariant; compiled out in NDEBUG builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace oosp::detail {

[[noreturn]] inline void throw_require(const char* expr, const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << "precondition violated: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_check(const char* expr, const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace oosp::detail

#define OOSP_REQUIRE(cond, msg)                                           \
  do {                                                                    \
    if (!(cond)) ::oosp::detail::throw_require(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

#define OOSP_CHECK(cond, msg)                                             \
  do {                                                                    \
    if (!(cond)) ::oosp::detail::throw_check(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifdef NDEBUG
#define OOSP_ASSERT(cond) ((void)0)
#else
#define OOSP_ASSERT(cond)                                                 \
  do {                                                                    \
    if (!(cond)) ::oosp::detail::throw_check(#cond, __FILE__, __LINE__, "debug assert"); \
  } while (0)
#endif
