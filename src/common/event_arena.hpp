// Pooled per-engine event storage behind 32-bit handles.
//
// Sequence Scan & Construction stores every relevant event in each
// structure it participates in: a positive event lands in one SortedStack
// per matching step, a negative in one NegativeBuffer per negated step.
// Holding Event by value means each of those inserts copies the attrs
// vector — a heap allocation per copy — and purge frees them again, so the
// steady-state hot loop mallocs even though total live state is bounded by
// the window. The arena fixes both costs:
//
//   * Structures hold EventHandle (4 bytes) instead of Event (~56 bytes +
//     attrs heap block). One Event copy exists per arrival regardless of
//     how many steps reference it; refcounts track the references.
//   * Freed slots go on a free list and are reassigned by copy-assigning
//     the new Event into the old slot, which reuses the previous attrs
//     vector's capacity. After warm-up the purge/insert cycle allocates
//     nothing.
//
// Slots live in fixed-size chunks so handles are stable across growth
// (no vector reallocation moves a live Event; `const Event&` returned by
// get() stays valid until the last release()). Not thread-safe — each
// engine owns one arena and engines are single-threaded per shard.
//
// Ownership protocol used by the engines:
//   * first structure to keep an event calls alloc(e)      → ref = 1
//   * each additional structure keeping it calls retain(h) → ref + 1
//   * purging a structure entry calls release(h); the slot recycles when
//     the last reference drops.
//   * restore() rebuilds structures from a checkpoint, so engines call
//     clear() first; serialized bytes hold the events themselves (the
//     arena is an in-memory representation detail, invisible on the wire).
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/contracts.hpp"
#include "event/event.hpp"

namespace oosp {

using EventHandle = std::uint32_t;
inline constexpr EventHandle kNullEventHandle = 0xFFFFFFFFu;

class EventArena {
 public:
  EventHandle alloc(const Event& e) {
    EventHandle h;
    if (free_head_ != kNullEventHandle) {
      h = free_head_;
      Slot& s = slot(h);
      free_head_ = s.next_free;
      s.event = e;  // copy-assign: reuses the recycled slot's attrs capacity
      s.refs = 1;
    } else {
      OOSP_CHECK(size_ < kNullEventHandle, "EventArena handle space exhausted");
      h = static_cast<EventHandle>(size_);
      if ((size_ >> kChunkShift) == chunks_.size()) {
        chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
      }
      ++size_;
      Slot& s = slot(h);
      s.event = e;
      s.refs = 1;
    }
    ++live_;
    return h;
  }

  void retain(EventHandle h) {
    Slot& s = slot(h);
    OOSP_ASSERT(s.refs > 0);
    ++s.refs;
  }

  void release(EventHandle h) {
    Slot& s = slot(h);
    OOSP_ASSERT(s.refs > 0);
    if (--s.refs == 0) {
      s.next_free = free_head_;
      free_head_ = h;
      --live_;
    }
  }

  const Event& get(EventHandle h) const {
    OOSP_ASSERT(h < size_ && slot(h).refs > 0);
    return slot(h).event;
  }

  // Live (referenced) events. Capacity high-water is size().
  std::size_t live() const noexcept { return live_; }
  std::size_t size() const noexcept { return size_; }

  // Drop everything, including recycled capacity. Used before restoring
  // from a checkpoint, where structures are rebuilt wholesale.
  void clear() {
    chunks_.clear();
    size_ = 0;
    live_ = 0;
    free_head_ = kNullEventHandle;
  }

 private:
  struct Slot {
    Event event;
    std::uint32_t refs = 0;
    EventHandle next_free = kNullEventHandle;
  };

  static constexpr std::size_t kChunkShift = 8;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;

  Slot& slot(EventHandle h) { return chunks_[h >> kChunkShift][h & (kChunkSize - 1)]; }
  const Slot& slot(EventHandle h) const {
    return chunks_[h >> kChunkShift][h & (kChunkSize - 1)];
  }

  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::size_t size_ = 0;   // slots ever created
  std::size_t live_ = 0;   // slots currently referenced
  EventHandle free_head_ = kNullEventHandle;
};

}  // namespace oosp
