// Deterministic, seedable random number generation.
//
// All stochastic behaviour in the library (workload generation, latency
// models, property-test sweeps) flows through Rng so that every run is
// reproducible from a single 64-bit seed. The generator is xoshiro256++,
// seeded via splitmix64 — fast, high quality, and independent of the
// standard library's unspecified distributions (we implement our own so
// results are identical across platforms/compilers).
#pragma once

#include <cstdint>
#include <vector>

namespace oosp {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept;

  // Raw 64 random bits.
  std::uint64_t next() noexcept;

  // Uniform integer in [lo, hi], inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  // Uniform double in [0, 1).
  double uniform01() noexcept;

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  // Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  // Standard normal via Box–Muller (cached second deviate).
  double normal(double mean = 0.0, double stddev = 1.0) noexcept;

  // Exponential with given rate (mean 1/rate).
  double exponential(double rate) noexcept;

  // Pareto (Lomax-style) with scale x_m > 0 and shape alpha > 0:
  // samples >= x_m, heavy upper tail for small alpha.
  double pareto(double x_m, double alpha) noexcept;

  // Zipf-distributed integer in [1, n] with exponent s >= 0 (s=0 uniform).
  // Uses rejection-inversion (Hörmann/Derflinger) — O(1) per sample.
  std::uint64_t zipf(std::uint64_t n, double s) noexcept;

  // Pick an index according to a discrete weight vector (weights >= 0,
  // at least one positive).
  std::size_t weighted_index(const std::vector<double>& weights) noexcept;

  // Derive an independent child generator (for parallel substreams).
  Rng fork() noexcept;

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;

  // Zipf sampler cache (rebuilt when (n, s) changes).
  std::uint64_t zipf_n_ = 0;
  double zipf_s_ = -1.0;
  double zipf_hx0_ = 0.0, zipf_hxn_ = 0.0, zipf_cut_ = 0.0;
};

}  // namespace oosp
