#include "common/rng.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace oosp {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  if (lo > hi) return lo;
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Debiased multiply-shift (Lemire). Span never exceeds 2^63 here.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * span;
  auto l = static_cast<std::uint64_t>(m);
  if (l < span) {
    const std::uint64_t t = (0 - span) % span;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * span;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

double Rng::uniform01() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform01(); }

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::normal(double mean, double stddev) noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = uniform01();
  while (u1 <= 1e-300) u1 = uniform01();
  const double u2 = uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::exponential(double rate) noexcept {
  double u = uniform01();
  while (u <= 1e-300) u = uniform01();
  return -std::log(u) / rate;
}

double Rng::pareto(double x_m, double alpha) noexcept {
  double u = uniform01();
  while (u <= 1e-300) u = uniform01();
  return x_m / std::pow(u, 1.0 / alpha);
}

namespace {
// Helper functions for rejection-inversion Zipf sampling.
double zipf_h(double x, double s) {
  if (s == 1.0) return std::log(x);
  return (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
}
double zipf_h_inv(double y, double s) {
  if (s == 1.0) return std::exp(y);
  return std::pow(1.0 + y * (1.0 - s), 1.0 / (1.0 - s));
}
}  // namespace

std::uint64_t Rng::zipf(std::uint64_t n, double s) noexcept {
  if (n <= 1) return 1;
  if (s <= 0.0) return static_cast<std::uint64_t>(uniform_int(1, static_cast<std::int64_t>(n)));
  if (n != zipf_n_ || s != zipf_s_) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_hx0_ = zipf_h(0.5, s) - 1.0;  // h(x0) with the shifted origin
    zipf_hxn_ = zipf_h(static_cast<double>(n) + 0.5, s);
    zipf_cut_ = 1.0 - zipf_h_inv(zipf_h(1.5, s) - 1.0, s);
  }
  for (;;) {
    const double u = zipf_hx0_ + uniform01() * (zipf_hxn_ - zipf_hx0_);
    const double x = zipf_h_inv(u, s);
    const auto k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1 || k > n) continue;
    if (static_cast<double>(k) - x <= zipf_cut_) return k;
    if (u >= zipf_h(static_cast<double>(k) + 0.5, s) - std::pow(static_cast<double>(k), -s))
      return k;
  }
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return 0;
  double r = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (r < w) return i;
    r -= w;
  }
  return weights.size() - 1;
}

Rng Rng::fork() noexcept { return Rng(next() ^ 0xd1b54a32d192ed03ull); }

}  // namespace oosp
