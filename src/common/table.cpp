#include "common/table.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <ostream>

#include "common/contracts.hpp"

namespace oosp {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  OOSP_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  OOSP_REQUIRE(cells.size() == headers_.size(), "row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::cell(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::cell(std::uint64_t v) { return std::to_string(v); }
std::string Table::cell(std::int64_t v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << cells[c];
      os << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << " |\n";
  };
  auto rule = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << (c == 0 ? "+-" : "-+-");
      os << std::string(widths[c], '-');
    }
    os << "-+\n";
  };

  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

namespace {
void csv_field(std::ostream& os, const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) {
    os << s;
    return;
  }
  os << '"';
  for (char ch : s) {
    if (ch == '"') os << '"';
    os << ch;
  }
  os << '"';
}
}  // namespace

void Table::print_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << ',';
    csv_field(os, headers_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      csv_field(os, row[c]);
    }
    os << '\n';
  }
}

}  // namespace oosp
