// CPU-friendly spin primitives for the SPSC hot paths.
//
// cpu_relax() issues the architecture's spin-wait hint (x86 PAUSE /
// aarch64 YIELD) so a busy-waiting producer or idle worker stops
// saturating the pipeline and, on SMT parts, yields issue slots to the
// sibling thread actually making progress. SpinBackoff layers an
// exponential pause ramp on top and falls back to the scheduler once the
// wait is clearly not short — on the 1-core CI container the scheduler
// fallback is what lets the consumer run at all.
#pragma once

#include <cstdint>
#include <thread>

namespace oosp {

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  // No spin hint on this target; SpinBackoff still yields eventually.
#endif
}

// Usage: construct per wait-loop, call pause() on each failed attempt and
// reset() after progress. Early rounds spin with a doubling number of
// cpu_relax() hints (cheap, keeps latency low when the peer is about to
// make room); after kYieldRounds the wait is long enough that burning the
// timeslice is pure waste, so hand the core back to the scheduler.
class SpinBackoff {
 public:
  void pause() noexcept {
    if (round_ < kYieldRounds) {
      for (std::uint32_t i = 1u << round_; i-- > 0;) cpu_relax();
      ++round_;
    } else {
      std::this_thread::yield();
    }
  }

  void reset() noexcept { round_ = 0; }

 private:
  static constexpr std::uint32_t kYieldRounds = 6;  // 1+2+...+32 relaxes, then yield
  std::uint32_t round_ = 0;
};

}  // namespace oosp
