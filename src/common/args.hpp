// Minimal command-line argument parser for the example/tool binaries.
//
// Supports `--name value`, `--name=value` and boolean `--flag` forms.
// Options are declared up front with defaults and help text; unknown
// options are an error; `--help` prints usage.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace oosp {

class ArgParser {
 public:
  explicit ArgParser(std::string program_description);

  // Declaration order is preserved in --help output.
  void add_string(std::string name, std::string default_value, std::string help);
  void add_int(std::string name, std::int64_t default_value, std::string help);
  void add_double(std::string name, double default_value, std::string help);
  void add_flag(std::string name, std::string help);  // defaults to false

  // Parses argv. Returns false (after printing usage) when --help was
  // requested; throws std::invalid_argument on malformed input.
  bool parse(int argc, const char* const* argv);

  const std::string& get_string(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_flag(const std::string& name) const;

  void print_usage(std::ostream& os) const;

 private:
  enum class Kind : std::uint8_t { kString, kInt, kDouble, kFlag };
  struct Option {
    std::string name;
    Kind kind;
    std::string help;
    std::string value;  // canonical textual value
  };

  Option& find(const std::string& name, Kind kind);
  const Option& find(const std::string& name, Kind kind) const;

  std::string description_;
  std::string program_ = "program";
  std::vector<Option> options_;
};

}  // namespace oosp
