// Console table / CSV writers used by the benchmark harnesses to print the
// per-figure result series in a paper-style layout.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace oosp {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Adds a row; cell count must equal header count.
  void add_row(std::vector<std::string> cells);

  // Convenience: formats arithmetic values with sensible precision.
  static std::string cell(double v, int precision = 2);
  static std::string cell(std::uint64_t v);
  static std::string cell(std::int64_t v);

  // Pretty-prints the aligned table.
  void print(std::ostream& os) const;

  // Emits RFC-4180-ish CSV (quotes cells containing separators/quotes).
  void print_csv(std::ostream& os) const;

  std::size_t rows() const noexcept { return rows_.size(); }
  std::size_t cols() const noexcept { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace oosp
